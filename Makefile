# Developer entry points. `make ci` is the full local gate: vet, build,
# race-enabled tests (including the concurrent-session harness tests), a
# 1-iteration benchmark smoke, and a short fuzz smoke over the PTX parsers.

GO ?= go
FUZZTIME ?= 10s
BENCHDATE := $(shell date +%F)

SMOKEDIR := /tmp/crat-checkpoint-smoke
ORACLEDIR := /tmp/crat-oracle-smoke
GOLDENDIR := /tmp/crat-golden-diff
SVCDIR := /tmp/crat-service-smoke
BACKENDDIR := /tmp/crat-backend-smoke
SHARDDIR := /tmp/crat-shard-smoke
CHAOSDIR := /tmp/crat-chaos-smoke

# Normalization for golden-output comparison: drop the wall-clock footer,
# mask duration tokens (the overhead table's profiling/static wall columns
# are real elapsed time and legitimately vary run to run; everything else in
# the output is deterministic), and squeeze runs of spaces (column padding
# tracks the width of the masked durations).
NORM = sed -E -e '/^done in /d' -e 's/[0-9]+(\.[0-9]+)?(µs|ms|m?s)\b/DUR/g' -e 's/ +/ /g' -e 's/ +$$//'

.PHONY: all build vet test race race-harness bench-smoke perf-smoke bench-json checkpoint-smoke fuzz-smoke oracle-smoke pass-smoke backend-smoke service-smoke shard-smoke chaos-smoke golden-diff golden-regen ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency tests that guard the parallel experiment engine: run
# explicitly with -count=1 so cached passes never mask a regression.
race-harness:
	$(GO) test -race -count=1 ./internal/harness/...

# One iteration of the simulator throughput benchmark: catches crashes or
# gross slowdowns in the hot path without paying for a full bench run.
bench-smoke:
	$(GO) test -run='^$$' -bench=SimulatorThroughput -benchtime=1x .

# Throughput regression gate: a short benchmark run must clear a
# conservative floor (~2x the pre-SoA 1.23M warp-insts/s seed; the SoA
# engine records >4x, so the margin absorbs machine noise without letting a
# hot-loop regression slip through silently).
PERF_FLOOR ?= 2500000
perf-smoke:
	$(GO) test -run='^$$' -bench=SimulatorThroughput -benchtime=1x . | awk ' \
		/warp-insts\/s/ { for (i = 1; i < NF; i++) if ($$(i+1) == "warp-insts/s") v = $$i + 0 } \
		END { \
			if (v == "") { print "perf-smoke: no warp-insts/s metric in benchmark output"; exit 1 } \
			if (v < $(PERF_FLOOR)) { printf "perf-smoke: %d warp-insts/s below the %d floor\n", v, $(PERF_FLOOR); exit 1 } \
			printf "perf-smoke: %d warp-insts/s clears the %d floor\n", v, $(PERF_FLOOR) \
		}'

# Full benchmark suite -> BENCH_<date>.json with the headline metrics
# (geomean speedups, warp-insts/s). Seeds the perf trajectory across PRs.
bench-json:
	$(GO) test -run='^$$' -bench=. -benchtime=1x . | $(GO) run ./cmd/benchjson -o BENCH_$(BENCHDATE).json

# Checkpoint round-trip smoke: run two experiments clean, re-run them with
# -checkpoint and kill the process mid-flight (SIGINT, as a user would), then
# tear the tail off one journal (the torn final record a power cut leaves)
# before the -resume, and require the resumed output byte-identical to the
# clean run with the salvage reported. Guards the whole durability stack end
# to end: signal handling, journal atomicity, torn-tail salvage, manifest
# validation, and deterministic decision rebuild.
checkpoint-smoke:
	rm -rf $(SMOKEDIR) && mkdir -p $(SMOKEDIR)
	$(GO) build -o $(SMOKEDIR)/experiments ./cmd/experiments
	$(SMOKEDIR)/experiments -run fig12,fig8 -j 4 > $(SMOKEDIR)/clean.txt
	-timeout -s INT 6 $(SMOKEDIR)/experiments -run fig12,fig8 -j 4 -checkpoint $(SMOKEDIR)/ck > $(SMOKEDIR)/killed.txt
	JL=$$(ls $(SMOKEDIR)/ck/*/journal.log 2>/dev/null | head -1); \
	[ -n "$$JL" ] || { echo "checkpoint-smoke: no journal written by the killed run"; exit 1; }; \
	truncate -s -7 $$JL; \
	echo "checkpoint-smoke: tore 7 bytes off $$JL"
	$(SMOKEDIR)/experiments -run fig12,fig8 -j 4 -checkpoint $(SMOKEDIR)/ck -resume > $(SMOKEDIR)/resumed.txt
	grep -q '^checkpoint: .* salvaged' $(SMOKEDIR)/resumed.txt
	grep -v '^done in\|^checkpoint:' $(SMOKEDIR)/clean.txt > $(SMOKEDIR)/clean.norm
	grep -v '^done in\|^checkpoint:' $(SMOKEDIR)/resumed.txt > $(SMOKEDIR)/resumed.norm
	diff $(SMOKEDIR)/clean.norm $(SMOKEDIR)/resumed.norm
	@echo "checkpoint-smoke: resumed output byte-identical to the clean run, torn tail salvaged"

# Short fuzz runs of the kernel and module parsers (no-panic + print/parse
# round-trip properties) and of the checkpoint journal decoder (salvage
# invariants hold on arbitrary corruption; clean images round-trip).
# Seeds come from the workload kernels, ptxgen, and crafted journal images.
fuzz-smoke:
	$(GO) test ./internal/ptx/ -run='^$$' -fuzz=FuzzParse$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/ptx/ -run='^$$' -fuzz=FuzzParseModule -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/checkpoint/ -run='^$$' -fuzz=FuzzJournalDecode -fuzztime=$(FUZZTIME)

# Differential-oracle smoke: the zero-divergence sweep over every seed
# workload at its full launch grid (the in-tree test run shrinks grids for
# speed), plus a cratc -verify round trip on a generated kernel.
oracle-smoke:
	ORACLE_FULL_GRID=1 $(GO) test ./internal/oracle/ -count=1 -run TestWorkloadsZeroDivergence
	rm -rf $(ORACLEDIR) && mkdir -p $(ORACLEDIR)
	$(GO) build -o $(ORACLEDIR)/cratc ./cmd/cratc
	$(ORACLEDIR)/cratc -in cmd/cratc/testdata/example.ptx -block 64 -grid 2 -verify -out $(ORACLEDIR)/example_out.ptx
	@echo "oracle-smoke: zero divergences"

# Pass-pipeline smoke: the full CRAT pipeline with the PTX verifier enabled
# after every pass on all seed workloads (CRAT and CRAT-local). A pass that
# emits malformed IR fails with the offending pass named.
pass-smoke:
	$(GO) test -count=1 -run TestPassSmoke .

# Backend smoke: every registered optimization backend (and the full
# union) over every seed workload with verify-after-every-pass and zero
# oracle divergence required; the metamorphic sweep that pushes each
# backend through forced tight budgets on the ptxgen corpus; and a golden
# diff of the head-to-head figure against experiments_output.txt.
backend-smoke:
	$(GO) test -count=1 -run TestBackendSmoke .
	$(GO) test ./internal/oracle/ -count=1 -run TestMetamorphicBackends
	rm -rf $(BACKENDDIR) && mkdir -p $(BACKENDDIR)
	$(GO) run ./cmd/experiments -run backends > $(BACKENDDIR)/fresh.txt
	awk '/^== backends:/,/^$$/' experiments_output.txt | $(NORM) > $(BACKENDDIR)/golden.norm
	awk '/^== backends:/,/^$$/' $(BACKENDDIR)/fresh.txt | $(NORM) > $(BACKENDDIR)/fresh.norm
	diff $(BACKENDDIR)/golden.norm $(BACKENDDIR)/fresh.norm
	@echo "backend-smoke: all backends oracle-clean; head-to-head figure matches the golden"

# Service smoke: the cratd daemon's full robustness loop end to end.
# Start cratd on an ephemeral port with a persistent cache, warm it with a
# deterministic corpus, then SIGTERM the daemon while a second load run is
# in flight and require a clean drain (exit 0 + "drained cleanly" in the
# log). Restart on the same cache directory, replay the warm corpus, and
# require /statsz to report zero computes — every answer came from the
# journal — plus one persistent hit per distinct kernel.
service-smoke:
	rm -rf $(SVCDIR) && mkdir -p $(SVCDIR)
	$(GO) build -o $(SVCDIR)/cratd ./cmd/cratd
	$(GO) build -o $(SVCDIR)/cratload ./cmd/cratload
	set -e; \
	$(SVCDIR)/cratd -addr 127.0.0.1:0 -addr-file $(SVCDIR)/addr -cache $(SVCDIR)/cache > $(SVCDIR)/cratd1.log 2>&1 & \
	CRATD_PID=$$!; \
	for i in $$(seq 1 100); do [ -s $(SVCDIR)/addr ] && break; sleep 0.1; done; \
	ADDR=http://$$(cat $(SVCDIR)/addr); \
	$(SVCDIR)/cratload -addr $$ADDR -n 16 -kernels 8 -seed 1 -c 2 -retries 3; \
	$(SVCDIR)/cratload -addr $$ADDR -n 64 -kernels 32 -seed 100 -retries 2 > $(SVCDIR)/load2.txt 2>&1 & \
	LOAD_PID=$$!; \
	sleep 1; \
	kill -TERM $$CRATD_PID; \
	wait $$CRATD_PID; \
	wait $$LOAD_PID || true; \
	grep -q 'drained cleanly; journal flushed' $(SVCDIR)/cratd1.log; \
	$(SVCDIR)/cratd -addr 127.0.0.1:0 -addr-file $(SVCDIR)/addr2 -cache $(SVCDIR)/cache > $(SVCDIR)/cratd2.log 2>&1 & \
	CRATD2_PID=$$!; \
	for i in $$(seq 1 100); do [ -s $(SVCDIR)/addr2 ] && break; sleep 0.1; done; \
	ADDR2=http://$$(cat $(SVCDIR)/addr2); \
	$(SVCDIR)/cratload -addr $$ADDR2 -n 16 -kernels 8 -seed 1 -c 2 -retries 3; \
	curl -s $$ADDR2/statsz > $(SVCDIR)/statsz.json; \
	grep -q '"computes": 0' $(SVCDIR)/statsz.json; \
	grep -q '"persistent_hits": 8' $(SVCDIR)/statsz.json; \
	kill -TERM $$CRATD2_PID; \
	wait $$CRATD2_PID; \
	grep -q 'drained cleanly; journal flushed' $(SVCDIR)/cratd2.log
	@echo "service-smoke: clean drain under load; restart served the corpus with zero recompiles"

# Shard smoke: the multi-replica fleet's chaos acceptance run end to end.
# A single-replica fleet (cratd behind cratgw) produces the baseline
# Decision digests; then a 3-replica fleet runs the same corpus while a
# random replica is SIGKILLed mid-load and restarted on its original
# address. The run must see zero client-visible failures, the gateway's
# failover counter must have advanced, the chaos digests must be
# byte-identical to the baseline regardless of which replica answered,
# and every process (gateway + all replicas) must drain cleanly on stop.
shard-smoke:
	rm -rf $(SHARDDIR) && mkdir -p $(SHARDDIR)
	$(GO) build -o $(SHARDDIR)/cratd ./cmd/cratd
	$(GO) build -o $(SHARDDIR)/cratgw ./cmd/cratgw
	$(GO) build -o $(SHARDDIR)/cratload ./cmd/cratload
	set -e; \
	$(SHARDDIR)/cratload -replicas 1 -cratd-bin $(SHARDDIR)/cratd -cratgw-bin $(SHARDDIR)/cratgw \
		-fleet-dir $(SHARDDIR)/base -n 96 -kernels 24 -seed 7 -c 4 \
		-decisions-out $(SHARDDIR)/base-decisions.txt > $(SHARDDIR)/base.txt 2>&1; \
	$(SHARDDIR)/cratload -replicas 3 -cratd-bin $(SHARDDIR)/cratd -cratgw-bin $(SHARDDIR)/cratgw \
		-fleet-dir $(SHARDDIR)/fleet -n 96 -kernels 24 -seed 7 -c 4 \
		-chaos -chaos-delay 300ms -hedge-after 250ms \
		-decisions-out $(SHARDDIR)/fleet-decisions.txt > $(SHARDDIR)/chaos.txt 2>&1; \
	diff $(SHARDDIR)/base-decisions.txt $(SHARDDIR)/fleet-decisions.txt; \
	grep -q 'CHAOS: SIGKILLed replica' $(SHARDDIR)/chaos.txt; \
	grep -q 'CHAOS: restarted replica' $(SHARDDIR)/chaos.txt; \
	FAILOVERS=$$(awk '/^gateway:/ { for (i = 1; i < NF; i++) if ($$i == "failovers") print $$(i+1) + 0 }' $(SHARDDIR)/chaos.txt); \
	[ -n "$$FAILOVERS" ] && [ "$$FAILOVERS" -ge 1 ] || { echo "shard-smoke: gateway recorded no failovers despite the kill"; cat $(SHARDDIR)/chaos.txt; exit 1; }; \
	for f in cratgw cratd-0 cratd-1 cratd-2; do \
		grep -q 'drained cleanly' $(SHARDDIR)/fleet/$$f.log || { echo "shard-smoke: $$f did not drain cleanly"; exit 1; }; \
	done; \
	grep -q 'drained cleanly' $(SHARDDIR)/base/cratgw.log
	@echo "shard-smoke: chaos kill absorbed with zero client-visible failures; Decisions byte-identical to the single-replica baseline"

# Chaos matrix smoke: every fault kind x lifecycle phase, each cell a
# fresh 2-replica fleet under load with deterministic fault injection
# (internal/faultinject) — SIGKILL, torn journal, ENOSPC, fsync failure,
# connection resets, latency spikes — crossed with during-load,
# during-drain (SIGTERM mid-load), and during-restart. Every cell must
# show zero client-visible failures and Decision digests byte-identical
# to a fault-free baseline; torn-journal cells must report a salvage and
# conn-reset cells at least one failover. See DESIGN.md §16.
chaos-smoke:
	rm -rf $(CHAOSDIR) && mkdir -p $(CHAOSDIR)
	$(GO) build -o $(CHAOSDIR)/cratd ./cmd/cratd
	$(GO) build -o $(CHAOSDIR)/cratgw ./cmd/cratgw
	$(GO) build -o $(CHAOSDIR)/cratload ./cmd/cratload
	$(CHAOSDIR)/cratload -chaos-matrix -fleet-dir $(CHAOSDIR)/run \
		-cratd-bin $(CHAOSDIR)/cratd -cratgw-bin $(CHAOSDIR)/cratgw \
		-n 48 -c 8 -kernels 12 -seed 7
	@echo "chaos-smoke: all fault x phase cells held the zero-visible-failure contract"

# Golden-output regression guard: re-render every experiment table and diff
# against the committed experiments_output.txt (durations normalized, see
# NORM). The full sweep is deterministic — any diff is a real behavior
# change; if it is intentional, refresh the golden with `make golden-regen`.
golden-diff:
	rm -rf $(GOLDENDIR) && mkdir -p $(GOLDENDIR)
	$(GO) run ./cmd/experiments -run all > $(GOLDENDIR)/fresh.txt
	$(NORM) experiments_output.txt > $(GOLDENDIR)/golden.norm
	$(NORM) $(GOLDENDIR)/fresh.txt > $(GOLDENDIR)/fresh.norm
	diff $(GOLDENDIR)/golden.norm $(GOLDENDIR)/fresh.norm
	@echo "golden-diff: experiment output matches experiments_output.txt"

# Refresh the golden after an intentional output change.
golden-regen:
	$(GO) run ./cmd/experiments -run all > experiments_output.txt

ci: vet build race race-harness checkpoint-smoke bench-smoke perf-smoke fuzz-smoke oracle-smoke pass-smoke backend-smoke service-smoke shard-smoke chaos-smoke golden-diff
