# Developer entry points. `make ci` is the full local gate: vet, build,
# race-enabled tests, and a short fuzz smoke over the PTX parsers.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz runs of the kernel and module parsers (no-panic + print/parse
# round-trip properties). Seeds come from the workload kernels.
fuzz-smoke:
	$(GO) test ./internal/ptx/ -run='^$$' -fuzz=FuzzParse$$ -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/ptx/ -run='^$$' -fuzz=FuzzParseModule -fuzztime=$(FUZZTIME)

ci: vet build race fuzz-smoke
