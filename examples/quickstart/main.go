// Quickstart: build a PTX kernel programmatically, register-allocate it
// under a per-thread budget, and run it on the cycle-level SM simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"crat/internal/gpusim"
	"crat/internal/ptx"
	"crat/internal/regalloc"
)

func main() {
	// 1. Build a SAXPY-like kernel: out[i] = a*x[i] + y[i].
	b := ptx.NewBuilder("saxpy")
	b.Param("x", ptx.U64).Param("y", ptx.U64).Param("out", ptx.U64).Param("n", ptx.U32)
	px, py, po := b.Reg(ptx.U64), b.Reg(ptx.U64), b.Reg(ptx.U64)
	n := b.Reg(ptx.U32)
	b.LdParam(ptx.U64, px, "x").LdParam(ptx.U64, py, "y").LdParam(ptx.U64, po, "out").LdParam(ptx.U32, n, "n")
	idx := b.GlobalIndex()
	guard := b.Reg(ptx.Pred)
	b.Setp(ptx.CmpGe, ptx.U32, guard, ptx.R(idx), ptx.R(n))
	b.BraIf(guard, false, "DONE")
	xa := b.AddrOf(px, idx, 4)
	ya := b.AddrOf(py, idx, 4)
	oa := b.AddrOf(po, idx, 4)
	vx, vy, vr := b.Reg(ptx.F32), b.Reg(ptx.F32), b.Reg(ptx.F32)
	b.Ld(ptx.SpaceGlobal, ptx.F32, vx, ptx.MemReg(xa, 0))
	b.Ld(ptx.SpaceGlobal, ptx.F32, vy, ptx.MemReg(ya, 0))
	b.Mad(ptx.F32, vr, ptx.R(vx), ptx.FImm(2.0), ptx.R(vy))
	b.St(ptx.SpaceGlobal, ptx.F32, ptx.MemReg(oa, 0), ptx.R(vr))
	b.Label("DONE").Exit()
	kernel := b.Kernel()

	// 2. The virtual kernel uses SSA-style infinite registers; print it.
	fmt.Println("--- virtual-register PTX ---")
	fmt.Print(ptx.Print(kernel))

	// 3. Register-allocate: how many registers does it really need?
	maxReg, err := regalloc.MaxReg(kernel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMaxReg (dataflow analysis): %d 32-bit slots\n", maxReg)

	alloc, err := regalloc.Allocate(kernel, regalloc.Options{Regs: maxReg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated at %d regs: %d spills\n", maxReg, len(alloc.Spills))
	fmt.Println("\n--- allocated PTX ---")
	fmt.Print(ptx.Print(alloc.Kernel))

	// 4. Run 4 blocks x 128 threads on the Fermi-like SM.
	const elems = 512
	arch := gpusim.FermiConfig()
	mem := gpusim.NewMemory()
	x := mem.Alloc(4 * elems)
	y := mem.Alloc(4 * elems)
	out := mem.Alloc(4 * elems)
	for i := 0; i < elems; i++ {
		mem.WriteFloat32(x+uint64(4*i), float32(i))
		mem.WriteFloat32(y+uint64(4*i), 1.0)
	}
	sim, err := gpusim.NewSimulator(arch, mem, gpusim.Launch{
		Kernel: alloc.Kernel,
		Grid:   4, Block: 128,
		Params:        []uint64{x, y, out, elems},
		RegsPerThread: alloc.UsedRegs,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated: %s\n", stats)
	fmt.Printf("out[10] = %v (want %v)\n", mem.ReadFloat32(out+40), 2.0*10+1)
	fmt.Printf("out[511] = %v (want %v)\n", mem.ReadFloat32(out+4*511), 2.0*511+1)
}
