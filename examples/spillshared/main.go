// Spillshared: demonstrate the spilling optimization (paper Algorithm 1).
// A register-hungry kernel is allocated under a tight budget, then its
// spill stack is split into typed sub-stacks and the knapsack decides which
// to move into spare shared memory. The demo compares local-only spilling
// with the optimized placement, both functionally and in cycles.
//
//	go run ./examples/spillshared
package main

import (
	"fmt"
	"log"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/ptx"
	"crat/internal/regalloc"
	"crat/internal/spillopt"
	"crat/internal/workloads"
)

func main() {
	arch := gpusim.FermiConfig()
	p, _ := workloads.ByAbbr("FDTD")
	app := p.App()

	a, err := core.Analyze(app, arch)
	if err != nil {
		log.Fatal(err)
	}
	// Allocate well below MaxReg so spills remain.
	budget := 40
	tlp := a.TLPAt(arch, budget)
	allocOpts := regalloc.Options{Regs: budget}
	alloc, err := regalloc.Allocate(app.Kernel, allocOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s: MaxReg=%d, allocated at %d regs -> %d spilled variables (%d bytes/thread)\n",
		app.Name, a.MaxReg, budget, len(alloc.Spills), alloc.SpillStackBytes)
	o := alloc.Kernel.SpillOverhead()
	fmt.Printf("local-only spilling: %d local spill insts, %d addressing insts\n", o.Locals(), o.AddrInsts)

	// Algorithm 1: split by type, estimate gains, solve the knapsack.
	spare := core.SpareShm(arch, a.ShmSize, tlp)
	res, err := spillopt.Optimize(alloc, allocOpts, spillopt.Options{
		SpareShmBytes: spare,
		BlockSize:     app.Block,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspare shared memory at TLP=%d: %d bytes/block\n", tlp, spare)
	for _, g := range res.Groups {
		where := "stays in local memory"
		if g.InShared {
			where = "moved to shared memory"
		}
		fmt.Printf("  sub-stack %-4s: %2d variables, %4d B/thread, gain %6.0f -> %s\n",
			g.Key, len(g.Slots), g.PerThread, g.Gain, where)
	}
	oo := res.Overhead
	fmt.Printf("after optimization: %d local + %d shared spill insts (moved gain %.0f of %.0f)\n",
		oo.Locals(), oo.Shareds(), res.MovedGain, res.TotalGain)

	// The transformed kernel is plain PTX: print the declarations.
	fmt.Println("\nshared sub-stack declarations in the transformed PTX:")
	for _, arr := range res.Alloc.Kernel.Arrays {
		if arr.Space == ptx.SpaceShared {
			fmt.Printf("  .shared .align %d .b8 %s[%d];\n", arr.Align, arr.Name, arr.Size)
		}
	}

	// Run both variants: identical results, fewer cycles.
	run := func(k *ptx.Kernel, regs int) gpusim.Stats {
		st, err := core.SimulateKernel(app, arch, k, regs, tlp)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}
	local := run(alloc.Kernel, alloc.UsedRegs)
	shared := run(res.Alloc.Kernel, res.Alloc.UsedRegs)
	fmt.Printf("\nlocal-only : %9d cycles, %7d local ops\n", local.Cycles, local.LocalOps())
	fmt.Printf("optimized  : %9d cycles, %7d local ops, %d shared spill ops\n",
		shared.Cycles, shared.LocalOps(), shared.SpillSharedOps)
	fmt.Printf("speedup    : %.3fx\n", float64(local.Cycles)/float64(shared.Cycles))
}
