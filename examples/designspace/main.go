// Designspace: run the full CRAT pipeline on the CFD workload — the paper's
// motivating example — and compare the four configurations of §7.2.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"sort"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

func main() {
	arch := gpusim.FermiConfig()
	p, ok := workloads.ByAbbr("CFD")
	if !ok {
		log.Fatal("CFD workload missing")
	}
	app := p.App()

	// Resource usage analysis (paper Table 1).
	a, err := core.Analyze(app, arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis: MaxReg=%d MinReg=%d DefaultReg=%d BlockSize=%d MaxTLP=%d\n",
		a.MaxReg, a.MinReg, a.DefaultReg, a.BlockSize, a.MaxTLP)

	// The (reg, TLP) staircase (paper Figure 11).
	stairs := a.Staircase(arch)
	tlps := make([]int, 0, len(stairs))
	for t := range stairs {
		tlps = append(tlps, t)
	}
	sort.Ints(tlps)
	fmt.Print("staircase (TLP -> rightmost reg):")
	for _, t := range tlps {
		fmt.Printf(" %d->%d", t, stairs[t])
	}
	fmt.Println()

	// OptTLP through profiling (paper §4.1).
	opt, runs, err := core.ProfileOptTLP(app, arch, a)
	if err != nil {
		log.Fatal(err)
	}
	a.OptTLP = opt
	fmt.Printf("profiled OptTLP = %d:\n", opt)
	for i, st := range runs {
		fmt.Printf("  TLP=%d: %8d cycles, L1 hit %.3f\n", i+1, st.Cycles, st.L1HitRate())
	}

	// Full pipeline: pruning, per-candidate allocation + Algorithm 1, TPSC.
	d, err := core.Optimize(app, core.Options{Arch: arch, OptTLP: opt, SpillShared: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("candidates after pruning:")
	for _, c := range d.Candidates {
		fmt.Printf("  (reg=%-2d TLP=%d): local spills=%-3d shared spills=%-3d TPSC=%.1f\n",
			c.Reg, c.TLP, c.Overhead.Locals(), c.Overhead.Shareds(), c.TPSC)
	}
	fmt.Printf("CRAT chose (reg=%d, TLP=%d)\n\n", d.Chosen.UsedRegs(), d.Chosen.TLP)

	// Compare the four configurations (paper Figure 13).
	var base int64
	for _, m := range []core.Mode{core.ModeMaxTLP, core.ModeOptTLP, core.ModeCRATLocal, core.ModeCRAT} {
		st, dd, err := core.RunMode(app, m, core.Options{Arch: arch, OptTLP: opt})
		if err != nil {
			log.Fatal(err)
		}
		if m == core.ModeOptTLP {
			base = st.Cycles
		}
		speed := "    -"
		if base > 0 {
			speed = fmt.Sprintf("%.3f", float64(base)/float64(st.Cycles))
		}
		fmt.Printf("%-11s reg=%-3d TLP=%d  cycles=%-9d  vs OptTLP %s  L1 %.3f  local ops %d\n",
			m, dd.Chosen.UsedRegs(), dd.Chosen.TLP, st.Cycles, speed, st.L1HitRate(), st.LocalOps())
	}
}
