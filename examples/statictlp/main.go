// Statictlp: estimate the optimal TLP by static code analysis (paper §4.1,
// Figure 10) and compare it with exhaustive profiling. The static path
// segments the kernel into computation/memory runs, mimics GTO scheduling
// with a contention-adjusted memory latency, and needs a single cheap
// TLP=1 measurement instead of MaxTLP full profiling runs.
//
//	go run ./examples/statictlp
package main

import (
	"fmt"
	"log"
	"time"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

func main() {
	arch := gpusim.FermiConfig()
	for _, abbr := range []string{"KMN", "CFD", "STM"} {
		p, _ := workloads.ByAbbr(abbr)
		app := p.App()
		a, err := core.Analyze(app, arch)
		if err != nil {
			log.Fatal(err)
		}

		// Segment view of the kernel (paper Figure 10a).
		nComp, nMem := 0, 0
		for _, s := range a.Segments {
			if s.Kind == core.SegMemory {
				nMem++
			} else {
				nComp++
			}
		}
		fmt.Printf("%s: %d compute / %d memory segments, MaxTLP=%d\n", abbr, nComp, nMem, a.MaxTLP)

		// Profiling: simulate every TLP.
		start := time.Now()
		profiled, runs, err := core.ProfileOptTLP(app, arch, a)
		if err != nil {
			log.Fatal(err)
		}
		profWall := time.Since(start)

		// Static: one TLP=1 run feeds the GTO-mimicking model.
		start = time.Now()
		in, err := core.MeasureStaticInputs(app, arch, a)
		if err != nil {
			log.Fatal(err)
		}
		estimated := core.EstimateOptTLP(a, arch, in)
		statWall := time.Since(start)

		fmt.Printf("  profiled OptTLP = %d  (%d simulations, %s)\n", profiled, len(runs), profWall.Round(time.Millisecond))
		fmt.Printf("  static   OptTLP = %d  (1 simulation,  %s; hit@1=%.3f footprint=%.0fB)\n",
			estimated, statWall.Round(time.Millisecond), in.HitRatioAtOne, in.BlockFootprint)

		// How much performance does the estimate leave behind?
		best := runs[profiled-1].Cycles
		est := runs[estimated-1].Cycles
		fmt.Printf("  cycles at profiled=%d vs static=%d: %.1f%% gap\n\n",
			best, est, 100*(float64(est)/float64(best)-1))
	}
}
