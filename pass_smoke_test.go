// Pass-pipeline smoke: run the full CRAT pipeline with the PTX verifier
// enabled after every pass on every seed workload (make pass-smoke). A pass
// that emits malformed IR fails here with the offending pass named, long
// before the golden experiment outputs could drift.
package crat_test

import (
	"testing"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

// TestPassSmoke compiles every seed workload under CRAT (shared-memory
// spilling on) and CRAT-local with verify-after-every-pass. OptTLP and the
// access costs are pinned so no simulations run: the smoke isolates the
// compilation pipeline. In -short mode only the first workload of each
// sensitivity class runs.
func TestPassSmoke(t *testing.T) {
	arch := gpusim.FermiConfig()
	profiles := workloads.All()
	if testing.Short() {
		var sensitive, insensitive bool
		short := profiles[:0]
		for _, p := range profiles {
			if (p.Sensitive && !sensitive) || (!p.Sensitive && !insensitive) {
				short = append(short, p)
			}
			if p.Sensitive {
				sensitive = true
			} else {
				insensitive = true
			}
		}
		profiles = short
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Abbr, func(t *testing.T) {
			t.Parallel()
			app := p.App()
			for _, spillShared := range []bool{true, false} {
				d, err := core.Optimize(app, core.Options{
					Arch:           arch,
					OptTLP:         4,
					Costs:          gpusim.Costs{Local: 40, Shared: 4},
					SpillShared:    spillShared,
					VerifyEachPass: true,
				})
				if err != nil {
					t.Fatalf("Optimize(spillShared=%v): %v", spillShared, err)
				}
				if d.Chosen.Kernel() == nil {
					t.Fatalf("Optimize(spillShared=%v): no chosen kernel", spillShared)
				}
			}
		})
	}
}
