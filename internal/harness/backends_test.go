package harness

import (
	"bytes"
	"testing"

	"crat/internal/backend"
	"crat/internal/gpusim"
)

// renderHeadToHead builds the backend head-to-head table over the small
// synthetic apps on a fresh session with the given worker count and
// returns its rendered bytes.
func renderHeadToHead(t *testing.T, workers int) []byte {
	t.Helper()
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(workers)
	tab, err := s.backendHeadToHead(concApps())
	if err != nil {
		t.Fatalf("backendHeadToHead(workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	return buf.Bytes()
}

// TestBackendHeadToHeadDeterministic requires the head-to-head sweep to
// render byte-identically when run twice and across worker counts (-j 1
// vs -j 8): backend evaluation, union selection, and note aggregation
// must all be order-independent.
func TestBackendHeadToHeadDeterministic(t *testing.T) {
	serial := renderHeadToHead(t, 1)
	if again := renderHeadToHead(t, 1); !bytes.Equal(serial, again) {
		t.Fatalf("serial head-to-head not reproducible:\n--- first\n%s--- second\n%s", serial, again)
	}
	parallel := renderHeadToHead(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("head-to-head differs between -j 1 and -j 8:\n--- serial\n%s--- parallel\n%s", serial, parallel)
	}
	if again := renderHeadToHead(t, 8); !bytes.Equal(parallel, again) {
		t.Fatalf("parallel head-to-head not reproducible")
	}
}

// TestBackendDelegatesToModes requires the crat and crat-local backends
// to share the comparison modes' caches (one simulation, two names) and
// every backend evaluation to attribute its decision to the right
// backend.
func TestBackendDelegatesToModes(t *testing.T) {
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(1)
	p := concApps()[0]
	for _, name := range backend.Names() {
		_, d, err := s.Backend(p, name)
		if err != nil {
			t.Fatalf("Backend(%s): %v", name, err)
		}
		if d.Backend != name {
			t.Fatalf("Backend(%s): decision attributed to %q", name, d.Backend)
		}
	}
	counts := s.computeCounts()
	if counts["mode/"+p.Abbr+"/CRAT"] != 1 || counts["mode/"+p.Abbr+"/CRAT-local"] != 1 {
		t.Fatalf("crat/crat-local did not delegate to the mode caches: %v", counts)
	}
	if counts["backend/"+p.Abbr+"/regdem"] != 1 {
		t.Fatalf("regdem not computed exactly once: %v", counts)
	}
	if counts["backend/"+p.Abbr+"/crat"] != 0 {
		t.Fatalf("crat unexpectedly computed under a backend key: %v", counts)
	}
}
