package harness

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"crat/internal/checkpoint"
	"crat/internal/gpusim"
)

// Experiment couples an identifier with its runner.
type Experiment struct {
	ID   string
	Desc string
	Run  func(s *Session) ([]*Table, error)
	Arch string // "fermi" (default) or "kepler"
}

// one wraps a single-table runner.
func one(f func(s *Session) (*Table, error)) func(s *Session) ([]*Table, error) {
	return func(s *Session) ([]*Table, error) {
		t, err := f(s)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Experiments returns the registry of every table/figure runner, keyed as
// in DESIGN.md's per-experiment index.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Desc: "collected resource parameters", Run: one((*Session).Table1)},
		{ID: "table2", Desc: "simulated configuration", Run: func(s *Session) ([]*Table, error) { return []*Table{s.Table2()}, nil }},
		{ID: "table3", Desc: "application list", Run: func(s *Session) ([]*Table, error) { return []*Table{Table3()}, nil }},
		{ID: "fig1", Desc: "thread throttling benefit and register waste", Run: one((*Session).Figure1)},
		{ID: "fig2", Desc: "CFD design space sweep", Run: one((*Session).Figure2)},
		{ID: "fig3", Desc: "CFD selected design points", Run: one((*Session).Figure3)},
		{ID: "fig5", Desc: "throttling impact on L1", Run: one((*Session).Figure5)},
		{ID: "fig6", Desc: "register per-thread impact (CFD)", Run: one((*Session).Figure6)},
		{ID: "fig7", Desc: "register vs shared memory utilization", Run: one((*Session).Figure7)},
		{ID: "fig8", Desc: "FDTD spill-choice exploration", Run: one((*Session).Figure8)},
		{ID: "fig12", Desc: "spill-volume cross-validation", Run: one((*Session).Figure12)},
		{ID: "fig13", Desc: "headline performance comparison", Run: one((*Session).Figure13)},
		{ID: "fig14", Desc: "selected TLP", Run: one((*Session).Figure14)},
		{ID: "fig15", Desc: "register utilization", Run: one((*Session).Figure15)},
		{ID: "fig16", Desc: "local memory access reduction", Run: one((*Session).Figure16)},
		{ID: "energy", Desc: "energy vs OptTLP", Run: one((*Session).Energy)},
		{ID: "fig17", Desc: "Kepler scalability", Run: one((*Session).Figure17), Arch: "kepler"},
		{ID: "fig18", Desc: "input sensitivity", Run: one((*Session).Figure18)},
		{ID: "fig19", Desc: "resource-insensitive applications", Run: one((*Session).Figure19)},
		{ID: "fig20", Desc: "CRAT-profile vs CRAT-static", Run: one((*Session).Figure20)},
		{ID: "overhead", Desc: "framework overhead", Run: one((*Session).Overhead)},
		{ID: "abl-sched", Desc: "ablation: GTO vs LRR", Run: one((*Session).AblationScheduler)},
		{ID: "abl-spillcost", Desc: "ablation: spill-cost weighting", Run: one((*Session).AblationSpillCost)},
		{ID: "abl-split", Desc: "ablation: sub-stack splitting", Run: one((*Session).AblationSubstackSplit)},
		{ID: "abl-pruning", Desc: "ablation: design-space pruning", Run: one((*Session).AblationPruning)},
		{ID: "abl-tpsc", Desc: "ablation: TPSC vs oracle", Run: one((*Session).AblationTPSC)},
		{ID: "abl-bypass", Desc: "ablation: CRAT with L1 bypassing", Run: one((*Session).AblationBypass)},
		{ID: "backends", Desc: "optimization-backend head-to-head", Run: one((*Session).BackendHeadToHead)},
	}
}

// RunOptions configures RunExperimentsCtx.
type RunOptions struct {
	// Workers bounds each session's simulation fan-out (0 = one per CPU,
	// 1 = serial); the rendered output is identical at any setting.
	Workers int
	// Strict makes the run return an error when any per-app or
	// per-experiment fault was captured. Without it the run degrades
	// gracefully: ERROR rows render, the fault summary prints, and the
	// error return covers only setup problems (unknown IDs, session init).
	Strict bool
	// CheckpointDir enables durable result persistence: each architecture
	// gets a sub-store (dir/fermi, dir/kepler) keyed by that session's
	// configuration hash. Empty disables checkpointing.
	CheckpointDir string
	// Resume loads existing checkpoints from CheckpointDir instead of
	// starting fresh; a checkpoint written under a different configuration
	// is rejected (checkpoint.ErrStale).
	Resume bool
	// Backends restricts the optimization backends the head-to-head
	// experiment sweeps (empty = every registered backend).
	Backends []string
}

// RunReport summarizes a RunExperimentsCtx invocation for callers that
// need more than pass/fail (the CLI's survival report, the chaos tests).
type RunReport struct {
	Failed    []string // experiment IDs that failed outright
	Faults    int      // total captured faults across sessions
	CkptHits  int      // results served from checkpoint stores
	Persisted int      // entries durable on disk after the run
	Loaded    int      // entries inherited from a resumed checkpoint
}

// RunExperiments executes the selected experiment IDs ("all" or empty =
// everything) and renders results to w. Sessions are shared per
// architecture so figures reuse each other's simulations. It is the
// strict form: any captured fault fails the invocation — a CI caller
// should not see exit 0 with ERROR rows.
func RunExperiments(ids []string, workers int, w io.Writer) error {
	_, err := RunExperimentsCtx(context.Background(), ids, RunOptions{Workers: workers, Strict: true}, w)
	return err
}

// RunExperimentsCtx is RunExperiments under a context and RunOptions.
// Cancellation (or a deadline) stops dispatching work promptly: in-flight
// simulations notice within a cycle stride, undispatched apps degrade to
// "skipped" fault rows, and every completed result already persisted to the
// checkpoint store survives for a later -resume.
func RunExperimentsCtx(ctx context.Context, ids []string, opts RunOptions, w io.Writer) (*RunReport, error) {
	wanted := make(map[string]bool)
	for _, id := range ids {
		if id == "all" {
			wanted = nil
			break
		}
		wanted[id] = true
	}
	sessions := make(map[string]*Session)
	session := func(arch string) (*Session, error) {
		if arch == "" {
			arch = "fermi"
		}
		if s, ok := sessions[arch]; ok {
			return s, nil
		}
		cfg := gpusim.FermiConfig()
		if arch == "kepler" {
			cfg = gpusim.KeplerConfig()
		}
		s, err := NewSession(cfg)
		if err != nil {
			return nil, err
		}
		s.SetWorkers(opts.Workers)
		s.SetContext(ctx)
		s.SetBackends(opts.Backends)
		if opts.CheckpointDir != "" {
			dir := filepath.Join(opts.CheckpointDir, arch)
			st, err := checkpoint.Open(dir, s.ConfigHash(), arch, opts.Resume)
			if err != nil && opts.Resume && !opts.Strict {
				// A stale or unreadable checkpoint degrades to a fresh run:
				// recomputing is always safe, refusing to run is not. -strict
				// keeps the hard error for callers that depend on the resume.
				fmt.Fprintf(w, "checkpoint: resume of %s failed (%v); starting fresh — previous results will be recomputed\n", dir, err)
				st, err = checkpoint.Open(dir, s.ConfigHash(), arch, false)
			}
			if err != nil {
				return nil, err
			}
			if h := st.Health(); h.SalvagedTail > 0 || h.Quarantined > 0 {
				fmt.Fprintf(w, "checkpoint: %s salvaged: dropped %d torn record(s), quarantined %d corrupt chunk(s) (%d bytes); %d entries survive\n",
					dir, h.SalvagedTail, h.Quarantined, h.QuarantinedBytes, h.Entries)
			}
			s.SetCheckpoint(st)
		}
		sessions[arch] = s
		return s, nil
	}

	known := make(map[string]bool)
	for _, e := range Experiments() {
		known[e.ID] = true
	}
	if wanted != nil {
		var missing []string
		for id := range wanted {
			if !known[id] {
				missing = append(missing, id)
			}
		}
		sort.Strings(missing)
		if len(missing) > 0 {
			return nil, fmt.Errorf("unknown experiment ids: %v", missing)
		}
	}

	var failed []string
	for _, e := range Experiments() {
		if wanted != nil && !wanted[e.ID] {
			continue
		}
		s, err := session(e.Arch)
		if err != nil {
			return nil, err
		}
		var tables []*Table
		err = capture(func() error {
			var runErr error
			tables, runErr = e.Run(s)
			return runErr
		})
		if err != nil {
			// One broken experiment must not take down the rest of the run:
			// report it in place, record it, and keep going.
			fmt.Fprintf(w, "== %s: %s ==\n  ERROR: %v\n\n", e.ID, e.Desc, err)
			s.recordFault(e.ID, err)
			failed = append(failed, e.ID)
			continue
		}
		for _, t := range tables {
			t.Render(w)
		}
	}
	// Session-level fault summary: everything captured, per-app and
	// per-experiment, across all architectures.
	archs := make([]string, 0, len(sessions))
	for a := range sessions {
		archs = append(archs, a)
	}
	sort.Strings(archs)
	rep := &RunReport{}
	for _, a := range archs {
		s := sessions[a]
		if t := s.FaultSummary(); t != nil {
			t.Render(w)
		}
		rep.Faults += len(s.Faults)
		rep.CkptHits += s.CheckpointHitCount()
		if st := s.Checkpoint(); st != nil {
			// Final durability barrier: after this, every entry counted in
			// Persisted has survived the fsync'd rename.
			if err := st.Flush(); err != nil {
				return nil, fmt.Errorf("harness: flushing checkpoint %s: %w", st.Dir(), err)
			}
			rep.Persisted += st.Count()
			rep.Loaded += st.Loaded()
		}
	}
	sort.Strings(failed)
	rep.Failed = failed
	if !opts.Strict {
		return rep, nil
	}
	if len(failed) > 0 {
		return rep, fmt.Errorf("harness: %d experiment(s) failed: %v", len(failed), failed)
	}
	if rep.Faults > 0 {
		return rep, fmt.Errorf("harness: completed with %d captured fault(s); see fault summary", rep.Faults)
	}
	return rep, nil
}
