package harness

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"crat/internal/checkpoint"
	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

// chaosSweep renders the full app x mode comparison through the parallel
// forApps runner — the same shape as the headline figures — so a chaos
// round exercises analyses, mode evaluations, speedups, emit ordering,
// and fault rows all at once.
func chaosSweep(s *Session, apps []workloads.Profile) *Table {
	tab := &Table{
		ID:      "chaos",
		Title:   "chaos sweep",
		Columns: []string{"app", "OptTLP", "MaxTLP", "OptTLPc", "CRATc", "CRAT-speedup"},
	}
	s.forApps(tab, apps, func(p workloads.Profile) (func(), error) {
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		base, _, err := s.Mode(p, core.ModeOptTLP)
		if err != nil {
			return nil, err
		}
		crat, _, err := s.Mode(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		sp, err := s.Speedup(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		return func() {
			tab.AddRow(p.Abbr, fmt.Sprint(a.OptTLP), fmt.Sprint(a.MaxTLP),
				fmt.Sprint(base.Cycles), fmt.Sprint(crat.Cycles), f(sp))
		}, nil
	})
	return tab
}

// render returns the table as bytes for the identity comparison.
func renderString(tab *Table) string {
	var sb strings.Builder
	tab.Render(&sb)
	return sb.String()
}

// TestChaosResumeByteIdentical is the durability tentpole's end-to-end
// proof: a parallel sweep is canceled at random points across several
// rounds, each round resuming the previous round's checkpoint; the final
// uninterrupted resume must render byte-identically to a serial
// never-interrupted run, must not re-simulate any checkpointed key, and
// must leak no goroutines.
func TestChaosResumeByteIdentical(t *testing.T) {
	apps := concApps()

	// Golden: serial, no checkpoint, never interrupted.
	golden, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	golden.SetWorkers(1)
	want := renderString(chaosSweep(golden, apps))
	if strings.Contains(want, "ERROR") {
		t.Fatalf("golden run degraded:\n%s", want)
	}

	dir := t.TempDir()
	baseGoroutines := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(7)) // deterministic chaos schedule

	key := golden.ConfigHash()
	var preKeys []string
	for round := 0; round < 4; round++ {
		st, err := checkpoint.Open(filepath.Join(dir, "fermi"), key, "chaos", true)
		if err != nil {
			t.Fatalf("round %d: resume: %v", round, err)
		}
		s, err := NewSession(gpusim.FermiConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(4)
		s.SetCheckpoint(st)
		ctx, cancel := context.WithCancel(context.Background())
		s.SetContext(ctx)

		// Cancel at a random point mid-sweep; the round's table will carry
		// fault rows, but everything finished before the cut is journaled.
		delay := time.Duration(10+rng.Intn(400)) * time.Millisecond
		done := make(chan *Table, 1)
		go func() { done <- chaosSweep(s, apps) }()
		time.Sleep(delay)
		cancel()
		<-done

		if tmps, _ := filepath.Glob(filepath.Join(dir, "fermi", "*.tmp")); len(tmps) != 0 {
			t.Fatalf("round %d left partial checkpoint files: %v", round, tmps)
		}
		t.Logf("round %d: canceled after %v, %d result(s) persisted", round, delay, st.Count())
	}

	// What survived the chaos is what the final run must not recompute.
	st, err := checkpoint.Open(filepath.Join(dir, "fermi"), key, "chaos", true)
	if err != nil {
		t.Fatalf("final resume: %v", err)
	}
	preKeys = st.Keys()
	final, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	final.SetWorkers(4)
	final.SetCheckpoint(st)
	got := renderString(chaosSweep(final, apps))

	if got != want {
		t.Errorf("resumed sweep is not byte-identical to the serial run:\n--- serial ---\n%s--- resumed ---\n%s", want, got)
	}
	counts := final.computeCounts()
	for _, k := range preKeys {
		if counts[k] != 0 {
			t.Errorf("checkpointed key %s re-simulated %d time(s)", k, counts[k])
		}
	}
	if len(preKeys) > 0 && final.CheckpointHitCount() == 0 {
		t.Errorf("%d checkpointed keys but zero checkpoint hits", len(preKeys))
	}
	t.Logf("final: %d key(s) inherited, %d checkpoint hit(s), %d compute(s)",
		len(preKeys), final.CheckpointHitCount(), len(counts))

	// Goroutine-leak check (no external deps): all workers and waiters must
	// have drained once the sweeps returned.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before chaos, %d after", baseGoroutines, runtime.NumGoroutine())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}
