package harness

import (
	"context"
	"fmt"

	"crat/internal/backend"
	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

// Backend plumbing: the head-to-head experiment evaluates every registered
// optimization backend (internal/backend) on every workload under the
// session's shared analyses, caches, and checkpoint store. The crat and
// crat-local backends delegate to the equivalent comparison modes so they
// share simulations (and checkpoint entries) with the paper figures; new
// backends get their own "backend/<app>/<name>" checkpoint keys.

// SetBackends restricts the backend set the head-to-head experiment
// sweeps (nil or empty = every registered backend). Order is preserved:
// it is the TPSC tie-break order of the union selection.
func (s *Session) SetBackends(names []string) {
	s.mu.Lock()
	s.backendNames = append([]string(nil), names...)
	s.mu.Unlock()
}

// BackendNames returns the session's enabled backend set.
func (s *Session) BackendNames() []string {
	s.mu.Lock()
	names := s.backendNames
	s.mu.Unlock()
	if len(names) == 0 {
		return backend.Names()
	}
	return append([]string(nil), names...)
}

// Backend evaluates one backend for the app (cached), under the session's
// base context: compile with only that backend enabled, simulate the
// chosen candidate at its TLP.
func (s *Session) Backend(p workloads.Profile, name string) (gpusim.Stats, *core.Decision, error) {
	return s.BackendCtx(s.Context(), p, name)
}

// BackendCtx is Backend under an explicit context. The crat and
// crat-local backends are definitionally the ModeCRAT / ModeCRATLocal
// pipelines, so they share those modes' caches and checkpoints; other
// backends are checkpointed under "backend/<app>/<name>" and rebuilt
// deterministically on resume, exactly like modes.
func (s *Session) BackendCtx(ctx context.Context, p workloads.Profile, name string) (gpusim.Stats, *core.Decision, error) {
	switch name {
	case "crat":
		return s.ModeCtx(ctx, p, core.ModeCRAT)
	case "crat-local":
		return s.ModeCtx(ctx, p, core.ModeCRATLocal)
	}
	key := p.Abbr + "/backend/" + name
	ckey := "backend/" + p.Abbr + "/" + name
	c := getCall(s, s.backendRes, key)
	r, err := c.do(ctx, func() (modeResult, error) {
		a, _, err := s.AnalysisCtx(ctx, p)
		if err != nil {
			return modeResult{}, err
		}
		opts := core.Options{Arch: s.Arch, OptTLP: a.OptTLP, Costs: s.Costs, Workers: s.Workers(),
			VerifyEquivalence: s.verifyOn(), Backends: []string{name}}
		var e modeEntry
		if s.ckptGet(ckey, &e) {
			d, err := core.CompileModeCtx(ctx, s.App(p), core.ModeCRAT, opts)
			if err != nil {
				return modeResult{}, err
			}
			s.noteDegradation(key, d)
			return modeResult{stats: e.Stats, decision: d}, nil
		}
		s.noteCompute(ckey)
		st, d, err := core.RunModeCtx(ctx, s.App(p), core.ModeCRAT, opts)
		if err != nil {
			return modeResult{}, err
		}
		s.noteDegradation(key, d)
		s.ckptPut(ckey, modeEntry{Stats: st})
		return modeResult{stats: st, decision: d}, nil
	})
	return r.stats, r.decision, err
}

// UnionWinner compiles the app once with every enabled backend competing
// under one TPSC selection and returns the winning backend's name. With
// the session's profiled OptTLP and measured costs pinned this is pure
// deterministic compilation — no simulations — so it is cached in memory
// but never checkpointed.
func (s *Session) UnionWinner(p workloads.Profile) (string, error) {
	return s.UnionWinnerCtx(s.Context(), p)
}

// UnionWinnerCtx is UnionWinner under an explicit context.
func (s *Session) UnionWinnerCtx(ctx context.Context, p workloads.Profile) (string, error) {
	c := getCall(s, s.unionWin, p.Abbr)
	return c.do(ctx, func() (string, error) {
		a, _, err := s.AnalysisCtx(ctx, p)
		if err != nil {
			return "", err
		}
		d, err := core.CompileModeCtx(ctx, s.App(p), core.ModeCRAT, core.Options{
			Arch: s.Arch, OptTLP: a.OptTLP, Costs: s.Costs, Workers: s.Workers(),
			Backends: s.BackendNames()})
		if err != nil {
			return "", err
		}
		return d.Backend, nil
	})
}

// BackendHeadToHead is the ROADMAP item-3 figure: every enabled backend
// across all 22 workloads, reporting the analysis MaxReg and each
// backend's chosen register count, TLP, and simulated cycles, plus the
// backend the union TPSC selection would pick. The notes summarize
// per-backend selection counts and each backend's cycle geomean
// normalized to crat.
func (s *Session) BackendHeadToHead() (*Table, error) {
	return s.backendHeadToHead(workloads.All())
}

// backendHeadToHead builds the head-to-head table over the given apps
// (the determinism tests run it on a subset).
func (s *Session) backendHeadToHead(apps []workloads.Profile) (*Table, error) {
	names := s.BackendNames()
	cols := []string{"app", "MaxReg"}
	for _, name := range names {
		cols = append(cols, name+" reg", name+" TLP", name+" cycles")
	}
	cols = append(cols, "winner")
	t := &Table{
		ID:      "backends",
		Title:   "Optimization-backend head-to-head across all workloads",
		Columns: cols,
	}
	type perBackend struct {
		reg, tlp int
		cycles   int64
	}
	wins := make(map[string]int)
	ratios := make(map[string][]float64) // cycles(crat)/cycles(b) per app
	beatCrat := make(map[string]int)
	n := 0
	s.forApps(t, apps, func(p workloads.Profile) (func(), error) {
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		rs := make([]perBackend, len(names))
		cratCycles := int64(0)
		for i, name := range names {
			st, d, err := s.Backend(p, name)
			if err != nil {
				return nil, fmt.Errorf("backend %s: %w", name, err)
			}
			rs[i] = perBackend{reg: d.Chosen.UsedRegs(), tlp: d.Chosen.TLP, cycles: st.Cycles}
			if name == "crat" {
				cratCycles = st.Cycles
			}
		}
		winner, err := s.UnionWinner(p)
		if err != nil {
			return nil, err
		}
		return func() {
			row := []string{p.Abbr, fmt.Sprint(a.MaxReg)}
			for i, name := range names {
				row = append(row, fmt.Sprint(rs[i].reg), fmt.Sprint(rs[i].tlp), fmt.Sprint(rs[i].cycles))
				if cratCycles > 0 && rs[i].cycles > 0 {
					ratios[name] = append(ratios[name], float64(cratCycles)/float64(rs[i].cycles))
					if name != "crat" && rs[i].cycles < cratCycles {
						beatCrat[name]++
					}
				}
			}
			row = append(row, winner)
			t.AddRow(row...)
			wins[winner]++
			n++
		}, nil
	})
	winNote := "union TPSC selection wins:"
	geoNote := "cycle geomean vs crat:"
	beatNote := "workloads faster than crat:"
	for _, name := range names {
		winNote += fmt.Sprintf(" %s=%d", name, wins[name])
		geoNote += fmt.Sprintf(" %s=%s", name, f(Geomean(ratios[name])))
		if name != "crat" {
			beatNote += fmt.Sprintf(" %s=%d", name, beatCrat[name])
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%s (%d apps)", winNote, n),
		geoNote,
		beatNote,
		"crat/crat-local: allocate then relocate spill sub-stacks (paper); regdem: demote registers to shared memory before allocation (Sakdhnagool et al.)")
	return t, nil
}
