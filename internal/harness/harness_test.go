package harness

import (
	"math"
	"strings"
	"testing"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

// tinyProfile is a minimal fast workload for session-level tests.
func tinyProfile() workloads.Profile {
	return workloads.Profile{
		Name: "tiny", Kernel: "tiny", Abbr: "TINY", Suite: "test",
		Block: 64, Grid: 4,
		Pressure: 6, Chain: 2, StreamIters: 2,
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 1 {
		t.Errorf("Geomean(nil) = %v, want 1", g)
	}
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{1, 1, 1}); g != 1 {
		t.Errorf("Geomean(ones) = %v, want 1", g)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("wide-cell", "3")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "long-column", "wide-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 2 rows aligned: the header and rows share column offsets.
	if len(lines) < 4 {
		t.Fatalf("unexpected render shape:\n%s", out)
	}
}

func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Arch != "" && e.Arch != "fermi" && e.Arch != "kepler" {
			t.Errorf("experiment %s: unknown arch %q", e.ID, e.Arch)
		}
	}
	// Every experiment from DESIGN.md's index must be present.
	for _, id := range []string{"table1", "table2", "table3", "fig1", "fig2", "fig3",
		"fig5", "fig6", "fig7", "fig8", "fig12", "fig13", "fig14", "fig15", "fig16",
		"energy", "fig17", "fig18", "fig19", "fig20", "overhead",
		"abl-sched", "abl-spillcost", "abl-split", "abl-pruning", "abl-tpsc",
		"abl-bypass"} {
		if !seen[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
}

func TestRunExperimentsRejectsUnknown(t *testing.T) {
	var sb strings.Builder
	if err := RunExperiments([]string{"fig99"}, 1, &sb); err == nil {
		t.Error("RunExperiments accepted an unknown id")
	}
}

func TestSessionCaching(t *testing.T) {
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := tinyProfile()
	a1, runs1, err := s.Analysis(p)
	if err != nil {
		t.Fatal(err)
	}
	if a1.OptTLP < 1 || a1.OptTLP > a1.MaxTLP {
		t.Errorf("OptTLP %d out of range", a1.OptTLP)
	}
	if len(runs1) != a1.MaxTLP {
		t.Errorf("profiled %d TLPs, want %d", len(runs1), a1.MaxTLP)
	}
	wall := s.ProfileWall
	a2, _, err := s.Analysis(p)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a1 {
		t.Error("Analysis not cached (pointer differs)")
	}
	if s.ProfileWall != wall {
		t.Error("cached Analysis re-profiled")
	}

	st1, d1, err := s.Mode(p, core.ModeCRAT)
	if err != nil {
		t.Fatal(err)
	}
	st2, d2, err := s.Mode(p, core.ModeCRAT)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || st1.Cycles != st2.Cycles {
		t.Error("Mode not cached")
	}
	sp, err := s.Speedup(p, core.ModeOptTLP)
	if err != nil {
		t.Fatal(err)
	}
	if sp != 1.0 {
		t.Errorf("OptTLP self-speedup = %v, want exactly 1", sp)
	}
}

func TestTable2And3Static(t *testing.T) {
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	t2 := s.Table2()
	if len(t2.Rows) < 8 {
		t.Errorf("table2 rows = %d, want the full configuration", len(t2.Rows))
	}
	t3 := Table3()
	if len(t3.Rows) != 22 {
		t.Errorf("table3 rows = %d, want 22 applications", len(t3.Rows))
	}
}

func TestCostsMeasuredOnce(t *testing.T) {
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Costs.Local <= 0 || s.Costs.Shared <= 0 {
		t.Errorf("costs not measured: %+v", s.Costs)
	}
	if s.Costs.Local <= s.Costs.Shared {
		t.Errorf("local cost %.1f should exceed shared %.1f", s.Costs.Local, s.Costs.Shared)
	}
}
