package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"crat/internal/core"
	"crat/internal/gpusim"
)

// TestCallMemoizesPlainError: deterministic failures must be cached — the
// experiments cannot heal by retrying, so every later caller sees the same
// error without recomputing.
func TestCallMemoizesPlainError(t *testing.T) {
	var c call[int]
	var runs atomic.Int32
	boom := errors.New("boom")
	fn := func() (int, error) { runs.Add(1); return 0, boom }
	if _, err := c.do(context.Background(), fn); !errors.Is(err, boom) {
		t.Fatalf("first do: %v", err)
	}
	if _, err := c.do(context.Background(), fn); !errors.Is(err, boom) {
		t.Fatalf("second do: %v", err)
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1 (plain errors memoize)", n)
	}
}

// TestCallRetriesAfterCancellation: a computation that died because its
// context was canceled must NOT poison the cell — the next caller with a
// live context recomputes and memoizes the real value.
func TestCallRetriesAfterCancellation(t *testing.T) {
	var c call[int]
	var runs atomic.Int32
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.do(canceled, func() (int, error) {
		runs.Add(1)
		return 0, canceled.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader: %v", err)
	}
	v, err := c.do(context.Background(), func() (int, error) {
		runs.Add(1)
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("retry after cancellation: %v, %v; want 42", v, err)
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("fn ran %d times, want 2 (cancellation then retry)", n)
	}
}

// TestCallWaitersSurviveCanceledLeader: waiters blocked on a leader whose
// context dies must elect a new leader rather than inheriting the
// cancellation error. Run with -race: this is the poisoning regression.
func TestCallWaitersSurviveCanceledLeader(t *testing.T) {
	var c call[int]
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{}) // leader signals it is inside fn
	leaderGo := make(chan struct{}) // test releases the leader
	var leaderErr error
	var wgLeader sync.WaitGroup
	wgLeader.Add(1)
	go func() {
		defer wgLeader.Done()
		_, leaderErr = c.do(leaderCtx, func() (int, error) {
			close(leaderIn)
			<-leaderGo
			return 0, leaderCtx.Err()
		})
	}()
	<-leaderIn

	// Pile waiters onto the in-flight cell, then kill the leader.
	const waiters = 8
	vals := make([]int, waiters)
	errs := make([]error, waiters)
	var reruns atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = c.do(context.Background(), func() (int, error) {
				reruns.Add(1)
				return 7, nil
			})
		}(i)
	}
	cancelLeader()
	close(leaderGo)
	wgLeader.Wait()
	wg.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Errorf("leader error = %v, want context.Canceled", leaderErr)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil || vals[i] != 7 {
			t.Errorf("waiter %d: %v, %v; want 7", i, vals[i], errs[i])
		}
	}
	if n := reruns.Load(); n != 1 {
		t.Errorf("waiters recomputed %d times, want exactly 1 new leader", n)
	}
}

// TestSessionAnalysisRetriesAfterCancellation drives the same property
// through the real Session API: an Analysis aborted by a dead context is
// retried by the next caller, while a deterministic failure stays memoized.
func TestSessionAnalysisRetriesAfterCancellation(t *testing.T) {
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := tinyProfile()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.AnalysisCtx(canceled, p); !isCancellation(err) {
		t.Fatalf("canceled analysis: err = %v, want cancellation", err)
	}
	a, _, err := s.AnalysisCtx(context.Background(), p)
	if err != nil {
		t.Fatalf("analysis after canceled attempt: %v", err)
	}
	if a.OptTLP < 1 {
		t.Errorf("OptTLP = %d after retry", a.OptTLP)
	}
	// The live-context result is now memoized: a later canceled caller
	// still gets it (memoized hits never consult the context).
	canceled2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, _, err := s.AnalysisCtx(canceled2, p); err != nil {
		t.Errorf("memoized analysis under dead context: %v", err)
	}
}

// TestSessionModeMemoizesSimFault: a structured simulator fault (not a
// cancellation) is deterministic and must memoize — exactly one compute.
func TestSessionModeMemoizesSimFault(t *testing.T) {
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := tinyProfile()
	bad.Abbr = "BROKEN"
	s.apps[bad.Abbr] = &call[core.App]{}
	s.apps[bad.Abbr].do(context.Background(), func() (core.App, error) { return brokenApp(), nil })

	_, _, err1 := s.Mode(bad, core.ModeMaxTLP)
	if err1 == nil {
		t.Fatal("broken app simulated cleanly")
	}
	if isCancellation(err1) {
		t.Fatalf("exec fault misclassified as cancellation: %v", err1)
	}
	_, _, err2 := s.Mode(bad, core.ModeMaxTLP)
	if !errors.Is(err2, err1) && err1.Error() != err2.Error() {
		t.Errorf("memoized error differs: %v vs %v", err1, err2)
	}
	counts := s.computeCounts()
	if counts["analysis/BROKEN"] != 1 {
		t.Errorf("broken analysis computed %d times, want 1 (errors memoize)", counts["analysis/BROKEN"])
	}
}

// TestSessionTimeoutSurfacesStructuredFault: an expiring deadline must
// surface as a gpusim deadline fault (errors.Is DeadlineExceeded), and the
// session must recover once the pressure is lifted.
func TestSessionTimeoutSurfacesStructuredFault(t *testing.T) {
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := tinyProfile()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // immediate: the profiling sweep must not start
	if _, _, err := s.ModeCtx(ctx, p, core.ModeCRAT); !isCancellation(err) {
		t.Fatalf("mode under dead context: %v", err)
	}
	if _, _, err := s.ModeCtx(context.Background(), p, core.ModeCRAT); err != nil {
		t.Errorf("mode after canceled attempt: %v", err)
	}
}
