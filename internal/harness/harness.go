// Package harness regenerates every table and figure of the CRAT paper's
// evaluation (§7). Each Figure*/Table* function runs the required
// simulations and returns text tables whose rows mirror what the paper
// plots; EXPERIMENTS.md records the paper-vs-measured comparison.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"

	"crat/internal/checkpoint"
	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/pool"
	"crat/internal/workloads"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "fig13"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3f", v) }

// Geomean returns the geometric mean of vs (1.0 for empty input).
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 1
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Session caches per-app analyses, profiling runs, and mode evaluations so
// the figures that share inputs (13-16, energy) do not re-simulate.
//
// A Session is safe for concurrent use: every cache is a singleflight map,
// so when several goroutines request the same key the first computes it and
// the rest block on that computation rather than duplicating it. Results are
// therefore identical to serial use regardless of the worker count.
type Session struct {
	Arch  gpusim.Config
	Costs gpusim.Costs

	mu       sync.Mutex
	ctx      context.Context // base context; nil = context.Background()
	workers  int             // 0 = pool.DefaultWorkers()
	verify   bool            // run the semantic oracle on every compiled mode
	ckpt     *checkpoint.Store
	apps     map[string]*call[core.App]
	analyses map[string]*call[analysisResult]
	modeRes  map[string]*call[modeResult]
	speedups map[string]*call[float64]
	// backendRes caches per-(app, backend) evaluations; unionWin the
	// compile-only union-selection winner per app. backendNames is the
	// enabled backend set (empty = all registered).
	backendRes   map[string]*call[modeResult]
	unionWin     map[string]*call[string]
	backendNames []string
	// computes counts cache-miss computations by key; the concurrency tests
	// assert every key was simulated exactly once, and the chaos tests that
	// checkpointed keys are never simulated at all.
	computes map[string]int
	// ckptHits counts results served from the checkpoint store by key.
	ckptHits map[string]int

	// ProfileWall accumulates profiling wall-clock for the overhead report.
	// Guarded by mu while experiments run; read it only after they finish.
	ProfileWall time.Duration
	// Faults collects every per-app and per-experiment failure captured by
	// the graceful-degradation harness (see FaultSummary). Guarded by mu.
	Faults []FaultRecord
}

// call is a singleflight cell: the first caller (the leader) computes the
// value, concurrent callers for the same key block on that computation, and
// later callers return the memoized result. Errors memoize too — the
// experiments are deterministic, so retrying cannot help — with one
// exception: a computation that failed because a context was canceled or
// timed out is NOT memoized. Its waiters re-check the cell and the first
// with a live context becomes the new leader, so a canceled in-flight
// computation never poisons the cache for later (resumed) callers.
type call[T any] struct {
	mu   sync.Mutex
	done chan struct{} // non-nil while a computation is in flight
	has  bool          // a memoized result exists
	val  T
	err  error
}

// isCancellation reports whether err (anywhere in its chain, including
// structured gpusim FaultCanceled/FaultTimeout faults) stems from context
// cancellation or an expired deadline.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (c *call[T]) do(ctx context.Context, fn func() (T, error)) (T, error) {
	for {
		c.mu.Lock()
		if c.has {
			v, e := c.val, c.err
			c.mu.Unlock()
			return v, e
		}
		if c.done == nil {
			// Leader: compute outside the cell lock so different keys
			// proceed in parallel.
			ch := make(chan struct{})
			c.done = ch
			c.mu.Unlock()
			v, e := fn()
			c.mu.Lock()
			c.done = nil
			if !isCancellation(e) {
				c.has, c.val, c.err = true, v, e
			}
			c.mu.Unlock()
			close(ch)
			return v, e
		}
		ch := c.done
		c.mu.Unlock()
		var zero T
		select {
		case <-ch:
			// The leader finished. If our own context died meanwhile, give
			// up; otherwise loop — either the result is memoized now, or the
			// leader was canceled and we retry as the new leader.
			if err := ctx.Err(); err != nil {
				return zero, err
			}
		case <-ctx.Done():
			// Abandon the wait without disturbing the in-flight computation.
			return zero, ctx.Err()
		}
	}
}

// getCall returns the cell for key, creating it under the session lock. The
// compute itself runs outside the lock (inside the cell's Once), so slow
// simulations of different keys proceed in parallel.
func getCall[T any](s *Session, m map[string]*call[T], key string) *call[T] {
	s.mu.Lock()
	c, ok := m[key]
	if !ok {
		c = &call[T]{}
		m[key] = c
	}
	s.mu.Unlock()
	return c
}

type analysisResult struct {
	a    *core.Analysis
	runs []gpusim.Stats
}

type modeResult struct {
	stats    gpusim.Stats
	decision *core.Decision
}

// NewSession prepares a session for the architecture, measuring the
// microbenchmark costs once.
func NewSession(arch gpusim.Config) (*Session, error) {
	costs, err := gpusim.MeasureCosts(arch)
	if err != nil {
		return nil, err
	}
	return &Session{
		Arch:       arch,
		Costs:      costs,
		apps:       make(map[string]*call[core.App]),
		analyses:   make(map[string]*call[analysisResult]),
		modeRes:    make(map[string]*call[modeResult]),
		speedups:   make(map[string]*call[float64]),
		backendRes: make(map[string]*call[modeResult]),
		unionWin:   make(map[string]*call[string]),
		computes:   make(map[string]int),
		ckptHits:   make(map[string]int),
	}, nil
}

// SetContext installs the session's base context: Analysis/Mode/Speedup
// calls without an explicit context (every figure runner) observe its
// cancellation and deadline. nil restores context.Background().
func (s *Session) SetContext(ctx context.Context) {
	s.mu.Lock()
	s.ctx = ctx
	s.mu.Unlock()
}

// Context returns the session's base context (Background when unset).
func (s *Session) Context() context.Context {
	s.mu.Lock()
	ctx := s.ctx
	s.mu.Unlock()
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// SetCheckpoint attaches a durable result store: completed analyses, mode
// evaluations, and speedups are persisted to it, and consulted before
// simulating. The store must have been opened against this session's
// configuration hash (see ConfigHash) — the manifest check in
// checkpoint.Open enforces that.
func (s *Session) SetCheckpoint(st *checkpoint.Store) {
	s.mu.Lock()
	s.ckpt = st
	s.mu.Unlock()
}

// SetVerify enables the differential semantic-equivalence oracle on every
// mode compilation: a divergent kernel degrades to the verified baseline
// allocation (core.Options.VerifyEquivalence) and the degradation is
// recorded in the session's fault summary.
func (s *Session) SetVerify(on bool) {
	s.mu.Lock()
	s.verify = on
	s.mu.Unlock()
}

func (s *Session) verifyOn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verify
}

// Checkpoint returns the attached store (nil when checkpointing is off).
func (s *Session) Checkpoint() *checkpoint.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckpt
}

// ConfigHash fingerprints everything the session's cached results depend
// on: the architecture configuration and the microbenchmarked costs. A
// checkpoint written under a different hash must not be resumed.
func (s *Session) ConfigHash() string {
	h, err := checkpoint.Hash(struct {
		Arch  gpusim.Config
		Costs gpusim.Costs
	}{s.Arch, s.Costs})
	if err != nil {
		// gpusim.Config and Costs are plain data; Marshal cannot fail on
		// them. Degrade to a constant that still namespaces by arch.
		return "unhashable/" + s.Arch.Name
	}
	return h
}

// noteCkptHit records that key was served from the checkpoint store.
func (s *Session) noteCkptHit(key string) {
	s.mu.Lock()
	s.ckptHits[key]++
	s.mu.Unlock()
}

// CheckpointHits snapshots the per-key checkpoint-hit counts.
func (s *Session) CheckpointHits() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.ckptHits))
	for k, v := range s.ckptHits {
		out[k] = v
	}
	return out
}

// CheckpointHitCount totals the results served from the checkpoint store.
func (s *Session) CheckpointHitCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, v := range s.ckptHits {
		n += v
	}
	return n
}

// ckptGet decodes the entry under key into out, counting a hit.
func (s *Session) ckptGet(key string, out any) bool {
	st := s.Checkpoint()
	if st == nil {
		return false
	}
	ok, err := st.Get(key, out)
	if err != nil {
		// A malformed entry is treated as a miss: recomputing is always
		// safe, and the rewrite will repair the journal.
		s.recordFault("checkpoint", fmt.Errorf("ignoring entry %q: %w", key, err))
		return false
	}
	if ok {
		s.noteCkptHit(key)
	}
	return ok
}

// ckptPut persists a completed result. Persistence failures degrade to
// session faults rather than failing the experiment: the computed result
// is still correct, the sweep just loses durability for that key.
func (s *Session) ckptPut(key string, v any) {
	st := s.Checkpoint()
	if st == nil {
		return
	}
	if err := st.Put(key, v); err != nil {
		s.recordFault("checkpoint", fmt.Errorf("persisting %q: %w", key, err))
	}
}

// SetWorkers bounds the goroutines the session fans experiments across.
// n <= 0 restores the default (one per CPU); 1 makes every run serial.
func (s *Session) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	s.workers = n
	s.mu.Unlock()
}

// Workers returns the session's effective worker count.
func (s *Session) Workers() int {
	s.mu.Lock()
	n := s.workers
	s.mu.Unlock()
	if n == 0 {
		return pool.DefaultWorkers()
	}
	return n
}

// noteCompute records that key's value was actually computed (not served
// from cache): the dedup tests read these counts.
func (s *Session) noteCompute(key string) {
	s.mu.Lock()
	s.computes[key]++
	s.mu.Unlock()
}

// computeCounts snapshots the per-key computation counts.
func (s *Session) computeCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.computes))
	for k, v := range s.computes {
		out[k] = v
	}
	return out
}

// analysisEntry is the checkpoint payload for one app's analysis: the
// profiled OptTLP and the per-TLP profiling runs. The Analysis struct
// itself is recomputed — core.Analyze is deterministic compilation, no
// simulator cycles — so only the simulated artifacts persist.
type analysisEntry struct {
	OptTLP int            `json:"optTLP"`
	Runs   []gpusim.Stats `json:"runs"`
}

// modeEntry is the checkpoint payload for one (app, mode) evaluation. The
// Decision is rebuilt by core.CompileModeCtx (deterministic given OptTLP
// and Costs); only the simulated stats persist.
type modeEntry struct {
	Stats gpusim.Stats `json:"stats"`
}

// App returns the materialized app for a profile, cached. Building an app
// is deterministic codegen (no simulation), so it takes no context.
func (s *Session) App(p workloads.Profile) core.App {
	c := getCall(s, s.apps, p.Abbr)
	a, _ := c.do(context.Background(), func() (core.App, error) { return p.App(), nil })
	return a
}

// Analysis returns the app's analysis with OptTLP profiled, plus the per-TLP
// profiling runs (cached), under the session's base context.
func (s *Session) Analysis(p workloads.Profile) (*core.Analysis, []gpusim.Stats, error) {
	return s.AnalysisCtx(s.Context(), p)
}

// AnalysisCtx is Analysis under an explicit context. A checkpointed result
// restores the profiled OptTLP and runs without simulating; otherwise the
// profiling sweep runs (observing ctx) and the result is persisted.
func (s *Session) AnalysisCtx(ctx context.Context, p workloads.Profile) (*core.Analysis, []gpusim.Stats, error) {
	key := "analysis/" + p.Abbr
	c := getCall(s, s.analyses, p.Abbr)
	r, err := c.do(ctx, func() (analysisResult, error) {
		app := s.App(p)
		a, err := core.Analyze(app, s.Arch)
		if err != nil {
			return analysisResult{}, err
		}
		var e analysisEntry
		if s.ckptGet(key, &e) {
			a.OptTLP = e.OptTLP
			return analysisResult{a: a, runs: e.Runs}, nil
		}
		s.noteCompute(key)
		start := time.Now()
		opt, runs, err := core.ProfileOptTLPNCtx(ctx, app, s.Arch, a, s.Workers())
		if err != nil {
			return analysisResult{}, err
		}
		elapsed := time.Since(start)
		s.mu.Lock()
		s.ProfileWall += elapsed
		s.mu.Unlock()
		a.OptTLP = opt
		s.ckptPut(key, analysisEntry{OptTLP: opt, Runs: runs})
		return analysisResult{a: a, runs: runs}, nil
	})
	return r.a, r.runs, err
}

// Mode evaluates one §7.2 comparison mode for the app (cached), under the
// session's base context. The OptTLP comes from the session's profiled
// analysis, so modes share it.
func (s *Session) Mode(p workloads.Profile, mode core.Mode) (gpusim.Stats, *core.Decision, error) {
	return s.ModeCtx(s.Context(), p, mode)
}

// ModeCtx is Mode under an explicit context. A checkpointed result restores
// the simulated stats and deterministically recompiles the Decision
// (core.CompileModeCtx runs zero simulations when OptTLP and Costs are
// supplied); otherwise the mode is simulated and persisted.
func (s *Session) ModeCtx(ctx context.Context, p workloads.Profile, mode core.Mode) (gpusim.Stats, *core.Decision, error) {
	key := p.Abbr + "/" + mode.String()
	ckey := "mode/" + key
	c := getCall(s, s.modeRes, key)
	r, err := c.do(ctx, func() (modeResult, error) {
		a, _, err := s.AnalysisCtx(ctx, p)
		if err != nil {
			return modeResult{}, err
		}
		opts := core.Options{Arch: s.Arch, OptTLP: a.OptTLP, Costs: s.Costs, Workers: s.Workers(),
			VerifyEquivalence: s.verifyOn()}
		var e modeEntry
		if s.ckptGet(ckey, &e) {
			d, err := core.CompileModeCtx(ctx, s.App(p), mode, opts)
			if err != nil {
				return modeResult{}, err
			}
			s.noteDegradation(key, d)
			return modeResult{stats: e.Stats, decision: d}, nil
		}
		s.noteCompute(ckey)
		st, d, err := core.RunModeCtx(ctx, s.App(p), mode, opts)
		if err != nil {
			return modeResult{}, err
		}
		s.noteDegradation(key, d)
		s.ckptPut(ckey, modeEntry{Stats: st})
		return modeResult{stats: st, decision: d}, nil
	})
	return r.stats, r.decision, err
}

// Speedup returns mode-vs-OptTLP speedup for the app, under the session's
// base context.
func (s *Session) Speedup(p workloads.Profile, mode core.Mode) (float64, error) {
	return s.SpeedupCtx(s.Context(), p, mode)
}

// SpeedupCtx is Speedup under an explicit context, cached and checkpointed
// like ModeCtx: a persisted ratio short-circuits both mode evaluations.
func (s *Session) SpeedupCtx(ctx context.Context, p workloads.Profile, mode core.Mode) (float64, error) {
	key := p.Abbr + "/" + mode.String()
	ckey := "speedup/" + key
	c := getCall(s, s.speedups, key)
	return c.do(ctx, func() (float64, error) {
		var v float64
		if s.ckptGet(ckey, &v) {
			return v, nil
		}
		s.noteCompute(ckey)
		base, _, err := s.ModeCtx(ctx, p, core.ModeOptTLP)
		if err != nil {
			return 0, err
		}
		st, _, err := s.ModeCtx(ctx, p, mode)
		if err != nil {
			return 0, err
		}
		v = float64(base.Cycles) / float64(st.Cycles)
		s.ckptPut(ckey, v)
		return v, nil
	})
}
