// Package harness regenerates every table and figure of the CRAT paper's
// evaluation (§7). Each Figure*/Table* function runs the required
// simulations and returns text tables whose rows mirror what the paper
// plots; EXPERIMENTS.md records the paper-vs-measured comparison.
package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/pool"
	"crat/internal/workloads"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "fig13"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3f", v) }

// Geomean returns the geometric mean of vs (1.0 for empty input).
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 1
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Session caches per-app analyses, profiling runs, and mode evaluations so
// the figures that share inputs (13-16, energy) do not re-simulate.
//
// A Session is safe for concurrent use: every cache is a singleflight map,
// so when several goroutines request the same key the first computes it and
// the rest block on that computation rather than duplicating it. Results are
// therefore identical to serial use regardless of the worker count.
type Session struct {
	Arch  gpusim.Config
	Costs gpusim.Costs

	mu       sync.Mutex
	workers  int // 0 = pool.DefaultWorkers()
	apps     map[string]*call[core.App]
	analyses map[string]*call[analysisResult]
	modeRes  map[string]*call[modeResult]
	// computes counts cache-miss computations by key; the concurrency tests
	// assert every key was simulated exactly once.
	computes map[string]int

	// ProfileWall accumulates profiling wall-clock for the overhead report.
	// Guarded by mu while experiments run; read it only after they finish.
	ProfileWall time.Duration
	// Faults collects every per-app and per-experiment failure captured by
	// the graceful-degradation harness (see FaultSummary). Guarded by mu.
	Faults []FaultRecord
}

// call is a singleflight cell: the first caller computes the value under the
// sync.Once, concurrent callers for the same key block on it, and later
// callers return the memoized result (errors memoize too — the experiments
// are deterministic, so retrying cannot help).
type call[T any] struct {
	once sync.Once
	val  T
	err  error
}

func (c *call[T]) do(fn func() (T, error)) (T, error) {
	c.once.Do(func() { c.val, c.err = fn() })
	return c.val, c.err
}

// getCall returns the cell for key, creating it under the session lock. The
// compute itself runs outside the lock (inside the cell's Once), so slow
// simulations of different keys proceed in parallel.
func getCall[T any](s *Session, m map[string]*call[T], key string) *call[T] {
	s.mu.Lock()
	c, ok := m[key]
	if !ok {
		c = &call[T]{}
		m[key] = c
	}
	s.mu.Unlock()
	return c
}

type analysisResult struct {
	a    *core.Analysis
	runs []gpusim.Stats
}

type modeResult struct {
	stats    gpusim.Stats
	decision *core.Decision
}

// NewSession prepares a session for the architecture, measuring the
// microbenchmark costs once.
func NewSession(arch gpusim.Config) (*Session, error) {
	costs, err := gpusim.MeasureCosts(arch)
	if err != nil {
		return nil, err
	}
	return &Session{
		Arch:     arch,
		Costs:    costs,
		apps:     make(map[string]*call[core.App]),
		analyses: make(map[string]*call[analysisResult]),
		modeRes:  make(map[string]*call[modeResult]),
		computes: make(map[string]int),
	}, nil
}

// SetWorkers bounds the goroutines the session fans experiments across.
// n <= 0 restores the default (one per CPU); 1 makes every run serial.
func (s *Session) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	s.workers = n
	s.mu.Unlock()
}

// Workers returns the session's effective worker count.
func (s *Session) Workers() int {
	s.mu.Lock()
	n := s.workers
	s.mu.Unlock()
	if n == 0 {
		return pool.DefaultWorkers()
	}
	return n
}

// noteCompute records that key's value was actually computed (not served
// from cache): the dedup tests read these counts.
func (s *Session) noteCompute(key string) {
	s.mu.Lock()
	s.computes[key]++
	s.mu.Unlock()
}

// computeCounts snapshots the per-key computation counts.
func (s *Session) computeCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.computes))
	for k, v := range s.computes {
		out[k] = v
	}
	return out
}

// App returns the materialized app for a profile, cached.
func (s *Session) App(p workloads.Profile) core.App {
	c := getCall(s, s.apps, p.Abbr)
	a, _ := c.do(func() (core.App, error) { return p.App(), nil })
	return a
}

// Analysis returns the app's analysis with OptTLP profiled, plus the per-TLP
// profiling runs (cached).
func (s *Session) Analysis(p workloads.Profile) (*core.Analysis, []gpusim.Stats, error) {
	c := getCall(s, s.analyses, p.Abbr)
	r, err := c.do(func() (analysisResult, error) {
		s.noteCompute("analysis/" + p.Abbr)
		app := s.App(p)
		a, err := core.Analyze(app, s.Arch)
		if err != nil {
			return analysisResult{}, err
		}
		start := time.Now()
		opt, runs, err := core.ProfileOptTLPN(app, s.Arch, a, s.Workers())
		if err != nil {
			return analysisResult{}, err
		}
		elapsed := time.Since(start)
		s.mu.Lock()
		s.ProfileWall += elapsed
		s.mu.Unlock()
		a.OptTLP = opt
		return analysisResult{a: a, runs: runs}, nil
	})
	return r.a, r.runs, err
}

// Mode evaluates one §7.2 comparison mode for the app (cached). The OptTLP
// comes from the session's profiled analysis, so modes share it.
func (s *Session) Mode(p workloads.Profile, mode core.Mode) (gpusim.Stats, *core.Decision, error) {
	key := p.Abbr + "/" + mode.String()
	c := getCall(s, s.modeRes, key)
	r, err := c.do(func() (modeResult, error) {
		s.noteCompute("mode/" + key)
		a, _, err := s.Analysis(p)
		if err != nil {
			return modeResult{}, err
		}
		opts := core.Options{Arch: s.Arch, OptTLP: a.OptTLP, Costs: s.Costs, Workers: s.Workers()}
		st, d, err := core.RunMode(s.App(p), mode, opts)
		if err != nil {
			return modeResult{}, err
		}
		return modeResult{stats: st, decision: d}, nil
	})
	return r.stats, r.decision, err
}

// Speedup returns mode-vs-OptTLP speedup for the app.
func (s *Session) Speedup(p workloads.Profile, mode core.Mode) (float64, error) {
	base, _, err := s.Mode(p, core.ModeOptTLP)
	if err != nil {
		return 0, err
	}
	st, _, err := s.Mode(p, mode)
	if err != nil {
		return 0, err
	}
	return float64(base.Cycles) / float64(st.Cycles), nil
}
