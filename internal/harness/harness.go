// Package harness regenerates every table and figure of the CRAT paper's
// evaluation (§7). Each Figure*/Table* function runs the required
// simulations and returns text tables whose rows mirror what the paper
// plots; EXPERIMENTS.md records the paper-vs-measured comparison.
package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "fig13"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3f", v) }

// Geomean returns the geometric mean of vs (1.0 for empty input).
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 1
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Session caches per-app analyses, profiling runs, and mode evaluations so
// the figures that share inputs (13-16, energy) do not re-simulate.
type Session struct {
	Arch  gpusim.Config
	Costs gpusim.Costs

	apps     map[string]core.App
	analyses map[string]*core.Analysis
	optRuns  map[string][]gpusim.Stats
	modeRes  map[string]modeResult
	// Elapsed accumulates profiling wall-clock for the overhead report.
	ProfileWall time.Duration
	// Faults collects every per-app and per-experiment failure captured by
	// the graceful-degradation harness (see FaultSummary).
	Faults []FaultRecord
}

type modeResult struct {
	stats    gpusim.Stats
	decision *core.Decision
}

// NewSession prepares a session for the architecture, measuring the
// microbenchmark costs once.
func NewSession(arch gpusim.Config) (*Session, error) {
	costs, err := gpusim.MeasureCosts(arch)
	if err != nil {
		return nil, err
	}
	return &Session{
		Arch:     arch,
		Costs:    costs,
		apps:     make(map[string]core.App),
		analyses: make(map[string]*core.Analysis),
		optRuns:  make(map[string][]gpusim.Stats),
		modeRes:  make(map[string]modeResult),
	}, nil
}

// App returns the materialized app for a profile, cached.
func (s *Session) App(p workloads.Profile) core.App {
	if a, ok := s.apps[p.Abbr]; ok {
		return a
	}
	a := p.App()
	s.apps[p.Abbr] = a
	return a
}

// Analysis returns the app's analysis with OptTLP profiled, plus the per-TLP
// profiling runs (cached).
func (s *Session) Analysis(p workloads.Profile) (*core.Analysis, []gpusim.Stats, error) {
	if a, ok := s.analyses[p.Abbr]; ok {
		return a, s.optRuns[p.Abbr], nil
	}
	app := s.App(p)
	a, err := core.Analyze(app, s.Arch)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	opt, runs, err := core.ProfileOptTLP(app, s.Arch, a)
	if err != nil {
		return nil, nil, err
	}
	s.ProfileWall += time.Since(start)
	a.OptTLP = opt
	s.analyses[p.Abbr] = a
	s.optRuns[p.Abbr] = runs
	return a, runs, nil
}

// Mode evaluates one §7.2 comparison mode for the app (cached). The OptTLP
// comes from the session's profiled analysis, so modes share it.
func (s *Session) Mode(p workloads.Profile, mode core.Mode) (gpusim.Stats, *core.Decision, error) {
	key := p.Abbr + "/" + mode.String()
	if r, ok := s.modeRes[key]; ok {
		return r.stats, r.decision, nil
	}
	a, _, err := s.Analysis(p)
	if err != nil {
		return gpusim.Stats{}, nil, err
	}
	opts := core.Options{Arch: s.Arch, OptTLP: a.OptTLP, Costs: s.Costs}
	st, d, err := core.RunMode(s.App(p), mode, opts)
	if err != nil {
		return gpusim.Stats{}, nil, err
	}
	s.modeRes[key] = modeResult{st, d}
	return st, d, nil
}

// Speedup returns mode-vs-OptTLP speedup for the app.
func (s *Session) Speedup(p workloads.Profile, mode core.Mode) (float64, error) {
	base, _, err := s.Mode(p, core.ModeOptTLP)
	if err != nil {
		return 0, err
	}
	st, _, err := s.Mode(p, mode)
	if err != nil {
		return 0, err
	}
	return float64(base.Cycles) / float64(st.Cycles), nil
}
