package harness

import (
	"fmt"
	"sort"
	"strings"
)

// FaultRecord attributes one captured failure to the experiment and app it
// occurred in, for the session-level fault summary.
type FaultRecord struct {
	Experiment string // table ID (e.g. "fig13"), or experiment ID for whole-experiment failures
	App        string // app abbreviation, or "" for whole-experiment failures
	Err        error
}

// capture runs fn and converts a panic into an ordinary error, so one
// broken app or experiment cannot take down the whole figure run.
func capture(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn()
}

// perApp runs one app's contribution to a table with graceful degradation:
// on error (or panic) it appends an ERROR row and a note naming the app,
// records the fault on the session, and reports false so the caller skips
// that app's aggregate contribution. The remaining apps still render.
func (s *Session) perApp(t *Table, abbr string, fn func() error) bool {
	err := capture(fn)
	if err == nil {
		return true
	}
	row := make([]string, len(t.Columns))
	if len(row) == 0 {
		row = []string{abbr, "ERROR"}
	} else {
		row[0] = abbr
		if len(row) > 1 {
			row[1] = "ERROR"
		}
	}
	t.Rows = append(t.Rows, row)
	t.Notes = append(t.Notes, fmt.Sprintf("%s failed: %v", abbr, err))
	s.Faults = append(s.Faults, FaultRecord{Experiment: t.ID, App: abbr, Err: err})
	return false
}

// recordFault notes a whole-experiment failure on the session.
func (s *Session) recordFault(experiment string, err error) {
	s.Faults = append(s.Faults, FaultRecord{Experiment: experiment, App: "", Err: err})
}

// FaultSummary renders every fault captured during the session, or nil when
// the session ran clean.
func (s *Session) FaultSummary() *Table {
	if len(s.Faults) == 0 {
		return nil
	}
	t := &Table{
		ID:      "faults",
		Title:   fmt.Sprintf("Fault summary (%d captured)", len(s.Faults)),
		Columns: []string{"experiment", "app", "error"},
	}
	recs := append([]FaultRecord(nil), s.Faults...)
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Experiment != recs[j].Experiment {
			return recs[i].Experiment < recs[j].Experiment
		}
		return recs[i].App < recs[j].App
	})
	for _, r := range recs {
		app := r.App
		if app == "" {
			app = "-"
		}
		msg := r.Err.Error()
		// Keep the summary table one line per fault; the full multi-line
		// fault (warp states etc.) is already in the figure's notes.
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i] + " ..."
		}
		t.AddRow(r.Experiment, app, msg)
	}
	return t
}
