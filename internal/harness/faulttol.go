package harness

import (
	"fmt"
	"sort"
	"strings"

	"crat/internal/core"
	"crat/internal/pool"
	"crat/internal/workloads"
)

// FaultRecord attributes one captured failure to the experiment and app it
// occurred in, for the session-level fault summary.
type FaultRecord struct {
	Experiment string // table ID (e.g. "fig13"), or experiment ID for whole-experiment failures
	App        string // app abbreviation, or "" for whole-experiment failures
	Err        error
}

// capture runs fn and converts a panic into an ordinary error, so one
// broken app or experiment cannot take down the whole figure run.
func capture(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return fn()
}

// perApp runs one app's contribution to a table with graceful degradation:
// on error (or panic) it appends an ERROR row and a note naming the app,
// records the fault on the session, and reports false so the caller skips
// that app's aggregate contribution. The remaining apps still render.
func (s *Session) perApp(t *Table, abbr string, fn func() error) bool {
	err := capture(fn)
	if err == nil {
		return true
	}
	s.faultRow(t, abbr, err)
	return false
}

// faultRow appends one app's ERROR row, note, and session fault record.
// Callers own the table; only the session fault list needs the lock.
func (s *Session) faultRow(t *Table, abbr string, err error) {
	row := make([]string, len(t.Columns))
	if len(row) == 0 {
		row = []string{abbr, "ERROR"}
	} else {
		row[0] = abbr
		if len(row) > 1 {
			row[1] = "ERROR"
		}
	}
	t.Rows = append(t.Rows, row)
	t.Notes = append(t.Notes, fmt.Sprintf("%s failed: %v", abbr, err))
	s.mu.Lock()
	s.Faults = append(s.Faults, FaultRecord{Experiment: t.ID, App: abbr, Err: err})
	s.mu.Unlock()
}

// forApps is the parallel per-app table builder: job(p) runs each app's
// simulations across the session's worker pool and returns an emit closure
// that appends the app's rows (and aggregate contributions). Emits — and
// fault rows for failed apps — replay serially in input order, so the
// rendered table, the aggregate rows built from emit-appended slices, and
// the fault list are all byte-identical to the serial loop. Panics inside
// job degrade into ERROR rows exactly like perApp. The sweep runs under
// the session's base context: once it is canceled, remaining apps are
// skipped and recorded as canceled fault rows.
func (s *Session) forApps(t *Table, apps []workloads.Profile, job func(p workloads.Profile) (func(), error)) {
	type result struct {
		emit func()
		err  error
	}
	ctx := s.Context()
	out := make([]result, len(apps))
	ran := make([]bool, len(apps))
	_ = pool.RunCtx(ctx, s.Workers(), len(apps), func(i int) {
		ran[i] = true
		var emit func()
		err := capture(func() error {
			e, err := job(apps[i])
			emit = e
			return err
		})
		out[i] = result{emit: emit, err: err}
	})
	for i, r := range out {
		if !ran[i] {
			// Cancellation hit before this app was dispatched.
			s.faultRow(t, apps[i].Abbr, fmt.Errorf("skipped: %w", ctx.Err()))
			continue
		}
		if r.err != nil {
			s.faultRow(t, apps[i].Abbr, r.err)
			continue
		}
		r.emit()
	}
}

// noteDegradation records an oracle-triggered degraded-mode compilation in
// the session's fault summary: the pipeline completed (on the verified
// baseline allocation), but the divergence it routed around must stay
// visible in the final report. The mode key ("ABBR/Mode") splits into the
// summary's experiment and app columns. Decisions that are not degraded —
// and cached replays, which never reach the compute closure — record
// nothing.
func (s *Session) noteDegradation(key string, d *core.Decision) {
	if d == nil || !d.Degraded {
		return
	}
	app, mode := key, ""
	if i := strings.IndexByte(key, '/'); i >= 0 {
		app, mode = key[:i], key[i+1:]
	}
	s.mu.Lock()
	s.Faults = append(s.Faults, FaultRecord{
		Experiment: "oracle/" + mode,
		App:        app,
		Err:        fmt.Errorf("degraded to baseline allocation: %w", d.Divergence),
	})
	s.mu.Unlock()
}

// recordFault notes a whole-experiment failure on the session.
func (s *Session) recordFault(experiment string, err error) {
	s.mu.Lock()
	s.Faults = append(s.Faults, FaultRecord{Experiment: experiment, App: "", Err: err})
	s.mu.Unlock()
}

// FaultSummary renders every fault captured during the session, or nil when
// the session ran clean.
func (s *Session) FaultSummary() *Table {
	s.mu.Lock()
	recs := append([]FaultRecord(nil), s.Faults...)
	s.mu.Unlock()
	if len(recs) == 0 {
		return nil
	}
	t := &Table{
		ID:      "faults",
		Title:   fmt.Sprintf("Fault summary (%d captured)", len(recs)),
		Columns: []string{"experiment", "app", "error"},
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Experiment != recs[j].Experiment {
			return recs[i].Experiment < recs[j].Experiment
		}
		return recs[i].App < recs[j].App
	})
	for _, r := range recs {
		app := r.App
		if app == "" {
			app = "-"
		}
		msg := r.Err.Error()
		// Keep the summary table one line per fault; the full multi-line
		// fault (warp states etc.) is already in the figure's notes.
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i] + " ..."
		}
		t.AddRow(r.Experiment, app, msg)
	}
	return t
}
