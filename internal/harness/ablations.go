package harness

import (
	"fmt"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/ptx"
	"crat/internal/regalloc"
	"crat/internal/spillopt"
	"crat/internal/workloads"
)

// ablationApps is the subset used by the ablation studies: the three apps
// with residual spills plus the most cache-sensitive one.
func ablationApps() []workloads.Profile {
	var out []workloads.Profile
	for _, abbr := range []string{"CFD", "FDTD", "STE", "KMN"} {
		p, _ := workloads.ByAbbr(abbr)
		out = append(out, p)
	}
	return out
}

// AblationScheduler compares GTO against loose round-robin at the profiled
// OptTLP: GTO is the paper's baseline scheduler (Table 2) and underpins the
// static OptTLP estimator.
func (s *Session) AblationScheduler() (*Table, error) {
	t := &Table{
		ID:      "abl-sched",
		Title:   "Ablation: GTO vs LRR warp scheduling",
		Columns: []string{"app", "GTO cycles", "LRR cycles", "GTO/LRR"},
	}
	lrrArch := s.Arch
	lrrArch.Scheduler = gpusim.SchedLRR
	s.forApps(t, ablationApps(), func(p workloads.Profile) (func(), error) {
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		gto, _, err := s.Mode(p, core.ModeOptTLP)
		if err != nil {
			return nil, err
		}
		app := s.App(p)
		alloc, err := regalloc.Allocate(app.Kernel, regalloc.Options{Regs: a.DefaultReg})
		if err != nil {
			return nil, err
		}
		lrr, err := core.SimulateKernel(app, lrrArch, alloc.Kernel, alloc.UsedRegs, a.OptTLP)
		if err != nil {
			return nil, err
		}
		return func() {
			t.AddRow(p.Abbr, fmt.Sprint(gto.Cycles), fmt.Sprint(lrr.Cycles),
				f(float64(gto.Cycles)/float64(lrr.Cycles)))
		}, nil
	})
	return t, nil
}

// AblationSpillCost compares the loop-depth-weighted spill-cost heuristic
// against unweighted static counts.
func (s *Session) AblationSpillCost() (*Table, error) {
	t := &Table{
		ID:      "abl-spillcost",
		Title:   "Ablation: loop-weighted vs unweighted spill cost",
		Columns: []string{"app", "weighted cycles", "unweighted cycles", "weighted speedup"},
	}
	s.forApps(t, ablationApps(), func(p workloads.Profile) (func(), error) {
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		weighted, _, err := s.Mode(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		stU, _, err := core.RunMode(s.App(p), core.ModeCRAT, core.Options{
			Arch: s.Arch, OptTLP: a.OptTLP, Costs: s.Costs,
			UnweightedSpillCost: true, UnweightedGain: true,
		})
		if err != nil {
			return nil, err
		}
		return func() {
			t.AddRow(p.Abbr, fmt.Sprint(weighted.Cycles), fmt.Sprint(stU.Cycles),
				f(float64(stU.Cycles)/float64(weighted.Cycles)))
		}, nil
	})
	t.Notes = append(t.Notes, "the weighted heuristic avoids spilling loop-resident values; gains appear when hot and cold values compete")
	return t, nil
}

// AblationSubstackSplit compares Algorithm 1's by-type split against the
// whole-stack and per-variable alternatives (the paper leaves alternative
// splits as future work).
func (s *Session) AblationSubstackSplit() (*Table, error) {
	t := &Table{
		ID:      "abl-split",
		Title:   "Ablation: spill-stack splitting strategy (Algorithm 1)",
		Columns: []string{"app", "by-type", "whole-stack", "per-variable"},
	}
	s.forApps(t, ablationApps(), func(p workloads.Profile) (func(), error) {
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		base, _, err := s.Mode(p, core.ModeOptTLP)
		if err != nil {
			return nil, err
		}
		row := []string{p.Abbr}
		for _, split := range []spillopt.Split{spillopt.SplitByType, spillopt.SplitWhole, spillopt.SplitPerVariable} {
			st, _, err := core.RunMode(s.App(p), core.ModeCRAT, core.Options{
				Arch: s.Arch, OptTLP: a.OptTLP, Costs: s.Costs, Split: split,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, f(float64(base.Cycles)/float64(st.Cycles)))
		}
		return func() { t.AddRow(row...) }, nil
	})
	t.Notes = append(t.Notes, "speedups vs OptTLP; finer splits can place more of the stack when spare shared memory is scarce")
	return t, nil
}

// AblationPruning verifies the §4.2 pruning: the chosen point must match
// the unpruned search while evaluating far fewer candidates.
func (s *Session) AblationPruning() (*Table, error) {
	t := &Table{
		ID:      "abl-pruning",
		Title:   "Ablation: design-space pruning (paper §4.2)",
		Columns: []string{"app", "pruned candidates", "unpruned candidates", "same choice"},
	}
	s.forApps(t, ablationApps(), func(p workloads.Profile) (func(), error) {
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		pruned, err := core.Optimize(s.App(p), core.Options{
			Arch: s.Arch, OptTLP: a.OptTLP, Costs: s.Costs, SpillShared: true,
		})
		if err != nil {
			return nil, err
		}
		full, err := core.Optimize(s.App(p), core.Options{
			Arch: s.Arch, OptTLP: a.OptTLP, Costs: s.Costs, SpillShared: true,
			DisablePruning: true,
		})
		if err != nil {
			return nil, err
		}
		same := pruned.Chosen.Reg == full.Chosen.Reg && pruned.Chosen.TLP == full.Chosen.TLP
		return func() {
			t.AddRow(p.Abbr, fmt.Sprint(len(pruned.Candidates)), fmt.Sprint(len(full.Candidates)),
				fmt.Sprint(same))
		}, nil
	})
	t.Notes = append(t.Notes, "pruning discards thrashing-TLP points; the winner is expected to survive (TPSC already penalizes low-TLP-gain points)")
	return t, nil
}

// AblationTPSC measures how close the TPSC model's pick comes to the oracle
// (exhaustive simulation of every pruned candidate).
func (s *Session) AblationTPSC() (*Table, error) {
	t := &Table{
		ID:      "abl-tpsc",
		Title:   "Ablation: TPSC model vs simulation oracle (paper §6)",
		Columns: []string{"app", "TPSC choice", "oracle choice", "TPSC cycles", "oracle cycles", "gap"},
	}
	s.forApps(t, ablationApps(), func(p workloads.Profile) (func(), error) {
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		opts := core.Options{Arch: s.Arch, OptTLP: a.OptTLP, Costs: s.Costs, SpillShared: true, Workers: s.Workers()}
		tpsc, err := core.Optimize(s.App(p), opts)
		if err != nil {
			return nil, err
		}
		stT, err := core.SimulateKernel(s.App(p), s.Arch, tpsc.Chosen.Kernel(), tpsc.Chosen.UsedRegs(), tpsc.Chosen.TLP)
		if err != nil {
			return nil, err
		}
		oOpts := opts
		oOpts.Oracle = true
		oracle, err := core.Optimize(s.App(p), oOpts)
		if err != nil {
			return nil, err
		}
		gap := float64(stT.Cycles)/float64(oracle.Chosen.Cycles) - 1
		return func() {
			t.AddRow(p.Abbr,
				fmt.Sprintf("(%d,%d)", tpsc.Chosen.Reg, tpsc.Chosen.TLP),
				fmt.Sprintf("(%d,%d)", oracle.Chosen.Reg, oracle.Chosen.TLP),
				fmt.Sprint(stT.Cycles), fmt.Sprint(oracle.Chosen.Cycles),
				fmt.Sprintf("%+.1f%%", gap*100))
		}, nil
	})
	t.Notes = append(t.Notes, "paper: 'TPSC metric can accurately capture the tradeoff between single-thread performance and TLP'")
	return t, nil
}

// AblationBypass coordinates CRAT with L1 cache bypassing (paper §8 notes
// the two compose): the CRAT-chosen kernel is run as-is and with every
// global load marked ld.global.cg. Bypassing helps thrashing access
// patterns (it spares the L1 for reusable data) and hurts cache-friendly
// ones.
func (s *Session) AblationBypass() (*Table, error) {
	t := &Table{
		ID:      "abl-bypass",
		Title:   "Ablation: CRAT with L1 cache bypassing (ld.global.cg)",
		Columns: []string{"app", "CRAT cycles", "CRAT+bypass cycles", "bypass speedup", "L1 hit", "L1 hit bypass"},
	}
	s.forApps(t, ablationApps(), func(p workloads.Profile) (func(), error) {
		base, d, err := s.Mode(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		k := d.Chosen.Kernel().Clone()
		for i := range k.Insts {
			in := &k.Insts[i]
			if in.Op == ptx.OpLd && in.Space == ptx.SpaceGlobal {
				in.Bypass = true
			}
		}
		st, err := core.SimulateKernel(s.App(p), s.Arch, k, d.Chosen.UsedRegs(), d.Chosen.TLP)
		if err != nil {
			return nil, err
		}
		return func() {
			t.AddRow(p.Abbr, fmt.Sprint(base.Cycles), fmt.Sprint(st.Cycles),
				f(float64(base.Cycles)/float64(st.Cycles)),
				f(base.L1HitRate()), f(st.L1HitRate()))
		}, nil
	})
	t.Notes = append(t.Notes, "all-loads bypassing is the bluntest policy; selective bypassing (paper refs [35-39]) would pick per-load")
	return t, nil
}
