package harness

import (
	"fmt"
	"time"

	"crat/internal/core"
	"crat/internal/workloads"
)

// Figure17 evaluates CRAT on the Kepler-like architecture (paper Figure 17:
// 1.32X geomean vs OptTLP). Call on a Session built over KeplerConfig.
func (s *Session) Figure17() (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   fmt.Sprintf("CRAT speedup vs OptTLP on %s (paper Fig 17)", s.Arch.Name),
		Columns: []string{"app", "CRAT speedup"},
	}
	var speeds []float64
	s.forApps(t, workloads.Sensitive(), func(p workloads.Profile) (func(), error) {
		sp, err := s.Speedup(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		return func() {
			speeds = append(speeds, sp)
			t.AddRow(p.Abbr, f(sp))
		}, nil
	})
	t.AddRow("GEOMEAN", f(Geomean(speeds)))
	t.Notes = append(t.Notes, "paper: 1.32X geomean on Kepler (vs 1.25X on Fermi); the larger register file shrinks some gains (LBM, FDTD, CFD) and the higher thread limit grows others (SPMV, HST, BLK, STE)")
	return t, nil
}

// Figure18 is the input-sensitivity study (paper §7.4, Figure 18): CFD and
// BLK across 3 inputs each; the decision profiled on the default input is
// applied to every input and compared to that input's own OptTLP baseline.
func (s *Session) Figure18() (*Table, error) {
	t := &Table{
		ID:      "fig18",
		Title:   "CRAT speedup across inputs (paper Fig 18)",
		Columns: []string{"app", "input", "OptTLP (profiled)", "CRAT speedup"},
	}
	var profiles []workloads.Profile
	for _, abbr := range []string{"CFD", "BLK"} {
		p, _ := workloads.ByAbbr(abbr)
		profiles = append(profiles, p)
	}
	s.forApps(t, profiles, func(p workloads.Profile) (func(), error) {
		// Profile the decision on the default input.
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		_, d, err := s.Mode(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for _, in := range workloads.InputsFor(p.Abbr) {
			app := p.AppWithInput(in)
			// Per-input OptTLP baseline at the default allocation.
			ai, err := core.Analyze(app, s.Arch)
			if err != nil {
				return nil, err
			}
			opt, _, err := core.ProfileOptTLPN(app, s.Arch, ai, s.Workers())
			if err != nil {
				return nil, err
			}
			baseSt, _, err := core.RunMode(app, core.ModeOptTLP, core.Options{Arch: s.Arch, OptTLP: opt, Costs: s.Costs})
			if err != nil {
				return nil, err
			}
			// Apply the default-input decision (same kernel; inputs share
			// the kernel, only the launch differs).
			st, err := core.SimulateKernel(app, s.Arch, d.Chosen.Kernel(), d.Chosen.UsedRegs(), d.Chosen.TLP)
			if err != nil {
				return nil, err
			}
			rows = append(rows, []string{p.Abbr, in.Name, fmt.Sprint(a.OptTLP),
				f(float64(baseSt.Cycles) / float64(st.Cycles))})
		}
		return func() {
			for _, r := range rows {
				t.AddRow(r...)
			}
		}, nil
	})
	t.Notes = append(t.Notes,
		"paper: different profiling inputs give the same OptTLP; CRAT's speedup holds across inputs")
	return t, nil
}

// Figure19 evaluates the resource-insensitive applications (paper Figure
// 19: neither OptTLP nor CRAT moves them).
func (s *Session) Figure19() (*Table, error) {
	t := &Table{
		ID:      "fig19",
		Title:   "Resource-insensitive applications, normalized to OptTLP (paper Fig 19)",
		Columns: []string{"app", "MaxTLP", "OptTLP", "CRAT"},
	}
	var maxs, crats []float64
	s.forApps(t, workloads.Insensitive(), func(p workloads.Profile) (func(), error) {
		spMax, err := s.Speedup(p, core.ModeMaxTLP)
		if err != nil {
			return nil, err
		}
		spCrat, err := s.Speedup(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		return func() {
			maxs = append(maxs, spMax)
			crats = append(crats, spCrat)
			t.AddRow(p.Abbr, f(spMax), "1.000", f(spCrat))
		}, nil
	})
	t.AddRow("GEOMEAN", f(Geomean(maxs)), "1.000", f(Geomean(crats)))
	t.Notes = append(t.Notes, "paper: no remarkable improvement for either technique on this class")
	return t, nil
}

// Figure20 compares CRAT-profile with CRAT-static (paper Figure 20 / §7.6:
// 1.22X vs 1.25X geomean).
func (s *Session) Figure20() (*Table, error) {
	t := &Table{
		ID:      "fig20",
		Title:   "CRAT-profile vs CRAT-static (paper Fig 20)",
		Columns: []string{"app", "OptTLP profiled", "OptTLP static", "CRAT-profile", "CRAT-static"},
	}
	var profs, stats []float64
	s.forApps(t, workloads.Sensitive(), func(p workloads.Profile) (func(), error) {
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		spProf, err := s.Speedup(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		app := s.App(p)
		in, err := core.MeasureStaticInputs(app, s.Arch, a)
		if err != nil {
			return nil, err
		}
		optStatic := core.EstimateOptTLP(a, s.Arch, in)
		stStatic, _, err := core.RunMode(app, core.ModeCRAT, core.Options{Arch: s.Arch, OptTLP: optStatic, Costs: s.Costs})
		if err != nil {
			return nil, err
		}
		base, _, err := s.Mode(p, core.ModeOptTLP)
		if err != nil {
			return nil, err
		}
		spStatic := float64(base.Cycles) / float64(stStatic.Cycles)
		return func() {
			profs = append(profs, spProf)
			stats = append(stats, spStatic)
			t.AddRow(p.Abbr, fmt.Sprint(a.OptTLP), fmt.Sprint(optStatic), f(spProf), f(spStatic))
		}, nil
	})
	t.AddRow("GEOMEAN", "", "", f(Geomean(profs)), f(Geomean(stats)))
	t.Notes = append(t.Notes, "paper: CRAT-static achieves 1.22X vs CRAT-profile's 1.25X")
	return t, nil
}

// Overhead reports the framework overhead (paper §7.7): profiling
// simulations per app and the wall-clock of profiled vs static OptTLP.
func (s *Session) Overhead() (*Table, error) {
	t := &Table{
		ID:      "overhead",
		Title:   "CRAT overhead (paper §7.7)",
		Columns: []string{"app", "profiling sims", "profiling wall", "static wall"},
	}
	totalRuns := 0
	s.forApps(t, workloads.Sensitive(), func(p workloads.Profile) (func(), error) {
		app := s.App(p)
		a, err := core.Analyze(app, s.Arch)
		if err != nil {
			return nil, err
		}
		startP := time.Now()
		_, runs, err := core.ProfileOptTLPN(app, s.Arch, a, s.Workers())
		if err != nil {
			return nil, err
		}
		profWall := time.Since(startP)
		startS := time.Now()
		in, err := core.MeasureStaticInputs(app, s.Arch, a)
		if err != nil {
			return nil, err
		}
		_ = core.EstimateOptTLP(a, s.Arch, in)
		statWall := time.Since(startS)
		return func() {
			totalRuns += len(runs)
			t.AddRow(p.Abbr, fmt.Sprint(len(runs)), profWall.Round(time.Millisecond).String(),
				statWall.Round(time.Millisecond).String())
		}, nil
	})
	t.AddRow("TOTAL", fmt.Sprint(totalRuns), "", "")
	t.Notes = append(t.Notes,
		"paper: profiling needs <= MaxTLP runs per app (avg 5, max 8); static analysis needs one cheap TLP=1 run plus ~1ms of analysis",
		"the static estimator's wall-clock is dominated by its single TLP=1 measurement run")
	return t, nil
}
