package harness

import (
	"fmt"
	"time"

	"crat/internal/passes"
)

// PassTimingTable renders the process-wide per-pass aggregates the pass
// manager records on every pipeline execution: how often each pass ran,
// its cumulative wall time, and the net instruction-count change it
// produced (experiments -pass-times; BenchmarkPassTimings feeds the same
// numbers into BENCH_*.json through cmd/benchjson).
func PassTimingTable() *Table {
	t := &Table{
		ID:      "pass-times",
		Title:   "per-pass wall time and IR-size delta (process-wide)",
		Columns: []string{"pass", "runs", "wall", "insts-delta"},
	}
	for _, tm := range passes.Timings() {
		t.AddRow(tm.Pass,
			fmt.Sprintf("%d", tm.Runs),
			tm.Wall.Round(time.Microsecond).String(),
			fmt.Sprintf("%+d", tm.InstsDelta))
	}
	if len(t.Rows) == 0 {
		t.Notes = append(t.Notes, "no passes executed in this process")
	}
	return t
}
