package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/ptx"
	"crat/internal/workloads"
)

func TestPerApp(t *testing.T) {
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := &Table{ID: "figX", Title: "test", Columns: []string{"app", "val", "extra"}}

	if !s.perApp(tab, "OK", func() error {
		tab.AddRow("OK", "1.000", "x")
		return nil
	}) {
		t.Error("successful fn reported as failed")
	}
	if s.perApp(tab, "ERR", func() error { return errors.New("simulated failure") }) {
		t.Error("erroring fn reported as ok")
	}
	if s.perApp(tab, "PANIC", func() error { panic("boom") }) {
		t.Error("panicking fn reported as ok")
	}

	if len(tab.Rows) != 3 {
		t.Fatalf("table has %d rows, want 3 (1 data + 2 error)", len(tab.Rows))
	}
	for _, row := range tab.Rows[1:] {
		if row[1] != "ERROR" {
			t.Errorf("failure row %v lacks the ERROR marker", row)
		}
		if len(row) != len(tab.Columns) {
			t.Errorf("failure row %v has %d cells, want %d", row, len(row), len(tab.Columns))
		}
	}
	if len(tab.Notes) != 2 {
		t.Fatalf("table has %d notes, want 2", len(tab.Notes))
	}
	if !strings.Contains(tab.Notes[0], "simulated failure") {
		t.Errorf("note %q does not carry the error", tab.Notes[0])
	}
	if !strings.Contains(tab.Notes[1], "panic: boom") {
		t.Errorf("note %q does not carry the recovered panic", tab.Notes[1])
	}
	if len(s.Faults) != 2 {
		t.Fatalf("session recorded %d faults, want 2", len(s.Faults))
	}
	if s.Faults[0].Experiment != "figX" || s.Faults[0].App != "ERR" {
		t.Errorf("fault record = %+v", s.Faults[0])
	}

	sum := s.FaultSummary()
	if sum == nil {
		t.Fatal("FaultSummary nil with recorded faults")
	}
	if len(sum.Rows) != 2 {
		t.Errorf("fault summary has %d rows, want 2", len(sum.Rows))
	}
	var buf strings.Builder
	sum.Render(&buf)
	if !strings.Contains(buf.String(), "figX") || !strings.Contains(buf.String(), "PANIC") {
		t.Errorf("rendered summary incomplete:\n%s", buf.String())
	}
}

func TestFaultSummaryNilWhenClean(t *testing.T) {
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.FaultSummary() != nil {
		t.Error("clean session has a fault summary")
	}
}

// brokenApp returns an app whose kernel passes static verification but
// faults in the simulator on the first executed instruction — the shape of
// bug the graceful-degradation harness exists for.
func brokenApp() core.App {
	b := ptx.NewBuilder("broken")
	b.Param("out", ptx.U64)
	r := b.Reg(ptx.U32)
	b.Sfu(ptx.OpSin, ptx.U32, r, ptx.Imm(1)) // statically well-formed, faults at exec
	b.Exit()
	return core.App{
		Name:   "BROKEN",
		Kernel: b.Kernel(),
		Grid:   4,
		Block:  64,
		Setup: func(mem *gpusim.Memory) []uint64 {
			return []uint64{mem.Alloc(1024)}
		},
	}
}

// TestFigureDegradesGracefully drives a figure-shaped per-app loop where
// the middle app's simulation faults: the other apps must still render,
// the broken one gets an ERROR row plus a note naming the fault, and the
// session records it.
func TestFigureDegradesGracefully(t *testing.T) {
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	good := tinyProfile()
	bad := workloads.Profile{Name: "broken", Kernel: "broken", Abbr: "BROKEN", Suite: "test",
		Block: 64, Grid: 4, Pressure: 4, Chain: 2, StreamIters: 2}
	// Poison the cache: Analysis will simulate this kernel.
	s.apps[bad.Abbr] = &call[core.App]{}
	s.apps[bad.Abbr].do(context.Background(), func() (core.App, error) { return brokenApp(), nil })

	tab := &Table{ID: "figtest", Title: "degradation test",
		Columns: []string{"app", "OptTLP", "MaxTLP"}}
	for _, p := range []workloads.Profile{good, bad} {
		s.perApp(tab, p.Abbr, func() error {
			a, _, err := s.Analysis(p)
			if err != nil {
				return err
			}
			tab.AddRow(p.Abbr, fmt.Sprint(a.OptTLP), fmt.Sprint(a.MaxTLP))
			return nil
		})
	}

	if len(tab.Rows) != 2 {
		t.Fatalf("table has %d rows, want 2:\n%+v", len(tab.Rows), tab.Rows)
	}
	if tab.Rows[0][0] != "TINY" || tab.Rows[0][1] == "ERROR" {
		t.Errorf("healthy app row damaged: %v", tab.Rows[0])
	}
	if tab.Rows[1][0] != "BROKEN" || tab.Rows[1][1] != "ERROR" {
		t.Errorf("broken app row = %v, want an ERROR marker", tab.Rows[1])
	}
	if len(tab.Notes) != 1 || !strings.Contains(tab.Notes[0], "BROKEN failed") {
		t.Errorf("notes = %v, want one naming the broken app", tab.Notes)
	}
	// The structured simulator fault must survive the capture intact.
	if len(s.Faults) != 1 {
		t.Fatalf("session recorded %d faults, want 1", len(s.Faults))
	}
	var f *gpusim.Fault
	if !errors.As(s.Faults[0].Err, &f) || f.Kind != gpusim.FaultExec {
		t.Errorf("recorded error %v does not unwrap to an exec fault", s.Faults[0].Err)
	}

	// And the rendered table still shows the healthy app.
	var buf strings.Builder
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "TINY") || !strings.Contains(out, "ERROR") {
		t.Errorf("rendered table incomplete:\n%s", out)
	}
}
