package harness

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crat/internal/checkpoint"
)

// writeAlienManifest plants a checkpoint manifest keyed to a different
// configuration, so a resume against it is stale.
func writeAlienManifest(t *testing.T, dir string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	man, _ := json.Marshal(map[string]any{"version": checkpoint.Version, "key": "someone-elses-config"})
	if err := os.WriteFile(filepath.Join(dir, checkpoint.ManifestFilename), man, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestResumeDegradesToFresh: a stale checkpoint under a non-strict
// resume recomputes instead of refusing — with a "checkpoint:" warning
// naming the cause — while -strict keeps the hard error.
func TestResumeDegradesToFresh(t *testing.T) {
	dir := t.TempDir()
	writeAlienManifest(t, filepath.Join(dir, "fermi"))

	var buf strings.Builder
	rep, err := RunExperimentsCtx(context.Background(), []string{"table2"},
		RunOptions{Workers: 1, CheckpointDir: dir, Resume: true}, &buf)
	if err != nil {
		t.Fatalf("non-strict resume over a stale checkpoint failed: %v", err)
	}
	if len(rep.Failed) != 0 {
		t.Errorf("failed experiments: %v", rep.Failed)
	}
	out := buf.String()
	if !strings.Contains(out, "checkpoint: resume of") || !strings.Contains(out, "starting fresh") {
		t.Errorf("output lacks the degrade warning:\n%s", out)
	}
	if rep.Loaded != 0 {
		t.Errorf("loaded %d entries from a stale checkpoint", rep.Loaded)
	}

	// The non-strict run re-initialized dir; a strict resume needs its own
	// stale directory to prove the hard error survives.
	strictDir := t.TempDir()
	writeAlienManifest(t, filepath.Join(strictDir, "fermi"))
	var strictBuf strings.Builder
	_, err = RunExperimentsCtx(context.Background(), []string{"table2"},
		RunOptions{Workers: 1, CheckpointDir: strictDir, Resume: true, Strict: true}, &strictBuf)
	if !errors.Is(err, checkpoint.ErrStale) {
		t.Fatalf("strict resume over a stale checkpoint = %v, want ErrStale", err)
	}
}
