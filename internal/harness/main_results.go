package harness

import (
	"fmt"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

// Figure13 is the headline result: MaxTLP, OptTLP, CRAT-local, and CRAT
// performance normalized to OptTLP across the resource-sensitive apps
// (paper Figure 13: CRAT-local 1.17X, CRAT 1.25X geomean, up to 1.79X).
func (s *Session) Figure13() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Performance normalized to OptTLP (paper Fig 13)",
		Columns: []string{"app", "MaxTLP", "OptTLP", "CRAT-local", "CRAT"},
	}
	var maxs, locals, crats []float64
	s.forApps(t, workloads.Sensitive(), func(p workloads.Profile) (func(), error) {
		row := []string{p.Abbr}
		var vals [4]float64
		for i, m := range []core.Mode{core.ModeMaxTLP, core.ModeOptTLP, core.ModeCRATLocal, core.ModeCRAT} {
			sp, err := s.Speedup(p, m)
			if err != nil {
				return nil, err
			}
			row = append(row, f(sp))
			vals[i] = sp
		}
		return func() {
			// Only a fully evaluated app contributes to the geomeans.
			maxs = append(maxs, vals[0])
			locals = append(locals, vals[2])
			crats = append(crats, vals[3])
			t.AddRow(row...)
		}, nil
	})
	t.AddRow("GEOMEAN", f(Geomean(maxs)), "1.000", f(Geomean(locals)), f(Geomean(crats)))
	t.Notes = append(t.Notes,
		"paper geomeans: CRAT-local 1.17X, CRAT 1.25X (up to 1.79X)",
		"paper: CRAT == OptTLP for STM, SPMV, KMN, LBM (default registers already optimal)",
		"paper: CRAT > CRAT-local only where residual spills remain (DTC, FDTD, CFD, STE)")
	return t, nil
}

// Figure14 compares the TLP selected by MaxTLP and CRAT (paper Figure 14:
// 5.1 vs 2.6 blocks average).
func (s *Session) Figure14() (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "Selected TLP: MaxTLP vs CRAT (paper Fig 14)",
		Columns: []string{"app", "MaxTLP blocks", "CRAT blocks"},
	}
	var sumMax, sumCrat float64
	n := 0
	s.forApps(t, workloads.Sensitive(), func(p workloads.Profile) (func(), error) {
		_, dMax, err := s.Mode(p, core.ModeMaxTLP)
		if err != nil {
			return nil, err
		}
		_, dCrat, err := s.Mode(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		return func() {
			t.AddRow(p.Abbr, fmt.Sprint(dMax.Chosen.TLP), fmt.Sprint(dCrat.Chosen.TLP))
			sumMax += float64(dMax.Chosen.TLP)
			sumCrat += float64(dCrat.Chosen.TLP)
			n++
		}, nil
	})
	if n > 0 {
		t.AddRow("AVERAGE", f(sumMax/float64(n)), f(sumCrat/float64(n)))
	}
	t.Notes = append(t.Notes, "paper: MaxTLP averages 5.1 blocks/SM, CRAT 2.6")
	return t, nil
}

// Figure15 compares register utilization between OptTLP and CRAT (paper
// Figure 15: +15-27% where improvable).
func (s *Session) Figure15() (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "Register utilization: OptTLP vs CRAT (paper Fig 15)",
		Columns: []string{"app", "OptTLP util", "CRAT util"},
	}
	var sumOpt, sumCrat float64
	n := 0
	s.forApps(t, workloads.Sensitive(), func(p workloads.Profile) (func(), error) {
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		_, dOpt, err := s.Mode(p, core.ModeOptTLP)
		if err != nil {
			return nil, err
		}
		_, dCrat, err := s.Mode(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		uo := core.RegisterUtilization(s.Arch, dOpt.Chosen.TLP, a.BlockSize, dOpt.Chosen.Reg)
		uc := core.RegisterUtilization(s.Arch, dCrat.Chosen.TLP, a.BlockSize, dCrat.Chosen.UsedRegs())
		return func() {
			t.AddRow(p.Abbr, f(uo), f(uc))
			sumOpt += uo
			sumCrat += uc
			n++
		}, nil
	})
	if n > 0 {
		t.AddRow("AVERAGE", f(sumOpt/float64(n)), f(sumCrat/float64(n)))
	}
	t.Notes = append(t.Notes, "paper: utilization unchanged for STM/SPMV/KMN/LBM, improved 15-27% elsewhere")
	return t, nil
}

// Figure16 compares dynamic local-memory accesses of CRAT-local and CRAT on
// the apps with residual spills (paper Figure 16: 42% average reduction).
func (s *Session) Figure16() (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Normalized local memory accesses: CRAT vs CRAT-local (paper Fig 16)",
		Columns: []string{"app", "CRAT-local", "CRAT", "reduction"},
	}
	var ratios []float64
	s.forApps(t, workloads.Sensitive(), func(p workloads.Profile) (func(), error) {
		stL, _, err := s.Mode(p, core.ModeCRATLocal)
		if err != nil {
			return nil, err
		}
		if stL.LocalOps() == 0 {
			return func() {}, nil // no residual spills: not part of this figure
		}
		stC, _, err := s.Mode(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		ratio := float64(stC.LocalOps()) / float64(stL.LocalOps())
		return func() {
			ratios = append(ratios, ratio)
			t.AddRow(p.Abbr, "1.000", f(ratio), f(1-ratio))
		}, nil
	})
	if len(ratios) > 0 {
		sum := 0.0
		for _, r := range ratios {
			sum += r
		}
		avg := sum / float64(len(ratios))
		t.AddRow("AVERAGE", "1.000", f(avg), f(1-avg))
	}
	t.Notes = append(t.Notes, "paper: local memory accesses reduced by 42% on average (DTC, FDTD, CFD, STE)")
	return t, nil
}

// Energy reports the energy of CRAT relative to OptTLP (paper §7.2: 16.5%
// average saving).
func (s *Session) Energy() (*Table, error) {
	model := gpusim.DefaultEnergyModel()
	t := &Table{
		ID:      "energy",
		Title:   "Energy: CRAT normalized to OptTLP (paper §7.2)",
		Columns: []string{"app", "OptTLP (J)", "CRAT (J)", "CRAT/OptTLP"},
	}
	var ratios []float64
	s.forApps(t, workloads.Sensitive(), func(p workloads.Profile) (func(), error) {
		stO, _, err := s.Mode(p, core.ModeOptTLP)
		if err != nil {
			return nil, err
		}
		stC, _, err := s.Mode(p, core.ModeCRAT)
		if err != nil {
			return nil, err
		}
		eo := model.Energy(s.Arch, stO)
		ec := model.Energy(s.Arch, stC)
		return func() {
			ratios = append(ratios, ec/eo)
			t.AddRow(p.Abbr, fmt.Sprintf("%.2e", eo), fmt.Sprintf("%.2e", ec), f(ec/eo))
		}, nil
	})
	if len(ratios) > 0 {
		sum := 0.0
		for _, r := range ratios {
			sum += r
		}
		avg := sum / float64(len(ratios))
		t.AddRow("AVERAGE", "", "", f(avg))
		t.Notes = append(t.Notes, fmt.Sprintf("average saving %.1f%% (paper: 16.5%%)", (1-avg)*100))
	}
	return t, nil
}
