package harness

import (
	"strings"
	"testing"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/regalloc"
)

// mutateFirstF32Add flips the first f32 add to a sub: a value-only
// corruption (never an address or loop counter), so simulations of the
// mutated kernel still run to completion — only the oracle can tell.
func mutateFirstF32Add(k *ptx.Kernel) {
	for i := range k.Insts {
		if k.Insts[i].Op == ptx.OpAdd && k.Insts[i].Type == ptx.F32 {
			k.Insts[i].Op = ptx.OpSub
			return
		}
	}
}

// TestSessionVerifyDegradedMode is the end-to-end acceptance scenario: a
// miscompile injected inside regalloc must be caught by the oracle, the
// mode evaluation must still complete (on the verified baseline
// allocation), and the degradation must appear in the session's fault
// summary table.
func TestSessionVerifyDegradedMode(t *testing.T) {
	p := tinyProfile()
	p.Abbr = "VRFY"
	// Push MaxReg past the 63-register DefaultReg cap: the MaxTLP mode then
	// allocates (and spills) at 63 while the baseline fallback allocates at
	// MaxReg — distinct budgets, so the mutation below corrupts the mode's
	// kernel and provably spares the fallback.
	p.Pressure = 80

	clean, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	clean.SetVerify(true)
	_, d0, err := clean.Mode(p, core.ModeMaxTLP)
	if err != nil {
		t.Fatalf("clean MaxTLP mode: %v", err)
	}
	if d0.Degraded {
		t.Fatalf("honest pipeline degraded: %+v", d0.Divergence)
	}
	if len(clean.Faults) != 0 {
		t.Fatalf("honest pipeline recorded faults: %+v", clean.Faults)
	}
	chosenReg := d0.Chosen.Reg
	if chosenReg == d0.Analysis.MaxReg {
		t.Fatalf("precondition: chosen budget %d equals MaxReg, so the mutation below could not spare the baseline fallback; raise p.Pressure", chosenReg)
	}

	// Corrupt every physical kernel allocated at the mode's budget (the
	// phys-rewrite pass rebinds its AnalysisManager to the physical kernel,
	// so the After hook sees exactly what the allocation returns). The
	// baseline fallback (MaxReg) stays honest.
	passes.SetGlobalWrap(func(p passes.Pass) passes.Pass {
		pr, ok := passes.Inner(p).(interface{ AllocOptions() regalloc.Options })
		if !ok {
			return p
		}
		return passes.After(p, func(k *ptx.Kernel, _ *passes.AnalysisManager) error {
			if pr.AllocOptions().Regs == chosenReg {
				mutateFirstF32Add(k)
			}
			return nil
		})
	})
	defer passes.SetGlobalWrap(nil)

	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.SetVerify(true)
	_, d, err := s.Mode(p, core.ModeMaxTLP)
	if err != nil {
		t.Fatalf("mode with injected miscompile did not complete: %v", err)
	}
	if !d.Degraded || d.Divergence == nil {
		t.Fatalf("injected miscompile not detected; chosen reg=%d", d.Chosen.Reg)
	}
	if d.Chosen.Reg != d.Analysis.MaxReg {
		t.Fatalf("degraded decision did not fall back to baseline: reg=%d", d.Chosen.Reg)
	}

	// The degradation must be visible in the fault-summary table.
	sum := s.FaultSummary()
	if sum == nil {
		t.Fatalf("degradation missing from fault summary")
	}
	var sb strings.Builder
	sum.Render(&sb)
	rendered := sb.String()
	if !strings.Contains(rendered, "oracle/MaxTLP") || !strings.Contains(rendered, "VRFY") {
		t.Fatalf("fault summary does not name the degraded mode:\n%s", rendered)
	}
	if !strings.Contains(rendered, "degraded to baseline") {
		t.Fatalf("fault summary does not describe the degradation:\n%s", rendered)
	}

	// A cached replay returns the same degraded decision without
	// double-recording the fault.
	_, d2, err := s.Mode(p, core.ModeMaxTLP)
	if err != nil || !d2.Degraded {
		t.Fatalf("cached replay lost the degradation: d=%+v err=%v", d2, err)
	}
	if n := len(s.Faults); n != 1 {
		t.Fatalf("degradation recorded %d times, want 1", n)
	}
}
