package harness

import (
	"fmt"

	"crat/internal/cfg"
	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/pool"
	"crat/internal/ptx"
	"crat/internal/regalloc"
	"crat/internal/spillopt"
	"crat/internal/workloads"
)

// Table1 reports the collected resource-usage parameters (paper Table 1)
// for every resource-sensitive application.
func (s *Session) Table1() (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Collected resource usage parameters (paper Table 1)",
		Columns: []string{"app", "MaxReg", "MinReg", "DefaultReg", "BlockSize", "ShmSize", "MaxTLP", "OptTLP"},
	}
	s.forApps(t, workloads.Sensitive(), func(p workloads.Profile) (func(), error) {
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		return func() {
			t.AddRow(p.Abbr,
				fmt.Sprint(a.MaxReg), fmt.Sprint(a.MinReg), fmt.Sprint(a.DefaultReg),
				fmt.Sprint(a.BlockSize), fmt.Sprint(a.ShmSize),
				fmt.Sprint(a.MaxTLP), fmt.Sprint(a.OptTLP))
		}, nil
	})
	return t, nil
}

// Table2 dumps the simulated configuration (paper Table 2).
func (s *Session) Table2() *Table {
	c := s.Arch
	t := &Table{
		ID:      "table2",
		Title:   "Simulated configuration (paper Table 2)",
		Columns: []string{"parameter", "value"},
	}
	t.AddRow("architecture", c.Name)
	t.AddRow("SMs", fmt.Sprintf("%d (one simulated; L2/DRAM partitioned)", c.NumSMs))
	t.AddRow("register file / SM", fmt.Sprintf("%d x 32-bit (%dKB)", c.RegFileRegs, c.RegFileRegs*4/1024))
	t.AddRow("shared memory / SM", fmt.Sprintf("%dKB", c.SharedMemBytes/1024))
	t.AddRow("TLP limits", fmt.Sprintf("%d threads, %d blocks", c.MaxThreadsPerSM, c.MaxBlocksPerSM))
	t.AddRow("schedulers", fmt.Sprintf("%d per SM, %s", c.NumSchedulers, c.Scheduler))
	t.AddRow("L1 data cache", fmt.Sprintf("%dKB, %d-way, %dB lines, LRU, %d MSHRs",
		c.L1.SizeBytes/1024, c.L1.Assoc, c.L1.LineBytes, c.L1.MSHRs))
	t.AddRow("L2 slice", fmt.Sprintf("%dKB, %d-way", c.L2.SizeBytes/1024, c.L2.Assoc))
	t.AddRow("DRAM", fmt.Sprintf("%.0f B/cycle/SM, +%d cycles", c.DRAMBytesPerCycle, c.DRAMLat))
	t.AddRow("clock", fmt.Sprintf("%d MHz", c.ClockMHz))
	return t
}

// Table3 lists the applications (paper Table 3).
func Table3() *Table {
	t := &Table{
		ID:      "table3",
		Title:   "Applications (paper Table 3)",
		Columns: []string{"application", "kernel", "abbr", "suite", "class"},
	}
	for _, p := range workloads.All() {
		class := "resource insensitive"
		if p.Sensitive {
			class = "resource sensitive"
		}
		t.AddRow(p.Name, p.Kernel, p.Abbr, p.Suite, class)
	}
	return t
}

// Figure1 compares MaxTLP and OptTLP performance and register utilization
// (paper Figure 1a/1b).
func (s *Session) Figure1() (*Table, error) {
	t := &Table{
		ID:      "fig1",
		Title:   "Thread throttling: performance and register utilization (paper Fig 1)",
		Columns: []string{"app", "perf MaxTLP", "perf OptTLP", "util MaxTLP", "util OptTLP", "OptTLP/MaxTLP threads"},
	}
	var speeds, fracs []float64
	s.forApps(t, workloads.Sensitive(), func(p workloads.Profile) (func(), error) {
		a, _, err := s.Analysis(p)
		if err != nil {
			return nil, err
		}
		sp, err := s.Speedup(p, core.ModeMaxTLP)
		if err != nil {
			return nil, err
		}
		// Normalized to MaxTLP: OptTLP speedup = 1/sp.
		opt := 1 / sp
		utilMax := core.RegisterUtilization(s.Arch, a.MaxTLP, a.BlockSize, a.DefaultReg)
		utilOpt := core.RegisterUtilization(s.Arch, a.OptTLP, a.BlockSize, a.DefaultReg)
		frac := float64(a.OptTLP) / float64(a.MaxTLP)
		return func() {
			speeds = append(speeds, opt)
			fracs = append(fracs, frac)
			t.AddRow(p.Abbr, "1.000", f(opt), f(utilMax), f(utilOpt), f(frac))
		}, nil
	})
	t.AddRow("GEOMEAN", "1.000", f(Geomean(speeds)), "", "", f(Geomean(fracs)))
	t.Notes = append(t.Notes, "paper: OptTLP improves performance 1.42X average using ~55% of MaxTLP threads")
	return t, nil
}

// Figure2 sweeps the (reg, TLP) design space for CFD (paper Figure 2).
func (s *Session) Figure2() (*Table, error) {
	p, _ := workloads.ByAbbr("CFD")
	app := s.App(p)
	a, _, err := s.Analysis(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig2",
		Title:   "Design space of register per-thread and TLP for CFD (paper Fig 2)",
		Columns: []string{"reg/thread", "TLP", "cycles", "speedup vs default"},
	}
	lo := a.FeasibleMinReg
	if lo < a.MinReg {
		lo = a.MinReg
	}
	hi := a.MaxReg
	if hi > s.Arch.MaxRegPerThread {
		hi = s.Arch.MaxRegPerThread
	}
	// The sweep points are independent simulations: fan them out, then emit
	// rows in sweep order (the running-baseline logic is order-dependent).
	type point struct{ reg, tlp int }
	var pts []point
	for reg := lo; reg <= hi; reg += 3 {
		if tlp := a.TLPAt(s.Arch, reg); tlp != 0 {
			pts = append(pts, point{reg, tlp})
		}
	}
	stats := make([]gpusim.Stats, len(pts))
	errs := make([]error, len(pts))
	pool.Run(s.Workers(), len(pts), func(i int) {
		stats[i], errs[i] = s.simulatePoint(app, pts[i].reg, pts[i].tlp)
	})
	var baseline int64
	for i, pt := range pts {
		if errs[i] != nil {
			return nil, errs[i]
		}
		st := stats[i]
		if pt.reg == a.DefaultReg || baseline == 0 {
			baseline = st.Cycles
		}
		t.AddRow(fmt.Sprint(pt.reg), fmt.Sprint(pt.tlp), fmt.Sprint(st.Cycles),
			f(float64(baseline)/float64(st.Cycles)))
	}
	t.Notes = append(t.Notes, "staircase: raising reg/thread lowers occupancy; the best point balances both (paper: CFD optimum at high reg, mid TLP)")
	return t, nil
}

// simulatePoint allocates the app's kernel at the register budget and
// simulates it at the TLP.
func (s *Session) simulatePoint(app core.App, reg, tlp int) (gpusim.Stats, error) {
	alloc, err := regalloc.Allocate(app.Kernel, regalloc.Options{Regs: reg})
	if err != nil {
		return gpusim.Stats{}, err
	}
	return core.SimulateKernel(app, s.Arch, alloc.Kernel, alloc.UsedRegs, tlp)
}

// Figure3 details the selected design points for CFD: performance, cache
// behaviour, and register utilization (paper Figure 3).
func (s *Session) Figure3() (*Table, error) {
	p, _ := workloads.ByAbbr("CFD")
	a, _, err := s.Analysis(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig3",
		Title:   "Selected design points for CFD (paper Fig 3)",
		Columns: []string{"solution", "(reg,TLP)", "speedup", "L1 hit", "congestion stalls", "reg util"},
	}
	base, _, err := s.Mode(p, core.ModeMaxTLP)
	if err != nil {
		return nil, err
	}
	add := func(name string, st gpusim.Stats, reg, tlp int) {
		t.AddRow(name, fmt.Sprintf("(%d,%d)", reg, tlp),
			f(float64(base.Cycles)/float64(st.Cycles)),
			f(st.L1HitRate()), fmt.Sprint(st.StallCongestion),
			f(core.RegisterUtilization(s.Arch, tlp, a.BlockSize, reg)))
	}
	st, d, err := s.Mode(p, core.ModeMaxTLP)
	if err != nil {
		return nil, err
	}
	add("MaxTLP", st, d.Chosen.Reg, d.Chosen.TLP)
	st, d, err = s.Mode(p, core.ModeOptTLP)
	if err != nil {
		return nil, err
	}
	add("OptTLP", st, d.Chosen.Reg, d.Chosen.TLP)
	// OptTLP+Reg: keep the optimal TLP but use the rightmost register count
	// of that stair.
	stairs := a.Staircase(s.Arch)
	if reg, ok := stairs[a.OptTLP]; ok {
		stp, err := s.simulatePoint(s.App(p), reg, a.OptTLP)
		if err != nil {
			return nil, err
		}
		add("OptTLP+Reg", stp, reg, a.OptTLP)
	}
	st, d, err = s.Mode(p, core.ModeCRAT)
	if err != nil {
		return nil, err
	}
	add("CRAT", st, d.Chosen.UsedRegs(), d.Chosen.TLP)
	return t, nil
}

// Figure5 shows the impact of throttling on L1 hit rate and congestion
// stalls (paper Figure 5).
func (s *Session) Figure5() (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "Thread throttling impact on the L1 data cache (paper Fig 5)",
		Columns: []string{"app", "L1 hit MaxTLP", "L1 hit OptTLP", "congestion MaxTLP", "congestion OptTLP"},
	}
	s.forApps(t, workloads.Sensitive(), func(p workloads.Profile) (func(), error) {
		maxSt, _, err := s.Mode(p, core.ModeMaxTLP)
		if err != nil {
			return nil, err
		}
		optSt, _, err := s.Mode(p, core.ModeOptTLP)
		if err != nil {
			return nil, err
		}
		return func() {
			t.AddRow(p.Abbr, f(maxSt.L1HitRate()), f(optSt.L1HitRate()),
				fmt.Sprint(maxSt.StallCongestion), fmt.Sprint(optSt.StallCongestion))
		}, nil
	})
	t.Notes = append(t.Notes, "paper: throttling raises hit rate and cuts congestion stalls on cache-sensitive apps")
	return t, nil
}

// Figure6 shows the impact of register per-thread on TLP and dynamic
// instruction count for CFD (paper Figure 6).
func (s *Session) Figure6() (*Table, error) {
	p, _ := workloads.ByAbbr("CFD")
	app := s.App(p)
	a, _, err := s.Analysis(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig6",
		Title:   "Register per-thread vs TLP and instruction count for CFD (paper Fig 6)",
		Columns: []string{"reg/thread", "TLP (occupancy)", "dynamic thread insts", "spill insts (static)"},
	}
	lo := a.FeasibleMinReg
	if lo < a.MinReg {
		lo = a.MinReg
	}
	hi := a.MaxReg
	if hi > s.Arch.MaxRegPerThread {
		hi = s.Arch.MaxRegPerThread
	}
	type point struct{ reg, tlp int }
	var pts []point
	for reg := lo; reg <= hi; reg += 6 {
		if tlp := a.TLPAt(s.Arch, reg); tlp != 0 {
			pts = append(pts, point{reg, tlp})
		}
	}
	type row struct {
		insts int64
		spill int64
	}
	rows := make([]row, len(pts))
	errs := make([]error, len(pts))
	pool.Run(s.Workers(), len(pts), func(i int) {
		alloc, err := regalloc.Allocate(app.Kernel, regalloc.Options{Regs: pts[i].reg})
		if err != nil {
			errs[i] = err
			return
		}
		st, err := core.SimulateKernel(app, s.Arch, alloc.Kernel, alloc.UsedRegs, pts[i].tlp)
		if err != nil {
			errs[i] = err
			return
		}
		o := alloc.Kernel.SpillOverhead()
		rows[i] = row{insts: st.ThreadInsts, spill: int64(o.Locals() + o.Shareds() + o.AddrInsts)}
	})
	for i, pt := range pts {
		if errs[i] != nil {
			return nil, errs[i]
		}
		t.AddRow(fmt.Sprint(pt.reg), fmt.Sprint(pt.tlp), fmt.Sprint(rows[i].insts),
			fmt.Sprint(rows[i].spill))
	}
	t.Notes = append(t.Notes, "paper: more registers lower TLP (a); fewer registers inflate the instruction count through spills (b)")
	return t, nil
}

// Figure7 compares register and shared-memory utilization at MaxTLP
// (paper Figure 7).
func (s *Session) Figure7() (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "Register vs shared memory utilization (paper Fig 7)",
		Columns: []string{"app", "register util", "shared util"},
	}
	var regs, shms []float64
	s.forApps(t, workloads.All(), func(p workloads.Profile) (func(), error) {
		a, err := core.Analyze(s.App(p), s.Arch)
		if err != nil {
			return nil, err
		}
		ru := core.RegisterUtilization(s.Arch, a.MaxTLP, a.BlockSize, a.DefaultReg)
		su := float64(a.ShmSize*int64(a.MaxTLP)) / float64(s.Arch.SharedMemBytes)
		if su > 1 {
			su = 1
		}
		return func() {
			regs = append(regs, ru)
			shms = append(shms, su)
			t.AddRow(p.Abbr, f(ru), f(su))
		}, nil
	})
	var rsum, ssum float64
	for i := range regs {
		rsum += regs[i]
		ssum += shms[i]
	}
	if len(regs) > 0 {
		t.AddRow("AVERAGE", f(rsum/float64(len(regs))), f(ssum/float64(len(shms))))
	}
	t.Notes = append(t.Notes, "paper: shared memory is far less utilized than registers (3.8% vs 65.5%) — the slack Algorithm 1 exploits")
	return t, nil
}

// Figure8 shows that which variable is spilled to shared memory matters,
// using FDTD (paper Figure 8): the knapsack's gain-driven choice vs the
// inverted (worst) choice.
func (s *Session) Figure8() (*Table, error) {
	p, _ := workloads.ByAbbr("FDTD")
	app := s.App(p)
	a, _, err := s.Analysis(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8",
		Title:   "Register and shared memory exploration for FDTD (paper Fig 8)",
		Columns: []string{"configuration", "(reg,TLP)", "cycles", "speedup"},
	}
	// (a) register cap exploration around the default.
	stairs := a.Staircase(s.Arch)
	defTLP := a.TLPAt(s.Arch, a.DefaultReg)
	baseSt, err := s.simulatePoint(app, a.DefaultReg, defTLP)
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("default reg=%d", a.DefaultReg), fmt.Sprintf("(%d,%d)", a.DefaultReg, defTLP),
		fmt.Sprint(baseSt.Cycles), "1.000")
	// Ascending TLP, not map order: the table is diffed against a golden,
	// so emission order must be deterministic.
	for tlp := 1; tlp <= len(stairs); tlp++ {
		reg, ok := stairs[tlp]
		if !ok || reg == a.DefaultReg || tlp > a.OptTLP {
			continue
		}
		st, err := s.simulatePoint(app, reg, tlp)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("reg=%d", reg), fmt.Sprintf("(%d,%d)", reg, tlp),
			fmt.Sprint(st.Cycles), f(float64(baseSt.Cycles)/float64(st.Cycles)))
	}

	// (b) spill-choice comparison at the CRAT-chosen point: best-gain vs
	// worst-gain sub-stack placement with a spare that holds only part of
	// the stack.
	_, d, err := s.Mode(p, core.ModeCRATLocal)
	if err != nil {
		return nil, err
	}
	reg, tlp := d.Chosen.Reg, d.Chosen.TLP
	allocOpts := regalloc.Options{Regs: reg}
	alloc, err := regalloc.Allocate(app.Kernel, allocOpts)
	if err != nil {
		return nil, err
	}
	spare := core.SpareShm(s.Arch, a.ShmSize, tlp) / 2 // partial capacity
	for _, cfg := range []struct {
		name string
		opts spillopt.Options
	}{
		{"spill best-gain vars (CRAT)", spillopt.Options{SpareShmBytes: spare, BlockSize: a.BlockSize, Split: spillopt.SplitPerVariable}},
		{"spill worst-gain vars", spillopt.Options{SpareShmBytes: spare, BlockSize: a.BlockSize, Split: spillopt.SplitPerVariable, PreferLowGain: true}},
	} {
		res, err := spillopt.Optimize(alloc, allocOpts, cfg.opts)
		if err != nil {
			return nil, err
		}
		st, err := core.SimulateKernel(app, s.Arch, res.Alloc.Kernel, res.Alloc.UsedRegs, tlp)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.name, fmt.Sprintf("(%d,%d)", reg, tlp), fmt.Sprint(st.Cycles),
			f(float64(baseSt.Cycles)/float64(st.Cycles)))
	}
	t.Notes = append(t.Notes, "paper: spilling the right variable (var2) to shared memory beats the wrong one (var1): 1.64X vs 1.41X")
	return t, nil
}

// Figure12 cross-validates spill volume between the Chaitin-Briggs
// allocator and the independent linear-scan reference (standing in for the
// nvcc comparison of paper Figure 12), over a register-cap sweep of CFD.
func (s *Session) Figure12() (*Table, error) {
	p, _ := workloads.ByAbbr("CFD")
	app := s.App(p)
	a, _, err := s.Analysis(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig12",
		Title:   "Spill load/store volume: Chaitin-Briggs vs linear scan (paper Fig 12)",
		Columns: []string{"reg cap", "CB insts", "CB bytes", "CB weighted", "LS insts", "LS bytes", "LS weighted"},
	}
	// Sweep from just above the feasibility floor (where the hot,
	// loop-resident values spill and the two allocators' victim choices
	// diverge) up past the default.
	lo := a.FeasibleMinReg + 2
	for reg := lo; reg <= a.DefaultReg+8; reg += 4 {
		cb, err := regalloc.Allocate(app.Kernel, regalloc.Options{Regs: reg})
		if err != nil {
			continue
		}
		ls, err := regalloc.Allocate(app.Kernel, regalloc.Options{Regs: reg, Algorithm: regalloc.AlgoLinearScan})
		if err != nil {
			continue
		}
		cbW, err := weightedSpillCost(cb.Kernel)
		if err != nil {
			return nil, err
		}
		lsW, err := weightedSpillCost(ls.Kernel)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(reg),
			fmt.Sprint(cb.SpillLoads+cb.SpillStores), fmt.Sprint(cb.SpillStackBytes), f(cbW),
			fmt.Sprint(ls.SpillLoads+ls.SpillStores), fmt.Sprint(ls.SpillStackBytes), f(lsW))
	}
	t.Notes = append(t.Notes,
		"paper: the two allocators' spill volumes track each other without matching exactly (§5.2)",
		"'weighted' scales each spill instruction by 10^loop-depth: it exposes *which* variables each allocator chose to spill")
	return t, nil
}

// weightedSpillCost sums 10^loop-depth over the allocator-inserted spill
// instructions of a kernel: a static estimate of dynamic spill traffic.
func weightedSpillCost(k *ptx.Kernel) (float64, error) {
	g, err := cfg.Build(k)
	if err != nil {
		return 0, err
	}
	depth := g.InstLoopDepth()
	total := 0.0
	for i := range k.Insts {
		switch k.Insts[i].Meta {
		case ptx.MetaSpillLoad, ptx.MetaSpillStore:
			w := 1.0
			for d := 0; d < depth[i]; d++ {
				w *= 10
			}
			total += w
		}
	}
	return total, nil
}
