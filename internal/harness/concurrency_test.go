package harness

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

// concApps returns small synthetic profiles that keep the -race runs fast
// while still exercising profiling, allocation, and all four modes.
func concApps() []workloads.Profile {
	base := tinyProfile()
	var out []workloads.Profile
	for i, variant := range []struct {
		pressure int
		chain    int
	}{{6, 2}, {8, 3}, {10, 2}} {
		p := base
		p.Abbr = fmt.Sprintf("TINY%d", i)
		p.Pressure = variant.pressure
		p.Chain = variant.chain
		out = append(out, p)
	}
	return out
}

var concModes = []core.Mode{core.ModeMaxTLP, core.ModeOptTLP, core.ModeCRATLocal, core.ModeCRAT}

// speedupsSerial evaluates every app x mode speedup on a serial session.
func speedupsSerial(t *testing.T, apps []workloads.Profile) map[string]uint64 {
	t.Helper()
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(1)
	out := make(map[string]uint64)
	for _, p := range apps {
		for _, m := range concModes {
			sp, err := s.Speedup(p, m)
			if err != nil {
				t.Fatalf("serial %s/%s: %v", p.Abbr, m, err)
			}
			out[p.Abbr+"/"+m.String()] = math.Float64bits(sp)
		}
	}
	return out
}

// TestSessionConcurrentSpeedup hammers one session with every app x mode
// pair from parallel goroutines and requires the results to be bit-identical
// to a fully serial session. Run under -race this also proves the
// singleflight caches synchronize correctly.
func TestSessionConcurrentSpeedup(t *testing.T) {
	apps := concApps()
	want := speedupsSerial(t, apps)

	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(4)
	type res struct {
		key  string
		bits uint64
		err  error
	}
	var wg sync.WaitGroup
	results := make(chan res, len(apps)*len(concModes)*2)
	// Two rounds per pair: the second round must hit the cache, racing the
	// first round's computations.
	for round := 0; round < 2; round++ {
		for _, p := range apps {
			for _, m := range concModes {
				wg.Add(1)
				go func(p workloads.Profile, m core.Mode) {
					defer wg.Done()
					sp, err := s.Speedup(p, m)
					results <- res{p.Abbr + "/" + m.String(), math.Float64bits(sp), err}
				}(p, m)
			}
		}
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			t.Fatalf("parallel %s: %v", r.key, r.err)
		}
		if r.bits != want[r.key] {
			t.Errorf("%s: parallel %x != serial %x", r.key,
				math.Float64frombits(r.bits), math.Float64frombits(want[r.key]))
		}
	}
}

// TestSessionSimulationDedup asserts the singleflight property: no analysis
// or mode evaluation is ever computed twice, no matter how many goroutines
// request it concurrently.
func TestSessionSimulationDedup(t *testing.T) {
	apps := concApps()
	s, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(4)
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, p := range apps {
			for _, m := range concModes {
				wg.Add(1)
				go func(p workloads.Profile, m core.Mode) {
					defer wg.Done()
					if _, err := s.Speedup(p, m); err != nil {
						t.Errorf("%s/%s: %v", p.Abbr, m, err)
					}
				}(p, m)
			}
		}
		wg.Wait() // between rounds every key is cached; later rounds must not recompute
	}
	for key, n := range s.computeCounts() {
		if n != 1 {
			t.Errorf("key %s computed %d times, want exactly once", key, n)
		}
	}
	// Sanity: the counters actually saw the work.
	counts := s.computeCounts()
	for _, p := range apps {
		if counts["analysis/"+p.Abbr] != 1 {
			t.Errorf("analysis/%s computed %d times", p.Abbr, counts["analysis/"+p.Abbr])
		}
		for _, m := range concModes {
			key := "mode/" + p.Abbr + "/" + m.String()
			if counts[key] != 1 {
				t.Errorf("%s computed %d times", key, counts[key])
			}
		}
	}
}

// TestForAppsMatchesSerial renders the same table body through the parallel
// forApps runner and the serial perApp loop — including a failing app — and
// requires identical rows, notes, and fault records.
func TestForAppsMatchesSerial(t *testing.T) {
	good := concApps()
	bad := tinyProfile()
	bad.Abbr = "BROKEN"
	apps := append(append([]workloads.Profile{}, good[:2]...), bad, good[2])

	build := func(s *Session, parallel bool) *Table {
		// Poison the broken app's cache so its analysis fails at simulation.
		s.apps[bad.Abbr] = &call[core.App]{}
		s.apps[bad.Abbr].do(context.Background(), func() (core.App, error) { return brokenApp(), nil })
		tab := &Table{ID: "figconc", Title: "conc", Columns: []string{"app", "OptTLP", "MaxTLP"}}
		job := func(p workloads.Profile) (func(), error) {
			a, _, err := s.Analysis(p)
			if err != nil {
				return nil, err
			}
			return func() {
				tab.AddRow(p.Abbr, fmt.Sprint(a.OptTLP), fmt.Sprint(a.MaxTLP))
			}, nil
		}
		if parallel {
			s.forApps(tab, apps, job)
			return tab
		}
		for _, p := range apps {
			s.perApp(tab, p.Abbr, func() error {
				emit, err := job(p)
				if err != nil {
					return err
				}
				emit()
				return nil
			})
		}
		return tab
	}

	sSer, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	sSer.SetWorkers(1)
	serial := build(sSer, false)

	sPar, err := NewSession(gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	sPar.SetWorkers(4)
	parallel := build(sPar, true)

	if len(parallel.Rows) != len(serial.Rows) {
		t.Fatalf("row count %d != %d", len(parallel.Rows), len(serial.Rows))
	}
	for i := range serial.Rows {
		for j := range serial.Rows[i] {
			if parallel.Rows[i][j] != serial.Rows[i][j] {
				t.Errorf("row %d cell %d: %q != %q", i, j, parallel.Rows[i][j], serial.Rows[i][j])
			}
		}
	}
	if len(parallel.Notes) != len(serial.Notes) || len(sPar.Faults) != len(sSer.Faults) {
		t.Errorf("notes/faults diverge: %d/%d notes, %d/%d faults",
			len(parallel.Notes), len(serial.Notes), len(sPar.Faults), len(sSer.Faults))
	}
	if len(sPar.Faults) != 1 || sPar.Faults[0].App != "BROKEN" {
		t.Errorf("parallel faults = %+v, want one for BROKEN", sPar.Faults)
	}
}
