package retry

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

// TestDelayFullJitter pins the jitter ceiling: with Rand always
// returning its maximum the delay is the exponential ceiling, with 0 it
// is 0, and the ceiling saturates at MaxDelay.
func TestDelayFullJitter(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 800 * time.Millisecond, Multiplier: 2}
	p.Rand = func() float64 { return 0.999999 }
	ceil := []time.Duration{100, 200, 400, 800, 800, 800}
	for i, want := range ceil {
		got := p.Delay(i)
		want *= time.Millisecond
		if got < time.Duration(float64(want)*0.99) || got > want {
			t.Errorf("Delay(%d) = %v, want ~%v (ceiling)", i, got, want)
		}
	}
	p.Rand = func() float64 { return 0 }
	for i := 0; i < 4; i++ {
		if got := p.Delay(i); got != 0 {
			t.Errorf("Delay(%d) with zero draw = %v, want 0", i, got)
		}
	}
	// Mid-range draw stays inside [0, ceiling).
	p.Rand = func() float64 { return 0.5 }
	if got := p.Delay(2); got != 200*time.Millisecond {
		t.Errorf("Delay(2) with 0.5 draw = %v, want 200ms", got)
	}
}

// TestSleepFakeClock proves Sleep blocks on the injected clock (no real
// time passes) and wakes exactly on Advance.
func TestSleepFakeClock(t *testing.T) {
	clk := NewFakeClock()
	p := Policy{Clock: clk}
	done := make(chan error, 1)
	go func() { done <- p.Sleep(context.Background(), time.Hour) }()
	waitFor(t, func() bool { return clk.Waiters() == 1 })
	select {
	case err := <-done:
		t.Fatalf("Sleep returned (%v) before the clock advanced", err)
	default:
	}
	clk.Advance(time.Hour)
	if err := <-done; err != nil {
		t.Fatalf("Sleep after Advance: %v", err)
	}
}

// TestSleepCanceled: a canceled context unparks the sleeper with its
// error, without the clock moving.
func TestSleepCanceled(t *testing.T) {
	clk := NewFakeClock()
	p := Policy{Clock: clk}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Sleep(ctx, time.Hour) }()
	waitFor(t, func() bool { return clk.Waiters() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep under cancel = %v, want context.Canceled", err)
	}
}

// TestDoRetriesWithBackoff runs a failing-then-succeeding attempt loop
// on a fake clock and asserts the attempt count and that each retry
// waited for the policy's deterministic delay.
func TestDoRetriesWithBackoff(t *testing.T) {
	clk := NewFakeClock()
	p := Policy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		Multiplier:  2,
		MaxDelay:    time.Second,
		Rand:        func() float64 { return 0.999999 }, // delay == ceiling
		Clock:       clk,
	}
	var tries int
	done := make(chan error, 1)
	go func() {
		done <- Do(context.Background(), p, func(a *Attempt) (bool, error) {
			tries++
			if tries < 3 {
				return false, errors.New("transient")
			}
			return true, nil
		})
	}()
	// Two backoffs happen: ~100ms then ~200ms. Advance through both.
	waitFor(t, func() bool { return clk.Waiters() == 1 })
	clk.Advance(100 * time.Millisecond)
	waitFor(t, func() bool { return clk.Waiters() == 1 })
	clk.Advance(200 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("Do = %v, want success on third attempt", err)
	}
	if tries != 3 {
		t.Errorf("tries = %d, want 3", tries)
	}
}

// TestDoExhausted returns the last error once attempts run out.
func TestDoExhausted(t *testing.T) {
	p := Policy{MaxAttempts: 3, Rand: func() float64 { return 0 }} // zero-delay retries
	var tries int
	sentinel := errors.New("still failing")
	err := Do(context.Background(), p, func(a *Attempt) (bool, error) {
		tries++
		return false, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Do = %v, want the last attempt error", err)
	}
	if tries != 3 {
		t.Errorf("tries = %d, want 3", tries)
	}
}

// TestDoNeverRetriesDoneContext: a context that dies mid-backoff aborts
// the loop with the context error; no further attempt runs.
func TestDoNeverRetriesDoneContext(t *testing.T) {
	clk := NewFakeClock()
	p := Policy{MaxAttempts: 5, Clock: clk, Rand: func() float64 { return 0.999999 }}
	ctx, cancel := context.WithCancel(context.Background())
	var tries int
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, p, func(a *Attempt) (bool, error) {
			tries++
			return false, errors.New("transient")
		})
	}()
	waitFor(t, func() bool { return clk.Waiters() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if tries != 1 {
		t.Errorf("tries = %d, want 1 (no retry after cancellation)", tries)
	}
}

// TestDoHonorsHint: a Retry-After style hint replaces the computed
// backoff for that sleep.
func TestDoHonorsHint(t *testing.T) {
	clk := NewFakeClock()
	p := Policy{MaxAttempts: 2, BaseDelay: time.Hour, Clock: clk, Rand: func() float64 { return 0.999999 }}
	var tries int
	done := make(chan error, 1)
	go func() {
		done <- Do(context.Background(), p, func(a *Attempt) (bool, error) {
			tries++
			if tries == 1 {
				a.SetHint(50 * time.Millisecond)
				return false, errors.New("shed")
			}
			return true, nil
		})
	}()
	waitFor(t, func() bool { return clk.Waiters() == 1 })
	// The hour-scale policy delay must NOT be in effect: 50ms suffices.
	clk.Advance(50 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("Do = %v, want success after hinted backoff", err)
	}
	if tries != 2 {
		t.Errorf("tries = %d, want 2", tries)
	}
}

func TestRetryAfter(t *testing.T) {
	h := http.Header{}
	if _, ok := RetryAfter(h); ok {
		t.Error("absent header parsed as present")
	}
	h.Set("Retry-After", "3")
	if d, ok := RetryAfter(h); !ok || d != 3*time.Second {
		t.Errorf("Retry-After: 3 = (%v, %v), want (3s, true)", d, ok)
	}
	h.Set("Retry-After", "0")
	if d, ok := RetryAfter(h); !ok || d != 0 {
		t.Errorf("Retry-After: 0 = (%v, %v), want (0, true)", d, ok)
	}
	h.Set("Retry-After", "-1")
	if _, ok := RetryAfter(h); ok {
		t.Error("negative Retry-After parsed as present")
	}
	h.Set("Retry-After", "soon")
	if _, ok := RetryAfter(h); ok {
		t.Error("non-numeric Retry-After parsed as present")
	}
}

// waitFor polls cond without sleeping the fake clock forward.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
