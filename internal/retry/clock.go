package retry

import (
	"sync"
	"time"
)

// Clock abstracts time for the retry machinery so tests advance it
// explicitly instead of sleeping. The zero Policy uses SystemClock.
type Clock interface {
	Now() time.Time
	// After behaves like time.After: a channel that receives once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// SystemClock returns the wall clock.
func SystemClock() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually advanced Clock for deterministic tests: no
// retry test in this repo ever sleeps for real. After-channels fire the
// moment Advance moves the clock past their deadline.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a fake clock at an arbitrary fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward and fires every waiter whose deadline
// has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var keep []fakeWaiter
	var fire []fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	now := c.now
	c.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

// Waiters reports how many After-channels are pending (tests use it to
// know a sleeper is parked before advancing).
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
