// Package retry is the shared retry/backoff discipline for the service
// layer: exponential backoff with full jitter, context-aware sleeping,
// and Retry-After parsing. Both cratload (retrying 429 sheds against one
// daemon) and the cratgw gateway (failing over across replicas) drive
// their loops through a Policy, so the two agree on what "back off" means
// and tests can pin the schedule with an injectable clock and random
// source.
//
// The backoff is "full jitter" (AWS architecture-blog terminology): the
// attempt-n delay is drawn uniformly from [0, min(MaxDelay,
// BaseDelay·Multiplier^n)]. Full jitter decorrelates clients that were
// shed by the same overloaded replica at the same moment — a fixed
// exponential schedule would march them back in lockstep and reproduce
// the spike that shed them.
package retry

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Policy describes one retry loop. The zero value is usable: a single
// attempt, 100ms base, 5s cap, doubling, system clock and random source.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (<=0 means 1: no retries).
	MaxAttempts int
	// BaseDelay is the jitter ceiling for the first backoff (default
	// 100ms); MaxDelay caps the ceiling's exponential growth (default 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Multiplier grows the ceiling per attempt (default 2).
	Multiplier float64
	// Rand supplies the jitter draw in [0,1) (default math/rand). Tests
	// inject a constant to make Delay deterministic.
	Rand func() float64
	// Clock drives Sleep (default SystemClock). Tests inject a FakeClock.
	Clock Clock
}

// Attempts returns the effective total try count (MaxAttempts, floored
// at one).
func (p Policy) Attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

func (p Policy) clock() Clock {
	if p.Clock == nil {
		return SystemClock()
	}
	return p.Clock
}

// Delay returns the full-jitter backoff before retry number attempt
// (0-based: Delay(0) follows the first failure).
func (p Policy) Delay(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	ceil := float64(base)
	for i := 0; i < attempt; i++ {
		ceil *= mult
		if ceil >= float64(max) {
			ceil = float64(max)
			break
		}
	}
	if ceil > float64(max) {
		ceil = float64(max)
	}
	r := p.Rand
	if r == nil {
		r = rand.Float64
	}
	return time.Duration(r() * ceil)
}

// Sleep blocks for d on the policy's clock, or returns ctx.Err() if the
// context finishes first. A non-positive d returns immediately.
func (p Policy) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	select {
	case <-p.clock().After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryAfter parses a Retry-After header (delay-seconds form; the
// HTTP-date form is not produced by anything in this repo and reads as
// absent). ok reports whether a usable hint was present.
func RetryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// Do runs attempt up to MaxAttempts times. attempt returns (done, err):
// done=true ends the loop immediately with err (success or terminal
// failure); done=false requests a retry after the backoff for that
// attempt, optionally overridden by the hint attempt returned through
// SetHint on the passed *Attempt. The loop never retries once ctx is
// done — a context error always wins over further attempts.
func Do(ctx context.Context, p Policy, attempt func(a *Attempt) (bool, error)) error {
	var lastErr error
	n := p.Attempts()
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		a := &Attempt{N: i, hint: -1}
		done, err := attempt(a)
		if done {
			return err
		}
		lastErr = err
		if i == n-1 {
			break
		}
		d := p.Delay(i)
		if a.hint >= 0 {
			d = a.hint
		}
		if err := p.Sleep(ctx, d); err != nil {
			return err
		}
	}
	return lastErr
}

// Attempt carries per-try state through Do: the 0-based attempt number
// and an optional server-provided backoff hint (Retry-After) that
// overrides the computed delay for the next sleep.
type Attempt struct {
	N    int
	hint time.Duration
}

// SetHint overrides the next backoff (a Retry-After hint). Negative
// hints are ignored.
func (a *Attempt) SetHint(d time.Duration) {
	if d >= 0 {
		a.hint = d
	}
}
