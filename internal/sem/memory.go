package sem

import (
	"math"
	"sort"
)

// PageBits sizes the sparse memory pages (64KB).
const PageBits = 16

// PageSize is the byte size of one sparse memory page.
const PageSize = 1 << PageBits

const pageBits = PageBits
const pageSize = PageSize

// Memory is a sparse byte-addressable global memory. The zero value is not
// usable; create with NewMemory.
type Memory struct {
	pages map[uint64][]byte
	brk   uint64 // bump-pointer allocator
}

// NewMemory returns an empty memory. Allocations start at a non-zero base
// so that address 0 stays invalid (a null pointer).
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte), brk: 0x10000}
}

// Alloc reserves size bytes and returns the base address (256-byte aligned).
func (m *Memory) Alloc(size int64) uint64 {
	const align = 256
	m.brk = (m.brk + align - 1) / align * align
	base := m.brk
	m.brk += uint64(size)
	return base
}

func (m *Memory) page(addr uint64) []byte {
	p, ok := m.pages[addr>>pageBits]
	if !ok {
		p = make([]byte, pageSize)
		m.pages[addr>>pageBits] = p
	}
	return p
}

// PageFor returns the backing page containing addr, allocating it on first
// touch. A page, once created, is never replaced or resized, so callers on a
// hot path may cache the returned slice keyed by addr>>PageBits and skip the
// map lookup while consecutive accesses stay within one page.
func (m *Memory) PageFor(addr uint64) []byte { return m.page(addr) }

// ReadBytes copies n bytes at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		a := addr + uint64(i)
		out[i] = m.page(a)[a&(pageSize-1)]
	}
	return out
}

// WriteBytes stores b at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, v := range b {
		a := addr + uint64(i)
		m.page(a)[a&(pageSize-1)] = v
	}
}

// Read reads an unsigned little-endian value of the given byte width. The
// single-page fast path keeps the simulator's per-access cost allocation-free
// (ReadBytes would copy through a fresh slice).
func (m *Memory) Read(addr uint64, bytes int) uint64 {
	off := addr & (pageSize - 1)
	if off+uint64(bytes) <= pageSize {
		p := m.page(addr)
		var v uint64
		for i := 0; i < bytes; i++ {
			v |= uint64(p[off+uint64(i)]) << (8 * i)
		}
		return v
	}
	var v uint64
	for i := 0; i < bytes; i++ {
		a := addr + uint64(i)
		v |= uint64(m.page(a)[a&(pageSize-1)]) << (8 * i)
	}
	return v
}

// Write stores the low `bytes` bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, v uint64, bytes int) {
	off := addr & (pageSize - 1)
	if off+uint64(bytes) <= pageSize {
		p := m.page(addr)
		for i := 0; i < bytes; i++ {
			p[off+uint64(i)] = byte(v >> (8 * i))
		}
		return
	}
	for i := 0; i < bytes; i++ {
		a := addr + uint64(i)
		m.page(a)[a&(pageSize-1)] = byte(v >> (8 * i))
	}
}

// WriteUint32 stores a uint32.
func (m *Memory) WriteUint32(addr uint64, v uint32) { m.Write(addr, uint64(v), 4) }

// ReadUint32 loads a uint32.
func (m *Memory) ReadUint32(addr uint64) uint32 { return uint32(m.Read(addr, 4)) }

// WriteUint64 stores a uint64.
func (m *Memory) WriteUint64(addr uint64, v uint64) { m.Write(addr, v, 8) }

// ReadUint64 loads a uint64.
func (m *Memory) ReadUint64(addr uint64) uint64 { return m.Read(addr, 8) }

// WriteFloat32 stores a float32.
func (m *Memory) WriteFloat32(addr uint64, v float32) {
	m.Write(addr, uint64(math.Float32bits(v)), 4)
}

// ReadFloat32 loads a float32.
func (m *Memory) ReadFloat32(addr uint64) float32 {
	return math.Float32frombits(uint32(m.Read(addr, 4)))
}

// WriteFloat64 stores a float64.
func (m *Memory) WriteFloat64(addr uint64, v float64) {
	m.Write(addr, math.Float64bits(v), 8)
}

// ReadFloat64 loads a float64.
func (m *Memory) ReadFloat64(addr uint64) float64 {
	return math.Float64frombits(m.Read(addr, 8))
}

// Clone returns a deep copy of the memory image, including the allocator
// break so clones allocate identically to the original.
func (m *Memory) Clone() *Memory {
	c := &Memory{pages: make(map[uint64][]byte, len(m.pages)), brk: m.brk}
	for id, p := range m.pages {
		cp := make([]byte, pageSize)
		copy(cp, p)
		c.pages[id] = cp
	}
	return c
}

// DiffFirst compares two memory images and returns the lowest address at
// which they differ, with the differing bytes. A page absent from one image
// compares as all zeros, so two images differ only where written contents
// differ — identical allocations with different page fault patterns are
// equal. The sorted page walk makes the answer deterministic.
func (m *Memory) DiffFirst(o *Memory) (addr uint64, a, b byte, ok bool) {
	ids := make(map[uint64]struct{}, len(m.pages)+len(o.pages))
	for id := range m.pages {
		ids[id] = struct{}{}
	}
	for id := range o.pages {
		ids[id] = struct{}{}
	}
	sorted := make([]uint64, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, id := range sorted {
		pa, pb := m.pages[id], o.pages[id]
		if pa == nil && pb == nil {
			continue
		}
		for i := 0; i < pageSize; i++ {
			var va, vb byte
			if pa != nil {
				va = pa[i]
			}
			if pb != nil {
				vb = pb[i]
			}
			if va != vb {
				return id<<pageBits | uint64(i), va, vb, true
			}
		}
	}
	return 0, 0, 0, false
}

// Equal reports whether two memory images hold identical contents (absent
// pages compare as zeros).
func (m *Memory) Equal(o *Memory) bool {
	_, _, _, diff := m.DiffFirst(o)
	return !diff
}
