// Package sem defines the functional semantics of the PTX subset: raw
// register bit patterns, ALU/comparison/conversion evaluation, and the
// sparse global-memory image. Both execution engines — the cycle-level
// simulator (internal/gpusim) and the timing-free functional emulator
// (internal/emu) — evaluate instructions through this single package, so
// the differential oracle compares *execution order and rewrite
// correctness*, never two divergent reimplementations of arithmetic.
package sem

import (
	"fmt"
	"math"

	"crat/internal/ptx"
)

// Register values are stored as raw uint64 bit patterns; the instruction
// type selects the interpretation, matching PTX's untyped register file
// semantics.

// F32Bits returns the raw representation of a float32 value.
func F32Bits(v float32) uint64 { return uint64(math.Float32bits(v)) }

// BitsF32 interprets a raw value as a float32.
func BitsF32(b uint64) float32 { return math.Float32frombits(uint32(b)) }

// F64Bits returns the raw representation of a float64 value.
func F64Bits(v float64) uint64 { return math.Float64bits(v) }

// BitsF64 interprets a raw value as a float64.
func BitsF64(b uint64) float64 { return math.Float64frombits(b) }

// Truncate masks v to the width of t.
func Truncate(v uint64, t ptx.Type) uint64 {
	switch t.Bits() {
	case 8:
		return v & 0xff
	case 16:
		return v & 0xffff
	case 32:
		return v & 0xffffffff
	default:
		return v
	}
}

// SignExtend interprets the low bits of v as a signed integer of t's width.
func SignExtend(v uint64, t ptx.Type) int64 {
	switch t.Bits() {
	case 8:
		return int64(int8(v))
	case 16:
		return int64(int16(v))
	case 32:
		return int64(int32(v))
	default:
		return int64(v)
	}
}

// ImmBits encodes an immediate operand into the raw representation of t.
func ImmBits(o ptx.Operand, t ptx.Type) uint64 {
	if o.Kind == ptx.OperandFImm {
		if t == ptx.F64 {
			return F64Bits(o.FImm)
		}
		return F32Bits(float32(o.FImm))
	}
	// Integer immediate: also usable by float ops as a converted constant.
	if t == ptx.F32 {
		return F32Bits(float32(o.Imm))
	}
	if t == ptx.F64 {
		return F64Bits(float64(o.Imm))
	}
	return Truncate(uint64(o.Imm), t)
}

// ALU computes a two- or three-operand arithmetic/logic instruction on raw
// values a, b, c interpreted at type t. Integer division by zero yields
// all-ones (matching NVIDIA hardware behaviour rather than trapping).
func ALU(op ptx.Opcode, t ptx.Type, a, b, c uint64) (uint64, error) {
	if t.IsFloat() {
		return aluFloat(op, t, a, b, c)
	}
	return aluInt(op, t, a, b, c)
}

func aluInt(op ptx.Opcode, t ptx.Type, a, b, c uint64) (uint64, error) {
	signed := t.IsSigned()
	switch op {
	case ptx.OpAdd:
		return Truncate(a+b, t), nil
	case ptx.OpSub:
		return Truncate(a-b, t), nil
	case ptx.OpMul:
		return Truncate(a*b, t), nil
	case ptx.OpMad:
		return Truncate(a*b+c, t), nil
	case ptx.OpDiv:
		if Truncate(b, t) == 0 {
			return Truncate(^uint64(0), t), nil
		}
		if signed {
			return Truncate(uint64(SignExtend(a, t)/SignExtend(b, t)), t), nil
		}
		return Truncate(Truncate(a, t)/Truncate(b, t), t), nil
	case ptx.OpRem:
		if Truncate(b, t) == 0 {
			return Truncate(^uint64(0), t), nil
		}
		if signed {
			return Truncate(uint64(SignExtend(a, t)%SignExtend(b, t)), t), nil
		}
		return Truncate(Truncate(a, t)%Truncate(b, t), t), nil
	case ptx.OpMin:
		if signed {
			if SignExtend(a, t) < SignExtend(b, t) {
				return Truncate(a, t), nil
			}
			return Truncate(b, t), nil
		}
		if Truncate(a, t) < Truncate(b, t) {
			return Truncate(a, t), nil
		}
		return Truncate(b, t), nil
	case ptx.OpMax:
		if signed {
			if SignExtend(a, t) > SignExtend(b, t) {
				return Truncate(a, t), nil
			}
			return Truncate(b, t), nil
		}
		if Truncate(a, t) > Truncate(b, t) {
			return Truncate(a, t), nil
		}
		return Truncate(b, t), nil
	case ptx.OpAbs:
		if signed && SignExtend(a, t) < 0 {
			return Truncate(uint64(-SignExtend(a, t)), t), nil
		}
		return Truncate(a, t), nil
	case ptx.OpNeg:
		return Truncate(uint64(-SignExtend(a, t)), t), nil
	case ptx.OpAnd:
		return Truncate(a&b, t), nil
	case ptx.OpOr:
		return Truncate(a|b, t), nil
	case ptx.OpXor:
		return Truncate(a^b, t), nil
	case ptx.OpNot:
		return Truncate(^a, t), nil
	case ptx.OpShl:
		return Truncate(a<<(b&63), t), nil
	case ptx.OpShr:
		if signed {
			return Truncate(uint64(SignExtend(a, t)>>(b&63)), t), nil
		}
		return Truncate(Truncate(a, t)>>(b&63), t), nil
	case ptx.OpMov:
		return Truncate(a, t), nil
	}
	return 0, fmt.Errorf("sem: integer op %v unsupported", op)
}

func aluFloat(op ptx.Opcode, t ptx.Type, a, b, c uint64) (uint64, error) {
	if t == ptx.F32 {
		fa, fb, fc := BitsF32(a), BitsF32(b), BitsF32(c)
		var r float32
		switch op {
		case ptx.OpAdd:
			r = fa + fb
		case ptx.OpSub:
			r = fa - fb
		case ptx.OpMul:
			r = fa * fb
		case ptx.OpMad:
			r = fa*fb + fc
		case ptx.OpDiv:
			r = fa / fb
		case ptx.OpMin:
			r = float32(math.Min(float64(fa), float64(fb)))
		case ptx.OpMax:
			r = float32(math.Max(float64(fa), float64(fb)))
		case ptx.OpAbs:
			r = float32(math.Abs(float64(fa)))
		case ptx.OpNeg:
			r = -fa
		case ptx.OpMov:
			r = fa
		case ptx.OpRcp:
			r = 1 / fa
		case ptx.OpSqrt:
			r = float32(math.Sqrt(float64(fa)))
		case ptx.OpRsqrt:
			r = float32(1 / math.Sqrt(float64(fa)))
		case ptx.OpSin:
			r = float32(math.Sin(float64(fa)))
		case ptx.OpCos:
			r = float32(math.Cos(float64(fa)))
		case ptx.OpLg2:
			r = float32(math.Log2(float64(fa)))
		case ptx.OpEx2:
			r = float32(math.Exp2(float64(fa)))
		default:
			return 0, fmt.Errorf("sem: f32 op %v unsupported", op)
		}
		return F32Bits(r), nil
	}
	fa, fb, fc := BitsF64(a), BitsF64(b), BitsF64(c)
	var r float64
	switch op {
	case ptx.OpAdd:
		r = fa + fb
	case ptx.OpSub:
		r = fa - fb
	case ptx.OpMul:
		r = fa * fb
	case ptx.OpMad:
		r = fa*fb + fc
	case ptx.OpDiv:
		r = fa / fb
	case ptx.OpMin:
		r = math.Min(fa, fb)
	case ptx.OpMax:
		r = math.Max(fa, fb)
	case ptx.OpAbs:
		r = math.Abs(fa)
	case ptx.OpNeg:
		r = -fa
	case ptx.OpMov:
		r = fa
	case ptx.OpRcp:
		r = 1 / fa
	case ptx.OpSqrt:
		r = math.Sqrt(fa)
	case ptx.OpRsqrt:
		r = 1 / math.Sqrt(fa)
	case ptx.OpSin:
		r = math.Sin(fa)
	case ptx.OpCos:
		r = math.Cos(fa)
	case ptx.OpLg2:
		r = math.Log2(fa)
	case ptx.OpEx2:
		r = math.Exp2(fa)
	default:
		return 0, fmt.Errorf("sem: f64 op %v unsupported", op)
	}
	return F64Bits(r), nil
}

// Compare evaluates a setp comparison on raw values at type t. Unordered
// float comparisons (NaN operands) follow IEEE semantics: every ordered
// predicate is false, Ne is true.
func Compare(cmp ptx.CmpOp, t ptx.Type, a, b uint64) (bool, error) {
	var lt, eq bool
	switch {
	case t.IsFloat():
		var fa, fb float64
		if t == ptx.F32 {
			fa, fb = float64(BitsF32(a)), float64(BitsF32(b))
		} else {
			fa, fb = BitsF64(a), BitsF64(b)
		}
		if math.IsNaN(fa) || math.IsNaN(fb) {
			return cmp == ptx.CmpNe, nil
		}
		lt, eq = fa < fb, fa == fb
	case t.IsSigned():
		sa, sb := SignExtend(a, t), SignExtend(b, t)
		lt, eq = sa < sb, sa == sb
	default:
		ua, ub := Truncate(a, t), Truncate(b, t)
		lt, eq = ua < ub, ua == ub
	}
	switch cmp {
	case ptx.CmpEq:
		return eq, nil
	case ptx.CmpNe:
		return !eq, nil
	case ptx.CmpLt:
		return lt, nil
	case ptx.CmpLe:
		return lt || eq, nil
	case ptx.CmpGt:
		return !lt && !eq, nil
	case ptx.CmpGe:
		return !lt, nil
	}
	return false, fmt.Errorf("sem: comparison %v unsupported", cmp)
}

// Convert implements cvt.to.from on a raw value.
func Convert(to, from ptx.Type, v uint64) (uint64, error) {
	switch {
	case from.IsFloat() && to.IsFloat():
		if from == to {
			return v, nil
		}
		if from == ptx.F32 {
			return F64Bits(float64(BitsF32(v))), nil
		}
		return F32Bits(float32(BitsF64(v))), nil
	case from.IsFloat() && !to.IsFloat():
		var f float64
		if from == ptx.F32 {
			f = float64(BitsF32(v))
		} else {
			f = BitsF64(v)
		}
		if to.IsSigned() {
			return Truncate(uint64(int64(f)), to), nil
		}
		if f < 0 {
			f = 0
		}
		return Truncate(uint64(f), to), nil
	case !from.IsFloat() && to.IsFloat():
		var f float64
		if from.IsSigned() {
			f = float64(SignExtend(v, from))
		} else {
			f = float64(Truncate(v, from))
		}
		if to == ptx.F32 {
			return F32Bits(float32(f)), nil
		}
		return F64Bits(f), nil
	default:
		if from.IsSigned() {
			return Truncate(uint64(SignExtend(v, from)), to), nil
		}
		return Truncate(Truncate(v, from), to), nil
	}
}
