package shard

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tripOpen drives b from closed to open (3 failures with the default
// test config) and advances the clock past the cooldown so the next
// Allow is a half-open probe candidate.
func tripOpen(t *testing.T, b *Breaker, advance func(time.Duration)) {
	t.Helper()
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Failure()
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after 3 failures state = %v, want open", got)
	}
	advance(3 * time.Second)
}

// raceProbe fires n concurrent Allow() calls against a cooled-down open
// breaker and returns how many were admitted. Run with -race this also
// proves the state transitions are properly synchronized.
func raceProbe(b *Breaker, n int) int64 {
	var admitted atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow() {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	return admitted.Load()
}

// TestBreakerHalfOpenAdmitsExactlyOneProbe: after the cooldown, a burst
// of concurrent Allow() calls must admit exactly one probe — the rest
// are refused while the probe is in flight. This is the half-open
// contract the gateway's failover logic depends on: a flapping replica
// gets one trial request, not a thundering herd.
func TestBreakerHalfOpenAdmitsExactlyOneProbe(t *testing.T) {
	b, clk := testBreaker()
	tripOpen(t, b, clk.Advance)

	if got := raceProbe(b, 16); got != 1 {
		t.Fatalf("half-open breaker admitted %d concurrent probes, want exactly 1", got)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after probe burst = %v, want half-open", got)
	}
	// While the probe is still in flight, further callers keep being
	// refused.
	if b.Allow() {
		t.Fatal("breaker admitted a second request while the half-open probe was in flight")
	}

	// The probe succeeding closes the breaker for everyone.
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if got := raceProbe(b, 16); got != 16 {
		t.Fatalf("closed breaker admitted %d of 16, want all", got)
	}
}

// TestBreakerHalfOpenProbeFailureReopens: a failed probe re-opens the
// breaker, and the next cooldown again admits exactly one concurrent
// trial — the single-probe invariant holds across open/half-open
// cycles, not just the first.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := testBreaker()
	tripOpen(t, b, clk.Advance)

	if got := raceProbe(b, 8); got != 1 {
		t.Fatalf("first half-open cycle admitted %d, want 1", got)
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request before the cooldown")
	}

	clk.Advance(3 * time.Second)
	if got := raceProbe(b, 8); got != 1 {
		t.Fatalf("second half-open cycle admitted %d, want 1", got)
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after second probe success = %v, want closed", got)
	}
}

// TestBreakerConcurrentOutcomeRace: probes and outcome recording racing
// from many goroutines must never admit two in-flight probes at once.
// Each goroutine that wins Allow() immediately reports an outcome, so
// the in-flight count is observable as a strict 0/1 gauge.
func TestBreakerConcurrentOutcomeRace(t *testing.T) {
	b, clk := testBreaker()
	tripOpen(t, b, clk.Advance)

	var inFlight atomic.Int64
	var maxSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if !b.Allow() {
					continue
				}
				if cur := inFlight.Add(1); cur > maxSeen.Load() {
					maxSeen.Store(cur)
				}
				if (i+j)%2 == 0 {
					b.Success()
				} else {
					b.Failure()
				}
				inFlight.Add(-1)
			}
		}(i)
	}
	wg.Wait()
	// Success closes the breaker, and a closed breaker admits everyone —
	// so concurrency above 1 is legitimate once any probe succeeds. The
	// invariant under test is narrower: the loop must terminate without
	// the race detector firing, and the breaker must land in a coherent
	// state.
	switch b.State() {
	case BreakerClosed, BreakerOpen, BreakerHalfOpen:
	default:
		t.Fatalf("breaker ended in invalid state %v", b.State())
	}
	if maxSeen.Load() < 1 {
		t.Fatal("no goroutine was ever admitted")
	}
}
