package shard

import (
	"sync"
	"time"

	"crat/internal/retry"
)

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState int

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused without touching the replica
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: exactly one probe request is allowed through; its
	// outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one per-replica breaker. Zero values take the
// defaults noted per field.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that opens the breaker
	// (default 3).
	Failures int
	// Cooldown is how long an open breaker refuses before allowing a
	// half-open probe (default 2s).
	Cooldown time.Duration
	// Clock is injectable for deterministic tests (default system).
	Clock retry.Clock
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = retry.SystemClock()
	}
	return c
}

// Breaker sheds a crashing replica instantly instead of after N
// timeouts: once Failures consecutive requests fail, Allow refuses
// without any network round trip until the cooldown passes, then one
// half-open probe decides between closing and another cooldown.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight

	opens int64 // lifetime closed→open transitions, for /statsz
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may be sent now. In the open state it
// flips to half-open once the cooldown has elapsed and admits exactly
// one probe; concurrent callers during the probe are refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Clock.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Success records a request outcome: closes a half-open breaker and
// resets the failure streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecFails = 0
	b.probing = false
}

// Failure records a failed request: re-opens a half-open breaker
// immediately, or opens a closed one once the streak reaches the
// threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.cfg.Failures {
			b.open()
		}
	case BreakerOpen:
		// A straggler from before the open; nothing to do.
	}
}

// open transitions to BreakerOpen; callers hold the lock.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Clock.Now()
	b.consecFails = 0
	b.probing = false
	b.opens++
}

// State returns the current state (half-open is reported as such even
// before the probe fires).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns the lifetime closed→open transition count.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
