package shard

import (
	"testing"
	"time"

	"crat/internal/retry"
)

func testBreaker() (*Breaker, *retry.FakeClock) {
	clk := retry.NewFakeClock()
	return NewBreaker(BreakerConfig{Failures: 3, Cooldown: 2 * time.Second, Clock: clk}), clk
}

// TestBreakerOpensOnConsecutiveFailures: the breaker stays closed
// through Failures-1 failures, opens on the Nth, and then refuses
// without a cooldown having passed.
func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker()
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, got)
		}
	}
	b.Allow()
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after 3 failures state = %v, want open", got)
	}
	if b.Allow() {
		t.Error("open breaker allowed a request before cooldown")
	}
	if got := b.Opens(); got != 1 {
		t.Errorf("opens = %d, want 1", got)
	}
}

// TestBreakerSuccessResetsStreak: interleaved successes keep the breaker
// closed indefinitely — only *consecutive* failures open it.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := testBreaker()
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Failure()
		b.Allow()
		b.Failure()
		b.Allow()
		b.Success()
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (streak never reached 3)", got)
	}
	if got := b.Opens(); got != 0 {
		t.Errorf("opens = %d, want 0", got)
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one probe is
// admitted; its success closes the breaker, and concurrent requests
// during the probe are refused.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := testBreaker()
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Failure()
	}
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if b.Allow() {
		t.Error("second request admitted while the probe is in flight")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if !b.Allow() {
		t.Error("closed breaker refused")
	}
}

// TestBreakerHalfOpenFailureReopens: a failed probe re-opens for a fresh
// cooldown.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := testBreaker()
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Failure()
	}
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	if b.Allow() {
		t.Error("re-opened breaker allowed a request before its new cooldown")
	}
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Error("second cooldown did not admit a new probe")
	}
	if got := b.Opens(); got != 2 {
		t.Errorf("opens = %d, want 2", got)
	}
}
