package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"crat/internal/server"
)

// The chaos scenario matrix (cratload -chaos-matrix, `make chaos-smoke`):
// every fault kind crossed with every lifecycle phase, each cell a fresh
// 2-replica fleet under closed-loop load, asserting the user-facing
// contract — zero client-visible failures, zero inconsistent Decisions,
// and Decision digests byte-identical to a fault-free single-replica
// baseline. The faults are deterministic internal/faultinject specs (or
// process signals), so a failing cell replays exactly.

// ChaosFaults are the matrix rows. Victim replica 0 takes the
// process/disk faults; the transport faults arm the gateway.
var ChaosFaults = []string{
	"sigkill",      // SIGKILL the victim, restart on the same address
	"torn-journal", // kill, chop the journal's tail (power-cut tear), restart
	"enospc",       // injected ENOSPC on the victim's journal appends
	"fsync-fail",   // injected EIO on the victim's journal fsyncs
	"conn-reset",   // injected connection resets on gateway→replica requests
	"latency",      // injected latency spikes on gateway→replica requests
}

// ChaosPhases are the matrix columns: when the disruption lands relative
// to the victim's lifecycle. Injected faults are armed from process
// start and fire on their own counters; the phase decides whether a
// graceful drain (SIGTERM) or a crash (SIGKILL) accompanies them.
var ChaosPhases = []string{
	"during-load",    // fault fires while load flows; no extra signal
	"during-drain",   // victim is SIGTERMed (drains under load) and restarted
	"during-restart", // victim is SIGKILLed and restarted mid-load
}

// ChaosMatrixConfig sizes one matrix run.
type ChaosMatrixConfig struct {
	// Dir holds one fleet working directory per cell.
	Dir        string
	CratdBin   string
	GatewayBin string
	// Load shape per cell (defaults: 48 requests, 8 clients, 12 kernels).
	Requests    int
	Concurrency int
	Kernels     int
	Seed        int64
	// Faults/Phases subset the matrix (nil = full).
	Faults []string
	Phases []string
	// Log receives one progress line per cell (nil = discard).
	Log io.Writer
}

func (c ChaosMatrixConfig) withDefaults() ChaosMatrixConfig {
	if c.Requests <= 0 {
		c.Requests = 48
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Kernels <= 0 {
		c.Kernels = 12
	}
	if len(c.Faults) == 0 {
		c.Faults = ChaosFaults
	}
	if len(c.Phases) == 0 {
		c.Phases = ChaosPhases
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// RunChaosMatrix runs every cell and returns an error naming each failed
// cell (nil = the whole matrix held the contract). Cells run serially —
// each gets the machine to itself, keeping latency assertions honest.
func RunChaosMatrix(ctx context.Context, cfg ChaosMatrixConfig) error {
	cfg = cfg.withDefaults()

	// Fault-free single-replica baseline: the Decision digests every cell
	// must reproduce byte-identically.
	baseline, err := runMatrixCell(ctx, cfg, "baseline", "", "")
	if err != nil {
		return fmt.Errorf("chaos-matrix baseline: %w", err)
	}
	fmt.Fprintf(cfg.Log, "chaos-matrix: baseline ok (%d decisions, %d/%d ok)\n",
		len(baseline.report.Decisions), baseline.report.OK, baseline.report.Requests)
	want := strings.Join(baseline.report.Decisions, "\n")

	var failures []string
	for _, fault := range cfg.Faults {
		for _, phase := range cfg.Phases {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			cell := fault + "/" + phase
			res, err := runMatrixCell(ctx, cfg, fault+"-"+phase, fault, phase)
			if err != nil {
				failures = append(failures, fmt.Sprintf("%s: %v", cell, err))
				fmt.Fprintf(cfg.Log, "chaos-matrix: %-28s FAIL: %v\n", cell, err)
				continue
			}
			if err := assertCell(res, want, fault); err != nil {
				failures = append(failures, fmt.Sprintf("%s: %v", cell, err))
				fmt.Fprintf(cfg.Log, "chaos-matrix: %-28s FAIL: %v\n", cell, err)
				continue
			}
			fmt.Fprintf(cfg.Log, "chaos-matrix: %-28s ok (%d/%d ok, failovers %d, salvaged %d)\n",
				cell, res.report.OK, res.report.Requests, res.gwFailovers, res.victimSalvaged)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("chaos-matrix: %d of %d cells failed:\n  %s",
			len(failures), len(cfg.Faults)*len(cfg.Phases), strings.Join(failures, "\n  "))
	}
	return nil
}

// cellResult carries one cell's evidence: the load report plus the
// fault-specific counters scraped before teardown.
type cellResult struct {
	report         *server.LoadReport
	gwFailovers    int64
	victimSalvaged int // victim journal salvaged_tail + quarantined
	victimPutErrs  int64
	tornApplied    bool
	stopErr        error
}

// runMatrixCell starts a fleet (1 replica for the baseline, 2 for fault
// cells), runs the load while the cell's disruption lands, scrapes the
// evidence, and tears the fleet down.
func runMatrixCell(ctx context.Context, cfg ChaosMatrixConfig, name, fault, phase string) (*cellResult, error) {
	fc := FleetConfig{
		Dir:        filepath.Join(cfg.Dir, name),
		CratdBin:   cfg.CratdBin,
		GatewayBin: cfg.GatewayBin,
		Replicas:   2,
	}
	if fault == "" {
		fc.Replicas = 1
	}
	// Fault arming. The disk-fault thresholds are tuned to the victim's
	// startup footprint (manifest write = 1 write + 2 fsyncs) so the
	// replica always boots and the fault lands on journal appends.
	switch fault {
	case "enospc":
		fc.ReplicaFaults = []string{"enospc:after=2,count=2"}
	case "fsync-fail":
		fc.ReplicaFaults = []string{"fsync-fail:nth=5,count=2"}
	case "conn-reset":
		fc.GatewayFault = "conn-reset:every=9"
	case "latency":
		fc.GatewayFault = "latency:every=6,delay=150ms"
	}

	fleet, err := StartFleet(fc)
	if err != nil {
		return nil, fmt.Errorf("starting fleet: %w", err)
	}
	res := &cellResult{}
	stopped := false
	defer func() {
		if !stopped {
			fleet.Stop()
		}
	}()

	type disruption struct {
		torn bool
		err  error
	}
	disrupted := make(chan disruption, 1)
	if fault == "" {
		disrupted <- disruption{}
	} else {
		go func() {
			time.Sleep(400 * time.Millisecond) // let the load get underway
			torn, derr := disrupt(fleet, fault, phase, cfg.Log)
			disrupted <- disruption{torn: torn, err: derr}
		}()
	}

	rep, err := server.RunLoad(ctx, fleet.GatewayURL(), server.LoadOptions{
		Concurrency:      cfg.Concurrency,
		Requests:         cfg.Requests,
		Kernels:          cfg.Kernels,
		Seed:             cfg.Seed,
		CaptureDecisions: true,
	})
	d := <-disrupted
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	if d.err != nil {
		return nil, fmt.Errorf("disruption: %w", d.err)
	}
	res.report = rep
	res.tornApplied = d.torn

	// Evidence scrape before teardown: the gateway's failover counters and
	// the victim's own journal health.
	if gw := scrapeJSON(fleet.GatewayURL()); gw != nil {
		var snap GatewaySnapshot
		if json.Unmarshal(gw, &snap) == nil {
			res.gwFailovers = snap.Failovers
		}
	}
	if raw := scrapeJSON(fleet.ReplicaURL(0)); raw != nil {
		var snap server.StatsSnapshot
		if json.Unmarshal(raw, &snap) == nil {
			res.victimPutErrs = snap.CachePutErrors
			if snap.Journal != nil {
				res.victimSalvaged = snap.Journal.SalvagedTail + snap.Journal.Quarantined
			}
		}
	}

	stopped = true
	res.stopErr = fleet.Stop()
	return res, nil
}

// disrupt lands the cell's mid-load action on victim replica 0 and
// reports whether a journal tear was actually applied.
func disrupt(fleet *Fleet, fault, phase string, logw io.Writer) (bool, error) {
	const victim = 0
	tear := func() bool {
		// Best-effort: the victim may not have journaled anything yet when
		// the kill lands; an untearable journal just skips the hard assert.
		if err := fleet.TruncateJournalTail(victim, 7); err != nil {
			fmt.Fprintf(logw, "chaos-matrix: journal tear skipped: %v\n", err)
			return false
		}
		return true
	}
	switch phase {
	case "during-load":
		// Injected faults fire in-band; only the process faults need an
		// explicit crash to manifest at all.
		if fault != "sigkill" && fault != "torn-journal" {
			return false, nil
		}
		fallthrough
	case "during-restart":
		if err := fleet.KillReplica(victim); err != nil {
			return false, fmt.Errorf("kill: %w", err)
		}
		torn := false
		if fault == "torn-journal" {
			torn = tear()
		}
		if err := fleet.RestartReplica(victim); err != nil {
			return torn, fmt.Errorf("restart: %w", err)
		}
		return torn, nil
	case "during-drain":
		// A drain that exits nonzero under an injected fault is the server
		// degrading as designed (the flush hit the fault); the contract
		// under test is the client's, so log it and move on.
		if err := fleet.TermReplica(victim); err != nil {
			fmt.Fprintf(logw, "chaos-matrix: victim drain under fault: %v\n", err)
		}
		torn := false
		if fault == "torn-journal" {
			torn = tear()
		}
		if err := fleet.RestartReplica(victim); err != nil {
			return torn, fmt.Errorf("restart after drain: %w", err)
		}
		return torn, nil
	}
	return false, fmt.Errorf("unknown phase %q", phase)
}

// assertCell enforces the matrix contract on one cell.
func assertCell(res *cellResult, wantDecisions, fault string) error {
	rep := res.report
	// Hard, every cell: zero client-visible failures...
	if rep.OK+rep.Canceled != rep.Requests {
		return fmt.Errorf("%d of %d requests were client-visible failures (shed %d, timeout %d, failed %d)",
			rep.Requests-rep.OK-rep.Canceled, rep.Requests, rep.Shed, rep.Timeouts, rep.Failed)
	}
	// ...zero inconsistent Decisions...
	if rep.Inconsistent > 0 {
		return fmt.Errorf("%d corpus entries returned inconsistent Decisions", rep.Inconsistent)
	}
	// ...byte-identical to the fault-free baseline.
	if got := strings.Join(rep.Decisions, "\n"); got != wantDecisions {
		return fmt.Errorf("decision digests diverged from the baseline")
	}
	// The fleet must still tear down cleanly.
	if res.stopErr != nil {
		return fmt.Errorf("fleet stop: %w", res.stopErr)
	}
	// Fault-specific evidence, hard only where the fault is deterministic
	// from the cell's own actions.
	switch fault {
	case "conn-reset":
		if res.gwFailovers < 1 {
			return fmt.Errorf("no failovers despite injected connection resets")
		}
	case "torn-journal":
		if res.tornApplied && res.victimSalvaged < 1 {
			return fmt.Errorf("journal torn but the victim reports no salvage")
		}
	}
	return nil
}

// scrapeJSON fetches base/statsz (nil on any failure).
func scrapeJSON(base string) []byte {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil
	}
	return data
}
