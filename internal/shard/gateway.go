package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"crat/internal/buildinfo"
	"crat/internal/checkpoint"
	"crat/internal/retry"
	"crat/internal/server"
)

// gwMaxBody bounds a proxied request body: the daemon's PTX limit plus
// JSON overhead, mirroring cratd's own admission bound.
const gwMaxBody = 5 << 20

// GatewayConfig wires a Gateway. Replicas is the only required field.
type GatewayConfig struct {
	// Replicas are the cratd base URLs (http://host:port). The set is
	// fixed for the gateway's lifetime; health checking moves members in
	// and out of the routing ring, never out of the set.
	Replicas []string
	// Vnodes per replica on the ring (0 = DefaultVnodes).
	Vnodes int
	// Health tunes the active prober; Breaker the per-replica circuit
	// breakers.
	Health  HealthConfig
	Breaker BreakerConfig
	// Retry shapes the per-request attempt loop: MaxAttempts total tries
	// (default 3), exponential full-jitter backoff between them (default
	// base 25ms, cap 1s — failover wants to be fast).
	Retry retry.Policy
	// HedgeAfter, when positive, launches a tail-latency hedge: if the
	// primary has not answered after this long, the same request is
	// issued to the failover replica and the first success wins. Safe
	// because compiles are deterministic and content-addressed — both
	// replicas produce byte-identical Decisions. Derive it from the
	// fleet's p99 (cratload reports it); 0 disables hedging.
	HedgeAfter time.Duration
	// MaxRetryAfterWait caps how long a replica's Retry-After hint can
	// stall an attempt loop (default 2s).
	MaxRetryAfterWait time.Duration
	// Clock is injectable for tests (default system).
	Clock retry.Clock
	// Transport, when set, replaces the default HTTP transport for every
	// replica-bound request (proxied compiles and health probes alike) —
	// the fault-injection seam for connection resets and latency spikes
	// (cratgw -fault). Nil = http.DefaultTransport.
	Transport http.RoundTripper
	// Log receives operational lines (nil = discard).
	Log *log.Logger
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	c.Health = c.Health.withDefaults()
	if c.Retry.MaxAttempts <= 0 {
		c.Retry.MaxAttempts = 3
	}
	if c.Retry.BaseDelay <= 0 {
		c.Retry.BaseDelay = 25 * time.Millisecond
	}
	if c.Retry.MaxDelay <= 0 {
		c.Retry.MaxDelay = time.Second
	}
	if c.MaxRetryAfterWait <= 0 {
		c.MaxRetryAfterWait = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = retry.SystemClock()
	}
	c.Retry.Clock = c.Clock
	c.Breaker.Clock = c.Clock
	return c
}

// GatewayStats are the gateway-wide counters in /statsz.
type GatewayStats struct {
	Requests       atomic.Int64 // compile requests received
	Completed      atomic.Int64 // answered with a replica's 2xx
	Relayed4xx     atomic.Int64 // client errors relayed verbatim
	Retries        atomic.Int64 // 429-with-Retry-After re-sends to the same replica
	Failovers      atomic.Int64 // attempts moved to the next ring replica
	Hedges         atomic.Int64 // tail-latency hedge requests launched
	HedgeWins      atomic.Int64 // hedges whose response was the one served
	NoReplica      atomic.Int64 // 503: no routable replica (all ejected/open)
	ClientCanceled atomic.Int64 // clients gone before an answer
	Exhausted      atomic.Int64 // attempt budget spent without a success
}

// replica is one backend's routing state: its breaker, its health
// standing, and its per-replica counters.
type replica struct {
	url     string
	breaker *Breaker

	healthy       atomic.Bool
	consecFails   int // probe failures; prober goroutine only
	consecOKs     int
	probeCount    int // probes issued; prober goroutine only
	ejections     atomic.Int64
	probeFailures atomic.Int64
	requests      atomic.Int64
	failures      atomic.Int64

	// journal is the replica's last-scraped durability report (nil until
	// the prober's first /statsz scrape succeeds).
	journalMu     sync.Mutex
	journal       *checkpoint.Health
	cacheDegraded string
}

// Gateway fronts N cratd replicas: consistent-hash routing on the
// request's content key, active health ejection, per-replica circuit
// breaking, retry/failover, and optional hedging. It is itself a
// drainable HTTP service with the same /healthz//readyz//statsz triple
// as the daemons it fronts.
type Gateway struct {
	cfg      GatewayConfig
	ring     *Ring // health-managed membership
	full     *Ring // every configured replica; last-resort routing order
	replicas map[string]*replica
	client   *http.Client
	stats    GatewayStats
	start    time.Time

	draining   atomic.Bool
	probeStop  context.CancelFunc
	probeGroup sync.WaitGroup
	wg         sync.WaitGroup // in-flight compile requests

	mu   sync.Mutex
	http *http.Server
}

// NewGateway builds a gateway over the configured replicas. Every
// replica starts in the ring (optimistically healthy); the prober ejects
// the ones that fail. Call Start to begin probing.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("gateway needs at least one replica")
	}
	g := &Gateway{
		cfg:      cfg,
		ring:     NewRing(cfg.Vnodes),
		full:     NewRing(cfg.Vnodes),
		replicas: make(map[string]*replica, len(cfg.Replicas)),
		client:   &http.Client{Transport: cfg.Transport},
		start:    time.Now(),
	}
	for _, url := range cfg.Replicas {
		if _, dup := g.replicas[url]; dup {
			return nil, fmt.Errorf("duplicate replica %s", url)
		}
		rep := &replica{url: url, breaker: NewBreaker(cfg.Breaker)}
		rep.healthy.Store(true)
		g.replicas[url] = rep
		g.ring.Add(url)
		g.full.Add(url)
	}
	return g, nil
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Log != nil {
		g.cfg.Log.Printf(format, args...)
	}
}

// Stats exposes the counters (tests and embedders).
func (g *Gateway) Stats() *GatewayStats { return &g.stats }

// Replica returns a replica's breaker (tests).
func (g *Gateway) Breaker(url string) *Breaker {
	if rep, ok := g.replicas[url]; ok {
		return rep.breaker
	}
	return nil
}

// Start launches the health probers. Stop them via Shutdown (or Close).
func (g *Gateway) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	g.probeStop = cancel
	for _, rep := range g.replicas {
		g.probeGroup.Add(1)
		go g.probeLoop(ctx, rep)
	}
}

// Handler returns the gateway's HTTP mux.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", g.handleCompile)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /statsz", g.handleStatsz)
	return mux
}

// Serve runs the gateway on l until Shutdown (returns nil) or a listener
// error.
func (g *Gateway) Serve(l net.Listener) error {
	srv := &http.Server{Handler: g.Handler(), ReadHeaderTimeout: 10 * time.Second}
	g.mu.Lock()
	g.http = srv
	g.mu.Unlock()
	err := srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the gateway: routing stops (readyz 503, compiles
// refused), probers stop, and in-flight proxied requests run to
// completion within ctx.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.draining.Store(true)
	if g.probeStop != nil {
		g.probeStop()
		g.probeGroup.Wait()
	}
	var err error
	g.mu.Lock()
	srv := g.http
	g.mu.Unlock()
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() {
		g.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = fmt.Errorf("drain: %w", ctx.Err())
		}
	}
	return err
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case g.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case g.ring.Len() == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no healthy replicas")
	default:
		fmt.Fprintln(w, "ready")
	}
}

// ReplicaStatus is one backend's row in the gateway /statsz.
type ReplicaStatus struct {
	URL           string `json:"url"`
	Healthy       bool   `json:"healthy"`
	Breaker       string `json:"breaker"`
	BreakerOpens  int64  `json:"breaker_opens"`
	Ejections     int64  `json:"ejections"`
	ProbeFailures int64  `json:"probe_failures"`
	Requests      int64  `json:"requests"`
	Failures      int64  `json:"failures"`
	// Journal is the replica's journal health as last scraped by the
	// prober (nil until a scrape succeeds); CacheDegraded relays the
	// replica's cold-cache reason.
	Journal       *checkpoint.Health `json:"journal,omitempty"`
	CacheDegraded string             `json:"cache_degraded,omitempty"`
}

// GatewaySnapshot is the JSON shape of the gateway's GET /statsz.
type GatewaySnapshot struct {
	Build           string          `json:"build"`
	UptimeSec       float64         `json:"uptime_sec"`
	Draining        bool            `json:"draining"`
	HealthyReplicas int             `json:"healthy_replicas"`
	Replicas        []ReplicaStatus `json:"replicas"`
	Requests        int64           `json:"requests"`
	Completed       int64           `json:"completed"`
	Relayed4xx      int64           `json:"relayed_4xx"`
	Retries         int64           `json:"retries"`
	Failovers       int64           `json:"failovers"`
	Hedges          int64           `json:"hedges"`
	HedgeWins       int64           `json:"hedge_wins"`
	BreakerOpens    int64           `json:"breaker_opens"`
	Ejections       int64           `json:"ejections"`
	NoReplica       int64           `json:"no_replica"`
	ClientCanceled  int64           `json:"client_canceled"`
	Exhausted       int64           `json:"exhausted"`
	// Fleet-wide journal aggregates, summed over the replicas whose
	// /statsz the prober has scraped: one place to see whether any
	// replica salvaged, quarantined, or compacted its journal.
	JournalEntries     int `json:"journal_entries"`
	JournalLoaded      int `json:"journal_loaded"`
	JournalSalvaged    int `json:"journal_salvaged_tail"`
	JournalQuarantined int `json:"journal_quarantined"`
	JournalCompactions int `json:"journal_compactions"`
	CacheDegradedCount int `json:"cache_degraded_count"`
}

// Snapshot assembles the /statsz document (also used by tests).
func (g *Gateway) Snapshot() GatewaySnapshot {
	snap := GatewaySnapshot{
		Build:           buildinfo.String(),
		UptimeSec:       time.Since(g.start).Seconds(),
		Draining:        g.draining.Load(),
		HealthyReplicas: g.ring.Len(),
		Requests:        g.stats.Requests.Load(),
		Completed:       g.stats.Completed.Load(),
		Relayed4xx:      g.stats.Relayed4xx.Load(),
		Retries:         g.stats.Retries.Load(),
		Failovers:       g.stats.Failovers.Load(),
		Hedges:          g.stats.Hedges.Load(),
		HedgeWins:       g.stats.HedgeWins.Load(),
		NoReplica:       g.stats.NoReplica.Load(),
		ClientCanceled:  g.stats.ClientCanceled.Load(),
		Exhausted:       g.stats.Exhausted.Load(),
	}
	for _, url := range g.full.Members() {
		rep := g.replicas[url]
		rs := ReplicaStatus{
			URL:           rep.url,
			Healthy:       rep.healthy.Load(),
			Breaker:       rep.breaker.State().String(),
			BreakerOpens:  rep.breaker.Opens(),
			Ejections:     rep.ejections.Load(),
			ProbeFailures: rep.probeFailures.Load(),
			Requests:      rep.requests.Load(),
			Failures:      rep.failures.Load(),
		}
		rep.journalMu.Lock()
		if rep.journal != nil {
			h := *rep.journal
			rs.Journal = &h
		}
		rs.CacheDegraded = rep.cacheDegraded
		rep.journalMu.Unlock()
		snap.BreakerOpens += rs.BreakerOpens
		snap.Ejections += rs.Ejections
		if rs.Journal != nil {
			snap.JournalEntries += rs.Journal.Entries
			snap.JournalLoaded += rs.Journal.Loaded
			snap.JournalSalvaged += rs.Journal.SalvagedTail
			snap.JournalQuarantined += rs.Journal.Quarantined
			snap.JournalCompactions += rs.Journal.Compactions
		}
		if rs.CacheDegraded != "" {
			snap.CacheDegradedCount++
		}
		snap.Replicas = append(snap.Replicas, rs)
	}
	return snap
}

func (g *Gateway) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Snapshot())
}

// attemptResult is one proxied try's outcome: either a transport error
// or a fully read replica response.
type attemptResult struct {
	replica *replica
	status  int
	header  http.Header
	body    []byte
	err     error
}

// handleCompile routes one compile across the fleet. The decision table
// (DESIGN.md §15):
//
//	connection error   → breaker failure, fail over to next ring replica
//	5xx (500/502/503)  → breaker failure, fail over
//	429 + Retry-After  → honor the hint (capped), retry the SAME replica
//	                     (shedding is healthy; the key's cache lives there)
//	504                → relay (the request's deadline is spent; a retry
//	                     elsewhere would just spend it again)
//	2xx / other 4xx    → breaker success, relay
//	context done       → stop immediately; never retry a dead request
func (g *Gateway) handleCompile(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "gateway draining")
		return
	}
	g.wg.Add(1)
	defer g.wg.Done()
	g.stats.Requests.Add(1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, gwMaxBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	var req server.CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	key, err := server.RouteKey(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	res := g.route(r.Context(), key, body)
	switch {
	case res.err != nil:
		if r.Context().Err() != nil {
			g.stats.ClientCanceled.Add(1)
			return // the client is gone; nothing to write
		}
		writeError(w, http.StatusBadGateway, fmt.Sprintf("all attempts failed: %v", res.err))
	case res.status == 0:
		g.stats.NoReplica.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no routable replica (all ejected or circuit-open)")
	default:
		if res.status >= 200 && res.status < 300 {
			g.stats.Completed.Add(1)
		} else if res.status >= 400 && res.status < 500 {
			g.stats.Relayed4xx.Add(1)
		}
		if ct := res.header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		if ra := res.header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.Header().Set("X-Crat-Replica", res.replica.url)
		w.WriteHeader(res.status)
		w.Write(res.body)
	}
}

// candidatesFor returns the key's replica order: the healthy ring's
// lookup, falling back to the full ring when every member is ejected (a
// desperate attempt beats a guaranteed 503 — the probes may simply not
// have re-admitted a recovered fleet yet).
func (g *Gateway) candidatesFor(key string) []*replica {
	urls := g.ring.Lookup(key, 0)
	if len(urls) == 0 {
		urls = g.full.Lookup(key, 0)
	}
	out := make([]*replica, len(urls))
	for i, u := range urls {
		out[i] = g.replicas[u]
	}
	return out
}

// route drives the attempt loop over the key's candidate order. A zero
// attemptResult (status 0, err nil) means no replica could even be
// tried.
func (g *Gateway) route(ctx context.Context, key string, body []byte) attemptResult {
	candidates := g.candidatesFor(key)
	var last attemptResult
	tried := false
	ci := 0
	for attempt := 0; attempt < g.cfg.Retry.Attempts(); attempt++ {
		if ctx.Err() != nil {
			if !tried {
				return attemptResult{err: ctx.Err()}
			}
			last.err = cmpErr(last.err, ctx.Err())
			return last
		}
		rep := g.nextAllowed(candidates, &ci)
		if rep == nil && ci >= len(candidates) {
			// The candidate list is spent but attempt budget remains: wrap
			// back to the front of the ring. A transient failure on each of
			// two replicas must not 502 a request the third attempt (with
			// backoff) would have served.
			ci = 0
			rep = g.nextAllowed(candidates, &ci)
		}
		if rep == nil {
			// Every candidate's breaker refuses: answer 503 now (status 0
			// sentinel) rather than hammering known-bad replicas.
			if !tried {
				return attemptResult{}
			}
			return last
		}
		var res attemptResult
		if attempt == 0 && g.cfg.HedgeAfter > 0 && len(candidates) > 1 {
			res = g.forwardHedged(ctx, rep, candidates, ci, body)
		} else {
			rep.requests.Add(1)
			res = g.forward(ctx, rep, body)
			g.record(ctx, res)
		}
		tried = true
		last = res
		switch classify(res) {
		case outcomeFinal:
			return res
		case outcomeShed:
			// Same replica again after its own hint (or backoff): the key's
			// warm cache lives there, and shedding means alive-but-busy.
			g.stats.Retries.Add(1)
			wait := g.cfg.Retry.Delay(attempt)
			if hint, ok := retry.RetryAfter(res.header); ok {
				wait = min(hint, g.cfg.MaxRetryAfterWait)
			}
			if err := g.cfg.Retry.Sleep(ctx, wait); err != nil {
				last.err = cmpErr(last.err, err)
				return last
			}
		case outcomeFailover:
			g.stats.Failovers.Add(1)
			ci++
			if err := g.cfg.Retry.Sleep(ctx, g.cfg.Retry.Delay(attempt)); err != nil {
				last.err = cmpErr(last.err, err)
				return last
			}
		}
	}
	g.stats.Exhausted.Add(1)
	return last
}

// nextAllowed advances *ci past breaker-refusing candidates and returns
// the first admitted one (nil when the list is spent).
func (g *Gateway) nextAllowed(candidates []*replica, ci *int) *replica {
	for *ci < len(candidates) {
		rep := candidates[*ci]
		if rep.breaker.Allow() {
			return rep
		}
		*ci++
	}
	return nil
}

// forward issues one proxied request and reads the full response, so the
// caller can retry or relay freely.
func (g *Gateway) forward(ctx context.Context, rep *replica, body []byte) attemptResult {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		return attemptResult{replica: rep, err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(hreq)
	if err != nil {
		return attemptResult{replica: rep, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return attemptResult{replica: rep, err: err}
	}
	return attemptResult{replica: rep, status: resp.StatusCode, header: resp.Header, body: data}
}

// record applies one attempt's outcome to its replica's breaker and
// failure counters. Results produced by our own hedge-loser cancellation
// (ctx still live but the attempt context canceled) are recorded by
// forwardHedged instead.
func (g *Gateway) record(ctx context.Context, res attemptResult) {
	if res.replica == nil {
		return
	}
	switch classify(res) {
	case outcomeFailover:
		// A transport error caused by the *client* hanging up is not the
		// replica's fault; don't trip its breaker.
		if res.err != nil && ctx.Err() != nil {
			return
		}
		res.replica.breaker.Failure()
		res.replica.failures.Add(1)
	case outcomeFinal:
		res.replica.breaker.Success()
	case outcomeShed:
		// 429 is the admission queue working as designed — the replica is
		// alive. Neither success (it refused) nor breaker failure.
	}
}

// forwardHedged races the primary against one hedge launched after
// HedgeAfter: the first final answer wins and the loser is canceled.
// Both failing degrades to the primary's result so the outer loop fails
// over normally.
func (g *Gateway) forwardHedged(ctx context.Context, primary *replica, candidates []*replica, nextIdx int, body []byte) attemptResult {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptResult, 2)
	launch := func(rep *replica) {
		rep.requests.Add(1)
		go func() { results <- g.forward(hctx, rep, body) }()
	}
	launch(primary)

	inFlight := 1
	hedged := false
	var hedge *replica
	timer := g.cfg.Clock.After(g.cfg.HedgeAfter)
	var failed attemptResult
	haveFailed := false
	for inFlight > 0 {
		select {
		case <-timer:
			if hedged {
				timer = nil
				continue
			}
			hedged = true
			// Hedge onto the next breaker-admitted failover candidate.
			hi := nextIdx + 1
			if hedge = g.nextAllowed(candidates, &hi); hedge != nil && hedge != primary {
				g.stats.Hedges.Add(1)
				launch(hedge)
				inFlight++
			}
		case res := <-results:
			// A loser canceled by us reports ctx.Canceled with the parent
			// still live: ignore it entirely (no breaker bookkeeping).
			if res.err != nil && hctx.Err() != nil && ctx.Err() == nil {
				inFlight--
				continue
			}
			g.record(ctx, res)
			if classify(res) != outcomeFailover {
				if hedged && hedge != nil && res.replica == hedge {
					g.stats.HedgeWins.Add(1)
				}
				return res // winner; defer cancel() reaps the loser
			}
			if !haveFailed || res.replica == primary {
				failed, haveFailed = res, true
			}
			inFlight--
		case <-ctx.Done():
			if haveFailed {
				failed.err = cmpErr(failed.err, ctx.Err())
				return failed
			}
			return attemptResult{replica: primary, err: ctx.Err()}
		}
	}
	return failed
}

type outcome int

const (
	outcomeFinal outcome = iota
	outcomeShed
	outcomeFailover
)

// classify maps an attempt result onto the routing decision table.
func classify(res attemptResult) outcome {
	switch {
	case res.err != nil:
		return outcomeFailover
	case res.status == http.StatusTooManyRequests:
		return outcomeShed
	case res.status == http.StatusInternalServerError,
		res.status == http.StatusBadGateway,
		res.status == http.StatusServiceUnavailable:
		return outcomeFailover
	default:
		// 2xx, 4xx, and 504 (the deadline is spent either way) are final.
		return outcomeFinal
	}
}

func cmpErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}{msg, status})
}
