package shard

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// Fleet spawns and supervises a multi-replica cratd deployment plus the
// cratgw gateway fronting it, for cratload's -replicas mode and the
// shard-smoke chaos run: SIGKILL a replica mid-load, restart it on the
// same address with the same (warm) cache journal, and prove clients
// never noticed.
type FleetConfig struct {
	// Dir holds per-replica cache dirs, addr files, and logs.
	Dir string
	// CratdBin / GatewayBin are the binaries to exec.
	CratdBin   string
	GatewayBin string
	// Replicas is the cratd process count (>= 1).
	Replicas int
	// Verify passes -verify to the replicas (default off: the smoke
	// wants throughput, and the oracle is covered elsewhere).
	Verify bool
	// HedgeAfter configures the gateway's tail-latency hedge (0 = off).
	HedgeAfter time.Duration
	// ExtraGatewayArgs append to the cratgw invocation.
	ExtraGatewayArgs []string
	// ReplicaFaults are per-replica -fault specs (index-matched; missing
	// or empty entries leave that replica fault-free). A restarted replica
	// re-arms its spec — the scenario's counters reset with the process.
	ReplicaFaults []string
	// GatewayFault is the cratgw -fault spec ("" = none).
	GatewayFault string
}

type fleetProc struct {
	cmd    *exec.Cmd
	addr   string // bound host:port
	args   []string
	log    *os.File
	exited bool // killed (and Waited) without a restart since
}

// Fleet is a running deployment. Always call Stop.
type Fleet struct {
	cfg      FleetConfig
	replicas []*fleetProc
	gateway  *fleetProc
}

// StartFleet launches cfg.Replicas cratd processes on ephemeral ports
// (each with its own cache journal) and a cratgw fronting them, waiting
// until every process has written its addr file.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("fleet needs at least 1 replica")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg}
	for i := 0; i < cfg.Replicas; i++ {
		args := []string{
			"-addr", "127.0.0.1:0",
			"-addr-file", filepath.Join(cfg.Dir, fmt.Sprintf("addr-%d", i)),
			"-cache", filepath.Join(cfg.Dir, fmt.Sprintf("cache-%d", i)),
			"-drain-grace", "300ms",
			fmt.Sprintf("-verify=%t", cfg.Verify),
		}
		if i < len(cfg.ReplicaFaults) && cfg.ReplicaFaults[i] != "" {
			args = append(args, "-fault", cfg.ReplicaFaults[i])
		}
		p, err := f.spawn(cfg.CratdBin, args, filepath.Join(cfg.Dir, fmt.Sprintf("cratd-%d.log", i)),
			filepath.Join(cfg.Dir, fmt.Sprintf("addr-%d", i)))
		if err != nil {
			f.Stop()
			return nil, fmt.Errorf("replica %d: %w", i, err)
		}
		f.replicas = append(f.replicas, p)
	}
	urls := make([]string, len(f.replicas))
	for i, p := range f.replicas {
		urls[i] = "http://" + p.addr
	}
	gwArgs := []string{
		"-addr", "127.0.0.1:0",
		"-addr-file", filepath.Join(cfg.Dir, "gw-addr"),
		"-replicas", strings.Join(urls, ","),
	}
	if cfg.HedgeAfter > 0 {
		gwArgs = append(gwArgs, "-hedge-after", cfg.HedgeAfter.String())
	}
	if cfg.GatewayFault != "" {
		gwArgs = append(gwArgs, "-fault", cfg.GatewayFault)
	}
	gwArgs = append(gwArgs, cfg.ExtraGatewayArgs...)
	p, err := f.spawn(cfg.GatewayBin, gwArgs, filepath.Join(cfg.Dir, "cratgw.log"),
		filepath.Join(cfg.Dir, "gw-addr"))
	if err != nil {
		f.Stop()
		return nil, fmt.Errorf("gateway: %w", err)
	}
	f.gateway = p
	return f, nil
}

// spawn execs bin with args, streaming output to logPath, and waits for
// addrFile to appear (the daemons write it once listening).
func (f *Fleet) spawn(bin string, args []string, logPath, addrFile string) (*fleetProc, error) {
	os.Remove(addrFile)
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, err
	}
	addr, err := waitAddrFile(addrFile, 10*time.Second)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		logf.Close()
		return nil, fmt.Errorf("%s did not come up: %w (log: %s)", bin, err, logPath)
	}
	return &fleetProc{cmd: cmd, addr: addr, args: args, log: logf}, nil
}

func waitAddrFile(path string, budget time.Duration) (string, error) {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
			return strings.TrimSpace(string(data)), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("no addr file %s within %s", path, budget)
}

// GatewayURL is the load target.
func (f *Fleet) GatewayURL() string { return "http://" + f.gateway.addr }

// ReplicaURL returns replica i's base URL.
func (f *Fleet) ReplicaURL(i int) string { return "http://" + f.replicas[i].addr }

// NumReplicas returns the replica count.
func (f *Fleet) NumReplicas() int { return len(f.replicas) }

// KillReplica SIGKILLs replica i — no drain, no flush, the crash the
// gateway must absorb.
func (f *Fleet) KillReplica(i int) error {
	p := f.replicas[i]
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	p.cmd.Wait()
	p.exited = true
	return nil
}

// TermReplica SIGTERMs replica i and waits for it to drain and exit —
// the graceful shutdown path, under whatever load and faults are active.
// The chaos matrix uses it to crash-test the drain-time journal flush.
func (f *Fleet) TermReplica(i int) error {
	p := f.replicas[i]
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		p.exited = true
		return err // non-nil = the drain failed (exit 1); callers decide
	case <-time.After(20 * time.Second):
		p.cmd.Process.Kill()
		<-done
		p.exited = true
		return fmt.Errorf("replica %d did not drain within 20s", i)
	}
}

// JournalPath returns replica i's cache journal file.
func (f *Fleet) JournalPath(i int) string {
	return filepath.Join(f.cfg.Dir, fmt.Sprintf("cache-%d", i), "journal.log")
}

// TruncateJournalTail chops n bytes off replica i's journal — the torn
// final record a power cut leaves. Only meaningful while the replica is
// down (kill first, truncate, restart).
func (f *Fleet) TruncateJournalTail(i int, n int64) error {
	path := f.JournalPath(i)
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if st.Size() <= n {
		return fmt.Errorf("journal %s has only %d bytes; cannot tear %d", path, st.Size(), n)
	}
	return os.Truncate(path, st.Size()-n)
}

// RestartReplica re-execs a killed replica on its ORIGINAL address (the
// port is free again) with its original cache directory: the ring
// re-admits it unchanged and its journal serves its shard warm.
func (f *Fleet) RestartReplica(i int) error {
	p := f.replicas[i]
	args := make([]string, len(p.args))
	copy(args, p.args)
	for j := 0; j+1 < len(args); j++ {
		if args[j] == "-addr" {
			args[j+1] = p.addr
		}
	}
	addrFile := ""
	for j := 0; j+1 < len(args); j++ {
		if args[j] == "-addr-file" {
			addrFile = args[j+1]
		}
	}
	// The port was held by the killed process; rebinding can race its
	// teardown briefly, so retry within a small budget.
	var lastErr error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		cmd := exec.Command(f.cfg.CratdBin, args...)
		cmd.Stdout = p.log
		cmd.Stderr = p.log
		os.Remove(addrFile)
		if err := cmd.Start(); err != nil {
			return err
		}
		addr, err := waitAddrFile(addrFile, 3*time.Second)
		if err == nil && addr == p.addr {
			p.cmd = cmd
			p.exited = false
			return nil
		}
		lastErr = err
		if err == nil {
			lastErr = fmt.Errorf("restarted replica bound %s, want %s", addr, p.addr)
		}
		cmd.Process.Kill()
		cmd.Wait()
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("restarting replica %d: %w", i, lastErr)
}

// Stop SIGTERMs the gateway then every replica and waits for clean
// exits, returning the first failure (a replica that did not drain
// cleanly exits nonzero, failing the smoke).
func (f *Fleet) Stop() error {
	var firstErr error
	stop := func(name string, p *fleetProc) {
		if p == nil || p.cmd == nil || p.cmd.Process == nil || p.exited {
			return
		}
		p.cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- p.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil && firstErr == nil && !strings.Contains(err.Error(), "killed") {
				firstErr = fmt.Errorf("%s: %w", name, err)
			}
		case <-time.After(20 * time.Second):
			p.cmd.Process.Kill()
			<-done
			if firstErr == nil {
				firstErr = fmt.Errorf("%s did not drain within 20s", name)
			}
		}
		if p.log != nil {
			p.log.Close()
			p.log = nil
		}
	}
	stop("cratgw", f.gateway)
	for i, p := range f.replicas {
		stop(fmt.Sprintf("cratd-%d", i), p)
	}
	return firstErr
}
