package shard

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"crat/internal/checkpoint"
)

// HealthConfig tunes the active prober. Each replica is probed on its
// own goroutine every Period: GET /readyz, where anything but a timely
// 200 is a failure. A replica leaves the routing ring after
// UnhealthyAfter consecutive failures and rejoins after HealthyAfter
// consecutive successes — the hysteresis keeps a flapping replica from
// churning the ring (and remapping its keys) on every blip.
//
// Probing /readyz rather than /healthz is deliberate: a draining cratd
// flips /readyz to 503 while /healthz stays 200 (Config.DrainGrace holds
// the listener open so the flip is observable), so the gateway stops
// routing to a draining replica before its listener ever closes.
type HealthConfig struct {
	// Period between probes of one replica (default 250ms).
	Period time.Duration
	// Timeout bounds one probe (default 1s).
	Timeout time.Duration
	// UnhealthyAfter consecutive probe failures eject (default 2);
	// HealthyAfter consecutive successes re-admit (default 2).
	UnhealthyAfter int
	HealthyAfter   int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Period <= 0 {
		c.Period = 250 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.UnhealthyAfter <= 0 {
		c.UnhealthyAfter = 2
	}
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 2
	}
	return c
}

// probeLoop drives one replica's health state until ctx is done.
func (g *Gateway) probeLoop(ctx context.Context, rep *replica) {
	defer g.probeGroup.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case <-g.cfg.Clock.After(g.cfg.Health.Period):
		}
		rep.probeCount++
		if g.probeOnce(ctx, rep) {
			// Every few probes, piggyback a /statsz scrape so the gateway's
			// own /statsz can aggregate fleet journal health (salvaged tails,
			// quarantined corruption) without a second prober.
			if rep.probeCount%journalScrapeEvery == 1 {
				g.scrapeJournal(ctx, rep)
			}
			rep.consecFails = 0
			rep.consecOKs++
			if !rep.healthy.Load() && rep.consecOKs >= g.cfg.Health.HealthyAfter {
				rep.healthy.Store(true)
				g.ring.Add(rep.url)
				g.logf("replica %s healthy again (%d consecutive probes): re-admitted to ring", rep.url, rep.consecOKs)
			}
		} else {
			rep.consecOKs = 0
			rep.consecFails++
			rep.probeFailures.Add(1)
			if rep.healthy.Load() && rep.consecFails >= g.cfg.Health.UnhealthyAfter {
				rep.healthy.Store(false)
				rep.ejections.Add(1)
				g.ring.Remove(rep.url)
				g.logf("replica %s unhealthy (%d consecutive probe failures): ejected from ring", rep.url, rep.consecFails)
			}
		}
	}
}

// journalScrapeEvery spaces the prober's /statsz scrapes: one journal
// health refresh per this many /readyz probes (the first probe scrapes
// immediately so a fresh gateway has fleet health within one period).
const journalScrapeEvery = 4

// scrapeJournal refreshes rep's cached journal health from its /statsz.
// Best-effort: a failed scrape keeps the previous report.
func (g *Gateway) scrapeJournal(ctx context.Context, rep *replica) {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.Health.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.url+"/statsz", nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var snap struct {
		CacheDegraded string             `json:"cache_degraded"`
		Journal       *checkpoint.Health `json:"journal"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&snap); err != nil {
		return
	}
	rep.journalMu.Lock()
	rep.journal = snap.Journal
	rep.cacheDegraded = snap.CacheDegraded
	rep.journalMu.Unlock()
}

// probeOnce reports whether one /readyz probe succeeded.
func (g *Gateway) probeOnce(ctx context.Context, rep *replica) bool {
	pctx, cancel := context.WithTimeout(ctx, g.cfg.Health.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
