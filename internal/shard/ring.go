// Package shard is the multi-replica service layer for cratd: a
// consistent-hash ring that places each content-addressed compile on a
// stable replica (keeping that replica's memory/journal cache tiers hot
// for the key), per-replica health checking and circuit breaking, and
// the cratgw gateway that routes, retries, fails over, and hedges across
// the fleet. See DESIGN.md §15.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count per replica. 256 points per
// member keeps the per-replica share of a uniform keyspace within a few
// percent standard deviation of fair (share stddev ≈ fair/√vnodes), so
// no replica's cache working set or compile load is accidentally 2× the
// others'.
const DefaultVnodes = 256

// Ring is a consistent-hash ring over replica names. Each member
// contributes vnodes points placed by sha256(name#i); a key is owned by
// the first point at or after sha256(key) walking clockwise. Membership
// changes move only the keys owned by the added/removed member (the
// minimal-remap property the ring tests pin), so a replica rejoining
// after a crash re-serves exactly its old shard — warm.
//
// Ring is safe for concurrent use: lookups take a read lock over an
// immutable sorted point slice that membership changes rebuild.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	// points is sorted by hash; owners[i] names the member that placed
	// points[i].
	points  []uint64
	owners  []string
	members map[string]bool
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<=0 uses DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

func pointHash(name string, i int) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i))
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{'#'})
	h.Write(buf[:])
	return binary.BigEndian.Uint64(h.Sum(nil))
}

func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:])
}

// Add inserts a member (idempotent).
func (r *Ring) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[name] {
		return
	}
	r.members[name] = true
	r.rebuild()
}

// Remove ejects a member (idempotent).
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[name] {
		return
	}
	delete(r.members, name)
	r.rebuild()
}

// rebuild recomputes the sorted point set; callers hold the write lock.
// Point hashes are deterministic per (name, index), so add-after-remove
// restores the exact prior assignment.
func (r *Ring) rebuild() {
	n := len(r.members) * r.vnodes
	r.points = make([]uint64, 0, n)
	r.owners = make([]string, 0, n)
	type pt struct {
		h     uint64
		owner string
	}
	pts := make([]pt, 0, n)
	for name := range r.members {
		for i := 0; i < r.vnodes; i++ {
			pts = append(pts, pt{pointHash(name, i), name})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		// A 64-bit collision between members is astronomically unlikely,
		// but break the tie deterministically anyway.
		return pts[i].owner < pts[j].owner
	})
	for _, p := range pts {
		r.points = append(r.points, p.h)
		r.owners = append(r.owners, p.owner)
	}
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for name := range r.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Primary returns the key's owner, or false on an empty ring.
func (r *Ring) Primary(key string) (string, bool) {
	owners := r.Lookup(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Lookup returns up to n distinct members in ring order starting from
// the key's owner: element 0 is the primary, element 1 the first
// failover target, and so on. n <= 0 returns every member. The failover
// order is itself consistent — a key's secondary is stable across
// lookups, so a failed-over compile still lands on one warm cache, not a
// random one.
func (r *Ring) Lookup(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	h := keyHash(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		owner := r.owners[(idx+i)%len(r.points)]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}
