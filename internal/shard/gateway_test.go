package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/retry"
	"crat/internal/server"
)

// testReplica is an in-process cratd replica on a real TCP listener, so
// the chaos test can kill it abruptly (http.Server.Close: listener gone,
// in-flight connections reset — the in-process stand-in for SIGKILL) and
// restart it on the same address.
type testReplica struct {
	s    *server.Server
	hs   *http.Server
	addr string
}

func startReplica(t *testing.T, cfg server.Config) *testReplica {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &testReplica{s: s}
	r.listen(t, "127.0.0.1:0")
	return r
}

func (r *testReplica) listen(t *testing.T, addr string) {
	t.Helper()
	var l net.Listener
	var err error
	// Rebinding the original port right after an abrupt close can race
	// the kernel's teardown; retry briefly.
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if l, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	r.addr = l.Addr().String()
	r.hs = &http.Server{Handler: r.s.Handler()}
	go r.hs.Serve(l)
	t.Cleanup(func() { r.hs.Close() })
}

func (r *testReplica) url() string { return "http://" + r.addr }

// kill closes the listener and every connection without any drain.
func (r *testReplica) kill() { r.hs.Close() }

// restart rebinds the same address (same ring identity, same warm
// in-process caches).
func (r *testReplica) restart(t *testing.T) { r.listen(t, r.addr) }

func startGateway(t *testing.T, cfg GatewayConfig) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		g.Shutdown(ctx)
	})
	return g, ts
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not reached within 10s: %s", what)
}

// TestGatewayChaosE2E is the acceptance run in-process: 3 replicas
// behind the gateway, one killed abruptly mid-load and later restarted.
// Zero client-visible failures, the circuit-open and failover counters
// advance, and every Decision is byte-identical to a single-replica
// baseline run over the same corpus.
func TestGatewayChaosE2E(t *testing.T) {
	const kernels, requests = 6, 60
	loadOpts := server.LoadOptions{
		Concurrency:      4,
		Requests:         requests,
		Kernels:          kernels,
		Seed:             7,
		Block:            64,
		Timeout:          30 * time.Second,
		CaptureDecisions: true,
	}

	// Single-replica baseline, loaded directly (no gateway).
	baseline := startReplica(t, server.Config{Workers: 2})
	baseRep, err := server.RunLoad(context.Background(), baseline.url(), loadOpts)
	if err != nil {
		t.Fatalf("baseline load: %v", err)
	}
	if baseRep.OK != requests || len(baseRep.Decisions) != kernels {
		t.Fatalf("baseline not clean: ok=%d decisions=%d", baseRep.OK, len(baseRep.Decisions))
	}

	// The fleet: 3 fresh replicas behind the gateway. Health probing is
	// slowed so the circuit breaker (not ejection) is what sheds the dead
	// replica first — both paths advance their counters.
	reps := []*testReplica{
		startReplica(t, server.Config{Workers: 2}),
		startReplica(t, server.Config{Workers: 2}),
		startReplica(t, server.Config{Workers: 2}),
	}
	urls := []string{reps[0].url(), reps[1].url(), reps[2].url()}
	g, ts := startGateway(t, GatewayConfig{
		Replicas: urls,
		Health:   HealthConfig{Period: 200 * time.Millisecond, UnhealthyAfter: 2, HealthyAfter: 2},
		Breaker:  BreakerConfig{Failures: 2, Cooldown: 500 * time.Millisecond},
		Retry:    retry.Policy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	})

	// Kill the replica that owns the most corpus keys, so post-kill
	// traffic is guaranteed to hit the dead shard and exercise failover.
	owners := map[string]int{}
	for i, req := range server.Corpus(kernels, loadOpts.Seed, loadOpts.Block) {
		key, err := server.RouteKey(req)
		if err != nil {
			t.Fatalf("route key %d: %v", i, err)
		}
		if primary, ok := g.ring.Primary(key); ok {
			owners[primary]++
		}
	}
	victim := 0
	for i, u := range urls {
		if owners[u] > owners[urls[victim]] {
			victim = i
		}
	}
	if owners[urls[victim]] == 0 {
		t.Fatal("no replica owns any corpus key — ring is broken")
	}

	loadDone := make(chan *server.LoadReport, 1)
	go func() {
		rep, err := server.RunLoad(context.Background(), ts.URL, loadOpts)
		if err != nil {
			t.Errorf("fleet load: %v", err)
		}
		loadDone <- rep
	}()
	waitFor(t, "some load completed before the kill", func() bool {
		return g.Stats().Completed.Load() >= 8
	})
	reps[victim].kill()
	rep := <-loadDone
	if rep == nil {
		t.Fatal("no load report")
	}

	// The acceptance bar: zero client-visible failures despite the kill.
	if rep.OK != requests {
		t.Errorf("ok = %d of %d (failed %d, timeouts %d, shed %d): the crash was client-visible",
			rep.OK, requests, rep.Failed, rep.Timeouts, rep.Shed)
	}
	if rep.Inconsistent != 0 {
		t.Errorf("inconsistent decisions across repeats: %d", rep.Inconsistent)
	}
	if got := g.Stats().Failovers.Load(); got < 1 {
		t.Errorf("failovers = %d, want >= 1 (dead replica traffic must have moved)", got)
	}
	snap := g.Snapshot()
	if snap.BreakerOpens < 1 {
		t.Errorf("breaker opens = %d, want >= 1", snap.BreakerOpens)
	}

	// Byte-identical Decisions regardless of which replica served them.
	if len(rep.Decisions) != len(baseRep.Decisions) {
		t.Fatalf("decision count %d != baseline %d", len(rep.Decisions), len(baseRep.Decisions))
	}
	for i := range rep.Decisions {
		if rep.Decisions[i] != baseRep.Decisions[i] {
			t.Errorf("decision %d differs from single-replica baseline:\n fleet: %s\n base:  %s",
				i, rep.Decisions[i], baseRep.Decisions[i])
		}
	}

	// Restart the victim on its original address: the prober re-admits
	// it and the fleet heals to 3.
	reps[victim].restart(t)
	waitFor(t, "killed replica re-admitted after restart", func() bool {
		return g.Snapshot().HealthyReplicas == 3 && g.ring.Len() == 3
	})

	// Cancel machinery through the gateway (the service-smoke cancel
	// injection): aborted clients are counted, never turned into errors.
	cancelOpts := loadOpts
	cancelOpts.Requests = 12
	cancelOpts.CancelFrac = 0.25
	cancelOpts.CancelAfter = time.Millisecond
	cancelOpts.CaptureDecisions = false
	crep, err := server.RunLoad(context.Background(), ts.URL, cancelOpts)
	if err != nil {
		t.Fatalf("cancel-injection load: %v", err)
	}
	if crep.Failed > 0 {
		t.Errorf("cancel-injection run had %d hard failures", crep.Failed)
	}
	if crep.Canceled == 0 {
		t.Error("cancel injection produced no canceled requests")
	}
}

// TestGatewayHedging wedges the first compile (the service-smoke wedge
// machinery: a pass-pipeline gate that blocks exactly one compile) and
// asserts the hedge fires to the failover replica, wins, and the client
// sees a normal 200.
func TestGatewayHedging(t *testing.T) {
	a := startReplica(t, server.Config{Workers: 2})
	b := startReplica(t, server.Config{Workers: 2})
	g, ts := startGateway(t, GatewayConfig{
		Replicas:   []string{a.url(), b.url()},
		Health:     HealthConfig{Period: time.Hour}, // probes out of the picture
		Retry:      retry.Policy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond},
		HedgeAfter: 40 * time.Millisecond,
	})

	// Arm a one-shot wedge: the first compile to enter the pass pipeline
	// parks until released; every later compile passes through. The
	// primary gets wedged, the hedge lands on the failover replica and
	// completes.
	var armed atomic.Bool
	armed.Store(true)
	release := make(chan struct{})
	entered := make(chan struct{})
	passes.SetGlobalWrap(func(p passes.Pass) passes.Pass {
		return passes.After(p, func(k *ptx.Kernel, _ *passes.AnalysisManager) error {
			if armed.CompareAndSwap(true, false) {
				close(entered)
				<-release
			}
			return nil
		})
	})
	defer passes.SetGlobalWrap(nil)
	defer close(release)

	req := server.CompileRequest{PTX: hedgePTX(t), Block: 64}
	buf, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	select {
	case <-entered:
	default:
		t.Log("note: wedge never engaged (request may have raced); still asserting outcome")
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request status = %d, want 200", resp.StatusCode)
	}
	var cr server.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Reg <= 0 || cr.TLP <= 0 {
		t.Errorf("implausible hedged decision: %+v", cr)
	}
	if got := g.Stats().Hedges.Load(); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
	if got := g.Stats().HedgeWins.Load(); got != 1 {
		t.Errorf("hedge wins = %d, want 1 (the wedged primary cannot have answered first)", got)
	}
}

// hedgePTX builds a small compile subject.
func hedgePTX(t *testing.T) string {
	t.Helper()
	b := ptx.NewBuilder("k_hedge")
	b.Param("data", ptx.U64).Param("out", ptx.U64)
	pd, po := b.Reg(ptx.U64), b.Reg(ptx.U64)
	b.LdParam(ptx.U64, pd, "data").LdParam(ptx.U64, po, "out")
	gi := b.GlobalIndex()
	addr := b.AddrOf(pd, gi, 4)
	v := b.Reg(ptx.F32)
	b.Ld(ptx.SpaceGlobal, ptx.F32, v, ptx.MemReg(addr, 0))
	hots := b.Regs(ptx.F32, 6)
	for i, r := range hots {
		b.Mov(ptx.F32, r, ptx.FImm(float64(i)))
	}
	for _, r := range hots {
		b.Mad(ptx.F32, r, ptx.R(r), ptx.FImm(1.5), ptx.R(v))
	}
	sum := b.Reg(ptx.F32)
	b.Mov(ptx.F32, sum, ptx.FImm(0))
	for _, r := range hots {
		b.Add(ptx.F32, sum, ptx.R(sum), ptx.R(r))
	}
	oa := b.AddrOf(po, gi, 4)
	b.St(ptx.SpaceGlobal, ptx.F32, ptx.MemReg(oa, 0), ptx.R(sum))
	b.Exit()
	return ptx.Print(b.Kernel())
}

// TestGatewayDrainEjection: a draining replica (readyz 503, listener
// still up — cratd's DrainGrace contract) is ejected by the prober and
// its traffic routes to the survivor with zero errors.
func TestGatewayDrainEjection(t *testing.T) {
	a := startReplica(t, server.Config{Workers: 2})
	b := startReplica(t, server.Config{Workers: 2})
	g, ts := startGateway(t, GatewayConfig{
		Replicas: []string{a.url(), b.url()},
		Health:   HealthConfig{Period: 30 * time.Millisecond, UnhealthyAfter: 2, HealthyAfter: 2},
		Retry:    retry.Policy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond},
	})
	waitFor(t, "both replicas in ring", func() bool { return g.ring.Len() == 2 })

	// Drain replica A. Its Server has no attached listener-shutdown (we
	// serve its handler ourselves), which models exactly the DrainGrace
	// window: readyz already 503, listener still answering.
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- a.s.Shutdown(ctx)
	}()
	waitFor(t, "draining replica ejected from ring", func() bool { return g.ring.Len() == 1 })
	if err := <-drainDone; err != nil {
		t.Fatalf("replica drain: %v", err)
	}

	// All traffic — including keys A owned — now lands on B, cleanly.
	for i := 0; i < 6; i++ {
		req := server.CompileRequest{PTX: hedgePTX(t), Block: 64, OptTLP: i + 1}
		buf, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("request %d: status %d, want 200", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Crat-Replica"); got != b.url() {
			t.Errorf("request %d served by %s, want survivor %s", i, got, b.url())
		}
	}
	snap := g.Snapshot()
	if snap.Ejections < 1 {
		t.Errorf("ejections = %d, want >= 1", snap.Ejections)
	}
}

// TestGatewayShedRetrySameReplica: a 429 is retried against the SAME
// replica (its cache owns the key) honoring Retry-After, and the retry
// counter advances. Fake replicas keep the schedule deterministic.
func TestGatewayShedRetrySameReplica(t *testing.T) {
	var hits atomic.Int64
	shedOnce := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/compile" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"kernel":"k","reg":4,"tlp":8,"ptx":"x"}`)
	}))
	defer shedOnce.Close()

	g, ts := startGateway(t, GatewayConfig{
		Replicas: []string{shedOnce.URL},
		Health:   HealthConfig{Period: time.Hour},
		Retry:    retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
	})
	buf, _ := json.Marshal(server.CompileRequest{PTX: ".visible .entry k()", Block: 32})
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 after retried shed", resp.StatusCode)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("replica hits = %d, want 2 (shed once, then success)", got)
	}
	if got := g.Stats().Retries.Load(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
}

// TestGatewayBreakerShortCircuits: with the lone replica dead, the
// first request burns its whole retry budget against it — the attempt
// loop wraps the one-replica ring — failing through as 502 and tripping
// the Failures=2 breaker in a single request; once open, requests are
// answered 503 + Retry-After immediately without touching the replica.
func TestGatewayBreakerShortCircuits(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	g, ts := startGateway(t, GatewayConfig{
		Replicas: []string{deadURL},
		Health:   HealthConfig{Period: time.Hour},
		Breaker:  BreakerConfig{Failures: 2, Cooldown: time.Hour},
		Retry:    retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})
	buf, _ := json.Marshal(server.CompileRequest{PTX: ".visible .entry k()", Block: 32})
	statuses := make([]int, 3)
	for i := range statuses {
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		statuses[i] = resp.StatusCode
		if statuses[i] == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
			t.Error("503 without Retry-After")
		}
	}
	if statuses[0] != http.StatusBadGateway {
		t.Errorf("pre-open status = %v, want 502 (both attempts failed through)", statuses[0])
	}
	if statuses[1] != http.StatusServiceUnavailable || statuses[2] != http.StatusServiceUnavailable {
		t.Errorf("post-open statuses = %v, want [_ 503 503] (breaker short-circuit)", statuses)
	}
	if got := g.Breaker(deadURL).State(); got != BreakerOpen {
		t.Errorf("breaker state = %v, want open", got)
	}
	if got := g.Stats().NoReplica.Load(); got != 2 {
		t.Errorf("no_replica = %d, want 2", got)
	}
}

// TestGatewayStickyRouting: identical requests land on one replica,
// different requests spread across the fleet (fake replicas echo their
// identity).
func TestGatewayStickyRouting(t *testing.T) {
	mk := func(id string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"kernel":%q}`, id)
		}))
	}
	r1, r2, r3 := mk("r1"), mk("r2"), mk("r3")
	defer r1.Close()
	defer r2.Close()
	defer r3.Close()

	_, ts := startGateway(t, GatewayConfig{
		Replicas: []string{r1.URL, r2.URL, r3.URL},
		Health:   HealthConfig{Period: time.Hour},
	})
	served := func(req server.CompileRequest) string {
		buf, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Kernel string `json:"kernel"`
		}
		json.NewDecoder(resp.Body).Decode(&out)
		return out.Kernel
	}
	// Stickiness: one request, ten sends, one replica.
	first := served(server.CompileRequest{PTX: "sticky", Block: 64})
	for i := 0; i < 9; i++ {
		if got := served(server.CompileRequest{PTX: "sticky", Block: 64}); got != first {
			t.Fatalf("identical request moved replica: %s then %s", first, got)
		}
	}
	// Spread: distinct keys reach more than one replica.
	seen := map[string]bool{}
	for i := 0; i < 24; i++ {
		seen[served(server.CompileRequest{PTX: fmt.Sprintf("kernel-%d", i), Block: 64})] = true
	}
	if len(seen) < 2 {
		t.Errorf("24 distinct keys all routed to one replica: %v", seen)
	}
}
