package shard

import (
	"fmt"
	"testing"
)

// synthKeys builds a deterministic synthetic keyspace shaped like the
// real routing keys (hex-ish strings; the ring hashes them anyway).
func synthKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d-%x", i, i*2654435761)
	}
	return keys
}

// TestRingBalance: with the default vnode count, 1k synthetic keys split
// across replicas within a tolerance of fair share. The hash is fixed,
// so this is a deterministic property of the construction, not a flake.
func TestRingBalance(t *testing.T) {
	keys := synthKeys(1000)
	for _, replicas := range []int{2, 3, 5, 8} {
		r := NewRing(0)
		for i := 0; i < replicas; i++ {
			r.Add(fmt.Sprintf("replica-%d", i))
		}
		counts := map[string]int{}
		for _, k := range keys {
			p, ok := r.Primary(k)
			if !ok {
				t.Fatalf("replicas=%d: empty ring", replicas)
			}
			counts[p]++
		}
		fair := float64(len(keys)) / float64(replicas)
		for name, c := range counts {
			if float64(c) < 0.55*fair || float64(c) > 1.55*fair {
				t.Errorf("replicas=%d: %s owns %d keys, outside [%.0f, %.0f] around fair %.0f",
					replicas, name, c, 0.55*fair, 1.55*fair, fair)
			}
		}
		if len(counts) != replicas {
			t.Errorf("replicas=%d: only %d replicas own keys", replicas, len(counts))
		}
	}
}

// TestRingMinimalRemap: removing one of N replicas remaps exactly the
// keys that replica owned (≈1/N of the keyspace), every remapped key
// stays within the others' existing assignment, and adding the replica
// back restores the original assignment bit-for-bit.
func TestRingMinimalRemap(t *testing.T) {
	keys := synthKeys(1000)
	const replicas = 4
	r := NewRing(0)
	for i := 0; i < replicas; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	before := map[string]string{}
	for _, k := range keys {
		before[k], _ = r.Primary(k)
	}

	const victim = "replica-2"
	r.Remove(victim)
	remapped := 0
	for _, k := range keys {
		after, ok := r.Primary(k)
		if !ok {
			t.Fatal("ring emptied by a single removal")
		}
		if after == victim {
			t.Fatalf("key %s still owned by the removed replica", k)
		}
		if before[k] != victim && after != before[k] {
			t.Errorf("key %s owned by surviving %s moved to %s on unrelated removal",
				k, before[k], after)
		}
		if before[k] == victim {
			remapped++
		}
	}
	// The victim's share is ~1/N of the keys; allow generous slack on the
	// share itself (balance is tested separately) but require that ONLY
	// its keys moved — the loop above already enforced that exactly.
	fair := len(keys) / replicas
	if remapped < fair/2 || remapped > fair*2 {
		t.Errorf("removal remapped %d keys, expected ≈%d (1/N of %d)", remapped, fair, len(keys))
	}

	r.Add(victim)
	for _, k := range keys {
		after, _ := r.Primary(k)
		if after != before[k] {
			t.Errorf("key %s: add-back assignment %s != original %s", k, after, before[k])
		}
	}
}

// TestRingFailoverOrderStable: Lookup's failover order is deterministic
// and starts at the primary with distinct members.
func TestRingFailoverOrderStable(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	for _, k := range synthKeys(50) {
		a := r.Lookup(k, 0)
		b := r.Lookup(k, 0)
		if len(a) != 3 {
			t.Fatalf("Lookup(%s) returned %d members, want 3", k, len(a))
		}
		seen := map[string]bool{}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Lookup(%s) unstable: %v vs %v", k, a, b)
			}
			if seen[a[i]] {
				t.Fatalf("Lookup(%s) repeated member %s", k, a[i])
			}
			seen[a[i]] = true
		}
		if p, _ := r.Primary(k); p != a[0] {
			t.Fatalf("Lookup(%s)[0] = %s != Primary %s", k, a[0], p)
		}
	}
}

// TestRingEmptyAndIdempotent covers the degenerate paths.
func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Primary("k"); ok {
		t.Error("empty ring returned an owner")
	}
	if got := r.Lookup("k", 2); got != nil {
		t.Errorf("empty ring Lookup = %v", got)
	}
	r.Add("a")
	r.Add("a")
	if n := r.Len(); n != 1 {
		t.Errorf("double Add: Len = %d", n)
	}
	r.Remove("missing")
	r.Remove("a")
	r.Remove("a")
	if n := r.Len(); n != 0 {
		t.Errorf("after removals: Len = %d", n)
	}
}
