package gpusim

import (
	"fmt"
	"strings"

	"crat/internal/ptx"
)

// FaultKind classifies structured simulator faults.
type FaultKind uint8

// Fault taxonomy (see DESIGN.md "Fault model & verification").
const (
	// FaultExec: an instruction failed to execute (unsupported op/type
	// combination, malformed operand) on an active lane.
	FaultExec FaultKind = iota
	// FaultMemOOB: a local or shared access fell outside the declared
	// per-thread local frame or per-block shared segment.
	FaultMemOOB
	// FaultNullGlobal: a global access hit the reserved null page,
	// indicating an uninitialized or corrupted pointer.
	FaultNullGlobal
	// FaultBarrierDeadlock: every live warp is blocked at a barrier with no
	// arrivals possible, detected by the idle watchdog instead of spinning
	// to the cycle cap.
	FaultBarrierDeadlock
	// FaultWatchdogStall: no scheduler issued an instruction for a full
	// stall window (Config.StallWindow) — the machine is wedged.
	FaultWatchdogStall
	// FaultLivelock: the simulation passed Config.MaxCycles without
	// retiring the grid (warps still issuing, no forward progress).
	FaultLivelock
	// FaultTimeout: the caller's wall-clock deadline (context.Context
	// deadline) expired before the grid retired. Unlike FaultLivelock this
	// says nothing about the kernel — the budget ran out.
	FaultTimeout
	// FaultCanceled: the caller canceled the run (SIGINT drain, an
	// abandoned sweep). The partial statistics are still returned.
	FaultCanceled
)

func (k FaultKind) String() string {
	switch k {
	case FaultExec:
		return "exec-fault"
	case FaultMemOOB:
		return "mem-out-of-bounds"
	case FaultNullGlobal:
		return "null-global-access"
	case FaultBarrierDeadlock:
		return "barrier-deadlock"
	case FaultWatchdogStall:
		return "watchdog-stall"
	case FaultLivelock:
		return "livelock"
	case FaultTimeout:
		return "deadline-timeout"
	case FaultCanceled:
		return "canceled"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// WarpState is a per-warp snapshot attached to watchdog faults so
// cycle-cap and deadlock failures are diagnosable.
type WarpState struct {
	Warp       int
	Block      int
	PC         int
	Done       bool
	AtBarrier  bool
	Stall      string // stall reason name at the time of the fault
	StackDepth int    // SIMT reconvergence stack depth
}

func (ws WarpState) String() string {
	if ws.Done {
		return fmt.Sprintf("warp %d (block %d): done", ws.Warp, ws.Block)
	}
	bar := ""
	if ws.AtBarrier {
		bar = " at-barrier"
	}
	return fmt.Sprintf("warp %d (block %d): pc=%d stall=%s%s depth=%d",
		ws.Warp, ws.Block, ws.PC, ws.Stall, bar, ws.StackDepth)
}

// Fault is a structured simulator error: every execution-path failure that
// previously panicked (or spun silently to the cycle cap) surfaces as one
// of these, carrying enough context to attribute the failure to a kernel,
// instruction, warp, and cycle.
type Fault struct {
	Kind   FaultKind
	Kernel string
	PC     int    // instruction index at the fault (-1 when not applicable)
	Disasm string // formatted instruction at PC
	Warp   int    // faulting warp id (-1 when machine-wide)
	Block  int    // faulting block id (-1 when machine-wide)
	Lane   int    // faulting lane (-1 when not lane-specific)
	Cycle  int64

	// Memory-fault details (FaultMemOOB / FaultNullGlobal).
	Space ptx.Space
	Addr  uint64
	Size  int
	Limit int64

	// Err is the underlying execution error for FaultExec.
	Err error

	// Warps holds per-warp snapshots for watchdog faults
	// (FaultBarrierDeadlock, FaultWatchdogStall, FaultLivelock).
	Warps []WarpState

	// Detail carries kind-specific context (e.g. the cycle budget).
	Detail string
}

// maxWarpLines bounds how many per-warp snapshot lines Error() renders.
const maxWarpLines = 8

func (f *Fault) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "gpusim: %s: kernel %q", f.Kind, f.Kernel)
	if f.PC >= 0 {
		fmt.Fprintf(&sb, ": pc=%d", f.PC)
		if f.Disasm != "" {
			fmt.Fprintf(&sb, " (%s)", f.Disasm)
		}
	}
	if f.Warp >= 0 {
		fmt.Fprintf(&sb, " warp=%d", f.Warp)
	}
	if f.Block >= 0 {
		fmt.Fprintf(&sb, " block=%d", f.Block)
	}
	if f.Lane >= 0 {
		fmt.Fprintf(&sb, " lane=%d", f.Lane)
	}
	fmt.Fprintf(&sb, " cycle=%d", f.Cycle)
	switch f.Kind {
	case FaultMemOOB:
		fmt.Fprintf(&sb, ": %s access addr=0x%x size=%d outside [0,%d)",
			f.Space, f.Addr, f.Size, f.Limit)
	case FaultNullGlobal:
		fmt.Fprintf(&sb, ": global access addr=0x%x inside the null page", f.Addr)
	case FaultExec, FaultTimeout, FaultCanceled:
		fmt.Fprintf(&sb, ": %v", f.Err)
	}
	if f.Detail != "" {
		fmt.Fprintf(&sb, ": %s", f.Detail)
	}
	if len(f.Warps) > 0 {
		fmt.Fprintf(&sb, "\n  warp states:")
		for i, ws := range f.Warps {
			if i == maxWarpLines {
				fmt.Fprintf(&sb, "\n    ... and %d more warps", len(f.Warps)-maxWarpLines)
				break
			}
			fmt.Fprintf(&sb, "\n    %s", ws)
		}
	}
	return sb.String()
}

// Unwrap exposes the underlying execution error (errors.Is/As support).
func (f *Fault) Unwrap() error { return f.Err }

// setFault records the first fault observed by the simulator (first-wins:
// later faults are consequences of executing past the first one) and fills
// the common context fields.
func (s *Simulator) setFault(f *Fault) {
	if s.fault != nil {
		return
	}
	f.Kernel = s.kernel.Name
	f.Cycle = s.now
	if f.PC >= 0 && f.PC < len(s.kernel.Insts) && f.Disasm == "" {
		f.Disasm = ptx.FormatInst(s.kernel, f.PC)
	}
	s.fault = f
}

// warpStates snapshots every resident warp for watchdog diagnostics.
func (s *Simulator) warpStates() []WarpState {
	states := make([]WarpState, 0, len(s.warps))
	for _, w := range s.warps {
		ws := WarpState{
			Warp:       w.id,
			Block:      w.block.id,
			Done:       w.done,
			AtBarrier:  w.barrier,
			StackDepth: len(w.stack),
		}
		if !w.done && len(w.stack) > 0 {
			ws.PC = w.stack[len(w.stack)-1].pc
		}
		if _, reason := s.canIssue(w); true {
			ws.Stall = reason.String()
		}
		states = append(states, ws)
	}
	return states
}

// barrierDeadlocked reports whether every live resident warp is blocked at
// a barrier. With correct barrier accounting the last arrival always
// releases the others, so this state means the synchronization protocol is
// broken (e.g. a transformation dropped or duplicated a bar.sync) and the
// simulation can never progress.
func (s *Simulator) barrierDeadlocked() bool {
	live := 0
	for _, w := range s.warps {
		if w.done {
			continue
		}
		if !w.barrier {
			return false
		}
		live++
	}
	return live > 0
}
