package gpusim

import (
	"errors"
	"strings"
	"testing"

	"crat/internal/ptx"
)

func trivialKernel() *ptx.Kernel {
	b := ptx.NewBuilder("t")
	b.Param("out", ptx.U64)
	b.Exit()
	return b.Kernel()
}

func TestNewSimulatorRejectsBadLaunches(t *testing.T) {
	mem := NewMemory()
	k := trivialKernel()
	cases := []struct {
		name   string
		launch Launch
		want   string
	}{
		{"param count", Launch{Kernel: k, Grid: 1, Block: 32, Params: nil}, "param"},
		{"zero grid", Launch{Kernel: k, Grid: 0, Block: 32, Params: []uint64{0}}, "grid"},
		{"zero block", Launch{Kernel: k, Grid: 1, Block: 0, Params: []uint64{0}}, "block"},
		{"oversized block", Launch{Kernel: k, Grid: 1, Block: 4096, Params: []uint64{0}}, "does not fit"},
		{"register overflow", Launch{Kernel: k, Grid: 1, Block: 512, Params: []uint64{0}, RegsPerThread: 500}, "does not fit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSimulator(FermiConfig(), mem, tc.launch)
			if err == nil {
				t.Fatal("launch accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestNewSimulatorRejectsInvalidKernel(t *testing.T) {
	b := ptx.NewBuilder("bad")
	b.Bra("NOWHERE")
	_, err := NewSimulator(FermiConfig(), NewMemory(), Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 32,
	})
	if err == nil {
		t.Fatal("invalid kernel accepted")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	// An infinite loop must trip the cycle guard instead of hanging.
	b := ptx.NewBuilder("spin")
	b.Param("out", ptx.U64)
	r := b.Reg(ptx.U32)
	b.Label("LOOP").Add(ptx.U32, r, ptx.R(r), ptx.Imm(1))
	b.Bra("LOOP")
	cfg := FermiConfig()
	cfg.MaxCycles = 10000
	sim, err := NewSimulator(cfg, NewMemory(), Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 32, Params: []uint64{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("livelock not detected")
	}
}

func TestOutOfBoundsLocalAccess(t *testing.T) {
	// A store past the per-thread local frame must fault with full
	// attribution (pc, warp, cycle, space, limit), not corrupt memory.
	b := ptx.NewBuilder("ooblocal")
	b.Param("out", ptx.U64)
	b.LocalArray("frame", 16)
	addr := b.Reg(ptx.U64)
	v := b.Reg(ptx.U32)
	b.Mov(ptx.U64, addr, ptx.Imm(1024)) // far past the 16-byte frame
	b.Mov(ptx.U32, v, ptx.Imm(7))
	b.St(ptx.SpaceLocal, ptx.U32, ptx.MemReg(addr, 0), ptx.R(v))
	b.Exit()
	k := b.Kernel()
	if err := ptx.Verify(k, "test"); err != nil {
		t.Fatalf("dynamically-OOB kernel must pass static verification: %v", err)
	}
	sim, err := NewSimulator(FermiConfig(), NewMemory(), Launch{
		Kernel: k, Grid: 1, Block: 32, Params: []uint64{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run()
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultMemOOB {
		t.Fatalf("got %v, want a mem-out-of-bounds fault", err)
	}
	if f.Space != ptx.SpaceLocal {
		t.Errorf("fault space = %s, want local", f.Space)
	}
	if f.Addr != 1024 || f.Size != 4 || f.Limit != 16 {
		t.Errorf("fault addr/size/limit = %#x/%d/%d, want 0x400/4/16", f.Addr, f.Size, f.Limit)
	}
	if f.PC < 0 || f.Warp < 0 || f.Cycle <= 0 {
		t.Errorf("fault attribution incomplete: pc=%d warp=%d cycle=%d", f.PC, f.Warp, f.Cycle)
	}
	if !strings.Contains(f.Error(), "st.local") {
		t.Errorf("fault %q does not disassemble the instruction", f.Error())
	}
}

func TestOutOfBoundsSharedAccess(t *testing.T) {
	// A shared store past the kernel's declared shared segment must fault —
	// including when the launch adds occupancy-ballast shared bytes, which
	// are never a legal access target.
	build := func() *ptx.Kernel {
		b := ptx.NewBuilder("oobshared")
		b.Param("out", ptx.U64)
		b.SharedArray("tile", 32)
		addr := b.Reg(ptx.U32) // shared addresses may be 32-bit offsets
		v := b.Reg(ptx.U32)
		b.Mov(ptx.U32, addr, ptx.Imm(1000))
		b.Mov(ptx.U32, v, ptx.Imm(7))
		b.St(ptx.SpaceShared, ptx.U32, ptx.MemReg(addr, 0), ptx.R(v))
		b.Exit()
		return b.Kernel()
	}
	for _, tc := range []struct {
		name    string
		ballast int64
	}{
		{"no ballast", 0},
		{"with occupancy ballast", 4096},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim, err := NewSimulator(FermiConfig(), NewMemory(), Launch{
				Kernel: build(), Grid: 1, Block: 32, Params: []uint64{0},
				ExtraSharedBytes: tc.ballast,
			})
			if err != nil {
				t.Fatal(err)
			}
			_, err = sim.Run()
			var f *Fault
			if !errors.As(err, &f) || f.Kind != FaultMemOOB {
				t.Fatalf("got %v, want a mem-out-of-bounds fault", err)
			}
			if f.Space != ptx.SpaceShared || f.Limit != 32 {
				t.Errorf("fault space/limit = %s/%d, want shared/32 (ballast must stay unaddressable)",
					f.Space, f.Limit)
			}
			if f.PC < 0 || f.Warp < 0 || f.Cycle <= 0 {
				t.Errorf("fault attribution incomplete: pc=%d warp=%d cycle=%d", f.PC, f.Warp, f.Cycle)
			}
		})
	}
}

func TestMemoryAllocAlignmentAndSeparation(t *testing.T) {
	m := NewMemory()
	a := m.Alloc(100)
	b := m.Alloc(100)
	if a%256 != 0 || b%256 != 0 {
		t.Errorf("allocations not 256-aligned: %x %x", a, b)
	}
	if b < a+100 {
		t.Errorf("allocations overlap: %x %x", a, b)
	}
	if a == 0 {
		t.Error("allocation at null")
	}
	// Writes to one must not clobber the other.
	m.WriteUint32(a, 1)
	m.WriteUint32(b, 2)
	if m.ReadUint32(a) != 1 || m.ReadUint32(b) != 2 {
		t.Error("allocations alias")
	}
}

func TestLdParamScalarWidths(t *testing.T) {
	// A u32 scalar parameter must read back exactly, independent of
	// neighbouring u64 params (alignment).
	b := ptx.NewBuilder("params")
	b.Param("out", ptx.U64).Param("n", ptx.U32).Param("m", ptx.U64)
	po := b.Reg(ptx.U64)
	n := b.Reg(ptx.U32)
	mv := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, po, "out")
	b.LdParam(ptx.U32, n, "n")
	b.LdParam(ptx.U64, mv, "m")
	sum := b.Reg(ptx.U64)
	wide := b.Reg(ptx.U64)
	b.Cvt(ptx.U64, ptx.U32, wide, ptx.R(n))
	b.Add(ptx.U64, sum, ptx.R(wide), ptx.R(mv))
	b.St(ptx.SpaceGlobal, ptx.U64, ptx.MemReg(po, 0), ptx.R(sum))
	b.Exit()

	mem := NewMemory()
	out := mem.Alloc(8)
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 32,
		Params: []uint64{out, 0xabcd1234, 0x1_0000_0000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	want := uint64(0xabcd1234) + 0x1_0000_0000
	if got := mem.ReadUint64(out); got != want {
		t.Errorf("param sum = %x, want %x", got, want)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Cycles: 100, WarpInsts: 50, L1Accesses: 10, L1Hits: 5, ConcurrentBlocks: 3}
	str := s.String()
	for _, want := range []string{"cycles=100", "ipc=0.500", "l1hit=0.500", "tlp=3"} {
		if !strings.Contains(str, want) {
			t.Errorf("Stats.String() = %q, missing %q", str, want)
		}
	}
}

func TestOccupancyEdgeCases(t *testing.T) {
	c := FermiConfig()
	if got := c.Occupancy(0, 0, 128); got != 8 {
		t.Errorf("zero regs should not limit: %d", got)
	}
	if got := c.Occupancy(20, 64*1024, 128); got != 0 {
		t.Errorf("over per-block shared cap should not fit: %d", got)
	}
	if got := c.Occupancy(20, 0, 0); got != 0 {
		t.Errorf("zero block size: %d", got)
	}
	if got := c.Occupancy(20, 48*1024, 128); got != 1 {
		t.Errorf("exactly one block by shared: %d", got)
	}
}

func TestEnergyComponents(t *testing.T) {
	m := DefaultEnergyModel()
	cfg := FermiConfig()
	base := Stats{Cycles: 1000}
	e0 := m.Energy(cfg, base)
	withInsts := base
	withInsts.ThreadInsts = 1_000_000
	withDram := base
	withDram.DRAMBytes = 1 << 20
	if m.Energy(cfg, withInsts) <= e0 {
		t.Error("thread instructions add no energy")
	}
	if m.Energy(cfg, withDram) <= e0 {
		t.Error("DRAM traffic adds no energy")
	}
	// DRAM per byte must dominate ALU per op (ordering sanity).
	if m.DRAMPerByte <= m.ALUPerThreadOp {
		t.Error("energy ordering violated: DRAM should dominate ALU")
	}
}

func TestIssueTrace(t *testing.T) {
	var buf strings.Builder
	mem := NewMemory()
	out := mem.Alloc(4 * 32)
	b := ptx.NewBuilder("traced")
	b.Param("out", ptx.U64)
	po := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, po, "out")
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	oa := b.AddrOf(po, tid, 4)
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(oa, 0), ptx.R(tid))
	b.Exit()
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 32,
		Params: []uint64{out}, Trace: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	trace := buf.String()
	for _, want := range []string{"mov.u32", "st.global.u32", "exit", "w000 b000"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
	lines := strings.Count(trace, "\n")
	if lines != 7 { // ld.param, mov, cvt, mul, add, st, exit
		t.Errorf("trace has %d lines, want 7", lines)
	}
}

func TestSchedulerPolicyFunctionalEquivalence(t *testing.T) {
	// GTO and LRR order issue differently but must compute identical
	// results (no data races in the programming model we support).
	run := func(pol SchedPolicy) []uint32 {
		cfg := FermiConfig()
		cfg.Scheduler = pol
		mem := NewMemory()
		data := mem.Alloc(4 * 2048 * 4)
		out := mem.Alloc(4 * 64 * 4)
		for i := 0; i < 2048*4; i++ {
			mem.WriteFloat32(data+uint64(4*i), float32(i%11))
		}
		sim, err := NewSimulator(cfg, mem, Launch{
			Kernel: tiledKernel(2048, 3, 64), Grid: 4, Block: 64,
			Params: []uint64{data, out},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		res := make([]uint32, 64*4)
		for i := range res {
			res[i] = mem.ReadUint32(out + uint64(4*i))
		}
		return res
	}
	gto := run(SchedGTO)
	lrr := run(SchedLRR)
	for i := range gto {
		if gto[i] != lrr[i] {
			t.Fatalf("results differ across schedulers at %d: %x vs %x", i, gto[i], lrr[i])
		}
	}
}
