package gpusim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"crat/internal/ptx"
)

// spinKernel is an infinite loop that keeps issuing forever: without a
// deadline or cancellation it would spin to MaxCycles.
func spinKernel() *ptx.Kernel {
	b := ptx.NewBuilder("spin")
	b.Param("out", ptx.U64)
	r := b.Reg(ptx.U32)
	b.Label("LOOP").Add(ptx.U32, r, ptx.R(r), ptx.Imm(1))
	b.Bra("LOOP")
	return b.Kernel()
}

// TestRunCtxCanceled: a canceled context must abort the cycle loop with a
// structured FaultCanceled carrying per-warp snapshots, within one
// cancel stride of the cancellation.
func TestRunCtxCanceled(t *testing.T) {
	sim, err := NewSimulator(FermiConfig(), NewMemory(), Launch{
		Kernel: spinKernel(), Grid: 1, Block: 32, Params: []uint64{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sim.RunCtx(ctx)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultCanceled {
		t.Fatalf("got %v, want a canceled fault", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("canceled fault does not unwrap to context.Canceled")
	}
	if sim.now >= cancelStride {
		t.Errorf("pre-canceled run still simulated %d cycles", sim.now)
	}
	if len(f.Warps) == 0 {
		t.Error("canceled fault carries no warp states")
	}
	if !strings.Contains(f.Error(), "canceled") {
		t.Errorf("fault message %q does not say canceled", f.Error())
	}
}

// TestRunCtxDeadline: an expired wall-clock deadline surfaces as
// FaultTimeout (not livelock, not Canceled) and stops the run long before
// MaxCycles.
func TestRunCtxDeadline(t *testing.T) {
	sim, err := NewSimulator(FermiConfig(), NewMemory(), Launch{
		Kernel: spinKernel(), Grid: 1, Block: 32, Params: []uint64{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sim.RunCtx(ctx)
	elapsed := time.Since(start)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultTimeout {
		t.Fatalf("got %v, want a deadline-timeout fault", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("timeout fault does not unwrap to context.DeadlineExceeded")
	}
	if elapsed > 5*time.Second {
		t.Errorf("1ms deadline honored only after %v", elapsed)
	}
	if len(f.Warps) == 0 {
		t.Error("timeout fault carries no warp states")
	}
}

// TestRunCtxBackgroundMatchesRun: threading a background context must not
// change the simulation — same cycles, same stats — compared to Run.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	b := ptx.NewBuilder("addsome")
	b.Param("out", ptx.U64)
	r := b.Reg(ptx.U32)
	for i := 0; i < 8; i++ {
		b.Add(ptx.U32, r, ptx.R(r), ptx.Imm(1))
	}
	b.Exit()
	k := b.Kernel()

	run := func(ctx context.Context) Stats {
		sim, err := NewSimulator(FermiConfig(), NewMemory(), Launch{
			Kernel: k, Grid: 4, Block: 64, Params: []uint64{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		if ctx == nil {
			st, err = sim.Run()
		} else {
			st, err = sim.RunCtx(ctx)
		}
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	plain := run(nil)
	ctxed := run(context.Background())
	if plain != ctxed {
		t.Errorf("stats diverge: Run=%+v RunCtx=%+v", plain, ctxed)
	}
}
