package gpusim

// Energy model in the spirit of GPUWattch (Leng et al., ISCA'13): a static
// power term integrated over runtime plus per-event dynamic energies. The
// absolute coefficients are representative per-event energies for a
// Fermi-class 40nm part; the CRAT experiments only use energy *ratios*
// (paper §7.2 reports a 16.5% saving vs OptTLP), which depend on the
// ordering DRAM >> L2 >> L1/shared >> ALU and on runtime, both of which the
// model captures.
type EnergyModel struct {
	StaticWattsPerSM float64
	ALUPerThreadOp   float64 // joules
	SFUPerThreadOp   float64
	RFPerThreadOp    float64 // register file access per thread-op
	SharedPerAccess  float64
	L1PerAccess      float64
	L2PerAccess      float64
	DRAMPerByte      float64
}

// DefaultEnergyModel returns the coefficients used by the experiments.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		StaticWattsPerSM: 2.6,
		ALUPerThreadOp:   8e-12,
		SFUPerThreadOp:   25e-12,
		RFPerThreadOp:    4e-12,
		SharedPerAccess:  30e-12,
		L1PerAccess:      40e-12,
		L2PerAccess:      150e-12,
		DRAMPerByte:      120e-12,
	}
}

// Energy estimates the energy in joules of one simulated run.
func (m EnergyModel) Energy(cfg Config, s Stats) float64 {
	seconds := float64(s.Cycles) / (float64(cfg.ClockMHz) * 1e6)
	e := m.StaticWattsPerSM * seconds
	e += float64(s.ThreadInsts) * (m.ALUPerThreadOp + m.RFPerThreadOp)
	e += float64(s.SharedLoads+s.SharedStores) * m.SharedPerAccess
	e += float64(s.L1Accesses) * m.L1PerAccess
	e += float64(s.L2Accesses) * m.L2PerAccess
	e += float64(s.DRAMBytes) * m.DRAMPerByte
	return e
}
