package gpusim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"crat/internal/ptx"
)

func TestAluIntSemantics(t *testing.T) {
	f := func(a, b uint32) bool {
		checks := []struct {
			op   ptx.Opcode
			want uint32
		}{
			{ptx.OpAdd, a + b},
			{ptx.OpSub, a - b},
			{ptx.OpMul, a * b},
			{ptx.OpAnd, a & b},
			{ptx.OpOr, a | b},
			{ptx.OpXor, a ^ b},
		}
		for _, c := range checks {
			got, err := alu(c.op, ptx.U32, uint64(a), uint64(b), 0)
			if err != nil || uint32(got) != c.want {
				return false
			}
		}
		// mad: a*b+c with c = a.
		got, err := alu(ptx.OpMad, ptx.U32, uint64(a), uint64(b), uint64(a))
		return err == nil && uint32(got) == a*b+a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAluSignedSemantics(t *testing.T) {
	f := func(a, b int32) bool {
		ua, ub := uint64(uint32(a)), uint64(uint32(b))
		if b != 0 {
			got, err := alu(ptx.OpDiv, ptx.S32, ua, ub, 0)
			if err != nil || int32(got) != a/b {
				// Go traps INT_MIN/-1; hardware wraps. Skip that case.
				if !(a == math.MinInt32 && b == -1) {
					return false
				}
			}
			got, err = alu(ptx.OpRem, ptx.S32, ua, ub, 0)
			if err != nil || int32(got) != a%b {
				if !(a == math.MinInt32 && b == -1) {
					return false
				}
			}
		}
		gotMin, _ := alu(ptx.OpMin, ptx.S32, ua, ub, 0)
		gotMax, _ := alu(ptx.OpMax, ptx.S32, ua, ub, 0)
		wantMin, wantMax := a, b
		if b < a {
			wantMin, wantMax = b, a
		}
		if int32(gotMin) != wantMin || int32(gotMax) != wantMax {
			return false
		}
		gotAbs, _ := alu(ptx.OpAbs, ptx.S32, ua, 0, 0)
		wantAbs := a
		if a < 0 {
			wantAbs = -a
		}
		gotNeg, _ := alu(ptx.OpNeg, ptx.S32, ua, 0, 0)
		return int32(gotAbs) == wantAbs && int32(gotNeg) == -a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAluDivByZero(t *testing.T) {
	got, err := alu(ptx.OpDiv, ptx.U32, 42, 0, 0)
	if err != nil || uint32(got) != ^uint32(0) {
		t.Errorf("u32 div-by-zero = %x, %v; want all-ones", got, err)
	}
	got, err = alu(ptx.OpRem, ptx.S32, 42, 0, 0)
	if err != nil || uint32(got) != ^uint32(0) {
		t.Errorf("s32 rem-by-zero = %x, %v; want all-ones", got, err)
	}
}

func TestAluShifts(t *testing.T) {
	got, _ := alu(ptx.OpShl, ptx.U32, 1, 31, 0)
	if uint32(got) != 1<<31 {
		t.Errorf("shl = %x", got)
	}
	got, _ = alu(ptx.OpShr, ptx.U32, 0x80000000, 31, 0)
	if uint32(got) != 1 {
		t.Errorf("u32 shr = %x", got)
	}
	got, _ = alu(ptx.OpShr, ptx.S32, 0x80000000, 31, 0)
	if int32(got) != -1 {
		t.Errorf("s32 shr (arithmetic) = %x", got)
	}
}

func TestAluFloatSemantics(t *testing.T) {
	f := func(a, b float32) bool {
		ua, ub := f32bits(a), f32bits(b)
		checks := []struct {
			op   ptx.Opcode
			want float32
		}{
			{ptx.OpAdd, a + b},
			{ptx.OpSub, a - b},
			{ptx.OpMul, a * b},
			{ptx.OpDiv, a / b},
		}
		for _, c := range checks {
			got, err := alu(c.op, ptx.F32, ua, ub, 0)
			if err != nil {
				return false
			}
			g := bitsF32(got)
			if g != c.want && !(math.IsNaN(float64(g)) && math.IsNaN(float64(c.want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAluFloat64Semantics(t *testing.T) {
	f := func(a, b float64) bool {
		got, err := alu(ptx.OpMad, ptx.F64, f64bits(a), f64bits(b), f64bits(1.5))
		if err != nil {
			return false
		}
		want := a*b + 1.5
		g := bitsF64(got)
		return g == want || (math.IsNaN(g) && math.IsNaN(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSFUSemantics(t *testing.T) {
	cases := []struct {
		op   ptx.Opcode
		in   float32
		want float32
	}{
		{ptx.OpSqrt, 16, 4},
		{ptx.OpRcp, 4, 0.25},
		{ptx.OpRsqrt, 4, 0.5},
		{ptx.OpEx2, 3, 8},
		{ptx.OpLg2, 8, 3},
	}
	for _, c := range cases {
		got, err := alu(c.op, ptx.F32, f32bits(c.in), 0, 0)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if g := bitsF32(got); math.Abs(float64(g-c.want)) > 1e-6 {
			t.Errorf("%v(%v) = %v, want %v", c.op, c.in, g, c.want)
		}
	}
}

func TestCompareSemantics(t *testing.T) {
	f := func(a, b int32) bool {
		ua, ub := uint64(uint32(a)), uint64(uint32(b))
		for _, c := range []struct {
			cmp  ptx.CmpOp
			want bool
		}{
			{ptx.CmpEq, a == b}, {ptx.CmpNe, a != b},
			{ptx.CmpLt, a < b}, {ptx.CmpLe, a <= b},
			{ptx.CmpGt, a > b}, {ptx.CmpGe, a >= b},
		} {
			got, err := compare(c.cmp, ptx.S32, ua, ub)
			if err != nil || got != c.want {
				return false
			}
		}
		// Unsigned comparison differs for mixed signs.
		got, err := compare(ptx.CmpLt, ptx.U32, ua, ub)
		return err == nil && got == (uint32(a) < uint32(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareFloat(t *testing.T) {
	nan := f32bits(float32(math.NaN()))
	one := f32bits(1)
	// NaN is unordered: all ordered comparisons false, Ne true.
	for _, cmp := range []ptx.CmpOp{ptx.CmpEq, ptx.CmpLt, ptx.CmpLe, ptx.CmpGt, ptx.CmpGe} {
		got, err := compare(cmp, ptx.F32, nan, one)
		if err != nil || got {
			t.Errorf("%v(NaN,1) = %v, want false", cmp, got)
		}
	}
	if got, _ := compare(ptx.CmpNe, ptx.F32, nan, one); !got {
		t.Error("Ne(NaN,1) should be true")
	}
}

func TestConvertSemantics(t *testing.T) {
	f := func(v int32) bool {
		// s32 -> f32 -> s32 round trip (exact for 24-bit values).
		small := v % (1 << 23)
		fbits, err := convert(ptx.F32, ptx.S32, uint64(uint32(small)))
		if err != nil {
			return false
		}
		back, err := convert(ptx.S32, ptx.F32, fbits)
		if err != nil {
			return false
		}
		if int32(back) != small {
			return false
		}
		// Widening: s32 -> s64 sign extends.
		wide, err := convert(ptx.S64, ptx.S32, uint64(uint32(v)))
		if err != nil || int64(wide) != int64(v) {
			return false
		}
		// Zero extension: u32 -> u64.
		uw, err := convert(ptx.U64, ptx.U32, uint64(uint32(v)))
		return err == nil && uw == uint64(uint32(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvertFloatWidths(t *testing.T) {
	b, err := convert(ptx.F64, ptx.F32, f32bits(1.5))
	if err != nil || bitsF64(b) != 1.5 {
		t.Errorf("f32->f64: %v %v", bitsF64(b), err)
	}
	b, err = convert(ptx.F32, ptx.F64, f64bits(2.25))
	if err != nil || bitsF32(b) != 2.25 {
		t.Errorf("f64->f32: %v %v", bitsF32(b), err)
	}
	// Negative float to unsigned clamps at zero.
	b, err = convert(ptx.U32, ptx.F32, f32bits(-5))
	if err != nil || b != 0 {
		t.Errorf("negative f32->u32 = %d, want 0", b)
	}
}

func TestTruncateAndSignExtend(t *testing.T) {
	if truncate(0x1ff, ptx.U8) != 0xff {
		t.Error("truncate u8")
	}
	if truncate(0x12345, ptx.U16) != 0x2345 {
		t.Error("truncate u16")
	}
	if signExtend(0xff, ptx.S8) != -1 {
		t.Error("sign extend s8")
	}
	if signExtend(0x8000, ptx.S16) != -32768 {
		t.Error("sign extend s16")
	}
	if signExtend(0x7fff, ptx.S16) != 32767 {
		t.Error("sign extend s16 positive")
	}
}

func TestImmBits(t *testing.T) {
	if immBits(ptx.Imm(-1), ptx.U32) != 0xffffffff {
		t.Error("negative imm at u32")
	}
	if bitsF32(immBits(ptx.FImm(1.5), ptx.F32)) != 1.5 {
		t.Error("f32 imm")
	}
	if bitsF64(immBits(ptx.FImm(1.5), ptx.F64)) != 1.5 {
		t.Error("f64 imm")
	}
	// Integer immediates feeding float ops convert to float.
	if bitsF32(immBits(ptx.Imm(3), ptx.F32)) != 3.0 {
		t.Error("int imm at f32")
	}
}

func TestSelpAndGuardedExecution(t *testing.T) {
	// selp picks per-thread; a guarded store writes only where the guard
	// holds.
	b := ptx.NewBuilder("selp")
	b.Param("out", ptx.U64)
	po := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, po, "out")
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	p := b.Reg(ptx.Pred)
	b.Setp(ptx.CmpLt, ptx.U32, p, ptx.R(tid), ptx.Imm(8))
	v := b.Reg(ptx.U32)
	b.Selp(ptx.U32, v, ptx.Imm(100), ptx.Imm(200), p)
	oA := b.AddrOf(po, tid, 4)
	q := b.Reg(ptx.Pred)
	b.Setp(ptx.CmpLt, ptx.U32, q, ptx.R(tid), ptx.Imm(16))
	b.If(q, false).St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(oA, 0), ptx.R(v))
	b.Exit()

	mem := NewMemory()
	out := mem.Alloc(4 * 32)
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 32, Params: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		got := mem.ReadUint32(out + uint64(4*i))
		var want uint32
		switch {
		case i < 8:
			want = 100
		case i < 16:
			want = 200
		default:
			want = 0 // guarded store skipped
		}
		if got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestF64Kernel(t *testing.T) {
	// End-to-end f64 arithmetic: out[i] = sqrt(x[i]) * 2.5.
	b := ptx.NewBuilder("dbl")
	b.Param("x", ptx.U64).Param("out", ptx.U64)
	px, po := b.Reg(ptx.U64), b.Reg(ptx.U64)
	b.LdParam(ptx.U64, px, "x").LdParam(ptx.U64, po, "out")
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	xa := b.AddrOf(px, tid, 8)
	oa := b.AddrOf(po, tid, 8)
	v := b.Reg(ptx.F64)
	b.Ld(ptx.SpaceGlobal, ptx.F64, v, ptx.MemReg(xa, 0))
	b.Sfu(ptx.OpSqrt, ptx.F64, v, ptx.R(v))
	b.Mul(ptx.F64, v, ptx.R(v), ptx.FImm(2.5))
	b.St(ptx.SpaceGlobal, ptx.F64, ptx.MemReg(oa, 0), ptx.R(v))
	b.Exit()

	mem := NewMemory()
	x := mem.Alloc(8 * 32)
	out := mem.Alloc(8 * 32)
	for i := 0; i < 32; i++ {
		mem.WriteFloat64(x+uint64(8*i), float64(i*i))
	}
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 32, Params: []uint64{x, out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := float64(i) * 2.5
		if got := mem.ReadFloat64(out + uint64(8*i)); math.Abs(got-want) > 1e-9 {
			t.Errorf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestBypassLoadSkipsL1(t *testing.T) {
	// Two identical streaming kernels, one with ld.global.cg: the bypassed
	// variant must leave no footprint in L1 and still compute correctly.
	build := func(bypass bool) *ptx.Kernel {
		b := ptx.NewBuilder("stream")
		b.Param("data", ptx.U64).Param("out", ptx.U64)
		pd, po := b.Reg(ptx.U64), b.Reg(ptx.U64)
		b.LdParam(ptx.U64, pd, "data").LdParam(ptx.U64, po, "out")
		tid := b.Reg(ptx.U32)
		b.MovSpec(tid, ptx.SpecTidX)
		da := b.AddrOf(pd, tid, 4)
		oa := b.AddrOf(po, tid, 4)
		v := b.Reg(ptx.U32)
		b.Emit(ptx.Inst{Op: ptx.OpLd, Space: ptx.SpaceGlobal, Type: ptx.U32,
			Dst: ptx.R(v), Srcs: []ptx.Operand{ptx.MemReg(da, 0)},
			Guard: ptx.NoReg, Bypass: bypass})
		b.Add(ptx.U32, v, ptx.R(v), ptx.Imm(7))
		b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(oa, 0), ptx.R(v))
		b.Exit()
		return b.Kernel()
	}
	run := func(bypass bool) (Stats, uint32) {
		mem := NewMemory()
		data := mem.Alloc(4 * 64)
		out := mem.Alloc(4 * 64)
		for i := 0; i < 64; i++ {
			mem.WriteUint32(data+uint64(4*i), uint32(i*3))
		}
		sim, err := NewSimulator(FermiConfig(), mem, Launch{
			Kernel: build(bypass), Grid: 1, Block: 64, Params: []uint64{data, out},
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st, mem.ReadUint32(out + 4*5)
	}
	normal, v1 := run(false)
	bypassed, v2 := run(true)
	if v1 != 22 || v2 != 22 {
		t.Fatalf("wrong results: %d %d, want 22", v1, v2)
	}
	if bypassed.L1Accesses >= normal.L1Accesses {
		t.Errorf("bypass did not reduce L1 accesses: %d vs %d", bypassed.L1Accesses, normal.L1Accesses)
	}
	if bypassed.BypassLoads == 0 {
		t.Error("no bypass loads recorded")
	}
	// The .cg suffix must round-trip through the text form.
	src := ptx.Print(build(true))
	if !strings.Contains(src, "ld.global.cg.u32") {
		t.Errorf("printer missing .cg:\n%s", src)
	}
	k2, err := ptx.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range k2.Insts {
		if k2.Insts[i].Bypass {
			found = true
		}
	}
	if !found {
		t.Error("parser dropped the .cg bypass flag")
	}
}
