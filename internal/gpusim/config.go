// Package gpusim is a cycle-level simulator for a single GPU streaming
// multiprocessor (SM) executing PTX kernels, in the spirit of GPGPU-Sim
// (Bakhoda et al., ISPASS'09), which the CRAT paper uses as its evaluation
// substrate.
//
// The simulator models: warp-granular in-order issue from two GTO (or
// round-robin) schedulers, a per-warp scoreboard with instruction
// latencies, SIMT divergence via immediate-post-dominator reconvergence
// stacks, a coalescing L1 data cache with a finite MSHR file, an L2 slice,
// a bandwidth-limited DRAM channel, shared memory with a bank-conflict
// model, and an occupancy calculator.
//
// All CRAT-relevant effects (paper Figures 1-6) are per-SM: TLP is defined
// as thread blocks per SM, cache contention lives in the per-SM L1, and
// register pressure is against the per-SM register file — so a single SM
// with a bandwidth-partitioned memory system reproduces the tradeoffs at a
// fraction of full-chip simulation cost (see DESIGN.md).
package gpusim

// SchedPolicy selects the warp scheduling policy.
type SchedPolicy uint8

// Warp scheduling policies. GTO (greedy-then-oldest) is the paper's
// baseline (Table 2) and is load-bearing for the static OptTLP estimator;
// LRR (loose round-robin) exists for the scheduler ablation.
const (
	SchedGTO SchedPolicy = iota
	SchedLRR
)

// String names the policy.
func (s SchedPolicy) String() string {
	if s == SchedLRR {
		return "lrr"
	}
	return "gto"
}

// CacheConfig describes a set-associative cache.
type CacheConfig struct {
	SizeBytes int
	Assoc     int
	LineBytes int
	MSHRs     int // maximum outstanding missed lines (0 = unlimited)
}

// Sets returns the number of cache sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Assoc * c.LineBytes) }

// Config describes the simulated SM and memory system. The default values
// (FermiConfig) mirror paper Table 2.
type Config struct {
	Name string

	// SM resources (per SM).
	NumSMs          int // whole-GPU SM count; used only to partition L2/DRAM
	RegFileRegs     int // 32-bit registers per SM (128KB -> 32768)
	MaxRegPerThread int // ISA limit on registers per thread (63 on Fermi)
	SharedMemBytes  int // shared memory per SM
	MaxThreadsPerSM int
	MaxBlocksPerSM  int
	WarpSize        int
	NumSchedulers   int
	Scheduler       SchedPolicy

	// Latencies in core cycles.
	ALULat    int // simple int/fp pipeline
	SFULat    int // special function unit (rcp/sqrt/sin/...)
	SharedLat int // shared-memory access
	L1HitLat  int
	L2Lat     int // additional latency for an L1 miss hitting in L2
	DRAMLat   int // additional latency for an L2 miss

	// Memory system.
	L1 CacheConfig
	L2 CacheConfig // this SM's slice of the shared L2
	// DRAMBytesPerCycle is this SM's share of DRAM bandwidth.
	DRAMBytesPerCycle float64
	// MaxSharedPerBlock caps a single block's shared-memory use.
	MaxSharedPerBlock int

	// Clock, used only to convert cycles to wall time for energy.
	ClockMHz int

	// MaxCycles aborts runaway simulations. Zero means 200M.
	MaxCycles int64
	// StallWindow is the idle watchdog: if no scheduler issues an
	// instruction for this many consecutive cycles, the simulation aborts
	// with a FaultWatchdogStall instead of spinning to MaxCycles. Zero
	// means 1M cycles — far beyond any legitimate memory-system stall
	// (bounded by DRAM latency and queueing) but early enough to make a
	// wedged machine cheap to diagnose.
	StallWindow int64
}

// FermiConfig returns the Fermi-like configuration of paper Table 2:
// 15 SMs, 128KB register file, 48KB shared memory, 1536 threads and
// 8 blocks per SM, 2 GTO schedulers, 32KB 4-way L1 with 128B lines and
// 32 MSHRs, a 768KB 6-bank L2 (modeled as a per-SM slice).
func FermiConfig() Config {
	return Config{
		Name:            "fermi",
		NumSMs:          15,
		RegFileRegs:     32768, // 128KB
		MaxRegPerThread: 63,
		SharedMemBytes:  48 * 1024,
		MaxThreadsPerSM: 1536,
		MaxBlocksPerSM:  8,
		WarpSize:        32,
		NumSchedulers:   2,
		Scheduler:       SchedGTO,

		ALULat:    10,
		SFULat:    20,
		SharedLat: 26,
		L1HitLat:  34,
		L2Lat:     160,
		DRAMLat:   280,

		L1: CacheConfig{SizeBytes: 32 * 1024, Assoc: 4, LineBytes: 128, MSHRs: 32},
		// 768KB L2 across 15 SMs ~ 51KB/SM; rounded to a power-of-two
		// friendly 64KB 8-way slice.
		L2:                CacheConfig{SizeBytes: 64 * 1024, Assoc: 8, LineBytes: 128},
		DRAMBytesPerCycle: 12,
		MaxSharedPerBlock: 48 * 1024,
		ClockMHz:          700,
	}
}

// KeplerConfig returns the Kepler-like configuration of paper §7.3: the
// register file doubles to 256KB and the thread limit rises to 2048 per SM
// (block limit 16); the cache hierarchy matches the Fermi baseline.
func KeplerConfig() Config {
	c := FermiConfig()
	c.Name = "kepler"
	c.RegFileRegs = 65536 // 256KB
	c.MaxRegPerThread = 255
	c.MaxThreadsPerSM = 2048
	c.MaxBlocksPerSM = 16
	return c
}

func (c Config) maxCycles() int64 {
	if c.MaxCycles > 0 {
		return c.MaxCycles
	}
	return 200_000_000
}

func (c Config) stallWindow() int64 {
	if c.StallWindow > 0 {
		return c.StallWindow
	}
	return 1_000_000
}

// Occupancy returns the maximum number of thread blocks that can execute
// concurrently on one SM given the per-thread register usage, the
// per-block shared-memory usage, and the block size — the MaxTLP
// computation of paper §2.1 ("GPU kernel will launch as many thread blocks
// concurrently as possible until one or more dimension of resources are
// exhausted"). It returns 0 when a single block does not fit.
func (c Config) Occupancy(regsPerThread int, sharedPerBlock int64, blockSize int) int {
	if blockSize <= 0 || blockSize > c.MaxThreadsPerSM {
		return 0
	}
	if sharedPerBlock > int64(c.MaxSharedPerBlock) {
		return 0
	}
	n := c.MaxBlocksPerSM
	if byThreads := c.MaxThreadsPerSM / blockSize; byThreads < n {
		n = byThreads
	}
	if regsPerThread > 0 {
		regsPerBlock := regsPerThread * blockSize
		if regsPerBlock > c.RegFileRegs {
			return 0
		}
		if byRegs := c.RegFileRegs / regsPerBlock; byRegs < n {
			n = byRegs
		}
	}
	if sharedPerBlock > 0 {
		if byShm := int(int64(c.SharedMemBytes) / sharedPerBlock); byShm < n {
			n = byShm
		}
	}
	return n
}

// MinReg is the architecture-dependent lower bound of useful register
// per-thread values: NumRegister / MaxThreads (paper §4.1). Allocating
// fewer registers than this cannot raise the TLP any further.
func (c Config) MinReg() int {
	return c.RegFileRegs / c.MaxThreadsPerSM
}
