package gpusim

// cacheLine is one line of a set-associative cache.
type cacheLine struct {
	valid bool
	tag   uint64
	last  int64 // LRU timestamp
}

// fill is one completed MSHR entry drained by expire.
type fill struct {
	line uint64
	done int64
}

// cache is a set-associative LRU cache with an MSHR file for outstanding
// misses. It is a tag store only — data flows through the functional model.
type cache struct {
	cfg   CacheConfig
	sets  [][]cacheLine
	clock int64

	// inflight maps missed line addresses to their fill-completion cycle;
	// its size is bounded by cfg.MSHRs (when non-zero). nextDone is the
	// earliest completion cycle among them (undefined when empty): expire
	// runs every machine cycle and must be able to bail out without
	// iterating the map. expired is expire's reused scratch buffer.
	inflight map[uint64]int64
	nextDone int64
	expired  []fill

	accesses   int64
	hits       int64
	misses     int64
	mshrMerges int64

	// seen tracks every distinct line ever inserted: the footprint
	// measurement behind the static OptTLP estimator.
	seen map[uint64]struct{}
}

func newCache(cfg CacheConfig) *cache {
	c := &cache{cfg: cfg, inflight: make(map[uint64]int64), seen: make(map[uint64]struct{})}
	n := cfg.Sets()
	if n < 1 {
		n = 1
	}
	c.sets = make([][]cacheLine, n)
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, cfg.Assoc)
	}
	return c
}

// lineAddr maps a byte address to its line address.
func (c *cache) lineAddr(addr uint64) uint64 {
	return addr / uint64(c.cfg.LineBytes)
}

func (c *cache) setAndTag(line uint64) (int, uint64) {
	n := uint64(len(c.sets))
	return int(line % n), line / n
}

// probe reports whether line is present (without touching LRU state) and
// whether it is currently in flight.
func (c *cache) probe(line uint64) (hit, pending bool) {
	set, tag := c.setAndTag(line)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true, false
		}
	}
	_, p := c.inflight[line]
	return false, p
}

// freeMSHRs returns how many new outstanding misses the cache can accept.
func (c *cache) freeMSHRs() int {
	if c.cfg.MSHRs <= 0 {
		return 1 << 30
	}
	return c.cfg.MSHRs - len(c.inflight)
}

// expire releases MSHRs whose fills completed at or before now and inserts
// the lines. The nextDone fast path makes the common no-op call O(1).
// Completed fills are inserted in (completion cycle, line) order, not map
// order: two fills landing on the same cycle in the same set tie on the LRU
// timestamp, so the insertion order decides which one a later eviction
// keeps — left to map iteration it varies from run to run.
// nextFill returns the cycle of the earliest pending fill completion, or 0
// when nothing is in flight. The clock fast-forward uses it as a ceiling so
// expire still observes every fill at its exact completion cycle.
func (c *cache) nextFill() int64 {
	if len(c.inflight) == 0 {
		return 0
	}
	return c.nextDone
}

func (c *cache) expire(now int64) {
	if len(c.inflight) == 0 || now < c.nextDone {
		return
	}
	next := int64(0)
	c.expired = c.expired[:0]
	for line, done := range c.inflight {
		if done <= now {
			c.expired = append(c.expired, fill{line: line, done: done})
			continue
		}
		if next == 0 || done < next {
			next = done
		}
	}
	// Insertion sort on the (done, line) total order: batches are tiny
	// (bounded by the MSHR count) and sort.Slice would allocate its
	// reflect-based swapper on every drain — the hot loop stays alloc-free.
	for i := 1; i < len(c.expired); i++ {
		f := c.expired[i]
		j := i - 1
		for j >= 0 && (c.expired[j].done > f.done ||
			(c.expired[j].done == f.done && c.expired[j].line > f.line)) {
			c.expired[j+1] = c.expired[j]
			j--
		}
		c.expired[j+1] = f
	}
	for _, f := range c.expired {
		c.insert(f.line, now)
		delete(c.inflight, f.line)
	}
	c.nextDone = next
}

// insert fills a line, evicting LRU.
func (c *cache) insert(line uint64, now int64) {
	c.seen[line] = struct{}{}
	set, tag := c.setAndTag(line)
	victim := 0
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if !l.valid {
			victim = i
			break
		}
		if l.last < c.sets[set][victim].last {
			victim = i
		}
	}
	c.sets[set][victim] = cacheLine{valid: true, tag: tag, last: now}
}

// access performs one access at cycle now. On a hit it refreshes LRU and
// returns (true, now). On a miss it allocates an MSHR (or merges with an
// in-flight fill) and returns (false, fillDone), where fillDone is supplied
// by the caller via fill for new misses. The caller must check freeMSHRs
// and probe before committing.
func (c *cache) access(line uint64, now int64, fillDone int64) (hit bool, ready int64) {
	c.accesses++
	set, tag := c.setAndTag(line)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.last = now
			c.hits++
			return true, now
		}
	}
	c.misses++
	if done, ok := c.inflight[line]; ok {
		c.mshrMerges++
		return false, done
	}
	if len(c.inflight) == 0 || fillDone < c.nextDone {
		c.nextDone = fillDone
	}
	c.inflight[line] = fillDone
	return false, fillDone
}

// evict invalidates a line if present (write-evict policy for global
// stores).
func (c *cache) evict(line uint64) {
	set, tag := c.setAndTag(line)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.valid = false
		}
	}
}

// hitRate returns the hit fraction (0 when no accesses).
func (c *cache) hitRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.accesses)
}
