package gpusim

import (
	"fmt"
	"math/bits"

	"crat/internal/ptx"
)

// execute issues the warp's next instruction: functional effects happen
// immediately (functional-first simulation), destination registers become
// ready after the modeled latency.
func (s *Simulator) execute(w *warp) {
	top := &w.stack[len(w.stack)-1]
	if top.pc >= len(s.kernel.Insts) {
		s.exitLanes(w, top.mask)
		return
	}
	pc := top.pc
	in := &s.kernel.Insts[pc]

	// Effective execution mask: active lanes whose guard holds.
	execMask := uint64(0)
	for l, th := range w.lanes {
		if top.mask&(1<<uint(l)) == 0 {
			continue
		}
		if in.Guard != ptx.NoReg {
			p := th.regs[in.Guard] != 0
			if p == in.GuardNeg {
				continue
			}
		}
		execMask |= 1 << uint(l)
	}

	s.stats.WarpInsts++
	s.stats.ThreadInsts += int64(bits.OnesCount64(execMask))
	s.countMeta(in, execMask)
	if s.launch.Trace != nil {
		fmt.Fprintf(s.launch.Trace, "%8d w%03d b%03d pc=%-4d mask=%08x %s\n",
			s.now, w.id, w.block.id, pc, execMask, ptx.FormatInst(s.kernel, pc))
	}

	switch in.Op {
	case ptx.OpBra:
		s.execBranch(w, pc, top.mask, execMask)
		return
	case ptx.OpExit, ptx.OpRet:
		s.exitLanes(w, top.mask)
		return
	case ptx.OpBar:
		top.pc++
		s.popReconverged(w)
		w.barrier = true
		w.block.arrived++
		s.releaseBarrier(w.block)
		return
	case ptx.OpNop:
		top.pc++
		s.popReconverged(w)
		return
	}

	latency := int64(s.cfg.ALULat)
	isMem := false
	switch {
	case in.Op.IsMemory() && in.Space != ptx.SpaceParam:
		latency, isMem = s.execMemory(w, pc, in, execMask)
	case in.Op.IsMemory(): // ld.param: constant-cache cost
		s.execFunctional(w, pc, in, execMask)
	case in.Op.IsSFU():
		latency = int64(s.cfg.SFULat)
		s.execFunctional(w, pc, in, execMask)
	default:
		s.execFunctional(w, pc, in, execMask)
	}

	// Scoreboard the destination.
	if in.Dst.Kind == ptx.OperandReg {
		r := in.Dst.Reg
		ready := s.now + latency
		if ready > w.regReady[r] {
			w.regReady[r] = ready
			w.readyIsMem[r] = isMem
		}
	}

	top.pc++
	s.popReconverged(w)
}

// countMeta updates dynamic spill-overhead statistics.
func (s *Simulator) countMeta(in *ptx.Inst, execMask uint64) {
	n := int64(bits.OnesCount64(execMask))
	switch in.Meta {
	case ptx.MetaSpillLoad, ptx.MetaSpillStore:
		if in.Space == ptx.SpaceShared {
			s.stats.SpillSharedOps += n
		} else {
			s.stats.SpillLocalOps += n
		}
	case ptx.MetaSpillAddr:
		s.stats.SpillAddrOps += n
	}
}

// execBranch implements SIMT divergence with immediate-post-dominator
// reconvergence.
func (s *Simulator) execBranch(w *warp, pc int, activeMask, takenMask uint64) {
	top := &w.stack[len(w.stack)-1]
	target := s.info.targets[pc]
	switch takenMask {
	case activeMask:
		top.pc = target
	case 0:
		top.pc = pc + 1
	default:
		rpc := s.info.reconv[pc]
		if rpc < 0 {
			rpc = len(s.kernel.Insts)
		}
		// Current entry waits at the reconvergence point; push the
		// fallthrough then the taken path (taken executes first).
		top.pc = rpc
		w.stack = append(w.stack,
			simtEntry{pc: pc + 1, rpc: rpc, mask: activeMask &^ takenMask},
			simtEntry{pc: target, rpc: rpc, mask: takenMask},
		)
	}
	s.popReconverged(w)
}

// popReconverged pops stack entries that reached their reconvergence point.
func (s *Simulator) popReconverged(w *warp) {
	for len(w.stack) > 1 {
		top := &w.stack[len(w.stack)-1]
		if top.pc == top.rpc || top.mask == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return
	}
}

// exitLanes terminates the given lanes across the whole SIMT stack.
func (s *Simulator) exitLanes(w *warp, mask uint64) {
	for i := range w.stack {
		w.stack[i].mask &^= mask
	}
	for len(w.stack) > 0 && w.stack[len(w.stack)-1].mask == 0 {
		w.stack = w.stack[:len(w.stack)-1]
	}
	if len(w.stack) == 0 {
		w.done = true
		w.block.liveWarps--
		s.releaseBarrier(w.block)
		if w.block.liveWarps == 0 {
			s.retireBlock(w.block)
		}
		return
	}
	s.popReconverged(w)
}

// releaseBarrier resumes a block's warps once every live warp arrived.
func (s *Simulator) releaseBarrier(bc *blockCtx) {
	if bc.liveWarps == 0 || bc.arrived < bc.liveWarps {
		return
	}
	for _, w := range bc.warps {
		w.barrier = false
	}
	bc.arrived = 0
}

// execFunctional evaluates a non-memory instruction on all executing lanes.
// A lane-level execution error becomes a structured FaultExec instead of
// killing the process; the remaining lanes are skipped since the warp's
// state is already suspect.
func (s *Simulator) execFunctional(w *warp, pc int, in *ptx.Inst, execMask uint64) {
	for l, th := range w.lanes {
		if execMask&(1<<uint(l)) == 0 {
			continue
		}
		if err := s.execLane(w, th, pc, in); err != nil {
			s.setFault(&Fault{
				Kind: FaultExec, PC: pc,
				Warp: w.id, Block: w.block.id, Lane: l,
				Err: err,
			})
			return
		}
	}
}

// srcVal evaluates source operand i of the instruction at pc for one thread.
// Register and immediate operands — the overwhelming majority — resolve
// without the operand switch: immediates were pre-encoded into kernelInfo at
// the type each call site requests.
func (s *Simulator) srcVal(w *warp, th *thread, pc int, in *ptx.Inst, i int) uint64 {
	o := &in.Srcs[i]
	switch o.Kind {
	case ptx.OperandReg:
		return th.regs[o.Reg]
	case ptx.OperandImm, ptx.OperandFImm:
		return s.info.imms[pc][i]
	}
	return s.operand(w, th, *o, in.Type)
}

// operand evaluates a source operand for one thread at the given type.
func (s *Simulator) operand(w *warp, th *thread, o ptx.Operand, t ptx.Type) uint64 {
	switch o.Kind {
	case ptx.OperandReg:
		return th.regs[o.Reg]
	case ptx.OperandImm, ptx.OperandFImm:
		return immBits(o, t)
	case ptx.OperandSpecial:
		return uint64(s.special(w, th, o.Spec))
	case ptx.OperandSym:
		// Address-of a shared/local array (space-relative).
		if a, ok := s.kernel.Array(o.Sym); ok {
			return s.symValue(o.Sym, a.Space)
		}
		return s.symValue(o.Sym, ptx.SpaceParam)
	}
	return 0
}

// special evaluates a special register for one thread.
func (s *Simulator) special(w *warp, th *thread, sp ptx.Special) int {
	switch sp {
	case ptx.SpecTidX:
		return th.tid
	case ptx.SpecNTidX:
		return s.launch.Block
	case ptx.SpecCtaIdX:
		return w.block.id
	case ptx.SpecNCtaIdX:
		return s.launch.Grid
	case ptx.SpecLaneId:
		return th.tid % s.cfg.WarpSize
	case ptx.SpecWarpId:
		return th.tid / s.cfg.WarpSize
	case ptx.SpecTidY, ptx.SpecTidZ, ptx.SpecCtaIdY, ptx.SpecCtaIdZ:
		return 0
	case ptx.SpecNTidY, ptx.SpecNTidZ, ptx.SpecNCtaIdY, ptx.SpecNCtaIdZ:
		return 1
	}
	return 0
}

// execLane evaluates one non-memory instruction for one thread.
func (s *Simulator) execLane(w *warp, th *thread, pc int, in *ptx.Inst) error {
	get := func(i int) uint64 {
		return s.srcVal(w, th, pc, in, i)
	}
	switch in.Op {
	case ptx.OpSetp:
		ok, err := compare(in.Cmp, in.Type, get(0), get(1))
		if err != nil {
			return err
		}
		v := uint64(0)
		if ok {
			v = 1
		}
		th.regs[in.Dst.Reg] = v
		return nil
	case ptx.OpSelp:
		p := th.regs[in.Srcs[2].Reg] != 0
		if p {
			th.regs[in.Dst.Reg] = get(0)
		} else {
			th.regs[in.Dst.Reg] = get(1)
		}
		return nil
	case ptx.OpCvt:
		// srcVal pre-encoded any immediate at CvtFrom; operand ignores the
		// type for register/special/symbol sources.
		v, err := convert(in.Type, in.CvtFrom, get(0))
		if err != nil {
			return err
		}
		th.regs[in.Dst.Reg] = v
		return nil
	case ptx.OpLd: // ld.param only reaches here
		addr := s.resolveAddr(th, in.Srcs[0], in.Space)
		v := uint64(0)
		for b := 0; b < in.Type.Bytes(); b++ {
			if int(addr)+b < len(s.paramBlock) {
				v |= uint64(s.paramBlock[int(addr)+b]) << (8 * b)
			}
		}
		th.regs[in.Dst.Reg] = v
		return nil
	}
	var a, b, c uint64
	if len(in.Srcs) > 0 {
		a = get(0)
	}
	if len(in.Srcs) > 1 {
		b = get(1)
	}
	if len(in.Srcs) > 2 {
		c = get(2)
	}
	v, err := alu(in.Op, in.Type, a, b, c)
	if err != nil {
		return err
	}
	th.regs[in.Dst.Reg] = v
	return nil
}

// nullPageBytes is the reserved low region of the global address space:
// accesses under it indicate an uninitialized or corrupted pointer
// (Memory.Alloc never hands out addresses this low).
const nullPageBytes = 4096

// memFault records an out-of-bounds (or null-page) access as a structured
// fault carrying the full location context.
func (s *Simulator) memFault(kind FaultKind, w *warp, pc, lane int, space ptx.Space, addr uint64, size int, limit int64) {
	s.setFault(&Fault{
		Kind: kind, PC: pc,
		Warp: w.id, Block: w.block.id, Lane: lane,
		Space: space, Addr: addr, Size: size, Limit: limit,
	})
}

// inBounds checks addr+size against a non-negative byte limit without
// overflow on addr+size.
func inBounds(addr uint64, size int, limit int64) bool {
	return uint64(size) <= uint64(limit) && addr <= uint64(limit)-uint64(size)
}

// execMemory performs a global/local/shared load or store: functional
// effects now, returning the latency until the destination is ready and
// whether it counts as a memory dependence. Accesses outside the declared
// local frame or shared segment (and global accesses inside the null page)
// raise a structured fault instead of silently growing the backing store.
func (s *Simulator) execMemory(w *warp, pc int, in *ptx.Inst, execMask uint64) (int64, bool) {
	plan := s.planFor(w, pc, in)
	w.hasPlan = false // consumed; loops must not reuse stale addresses

	// Functional access per lane.
	mem := in.Dst
	if in.Op == ptx.OpLd {
		mem = in.Srcs[0]
	}
	size := in.Type.Bytes()
	for l, th := range w.lanes {
		if execMask&(1<<uint(l)) == 0 {
			continue
		}
		addr := s.resolveAddr(th, mem, in.Space)
		switch in.Space {
		case ptx.SpaceGlobal:
			if addr < nullPageBytes {
				s.memFault(FaultNullGlobal, w, pc, l, in.Space, addr, size, nullPageBytes)
				return int64(s.cfg.ALULat), false
			}
			if in.Op == ptx.OpLd {
				th.regs[in.Dst.Reg] = s.mem.Read(addr, size)
				s.stats.GlobalLoads++
			} else {
				s.mem.Write(addr, s.srcVal(w, th, pc, in, 0), size)
				s.stats.GlobalStores++
			}
		case ptx.SpaceLocal:
			limit := int64(len(th.local))
			if !inBounds(addr, size, limit) {
				s.memFault(FaultMemOOB, w, pc, l, in.Space, addr, size, limit)
				return int64(s.cfg.ALULat), false
			}
			if in.Op == ptx.OpLd {
				th.regs[in.Dst.Reg] = readLE(th.local[addr:], size)
				s.stats.LocalLoads++
			} else {
				writeLE(th.local[addr:], s.srcVal(w, th, pc, in, 0), size)
				s.stats.LocalStores++
			}
		case ptx.SpaceShared:
			// The addressable segment is what the kernel declares; the
			// occupancy ballast (Launch.ExtraSharedBytes) reserves space
			// but is never a legal target.
			limit := s.kernel.SharedBytes()
			if !inBounds(addr, size, limit) {
				s.memFault(FaultMemOOB, w, pc, l, in.Space, addr, size, limit)
				return int64(s.cfg.ALULat), false
			}
			if in.Op == ptx.OpLd {
				th.regs[in.Dst.Reg] = readLE(w.block.shared[addr:], size)
				s.stats.SharedLoads++
			} else {
				writeLE(w.block.shared[addr:], s.srcVal(w, th, pc, in, 0), size)
				s.stats.SharedStores++
			}
		}
	}

	// Timing.
	switch in.Space {
	case ptx.SpaceShared:
		extra := int64(plan.conflicts - 1)
		s.stats.BankConflictCycles += extra
		s.memPipeFree = s.now + 1 + extra
		return int64(s.cfg.SharedLat) + 2*extra, false
	case ptx.SpaceGlobal:
		if in.Op == ptx.OpSt {
			// Write-through, no-allocate: consume bandwidth, evict from L1.
			for _, line := range plan.lines {
				s.l1.evict(line)
			}
			s.chargeDRAM(plan.bytes)
			s.memPipeFree = s.now + int64(len(plan.lines))
			return int64(s.cfg.ALULat), false
		}
		if in.Bypass {
			// ld.global.cg: skip the L1, fetch straight from L2/DRAM.
			worst := int64(s.cfg.L2Lat)
			for _, line := range plan.lines {
				done := s.fillFromL2(line)
				if d := done - s.now; d > worst {
					worst = d
				}
			}
			s.memPipeFree = s.now + int64(len(plan.lines))
			s.stats.BypassLoads += int64(len(plan.lines))
			return worst, true
		}
		return s.accessCached(plan), true
	case ptx.SpaceLocal:
		// Local loads and stores both allocate in L1 (write-back).
		lat := s.accessCached(plan)
		if in.Op == ptx.OpSt {
			return int64(s.cfg.ALULat), false
		}
		return lat, true
	}
	return int64(s.cfg.ALULat), false
}

// accessCached sends the plan's lines through L1 -> L2 -> DRAM and returns
// the cycles until the last fill (relative to now).
func (s *Simulator) accessCached(plan *memPlan) int64 {
	worst := int64(s.cfg.L1HitLat)
	for _, line := range plan.lines {
		s.stats.L1Accesses++
		hit, pending := s.l1.probe(line)
		if hit {
			s.l1.access(line, s.now, 0)
			s.stats.L1Hits++
			continue
		}
		s.stats.L1Misses++
		var ready int64
		if pending {
			// Merge with the in-flight fill: no new MSHR, no new traffic.
			_, ready = s.l1.access(line, s.now, 0)
		} else {
			fillDone := s.fillFromL2(line)
			_, ready = s.l1.access(line, s.now, fillDone)
		}
		if d := ready - s.now + int64(s.cfg.L1HitLat); d > worst {
			worst = d
		}
	}
	s.memPipeFree = s.now + int64(len(plan.lines))
	return worst
}

// fillFromL2 models an L1 miss: L2 lookup, then DRAM with bandwidth
// queueing. Returns the absolute completion cycle.
func (s *Simulator) fillFromL2(line uint64) int64 {
	s.stats.L2Accesses++
	if hit, _ := s.l2.probe(line); hit {
		s.l2.access(line, s.now, 0)
		s.stats.L2Hits++
		return s.now + int64(s.cfg.L2Lat)
	}
	// DRAM: latency plus serialized transfer of one line.
	transfer := int64(float64(s.cfg.L1.LineBytes) / s.cfg.DRAMBytesPerCycle)
	if transfer < 1 {
		transfer = 1
	}
	start := s.now + int64(s.cfg.L2Lat) + int64(s.cfg.DRAMLat)
	if s.dramFree > start {
		start = s.dramFree
	}
	done := start + transfer
	s.dramFree = done
	s.stats.DRAMBytes += int64(s.cfg.L1.LineBytes)
	s.l2.insert(line, s.now)
	return done
}

// chargeDRAM consumes write bandwidth.
func (s *Simulator) chargeDRAM(bytes int64) {
	transfer := int64(float64(bytes) / s.cfg.DRAMBytesPerCycle)
	if transfer < 1 {
		transfer = 1
	}
	if s.dramFree < s.now {
		s.dramFree = s.now
	}
	s.dramFree += transfer
	s.stats.DRAMBytes += bytes
}

func readLE(b []byte, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func writeLE(b []byte, v uint64, n int) {
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
