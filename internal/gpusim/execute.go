package gpusim

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/sem"
)

// tlbPageFor resolves addr's backing page through the simulator's one-entry
// TLB, falling back to the Memory's map on a key change.
func (s *Simulator) tlbPageFor(addr uint64) []byte {
	key := addr >> sem.PageBits
	if key != s.tlbKey || s.tlbPage == nil {
		s.tlbPage = s.mem.PageFor(addr)
		s.tlbKey = key
	}
	return s.tlbPage
}

// memRead is sem.Memory.Read with the page lookup cached; page-straddling
// accesses (possible with unaligned addresses) take the slow path. The
// common widths go through encoding/binary, which the compiler turns into a
// single little-endian load — bit-identical to the byte loop.
func (s *Simulator) memRead(addr uint64, size int) uint64 {
	off := addr & (sem.PageSize - 1)
	if off+uint64(size) > sem.PageSize {
		return s.mem.Read(addr, size)
	}
	p := s.tlbPageFor(addr)
	switch size {
	case 4:
		return uint64(binary.LittleEndian.Uint32(p[off:]))
	case 8:
		return binary.LittleEndian.Uint64(p[off:])
	case 2:
		return uint64(binary.LittleEndian.Uint16(p[off:]))
	case 1:
		return uint64(p[off])
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(p[off+uint64(i)]) << (8 * i)
	}
	return v
}

// memWrite is sem.Memory.Write with the page lookup cached.
func (s *Simulator) memWrite(addr uint64, v uint64, size int) {
	off := addr & (sem.PageSize - 1)
	if off+uint64(size) > sem.PageSize {
		s.mem.Write(addr, v, size)
		return
	}
	p := s.tlbPageFor(addr)
	switch size {
	case 4:
		binary.LittleEndian.PutUint32(p[off:], uint32(v))
		return
	case 8:
		binary.LittleEndian.PutUint64(p[off:], v)
		return
	case 2:
		binary.LittleEndian.PutUint16(p[off:], uint16(v))
		return
	case 1:
		p[off] = byte(v)
		return
	}
	for i := 0; i < size; i++ {
		p[off+uint64(i)] = byte(v >> (8 * i))
	}
}

// execute issues the warp's next instruction: functional effects happen
// immediately (functional-first simulation), destination registers become
// ready after the modeled latency. The instruction comes pre-decoded from
// the exec program — no per-issue operand or opcode switches — and applies
// to the whole warp as vector operations over 32-lane register planes.
func (s *Simulator) execute(w *warp) {
	w.sbValid = false // ready-times are about to change; drop the memo
	s.schedUntil[w.sched][w.schedIdx] = 0
	top := &w.stack[len(w.stack)-1]
	if top.pc >= len(s.prog.ops) {
		s.exitLanes(w, top.mask)
		return
	}
	pc := top.pc
	u := &s.prog.ops[pc]

	// Effective execution mask: active lanes whose guard holds.
	execMask := top.mask
	if u.guard != ptx.NoReg {
		g := w.plane(u.guard)
		gm := uint64(0)
		for m := execMask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			if (g[l] != 0) != u.guardNeg {
				gm |= 1 << uint(l)
			}
		}
		execMask = gm
	}

	s.stats.WarpInsts++
	s.stats.ThreadInsts += int64(bits.OnesCount64(execMask))
	if u.meta != ptx.MetaNone {
		s.countMeta(u, execMask)
	}
	if s.tracing {
		s.traceInst(w, pc, execMask)
	}

	switch u.class {
	case passes.MicroBra:
		s.execBranch(w, u, top.mask, execMask)
		return
	case passes.MicroExit:
		s.exitLanes(w, top.mask)
		return
	case passes.MicroBar:
		top.pc++
		s.popReconverged(w)
		w.barrier = true
		// Park until release: releaseBarrier clears this (possibly within
		// this very call, when w is the last arriver).
		s.cacheStall(w, stallBarrier, farFuture)
		w.block.arrived++
		s.releaseBarrier(w.block)
		return
	case passes.MicroNop:
		top.pc++
		s.popReconverged(w)
		return
	}

	latency := int64(s.cfg.ALULat)
	if u.sfu {
		latency = int64(s.cfg.SFULat)
	}
	isMem := false
	switch u.class {
	case passes.MicroMem:
		latency, isMem = s.execMemory(w, pc, u, execMask)
	case passes.MicroLdParam:
		s.execLdParam(w, u, execMask)
	case passes.MicroBad:
		if execMask != 0 {
			s.setFault(&Fault{
				Kind: FaultExec, PC: pc,
				Warp: w.id, Block: w.block.id, Lane: bits.TrailingZeros64(execMask),
				Err: u.err,
			})
		}
	default: // passes.MicroALU
		s.execVec(w, u, execMask)
	}

	// Scoreboard the destination (regReady packs ready<<1 | isMem).
	if u.dst != ptx.NoReg {
		ready := s.now + latency
		if ready > w.regReady[u.dst]>>1 {
			packed := ready << 1
			if isMem {
				packed |= 1
			}
			w.regReady[u.dst] = packed
		}
	}

	top.pc++
	s.popReconverged(w)
}

// traceInst emits one trace line for an issued instruction. Kept out of
// execute so the tracing-off hot path carries only the s.tracing check —
// no formatting, no argument marshaling, no allocation.
//
//go:noinline
func (s *Simulator) traceInst(w *warp, pc int, execMask uint64) {
	fmt.Fprintf(s.launch.Trace, "%8d w%03d b%03d pc=%-4d mask=%08x %s\n",
		s.now, w.id, w.block.id, pc, execMask, ptx.FormatInst(s.kernel, pc))
}

// srcPlane resolves one pre-decoded source slot to a 32-lane plane:
// registers and broadcast constants are already planes; special registers
// are materialized into the per-slot scratch plane under the mask.
func (s *Simulator) srcPlane(w *warp, sr *srcRef, slot int, mask uint64) *[32]uint64 {
	switch sr.kind {
	case srcReg:
		return w.plane(sr.reg)
	case srcSpec:
		p := &s.specScratch[slot]
		for m := mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			p[l] = uint64(s.specialVal(w, l, sr.spec))
		}
		return p
	}
	return sr.bcast
}

// execVec applies an ALU-class micro-op to the whole warp.
func (s *Simulator) execVec(w *warp, u *execOp, execMask uint64) {
	if execMask == 0 {
		return
	}
	d := w.plane(u.dst)
	a := s.srcPlane(w, &u.src[0], 0, execMask)
	b := s.srcPlane(w, &u.src[1], 1, execMask)
	c := s.srcPlane(w, &u.src[2], 2, execMask)
	u.fn(d, a, b, c, execMask)
}

// specialVal evaluates a special register for one lane.
func (s *Simulator) specialVal(w *warp, lane int, sp ptx.Special) int {
	tid := w.baseTid + lane
	switch sp {
	case ptx.SpecTidX:
		return tid
	case ptx.SpecNTidX:
		return s.launch.Block
	case ptx.SpecCtaIdX:
		return w.block.id
	case ptx.SpecNCtaIdX:
		return s.launch.Grid
	case ptx.SpecLaneId:
		return tid % s.cfg.WarpSize
	case ptx.SpecWarpId:
		return tid / s.cfg.WarpSize
	case ptx.SpecTidY, ptx.SpecTidZ, ptx.SpecCtaIdY, ptx.SpecCtaIdZ:
		return 0
	case ptx.SpecNTidY, ptx.SpecNTidZ, ptx.SpecNCtaIdY, ptx.SpecNCtaIdZ:
		return 1
	}
	return 0
}

// srcLane resolves a pre-decoded source slot for a single lane (the memory
// path needs at most one value per lane, not a whole plane).
func (s *Simulator) srcLane(w *warp, sr *srcRef, lane int) uint64 {
	switch sr.kind {
	case srcReg:
		return w.plane(sr.reg)[lane]
	case srcSpec:
		return uint64(s.specialVal(w, lane, sr.spec))
	}
	return sr.bcast[0]
}

// countMeta updates dynamic spill-overhead statistics.
func (s *Simulator) countMeta(u *execOp, execMask uint64) {
	n := int64(bits.OnesCount64(execMask))
	switch u.meta {
	case ptx.MetaSpillLoad, ptx.MetaSpillStore:
		if u.space == ptx.SpaceShared {
			s.stats.SpillSharedOps += n
		} else {
			s.stats.SpillLocalOps += n
		}
	case ptx.MetaSpillAddr:
		s.stats.SpillAddrOps += n
	}
}

// execBranch implements SIMT divergence with immediate-post-dominator
// reconvergence.
func (s *Simulator) execBranch(w *warp, u *execOp, activeMask, takenMask uint64) {
	top := &w.stack[len(w.stack)-1]
	target := u.target
	switch takenMask {
	case activeMask:
		top.pc = target
	case 0:
		top.pc++
	default:
		pc := top.pc
		rpc := u.rpc
		if rpc < 0 {
			rpc = len(s.prog.ops)
		}
		// Current entry waits at the reconvergence point; push the
		// fallthrough then the taken path (taken executes first).
		top.pc = rpc
		w.stack = append(w.stack,
			simtEntry{pc: pc + 1, rpc: rpc, mask: activeMask &^ takenMask},
			simtEntry{pc: target, rpc: rpc, mask: takenMask},
		)
	}
	s.popReconverged(w)
}

// popReconverged pops stack entries that reached their reconvergence point.
func (s *Simulator) popReconverged(w *warp) {
	for len(w.stack) > 1 {
		top := &w.stack[len(w.stack)-1]
		if top.pc == top.rpc || top.mask == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return
	}
}

// exitLanes terminates the given lanes across the whole SIMT stack.
func (s *Simulator) exitLanes(w *warp, mask uint64) {
	for i := range w.stack {
		w.stack[i].mask &^= mask
	}
	for len(w.stack) > 0 && w.stack[len(w.stack)-1].mask == 0 {
		w.stack = w.stack[:len(w.stack)-1]
	}
	if len(w.stack) == 0 {
		w.done = true
		s.cacheStall(w, stallEmpty, farFuture) // never scanned again until re-enrolled
		s.liveSched[w.sched]--
		w.block.liveWarps--
		s.releaseBarrier(w.block)
		if w.block.liveWarps == 0 {
			s.retireBlock(w.block)
		}
		return
	}
	s.popReconverged(w)
}

// releaseBarrier resumes a block's warps once every live warp arrived.
func (s *Simulator) releaseBarrier(bc *blockCtx) {
	if bc.liveWarps == 0 || bc.arrived < bc.liveWarps {
		return
	}
	for _, w := range bc.warps {
		w.barrier = false
		if !w.done {
			s.schedUntil[w.sched][w.schedIdx] = 0
		}
	}
	bc.arrived = 0
}

// execLdParam performs a constant-bank (param block) load per lane. Reads
// past the parameter block yield zero bytes, as the old per-lane path did.
func (s *Simulator) execLdParam(w *warp, u *execOp, execMask uint64) {
	if execMask == 0 {
		return
	}
	d := w.plane(u.dst)
	var base *[32]uint64
	if u.membase != ptx.NoReg {
		base = w.plane(u.membase)
	}
	size := int(u.size)
	for m := execMask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		addr := u.memoff
		if base != nil {
			addr += base[l]
		}
		v := uint64(0)
		for b := 0; b < size; b++ {
			if int(addr)+b < len(s.paramBlock) {
				v |= uint64(s.paramBlock[int(addr)+b]) << (8 * b)
			}
		}
		d[l] = v
	}
}

// nullPageBytes is the reserved low region of the global address space:
// accesses under it indicate an uninitialized or corrupted pointer
// (Memory.Alloc never hands out addresses this low).
const nullPageBytes = 4096

// memFault records an out-of-bounds (or null-page) access as a structured
// fault carrying the full location context.
func (s *Simulator) memFault(kind FaultKind, w *warp, pc, lane int, space ptx.Space, addr uint64, size int, limit int64) {
	s.setFault(&Fault{
		Kind: kind, PC: pc,
		Warp: w.id, Block: w.block.id, Lane: lane,
		Space: space, Addr: addr, Size: size, Limit: limit,
	})
}

// inBounds checks addr+size against a non-negative byte limit without
// overflow on addr+size.
func inBounds(addr uint64, size int, limit int64) bool {
	return uint64(size) <= uint64(limit) && addr <= uint64(limit)-uint64(size)
}

// execMemory performs a global/local/shared load or store: functional
// effects now, returning the latency until the destination is ready and
// whether it counts as a memory dependence. Accesses outside the declared
// local frame or shared segment (and global accesses inside the null page)
// raise a structured fault instead of silently growing the backing store.
func (s *Simulator) execMemory(w *warp, pc int, u *execOp, execMask uint64) (int64, bool) {
	plan := s.planFor(w, pc, u)
	w.hasPlan = false // consumed; loops must not reuse stale addresses

	// Functional access per lane.
	size := int(u.size)
	var base *[32]uint64
	if u.membase != ptx.NoReg {
		base = w.plane(u.membase)
	}
	var dst *[32]uint64
	if u.load {
		dst = w.plane(u.dst)
	}
	for m := execMask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		addr := u.memoff
		if base != nil {
			addr += base[l]
		}
		switch u.space {
		case ptx.SpaceGlobal:
			if addr < nullPageBytes {
				s.memFault(FaultNullGlobal, w, pc, l, u.space, addr, size, nullPageBytes)
				return int64(s.cfg.ALULat), false
			}
			if u.load {
				dst[l] = s.memRead(addr, size)
				s.stats.GlobalLoads++
			} else {
				s.memWrite(addr, s.srcLane(w, &u.src[0], l), size)
				s.stats.GlobalStores++
			}
		case ptx.SpaceLocal:
			limit := int64(len(w.locals[l]))
			if !inBounds(addr, size, limit) {
				s.memFault(FaultMemOOB, w, pc, l, u.space, addr, size, limit)
				return int64(s.cfg.ALULat), false
			}
			if u.load {
				dst[l] = readLE(w.locals[l][addr:], size)
				s.stats.LocalLoads++
			} else {
				writeLE(w.locals[l][addr:], s.srcLane(w, &u.src[0], l), size)
				s.stats.LocalStores++
			}
		case ptx.SpaceShared:
			// The addressable segment is what the kernel declares; the
			// occupancy ballast (Launch.ExtraSharedBytes) reserves space
			// but is never a legal target.
			limit := s.kernel.SharedBytes()
			if !inBounds(addr, size, limit) {
				s.memFault(FaultMemOOB, w, pc, l, u.space, addr, size, limit)
				return int64(s.cfg.ALULat), false
			}
			if u.load {
				dst[l] = readLE(w.block.shared[addr:], size)
				s.stats.SharedLoads++
			} else {
				writeLE(w.block.shared[addr:], s.srcLane(w, &u.src[0], l), size)
				s.stats.SharedStores++
			}
		}
	}

	// Timing.
	switch u.space {
	case ptx.SpaceShared:
		extra := int64(plan.conflicts - 1)
		s.stats.BankConflictCycles += extra
		s.memPipeFree = s.now + 1 + extra
		return int64(s.cfg.SharedLat) + 2*extra, false
	case ptx.SpaceGlobal:
		if !u.load {
			// Write-through, no-allocate: consume bandwidth, evict from L1.
			for _, line := range plan.lines {
				s.l1.evict(line)
			}
			s.chargeDRAM(plan.bytes)
			s.memPipeFree = s.now + int64(len(plan.lines))
			return int64(s.cfg.ALULat), false
		}
		if u.bypass {
			// ld.global.cg: skip the L1, fetch straight from L2/DRAM.
			worst := int64(s.cfg.L2Lat)
			for _, line := range plan.lines {
				done := s.fillFromL2(line)
				if d := done - s.now; d > worst {
					worst = d
				}
			}
			s.memPipeFree = s.now + int64(len(plan.lines))
			s.stats.BypassLoads += int64(len(plan.lines))
			return worst, true
		}
		return s.accessCached(plan), true
	case ptx.SpaceLocal:
		// Local loads and stores both allocate in L1 (write-back).
		lat := s.accessCached(plan)
		if !u.load {
			return int64(s.cfg.ALULat), false
		}
		return lat, true
	}
	return int64(s.cfg.ALULat), false
}

// accessCached sends the plan's lines through L1 -> L2 -> DRAM and returns
// the cycles until the last fill (relative to now).
func (s *Simulator) accessCached(plan *memPlan) int64 {
	worst := int64(s.cfg.L1HitLat)
	for _, line := range plan.lines {
		s.stats.L1Accesses++
		hit, pending := s.l1.probe(line)
		if hit {
			s.l1.access(line, s.now, 0)
			s.stats.L1Hits++
			continue
		}
		s.stats.L1Misses++
		var ready int64
		if pending {
			// Merge with the in-flight fill: no new MSHR, no new traffic.
			_, ready = s.l1.access(line, s.now, 0)
		} else {
			fillDone := s.fillFromL2(line)
			_, ready = s.l1.access(line, s.now, fillDone)
		}
		if d := ready - s.now + int64(s.cfg.L1HitLat); d > worst {
			worst = d
		}
	}
	s.memPipeFree = s.now + int64(len(plan.lines))
	return worst
}

// fillFromL2 models an L1 miss: L2 lookup, then DRAM with bandwidth
// queueing. Returns the absolute completion cycle.
func (s *Simulator) fillFromL2(line uint64) int64 {
	s.stats.L2Accesses++
	if hit, _ := s.l2.probe(line); hit {
		s.l2.access(line, s.now, 0)
		s.stats.L2Hits++
		return s.now + int64(s.cfg.L2Lat)
	}
	// DRAM: latency plus serialized transfer of one line.
	transfer := int64(float64(s.cfg.L1.LineBytes) / s.cfg.DRAMBytesPerCycle)
	if transfer < 1 {
		transfer = 1
	}
	start := s.now + int64(s.cfg.L2Lat) + int64(s.cfg.DRAMLat)
	if s.dramFree > start {
		start = s.dramFree
	}
	done := start + transfer
	s.dramFree = done
	s.stats.DRAMBytes += int64(s.cfg.L1.LineBytes)
	s.l2.insert(line, s.now)
	return done
}

// chargeDRAM consumes write bandwidth.
func (s *Simulator) chargeDRAM(bytes int64) {
	transfer := int64(float64(bytes) / s.cfg.DRAMBytesPerCycle)
	if transfer < 1 {
		transfer = 1
	}
	if s.dramFree < s.now {
		s.dramFree = s.now
	}
	s.dramFree += transfer
	s.stats.DRAMBytes += bytes
}

func readLE(b []byte, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func writeLE(b []byte, v uint64, n int) {
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
