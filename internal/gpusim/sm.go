package gpusim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"crat/internal/ptx"
)

// localBase is the synthetic physical-address region of thread-local
// (spill) memory, interleaved by thread so same-offset accesses from a warp
// coalesce — mirroring how hardware lays out local memory.
const localBase = uint64(1) << 40

// Launch describes one kernel launch on the simulated SM.
type Launch struct {
	Kernel *ptx.Kernel
	// Grid is the number of thread blocks; Block the threads per block.
	Grid, Block int
	// Params holds one raw value per kernel parameter (pointers as
	// addresses in the supplied Memory, scalars as their bit patterns).
	Params []uint64
	// TLPLimit throttles the number of concurrently resident blocks
	// (0 = hardware maximum): the thread-throttling knob.
	TLPLimit int
	// RegsPerThread overrides the per-thread register usage used for
	// occupancy (0 = derive from the kernel's declared registers).
	RegsPerThread int
	// ExtraSharedBytes adds per-block shared memory beyond the kernel's
	// declarations (the "dummy array" TLP-throttling trick of paper §1).
	ExtraSharedBytes int64
	// Trace, when non-nil, receives one line per issued warp instruction
	// (cycle, warp, block, pc, disassembly) — a debugging aid.
	Trace io.Writer
}

// derivedRegs counts 32-bit register slots declared by the kernel.
func (l Launch) derivedRegs() int {
	if l.RegsPerThread > 0 {
		return l.RegsPerThread
	}
	n32, n64, _ := l.Kernel.RegCounts()
	return n32 + 2*n64
}

type stallReason uint8

const (
	stallNone stallReason = iota
	stallCongestion
	stallMemData
	stallALU
	stallBarrier
	stallEmpty
)

func (r stallReason) String() string {
	switch r {
	case stallNone:
		return "ready"
	case stallCongestion:
		return "mem-congestion"
	case stallMemData:
		return "mem-data"
	case stallALU:
		return "alu-data"
	case stallBarrier:
		return "barrier"
	case stallEmpty:
		return "empty"
	}
	return fmt.Sprintf("stall(%d)", uint8(r))
}

type simtEntry struct {
	pc   int
	rpc  int
	mask uint64
}

type thread struct {
	regs  []uint64
	local []byte
	tid   int
}

type blockCtx struct {
	id        int
	slot      int
	shared    []byte
	warps     []*warp
	liveWarps int
	arrived   int

	// regArena/localArena back every thread's regs/local slices so a block
	// costs two allocations instead of two per thread, and a retired block's
	// storage can be cleared and reused by the next launch.
	regArena   []uint64
	localArena []byte
}

type memPlan struct {
	pc        int
	lines     []uint64 // unique L1 line addresses (global/local)
	words     []uint64 // unique shared-memory words (bank-conflict model)
	conflicts int      // shared-memory bank serialization degree
	bytes     int64
}

type warp struct {
	id      int
	sched   int
	block   *blockCtx
	lanes   []*thread
	stack   []simtEntry
	done    bool
	barrier bool

	regReady   []int64
	readyIsMem []bool

	plan    memPlan
	hasPlan bool
}

// Simulator executes one kernel launch on one SM.
type Simulator struct {
	cfg    Config
	mem    *Memory
	launch Launch
	kernel *ptx.Kernel

	paramBlock []byte
	info       *kernelInfo // cached per-kernel analysis (see kernelcache.go)

	now         int64
	l1          *cache
	l2          *cache
	dramFree    int64
	memPipeFree int64

	blocks     []*blockCtx
	blockPool  []*blockCtx // retired block contexts reusable by launchBlock
	freeSlots  []int       // residency slots not currently occupied
	nextBlock  int
	warps      []*warp
	schedWarps [][]*warp // per-scheduler warp lists (launch order)
	warpSeq    int
	current    []*warp // per-scheduler greedy warp (GTO), nil when none
	lrrNext    []int   // per-scheduler round-robin cursor

	maxConc int
	stats   Stats

	// fault records the first structured execution fault; Run stops and
	// returns it instead of executing past corrupted state.
	fault *Fault
}

// NewSimulator prepares a launch. The kernel must validate; the number of
// parameter values must match the kernel's parameter list.
func NewSimulator(cfg Config, mem *Memory, launch Launch) (*Simulator, error) {
	k := launch.Kernel
	info, err := infoFor(k)
	if err != nil {
		return nil, err
	}
	if len(launch.Params) != len(k.Params) {
		return nil, fmt.Errorf("gpusim: %d param values for %d params", len(launch.Params), len(k.Params))
	}
	if launch.Grid <= 0 || launch.Block <= 0 {
		return nil, fmt.Errorf("gpusim: grid=%d block=%d must be positive", launch.Grid, launch.Block)
	}

	shm := k.SharedBytes() + launch.ExtraSharedBytes
	regs := launch.derivedRegs()
	conc := cfg.Occupancy(regs, shm, launch.Block)
	if conc == 0 {
		return nil, fmt.Errorf("gpusim: launch does not fit on SM (regs=%d shm=%d block=%d)", regs, shm, launch.Block)
	}
	if launch.TLPLimit > 0 && launch.TLPLimit < conc {
		conc = launch.TLPLimit
	}

	s := &Simulator{
		cfg:        cfg,
		mem:        mem,
		launch:     launch,
		kernel:     k,
		info:       info,
		l1:         newCache(cfg.L1),
		l2:         newCache(cfg.L2),
		maxConc:    conc,
		current:    make([]*warp, cfg.NumSchedulers),
		lrrNext:    make([]int, cfg.NumSchedulers),
		schedWarps: make([][]*warp, cfg.NumSchedulers),
	}
	s.freeSlots = make([]int, 0, conc)
	for i := conc - 1; i >= 0; i-- {
		s.freeSlots = append(s.freeSlots, i)
	}
	s.paramBlock = buildParamBlock(k, launch.Params)
	s.stats.RegsPerThread = regs
	s.stats.SharedPerBlock = shm
	s.stats.ConcurrentBlocks = conc
	if launch.Grid < conc {
		s.stats.ConcurrentBlocks = launch.Grid
	}
	return s, nil
}

func buildParamBlock(k *ptx.Kernel, vals []uint64) []byte {
	size := int64(0)
	for _, p := range k.Params {
		off, _ := k.ParamOffset(p.Name)
		end := off + int64(p.Type.Bytes())
		if end > size {
			size = end
		}
	}
	out := make([]byte, size)
	for i, p := range k.Params {
		off, _ := k.ParamOffset(p.Name)
		v := vals[i]
		for b := 0; b < p.Type.Bytes(); b++ {
			out[off+int64(b)] = byte(v >> (8 * b))
		}
	}
	return out
}

// cancelStride is how many cycles the simulator runs between context
// checks: coarse enough that ctx.Err() never shows up in profiles, fine
// enough (~microseconds of wall time) that cancellation and deadlines feel
// immediate.
const cancelStride = 4096

// Run simulates until every block of the grid has completed and returns the
// collected statistics. Execution failures — exec faults, out-of-bounds
// accesses, barrier deadlocks, stalls, livelock — surface as a *Fault.
func (s *Simulator) Run() (Stats, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run under a context: the cycle loop polls ctx every
// cancelStride cycles and aborts with a structured FaultTimeout
// (deadline expired) or FaultCanceled (caller canceled) carrying the usual
// per-warp snapshots, instead of spinning on to MaxCycles. The statistics
// accumulated up to the abort are returned alongside the fault.
func (s *Simulator) RunCtx(ctx context.Context) (Stats, error) {
	for s.nextBlock < s.launch.Grid && len(s.blocks) < s.maxConc {
		s.launchBlock()
	}
	maxCycles := s.cfg.maxCycles()
	stallWindow := s.cfg.stallWindow()
	idle := int64(0)
	for s.stats.BlocksCompleted < int64(s.launch.Grid) {
		if s.fault != nil {
			break
		}
		if s.now%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				kind := FaultCanceled
				if errors.Is(err, context.DeadlineExceeded) {
					kind = FaultTimeout
				}
				s.setFault(&Fault{
					Kind: kind, PC: -1, Warp: -1, Block: -1, Lane: -1,
					Err:   err,
					Warps: s.warpStates(),
				})
				break
			}
		}
		if s.now >= maxCycles {
			s.setFault(&Fault{
				Kind: FaultLivelock, PC: -1, Warp: -1, Block: -1, Lane: -1,
				Detail: fmt.Sprintf("exceeded %d cycles without retiring the grid", maxCycles),
				Warps:  s.warpStates(),
			})
			break
		}
		if s.step() {
			idle = 0
		} else {
			idle++
			// An idle machine cannot un-wedge itself without an external
			// event, and the only external events are L1/MSHR expiries
			// bounded by the DRAM latency. Probe the barrier state early
			// (deadlocked warps never wake), and give anything else a full
			// stall window before declaring the machine wedged.
			if idle%64 == 0 && s.barrierDeadlocked() {
				s.setFault(&Fault{
					Kind: FaultBarrierDeadlock, PC: -1, Warp: -1, Block: -1, Lane: -1,
					Detail: "all live warps blocked at a barrier with no arrivals possible",
					Warps:  s.warpStates(),
				})
				break
			}
			if idle >= stallWindow {
				s.setFault(&Fault{
					Kind: FaultWatchdogStall, PC: -1, Warp: -1, Block: -1, Lane: -1,
					Detail: fmt.Sprintf("no instruction issued for %d cycles", idle),
					Warps:  s.warpStates(),
				})
				break
			}
		}
	}
	s.stats.Cycles = s.now
	s.stats.L1DistinctLines = int64(len(s.l1.seen))
	if s.fault != nil {
		return s.stats, s.fault
	}
	return s.stats, nil
}

// launchBlock makes the next grid block resident, reusing a retired block
// context (warps, threads, and their backing arenas) when one is available:
// steady-state execution of a large grid then allocates nothing per block.
func (s *Simulator) launchBlock() {
	id := s.nextBlock
	s.nextBlock++
	slot := -1
	if n := len(s.freeSlots); n > 0 {
		slot = s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
	}

	if n := len(s.blockPool); n > 0 {
		bc := s.blockPool[n-1]
		s.blockPool = s.blockPool[:n-1]
		s.resetBlock(bc, id, slot)
		s.blocks = append(s.blocks, bc)
		return
	}

	bc := &blockCtx{
		id:     id,
		slot:   slot,
		shared: make([]byte, s.kernel.SharedBytes()+s.launch.ExtraSharedBytes),
	}
	nRegs := s.kernel.NumRegs()
	localSize := int(s.kernel.LocalBytes())
	nWarps := (s.launch.Block + s.cfg.WarpSize - 1) / s.cfg.WarpSize
	bc.regArena = make([]uint64, nRegs*s.launch.Block)
	if localSize > 0 {
		bc.localArena = make([]byte, localSize*s.launch.Block)
	}
	for wi := 0; wi < nWarps; wi++ {
		w := &warp{
			block:      bc,
			regReady:   make([]int64, nRegs),
			readyIsMem: make([]bool, nRegs),
		}
		var mask uint64
		for l := 0; l < s.cfg.WarpSize; l++ {
			tid := wi*s.cfg.WarpSize + l
			if tid >= s.launch.Block {
				break
			}
			th := &thread{
				regs: bc.regArena[tid*nRegs : (tid+1)*nRegs : (tid+1)*nRegs],
				tid:  tid,
			}
			if localSize > 0 {
				th.local = bc.localArena[tid*localSize : (tid+1)*localSize : (tid+1)*localSize]
			}
			w.lanes = append(w.lanes, th)
			mask |= 1 << uint(l)
		}
		w.stack = []simtEntry{{pc: 0, rpc: len(s.kernel.Insts), mask: mask}}
		bc.warps = append(bc.warps, w)
		s.enrollWarp(w)
	}
	s.blocks = append(s.blocks, bc)
}

// enrollWarp assigns the next warp id/scheduler and adds the warp to the
// issue pools. Warp age (GTO's tiebreak) is the scheduler list order.
func (s *Simulator) enrollWarp(w *warp) {
	w.id = s.warpSeq
	w.sched = s.warpSeq % s.cfg.NumSchedulers
	s.warpSeq++
	w.block.liveWarps++
	s.warps = append(s.warps, w)
	s.schedWarps[w.sched] = append(s.schedWarps[w.sched], w)
}

// resetBlock rewinds a retired block context to pristine launch state: all
// register/local/shared storage zeroed, every warp back at pc 0 with a full
// mask, and the warps re-enrolled under fresh ids.
func (s *Simulator) resetBlock(bc *blockCtx, id, slot int) {
	bc.id = id
	bc.slot = slot
	bc.liveWarps = 0
	bc.arrived = 0
	clear(bc.shared)
	clear(bc.regArena)
	clear(bc.localArena)
	for _, w := range bc.warps {
		w.done = false
		w.barrier = false
		w.hasPlan = false
		clear(w.regReady)
		clear(w.readyIsMem)
		var mask uint64
		for l := range w.lanes {
			mask |= 1 << uint(l)
		}
		w.stack = append(w.stack[:0], simtEntry{pc: 0, rpc: len(s.kernel.Insts), mask: mask})
		s.enrollWarp(w)
	}
}

// retireBlock removes a finished block and backfills from the grid.
func (s *Simulator) retireBlock(bc *blockCtx) {
	for i, b := range s.blocks {
		if b == bc {
			s.blocks = append(s.blocks[:i], s.blocks[i+1:]...)
			break
		}
	}
	// Drop its warps from the scheduler pool.
	kept := s.warps[:0]
	for _, w := range s.warps {
		if w.block != bc {
			kept = append(kept, w)
		}
	}
	s.warps = kept
	for sched := range s.schedWarps {
		ks := s.schedWarps[sched][:0]
		for _, w := range s.schedWarps[sched] {
			if w.block != bc {
				ks = append(ks, w)
			}
		}
		s.schedWarps[sched] = ks
		s.current[sched] = nil
		s.lrrNext[sched] = 0
	}
	s.freeSlots = append(s.freeSlots, bc.slot)
	s.blockPool = append(s.blockPool, bc)
	s.stats.BlocksCompleted++
	if s.nextBlock < s.launch.Grid {
		s.launchBlock()
	}
}

// step advances one cycle: each scheduler issues at most one warp
// instruction. It reports whether any scheduler issued (the idle-watchdog
// signal).
func (s *Simulator) step() bool {
	s.l1.expire(s.now)
	issued := false
	for sched := 0; sched < s.cfg.NumSchedulers; sched++ {
		if s.issueFrom(sched) {
			issued = true
		}
	}
	s.now++
	return issued
}

// issueFrom lets scheduler sched pick and issue one warp, reporting whether
// one issued. GTO stays on the current warp while it can issue, otherwise
// falls back to the oldest ready warp; LRR rotates a cursor.
func (s *Simulator) issueFrom(sched int) bool {
	list := s.schedWarps[sched]
	n := 0
	for _, w := range list {
		if !w.done {
			n++
		}
	}
	if n == 0 {
		s.stats.StallEmpty++
		return false
	}

	worst := stallEmpty
	try := func(w *warp) bool {
		if w.done {
			return false
		}
		ok, reason := s.canIssue(w)
		if ok {
			s.execute(w)
			s.current[sched] = w
			s.stats.IssuedSlots++
			return true
		}
		if reason < worst && reason != stallNone {
			worst = reason
		}
		return false
	}

	if s.cfg.Scheduler == SchedGTO {
		if cw := s.current[sched]; cw != nil && !cw.done {
			if try(cw) {
				return true
			}
		}
		for _, w := range list {
			if w == s.current[sched] {
				continue
			}
			if try(w) {
				return true
			}
		}
	} else {
		off := s.lrrNext[sched] % len(list)
		for i := 0; i < len(list); i++ {
			w := list[(off+i)%len(list)]
			if try(w) {
				s.lrrNext[sched] = (off + i + 1) % len(list)
				return true
			}
		}
	}

	switch worst {
	case stallCongestion:
		s.stats.StallCongestion++
	case stallMemData:
		s.stats.StallMemData++
	case stallALU:
		s.stats.StallALU++
	case stallBarrier:
		s.stats.StallBarrier++
	default:
		s.stats.StallEmpty++
	}
	s.current[sched] = nil
	return false
}

// canIssue checks structural and data hazards for the warp's next
// instruction.
func (s *Simulator) canIssue(w *warp) (bool, stallReason) {
	if w.done {
		return false, stallEmpty
	}
	if w.barrier {
		return false, stallBarrier
	}
	top := &w.stack[len(w.stack)-1]
	if top.pc >= len(s.kernel.Insts) {
		// Defensive: treat running off the end as exit.
		return true, stallNone
	}
	in := &s.kernel.Insts[top.pc]

	// Scoreboard: all read and written registers must be ready. The use/def
	// sets come precomputed from the kernel-analysis cache — this check runs
	// every cycle for every stalled warp and must not re-derive them.
	memBlocked := false
	for _, r := range s.info.uses[top.pc] {
		if w.regReady[r] > s.now {
			if w.readyIsMem[r] {
				memBlocked = true
			} else {
				return false, stallALU
			}
		}
	}
	if memBlocked {
		return false, stallMemData
	}
	if r := s.info.defs[top.pc]; r != ptx.NoReg {
		if w.regReady[r] > s.now {
			if w.readyIsMem[r] {
				return false, stallMemData
			}
			return false, stallALU
		}
	}

	if in.Op.IsMemory() && in.Space != ptx.SpaceParam {
		if s.memPipeFree > s.now {
			return false, stallCongestion
		}
		plan := s.planFor(w, top.pc, in)
		needsMSHR := in.Space == ptx.SpaceLocal ||
			(in.Space == ptx.SpaceGlobal && in.Op == ptx.OpLd && !in.Bypass)
		if needsMSHR {
			// Count the new misses this access would create; reject when
			// the MSHR file cannot absorb them.
			newMisses := 0
			for _, line := range plan.lines {
				if hit, pending := s.l1.probe(line); !hit && !pending {
					newMisses++
				}
			}
			if newMisses > s.l1.freeMSHRs() {
				return false, stallCongestion
			}
		}
	}
	return true, stallNone
}

// planFor computes (and caches) the memory transactions of the instruction
// at pc for warp w. Buffers are reused across calls to keep the hot path
// allocation-free.
func (s *Simulator) planFor(w *warp, pc int, in *ptx.Inst) *memPlan {
	if w.hasPlan && w.plan.pc == pc {
		return &w.plan
	}
	top := &w.stack[len(w.stack)-1]
	w.plan.pc = pc
	w.plan.lines = w.plan.lines[:0]
	w.plan.words = w.plan.words[:0]
	w.plan.conflicts = 0
	w.plan.bytes = 0
	plan := &w.plan
	size := in.Type.Bytes()

	addLine := func(line uint64) {
		for _, l := range plan.lines {
			if l == line {
				return
			}
		}
		plan.lines = append(plan.lines, line)
	}
	addWord := func(word uint64) {
		for _, x := range plan.words {
			if x == word {
				return
			}
		}
		plan.words = append(plan.words, word)
	}

	mem := in.Dst
	if in.Op == ptx.OpLd {
		mem = in.Srcs[0]
	}
	for l, th := range w.lanes {
		if top.mask&(1<<uint(l)) == 0 {
			continue
		}
		if in.Guard != ptx.NoReg {
			p := th.regs[in.Guard] != 0
			if p == in.GuardNeg {
				continue
			}
		}
		addr := s.resolveAddr(th, mem, in.Space)
		plan.bytes += int64(size)
		switch in.Space {
		case ptx.SpaceGlobal:
			for b := uint64(0); b < uint64(size); b += 4 {
				addLine(s.l1.lineAddr(addr + b))
			}
		case ptx.SpaceLocal:
			// Interleaved physical layout: word w of thread t lives at
			// localBase + (w*MaxThreads + slotThread)*4.
			slotThread := uint64(w.block.slot*s.launch.Block + th.tid)
			for b := uint64(0); b < uint64(size); b += 4 {
				word := (addr + b) / 4
				phys := localBase + (word*uint64(s.cfg.MaxThreadsPerSM)+slotThread)*4
				addLine(s.l1.lineAddr(phys))
			}
		case ptx.SpaceShared:
			for b := uint64(0); b < uint64(size); b += 4 {
				addWord((addr + b) / 4)
			}
		}
	}
	if len(plan.words) > 0 {
		var perBank [32]int
		for _, word := range plan.words {
			perBank[word%32]++
		}
		for _, c := range perBank {
			if c > plan.conflicts {
				plan.conflicts = c
			}
		}
	}
	if plan.conflicts == 0 {
		plan.conflicts = 1
	}
	w.hasPlan = true
	return plan
}

// resolveAddr computes the effective (space-relative) address of a memory
// operand for one thread.
func (s *Simulator) resolveAddr(th *thread, mem ptx.Operand, space ptx.Space) uint64 {
	var base uint64
	switch {
	case mem.Reg != ptx.NoReg:
		base = th.regs[mem.Reg]
	case mem.Sym != "":
		base = s.symValue(mem.Sym, space)
	}
	return base + uint64(mem.Off)
}

// symValue resolves an array or parameter symbol to its space-relative
// address.
func (s *Simulator) symValue(sym string, space ptx.Space) uint64 {
	if space == ptx.SpaceParam {
		off, _ := s.kernel.ParamOffset(sym)
		return uint64(off)
	}
	off, ok := s.kernel.ArrayOffset(sym)
	if ok {
		return uint64(off)
	}
	poff, _ := s.kernel.ParamOffset(sym)
	return uint64(poff)
}
