package gpusim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/bits"

	"crat/internal/passes"
	"crat/internal/ptx"
)

// localBase is the synthetic physical-address region of thread-local
// (spill) memory, interleaved by thread so same-offset accesses from a warp
// coalesce — mirroring how hardware lays out local memory.
const localBase = uint64(1) << 40

// Launch describes one kernel launch on the simulated SM.
type Launch struct {
	Kernel *ptx.Kernel
	// Grid is the number of thread blocks; Block the threads per block.
	Grid, Block int
	// Params holds one raw value per kernel parameter (pointers as
	// addresses in the supplied Memory, scalars as their bit patterns).
	Params []uint64
	// TLPLimit throttles the number of concurrently resident blocks
	// (0 = hardware maximum): the thread-throttling knob.
	TLPLimit int
	// RegsPerThread overrides the per-thread register usage used for
	// occupancy (0 = derive from the kernel's declared registers).
	RegsPerThread int
	// ExtraSharedBytes adds per-block shared memory beyond the kernel's
	// declarations (the "dummy array" TLP-throttling trick of paper §1).
	ExtraSharedBytes int64
	// Trace, when non-nil, receives one line per issued warp instruction
	// (cycle, warp, block, pc, disassembly) — a debugging aid.
	Trace io.Writer
}

// derivedRegs counts 32-bit register slots declared by the kernel.
func (l Launch) derivedRegs() int {
	if l.RegsPerThread > 0 {
		return l.RegsPerThread
	}
	n32, n64, _ := l.Kernel.RegCounts()
	return n32 + 2*n64
}

type stallReason uint8

const (
	stallNone stallReason = iota
	stallCongestion
	stallMemData
	stallALU
	stallBarrier
	stallEmpty
)

func (r stallReason) String() string {
	switch r {
	case stallNone:
		return "ready"
	case stallCongestion:
		return "mem-congestion"
	case stallMemData:
		return "mem-data"
	case stallALU:
		return "alu-data"
	case stallBarrier:
		return "barrier"
	case stallEmpty:
		return "empty"
	}
	return fmt.Sprintf("stall(%d)", uint8(r))
}

type simtEntry struct {
	pc   int
	rpc  int
	mask uint64
}

type blockCtx struct {
	id        int
	slot      int
	shared    []byte
	warps     []*warp
	liveWarps int
	arrived   int

	// regArena/localArena back every warp's register planes and lane local
	// frames so a block costs two allocations instead of two per thread, and
	// a retired block's storage can be cleared and reused by the next launch.
	regArena   []uint64
	localArena []byte
}

type memPlan struct {
	pc        int
	lines     []uint64 // unique L1 line addresses (global/local)
	words     []uint64 // unique shared-memory words (bank-conflict model)
	conflicts int      // shared-memory bank serialization degree
	bytes     int64
}

// warp holds one warp's architectural state in structure-of-arrays form:
// regs is nRegs consecutive 32-lane planes (register r of lane l lives at
// regs[r*32+l]), so one vector op touches one contiguous plane per operand
// instead of chasing 32 thread pointers.
type warp struct {
	id       int
	sched    int
	schedIdx int // position in schedWarps[sched] (and the stall-cache arrays)
	block    *blockCtx
	nLanes   int // populated lanes (< 32 in a partial tail warp)
	baseTid  int // block-relative thread id of lane 0
	regs     []uint64
	locals   [][]byte // per-lane local (spill) frame; empty when kernel has none
	stack    []simtEntry
	done     bool
	barrier  bool

	// regReady[r] packs the register's ready cycle and its producer class
	// into one word — ready<<1 | isMem — so the scoreboard scan touches one
	// cache line stream instead of two parallel arrays.
	regReady []int64

	// Scoreboard memo: regReady only changes when this warp executes, so
	// the per-cycle hazard scan over uses/defs is computed once per (issue
	// attempt after an execute) and replayed as three compares.
	// execute() invalidates it on entry.
	sbValid    bool
	sbDefIsMem bool
	sbALU      int64 // latest ready time over non-memory blocked uses
	sbMem      int64 // latest ready time over memory-blocked uses
	sbDef      int64 // ready time of the written register

	plan    memPlan
	hasPlan bool
}

// plane returns register r's 32-lane plane.
func (w *warp) plane(r ptx.Reg) *[32]uint64 {
	return (*[32]uint64)(w.regs[int(r)*32:])
}

// Simulator executes one kernel launch on one SM.
type Simulator struct {
	cfg    Config
	mem    *Memory
	launch Launch
	kernel *ptx.Kernel

	paramBlock []byte
	info       *kernelInfo  // cached per-kernel analysis (see kernelcache.go)
	prog       *execProgram // the lowered micro-op program (info.prog)
	tracing    bool         // launch.Trace != nil, pre-checked for the hot path

	now         int64
	l1          *cache
	l2          *cache
	dramFree    int64
	memPipeFree int64

	blocks     []*blockCtx
	blockPool  []*blockCtx // retired block contexts reusable by launchBlock
	freeSlots  []int       // residency slots not currently occupied
	nextBlock  int
	warps      []*warp
	schedWarps [][]*warp // per-scheduler warp lists (launch order)
	liveSched  []int     // per-scheduler count of not-done warps

	// Per-scheduler stall cache, parallel to schedWarps: while
	// now < schedUntil[sched][i], warp i cannot issue and schedReason holds
	// why. The issue scan walks these flat arrays and only dereferences a
	// warp (and runs the full hazard check) when its cached stall expired.
	// Data stalls expire at a known time; barrier parks and warp exits are
	// cached as "never" and cleared by releaseBarrier/re-enrollment;
	// structural stalls are never cached. execute() resets its warp's entry.
	schedUntil  [][]int64
	schedReason [][]stallReason
	lastStall   []stallReason // per-scheduler reason counted on the last no-issue cycle
	idle        int64         // consecutive no-issue cycles (skipped cycles included)
	warpSeq     int
	current     []*warp // per-scheduler greedy warp (GTO), nil when none
	lrrNext     []int   // per-scheduler round-robin cursor

	// specScratch materializes special-register sources (one plane per
	// source slot) without allocating.
	specScratch [3][32]uint64

	// One-entry global-memory TLB: coalesced warp accesses land on the same
	// 64KB page lane after lane, so caching the last page slice turns the
	// per-lane map lookup in sem.Memory into a compare. Page slices are
	// stable for the life of the Memory (see sem.Memory.PageFor).
	tlbKey  uint64
	tlbPage []byte

	maxConc int
	stats   Stats

	// fault records the first structured execution fault; Run stops and
	// returns it instead of executing past corrupted state.
	fault *Fault
}

// NewSimulator prepares a launch. The kernel must validate; the number of
// parameter values must match the kernel's parameter list.
func NewSimulator(cfg Config, mem *Memory, launch Launch) (*Simulator, error) {
	k := launch.Kernel
	info, err := infoFor(k)
	if err != nil {
		return nil, err
	}
	if len(launch.Params) != len(k.Params) {
		return nil, fmt.Errorf("gpusim: %d param values for %d params", len(launch.Params), len(k.Params))
	}
	if launch.Grid <= 0 || launch.Block <= 0 {
		return nil, fmt.Errorf("gpusim: grid=%d block=%d must be positive", launch.Grid, launch.Block)
	}
	if cfg.WarpSize <= 0 || cfg.WarpSize > 32 {
		return nil, fmt.Errorf("gpusim: warp size %d unsupported (register planes are 32 lanes)", cfg.WarpSize)
	}

	shm := k.SharedBytes() + launch.ExtraSharedBytes
	regs := launch.derivedRegs()
	conc := cfg.Occupancy(regs, shm, launch.Block)
	if conc == 0 {
		return nil, fmt.Errorf("gpusim: launch does not fit on SM (regs=%d shm=%d block=%d)", regs, shm, launch.Block)
	}
	if launch.TLPLimit > 0 && launch.TLPLimit < conc {
		conc = launch.TLPLimit
	}

	s := &Simulator{
		cfg:         cfg,
		mem:         mem,
		launch:      launch,
		kernel:      k,
		info:        info,
		prog:        info.prog,
		tracing:     launch.Trace != nil,
		l1:          newCache(cfg.L1),
		l2:          newCache(cfg.L2),
		maxConc:     conc,
		current:     make([]*warp, cfg.NumSchedulers),
		lrrNext:     make([]int, cfg.NumSchedulers),
		schedWarps:  make([][]*warp, cfg.NumSchedulers),
		liveSched:   make([]int, cfg.NumSchedulers),
		schedUntil:  make([][]int64, cfg.NumSchedulers),
		schedReason: make([][]stallReason, cfg.NumSchedulers),
		lastStall:   make([]stallReason, cfg.NumSchedulers),
	}
	s.freeSlots = make([]int, 0, conc)
	for i := conc - 1; i >= 0; i-- {
		s.freeSlots = append(s.freeSlots, i)
	}
	s.paramBlock = buildParamBlock(k, launch.Params)
	s.stats.RegsPerThread = regs
	s.stats.SharedPerBlock = shm
	s.stats.ConcurrentBlocks = conc
	if launch.Grid < conc {
		s.stats.ConcurrentBlocks = launch.Grid
	}
	return s, nil
}

func buildParamBlock(k *ptx.Kernel, vals []uint64) []byte {
	size := int64(0)
	for _, p := range k.Params {
		off, _ := k.ParamOffset(p.Name)
		end := off + int64(p.Type.Bytes())
		if end > size {
			size = end
		}
	}
	out := make([]byte, size)
	for i, p := range k.Params {
		off, _ := k.ParamOffset(p.Name)
		v := vals[i]
		for b := 0; b < p.Type.Bytes(); b++ {
			out[off+int64(b)] = byte(v >> (8 * b))
		}
	}
	return out
}

// cancelStride is how many loop iterations the simulator runs between
// context checks: coarse enough that ctx.Err() never shows up in profiles,
// fine enough (~microseconds of wall time) that cancellation and deadlines
// feel immediate. Iterations, not cycles: the clock fast-forward makes a
// cycle-modulo test unreliable (a jump can leap over every multiple).
const cancelStride = 4096

// Run simulates until every block of the grid has completed and returns the
// collected statistics. Execution failures — exec faults, out-of-bounds
// accesses, barrier deadlocks, stalls, livelock — surface as a *Fault.
func (s *Simulator) Run() (Stats, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run under a context: the cycle loop polls ctx every
// cancelStride cycles and aborts with a structured FaultTimeout
// (deadline expired) or FaultCanceled (caller canceled) carrying the usual
// per-warp snapshots, instead of spinning on to MaxCycles. The statistics
// accumulated up to the abort are returned alongside the fault.
func (s *Simulator) RunCtx(ctx context.Context) (Stats, error) {
	for s.nextBlock < s.launch.Grid && len(s.blocks) < s.maxConc {
		s.launchBlock()
	}
	maxCycles := s.cfg.maxCycles()
	stallWindow := s.cfg.stallWindow()
	s.idle = 0
	poll := 0
	for s.stats.BlocksCompleted < int64(s.launch.Grid) {
		if s.fault != nil {
			break
		}
		if poll--; poll <= 0 {
			poll = cancelStride
			if err := ctx.Err(); err != nil {
				kind := FaultCanceled
				if errors.Is(err, context.DeadlineExceeded) {
					kind = FaultTimeout
				}
				s.setFault(&Fault{
					Kind: kind, PC: -1, Warp: -1, Block: -1, Lane: -1,
					Err:   err,
					Warps: s.warpStates(),
				})
				break
			}
		}
		if s.now >= maxCycles {
			s.setFault(&Fault{
				Kind: FaultLivelock, PC: -1, Warp: -1, Block: -1, Lane: -1,
				Detail: fmt.Sprintf("exceeded %d cycles without retiring the grid", maxCycles),
				Warps:  s.warpStates(),
			})
			break
		}
		if !s.step() {
			// An idle machine cannot un-wedge itself without an external
			// event, and the only external events are L1/MSHR expiries
			// bounded by the DRAM latency. Probe the barrier state early
			// (deadlocked warps never wake), and give anything else a full
			// stall window before declaring the machine wedged. step()
			// maintains s.idle, counting fast-forwarded cycles too; jumps
			// never happen in barrier-deadlock states (no cached expiry), so
			// the modulo probe still runs while one is possible.
			if s.idle%64 == 0 && s.barrierDeadlocked() {
				s.setFault(&Fault{
					Kind: FaultBarrierDeadlock, PC: -1, Warp: -1, Block: -1, Lane: -1,
					Detail: "all live warps blocked at a barrier with no arrivals possible",
					Warps:  s.warpStates(),
				})
				break
			}
			if s.idle >= stallWindow {
				s.setFault(&Fault{
					Kind: FaultWatchdogStall, PC: -1, Warp: -1, Block: -1, Lane: -1,
					Detail: fmt.Sprintf("no instruction issued for %d cycles", s.idle),
					Warps:  s.warpStates(),
				})
				break
			}
		}
	}
	s.stats.Cycles = s.now
	s.stats.L1DistinctLines = int64(len(s.l1.seen))
	if s.fault != nil {
		return s.stats, s.fault
	}
	return s.stats, nil
}

// launchBlock makes the next grid block resident, reusing a retired block
// context (warps and their backing arenas) when one is available:
// steady-state execution of a large grid then allocates nothing per block.
func (s *Simulator) launchBlock() {
	id := s.nextBlock
	s.nextBlock++
	slot := -1
	if n := len(s.freeSlots); n > 0 {
		slot = s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
	}

	if n := len(s.blockPool); n > 0 {
		bc := s.blockPool[n-1]
		s.blockPool = s.blockPool[:n-1]
		s.resetBlock(bc, id, slot)
		s.blocks = append(s.blocks, bc)
		return
	}

	bc := &blockCtx{
		id:     id,
		slot:   slot,
		shared: make([]byte, s.kernel.SharedBytes()+s.launch.ExtraSharedBytes),
	}
	nRegs := s.kernel.NumRegs()
	localSize := int(s.kernel.LocalBytes())
	nWarps := (s.launch.Block + s.cfg.WarpSize - 1) / s.cfg.WarpSize
	bc.regArena = make([]uint64, nWarps*nRegs*32)
	if localSize > 0 {
		bc.localArena = make([]byte, localSize*s.launch.Block)
	}
	for wi := 0; wi < nWarps; wi++ {
		w := &warp{
			block:    bc,
			baseTid:  wi * s.cfg.WarpSize,
			regs:     bc.regArena[wi*nRegs*32 : (wi+1)*nRegs*32 : (wi+1)*nRegs*32],
			regReady: make([]int64, nRegs),
		}
		var mask uint64
		for l := 0; l < s.cfg.WarpSize; l++ {
			tid := wi*s.cfg.WarpSize + l
			if tid >= s.launch.Block {
				break
			}
			if localSize > 0 {
				w.locals = append(w.locals, bc.localArena[tid*localSize:(tid+1)*localSize:(tid+1)*localSize])
			}
			w.nLanes++
			mask |= 1 << uint(l)
		}
		w.stack = []simtEntry{{pc: 0, rpc: len(s.kernel.Insts), mask: mask}}
		bc.warps = append(bc.warps, w)
		s.enrollWarp(w)
	}
	s.blocks = append(s.blocks, bc)
}

// enrollWarp assigns the next warp id/scheduler and adds the warp to the
// issue pools. Warp age (GTO's tiebreak) is the scheduler list order.
func (s *Simulator) enrollWarp(w *warp) {
	w.id = s.warpSeq
	w.sched = s.warpSeq % s.cfg.NumSchedulers
	s.warpSeq++
	w.block.liveWarps++
	s.warps = append(s.warps, w)
	w.schedIdx = len(s.schedWarps[w.sched])
	s.schedWarps[w.sched] = append(s.schedWarps[w.sched], w)
	s.schedUntil[w.sched] = append(s.schedUntil[w.sched], 0)
	s.schedReason[w.sched] = append(s.schedReason[w.sched], stallNone)
	s.liveSched[w.sched]++
}

// resetBlock rewinds a retired block context to pristine launch state: all
// register/local/shared storage zeroed, every warp back at pc 0 with a full
// mask, and the warps re-enrolled under fresh ids.
func (s *Simulator) resetBlock(bc *blockCtx, id, slot int) {
	bc.id = id
	bc.slot = slot
	bc.liveWarps = 0
	bc.arrived = 0
	clear(bc.shared)
	clear(bc.regArena)
	clear(bc.localArena)
	for _, w := range bc.warps {
		w.done = false
		w.barrier = false
		w.hasPlan = false
		w.sbValid = false
		clear(w.regReady)
		mask := uint64(1)<<uint(w.nLanes) - 1
		w.stack = append(w.stack[:0], simtEntry{pc: 0, rpc: len(s.kernel.Insts), mask: mask})
		s.enrollWarp(w)
	}
}

// retireBlock removes a finished block and backfills from the grid.
func (s *Simulator) retireBlock(bc *blockCtx) {
	for i, b := range s.blocks {
		if b == bc {
			s.blocks = append(s.blocks[:i], s.blocks[i+1:]...)
			break
		}
	}
	// Drop its warps from the scheduler pool.
	kept := s.warps[:0]
	for _, w := range s.warps {
		if w.block != bc {
			kept = append(kept, w)
		}
	}
	s.warps = kept
	for sched := range s.schedWarps {
		ks := s.schedWarps[sched][:0]
		ku := s.schedUntil[sched][:0]
		kr := s.schedReason[sched][:0]
		for i, w := range s.schedWarps[sched] {
			if w.block != bc {
				w.schedIdx = len(ks)
				ks = append(ks, w)
				ku = append(ku, s.schedUntil[sched][i])
				kr = append(kr, s.schedReason[sched][i])
			}
		}
		s.schedWarps[sched] = ks
		s.schedUntil[sched] = ku
		s.schedReason[sched] = kr
		s.current[sched] = nil
		s.lrrNext[sched] = 0
	}
	s.freeSlots = append(s.freeSlots, bc.slot)
	s.blockPool = append(s.blockPool, bc)
	s.stats.BlocksCompleted++
	if s.nextBlock < s.launch.Grid {
		s.launchBlock()
	}
}

// step advances one cycle: each scheduler issues at most one warp
// instruction. It reports whether any scheduler issued (the idle-watchdog
// signal).
func (s *Simulator) step() bool {
	s.l1.expire(s.now)
	issued := false
	for sched := 0; sched < s.cfg.NumSchedulers; sched++ {
		if s.issueFrom(sched) {
			issued = true
		}
	}
	if issued {
		s.idle = 0
	} else {
		s.idle++
		s.skipStalledCycles()
	}
	s.now++
	return issued
}

// skipStalledCycles fast-forwards the clock over cycles that would replay
// this cycle's no-issue verdict unchanged. When every live warp carries a
// cached stall with a known expiry, nothing can issue — and therefore no
// machine state changes — before the earliest of: a stall expiring, an
// in-flight L1 fill completing (expire must observe it at its exact cycle),
// or the livelock ceiling. Each skipped cycle charges the same per-scheduler
// stall counter this cycle just charged, so Stats are bit-identical to
// stepping cycle by cycle.
func (s *Simulator) skipStalledCycles() {
	h := s.stallHorizon()
	if h >= farFuture {
		return // a wedged machine must keep stepping for the watchdog
	}
	if n := s.l1.nextFill(); n > 0 && n < h {
		h = n
	}
	if mc := s.cfg.maxCycles(); h > mc {
		h = mc
	}
	d := h - s.now - 1
	// Never jump past the stall watchdog's trip point: it must fire at the
	// same cycle it would have when stepping.
	if lim := s.cfg.stallWindow() - s.idle; d > lim {
		d = lim
	}
	if d <= 0 {
		return
	}
	for sched := range s.lastStall {
		s.bumpStall(s.lastStall[sched], d)
	}
	s.now += d
	s.idle += d
}

// stallHorizon returns the earliest cycle at which some live warp's cached
// stall expires, or farFuture when at least one live warp has no cached
// expiry (structural stall, fresh enrollment) — in which case the machine
// must be re-evaluated every cycle.
func (s *Simulator) stallHorizon() int64 {
	h := farFuture
	for sched, list := range s.schedWarps {
		until := s.schedUntil[sched]
		for i := range list {
			u := until[i]
			if u <= s.now {
				if list[i].done {
					continue
				}
				return farFuture
			}
			if u < h {
				h = u
			}
		}
	}
	return h
}

// bumpStall charges n cycles to the stat bucket for reason r, mirroring the
// per-cycle accounting in issueFrom.
func (s *Simulator) bumpStall(r stallReason, n int64) {
	switch r {
	case stallCongestion:
		s.stats.StallCongestion += n
	case stallMemData:
		s.stats.StallMemData += n
	case stallALU:
		s.stats.StallALU += n
	case stallBarrier:
		s.stats.StallBarrier += n
	default:
		s.stats.StallEmpty += n
	}
}

// issueFrom lets scheduler sched pick and issue one warp, reporting whether
// one issued. GTO stays on the current warp while it can issue, otherwise
// falls back to the oldest ready warp; LRR rotates a cursor.
func (s *Simulator) issueFrom(sched int) bool {
	if s.liveSched[sched] == 0 {
		s.stats.StallEmpty++
		s.lastStall[sched] = stallEmpty
		return false
	}
	list := s.schedWarps[sched]
	until := s.schedUntil[sched]
	reasons := s.schedReason[sched]
	now := s.now

	worst := stallEmpty
	// tryIssue runs the full hazard check for a warp; the scan loops below
	// only reach it once the warp's cached stall has expired, so the common
	// case (a stalled warp) costs one array compare with no call at all.
	// Counting a warp's cached reason more than once is harmless: worst is a
	// minimum.
	if s.cfg.Scheduler == SchedGTO {
		cw := s.current[sched]
		if cw != nil && !cw.done {
			i := cw.schedIdx
			if now < until[i] {
				if r := reasons[i]; r < worst {
					worst = r
				}
			} else {
				ok, r := s.tryIssue(list[i], sched)
				if ok {
					return true
				}
				if r < worst && r != stallNone {
					worst = r
				}
			}
		}
		for i := range list {
			if now < until[i] {
				if r := reasons[i]; r < worst {
					worst = r
				}
				continue
			}
			if list[i] == cw {
				continue
			}
			ok, r := s.tryIssue(list[i], sched)
			if ok {
				return true
			}
			if r < worst && r != stallNone {
				worst = r
			}
		}
	} else {
		off := s.lrrNext[sched] % len(list)
		for i := 0; i < len(list); i++ {
			j := (off + i) % len(list)
			if now < until[j] {
				if r := reasons[j]; r < worst {
					worst = r
				}
				continue
			}
			ok, r := s.tryIssue(list[j], sched)
			if ok {
				s.lrrNext[sched] = (j + 1) % len(list)
				return true
			}
			if r < worst && r != stallNone {
				worst = r
			}
		}
	}

	s.bumpStall(worst, 1)
	s.lastStall[sched] = worst
	s.current[sched] = nil
	return false
}

// tryIssue runs the full hazard check for w on scheduler sched and executes
// the instruction on success. On failure it returns the observed stall
// reason (stallNone when the warp is already done).
func (s *Simulator) tryIssue(w *warp, sched int) (bool, stallReason) {
	if w.done {
		return false, stallNone
	}
	ok, reason := s.canIssue(w)
	if ok {
		s.execute(w)
		s.current[sched] = w
		s.stats.IssuedSlots++
		return true, stallNone
	}
	return false, reason
}

// cacheStall records that w cannot issue before `until` (exclusive) with the
// given reason, so issueFrom's scan can replay the verdict without re-entering
// canIssue. farFuture marks stalls with no self-expiry (barrier, exit); they
// are cleared by releaseBarrier or re-enrollment.
const farFuture = int64(1) << 62

func (s *Simulator) cacheStall(w *warp, r stallReason, until int64) {
	s.schedUntil[w.sched][w.schedIdx] = until
	s.schedReason[w.sched][w.schedIdx] = r
}

// canIssue checks structural and data hazards for the warp's next
// instruction.
func (s *Simulator) canIssue(w *warp) (bool, stallReason) {
	if w.done {
		return false, stallEmpty
	}
	if w.barrier {
		return false, stallBarrier
	}
	top := &w.stack[len(w.stack)-1]
	pc := top.pc
	if pc >= len(s.prog.ops) {
		// Defensive: treat running off the end as exit.
		return true, stallNone
	}

	// Scoreboard: all read and written registers must be ready. The warp's
	// register ready-times only change when it executes, so the scan over
	// the precomputed use/def sets is memoized into three timestamps and
	// replayed as compares on every subsequent stalled cycle.
	if !w.sbValid {
		var aluT, memT int64
		for _, r := range s.info.uses[pc] {
			p := w.regReady[r]
			if p&1 != 0 {
				if t := p >> 1; t > memT {
					memT = t
				}
			} else if t := p >> 1; t > aluT {
				aluT = t
			}
		}
		w.sbALU, w.sbMem = aluT, memT
		w.sbDef, w.sbDefIsMem = 0, false
		if r := s.info.defs[pc]; r != ptx.NoReg {
			p := w.regReady[r]
			w.sbDef = p >> 1
			w.sbDefIsMem = p&1 != 0
		}
		w.sbValid = true
	}
	if w.sbALU > s.now {
		s.cacheStall(w, stallALU, w.sbALU)
		return false, stallALU
	}
	if w.sbMem > s.now {
		s.cacheStall(w, stallMemData, w.sbMem)
		return false, stallMemData
	}
	if w.sbDef > s.now {
		r := stallALU
		if w.sbDefIsMem {
			r = stallMemData
		}
		s.cacheStall(w, r, w.sbDef)
		return false, r
	}

	u := &s.prog.ops[pc]
	if u.class == passes.MicroMem {
		if s.memPipeFree > s.now {
			return false, stallCongestion
		}
		plan := s.planFor(w, pc, u)
		needsMSHR := u.space == ptx.SpaceLocal ||
			(u.space == ptx.SpaceGlobal && u.load && !u.bypass)
		if needsMSHR {
			// Count the new misses this access would create; reject when
			// the MSHR file cannot absorb them.
			newMisses := 0
			for _, line := range plan.lines {
				if hit, pending := s.l1.probe(line); !hit && !pending {
					newMisses++
				}
			}
			if newMisses > s.l1.freeMSHRs() {
				return false, stallCongestion
			}
		}
	}
	return true, stallNone
}

// planFor computes (and caches) the memory transactions of the instruction
// at pc for warp w. Buffers are reused across calls to keep the hot path
// allocation-free.
func (s *Simulator) planFor(w *warp, pc int, u *execOp) *memPlan {
	if w.hasPlan && w.plan.pc == pc {
		return &w.plan
	}
	top := &w.stack[len(w.stack)-1]
	w.plan.pc = pc
	w.plan.lines = w.plan.lines[:0]
	w.plan.words = w.plan.words[:0]
	w.plan.conflicts = 0
	w.plan.bytes = 0
	plan := &w.plan
	size := uint64(u.size)

	addLine := func(line uint64) {
		for _, l := range plan.lines {
			if l == line {
				return
			}
		}
		plan.lines = append(plan.lines, line)
	}
	addWord := func(word uint64) {
		for _, x := range plan.words {
			if x == word {
				return
			}
		}
		plan.words = append(plan.words, word)
	}

	var base *[32]uint64
	if u.membase != ptx.NoReg {
		base = w.plane(u.membase)
	}
	var guard *[32]uint64
	if u.guard != ptx.NoReg {
		guard = w.plane(u.guard)
	}
	for m := top.mask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		if guard != nil && (guard[l] != 0) == u.guardNeg {
			continue
		}
		addr := u.memoff
		if base != nil {
			addr += base[l]
		}
		plan.bytes += int64(size)
		switch u.space {
		case ptx.SpaceGlobal:
			for b := uint64(0); b < size; b += 4 {
				addLine(s.l1.lineAddr(addr + b))
			}
		case ptx.SpaceLocal:
			// Interleaved physical layout: word w of thread t lives at
			// localBase + (w*MaxThreads + slotThread)*4.
			slotThread := uint64(w.block.slot*s.launch.Block + w.baseTid + l)
			for b := uint64(0); b < size; b += 4 {
				word := (addr + b) / 4
				phys := localBase + (word*uint64(s.cfg.MaxThreadsPerSM)+slotThread)*4
				addLine(s.l1.lineAddr(phys))
			}
		case ptx.SpaceShared:
			for b := uint64(0); b < size; b += 4 {
				addWord((addr + b) / 4)
			}
		}
	}
	if len(plan.words) > 0 {
		var perBank [32]int
		for _, word := range plan.words {
			perBank[word%32]++
		}
		for _, c := range perBank {
			if c > plan.conflicts {
				plan.conflicts = c
			}
		}
	}
	if plan.conflicts == 0 {
		plan.conflicts = 1
	}
	w.hasPlan = true
	return plan
}
