package gpusim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"crat/internal/passes"
	"crat/internal/ptx"
)

// kernelInfo is the per-kernel static analysis the simulator needs on every
// launch: validation, the CFG's reconvergence points, branch targets, and
// the per-instruction use/def sets consulted by the scoreboard each cycle.
// Computing it once per kernel (instead of once per NewSimulator) removes
// the dominant setup cost of design-space sweeps, where the same kernel is
// simulated at many TLPs.
type kernelInfo struct {
	err     error       // validation or CFG construction failure
	nInsts  int         // len(k.Insts) at analysis time (staleness guard)
	targets []int       // per-pc branch target instruction index (-1 = not a bra)
	reconv  []int       // per-pc reconvergence pc for conditional branches (-1 = none)
	uses    [][]ptx.Reg // per-pc registers read (guard, sources, memory bases)
	defs    []ptx.Reg   // per-pc register written (ptx.NoReg = none)
	imms    [][]uint64  // per-pc, per-src immediate encodings (unused slots are 0)
}

// kernelInfoCache memoizes kernelInfo by kernel identity. Entries are built
// under a per-entry sync.Once so concurrent simulations of one kernel share
// a single analysis. The cache is evicted wholesale once it grows past
// kernelCacheMax entries: long sweeps allocate thousands of short-lived
// kernels, and rebuilding a handful of live ones is cheaper than retaining
// them all.
type kernelInfoCache struct {
	mu sync.Mutex
	m  map[*ptx.Kernel]*kernelInfoEntry
}

// kernelInfoEntry holds one kernel's analysis. info is an atomic pointer
// because the staleness check in infoFor reads it while another goroutine
// may still be inside the entry's once.Do publishing it.
type kernelInfoEntry struct {
	once sync.Once
	info atomic.Pointer[kernelInfo]
}

const kernelCacheMax = 1024

var kernelCache = kernelInfoCache{m: make(map[*ptx.Kernel]*kernelInfoEntry)}

// infoFor returns the cached analysis for k, computing it on first use. The
// kernel must not be mutated after its first simulation; callers that edit
// instructions (e.g. toggling Bypass on a clone) get a fresh entry because
// Clone yields a new pointer. A kernel whose instruction count changed since
// analysis is re-analyzed rather than served stale.
func infoFor(k *ptx.Kernel) (*kernelInfo, error) {
	kernelCache.mu.Lock()
	e, ok := kernelCache.m[k]
	if ok {
		// Guard against in-place growth (builder reuse): re-analyze.
		if done := e.info.Load(); done != nil && done.nInsts != len(k.Insts) {
			ok = false
		}
	}
	if !ok {
		if len(kernelCache.m) >= kernelCacheMax {
			kernelCache.m = make(map[*ptx.Kernel]*kernelInfoEntry)
		}
		e = &kernelInfoEntry{}
		kernelCache.m[k] = e
	}
	kernelCache.mu.Unlock()

	e.once.Do(func() { e.info.Store(buildKernelInfo(k)) })
	info := e.info.Load()
	if info.err != nil {
		return nil, info.err
	}
	return info, nil
}

// buildKernelInfo runs the once-per-kernel analyses: validation and the
// simulator-specific immediate pre-encoding here, everything else
// (branch targets, reconvergence, use/def) from the shared analysis
// registry (internal/passes) the emulator also uses.
func buildKernelInfo(k *ptx.Kernel) *kernelInfo {
	info := &kernelInfo{nInsts: len(k.Insts)}
	if err := k.Validate(); err != nil {
		info.err = fmt.Errorf("gpusim: %w", err)
		return info
	}
	an, err := passes.Shared(k)
	if err != nil {
		info.err = err
		return info
	}
	info.targets = an.Targets
	info.reconv = an.Reconv
	info.uses = an.Uses
	info.defs = an.Defs

	// Pre-encode immediate sources at the type each call site will request
	// (OpCvt reads its source at CvtFrom), so the per-lane operand path
	// becomes a table lookup.
	n := len(k.Insts)
	info.imms = make([][]uint64, n)
	var immArena []uint64 // one backing array for all encodings
	for i := range k.Insts {
		in := &k.Insts[i]
		if len(in.Srcs) == 0 {
			continue
		}
		start := len(immArena)
		for j := range in.Srcs {
			o := &in.Srcs[j]
			var v uint64
			if o.Kind == ptx.OperandImm || o.Kind == ptx.OperandFImm {
				t := in.Type
				if in.Op == ptx.OpCvt && j == 0 {
					t = in.CvtFrom
				}
				v = immBits(*o, t)
			}
			immArena = append(immArena, v)
		}
		info.imms[i] = immArena[start:len(immArena):len(immArena)]
	}
	return info
}
