package gpusim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"crat/internal/passes"
	"crat/internal/ptx"
)

// kernelInfo is the per-kernel static analysis the simulator needs on every
// launch: validation, the per-instruction use/def sets consulted by the
// scoreboard each cycle, and the lowered exec program the SoA engine runs.
// Computing it once per kernel (instead of once per NewSimulator) removes
// the dominant setup cost of design-space sweeps, where the same kernel is
// simulated at many TLPs.
type kernelInfo struct {
	err    error       // validation or analysis failure
	nInsts int         // len(k.Insts) at analysis time (staleness guard)
	uses   [][]ptx.Reg // per-pc registers read (guard, sources, memory bases)
	defs   []ptx.Reg   // per-pc register written (ptx.NoReg = none)
	prog   *execProgram
}

// execProgram is the simulator's lowered form of the shared micro-op stream:
// one execOp per pc with the vector evaluation function and broadcast
// constant planes pre-built, so the issue loop does no per-instruction
// decoding at all.
type execProgram struct {
	ops []execOp
}

// srcRef kinds (a compressed passes.SrcKind: absent sources are folded into
// srcConst via the shared zero plane).
type srcKind uint8

const (
	srcConst srcKind = iota // bcast plane (immediate, symbol, or zero)
	srcReg                  // register plane
	srcSpec                 // special register, materialized per issue
)

// srcRef is one pre-resolved source slot of an execOp.
type srcRef struct {
	kind  srcKind
	reg   ptx.Reg
	spec  ptx.Special
	bcast *[32]uint64 // srcConst: the value broadcast across all lanes
}

// execOp is one lowered instruction. Hot fields (class, fn, the register
// indices) sit first; the branch/fault fields trail.
type execOp struct {
	class    passes.MicroClass
	guard    ptx.Reg // guard predicate register, or ptx.NoReg
	guardNeg bool
	load     bool // memory op is a load (ld); false = store
	bypass   bool
	sfu      bool
	size     uint8 // memory access width in bytes
	space    ptx.Space
	meta     ptx.InstMeta
	dst      ptx.Reg // destination register, or ptx.NoReg
	membase  ptx.Reg // address base register, or ptx.NoReg
	fn       vecFn   // MicroALU only
	src      [3]srcRef
	memoff   uint64
	target   int // branch target pc (MicroBra)
	rpc      int // reconvergence pc (-1 = none)
	err      error
}

// buildExecProgram lowers the shared micro-op stream into the simulator's
// runnable form. Broadcast planes for all constants live in one arena,
// counted first so the pointers stay valid.
func buildExecProgram(ms *passes.MicroStream) *execProgram {
	nConst := 0
	for i := range ms.Ops {
		for j := range ms.Ops[i].Src {
			if ms.Ops[i].Src[j].Kind == passes.SrcConst {
				nConst++
			}
		}
	}
	bcArena := make([][32]uint64, nConst)
	ci := 0
	prog := &execProgram{ops: make([]execOp, len(ms.Ops))}
	for i := range ms.Ops {
		u := &ms.Ops[i]
		e := &prog.ops[i]
		e.class = u.Class
		e.guard, e.guardNeg = u.Guard, u.GuardNeg
		e.load = u.Op == ptx.OpLd
		e.bypass = u.Bypass
		e.sfu = u.SFU
		e.size = u.Size
		e.space = u.Space
		e.meta = u.Meta
		e.dst = u.Dst
		e.membase = u.MemBase
		e.memoff = u.MemOff
		e.target, e.rpc = u.Target, u.Rpc
		e.err = u.Err
		for j := range u.Src {
			switch u.Src[j].Kind {
			case passes.SrcReg:
				e.src[j] = srcRef{kind: srcReg, reg: u.Src[j].Reg}
			case passes.SrcSpecial:
				e.src[j] = srcRef{kind: srcSpec, spec: u.Src[j].Spec}
			case passes.SrcConst:
				p := &bcArena[ci]
				ci++
				for l := range p {
					p[l] = u.Src[j].Const
				}
				e.src[j] = srcRef{kind: srcConst, bcast: p}
			default:
				e.src[j] = srcRef{kind: srcConst, bcast: &zeroPlane}
			}
		}
		if u.Class == passes.MicroALU {
			e.fn = vecFnFor(u)
		}
	}
	return prog
}

// kernelInfoCache memoizes kernelInfo by kernel identity. Entries are built
// under a per-entry sync.Once so concurrent simulations of one kernel share
// a single analysis. The cache is evicted wholesale once it grows past
// kernelCacheMax entries: long sweeps allocate thousands of short-lived
// kernels, and rebuilding a handful of live ones is cheaper than retaining
// them all.
type kernelInfoCache struct {
	mu sync.Mutex
	m  map[*ptx.Kernel]*kernelInfoEntry
}

// kernelInfoEntry holds one kernel's analysis. info is an atomic pointer
// because the staleness check in infoFor reads it while another goroutine
// may still be inside the entry's once.Do publishing it.
type kernelInfoEntry struct {
	once sync.Once
	info atomic.Pointer[kernelInfo]
}

const kernelCacheMax = 1024

var kernelCache = kernelInfoCache{m: make(map[*ptx.Kernel]*kernelInfoEntry)}

// infoFor returns the cached analysis for k, computing it on first use. The
// kernel must not be mutated after its first simulation; callers that edit
// instructions (e.g. toggling Bypass on a clone) get a fresh entry because
// Clone yields a new pointer. A kernel whose instruction count changed since
// analysis is re-analyzed rather than served stale.
func infoFor(k *ptx.Kernel) (*kernelInfo, error) {
	kernelCache.mu.Lock()
	e, ok := kernelCache.m[k]
	if ok {
		// Guard against in-place growth (builder reuse): re-analyze.
		if done := e.info.Load(); done != nil && done.nInsts != len(k.Insts) {
			ok = false
		}
	}
	if !ok {
		if len(kernelCache.m) >= kernelCacheMax {
			kernelCache.m = make(map[*ptx.Kernel]*kernelInfoEntry)
		}
		e = &kernelInfoEntry{}
		kernelCache.m[k] = e
	}
	kernelCache.mu.Unlock()

	e.once.Do(func() { e.info.Store(buildKernelInfo(k)) })
	info := e.info.Load()
	if info.err != nil {
		return nil, info.err
	}
	return info, nil
}

// buildKernelInfo runs the once-per-kernel analyses: validation here,
// everything else (use/def, the micro-op stream) from the shared analysis
// registry (internal/passes) the emulator also uses, then the lowering of
// the micro-op stream into the SoA engine's exec program.
func buildKernelInfo(k *ptx.Kernel) *kernelInfo {
	info := &kernelInfo{nInsts: len(k.Insts)}
	if err := k.Validate(); err != nil {
		info.err = fmt.Errorf("gpusim: %w", err)
		return info
	}
	an, err := passes.Shared(k)
	if err != nil {
		info.err = err
		return info
	}
	info.uses = an.Uses
	info.defs = an.Defs
	info.prog = buildExecProgram(an.Micro)
	return info
}
