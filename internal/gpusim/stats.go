package gpusim

import "fmt"

// Stats aggregates the measurements of one simulation run.
type Stats struct {
	Cycles      int64
	WarpInsts   int64 // warp-level instructions issued
	ThreadInsts int64 // thread-level instructions executed

	// L1 data cache (global loads + local loads/stores).
	L1Accesses int64
	L1Hits     int64
	L1Misses   int64
	// L1DistinctLines counts distinct cache lines ever brought into L1:
	// the aggregate footprint (feeds the static OptTLP estimator).
	L1DistinctLines int64
	// L2 slice.
	L2Accesses int64
	L2Hits     int64
	// DRAM traffic in bytes (fills + write-throughs).
	DRAMBytes int64
	// BypassLoads counts L1-bypassed (ld.global.cg) transactions.
	BypassLoads int64

	// Scheduler stall taxonomy, in scheduler-cycles (one slot per
	// scheduler per cycle). Congestion is the paper's "pipeline stall
	// caused by the congestion of cache requests" (Figures 3 and 5b).
	IssuedSlots     int64
	StallCongestion int64
	StallMemData    int64
	StallALU        int64
	StallBarrier    int64
	StallEmpty      int64

	// Dynamic memory operation counts (thread granularity).
	GlobalLoads  int64
	GlobalStores int64
	LocalLoads   int64
	LocalStores  int64
	SharedLoads  int64
	SharedStores int64

	// Dynamic spill-tagged instruction counts (thread granularity).
	SpillLocalOps  int64
	SpillSharedOps int64
	SpillAddrOps   int64

	// Shared-memory bank conflict extra cycles.
	BankConflictCycles int64

	// Launch shape.
	BlocksCompleted  int64
	ConcurrentBlocks int // achieved TLP (resident blocks at steady state)
	RegsPerThread    int
	SharedPerBlock   int64
}

// IPC returns warp instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.WarpInsts) / float64(s.Cycles)
}

// L1HitRate returns the L1 data cache hit fraction.
func (s Stats) L1HitRate() float64 {
	if s.L1Accesses == 0 {
		return 0
	}
	return float64(s.L1Hits) / float64(s.L1Accesses)
}

// L2HitRate returns the L2 slice hit fraction.
func (s Stats) L2HitRate() float64 {
	if s.L2Accesses == 0 {
		return 0
	}
	return float64(s.L2Hits) / float64(s.L2Accesses)
}

// LocalOps returns dynamic local-memory operations (the paper's
// local-memory access metric, Figure 16).
func (s Stats) LocalOps() int64 { return s.LocalLoads + s.LocalStores }

// String renders a compact single-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d ipc=%.3f l1hit=%.3f congest=%d local=%d tlp=%d",
		s.Cycles, s.IPC(), s.L1HitRate(), s.StallCongestion, s.LocalOps(), s.ConcurrentBlocks)
}
