package gpusim_test

import (
	"errors"
	"testing"

	"crat/internal/emu"
	"crat/internal/emu/ptxgen"
	"crat/internal/gpusim"
	"crat/internal/oracle"
	"crat/internal/ptx"
	"crat/internal/workloads"
)

// crossCheck runs one launch through both execution engines — the SoA timing
// simulator and the functional emulator — on identical memory images and
// requires byte-identical final global memory and identical instruction
// counts. Both engines interpret the same shared micro-op stream, so any
// disagreement means one of them ordered, masked, or rewrote execution
// differently.
func crossCheck(t *testing.T, k *ptx.Kernel, grid, block int, setup func(*gpusim.Memory) []uint64) {
	t.Helper()

	simMem := gpusim.NewMemory()
	simParams := setup(simMem)
	sim, err := gpusim.NewSimulator(gpusim.FermiConfig(), simMem, gpusim.Launch{
		Kernel: k, Grid: grid, Block: block, Params: simParams,
	})
	if err != nil {
		t.Fatalf("simulator: %v", err)
	}
	stats, err := sim.Run()
	if err != nil {
		t.Fatalf("simulator run: %v", err)
	}

	emuMem := gpusim.NewMemory()
	emuParams := setup(emuMem)
	res, err := emu.Run(emu.Launch{
		Kernel: k, Grid: grid, Block: block, Params: emuParams,
	}, emuMem)
	if err != nil {
		t.Fatalf("emulator run: %v", err)
	}

	if stats.WarpInsts != res.WarpInsts {
		t.Errorf("warp instruction counts disagree: sim=%d emu=%d", stats.WarpInsts, res.WarpInsts)
	}
	if stats.ThreadInsts != res.ThreadInsts {
		t.Errorf("thread instruction counts disagree: sim=%d emu=%d", stats.ThreadInsts, res.ThreadInsts)
	}
	if addr, a, b, diff := simMem.DiffFirst(emuMem); diff {
		t.Fatalf("engines disagree at global[%#x]: sim=%#x emu=%#x", addr, a, b)
	}
}

// TestEmulatorCrossCheck cross-checks every seed workload kernel. The two
// engines share sem for arithmetic; this pins the oracle's emulator to the
// simulator's observable semantics.
func TestEmulatorCrossCheck(t *testing.T) {
	for _, p := range workloads.All() {
		p := p
		t.Run(p.Abbr, func(t *testing.T) {
			t.Parallel()
			// Shrunken grids keep the cross-product affordable; per-block
			// behaviour (barriers, shared staging, divergence) is unchanged.
			grid := 2
			if p.Grid < grid {
				grid = p.Grid
			}
			app := p.AppWithInput(workloads.Input{
				Name: "crosscheck", GridScale: float64(grid) / float64(p.Grid), DataScale: 1,
			})
			crossCheck(t, app.Kernel, app.Grid, app.Block, app.Setup)
		})
	}
}

// TestPtxgenCrossCheck cross-checks a randomized kernel corpus: spill-heavy
// chains, divergence, predication, bounded loops, shared staging — shapes no
// seed workload pins down. Inputs come from the oracle's seeded generator so
// the run doubles as a check that the oracle substrate and the simulator see
// the same semantics.
func TestPtxgenCrossCheck(t *testing.T) {
	const grid = 2
	for seed := int64(1); seed <= 24; seed++ {
		seed := seed
		t.Run(string(rune('a'+seed-1)), func(t *testing.T) {
			t.Parallel()
			k := ptxgen.Generate(ptxgen.Config{Seed: seed})
			block := 64
			crossCheck(t, k, grid, block, func(mem *gpusim.Memory) []uint64 {
				in, params := oracle.GenInputs(k, grid, block, seed)
				// GenInputs builds its own memory; replay its image into the
				// engine's memory so both engines observe identical bytes.
				*mem = *in.Clone()
				return params
			})
		})
	}
}

// TestFaultCrossCheck requires the two engines to agree on structured
// faults: same classification, same instruction, and the same offending
// lane — the per-lane attribution the SoA vectorization must preserve.
func TestFaultCrossCheck(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *ptx.Kernel
		simKind gpusim.FaultKind
		emuKind emu.FaultKind
	}{
		{
			name: "null-global",
			build: func() *ptx.Kernel {
				b := ptx.NewBuilder("xnull")
				b.Param("out", ptx.U64)
				addr := b.Reg(ptx.U64)
				v := b.Reg(ptx.U32)
				b.Mov(ptx.U64, addr, ptx.Imm(16))
				b.Ld(ptx.SpaceGlobal, ptx.U32, v, ptx.MemReg(addr, 0))
				b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(addr, 0), ptx.R(v))
				b.Exit()
				return b.Kernel()
			},
			simKind: gpusim.FaultNullGlobal,
			emuKind: emu.FaultNullGlobal,
		},
		{
			name: "shared-oob",
			build: func() *ptx.Kernel {
				// Lane l stores at shared[4*l]; the 16-byte segment faults
				// first at lane 4.
				b := ptx.NewBuilder("xsoob")
				b.Param("out", ptx.U64)
				b.SharedArray("stage", 16)
				tid := b.Reg(ptx.U32)
				off := b.Reg(ptx.U64)
				b.MovSpec(tid, ptx.SpecTidX)
				b.Shl(ptx.U32, tid, ptx.R(tid), ptx.Imm(2))
				b.Cvt(ptx.U64, ptx.U32, off, ptx.R(tid))
				b.St(ptx.SpaceShared, ptx.U32, ptx.MemReg(off, 0), ptx.R(tid))
				b.Exit()
				return b.Kernel()
			},
			simKind: gpusim.FaultMemOOB,
			emuKind: emu.FaultMemOOB,
		},
		{
			name: "exec",
			build: func() *ptx.Kernel {
				b := ptx.NewBuilder("xexec")
				b.Param("out", ptx.U64)
				r := b.Reg(ptx.U32)
				b.Sfu(ptx.OpSin, ptx.U32, r, ptx.Imm(1))
				b.Exit()
				return b.Kernel()
			},
			simKind: gpusim.FaultExec,
			emuKind: emu.FaultExec,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			k := tc.build()
			launch := func() (int, int, []uint64) { return 1, 32, []uint64{0} }

			grid, block, params := launch()
			sim, err := gpusim.NewSimulator(gpusim.FermiConfig(), gpusim.NewMemory(), gpusim.Launch{
				Kernel: k, Grid: grid, Block: block, Params: params,
			})
			if err != nil {
				t.Fatalf("simulator: %v", err)
			}
			_, err = sim.Run()
			var sf *gpusim.Fault
			if !errors.As(err, &sf) {
				t.Fatalf("simulator returned %v, want a fault", err)
			}

			_, err = emu.Run(emu.Launch{
				Kernel: k, Grid: grid, Block: block, Params: params,
			}, gpusim.NewMemory())
			var ef *emu.Fault
			if !errors.As(err, &ef) {
				t.Fatalf("emulator returned %v, want a fault", err)
			}

			if sf.Kind != tc.simKind {
				t.Errorf("simulator fault kind = %v, want %v", sf.Kind, tc.simKind)
			}
			if ef.Kind != tc.emuKind {
				t.Errorf("emulator fault kind = %v, want %v", ef.Kind, tc.emuKind)
			}
			if sf.PC != ef.PC || sf.Warp != ef.Warp || sf.Lane != ef.Lane {
				t.Errorf("fault location disagrees: sim pc=%d warp=%d lane=%d, emu pc=%d warp=%d lane=%d",
					sf.PC, sf.Warp, sf.Lane, ef.PC, ef.Warp, ef.Lane)
			}
		})
	}
}
