package gpusim_test

import (
	"testing"

	"crat/internal/emu"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

// TestEmulatorCrossCheck runs every seed workload kernel through both
// execution engines — the timing simulator and the functional emulator — on
// identical memory images and requires byte-identical final global memory.
// The two engines share sem for arithmetic, so any disagreement means they
// ordered or rewrote execution differently; this pins the oracle's emulator
// to the simulator's observable semantics.
func TestEmulatorCrossCheck(t *testing.T) {
	arch := gpusim.FermiConfig()
	for _, p := range workloads.All() {
		p := p
		t.Run(p.Abbr, func(t *testing.T) {
			t.Parallel()
			// Shrunken grids keep the cross-product affordable; per-block
			// behaviour (barriers, shared staging, divergence) is unchanged.
			grid := 2
			if p.Grid < grid {
				grid = p.Grid
			}
			app := p.AppWithInput(workloads.Input{
				Name: "crosscheck", GridScale: float64(grid) / float64(p.Grid), DataScale: 1,
			})

			simMem := gpusim.NewMemory()
			simParams := app.Setup(simMem)
			sim, err := gpusim.NewSimulator(arch, simMem, gpusim.Launch{
				Kernel: app.Kernel, Grid: app.Grid, Block: app.Block, Params: simParams,
			})
			if err != nil {
				t.Fatalf("simulator: %v", err)
			}
			if _, err := sim.Run(); err != nil {
				t.Fatalf("simulator run: %v", err)
			}

			emuMem := gpusim.NewMemory()
			emuParams := app.Setup(emuMem)
			if _, err := emu.Run(emu.Launch{
				Kernel: app.Kernel, Grid: app.Grid, Block: app.Block, Params: emuParams,
			}, emuMem); err != nil {
				t.Fatalf("emulator run: %v", err)
			}

			if addr, a, b, diff := simMem.DiffFirst(emuMem); diff {
				t.Fatalf("engines disagree at global[%#x]: sim=%#x emu=%#x", addr, a, b)
			}
		})
	}
}
