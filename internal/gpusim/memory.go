package gpusim

import "crat/internal/sem"

// Memory is the sparse global-memory image shared with the functional
// emulator; it lives in internal/sem so both engines (and the differential
// oracle) operate on the same representation. The alias keeps gpusim's
// public API stable.
type Memory = sem.Memory

const pageSize = sem.PageSize

// NewMemory returns an empty memory. Allocations start at a non-zero base
// so that address 0 stays invalid (a null pointer).
func NewMemory() *Memory { return sem.NewMemory() }
