package gpusim

import (
	"testing"

	"crat/internal/ptx"
	"crat/internal/regalloc"
	"crat/internal/spillopt"
)

// buildVecAdd returns out[i] = a[i] + b[i] with a bounds guard.
func buildVecAdd() *ptx.Kernel {
	b := ptx.NewBuilder("vecadd")
	b.Param("a", ptx.U64).Param("b", ptx.U64).Param("out", ptx.U64).Param("n", ptx.U32)
	pa, pb, po := b.Reg(ptx.U64), b.Reg(ptx.U64), b.Reg(ptx.U64)
	n := b.Reg(ptx.U32)
	b.LdParam(ptx.U64, pa, "a").LdParam(ptx.U64, pb, "b").LdParam(ptx.U64, po, "out").LdParam(ptx.U32, n, "n")
	idx := b.GlobalIndex()
	p := b.Reg(ptx.Pred)
	b.Setp(ptx.CmpGe, ptx.U32, p, ptx.R(idx), ptx.R(n))
	b.BraIf(p, false, "DONE")
	aA := b.AddrOf(pa, idx, 4)
	bA := b.AddrOf(pb, idx, 4)
	oA := b.AddrOf(po, idx, 4)
	va, vb, vs := b.Reg(ptx.U32), b.Reg(ptx.U32), b.Reg(ptx.U32)
	b.Ld(ptx.SpaceGlobal, ptx.U32, va, ptx.MemReg(aA, 0))
	b.Ld(ptx.SpaceGlobal, ptx.U32, vb, ptx.MemReg(bA, 0))
	b.Add(ptx.U32, vs, ptx.R(va), ptx.R(vb))
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(oA, 0), ptx.R(vs))
	b.Label("DONE").Exit()
	return b.Kernel()
}

func TestVecAddFunctional(t *testing.T) {
	k := buildVecAdd()
	mem := NewMemory()
	const n = 200 // not a multiple of block size: exercises the guard
	a := mem.Alloc(4 * n)
	bb := mem.Alloc(4 * n)
	out := mem.Alloc(4 * 256)
	for i := 0; i < n; i++ {
		mem.WriteUint32(a+uint64(4*i), uint32(i))
		mem.WriteUint32(bb+uint64(4*i), uint32(1000+i))
	}
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: k, Grid: 4, Block: 64,
		Params: []uint64{a, bb, out, n},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := mem.ReadUint32(out + uint64(4*i))
		want := uint32(1000 + 2*i)
		if got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	// Threads past n must not have written.
	if got := mem.ReadUint32(out + uint64(4*n)); got != 0 {
		t.Errorf("out[%d] = %d, want 0 (guard failed)", n, got)
	}
	if st.Cycles <= 0 || st.WarpInsts <= 0 {
		t.Errorf("bogus stats: %+v", st)
	}
	if st.BlocksCompleted != 4 {
		t.Errorf("BlocksCompleted = %d, want 4", st.BlocksCompleted)
	}
}

func TestDivergenceDiamond(t *testing.T) {
	// out[tid] = tid < 16 ? tid*2 : tid*3, in a single warp.
	b := ptx.NewBuilder("diamond")
	b.Param("out", ptx.U64)
	po := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, po, "out")
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	p := b.Reg(ptx.Pred)
	b.Setp(ptx.CmpLt, ptx.U32, p, ptx.R(tid), ptx.Imm(16))
	r := b.Reg(ptx.U32)
	b.BraIf(p, false, "THEN")
	b.Mul(ptx.U32, r, ptx.R(tid), ptx.Imm(3))
	b.Bra("JOIN")
	b.Label("THEN").Mul(ptx.U32, r, ptx.R(tid), ptx.Imm(2))
	oA := b.AddrOf(po, tid, 4)
	b.Label("JOIN").St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(oA, 0), ptx.R(r))
	b.Exit()
	k := b.Kernel()

	// The AddrOf above sits between THEN and JOIN lexically; rebuild with
	// address computed before the branch for correctness of both paths.
	_ = k
	b2 := ptx.NewBuilder("diamond")
	b2.Param("out", ptx.U64)
	po2 := b2.Reg(ptx.U64)
	b2.LdParam(ptx.U64, po2, "out")
	tid2 := b2.Reg(ptx.U32)
	b2.MovSpec(tid2, ptx.SpecTidX)
	oA2 := b2.AddrOf(po2, tid2, 4)
	p2 := b2.Reg(ptx.Pred)
	b2.Setp(ptx.CmpLt, ptx.U32, p2, ptx.R(tid2), ptx.Imm(16))
	r2 := b2.Reg(ptx.U32)
	b2.BraIf(p2, false, "THEN")
	b2.Mul(ptx.U32, r2, ptx.R(tid2), ptx.Imm(3))
	b2.Bra("JOIN")
	b2.Label("THEN").Mul(ptx.U32, r2, ptx.R(tid2), ptx.Imm(2))
	b2.Label("JOIN").St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(oA2, 0), ptx.R(r2))
	b2.Exit()

	mem := NewMemory()
	out := mem.Alloc(4 * 32)
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: b2.Kernel(), Grid: 1, Block: 32, Params: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(i * 3)
		if i < 16 {
			want = uint32(i * 2)
		}
		if got := mem.ReadUint32(out + uint64(4*i)); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestLoopExecution(t *testing.T) {
	// out[tid] = sum(0..tid) via a data-dependent loop (divergent exit).
	b := ptx.NewBuilder("loop")
	b.Param("out", ptx.U64)
	po := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, po, "out")
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	oA := b.AddrOf(po, tid, 4)
	acc := b.Reg(ptx.U32)
	i := b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	b.Mov(ptx.U32, acc, ptx.Imm(0))
	b.Mov(ptx.U32, i, ptx.Imm(0))
	b.Label("LOOP").Setp(ptx.CmpGt, ptx.U32, p, ptx.R(i), ptx.R(tid))
	b.BraIf(p, false, "DONE")
	b.Add(ptx.U32, acc, ptx.R(acc), ptx.R(i))
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Bra("LOOP")
	b.Label("DONE").St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(oA, 0), ptx.R(acc))
	b.Exit()

	mem := NewMemory()
	out := mem.Alloc(4 * 64)
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 64, Params: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 64; tid++ {
		want := uint32(tid * (tid + 1) / 2)
		if got := mem.ReadUint32(out + uint64(4*tid)); got != want {
			t.Fatalf("out[%d] = %d, want %d", tid, got, want)
		}
	}
}

func TestBarrierAndShared(t *testing.T) {
	// shared[tid] = tid; barrier; out[tid] = shared[blockDim-1-tid].
	const block = 128
	b := ptx.NewBuilder("reverse")
	b.Param("out", ptx.U64)
	b.SharedArray("buf", 4*block)
	po := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, po, "out")
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	sbase := b.Reg(ptx.U32)
	b.Mov(ptx.U32, sbase, ptx.Sym("buf"))
	wAddr := b.Reg(ptx.U32)
	b.Mad(ptx.U32, wAddr, ptx.R(tid), ptx.Imm(4), ptx.R(sbase))
	b.St(ptx.SpaceShared, ptx.U32, ptx.MemReg(wAddr, 0), ptx.R(tid))
	b.Bar()
	rev := b.Reg(ptx.U32)
	b.Sub(ptx.U32, rev, ptx.Imm(block-1), ptx.R(tid))
	rAddr := b.Reg(ptx.U32)
	b.Mad(ptx.U32, rAddr, ptx.R(rev), ptx.Imm(4), ptx.R(sbase))
	v := b.Reg(ptx.U32)
	b.Ld(ptx.SpaceShared, ptx.U32, v, ptx.MemReg(rAddr, 0))
	gidx := b.GlobalIndex()
	oA := b.AddrOf(po, gidx, 4)
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(oA, 0), ptx.R(v))
	b.Exit()

	mem := NewMemory()
	out := mem.Alloc(4 * block * 2)
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: b.Kernel(), Grid: 2, Block: block, Params: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2*block; g++ {
		tid := g % block
		want := uint32(block - 1 - tid)
		if got := mem.ReadUint32(out + uint64(4*g)); got != want {
			t.Fatalf("out[%d] = %d, want %d", g, got, want)
		}
	}
	if st.SharedLoads == 0 || st.SharedStores == 0 {
		t.Error("no shared traffic recorded")
	}
}

func TestBarrierStallsOnSlowWarp(t *testing.T) {
	// Warp 0 runs a long loop before the barrier; warp 1 reaches it
	// immediately and must stall until warp 0 arrives.
	b := ptx.NewBuilder("asym")
	b.Param("out", ptx.U64)
	po := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, po, "out")
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	p := b.Reg(ptx.Pred)
	b.Setp(ptx.CmpGe, ptx.U32, p, ptx.R(tid), ptx.Imm(32))
	b.BraIf(p, false, "SYNC") // warp 1 skips the loop
	i := b.Reg(ptx.U32)
	q := b.Reg(ptx.Pred)
	b.Mov(ptx.U32, i, ptx.Imm(0))
	b.Label("SPIN").Setp(ptx.CmpGe, ptx.U32, q, ptx.R(i), ptx.Imm(200))
	b.BraIf(q, false, "SYNC")
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Bra("SPIN")
	b.Label("SYNC").Bar()
	gidx := b.GlobalIndex()
	oA := b.AddrOf(po, gidx, 4)
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(oA, 0), ptx.R(tid))
	b.Exit()

	mem := NewMemory()
	out := mem.Alloc(4 * 64)
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 64, Params: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.StallBarrier == 0 {
		t.Error("no barrier stalls despite asymmetric arrival")
	}
	for i := 0; i < 64; i++ {
		if got := mem.ReadUint32(out + uint64(4*i)); got != uint32(i) {
			t.Fatalf("out[%d] = %d", i, got)
		}
	}
}

// tightestSpillingBudget returns the smallest feasible register budget that
// still produces spills for k, scanning down from MaxReg.
func tightestSpillingBudget(t *testing.T, k *ptx.Kernel) (int, *regalloc.Result) {
	t.Helper()
	max, err := regalloc.MaxReg(k)
	if err != nil {
		t.Fatal(err)
	}
	var best *regalloc.Result
	budget := 0
	for bud := max; bud >= 4; bud-- {
		r, err := regalloc.Allocate(k, regalloc.Options{Regs: bud})
		if err != nil {
			break
		}
		best = r
		budget = bud
	}
	if best == nil || len(best.Spills) == 0 {
		t.Fatal("no feasible spilling budget found")
	}
	return budget, best
}

// tiledKernel builds a cache-sensitivity probe: each block repeatedly sweeps
// a private wsWords-word window of `data`, so the per-block working set is
// wsWords*4 bytes and aggregate L1 pressure scales with TLP.
func tiledKernel(wsWords, sweeps, block int) *ptx.Kernel {
	b := ptx.NewBuilder("tiled")
	b.Param("data", ptx.U64).Param("out", ptx.U64)
	pd, po := b.Reg(ptx.U64), b.Reg(ptx.U64)
	b.LdParam(ptx.U64, pd, "data").LdParam(ptx.U64, po, "out")
	tid := b.Reg(ptx.U32)
	ctaid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	b.MovSpec(ctaid, ptx.SpecCtaIdX)
	base := b.Reg(ptx.U32)
	b.Mul(ptx.U32, base, ptx.R(ctaid), ptx.Imm(int64(wsWords)))

	acc := b.Reg(ptx.F32)
	b.Mov(ptx.F32, acc, ptx.FImm(0))
	it := b.Reg(ptx.U32)
	k := b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	q := b.Reg(ptx.Pred)
	b.Mov(ptx.U32, it, ptx.Imm(0))
	b.Label("OUTER").Setp(ptx.CmpGe, ptx.U32, p, ptx.R(it), ptx.Imm(int64(sweeps)))
	b.BraIf(p, false, "END")
	b.Mov(ptx.U32, k, ptx.Imm(0))
	b.Label("INNER").Setp(ptx.CmpGe, ptx.U32, q, ptx.R(k), ptx.Imm(int64(wsWords/32)))
	b.BraIf(q, false, "AFTER")
	// idx = base + ((tid + 32*k) & (wsWords-1))
	off := b.Reg(ptx.U32)
	b.Mad(ptx.U32, off, ptx.R(k), ptx.Imm(32), ptx.R(tid))
	b.And(ptx.U32, off, ptx.R(off), ptx.Imm(int64(wsWords-1)))
	idx := b.Reg(ptx.U32)
	b.Add(ptx.U32, idx, ptx.R(base), ptx.R(off))
	addr := b.AddrOf(pd, idx, 4)
	v := b.Reg(ptx.F32)
	b.Ld(ptx.SpaceGlobal, ptx.F32, v, ptx.MemReg(addr, 0))
	b.Add(ptx.F32, acc, ptx.R(acc), ptx.R(v))
	b.Add(ptx.U32, k, ptx.R(k), ptx.Imm(1))
	b.Bra("INNER")
	b.Label("AFTER").Add(ptx.U32, it, ptx.R(it), ptx.Imm(1))
	b.Bra("OUTER")
	b.Label("END")
	gidx := b.GlobalIndex()
	oA := b.AddrOf(po, gidx, 4)
	b.St(ptx.SpaceGlobal, ptx.F32, ptx.MemReg(oA, 0), ptx.R(acc))
	b.Exit()
	return b.Kernel()
}

func runTiled(t *testing.T, tlp int) Stats {
	t.Helper()
	const wsWords, sweeps, block, grid = 2048, 6, 64, 16
	mem := NewMemory()
	data := mem.Alloc(4 * wsWords * grid)
	out := mem.Alloc(4 * block * grid)
	for i := 0; i < wsWords*grid; i++ {
		mem.WriteFloat32(data+uint64(4*i), 1.0)
	}
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: tiledKernel(wsWords, sweeps, block),
		Grid:   grid, Block: block,
		Params:   []uint64{data, out},
		TLPLimit: tlp,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: every thread summed wsWords/32*sweeps ones.
	want := float32((wsWords / 32) * sweeps)
	if got := mem.ReadFloat32(out); got != want {
		t.Fatalf("tlp=%d: out[0] = %v, want %v", tlp, got, want)
	}
	return st
}

func TestThrottlingImprovesCacheBehaviour(t *testing.T) {
	// Working set 8KB/block against a 32KB L1: 8 blocks thrash, 2 fit.
	high := runTiled(t, 8)
	low := runTiled(t, 2)
	if low.L1HitRate() <= high.L1HitRate() {
		t.Errorf("throttling did not improve hit rate: tlp2=%.3f tlp8=%.3f",
			low.L1HitRate(), high.L1HitRate())
	}
	if high.ConcurrentBlocks != 8 || low.ConcurrentBlocks != 2 {
		t.Errorf("TLPs = %d/%d, want 8/2", high.ConcurrentBlocks, low.ConcurrentBlocks)
	}
}

func TestCongestionStallsUnderStreaming(t *testing.T) {
	// A pure streaming load pattern with a large grid produces misses that
	// exhaust MSHRs, which must surface as congestion stalls.
	st := runTiled(t, 8)
	if st.StallCongestion == 0 {
		t.Error("no congestion stalls recorded under heavy miss traffic")
	}
	if st.L1Misses == 0 || st.DRAMBytes == 0 {
		t.Error("no misses / DRAM traffic recorded")
	}
}

func TestOccupancy(t *testing.T) {
	c := FermiConfig()
	cases := []struct {
		regs  int
		shm   int64
		block int
		want  int
	}{
		{32, 0, 192, 5},         // register-limited: 32768/(32*192)=5.33
		{21, 0, 256, 6},         // thread-limited: 1536/256=6
		{16, 0, 64, 8},          // block-limited: 8
		{20, 24 * 1024, 128, 2}, // shared-limited: 48K/24K
		{200, 0, 512, 0},        // does not fit: 200*512 > 32768
		{63, 0, 256, 2},         // 32768/16128=2.03
	}
	for _, tc := range cases {
		if got := c.Occupancy(tc.regs, tc.shm, tc.block); got != tc.want {
			t.Errorf("Occupancy(regs=%d shm=%d block=%d) = %d, want %d",
				tc.regs, tc.shm, tc.block, got, tc.want)
		}
	}
	if got := c.MinReg(); got != 21 {
		t.Errorf("MinReg = %d, want 21", got)
	}
	k := KeplerConfig()
	if got := k.MinReg(); got != 32 {
		t.Errorf("Kepler MinReg = %d, want 32", got)
	}
	if got := k.Occupancy(32, 0, 256); got != 8 {
		t.Errorf("Kepler Occupancy = %d, want 8 (2048/256)", got)
	}
}

func TestAllocatedKernelEquivalence(t *testing.T) {
	// The paper validates that executions with and without register
	// allocation are consistent (§5.2). Run the same launch on the virtual
	// kernel, a tightly allocated kernel (with spills), and a spill-to-
	// shared optimized kernel; all outputs must match.
	k := tiledKernel(512, 2, 64)
	budget, alloc := tightestSpillingBudget(t, k)
	opt, err := spillopt.Optimize(alloc, regalloc.Options{Regs: budget}, spillopt.Options{
		SpareShmBytes: 16 * 1024,
		BlockSize:     64,
	})
	if err != nil {
		t.Fatal(err)
	}

	run := func(kern *ptx.Kernel) []uint32 {
		const grid, block, wsWords = 4, 64, 512
		mem := NewMemory()
		data := mem.Alloc(4 * wsWords * grid)
		out := mem.Alloc(4 * block * grid)
		for i := 0; i < wsWords*grid; i++ {
			mem.WriteFloat32(data+uint64(4*i), float32(i%7))
		}
		sim, err := NewSimulator(FermiConfig(), mem, Launch{
			Kernel: kern, Grid: grid, Block: block,
			Params: []uint64{data, out},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		res := make([]uint32, block*grid)
		for i := range res {
			res[i] = mem.ReadUint32(out + uint64(4*i))
		}
		return res
	}

	ref := run(k)
	got := run(alloc.Kernel)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("allocated kernel diverges at %d: %x vs %x", i, got[i], ref[i])
		}
	}
	got2 := run(opt.Alloc.Kernel)
	for i := range ref {
		if ref[i] != got2[i] {
			t.Fatalf("spill-optimized kernel diverges at %d: %x vs %x", i, got2[i], ref[i])
		}
	}
	if opt.Overhead.Shareds() > 0 {
		// Shared spills must have produced dynamic shared traffic.
		// (Checked through a fresh run's stats.)
		mem := NewMemory()
		data := mem.Alloc(4 * 512 * 4)
		out := mem.Alloc(4 * 64 * 4)
		sim, _ := NewSimulator(FermiConfig(), mem, Launch{
			Kernel: opt.Alloc.Kernel, Grid: 4, Block: 64,
			Params: []uint64{data, out},
		})
		st, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if st.SpillSharedOps == 0 {
			t.Error("no dynamic shared spill ops despite shared sub-stacks")
		}
	}
}

func TestSpilledKernelCountsLocalOps(t *testing.T) {
	k := tiledKernel(512, 2, 64)
	_, alloc := tightestSpillingBudget(t, k)
	mem := NewMemory()
	data := mem.Alloc(4 * 512 * 2)
	out := mem.Alloc(4 * 64 * 2)
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: alloc.Kernel, Grid: 2, Block: 64,
		Params: []uint64{data, out},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.LocalOps() == 0 || st.SpillLocalOps == 0 {
		t.Errorf("local ops = %d, spill ops = %d; want both > 0", st.LocalOps(), st.SpillLocalOps)
	}
}

func TestSchedulerPolicies(t *testing.T) {
	for _, pol := range []SchedPolicy{SchedGTO, SchedLRR} {
		cfg := FermiConfig()
		cfg.Scheduler = pol
		mem := NewMemory()
		const n = 256
		a := mem.Alloc(4 * n)
		bb := mem.Alloc(4 * n)
		out := mem.Alloc(4 * n)
		for i := 0; i < n; i++ {
			mem.WriteUint32(a+uint64(4*i), uint32(i))
			mem.WriteUint32(bb+uint64(4*i), uint32(i))
		}
		sim, err := NewSimulator(cfg, mem, Launch{
			Kernel: buildVecAdd(), Grid: 4, Block: 64,
			Params: []uint64{a, bb, out, n},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if got := mem.ReadUint32(out + 4*10); got != 20 {
			t.Errorf("%v: wrong result %d", pol, got)
		}
	}
}

func TestPartialWarp(t *testing.T) {
	mem := NewMemory()
	const n = 48 // 1.5 warps
	a := mem.Alloc(4 * n)
	bb := mem.Alloc(4 * n)
	out := mem.Alloc(4 * n)
	for i := 0; i < n; i++ {
		mem.WriteUint32(a+uint64(4*i), 7)
		mem.WriteUint32(bb+uint64(4*i), uint32(i))
	}
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: buildVecAdd(), Grid: 1, Block: 48,
		Params: []uint64{a, bb, out, n},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := mem.ReadUint32(out + uint64(4*i)); got != uint32(7+i) {
			t.Fatalf("out[%d] = %d, want %d", i, got, 7+i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := runTiled(t, 4)
	b := runTiled(t, 4)
	if a.Cycles != b.Cycles || a.L1Hits != b.L1Hits || a.WarpInsts != b.WarpInsts {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestMeasureCosts(t *testing.T) {
	c, err := MeasureCosts(FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.Shared <= 0 || c.Local <= 0 {
		t.Fatalf("non-positive costs: %+v", c)
	}
	// Local (through L1, hit latency 34) must cost more than shared (26).
	if c.Local <= c.Shared {
		t.Errorf("local cost %.1f should exceed shared cost %.1f", c.Local, c.Shared)
	}
	// Both should be within a factor of ~2 of the configured latencies.
	cfg := FermiConfig()
	if c.Shared < float64(cfg.SharedLat)/2 || c.Shared > float64(cfg.SharedLat)*2 {
		t.Errorf("shared cost %.1f far from configured %d", c.Shared, cfg.SharedLat)
	}
}

func TestEnergyModel(t *testing.T) {
	m := DefaultEnergyModel()
	cfg := FermiConfig()
	low := runTiled(t, 2)
	high := runTiled(t, 8)
	eLow := m.Energy(cfg, low)
	eHigh := m.Energy(cfg, high)
	if eLow <= 0 || eHigh <= 0 {
		t.Fatalf("non-positive energy: %v %v", eLow, eHigh)
	}
	// The thrashing configuration moves more DRAM bytes; with comparable
	// work its energy must be at least the cache-friendly one's.
	if high.DRAMBytes <= low.DRAMBytes {
		t.Errorf("DRAM bytes: tlp8=%d should exceed tlp2=%d", high.DRAMBytes, low.DRAMBytes)
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	addr := m.Alloc(64)
	m.WriteUint32(addr, 0xdeadbeef)
	if got := m.ReadUint32(addr); got != 0xdeadbeef {
		t.Errorf("u32 roundtrip: %x", got)
	}
	m.WriteUint64(addr+8, 0x1122334455667788)
	if got := m.ReadUint64(addr + 8); got != 0x1122334455667788 {
		t.Errorf("u64 roundtrip: %x", got)
	}
	m.WriteFloat32(addr+16, 3.25)
	if got := m.ReadFloat32(addr + 16); got != 3.25 {
		t.Errorf("f32 roundtrip: %v", got)
	}
	m.WriteFloat64(addr+24, -1.5e300)
	if got := m.ReadFloat64(addr + 24); got != -1.5e300 {
		t.Errorf("f64 roundtrip: %v", got)
	}
	// Cross-page write.
	edge := uint64(pageSize - 2)
	m.WriteUint32(edge, 0xa1b2c3d4)
	if got := m.ReadUint32(edge); got != 0xa1b2c3d4 {
		t.Errorf("cross-page roundtrip: %x", got)
	}
}

func TestCacheLRUAndMSHR(t *testing.T) {
	c := newCache(CacheConfig{SizeBytes: 1024, Assoc: 2, LineBytes: 128, MSHRs: 2})
	// 4 sets; lines 0, 4, 8 map to set 0.
	c.access(0, 0, 10)
	c.access(4, 1, 10)
	if c.freeMSHRs() != 0 {
		t.Errorf("freeMSHRs = %d, want 0", c.freeMSHRs())
	}
	c.expire(10)
	if c.freeMSHRs() != 2 {
		t.Errorf("after expire freeMSHRs = %d, want 2", c.freeMSHRs())
	}
	if hit, _ := c.probe(0); !hit {
		t.Error("line 0 should be resident")
	}
	// Touch 0 (refresh LRU), insert 8: must evict 4.
	c.access(0, 11, 0)
	c.access(8, 12, 20)
	c.expire(20)
	if hit, _ := c.probe(4); hit {
		t.Error("line 4 should have been evicted (LRU)")
	}
	if hit, _ := c.probe(0); !hit {
		t.Error("line 0 should have survived (recently used)")
	}
	// Merge: miss on an in-flight line shares the MSHR.
	c.access(12, 21, 40)
	before := len(c.inflight)
	_, ready := c.access(12, 22, 99)
	if len(c.inflight) != before || ready != 40 {
		t.Errorf("MSHR merge failed: inflight=%d ready=%d", len(c.inflight), ready)
	}
	// Write-evict.
	c.evict(0)
	if hit, _ := c.probe(0); hit {
		t.Error("line 0 should be evicted")
	}
}

func TestExtraSharedThrottlesTLP(t *testing.T) {
	// The paper's Figure 2 methodology: a dummy shared array reduces TLP.
	mem := NewMemory()
	const n = 256
	a := mem.Alloc(4 * n)
	bb := mem.Alloc(4 * n)
	out := mem.Alloc(4 * n)
	sim, err := NewSimulator(FermiConfig(), mem, Launch{
		Kernel: buildVecAdd(), Grid: 8, Block: 64,
		Params:           []uint64{a, bb, out, n},
		ExtraSharedBytes: 20 * 1024, // 48KB/20KB -> 2 blocks
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ConcurrentBlocks != 2 {
		t.Errorf("ConcurrentBlocks = %d, want 2", st.ConcurrentBlocks)
	}
}
