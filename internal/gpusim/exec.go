package gpusim

import (
	"fmt"
	"math"

	"crat/internal/ptx"
)

// Register values are stored as raw uint64 bit patterns; the instruction
// type selects the interpretation, matching PTX's untyped register file
// semantics.

func f32bits(v float32) uint64 { return uint64(math.Float32bits(v)) }
func bitsF32(b uint64) float32 { return math.Float32frombits(uint32(b)) }
func f64bits(v float64) uint64 { return math.Float64bits(v) }
func bitsF64(b uint64) float64 { return math.Float64frombits(b) }

// truncate masks v to the width of t.
func truncate(v uint64, t ptx.Type) uint64 {
	switch t.Bits() {
	case 8:
		return v & 0xff
	case 16:
		return v & 0xffff
	case 32:
		return v & 0xffffffff
	default:
		return v
	}
}

// signExtend interprets the low bits of v as a signed integer of t's width.
func signExtend(v uint64, t ptx.Type) int64 {
	switch t.Bits() {
	case 8:
		return int64(int8(v))
	case 16:
		return int64(int16(v))
	case 32:
		return int64(int32(v))
	default:
		return int64(v)
	}
}

// immBits encodes an immediate operand into the raw representation of t.
func immBits(o ptx.Operand, t ptx.Type) uint64 {
	if o.Kind == ptx.OperandFImm {
		if t == ptx.F64 {
			return f64bits(o.FImm)
		}
		return f32bits(float32(o.FImm))
	}
	// Integer immediate: also usable by float ops as a converted constant.
	if t == ptx.F32 {
		return f32bits(float32(o.Imm))
	}
	if t == ptx.F64 {
		return f64bits(float64(o.Imm))
	}
	return truncate(uint64(o.Imm), t)
}

// alu computes a two- or three-operand arithmetic/logic instruction on raw
// values a, b, c interpreted at type t. Integer division by zero yields
// all-ones (matching NVIDIA hardware behaviour rather than trapping).
func alu(op ptx.Opcode, t ptx.Type, a, b, c uint64) (uint64, error) {
	if t.IsFloat() {
		return aluFloat(op, t, a, b, c)
	}
	return aluInt(op, t, a, b, c)
}

func aluInt(op ptx.Opcode, t ptx.Type, a, b, c uint64) (uint64, error) {
	signed := t.IsSigned()
	switch op {
	case ptx.OpAdd:
		return truncate(a+b, t), nil
	case ptx.OpSub:
		return truncate(a-b, t), nil
	case ptx.OpMul:
		return truncate(a*b, t), nil
	case ptx.OpMad:
		return truncate(a*b+c, t), nil
	case ptx.OpDiv:
		if truncate(b, t) == 0 {
			return truncate(^uint64(0), t), nil
		}
		if signed {
			return truncate(uint64(signExtend(a, t)/signExtend(b, t)), t), nil
		}
		return truncate(truncate(a, t)/truncate(b, t), t), nil
	case ptx.OpRem:
		if truncate(b, t) == 0 {
			return truncate(^uint64(0), t), nil
		}
		if signed {
			return truncate(uint64(signExtend(a, t)%signExtend(b, t)), t), nil
		}
		return truncate(truncate(a, t)%truncate(b, t), t), nil
	case ptx.OpMin:
		if signed {
			if signExtend(a, t) < signExtend(b, t) {
				return truncate(a, t), nil
			}
			return truncate(b, t), nil
		}
		if truncate(a, t) < truncate(b, t) {
			return truncate(a, t), nil
		}
		return truncate(b, t), nil
	case ptx.OpMax:
		if signed {
			if signExtend(a, t) > signExtend(b, t) {
				return truncate(a, t), nil
			}
			return truncate(b, t), nil
		}
		if truncate(a, t) > truncate(b, t) {
			return truncate(a, t), nil
		}
		return truncate(b, t), nil
	case ptx.OpAbs:
		if signed && signExtend(a, t) < 0 {
			return truncate(uint64(-signExtend(a, t)), t), nil
		}
		return truncate(a, t), nil
	case ptx.OpNeg:
		return truncate(uint64(-signExtend(a, t)), t), nil
	case ptx.OpAnd:
		return truncate(a&b, t), nil
	case ptx.OpOr:
		return truncate(a|b, t), nil
	case ptx.OpXor:
		return truncate(a^b, t), nil
	case ptx.OpNot:
		return truncate(^a, t), nil
	case ptx.OpShl:
		return truncate(a<<(b&63), t), nil
	case ptx.OpShr:
		if signed {
			return truncate(uint64(signExtend(a, t)>>(b&63)), t), nil
		}
		return truncate(truncate(a, t)>>(b&63), t), nil
	case ptx.OpMov:
		return truncate(a, t), nil
	}
	return 0, fmt.Errorf("gpusim: integer op %v unsupported", op)
}

func aluFloat(op ptx.Opcode, t ptx.Type, a, b, c uint64) (uint64, error) {
	if t == ptx.F32 {
		fa, fb, fc := bitsF32(a), bitsF32(b), bitsF32(c)
		var r float32
		switch op {
		case ptx.OpAdd:
			r = fa + fb
		case ptx.OpSub:
			r = fa - fb
		case ptx.OpMul:
			r = fa * fb
		case ptx.OpMad:
			r = fa*fb + fc
		case ptx.OpDiv:
			r = fa / fb
		case ptx.OpMin:
			r = float32(math.Min(float64(fa), float64(fb)))
		case ptx.OpMax:
			r = float32(math.Max(float64(fa), float64(fb)))
		case ptx.OpAbs:
			r = float32(math.Abs(float64(fa)))
		case ptx.OpNeg:
			r = -fa
		case ptx.OpMov:
			r = fa
		case ptx.OpRcp:
			r = 1 / fa
		case ptx.OpSqrt:
			r = float32(math.Sqrt(float64(fa)))
		case ptx.OpRsqrt:
			r = float32(1 / math.Sqrt(float64(fa)))
		case ptx.OpSin:
			r = float32(math.Sin(float64(fa)))
		case ptx.OpCos:
			r = float32(math.Cos(float64(fa)))
		case ptx.OpLg2:
			r = float32(math.Log2(float64(fa)))
		case ptx.OpEx2:
			r = float32(math.Exp2(float64(fa)))
		default:
			return 0, fmt.Errorf("gpusim: f32 op %v unsupported", op)
		}
		return f32bits(r), nil
	}
	fa, fb, fc := bitsF64(a), bitsF64(b), bitsF64(c)
	var r float64
	switch op {
	case ptx.OpAdd:
		r = fa + fb
	case ptx.OpSub:
		r = fa - fb
	case ptx.OpMul:
		r = fa * fb
	case ptx.OpMad:
		r = fa*fb + fc
	case ptx.OpDiv:
		r = fa / fb
	case ptx.OpMin:
		r = math.Min(fa, fb)
	case ptx.OpMax:
		r = math.Max(fa, fb)
	case ptx.OpAbs:
		r = math.Abs(fa)
	case ptx.OpNeg:
		r = -fa
	case ptx.OpMov:
		r = fa
	case ptx.OpRcp:
		r = 1 / fa
	case ptx.OpSqrt:
		r = math.Sqrt(fa)
	case ptx.OpRsqrt:
		r = 1 / math.Sqrt(fa)
	case ptx.OpSin:
		r = math.Sin(fa)
	case ptx.OpCos:
		r = math.Cos(fa)
	case ptx.OpLg2:
		r = math.Log2(fa)
	case ptx.OpEx2:
		r = math.Exp2(fa)
	default:
		return 0, fmt.Errorf("gpusim: f64 op %v unsupported", op)
	}
	return f64bits(r), nil
}

// compare evaluates a setp comparison on raw values at type t. Unordered
// float comparisons (NaN operands) follow IEEE semantics: every ordered
// predicate is false, Ne is true.
func compare(cmp ptx.CmpOp, t ptx.Type, a, b uint64) (bool, error) {
	var lt, eq bool
	switch {
	case t.IsFloat():
		var fa, fb float64
		if t == ptx.F32 {
			fa, fb = float64(bitsF32(a)), float64(bitsF32(b))
		} else {
			fa, fb = bitsF64(a), bitsF64(b)
		}
		if math.IsNaN(fa) || math.IsNaN(fb) {
			return cmp == ptx.CmpNe, nil
		}
		lt, eq = fa < fb, fa == fb
	case t.IsSigned():
		sa, sb := signExtend(a, t), signExtend(b, t)
		lt, eq = sa < sb, sa == sb
	default:
		ua, ub := truncate(a, t), truncate(b, t)
		lt, eq = ua < ub, ua == ub
	}
	switch cmp {
	case ptx.CmpEq:
		return eq, nil
	case ptx.CmpNe:
		return !eq, nil
	case ptx.CmpLt:
		return lt, nil
	case ptx.CmpLe:
		return lt || eq, nil
	case ptx.CmpGt:
		return !lt && !eq, nil
	case ptx.CmpGe:
		return !lt, nil
	}
	return false, fmt.Errorf("gpusim: comparison %v unsupported", cmp)
}

// convert implements cvt.to.from on a raw value.
func convert(to, from ptx.Type, v uint64) (uint64, error) {
	switch {
	case from.IsFloat() && to.IsFloat():
		if from == to {
			return v, nil
		}
		if from == ptx.F32 {
			return f64bits(float64(bitsF32(v))), nil
		}
		return f32bits(float32(bitsF64(v))), nil
	case from.IsFloat() && !to.IsFloat():
		var f float64
		if from == ptx.F32 {
			f = float64(bitsF32(v))
		} else {
			f = bitsF64(v)
		}
		if to.IsSigned() {
			return truncate(uint64(int64(f)), to), nil
		}
		if f < 0 {
			f = 0
		}
		return truncate(uint64(f), to), nil
	case !from.IsFloat() && to.IsFloat():
		var f float64
		if from.IsSigned() {
			f = float64(signExtend(v, from))
		} else {
			f = float64(truncate(v, from))
		}
		if to == ptx.F32 {
			return f32bits(float32(f)), nil
		}
		return f64bits(f), nil
	default:
		if from.IsSigned() {
			return truncate(uint64(signExtend(v, from)), to), nil
		}
		return truncate(truncate(v, from), to), nil
	}
}
