package gpusim

import (
	"crat/internal/ptx"
	"crat/internal/sem"
)

// The functional semantics (ALU, comparisons, conversions, immediate
// encoding) live in internal/sem so the cycle-level simulator and the
// timing-free emulator (internal/emu) evaluate instructions identically.
// These unexported aliases keep the simulator's call sites and its
// white-box tests unchanged.

func f32bits(v float32) uint64 { return sem.F32Bits(v) }
func bitsF32(b uint64) float32 { return sem.BitsF32(b) }
func f64bits(v float64) uint64 { return sem.F64Bits(v) }
func bitsF64(b uint64) float64 { return sem.BitsF64(b) }

func truncate(v uint64, t ptx.Type) uint64     { return sem.Truncate(v, t) }
func signExtend(v uint64, t ptx.Type) int64    { return sem.SignExtend(v, t) }
func immBits(o ptx.Operand, t ptx.Type) uint64 { return sem.ImmBits(o, t) }

func alu(op ptx.Opcode, t ptx.Type, a, b, c uint64) (uint64, error) {
	return sem.ALU(op, t, a, b, c)
}

func compare(cmp ptx.CmpOp, t ptx.Type, a, b uint64) (bool, error) {
	return sem.Compare(cmp, t, a, b)
}

func convert(to, from ptx.Type, v uint64) (uint64, error) {
	return sem.Convert(to, from, v)
}
