package gpusim

import (
	"math"
	"math/bits"

	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/sem"
)

// A vecFn applies one ALU-class micro-op to a whole warp at once: d, a, b, c
// are 32-lane register planes (unused sources point at zeroPlane) and mask
// selects the executing lanes. The table below hand-specializes the common
// integer operations at their two register widths — mirroring internal/sem's
// formulas bit for bit — and routes everything else (floats, setp, cvt with a
// float endpoint, exotic widths) through sem itself so both execution engines
// share a single arithmetic definition. Lowering happens once per kernel in
// buildExecProgram, so picking a function here is free on the hot path. The
// bodies spell their lane loops out rather than sharing an iterator helper:
// an indirect call per lane would cost more than the arithmetic it wraps.
type vecFn func(d, a, b, c *[32]uint64, mask uint64)

// zeroPlane backs absent source slots: reads yield 0, exactly as the old
// per-lane operand switch defaulted missing operands.
var zeroPlane [32]uint64

// vecFnFor selects the evaluation kernel for an ALU-class micro-op. The
// micro-op is statically supported (MicroBad ops never reach here), so sem
// calls inside the returned functions cannot fail.
func vecFnFor(u *passes.MicroOp) vecFn {
	t := u.Type
	switch u.Op {
	case ptx.OpSetp:
		return vecSetp(u.Cmp, t)
	case ptx.OpSelp:
		return vecSelp
	case ptx.OpCvt:
		if !t.IsFloat() && !u.CvtFrom.IsFloat() {
			return vecCvtInt(t, u.CvtFrom)
		}
		return vecCvtSem(t, u.CvtFrom)
	}
	if !t.IsFloat() {
		switch t.Bits() {
		case 32:
			if fn := vecInt32(u.Op, t.IsSigned()); fn != nil {
				return fn
			}
		case 64:
			if fn := vecInt64(u.Op, t.IsSigned()); fn != nil {
				return fn
			}
		}
	} else if t == ptx.F32 {
		if fn := vecF32(u.Op); fn != nil {
			return fn
		}
	} else if t == ptx.F64 {
		if fn := vecF64(u.Op); fn != nil {
			return fn
		}
	}
	return vecGeneric(u.Op, t)
}

// vecGeneric is the catch-all: per-lane sem.ALU, one shared implementation
// with the emulator so float rounding is bit-identical across engines.
func vecGeneric(op ptx.Opcode, t ptx.Type) vecFn {
	return func(d, a, b, c *[32]uint64, mask uint64) {
		for m := mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			v, _ := sem.ALU(op, t, a[l], b[l], c[l])
			d[l] = v
		}
	}
}

// vecSetp evaluates a predicate-producing comparison per lane through
// sem.Compare (two small switches; the operand resolution that used to
// dominate is already gone).
func vecSetp(cmp ptx.CmpOp, t ptx.Type) vecFn {
	return func(d, a, b, c *[32]uint64, mask uint64) {
		for m := mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			ok, _ := sem.Compare(cmp, t, a[l], b[l])
			v := uint64(0)
			if ok {
				v = 1
			}
			d[l] = v
		}
	}
}

// vecSelp selects a or b on the predicate in c. The lane's reads complete
// before its write, so d aliasing a source plane is safe.
func vecSelp(d, a, b, c *[32]uint64, mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		if c[l] != 0 {
			d[l] = a[l]
		} else {
			d[l] = b[l]
		}
	}
}

// vecCvtSem routes conversions with a float endpoint through sem.Convert.
func vecCvtSem(to, from ptx.Type) vecFn {
	return func(d, a, b, c *[32]uint64, mask uint64) {
		for m := mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			v, _ := sem.Convert(to, from, a[l])
			d[l] = v
		}
	}
}

// vecCvtInt specializes integer-to-integer conversion: sign- or zero-extend
// at the source width, then truncate at the destination width.
func vecCvtInt(to, from ptx.Type) vecFn {
	if from.IsSigned() {
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.Truncate(uint64(sem.SignExtend(a[l], from)), to)
			}
		}
	}
	return func(d, a, b, c *[32]uint64, mask uint64) {
		for m := mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			d[l] = sem.Truncate(sem.Truncate(a[l], from), to)
		}
	}
}

// vecInt32 hand-specializes 32-bit integer ops. Each body is sem's aluInt
// formula with Truncate/SignExtend constant-folded at 32 bits; nil means "no
// specialization, use the generic path".
func vecInt32(op ptx.Opcode, signed bool) vecFn {
	const m32 = uint64(0xffffffff)
	switch op {
	case ptx.OpAdd:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = (a[l] + b[l]) & m32
			}
		}
	case ptx.OpSub:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = (a[l] - b[l]) & m32
			}
		}
	case ptx.OpMul:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = (a[l] * b[l]) & m32
			}
		}
	case ptx.OpMad:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = (a[l]*b[l] + c[l]) & m32
			}
		}
	case ptx.OpDiv:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if b[l]&m32 == 0 {
						d[l] = m32
						continue
					}
					d[l] = uint64(int64(int32(a[l]))/int64(int32(b[l]))) & m32
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				if b[l]&m32 == 0 {
					d[l] = m32
					continue
				}
				d[l] = (a[l] & m32) / (b[l] & m32)
			}
		}
	case ptx.OpRem:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if b[l]&m32 == 0 {
						d[l] = m32
						continue
					}
					d[l] = uint64(int64(int32(a[l]))%int64(int32(b[l]))) & m32
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				if b[l]&m32 == 0 {
					d[l] = m32
					continue
				}
				d[l] = (a[l] & m32) % (b[l] & m32)
			}
		}
	case ptx.OpMin:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if int32(a[l]) < int32(b[l]) {
						d[l] = a[l] & m32
					} else {
						d[l] = b[l] & m32
					}
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = min(a[l]&m32, b[l]&m32)
			}
		}
	case ptx.OpMax:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if int32(a[l]) > int32(b[l]) {
						d[l] = a[l] & m32
					} else {
						d[l] = b[l] & m32
					}
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = max(a[l]&m32, b[l]&m32)
			}
		}
	case ptx.OpAbs:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if int32(a[l]) < 0 {
						d[l] = (-a[l]) & m32
					} else {
						d[l] = a[l] & m32
					}
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l] & m32
			}
		}
	case ptx.OpNeg:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = (-a[l]) & m32
			}
		}
	case ptx.OpAnd:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = (a[l] & b[l]) & m32
			}
		}
	case ptx.OpOr:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = (a[l] | b[l]) & m32
			}
		}
	case ptx.OpXor:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = (a[l] ^ b[l]) & m32
			}
		}
	case ptx.OpNot:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = ^a[l] & m32
			}
		}
	case ptx.OpShl:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = (a[l] << (b[l] & 63)) & m32
			}
		}
	case ptx.OpShr:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					d[l] = uint64(int64(int32(a[l]))>>(b[l]&63)) & m32
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = (a[l] & m32) >> (b[l] & 63)
			}
		}
	case ptx.OpMov:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l] & m32
			}
		}
	}
	return nil
}

// vecF32 hand-specializes f32 ops. Each body is the exact expression from
// sem's aluFloat — same operations in the same order — so results stay
// bit-identical with the emulator's per-lane sem calls. min/max/abs round
// through float64 like sem does (harmless for these ops, but kept verbatim).
func vecF32(op ptx.Opcode) vecFn {
	switch op {
	case ptx.OpAdd:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(sem.BitsF32(a[l]) + sem.BitsF32(b[l]))
			}
		}
	case ptx.OpSub:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(sem.BitsF32(a[l]) - sem.BitsF32(b[l]))
			}
		}
	case ptx.OpMul:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(sem.BitsF32(a[l]) * sem.BitsF32(b[l]))
			}
		}
	case ptx.OpMad:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(sem.BitsF32(a[l])*sem.BitsF32(b[l]) + sem.BitsF32(c[l]))
			}
		}
	case ptx.OpDiv:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(sem.BitsF32(a[l]) / sem.BitsF32(b[l]))
			}
		}
	case ptx.OpMin:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(float32(math.Min(float64(sem.BitsF32(a[l])), float64(sem.BitsF32(b[l])))))
			}
		}
	case ptx.OpMax:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(float32(math.Max(float64(sem.BitsF32(a[l])), float64(sem.BitsF32(b[l])))))
			}
		}
	case ptx.OpAbs:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(float32(math.Abs(float64(sem.BitsF32(a[l])))))
			}
		}
	case ptx.OpNeg:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(-sem.BitsF32(a[l]))
			}
		}
	case ptx.OpMov:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(sem.BitsF32(a[l]))
			}
		}
	case ptx.OpRcp:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(1 / sem.BitsF32(a[l]))
			}
		}
	case ptx.OpSqrt:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(float32(math.Sqrt(float64(sem.BitsF32(a[l])))))
			}
		}
	case ptx.OpRsqrt:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F32Bits(float32(1 / math.Sqrt(float64(sem.BitsF32(a[l])))))
			}
		}
	}
	return nil
}

// vecF64 hand-specializes f64 ops, mirroring sem's aluFloat f64 arm.
func vecF64(op ptx.Opcode) vecFn {
	switch op {
	case ptx.OpAdd:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F64Bits(sem.BitsF64(a[l]) + sem.BitsF64(b[l]))
			}
		}
	case ptx.OpSub:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F64Bits(sem.BitsF64(a[l]) - sem.BitsF64(b[l]))
			}
		}
	case ptx.OpMul:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F64Bits(sem.BitsF64(a[l]) * sem.BitsF64(b[l]))
			}
		}
	case ptx.OpMad:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F64Bits(sem.BitsF64(a[l])*sem.BitsF64(b[l]) + sem.BitsF64(c[l]))
			}
		}
	case ptx.OpDiv:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F64Bits(sem.BitsF64(a[l]) / sem.BitsF64(b[l]))
			}
		}
	case ptx.OpMin:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F64Bits(math.Min(sem.BitsF64(a[l]), sem.BitsF64(b[l])))
			}
		}
	case ptx.OpMax:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F64Bits(math.Max(sem.BitsF64(a[l]), sem.BitsF64(b[l])))
			}
		}
	case ptx.OpAbs:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F64Bits(math.Abs(sem.BitsF64(a[l])))
			}
		}
	case ptx.OpNeg:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F64Bits(-sem.BitsF64(a[l]))
			}
		}
	case ptx.OpMov:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l]
			}
		}
	case ptx.OpRcp:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F64Bits(1 / sem.BitsF64(a[l]))
			}
		}
	case ptx.OpSqrt:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = sem.F64Bits(math.Sqrt(sem.BitsF64(a[l])))
			}
		}
	}
	return nil
}

// vecInt64 hand-specializes 64-bit integer ops (Truncate at 64 bits is the
// identity).
func vecInt64(op ptx.Opcode, signed bool) vecFn {
	switch op {
	case ptx.OpAdd:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l] + b[l]
			}
		}
	case ptx.OpSub:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l] - b[l]
			}
		}
	case ptx.OpMul:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l] * b[l]
			}
		}
	case ptx.OpMad:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l]*b[l] + c[l]
			}
		}
	case ptx.OpDiv:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if b[l] == 0 {
						d[l] = ^uint64(0)
						continue
					}
					d[l] = uint64(int64(a[l]) / int64(b[l]))
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				if b[l] == 0 {
					d[l] = ^uint64(0)
					continue
				}
				d[l] = a[l] / b[l]
			}
		}
	case ptx.OpRem:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if b[l] == 0 {
						d[l] = ^uint64(0)
						continue
					}
					d[l] = uint64(int64(a[l]) % int64(b[l]))
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				if b[l] == 0 {
					d[l] = ^uint64(0)
					continue
				}
				d[l] = a[l] % b[l]
			}
		}
	case ptx.OpMin:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if int64(a[l]) < int64(b[l]) {
						d[l] = a[l]
					} else {
						d[l] = b[l]
					}
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = min(a[l], b[l])
			}
		}
	case ptx.OpMax:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if int64(a[l]) > int64(b[l]) {
						d[l] = a[l]
					} else {
						d[l] = b[l]
					}
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = max(a[l], b[l])
			}
		}
	case ptx.OpAbs:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if int64(a[l]) < 0 {
						d[l] = -a[l]
					} else {
						d[l] = a[l]
					}
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l]
			}
		}
	case ptx.OpNeg:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = -a[l]
			}
		}
	case ptx.OpAnd:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l] & b[l]
			}
		}
	case ptx.OpOr:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l] | b[l]
			}
		}
	case ptx.OpXor:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l] ^ b[l]
			}
		}
	case ptx.OpNot:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = ^a[l]
			}
		}
	case ptx.OpShl:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l] << (b[l] & 63)
			}
		}
	case ptx.OpShr:
		if signed {
			return func(d, a, b, c *[32]uint64, mask uint64) {
				for m := mask; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					d[l] = uint64(int64(a[l]) >> (b[l] & 63))
				}
			}
		}
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l] >> (b[l] & 63)
			}
		}
	case ptx.OpMov:
		return func(d, a, b, c *[32]uint64, mask uint64) {
			for m := mask; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d[l] = a[l]
			}
		}
	}
	return nil
}
