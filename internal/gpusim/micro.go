package gpusim

import (
	"fmt"

	"crat/internal/ptx"
)

// Costs holds per-access latencies measured on the simulated architecture
// through microbenchmarks, as the paper's TPSC model requires ("Cost_local
// and Cost_shm are measured on the target architecture through micro
// benchmarks", §6).
type Costs struct {
	Local  float64 // cycles per dependent local-memory access (L1-resident)
	Shared float64 // cycles per dependent shared-memory access
}

// chainKernel builds a single-warp dependent-access loop: iters iterations
// of a load whose result feeds the next address (space selects local or
// shared; SpaceNone builds the no-load control loop used to subtract loop
// overhead).
func chainKernel(space ptx.Space, iters int) *ptx.Kernel {
	b := ptx.NewBuilder("micro_" + space.String())
	b.Param("out", ptx.U64)
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "out")

	v := b.Reg(ptx.U32)
	i := b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	b.Mov(ptx.U32, v, ptx.Imm(0))
	b.Mov(ptx.U32, i, ptx.Imm(0))

	switch space {
	case ptx.SpaceLocal:
		b.LocalArray("chain", 64)
		base := b.Reg(ptx.U64)
		b.Mov(ptx.U64, base, ptx.Sym("chain"))
		b.St(ptx.SpaceLocal, ptx.U32, ptx.MemReg(base, 0), ptx.R(v))
		wide := b.Reg(ptx.U64)
		addr := b.Reg(ptx.U64)
		b.Label("LOOP").Cvt(ptx.U64, ptx.U32, wide, ptx.R(v))
		b.Add(ptx.U64, addr, ptx.R(base), ptx.R(wide))
		b.Ld(ptx.SpaceLocal, ptx.U32, v, ptx.MemReg(addr, 0))
	case ptx.SpaceShared:
		b.SharedArray("chain", 64)
		base := b.Reg(ptx.U32)
		b.Mov(ptx.U32, base, ptx.Sym("chain"))
		b.St(ptx.SpaceShared, ptx.U32, ptx.MemReg(base, 0), ptx.R(v))
		addr := b.Reg(ptx.U32)
		b.Label("LOOP").Add(ptx.U32, addr, ptx.R(base), ptx.R(v))
		b.Ld(ptx.SpaceShared, ptx.U32, v, ptx.MemReg(addr, 0))
	default:
		// Control loop: same shape, dependent ALU op instead of the load.
		b.Label("LOOP").Add(ptx.U32, v, ptx.R(v), ptx.Imm(0))
	}
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Setp(ptx.CmpLt, ptx.U32, p, ptx.R(i), ptx.Imm(int64(iters)))
	b.BraIf(p, false, "LOOP")
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(out, 0), ptx.R(v))
	b.Exit()
	return b.Kernel()
}

func runChain(cfg Config, space ptx.Space, iters int) (int64, error) {
	mem := NewMemory()
	outBuf := mem.Alloc(4)
	sim, err := NewSimulator(cfg, mem, Launch{
		Kernel: chainKernel(space, iters),
		Grid:   1,
		Block:  32,
		Params: []uint64{outBuf},
	})
	if err != nil {
		return 0, err
	}
	st, err := sim.Run()
	if err != nil {
		return 0, err
	}
	return st.Cycles, nil
}

// MeasureCosts runs the latency microbenchmarks on the given configuration
// and returns the per-access local and shared costs. The control loop's
// cycles are subtracted so only the access latency remains.
func MeasureCosts(cfg Config) (Costs, error) {
	const iters = 256
	baseline, err := runChain(cfg, ptx.SpaceNone, iters)
	if err != nil {
		return Costs{}, fmt.Errorf("gpusim: baseline microbench: %w", err)
	}
	local, err := runChain(cfg, ptx.SpaceLocal, iters)
	if err != nil {
		return Costs{}, fmt.Errorf("gpusim: local microbench: %w", err)
	}
	shared, err := runChain(cfg, ptx.SpaceShared, iters)
	if err != nil {
		return Costs{}, fmt.Errorf("gpusim: shared microbench: %w", err)
	}
	c := Costs{
		Local:  float64(local-baseline) / iters,
		Shared: float64(shared-baseline) / iters,
	}
	if c.Local < 1 {
		c.Local = 1
	}
	if c.Shared < 1 {
		c.Shared = 1
	}
	return c, nil
}
