package gpusim_test

import (
	"runtime"
	"testing"

	"crat/internal/gpusim"
	"crat/internal/workloads"
)

// TestHotLoopAllocs pins the execution hot path's allocation behaviour:
// once a launch is set up, stepping instructions must not allocate. Block
// contexts are arena-backed and recycled, micro-op programs are cached per
// kernel, and the tracing-off path carries no formatting, so steady-state
// allocations are bounded by the launch footprint (pages, block arenas) —
// not by the instruction count. A per-instruction allocation anywhere in
// execute/issue would push the ratio past 1 and fail loudly.
func TestHotLoopAllocs(t *testing.T) {
	arch := gpusim.FermiConfig()
	p, _ := workloads.ByAbbr("STM")
	app := p.App()

	build := func() (*gpusim.Simulator, *gpusim.Memory) {
		mem := gpusim.NewMemory()
		params := app.Setup(mem)
		sim, err := gpusim.NewSimulator(arch, mem, gpusim.Launch{
			Kernel: app.Kernel, Grid: app.Grid, Block: app.Block, Params: params,
		})
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		return sim, mem
	}

	// Warm the per-kernel analysis cache so the measured run pays only its
	// own costs.
	sim, _ := build()
	if _, err := sim.Run(); err != nil {
		t.Fatalf("warm-up run: %v", err)
	}

	sim, _ = build()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	stats, err := sim.Run()
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatalf("measured run: %v", err)
	}
	if stats.WarpInsts < 10_000 {
		t.Fatalf("workload too small to measure: %d warp-insts", stats.WarpInsts)
	}
	allocs := int64(after.Mallocs - before.Mallocs)
	ratio := float64(allocs) / float64(stats.WarpInsts)
	t.Logf("%d allocs over %d warp-insts (%.5f allocs/warp-inst)", allocs, stats.WarpInsts, ratio)
	if ratio > 0.01 {
		t.Errorf("hot loop allocates: %.5f allocs/warp-inst (limit 0.01) — a per-instruction allocation crept into execute/issue", ratio)
	}
}
