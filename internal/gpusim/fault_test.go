package gpusim

import (
	"errors"
	"strings"
	"testing"

	"crat/internal/ptx"
)

// runFault launches the kernel and requires Run to fail with a *Fault of
// the wanted kind.
func runFault(t *testing.T, cfg Config, launch Launch, want FaultKind) *Fault {
	t.Helper()
	sim, err := NewSimulator(cfg, NewMemory(), launch)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	_, err = sim.Run()
	if err == nil {
		t.Fatal("Run succeeded, want a fault")
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("Run error is %T, want *Fault: %v", err, err)
	}
	if f.Kind != want {
		t.Fatalf("fault kind = %s, want %s: %v", f.Kind, want, err)
	}
	return f
}

// TestFaultExec: an op/type combination the execution engine rejects
// (sin on an integer register) must surface as a structured exec fault,
// not a panic.
func TestFaultExec(t *testing.T) {
	b := ptx.NewBuilder("badexec")
	b.Param("out", ptx.U64)
	r := b.Reg(ptx.U32)
	b.Sfu(ptx.OpSin, ptx.U32, r, ptx.Imm(1))
	b.Exit()
	k := b.Kernel()
	if err := ptx.Verify(k, "test"); err != nil {
		t.Fatalf("kernel must pass static verification to reach execution: %v", err)
	}
	f := runFault(t, FermiConfig(), Launch{
		Kernel: k, Grid: 1, Block: 32, Params: []uint64{0},
	}, FaultExec)
	if f.Kernel != "badexec" || f.PC != 0 || f.Warp < 0 || f.Err == nil {
		t.Errorf("fault metadata incomplete: %+v", f)
	}
	if !strings.Contains(f.Error(), "sin") {
		t.Errorf("fault %q does not name the instruction", f.Error())
	}
}

// TestFaultNullGlobal: a global access through a zero/near-zero pointer
// lands in the reserved null page.
func TestFaultNullGlobal(t *testing.T) {
	b := ptx.NewBuilder("nullptr")
	b.Param("out", ptx.U64)
	addr := b.Reg(ptx.U64)
	v := b.Reg(ptx.U32)
	b.Mov(ptx.U64, addr, ptx.Imm(8)) // inside the null page
	b.Mov(ptx.U32, v, ptx.Imm(42))
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(addr, 0), ptx.R(v))
	b.Exit()
	f := runFault(t, FermiConfig(), Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 32, Params: []uint64{0},
	}, FaultNullGlobal)
	if f.Addr >= nullPageBytes {
		t.Errorf("fault addr %#x not inside the null page", f.Addr)
	}
	if f.Cycle <= 0 || f.PC < 0 {
		t.Errorf("fault metadata incomplete: %+v", f)
	}
}

// TestFaultBarrierDeadlock (whitebox): force every live warp into the
// at-barrier state with no arrivals pending; the idle watchdog must
// diagnose the deadlock within its 64-cycle probe window instead of
// spinning to MaxCycles.
func TestFaultBarrierDeadlock(t *testing.T) {
	b := ptx.NewBuilder("deadlock")
	b.Param("out", ptx.U64)
	b.Bar()
	b.Exit()
	cfg := FermiConfig()
	sim, err := NewSimulator(cfg, NewMemory(), Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 64, Params: []uint64{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Make every warp resident, then corrupt the barrier accounting the way
	// a broken transformation would: all warps waiting, none counted.
	for sim.nextBlock < sim.launch.Grid && len(sim.blocks) < sim.maxConc {
		sim.launchBlock()
	}
	for _, w := range sim.warps {
		w.barrier = true
		w.block.arrived = 0
	}
	_, err = sim.Run()
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultBarrierDeadlock {
		t.Fatalf("got %v, want a barrier-deadlock fault", err)
	}
	if sim.now > 200 {
		t.Errorf("deadlock detected only at cycle %d; the probe should fire within ~64 idle cycles", sim.now)
	}
	if len(f.Warps) == 0 {
		t.Error("deadlock fault carries no warp states")
	}
	for _, ws := range f.Warps {
		if !ws.AtBarrier {
			t.Errorf("warp %d snapshot not at-barrier: %+v", ws.Warp, ws)
		}
	}
	if !strings.Contains(f.Error(), "at-barrier") {
		t.Errorf("fault message lacks per-warp barrier status:\n%s", f.Error())
	}
}

// TestFaultWatchdogStall (whitebox): corrupt the scoreboard so no warp can
// ever issue; the stall watchdog must abort after StallWindow idle cycles.
func TestFaultWatchdogStall(t *testing.T) {
	b := ptx.NewBuilder("wedged")
	b.Param("out", ptx.U64)
	po := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, po, "out")
	b.Exit()
	cfg := FermiConfig()
	cfg.StallWindow = 256
	sim, err := NewSimulator(cfg, NewMemory(), Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 64, Params: []uint64{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for sim.nextBlock < sim.launch.Grid && len(sim.blocks) < sim.maxConc {
		sim.launchBlock()
	}
	for _, w := range sim.warps {
		for r := range w.regReady {
			w.regReady[r] = (1 << 60) << 1 // never ready, not memory-pending (packed)
		}
	}
	_, err = sim.Run()
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultWatchdogStall {
		t.Fatalf("got %v, want a watchdog-stall fault", err)
	}
	if sim.now > 10*256 {
		t.Errorf("stall detected only at cycle %d with StallWindow=256", sim.now)
	}
	if len(f.Warps) == 0 {
		t.Error("stall fault carries no warp states")
	}
	msg := f.Error()
	for _, want := range []string{"pc=", "stall="} {
		if !strings.Contains(msg, want) {
			t.Errorf("stall fault message lacks %q:\n%s", want, msg)
		}
	}
}

// TestFaultLivelock: an infinite loop that keeps issuing must trip the
// cycle cap and report per-warp state (pc, stall reason).
func TestFaultLivelock(t *testing.T) {
	b := ptx.NewBuilder("spin")
	b.Param("out", ptx.U64)
	r := b.Reg(ptx.U32)
	b.Label("LOOP").Add(ptx.U32, r, ptx.R(r), ptx.Imm(1))
	b.Bra("LOOP")
	cfg := FermiConfig()
	cfg.MaxCycles = 10_000
	f := runFault(t, cfg, Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 32, Params: []uint64{0},
	}, FaultLivelock)
	if len(f.Warps) == 0 {
		t.Fatal("livelock fault carries no warp states")
	}
	msg := f.Error()
	for _, want := range []string{"exceeded 10000 cycles", "warp states:", "pc=", "stall="} {
		if !strings.Contains(msg, want) {
			t.Errorf("livelock message lacks %q:\n%s", want, msg)
		}
	}
}

// TestFaultFirstWins: once a fault is recorded, later setFault calls must
// not overwrite it.
func TestFaultFirstWins(t *testing.T) {
	b := ptx.NewBuilder("fw")
	b.Exit()
	sim, err := NewSimulator(FermiConfig(), NewMemory(), Launch{
		Kernel: b.Kernel(), Grid: 1, Block: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.setFault(&Fault{Kind: FaultExec, PC: -1, Warp: 1, Block: -1, Lane: -1})
	sim.setFault(&Fault{Kind: FaultLivelock, PC: -1, Warp: 2, Block: -1, Lane: -1})
	if sim.fault.Kind != FaultExec || sim.fault.Warp != 1 {
		t.Errorf("first fault overwritten: %+v", sim.fault)
	}
}

// TestFaultKindStrings pins the taxonomy names used in logs and docs.
func TestFaultKindStrings(t *testing.T) {
	want := map[FaultKind]string{
		FaultExec:            "exec-fault",
		FaultMemOOB:          "mem-out-of-bounds",
		FaultNullGlobal:      "null-global-access",
		FaultBarrierDeadlock: "barrier-deadlock",
		FaultWatchdogStall:   "watchdog-stall",
		FaultLivelock:        "livelock",
		FaultTimeout:         "deadline-timeout",
		FaultCanceled:        "canceled",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("FaultKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
