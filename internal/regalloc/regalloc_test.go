package regalloc

import (
	"testing"

	"crat/internal/ptx"
)

// paperKernel builds the thread-identifier kernel of paper Listing 2:
// five virtual registers, colorable into three (paper Listing 3).
func paperKernel() *ptx.Kernel {
	b := ptx.NewBuilder("kernel")
	b.Param("output", ptx.U64)
	r0, r1, r2, r3, r4 := b.Reg(ptx.U32), b.Reg(ptx.U32), b.Reg(ptx.U32), b.Reg(ptx.U32), b.Reg(ptx.U32)
	b.MovSpec(r0, ptx.SpecTidX)
	b.MovSpec(r1, ptx.SpecCtaIdX)
	b.MovSpec(r2, ptx.SpecNTidX)
	b.Mul(ptx.U32, r3, ptx.R(r2), ptx.R(r1))
	b.Add(ptx.U32, r4, ptx.R(r0), ptx.R(r3))
	// Store the result so r4 is not dead.
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "output")
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(out, 0), ptx.R(r4))
	b.Exit()
	return b.Kernel()
}

// pressureKernel builds a kernel with `live` simultaneously live
// accumulators, so MaxReg is roughly live+overhead.
func pressureKernel(live int) *ptx.Kernel {
	b := ptx.NewBuilder("pressure")
	b.Param("out", ptx.U64)
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "out")
	regs := b.Regs(ptx.U32, live)
	for i, r := range regs {
		b.Mov(ptx.U32, r, ptx.Imm(int64(i+1)))
	}
	sum := b.Reg(ptx.U32)
	b.Mov(ptx.U32, sum, ptx.Imm(0))
	for _, r := range regs {
		b.Add(ptx.U32, sum, ptx.R(sum), ptx.R(r))
	}
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(out, 0), ptx.R(sum))
	b.Exit()
	return b.Kernel()
}

func TestPaperExampleNeedsThreeRegisters(t *testing.T) {
	k := paperKernel()
	max, err := MaxReg(k)
	if err != nil {
		t.Fatalf("MaxReg: %v", err)
	}
	// Exactly 3 slots, matching paper Listing 3: the three scalars peak at
	// 3 simultaneous live values, and the 64-bit output pointer's live
	// range does not overlap them, so it reuses two of those slots.
	if max != 3 {
		t.Errorf("MaxReg = %d, want 3 (paper Listing 3)", max)
	}
	res, err := Allocate(k, Options{Regs: 3})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(res.Spills) != 0 {
		t.Errorf("spills = %v, want none at MaxReg", res.Spills)
	}
	if res.UsedRegs != 3 {
		t.Errorf("UsedRegs = %d, want 3", res.UsedRegs)
	}
	if err := res.Kernel.Validate(); err != nil {
		t.Errorf("allocated kernel invalid: %v", err)
	}
}

func TestAllocationReducesRegisters(t *testing.T) {
	k := paperKernel()
	n32, _, _ := k.RegCounts()
	if n32 != 5 {
		t.Fatalf("test premise: kernel has %d 32-bit vregs, want 5", n32)
	}
	res, err := Allocate(k, Options{Regs: 16})
	if err != nil {
		t.Fatal(err)
	}
	got32, _, _ := res.Kernel.RegCounts()
	if got32 >= n32 {
		t.Errorf("allocation did not reduce 32-bit registers: %d -> %d", n32, got32)
	}
}

func TestSpillingUnderPressure(t *testing.T) {
	k := pressureKernel(12)
	max, err := MaxReg(k)
	if err != nil {
		t.Fatal(err)
	}
	budget := max - 4
	res, err := Allocate(k, Options{Regs: budget})
	if err != nil {
		t.Fatalf("Allocate(%d): %v", budget, err)
	}
	if len(res.Spills) == 0 {
		t.Fatal("expected spills under reduced budget")
	}
	if res.UsedRegs > budget {
		t.Errorf("UsedRegs = %d exceeds budget %d", res.UsedRegs, budget)
	}
	if res.SpillLoads == 0 || res.SpillStores == 0 {
		t.Errorf("spill loads/stores = %d/%d, want both > 0", res.SpillLoads, res.SpillStores)
	}
	if res.SpillStackBytes <= 0 {
		t.Errorf("SpillStackBytes = %d, want > 0", res.SpillStackBytes)
	}
	if _, ok := res.Kernel.Array(SpillStackName); !ok {
		t.Error("spilled kernel has no SpillStack declaration")
	}
	if err := res.Kernel.Validate(); err != nil {
		t.Errorf("spilled kernel invalid: %v", err)
	}
	// The virtual form must also be valid and parse/print round-trippable.
	if err := res.Virtual.Validate(); err != nil {
		t.Errorf("virtual kernel invalid: %v", err)
	}
	if _, err := ptx.Parse(ptx.Print(res.Kernel)); err != nil {
		t.Errorf("spilled kernel does not reparse: %v", err)
	}
}

func TestSpillCodeStructure(t *testing.T) {
	k := pressureKernel(12)
	max, _ := MaxReg(k)
	res, err := Allocate(k, Options{Regs: max - 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every ld.local must read [base+off] with off matching a spill slot;
	// every st.local likewise.
	offsets := map[int64]bool{}
	for _, s := range res.Spills {
		offsets[s.Offset] = true
	}
	stats := res.Kernel.StaticStats()
	if stats.LocalOps != res.SpillLoads+res.SpillStores {
		t.Errorf("local ops = %d, want %d", stats.LocalOps, res.SpillLoads+res.SpillStores)
	}
	for i := range res.Kernel.Insts {
		in := &res.Kernel.Insts[i]
		if !in.Op.IsMemory() || in.Space != ptx.SpaceLocal {
			continue
		}
		var mem ptx.Operand
		if in.Op == ptx.OpLd {
			mem = in.Srcs[0]
		} else {
			mem = in.Dst
		}
		if !offsets[mem.Off] {
			t.Errorf("inst %d: spill access at unknown offset %d", i, mem.Off)
		}
	}
}

func TestInfeasibleBudget(t *testing.T) {
	k := pressureKernel(8)
	if _, err := Allocate(k, Options{Regs: 2}); err == nil {
		t.Error("Allocate accepted a budget too small for spill machinery")
	}
}

func TestTypeStrictWastesRegisters(t *testing.T) {
	// Mixed f32/u32 values with disjoint live ranges: width-based sharing
	// reuses registers across types, TypeStrict cannot (paper §5.2).
	b := ptx.NewBuilder("mixed")
	b.Param("out", ptx.U64)
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "out")
	u := b.Reg(ptx.U32)
	b.Mov(ptx.U32, u, ptx.Imm(3))
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(out, 0), ptx.R(u))
	// u now dead; f can reuse its slot only in width mode.
	f := b.Reg(ptx.F32)
	b.Mov(ptx.F32, f, ptx.FImm(1.5))
	b.St(ptx.SpaceGlobal, ptx.F32, ptx.MemReg(out, 4), ptx.R(f))
	b.Exit()
	k := b.Kernel()

	loose, err := Allocate(k, Options{Regs: 16})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Allocate(k, Options{Regs: 16, TypeStrict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(strict.UsedRegs > loose.UsedRegs) {
		t.Errorf("TypeStrict used %d regs, loose used %d; want strictly more", strict.UsedRegs, loose.UsedRegs)
	}
}

func TestLinearScanAllocates(t *testing.T) {
	k := pressureKernel(12)
	max, _ := MaxReg(k)
	res, err := Allocate(k, Options{Regs: max + 4, Algorithm: AlgoLinearScan})
	if err != nil {
		t.Fatalf("linear scan: %v", err)
	}
	if len(res.Spills) != 0 {
		t.Errorf("linear scan spilled %d regs with generous budget", len(res.Spills))
	}
	if err := res.Kernel.Validate(); err != nil {
		t.Errorf("linear scan kernel invalid: %v", err)
	}

	tight, err := Allocate(k, Options{Regs: max - 4, Algorithm: AlgoLinearScan})
	if err != nil {
		t.Fatalf("linear scan tight: %v", err)
	}
	if len(tight.Spills) == 0 {
		t.Error("linear scan did not spill under pressure")
	}
	if tight.UsedRegs > max-4 {
		t.Errorf("linear scan UsedRegs = %d exceeds budget", tight.UsedRegs)
	}
}

func TestAllocatorsComparableSpillVolume(t *testing.T) {
	// The two allocators should produce similar-but-not-identical spill
	// volume (paper Figure 12's validation premise).
	k := pressureKernel(16)
	max, _ := MaxReg(k)
	budget := max - 6
	cb, err := Allocate(k, Options{Regs: budget})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := Allocate(k, Options{Regs: budget, Algorithm: AlgoLinearScan})
	if err != nil {
		t.Fatal(err)
	}
	cbOps := cb.SpillLoads + cb.SpillStores
	lsOps := ls.SpillLoads + ls.SpillStores
	if cbOps == 0 || lsOps == 0 {
		t.Fatalf("expected both to spill: chaitin=%d linear=%d", cbOps, lsOps)
	}
	if lsOps > cbOps*4 || cbOps > lsOps*4 {
		t.Errorf("spill volumes diverge too much: chaitin=%d linear=%d", cbOps, lsOps)
	}
}

func TestDeterminism(t *testing.T) {
	k := pressureKernel(12)
	max, _ := MaxReg(k)
	a, err := Allocate(k, Options{Regs: max - 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Allocate(k, Options{Regs: max - 3})
	if err != nil {
		t.Fatal(err)
	}
	if ptx.Print(a.Kernel) != ptx.Print(b.Kernel) {
		t.Error("allocation is not deterministic")
	}
}

func TestGuardedDefSpill(t *testing.T) {
	// Spilling a register defined under a predicate keeps the store
	// predicated, preserving the partial-write semantics.
	b := ptx.NewBuilder("guarded")
	b.Param("out", ptx.U64)
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "out")
	p := b.Reg(ptx.Pred)
	x := b.Reg(ptx.U32)
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	b.Setp(ptx.CmpLt, ptx.U32, p, ptx.R(tid), ptx.Imm(16))
	b.Mov(ptx.U32, x, ptx.Imm(1))
	b.If(p, false).Mov(ptx.U32, x, ptx.Imm(2))
	// Lots of pressure between def and use to force x to spill.
	regs := b.Regs(ptx.U32, 10)
	for i, r := range regs {
		b.Mov(ptx.U32, r, ptx.Imm(int64(i)))
	}
	sum := b.Reg(ptx.U32)
	b.Mov(ptx.U32, sum, ptx.Imm(0))
	for _, r := range regs {
		b.Add(ptx.U32, sum, ptx.R(sum), ptx.R(r))
	}
	b.Add(ptx.U32, sum, ptx.R(sum), ptx.R(x))
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(out, 0), ptx.R(sum))
	b.Exit()
	k := b.Kernel()
	max, _ := MaxReg(k)
	res, err := Allocate(k, Options{Regs: max - 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Kernel.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Any predicated st.local must exist only if x spilled; check that all
	// guarded spill stores kept their guard.
	for i := range res.Virtual.Insts {
		in := &res.Virtual.Insts[i]
		if in.Op == ptx.OpSt && in.Space == ptx.SpaceLocal && in.Guard != ptx.NoReg {
			return // found a guarded spill store: behaviour preserved
		}
	}
	// It is legal for x not to be the spill victim; only fail if x spilled
	// without a guarded store.
	for _, s := range res.Spills {
		if s.VReg == x {
			t.Error("x spilled but no guarded spill store found")
		}
	}
}

func TestLabelMovesToReload(t *testing.T) {
	// If a branch target instruction uses a spilled register, the reload
	// must execute on the branch path: the label must move onto the reload.
	b := ptx.NewBuilder("lbl")
	b.Param("out", ptx.U64)
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "out")
	x := b.Reg(ptx.U32)
	b.Mov(ptx.U32, x, ptx.Imm(42))
	regs := b.Regs(ptx.U32, 12)
	for i, r := range regs {
		b.Mov(ptx.U32, r, ptx.Imm(int64(i)))
	}
	sum := b.Reg(ptx.U32)
	b.Mov(ptx.U32, sum, ptx.Imm(0))
	for _, r := range regs {
		b.Add(ptx.U32, sum, ptx.R(sum), ptx.R(r))
	}
	b.Bra("USE")
	b.Label("USE").Add(ptx.U32, sum, ptx.R(sum), ptx.R(x))
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(out, 0), ptx.R(sum))
	b.Exit()
	k := b.Kernel()
	max, _ := MaxReg(k)
	res, err := Allocate(k, Options{Regs: max - 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Kernel.Validate(); err != nil {
		t.Fatalf("invalid (label handling broken?): %v", err)
	}
	idx, ok := res.Kernel.LabelIndex("USE")
	if !ok {
		t.Fatal("label USE lost")
	}
	// If x was spilled, the labeled instruction must be its reload.
	spilledX := false
	for _, s := range res.Spills {
		if s.VReg == x {
			spilledX = true
		}
	}
	if spilledX {
		in := &res.Kernel.Insts[idx]
		if in.Op != ptx.OpLd || in.Space != ptx.SpaceLocal {
			t.Errorf("labeled inst is %v.%v, want the spill reload", in.Op, in.Space)
		}
	}
}

func TestMaxRegMonotonicity(t *testing.T) {
	// More live values can never need fewer registers.
	prev := 0
	for _, live := range []int{2, 4, 8, 16} {
		max, err := MaxReg(pressureKernel(live))
		if err != nil {
			t.Fatal(err)
		}
		if max < prev {
			t.Errorf("MaxReg(%d live) = %d < previous %d", live, max, prev)
		}
		prev = max
	}
}

func TestUsedRegsNeverExceedsBudget(t *testing.T) {
	k := pressureKernel(14)
	max, _ := MaxReg(k)
	for budget := max + 2; budget >= 6; budget-- {
		res, err := Allocate(k, Options{Regs: budget})
		if err != nil {
			// Small budgets may be infeasible; that's the expected floor.
			return
		}
		if res.UsedRegs > budget {
			t.Fatalf("budget %d: UsedRegs = %d", budget, res.UsedRegs)
		}
		if err := res.Kernel.Validate(); err != nil {
			t.Fatalf("budget %d: invalid kernel: %v", budget, err)
		}
	}
}
