package regalloc

import (
	"crat/internal/cfg"
	"crat/internal/ptx"
)

// coalesce performs conservative (Briggs-style) copy coalescing as a
// pre-pass: a register-to-register mov whose source and destination do not
// interfere is eliminated by renaming the destination into the source,
// provided the merged node is guaranteed to remain colorable under the K
// budget — the merge must not create a node with too many high-degree
// neighbors. Returns the number of copies eliminated.
//
// Briggs' thesis treats coalescing as an integral phase of the allocator;
// the paper only says "we implement a Chaitin-Briggs' register allocator",
// so this pass is optional (Options.Coalesce) and off by default to keep
// the baseline behaviour minimal. It matters most for externally supplied
// PTX, where nvcc's SSA-style output is mov-heavy.
func coalesce(k *ptx.Kernel, budget int) (int, error) {
	merged := 0
	for {
		g, err := cfg.Build(k)
		if err != nil {
			return merged, err
		}
		lv := cfg.ComputeLiveness(g)
		ig := buildIGraph(k, lv)

		pair, ok := findCoalescable(k, ig, budget)
		if !ok {
			return merged, nil
		}
		renameRegister(k, pair.dst, pair.src)
		removeInst(k, pair.inst)
		merged++
	}
}

type copyPair struct {
	inst     int
	dst, src ptx.Reg
}

// findCoalescable scans for the first register copy that passes the
// conservative merge test.
func findCoalescable(k *ptx.Kernel, ig *igraph, budget int) (copyPair, bool) {
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Op != ptx.OpMov || in.Guard != ptx.NoReg {
			continue
		}
		if in.Dst.Kind != ptx.OperandReg || len(in.Srcs) != 1 || in.Srcs[0].Kind != ptx.OperandReg {
			continue
		}
		dst, src := in.Dst.Reg, in.Srcs[0].Reg
		if dst == src {
			continue
		}
		td, ts := k.RegType(dst), k.RegType(src)
		if td.Class() != ts.Class() || td.Class() == ptx.ClassPred {
			continue
		}
		// Must not interfere (a copy between interfering names is a real
		// data movement, not an artifact).
		if _, bad := ig.adj[dst][src]; bad {
			continue
		}
		if briggsSafe(ig, dst, src, budget) {
			return copyPair{inst: i, dst: dst, src: src}, true
		}
	}
	return copyPair{}, false
}

// briggsSafe applies the conservative merge criterion: the merged node's
// high-degree neighbors must together occupy fewer than the remaining
// slots, so the merged node is still trivially colorable in the worst case.
func briggsSafe(ig *igraph, a, b ptx.Reg, budget int) bool {
	mergedSlots := ig.slots(a)
	neighbors := make(map[ptx.Reg]struct{}, len(ig.adj[a])+len(ig.adj[b]))
	for n := range ig.adj[a] {
		neighbors[n] = struct{}{}
	}
	for n := range ig.adj[b] {
		neighbors[n] = struct{}{}
	}
	delete(neighbors, a)
	delete(neighbors, b)
	significant := 0
	for n := range neighbors {
		if ig.squeeze(n, nil) >= budget-ig.slots(n) {
			significant += ig.slots(n)
		}
	}
	return significant <= budget-mergedSlots
}

// renameRegister rewrites every occurrence of old to new across the kernel.
func renameRegister(k *ptx.Kernel, old, new ptx.Reg) {
	fix := func(o *ptx.Operand) {
		switch o.Kind {
		case ptx.OperandReg:
			if o.Reg == old {
				o.Reg = new
			}
		case ptx.OperandMem:
			if o.Reg == old {
				o.Reg = new
			}
		}
	}
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Guard == old {
			in.Guard = new
		}
		fix(&in.Dst)
		for j := range in.Srcs {
			fix(&in.Srcs[j])
		}
	}
}

// removeInst deletes instruction i, carrying any label forward to the next
// instruction so branch targets stay valid. If the next instruction already
// carries a label, branches to the removed label are retargeted to it.
func removeInst(k *ptx.Kernel, i int) {
	label := k.Insts[i].Label
	k.Insts = append(k.Insts[:i], k.Insts[i+1:]...)
	if label == "" {
		return
	}
	if i < len(k.Insts) {
		if k.Insts[i].Label == "" {
			k.Insts[i].Label = label
			return
		}
		// Label collision: retarget branches to the surviving label.
		survivor := k.Insts[i].Label
		for j := range k.Insts {
			if k.Insts[j].Op == ptx.OpBra && k.Insts[j].Target == label {
				k.Insts[j].Target = survivor
			}
		}
	}
}
