package regalloc

import (
	"errors"
	"fmt"
	"sort"

	"crat/internal/cfg"
	"crat/internal/ptx"
)

// SpillStackName is the local-memory array that holds spilled variables
// (paper Listing 4).
const SpillStackName = "SpillStack"

// ErrInfeasible is returned when the register limit is too small to hold
// even the unspillable values (spill temporaries and addressing registers).
var ErrInfeasible = errors.New("regalloc: register limit infeasible")

// debugInfeasible enables diagnostic prints on infeasibility (dev only).
var debugInfeasible = false

// Algorithm selects the allocation algorithm.
type Algorithm uint8

// Allocation algorithms. AlgoChaitin is the paper's Chaitin-Briggs
// graph-coloring allocator; AlgoLinearScan is the independent reference
// allocator used to cross-validate spill volume (paper Figure 12).
const (
	AlgoChaitin Algorithm = iota
	AlgoLinearScan
)

// String names the algorithm.
func (a Algorithm) String() string {
	if a == AlgoLinearScan {
		return "linear-scan"
	}
	return "chaitin-briggs"
}

// Options configures an allocation run.
type Options struct {
	// Regs is the per-thread budget in 32-bit register slots — the
	// paper's "register per-thread" knob.
	Regs int
	// Algorithm selects the allocator (default Chaitin-Briggs).
	Algorithm Algorithm
	// Preds is the predicate register budget. Zero means 8 (Fermi).
	Preds int
	// Coalesce runs conservative (Briggs) copy coalescing before coloring:
	// register-to-register movs between non-interfering names are
	// eliminated when the merge provably stays colorable. Off by default;
	// most useful on externally supplied SSA-style PTX.
	Coalesce bool
	// TypeStrict forbids two virtual registers of different PTX types from
	// sharing a physical register even when their live ranges do not
	// overlap. This models the type-sensitivity of the commercial
	// assembler described in paper §5.2 and wastes registers.
	TypeStrict bool
	// UnweightedSpillCost disables the 10^loop-depth weighting of spill
	// costs (ablation knob).
	UnweightedSpillCost bool
	// MaxIterations bounds the build-color-spill loop. Zero means 32.
	MaxIterations int
}

func (o Options) preds() int {
	if o.Preds <= 0 {
		return 8
	}
	return o.Preds
}

func (o Options) maxIter() int {
	if o.MaxIterations <= 0 {
		return 32
	}
	return o.MaxIterations
}

// SpillSlot describes one spilled virtual register's slot in the spill
// stack.
type SpillSlot struct {
	VReg   ptx.Reg  // register in the *virtual* (pre-allocation) kernel
	Type   ptx.Type // value type (determines the sub-stack, paper Alg. 1)
	Offset int64    // byte offset within the spill stack
	Loads  int      // static reload sites inserted
	Stores int      // static store sites inserted
	Weight float64  // loop-depth-weighted access count (spill "gain" basis)
}

// Result is the outcome of an allocation.
type Result struct {
	// Kernel is the rewritten kernel with physical registers and spill
	// code. Physical register names are dense per class.
	Kernel *ptx.Kernel
	// Virtual is the colorable kernel before the physical rewrite: spill
	// code inserted, virtual register names retained. The shared-memory
	// spilling optimization rewrites this form.
	Virtual *ptx.Kernel
	// UsedRegs is the number of 32-bit register slots the allocation
	// actually uses per thread (the achieved "reg").
	UsedRegs int
	// UsedPreds is the number of predicate registers used.
	UsedPreds int
	// Spills lists the spilled virtual registers.
	Spills []SpillSlot
	// SpillStackBytes is the spill stack size per thread.
	SpillStackBytes int64
	// SpillLoads/SpillStores are static counts of inserted local-memory
	// spill instructions; AddrInsts counts inserted address-computation
	// instructions (paper §6 Num_others).
	SpillLoads  int
	SpillStores int
	AddrInsts   int
	// Iterations is the number of build-color-spill rounds.
	Iterations int
	// Coalesced counts copies eliminated by the optional coalescing pass.
	Coalesced int
	// Assignment maps virtual registers of the Virtual kernel to their
	// starting 32-bit slot (predicates map to predicate indices).
	Assignment map[ptx.Reg]int
	// BaseReg is the 64-bit SpillStack base register in the Virtual
	// kernel, or NoReg when nothing spilled. Spill instructions are
	// exactly the ld/st.local whose address base is BaseReg.
	BaseReg ptx.Reg
}

// allocState carries state across build-color-spill iterations.
type allocState struct {
	opts    Options
	k       *ptx.Kernel // working copy, virtual names
	noSpill map[ptx.Reg]bool
	slots   map[ptx.Reg]SpillSlot // spilled vregs (from all rounds)
	stack   int64                 // spill stack bytes used so far
	baseReg ptx.Reg               // 64-bit SpillStack base register, or NoReg
	res     *Result
}

// MaxReg returns the number of 32-bit register slots needed to hold all the
// kernel's variables without any spill — the MaxReg parameter of paper
// Table 1, obtained through dataflow analysis. Because graph coloring is a
// heuristic, the unconstrained coloring's register count is only a starting
// point: MaxReg is the smallest budget at which the allocator actually
// produces a spill-free allocation.
func MaxReg(k *ptx.Kernel) (int, error) {
	r, err := Allocate(k, Options{Regs: 4096})
	if err != nil {
		return 0, err
	}
	for budget := r.UsedRegs; ; budget++ {
		res, err := Allocate(k, Options{Regs: budget})
		if err == nil && len(res.Spills) == 0 {
			return res.UsedRegs, nil
		}
		if budget > r.UsedRegs+64 {
			// Defensive bound; the unconstrained coloring fits in
			// r.UsedRegs slots, so a spill-free packing close above it
			// must exist.
			return 0, fmt.Errorf("regalloc: no spill-free budget near %d", r.UsedRegs)
		}
	}
}

// color runs one build-simplify-select round over the cached liveness. It
// returns the coloring (slot assignment) and the set of registers chosen
// for spilling (empty when the coloring succeeded).
func (st *allocState) color(lv *cfg.Liveness) (map[ptx.Reg]int, []ptx.Reg, error) {
	ig := buildIGraph(st.k, lv)
	weights := lv.AccessWeights()
	if st.opts.UnweightedSpillCost {
		weights = unweightedCounts(st.k)
	}

	K := st.opts.Regs
	removed := make(map[ptx.Reg]bool)
	var order []ptx.Reg // simplification stack (pop in reverse)
	optimistic := make(map[ptx.Reg]bool)
	nodes := ig.sortedNodes()
	remaining := len(nodes)

	for remaining > 0 {
		// Pick a trivially colorable node (deterministically: smallest id).
		picked := ptx.NoReg
		for _, r := range nodes {
			if removed[r] {
				continue
			}
			if ig.squeeze(r, removed) <= K-ig.slots(r) {
				picked = r
				break
			}
		}
		if picked == ptx.NoReg {
			// Blocked: choose a spill candidate with minimal
			// weight/degree (Chaitin heuristic); push it optimistically
			// (Briggs) — it may still receive a color.
			best := ptx.NoReg
			bestMetric := 0.0
			for _, r := range nodes {
				if removed[r] || st.noSpill[r] {
					continue
				}
				d := ig.degree(r, removed)
				if d == 0 {
					d = 1
				}
				m := weights[r] / float64(d)
				if best == ptx.NoReg || m < bestMetric {
					best = r
					bestMetric = m
				}
			}
			if best == ptx.NoReg {
				// Only unspillable nodes remain and none is trivially
				// colorable: the budget cannot hold the spill machinery.
				if debugInfeasible {
					println("INFEASIBLE: simplify stuck, remaining:", remaining)
				}
				return nil, nil, ErrInfeasible
			}
			picked = best
			optimistic[picked] = true
		}
		removed[picked] = true
		order = append(order, picked)
		remaining--
	}

	// Select phase: pop in reverse order, assign lowest feasible slot run.
	assignment := make(map[ptx.Reg]int)
	slotTypes := make(map[int]ptx.Type) // TypeStrict bookkeeping
	var spills []ptx.Reg
	for i := len(order) - 1; i >= 0; i-- {
		r := order[i]
		slot := st.findSlot(ig, r, assignment, slotTypes)
		if slot < 0 {
			if st.noSpill[r] {
				// An unspillable node (spill temporary or addressing
				// register) failed to color: free a slot by spilling its
				// cheapest spillable neighbor instead. Only when no such
				// neighbor exists is the budget genuinely infeasible.
				victim := st.cheapestSpillableNeighbor(ig, r, weights, spills)
				if victim == ptx.NoReg {
					if debugInfeasible {
						println("INFEASIBLE: noSpill node failed select, reg:", int(r),
							"type:", st.k.RegType(r).String())
					}
					return nil, nil, ErrInfeasible
				}
				spills = append(spills, victim)
				continue
			}
			spills = append(spills, r)
			continue
		}
		assignment[r] = slot
		if st.opts.TypeStrict {
			t := st.k.RegType(r)
			for s := 0; s < ig.slots(r); s++ {
				slotTypes[slot+s] = t
			}
		}
	}
	return assignment, spills, nil
}

// cheapestSpillableNeighbor picks the interference neighbor of r with the
// lowest spill metric that is spillable and not already queued for
// spilling. It returns NoReg when none exists.
func (st *allocState) cheapestSpillableNeighbor(ig *igraph, r ptx.Reg, weights []float64, queued []ptx.Reg) ptx.Reg {
	inQueue := make(map[ptx.Reg]bool, len(queued))
	for _, q := range queued {
		inQueue[q] = true
	}
	best := ptx.NoReg
	bestMetric := 0.0
	for n := range ig.adj[r] {
		if st.noSpill[n] || inQueue[n] {
			continue
		}
		d := ig.degree(n, nil)
		if d == 0 {
			d = 1
		}
		m := weights[n] / float64(d)
		if best == ptx.NoReg || m < bestMetric || (m == bestMetric && n < best) {
			best = n
			bestMetric = m
		}
	}
	return best
}

// findSlot returns the lowest starting slot where r fits given its already-
// colored interference neighbors, or -1 if none exists within the budget.
func (st *allocState) findSlot(ig *igraph, r ptx.Reg, assignment map[ptx.Reg]int, slotTypes map[int]ptx.Type) int {
	K := st.opts.Regs
	w := ig.slots(r)
	blocked := make([]bool, K)
	for n := range ig.adj[r] {
		s, ok := assignment[n]
		if !ok {
			continue
		}
		for i := 0; i < ig.slots(n); i++ {
			if s+i < K {
				blocked[s+i] = true
			}
		}
	}
	t := st.k.RegType(r)
	for s := 0; s+w <= K; s++ {
		ok := true
		for i := 0; i < w; i++ {
			if blocked[s+i] {
				ok = false
				break
			}
			if st.opts.TypeStrict {
				if prev, used := slotTypes[s+i]; used && prev != t {
					ok = false
					break
				}
			}
		}
		if ok {
			return s
		}
	}
	return -1
}

// finish rewrites the colored kernel to physical registers and fills the
// result.
func (st *allocState) finish(assignment map[ptx.Reg]int) {
	st.res.Virtual = st.k.Clone()
	st.res.Assignment = assignment
	st.res.BaseReg = st.baseReg
	st.res.Kernel, st.res.UsedRegs, st.res.UsedPreds = rewritePhysical(st.k, assignment, st.opts.preds())
	for _, s := range st.slots {
		st.res.Spills = append(st.res.Spills, s)
	}
	sort.Slice(st.res.Spills, func(a, b int) bool {
		return st.res.Spills[a].Offset < st.res.Spills[b].Offset
	})
	st.res.SpillStackBytes = st.stack
}

// unweightedCounts counts static access sites without loop weighting.
func unweightedCounts(k *ptx.Kernel) []float64 {
	out := make([]float64, k.NumRegs())
	var buf []ptx.Reg
	for i := range k.Insts {
		buf = k.Insts[i].Uses(buf[:0])
		for _, r := range buf {
			out[r]++
		}
		buf = k.Insts[i].Defs(buf[:0])
		for _, r := range buf {
			out[r]++
		}
	}
	return out
}

// SetDebugInfeasible toggles infeasibility diagnostics (development aid).
func SetDebugInfeasible(v bool) { debugInfeasible = v }
