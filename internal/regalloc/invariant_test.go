package regalloc

import (
	"testing"

	"crat/internal/cfg"
	"crat/internal/ptx"
)

// slotsOverlap reports whether two slot ranges [a, a+wa) and [b, b+wb)
// intersect.
func slotsOverlap(a, wa, b, wb int) bool {
	return a < b+wb && b < a+wa
}

// checkColoring verifies the fundamental allocation invariant on the
// virtual (colorable) kernel: any two simultaneously-live registers have
// disjoint slot ranges.
func checkColoring(t *testing.T, res *Result) {
	t.Helper()
	k := res.Virtual
	g, err := cfg.Build(k)
	if err != nil {
		t.Fatal(err)
	}
	lv := cfg.ComputeLiveness(g)
	slots := func(r ptx.Reg) int { return k.RegType(r).Class().Slots() }

	var dbuf []ptx.Reg
	for i := range k.Insts {
		in := &k.Insts[i]
		dbuf = in.Defs(dbuf[:0])
		for _, d := range dbuf {
			if k.RegType(d).Class() == ptx.ClassPred {
				continue
			}
			ds, ok := res.Assignment[d]
			if !ok {
				t.Fatalf("inst %d: defined register %d has no slot", i, d)
			}
			lv.InstOut[i].ForEach(func(l ptx.Reg) {
				if l == d || k.RegType(l).Class() == ptx.ClassPred {
					return
				}
				ls, ok := res.Assignment[l]
				if !ok {
					t.Fatalf("inst %d: live register %d has no slot", i, l)
				}
				if slotsOverlap(ds, slots(d), ls, slots(l)) {
					t.Fatalf("inst %d: def %d (slot %d+%d) overlaps live %d (slot %d+%d)",
						i, d, ds, slots(d), l, ls, slots(l))
				}
			})
		}
	}
}

// TestColoringInvariant checks, across budgets and both algorithms, that no
// two simultaneously-live values share hardware register slots — the
// soundness property of the whole allocator.
func TestColoringInvariant(t *testing.T) {
	kernels := map[string]*ptx.Kernel{
		"pressure": pressureKernel(16),
		"paper":    paperKernel(),
	}
	for name, k := range kernels {
		max, err := MaxReg(k)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{AlgoChaitin, AlgoLinearScan} {
			for _, budget := range []int{max, max - 2, max - 6, max / 2} {
				if budget < 6 {
					continue
				}
				res, err := Allocate(k, Options{Regs: budget, Algorithm: algo})
				if err != nil {
					continue // below the feasibility floor for this algo
				}
				t.Run(name+"/"+algo.String()+"/"+itoa(budget), func(t *testing.T) {
					checkColoring(t, res)
				})
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestTypeStrictInvariant additionally checks that TypeStrict never assigns
// two different PTX types to the same slot anywhere in the kernel.
func TestTypeStrictInvariant(t *testing.T) {
	b := ptx.NewBuilder("mixedtypes")
	b.Param("out", ptx.U64)
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "out")
	us := b.Regs(ptx.U32, 6)
	fs := b.Regs(ptx.F32, 6)
	for i, r := range us {
		b.Mov(ptx.U32, r, ptx.Imm(int64(i)))
	}
	for i, r := range fs {
		b.Mov(ptx.F32, r, ptx.FImm(float64(i)))
	}
	usum := b.Reg(ptx.U32)
	b.Mov(ptx.U32, usum, ptx.Imm(0))
	for _, r := range us {
		b.Add(ptx.U32, usum, ptx.R(usum), ptx.R(r))
	}
	fsum := b.Reg(ptx.F32)
	b.Mov(ptx.F32, fsum, ptx.FImm(0))
	for _, r := range fs {
		b.Add(ptx.F32, fsum, ptx.R(fsum), ptx.R(r))
	}
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(out, 0), ptx.R(usum))
	b.St(ptx.SpaceGlobal, ptx.F32, ptx.MemReg(out, 4), ptx.R(fsum))
	b.Exit()
	k := b.Kernel()

	res, err := Allocate(k, Options{Regs: 32, TypeStrict: true})
	if err != nil {
		t.Fatal(err)
	}
	checkColoring(t, res)
	slotType := map[int]ptx.Type{}
	for r, slot := range res.Assignment {
		ty := res.Virtual.RegType(r)
		if ty.Class() == ptx.ClassPred {
			continue
		}
		for s := 0; s < ty.Class().Slots(); s++ {
			if prev, ok := slotType[slot+s]; ok && prev != ty {
				t.Fatalf("slot %d holds both %v and %v under TypeStrict", slot+s, prev, ty)
			}
			slotType[slot+s] = ty
		}
	}
}

// TestUsedPredsCounted verifies predicate accounting.
func TestUsedPredsCounted(t *testing.T) {
	b := ptx.NewBuilder("preds")
	x := b.Reg(ptx.U32)
	p1, p2 := b.Reg(ptx.Pred), b.Reg(ptx.Pred)
	b.MovSpec(x, ptx.SpecTidX)
	b.Setp(ptx.CmpLt, ptx.U32, p1, ptx.R(x), ptx.Imm(4))
	b.Setp(ptx.CmpGt, ptx.U32, p2, ptx.R(x), ptx.Imm(8))
	b.If(p1, false).Add(ptx.U32, x, ptx.R(x), ptx.Imm(1))
	b.If(p2, true).Add(ptx.U32, x, ptx.R(x), ptx.Imm(2))
	b.Exit()
	res, err := Allocate(b.Kernel(), Options{Regs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedPreds != 2 {
		t.Errorf("UsedPreds = %d, want 2", res.UsedPreds)
	}
}
