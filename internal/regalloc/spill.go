package regalloc

import (
	"fmt"

	"crat/internal/ptx"
)

// insertSpills rewrites the working kernel so every register in spillRegs
// lives in the local-memory SpillStack: each use site reloads into a fresh
// temporary and each definition stores back (paper Listing 4). The inserted
// temporaries and the 64-bit stack base register are marked unspillable.
func (st *allocState) insertSpills(spillRegs []ptx.Reg) error {
	k := st.k
	// A kernel that already carries a SpillStack (e.g. spillopt re-runs
	// allocation on a rewritten kernel whose remaining spill code still
	// references earlier slots) must get fresh, non-overlapping offsets:
	// start the stack past the existing array instead of overlaying it.
	if a, ok := k.Array(SpillStackName); ok && a.Size > st.stack {
		st.stack = a.Size
	}
	spillSet := make(map[ptx.Reg]*SpillSlot)
	for _, r := range spillRegs {
		t := k.RegType(r)
		if t.Class() == ptx.ClassPred {
			return fmt.Errorf("regalloc: cannot spill predicate %d", r)
		}
		sz := int64(t.Bytes())
		st.stack = (st.stack + sz - 1) / sz * sz
		slot := SpillSlot{VReg: r, Type: t, Offset: st.stack}
		st.stack += sz
		st.slots[r] = slot
		s := st.slots[r]
		spillSet[r] = &s
	}

	// Ensure the SpillStack declaration exists and is large enough.
	found := false
	for i := range k.Arrays {
		if k.Arrays[i].Name == SpillStackName {
			k.Arrays[i].Size = st.stack
			found = true
		}
	}
	if !found {
		k.AddArray(ptx.ArrayDecl{Name: SpillStackName, Space: ptx.SpaceLocal, Align: 8, Size: st.stack})
	}

	// Reserve the 64-bit base register once and define it at entry
	// ("mov.u64 %d0, SpillStack", paper Listing 4).
	needBaseDef := false
	if st.baseReg == ptx.NoReg {
		st.baseReg = k.NewReg(ptx.U64)
		st.noSpill[st.baseReg] = true
		needBaseDef = true
	}

	var out []ptx.Inst
	if needBaseDef {
		st.res.AddrInsts++
	}
	appendBaseDef := func() {
		out = append(out, ptx.Inst{
			Op: ptx.OpMov, Type: ptx.U64,
			Dst: ptx.R(st.baseReg), Srcs: []ptx.Operand{ptx.Sym(SpillStackName)},
			Guard: ptx.NoReg, Meta: ptx.MetaSpillAddr,
		})
	}
	if needBaseDef {
		appendBaseDef()
	}

	var ubuf, dbuf []ptx.Reg
	for i := range k.Insts {
		in := k.Insts[i].Clone()

		// Reload spilled uses into fresh temporaries.
		ubuf = in.Uses(ubuf[:0])
		reloads := make(map[ptx.Reg]ptx.Reg)
		for _, r := range ubuf {
			slot, ok := spillSet[r]
			if !ok {
				continue
			}
			if _, dup := reloads[r]; dup {
				continue
			}
			tmp := k.NewReg(slot.Type)
			st.noSpill[tmp] = true
			reloads[r] = tmp
			ld := ptx.Inst{
				Op: ptx.OpLd, Space: ptx.SpaceLocal, Type: slot.Type,
				Dst:   ptx.R(tmp),
				Srcs:  []ptx.Operand{ptx.MemReg(st.baseReg, slot.Offset)},
				Guard: ptx.NoReg, Meta: ptx.MetaSpillLoad,
			}
			// A label on the original instruction must move to the first
			// inserted reload so branches execute it.
			if in.Label != "" {
				ld.Label = in.Label
				in.Label = ""
			}
			out = append(out, ld)
			s := st.slots[r]
			s.Loads++
			st.slots[r] = s
			st.res.SpillLoads++
		}
		renameUses(&in, reloads)

		// A spilled definition writes a fresh temporary, stored back after.
		var stores []ptx.Inst
		dbuf = in.Defs(dbuf[:0])
		for _, d := range dbuf {
			slot, ok := spillSet[d]
			if !ok {
				continue
			}
			tmp, dup := reloads[d]
			if !dup {
				tmp = k.NewReg(slot.Type)
				st.noSpill[tmp] = true
			}
			in.Dst = ptx.R(tmp)
			stInst := ptx.Inst{
				Op: ptx.OpSt, Space: ptx.SpaceLocal, Type: slot.Type,
				Dst:   ptx.MemReg(st.baseReg, slot.Offset),
				Srcs:  []ptx.Operand{ptx.R(tmp)},
				Guard: in.Guard, GuardNeg: in.GuardNeg, Meta: ptx.MetaSpillStore,
			}
			stores = append(stores, stInst)
			s := st.slots[d]
			s.Stores++
			st.slots[d] = s
			st.res.SpillStores++
		}
		out = append(out, in)
		out = append(out, stores...)
	}
	k.Insts = out
	return nil
}

// renameUses replaces register uses per the mapping (guard, sources, and
// memory bases on both sides).
func renameUses(in *ptx.Inst, m map[ptx.Reg]ptx.Reg) {
	if len(m) == 0 {
		return
	}
	if t, ok := m[in.Guard]; ok && in.Guard != ptx.NoReg {
		in.Guard = t
	}
	for i := range in.Srcs {
		renameOperandUse(&in.Srcs[i], m)
	}
	if in.Dst.Kind == ptx.OperandMem {
		renameOperandUse(&in.Dst, m)
	}
}

func renameOperandUse(o *ptx.Operand, m map[ptx.Reg]ptx.Reg) {
	switch o.Kind {
	case ptx.OperandReg:
		if t, ok := m[o.Reg]; ok {
			o.Reg = t
		}
	case ptx.OperandMem:
		if o.Reg != ptx.NoReg {
			if t, ok := m[o.Reg]; ok {
				o.Reg = t
			}
		}
	}
}

// rewritePhysical maps the colored virtual kernel onto dense physical
// register names: one B32 register per used 32-bit slot, one B64 register
// per used slot pair, and densely renumbered predicates. It returns the new
// kernel, the number of 32-bit slots used, and the number of predicates.
func rewritePhysical(k *ptx.Kernel, assignment map[ptx.Reg]int, predBudget int) (*ptx.Kernel, int, int) {
	out := ptx.NewKernel(k.Name)
	out.Params = append([]ptx.Param(nil), k.Params...)
	out.Arrays = append([]ptx.ArrayDecl(nil), k.Arrays...)

	type physKey struct {
		class ptx.RegClass
		slot  int
	}
	phys := make(map[physKey]ptx.Reg)
	regMap := make(map[ptx.Reg]ptx.Reg)
	usedSlots := 0
	nextPred := 0

	mapReg := func(r ptx.Reg) ptx.Reg {
		if m, ok := regMap[r]; ok {
			return m
		}
		t := k.RegType(r)
		var nr ptx.Reg
		switch t.Class() {
		case ptx.ClassPred:
			nr = out.NewReg(ptx.Pred)
			nextPred++
		case ptx.Class64:
			slot, ok := assignment[r]
			if !ok {
				// Unreferenced register: give it a private slot at 0.
				slot = 0
			}
			key := physKey{ptx.Class64, slot}
			if p, ok := phys[key]; ok {
				nr = p
			} else {
				nr = out.NewReg(ptx.B64)
				phys[key] = nr
			}
			if ok && slot+2 > usedSlots {
				usedSlots = slot + 2
			}
		default:
			slot, ok := assignment[r]
			if !ok {
				slot = 0
			}
			key := physKey{ptx.Class32, slot}
			if p, ok := phys[key]; ok {
				nr = p
			} else {
				nr = out.NewReg(ptx.B32)
				phys[key] = nr
			}
			if ok && slot+1 > usedSlots {
				usedSlots = slot + 1
			}
		}
		regMap[r] = nr
		return nr
	}

	mapOperand := func(o ptx.Operand) ptx.Operand {
		switch o.Kind {
		case ptx.OperandReg:
			o.Reg = mapReg(o.Reg)
		case ptx.OperandMem:
			if o.Reg != ptx.NoReg {
				o.Reg = mapReg(o.Reg)
			}
		}
		return o
	}

	for i := range k.Insts {
		in := k.Insts[i].Clone()
		if in.Guard != ptx.NoReg {
			in.Guard = mapReg(in.Guard)
		}
		in.Dst = mapOperand(in.Dst)
		for j := range in.Srcs {
			in.Srcs[j] = mapOperand(in.Srcs[j])
		}
		out.Append(in)
	}
	_ = predBudget
	return out, usedSlots, nextPred
}
