package regalloc

import (
	"fmt"

	"crat/internal/passes"
	"crat/internal/ptx"
)

// The allocator is a pass pipeline over one AnalysisManager:
//
//	[coalesce] -> { color -> spill-insert }* -> color -> phys-rewrite
//
// color is a pure analysis pass (it reads the cached CFG/liveness and
// records its coloring on the pass object); spill-insert mutates the
// working kernel and invalidates the control-flow analyses; phys-rewrite
// produces the physical kernel and rebinds the AnalysisManager to it, so
// pass-wrap hooks observe the allocation's final output.

// coalescePass runs conservative copy coalescing before the first coloring.
type coalescePass struct{ st *allocState }

func (p *coalescePass) Name() string { return "coalesce" }

func (p *coalescePass) Requires() []passes.Kind { return nil }

func (p *coalescePass) Invalidates() []passes.Kind {
	return []passes.Kind{passes.KindCFG, passes.KindUseDef}
}

func (p *coalescePass) Run(k *ptx.Kernel, am *passes.AnalysisManager) error {
	n, err := coalesce(k, p.st.opts.Regs)
	if err != nil {
		return err
	}
	p.st.res.Coalesced = n
	return nil
}

// colorPass runs one build-simplify-select round (Chaitin-Briggs) or one
// linear scan, leaving the slot assignment and the spill choice on the
// pass object for the driver loop.
type colorPass struct {
	st         *allocState
	assignment map[ptx.Reg]int
	spills     []ptx.Reg
}

func (p *colorPass) Name() string { return "color" }

func (p *colorPass) Requires() []passes.Kind {
	return []passes.Kind{passes.KindCFG, passes.KindLiveness}
}

func (p *colorPass) Invalidates() []passes.Kind { return nil }

func (p *colorPass) Run(k *ptx.Kernel, am *passes.AnalysisManager) error {
	lv, err := am.Liveness()
	if err != nil {
		return err
	}
	if p.st.opts.Algorithm == AlgoLinearScan {
		p.assignment, p.spills, err = p.st.colorLinear(lv)
	} else {
		p.assignment, p.spills, err = p.st.color(lv)
	}
	return err
}

// spillInsertPass rewrites the working kernel so the chosen registers live
// in the local-memory SpillStack.
type spillInsertPass struct {
	st     *allocState
	spills []ptx.Reg
}

func (p *spillInsertPass) Name() string { return "spill-insert" }

func (p *spillInsertPass) Requires() []passes.Kind { return nil }

func (p *spillInsertPass) Invalidates() []passes.Kind {
	return []passes.Kind{passes.KindCFG, passes.KindUseDef}
}

func (p *spillInsertPass) Run(k *ptx.Kernel, am *passes.AnalysisManager) error {
	return p.st.insertSpills(p.spills)
}

// physRewritePass maps the colored kernel onto dense physical registers,
// verifies both the virtual and physical forms (defense in depth: a bug in
// spill insertion or the rewrite must surface as a structured VerifyError,
// not as a downstream simulator fault), and rebinds the AnalysisManager to
// the physical kernel.
type physRewritePass struct {
	st         *allocState
	assignment map[ptx.Reg]int
}

func (p *physRewritePass) Name() string { return "phys-rewrite" }

func (p *physRewritePass) Requires() []passes.Kind { return nil }

func (p *physRewritePass) Invalidates() []passes.Kind { return nil }

func (p *physRewritePass) Run(k *ptx.Kernel, am *passes.AnalysisManager) error {
	st := p.st
	st.finish(p.assignment)
	if err := ptx.Verify(st.res.Virtual, "spill-insert"); err != nil {
		return err
	}
	if err := ptx.Verify(st.res.Kernel, "regalloc"); err != nil {
		return err
	}
	am.Replace(st.res.Kernel)
	return nil
}

// AllocOptions exposes the run's allocation options so pass-wrap hooks
// (passes.SetGlobalWrap) can filter by budget or ablation flags.
func (p *physRewritePass) AllocOptions() Options { return p.st.opts }

// Allocate colors the kernel's virtual registers into at most opts.Regs
// 32-bit slots per thread, spilling to a local-memory SpillStack when the
// limit is exceeded (paper §5.1). The input kernel is not modified.
func Allocate(k *ptx.Kernel, opts Options) (*Result, error) {
	return AllocateWith(nil, k, opts)
}

// AllocateWith runs the allocation pipeline under pm, so callers composing
// a larger pipeline (core, spillopt) share one instrumented manager. A nil
// pm gets a private uninstrumented manager.
func AllocateWith(pm *passes.Manager, k *ptx.Kernel, opts Options) (*Result, error) {
	if opts.Regs <= 0 {
		return nil, fmt.Errorf("regalloc: non-positive register budget %d", opts.Regs)
	}
	if pm == nil {
		pm = &passes.Manager{}
	}
	st := &allocState{
		opts:    opts,
		k:       k.Clone(),
		noSpill: make(map[ptx.Reg]bool),
		slots:   make(map[ptx.Reg]SpillSlot),
		baseReg: ptx.NoReg,
		res:     &Result{},
	}
	am := passes.NewAnalysisManager(st.k)
	if opts.Coalesce {
		if err := pm.Run(am, &coalescePass{st: st}); err != nil {
			return nil, err
		}
	}
	for iter := 0; iter < opts.maxIter(); iter++ {
		st.res.Iterations = iter + 1
		cp := &colorPass{st: st}
		if err := pm.Run(am, cp); err != nil {
			return nil, err
		}
		if len(cp.spills) == 0 {
			if err := pm.Run(am, &physRewritePass{st: st, assignment: cp.assignment}); err != nil {
				return nil, err
			}
			return st.res, nil
		}
		if err := pm.Run(am, &spillInsertPass{st: st, spills: cp.spills}); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("regalloc: did not converge after %d iterations", opts.maxIter())
}
