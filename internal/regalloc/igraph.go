// Package regalloc implements register allocation for PTX kernels under a
// per-thread register limit: a Chaitin-Briggs graph-coloring allocator with
// spill-code insertion (paper §5), plus a linear-scan reference allocator
// used to cross-validate spill volume (paper §5.2, Figure 12).
//
// The allocator works in 32-bit register slots: a 64-bit virtual register
// occupies two slots, predicates live in a separate predicate file and are
// not charged against the budget — matching how NVIDIA GPUs account
// "registers per thread".
package regalloc

import (
	"sort"

	"crat/internal/cfg"
	"crat/internal/ptx"
)

// igraph is an interference graph over a kernel's virtual registers.
// Only Class32/Class64 registers participate; predicates are handled by a
// trivial separate pass.
type igraph struct {
	k     *ptx.Kernel
	adj   []map[ptx.Reg]struct{} // adjacency sets, indexed by Reg
	nodes []ptx.Reg              // participating registers (accessed at least once)
	inUse []bool                 // register is referenced somewhere
}

// buildIGraph constructs the interference graph from liveness: at every
// definition point, the defined register interferes with everything live
// after the instruction.
func buildIGraph(k *ptx.Kernel, lv *cfg.Liveness) *igraph {
	n := k.NumRegs()
	g := &igraph{
		k:     k,
		adj:   make([]map[ptx.Reg]struct{}, n),
		inUse: make([]bool, n),
	}
	for i := range g.adj {
		g.adj[i] = make(map[ptx.Reg]struct{})
	}
	var buf []ptx.Reg
	mark := func(r ptx.Reg) {
		if k.RegType(r).Class() != ptx.ClassPred {
			g.inUse[r] = true
		}
	}
	for i := range k.Insts {
		in := &k.Insts[i]
		buf = in.Uses(buf[:0])
		for _, r := range buf {
			mark(r)
		}
		buf = in.Defs(buf[:0])
		for _, d := range buf {
			mark(d)
			if k.RegType(d).Class() == ptx.ClassPred {
				continue
			}
			lv.InstOut[i].ForEach(func(l ptx.Reg) {
				if l == d || k.RegType(l).Class() == ptx.ClassPred {
					return
				}
				g.addEdge(d, l)
			})
		}
	}
	for r := 0; r < n; r++ {
		if g.inUse[r] {
			g.nodes = append(g.nodes, ptx.Reg(r))
		}
	}
	return g
}

func (g *igraph) addEdge(a, b ptx.Reg) {
	if a == b {
		return
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
}

// slots returns the number of 32-bit slots register r occupies.
func (g *igraph) slots(r ptx.Reg) int {
	return g.k.RegType(r).Class().Slots()
}

// squeeze returns the worst-case number of slots the neighbors of r in
// "alive" can block: the Briggs trivial-colorability test is
// squeeze(r) <= K - slots(r).
func (g *igraph) squeeze(r ptx.Reg, removed map[ptx.Reg]bool) int {
	s := 0
	for n := range g.adj[r] {
		if !removed[n] {
			s += g.slots(n)
		}
	}
	return s
}

// degree returns the unweighted interference degree of r among nodes not in
// removed.
func (g *igraph) degree(r ptx.Reg, removed map[ptx.Reg]bool) int {
	d := 0
	for n := range g.adj[r] {
		if !removed[n] {
			d++
		}
	}
	return d
}

// sortedNodes returns the participating nodes in deterministic order.
func (g *igraph) sortedNodes() []ptx.Reg {
	out := append([]ptx.Reg(nil), g.nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
