package regalloc

import (
	"sort"

	"crat/internal/cfg"
	"crat/internal/ptx"
)

// colorLinear runs one round of Poletto-Sarkar linear-scan allocation over
// conservative linear live intervals from the cached liveness. It serves
// as the independent reference allocator for the spill-volume
// cross-validation of paper Figure 12 ("we do not attempt to implement a
// register allocator that perfectly matches the commercial compiler").
func (st *allocState) colorLinear(lv *cfg.Liveness) (map[ptx.Reg]int, []ptx.Reg, error) {
	ranges := lv.LiveRanges()

	// Intervals of referenced, non-predicate registers in start order.
	var ivs []cfg.LiveRange
	for _, r := range ranges {
		if r.Start < 0 {
			continue
		}
		if st.k.RegType(r.Reg).Class() == ptx.ClassPred {
			continue
		}
		ivs = append(ivs, r)
	}
	sort.Slice(ivs, func(a, b int) bool {
		if ivs[a].Start != ivs[b].Start {
			return ivs[a].Start < ivs[b].Start
		}
		return ivs[a].Reg < ivs[b].Reg
	})

	K := st.opts.Regs
	busy := make([]bool, K)
	assignment := make(map[ptx.Reg]int)
	var spills []ptx.Reg

	type activeIv struct {
		reg  ptx.Reg
		end  int
		slot int
		w    int
	}
	var active []activeIv

	slotsOf := func(r ptx.Reg) int { return st.k.RegType(r).Class().Slots() }

	free := func(a activeIv) {
		for i := 0; i < a.w; i++ {
			busy[a.slot+i] = false
		}
	}
	alloc := func(w int) int {
		for s := 0; s+w <= K; s++ {
			ok := true
			for i := 0; i < w; i++ {
				if busy[s+i] {
					ok = false
					break
				}
			}
			if ok {
				for i := 0; i < w; i++ {
					busy[s+i] = true
				}
				return s
			}
		}
		return -1
	}

	for _, iv := range ivs {
		// Expire intervals that ended before this start.
		kept := active[:0]
		for _, a := range active {
			if a.end < iv.Start {
				free(a)
			} else {
				kept = append(kept, a)
			}
		}
		active = kept

		w := slotsOf(iv.Reg)
		for {
			slot := alloc(w)
			if slot >= 0 {
				assignment[iv.Reg] = slot
				active = append(active, activeIv{iv.Reg, iv.End, slot, w})
				break
			}
			// No room: spill the spillable interval with the furthest end
			// (current interval included).
			victim := -1 // index into active, or -2 for current
			victimEnd := -1
			if !st.noSpill[iv.Reg] {
				victim = -2
				victimEnd = iv.End
			}
			for i, a := range active {
				if st.noSpill[a.reg] {
					continue
				}
				if a.end > victimEnd {
					victim = i
					victimEnd = a.end
				}
			}
			switch victim {
			case -1:
				return nil, nil, ErrInfeasible
			case -2:
				spills = append(spills, iv.Reg)
			default:
				v := active[victim]
				free(v)
				delete(assignment, v.reg)
				spills = append(spills, v.reg)
				active = append(active[:victim], active[victim+1:]...)
				continue // retry allocation for the current interval
			}
			break
		}
	}
	return assignment, spills, nil
}
