package regalloc

import (
	"testing"

	"crat/internal/gpusim"
	"crat/internal/ptx"
)

// copyHeavyKernel mimics nvcc's SSA-style output: values flow through
// register-to-register movs whose sources die at the copy.
func copyHeavyKernel() *ptx.Kernel {
	b := ptx.NewBuilder("copyheavy")
	b.Param("out", ptx.U64)
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "out")
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	cur := tid
	for i := 0; i < 6; i++ {
		stage := b.Reg(ptx.U32)
		b.Add(ptx.U32, stage, ptx.R(cur), ptx.Imm(int64(i+1)))
		copied := b.Reg(ptx.U32)
		b.Mov(ptx.U32, copied, ptx.R(stage)) // stage dies here: coalescible
		cur = copied
	}
	oA := b.AddrOf(out, tid, 4)
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(oA, 0), ptx.R(cur))
	b.Exit()
	return b.Kernel()
}

func TestCoalesceEliminatesCopies(t *testing.T) {
	k := copyHeavyKernel()
	plain, err := Allocate(k, Options{Regs: 16})
	if err != nil {
		t.Fatal(err)
	}
	co, err := Allocate(k, Options{Regs: 16, Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if co.Coalesced == 0 {
		t.Fatal("no copies coalesced in a copy-heavy kernel")
	}
	if plain.Coalesced != 0 {
		t.Error("baseline run reports coalesced copies")
	}
	if len(co.Kernel.Insts) >= len(plain.Kernel.Insts) {
		t.Errorf("coalescing did not shrink the kernel: %d -> %d insts",
			len(plain.Kernel.Insts), len(co.Kernel.Insts))
	}
	if err := co.Kernel.Validate(); err != nil {
		t.Fatalf("coalesced kernel invalid: %v", err)
	}
	checkColoring(t, co)
}

func TestCoalescedKernelFunctionallyEquivalent(t *testing.T) {
	k := copyHeavyKernel()
	run := func(kern *ptx.Kernel) []uint32 {
		mem := gpusim.NewMemory()
		out := mem.Alloc(4 * 64)
		sim, err := gpusim.NewSimulator(gpusim.FermiConfig(), mem, gpusim.Launch{
			Kernel: kern, Grid: 1, Block: 64, Params: []uint64{out},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		res := make([]uint32, 64)
		for i := range res {
			res[i] = mem.ReadUint32(out + uint64(4*i))
		}
		return res
	}
	co, err := Allocate(k, Options{Regs: 16, Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	ref := run(k)
	got := run(co.Kernel)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("coalesced kernel diverges at %d: %d vs %d", i, got[i], ref[i])
		}
	}
	// tid + 1+2+...+6 = tid + 21.
	if ref[5] != 5+21 {
		t.Fatalf("reference kernel wrong: out[5] = %d", ref[5])
	}
}

func TestCoalesceSkipsInterferingCopies(t *testing.T) {
	// v2 = mov v1 where v1 stays live past the copy: both values coexist,
	// so the copy must survive.
	b := ptx.NewBuilder("interf")
	b.Param("out", ptx.U64)
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "out")
	v1 := b.Reg(ptx.U32)
	b.MovSpec(v1, ptx.SpecTidX)
	v2 := b.Reg(ptx.U32)
	b.Mov(ptx.U32, v2, ptx.R(v1))
	b.Add(ptx.U32, v2, ptx.R(v2), ptx.Imm(5)) // v2 diverges from v1
	sum := b.Reg(ptx.U32)
	b.Add(ptx.U32, sum, ptx.R(v1), ptx.R(v2)) // both live here
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(out, 0), ptx.R(sum))
	b.Exit()
	k := b.Kernel()
	res, err := Allocate(k, Options{Regs: 16, Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coalesced != 0 {
		t.Errorf("coalesced %d interfering copies", res.Coalesced)
	}
}

func TestCoalesceHandlesLabelledCopies(t *testing.T) {
	// A labelled mov that gets coalesced must hand its label to the next
	// instruction (and branches must keep working).
	b := ptx.NewBuilder("lblcopy")
	b.Param("out", ptx.U64)
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "out")
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	p := b.Reg(ptx.Pred)
	b.Setp(ptx.CmpLt, ptx.U32, p, ptx.R(tid), ptx.Imm(16))
	v1 := b.Reg(ptx.U32)
	b.Add(ptx.U32, v1, ptx.R(tid), ptx.Imm(1))
	b.BraIf(p, false, "TARGET")
	b.Add(ptx.U32, v1, ptx.R(v1), ptx.Imm(100))
	v2 := b.Reg(ptx.U32)
	b.Label("TARGET").Mov(ptx.U32, v2, ptx.R(v1)) // labelled, coalescible
	oA := b.AddrOf(out, tid, 4)
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(oA, 0), ptx.R(v2))
	b.Exit()
	k := b.Kernel()

	res, err := Allocate(k, Options{Regs: 16, Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coalesced == 0 {
		t.Fatal("labelled copy not coalesced")
	}
	if err := res.Kernel.Validate(); err != nil {
		t.Fatalf("kernel invalid after labelled coalesce: %v", err)
	}
	// Functional check: tid<16 -> tid+1, else tid+101.
	mem := gpusim.NewMemory()
	outBuf := mem.Alloc(4 * 32)
	sim, err := gpusim.NewSimulator(gpusim.FermiConfig(), mem, gpusim.Launch{
		Kernel: res.Kernel, Grid: 1, Block: 32, Params: []uint64{outBuf},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(i + 1)
		if i >= 16 {
			want = uint32(i + 101)
		}
		if got := mem.ReadUint32(outBuf + uint64(4*i)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestCoalesceReducesMaxReg(t *testing.T) {
	// With copies folded away, the same kernel colors into fewer registers.
	k := copyHeavyKernel()
	co, err := Allocate(k, Options{Regs: 64, Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Allocate(k, Options{Regs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if co.UsedRegs > plain.UsedRegs {
		t.Errorf("coalescing increased register use: %d -> %d", plain.UsedRegs, co.UsedRegs)
	}
}
