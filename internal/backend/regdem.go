package backend

// The regdem backend implements RegDem-style aggressive register demotion
// (Sakdhnagool et al., PAPERS.md): instead of allocating first and
// relocating spill sub-stacks afterwards (crat), it rewrites selected
// virtual registers to shared-memory slots *before* allocation, so the
// allocator itself sees lowered live pressure. Victims are chosen at the
// program's pressure maxima, cheapest (loop-depth-weighted access count)
// first — high pressure, low frequency — and the rewrite consumes only
// the spare shared memory available at the design point's TLP, so the
// demotion never lowers occupancy.

import (
	"sort"

	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/regalloc"
)

func init() {
	Register(regdemBackend{})
}

type regdemBackend struct{}

func (regdemBackend) Name() string { return "regdem" }

func (regdemBackend) Description() string {
	return "demote high-pressure, low-frequency registers to shared memory before allocation (RegDem)"
}

func (regdemBackend) Passes() []PassInfo {
	return []PassInfo{
		{"regdem-demote", "pre-allocation demotion of high-pressure, low-frequency registers to shared-memory slots (per candidate)"},
		{"coalesce", "conservative copy coalescing before the first coloring (Options.Coalesce; per candidate)"},
		{"color", "Chaitin-Briggs coloring (or linear scan) over the cached CFG and liveness (per candidate)"},
		{"spill-insert", "rewrites uncolorable registers onto the local-memory SpillStack (per candidate)"},
		{"phys-rewrite", "virtual-to-physical register rewrite; verifies and emits the allocated kernel (per candidate)"},
	}
}

func (b regdemBackend) Candidates(pm *passes.Manager, req Request) ([]Candidate, error) {
	var out []Candidate
	for _, pt := range req.Points {
		c, err := b.build(pm, req, pt)
		if err != nil {
			if IsPipelineFault(err) {
				return nil, err
			}
			continue
		}
		out = append(out, *c)
	}
	return out, nil
}

func (b regdemBackend) build(pm *passes.Manager, req Request, pt Point) (*Candidate, error) {
	k := req.Kernel.Clone()
	am := passes.NewAnalysisManager(k)
	dp := &demotePass{
		budget:     pt.Reg,
		spareShm:   SpareShm(req.Arch, req.ShmSize, pt.TLP),
		blockSize:  req.BlockSize,
		unweighted: req.UnweightedGain,
	}
	if err := pm.Run(am, dp); err != nil {
		return nil, err
	}
	alloc, err := regalloc.AllocateWith(pm, am.Kernel(), regalloc.Options{
		Regs:                pt.Reg,
		Coalesce:            req.Coalesce,
		UnweightedSpillCost: req.UnweightedSpillCost,
	})
	if err != nil {
		return nil, err
	}
	return &Candidate{
		Backend:         b.Name(),
		Reg:             pt.Reg,
		TLP:             pt.TLP,
		Alloc:           alloc,
		Overhead:        alloc.Kernel.SpillOverhead(),
		Demoted:         dp.demoted,
		DemotedShmBytes: dp.shmBytes,
	}, nil
}

// demoteElem is the interleaved-layout element size of one demoted value:
// slots are padded to at least 4 bytes so a warp's accesses stay aligned,
// matching spillopt's groupElem.
func demoteElem(t ptx.Type) int64 {
	elem := int64(4)
	if int64(t.Bytes()) > elem {
		elem = int64(t.Bytes())
	}
	return elem
}

// sharedDemoteName names the shared-memory array holding one type's
// demoted values (distinct from spillopt's SpillShm_* arrays so a kernel
// can carry both).
func sharedDemoteName(t ptx.Type) string { return "RegDemShm_" + t.String() }

// demotePass selects and rewrites demotion victims. Selection walks the
// per-instruction live pressure: while the maximum exceeds the register
// budget (less one slot per shared-address register the rewrite will
// add), it demotes the cheapest live register at the hottest point —
// lowest loop-depth-weighted access count, ties toward the lower register
// id — provided its shared slot still fits in the spare shared memory.
// The rewrite then mirrors the allocator's spill insertion, but against
// per-type shared arrays in the element-interleaved layout (slot j of
// thread t at j*elem*BlockSize + t*elem).
type demotePass struct {
	budget     int   // register budget in 32-bit slots (design-point Reg)
	spareShm   int64 // spare shared memory per block at the point's TLP
	blockSize  int
	unweighted bool

	// Outputs.
	demoted  int
	shmBytes int64
}

func (p *demotePass) Name() string { return "regdem-demote" }

func (p *demotePass) Requires() []passes.Kind {
	return []passes.Kind{passes.KindCFG, passes.KindLiveness, passes.KindLoopDepth}
}

func (p *demotePass) Invalidates() []passes.Kind {
	return []passes.Kind{passes.KindCFG, passes.KindUseDef}
}

func (p *demotePass) Run(k *ptx.Kernel, am *passes.AnalysisManager) error {
	if p.blockSize <= 0 || p.spareShm <= 0 {
		return nil
	}
	lv, err := am.Liveness()
	if err != nil {
		return err
	}
	depth, err := am.InstLoopDepth()
	if err != nil {
		return err
	}

	// Per-instruction live pressure in 32-bit slots (as MaxLivePressure).
	pres := make([]int, len(lv.InstOut))
	for i := range lv.InstOut {
		s := 0
		lv.InstOut[i].ForEach(func(r ptx.Reg) {
			s += k.RegType(r).Class().Slots()
		})
		pres[i] = s
	}

	// Loop-depth-weighted access counts: the demotion cost of a register
	// (every access becomes a shared-memory reload or store-back).
	weights := make([]float64, k.NumRegs())
	var buf []ptx.Reg
	for i := range k.Insts {
		w := 1.0
		if !p.unweighted {
			for d := 0; d < depth[i]; d++ {
				w *= 10
			}
		}
		buf = k.Insts[i].Uses(buf[:0])
		for _, r := range buf {
			weights[r] += w
		}
		buf = k.Insts[i].Defs(buf[:0])
		for _, r := range buf {
			weights[r] += w
		}
	}

	demote := make(map[ptx.Reg]bool)
	groupTypes := make(map[ptx.Type]bool)
	shmLeft := p.spareShm
	for {
		// One whole-kernel shared-address register per demoted type stays
		// live everywhere, so the effective budget shrinks with each group.
		target := p.budget - len(groupTypes)
		maxP, at := 0, -1
		for i, v := range pres {
			if v > maxP {
				maxP, at = v, i
			}
		}
		if at < 0 || maxP <= target {
			break
		}
		best, bestW := ptx.NoReg, 0.0
		lv.InstOut[at].ForEach(func(r ptx.Reg) {
			if demote[r] {
				return
			}
			t := k.RegType(r)
			if t.Class() == ptx.ClassPred {
				return
			}
			if demoteElem(t)*int64(p.blockSize) > shmLeft {
				return
			}
			if best == ptx.NoReg || weights[r] < bestW {
				best, bestW = r, weights[r]
			}
		})
		if best == ptx.NoReg {
			break // hottest point has no demotable register left
		}
		t := k.RegType(best)
		demote[best] = true
		groupTypes[t] = true
		shmLeft -= demoteElem(t) * int64(p.blockSize)
		slots := t.Class().Slots()
		for i := range pres {
			if lv.InstOut[i].Has(best) {
				pres[i] -= slots
			}
		}
	}
	if len(demote) == 0 {
		return nil
	}
	return p.rewrite(k, demote)
}

// demoteSlot is one demoted register's shared-memory home.
type demoteSlot struct {
	addr ptx.Reg // per-thread group address register
	off  int64   // static displacement within the group
	typ  ptx.Type
}

// rewrite moves every register in demote to a shared-memory slot:
// per-type interleaved arrays, per-thread addresses computed once at
// entry, each use reloaded into a fresh temporary and each definition
// stored back under the instruction's guard (mirroring the allocator's
// spill insertion, paper Listing 4).
func (p *demotePass) rewrite(k *ptx.Kernel, demote map[ptx.Reg]bool) error {
	// Group the victims by type, registers sorted for determinism.
	byType := make(map[ptx.Type][]ptx.Reg)
	var types []ptx.Type
	for r := range demote {
		t := k.RegType(r)
		if _, ok := byType[t]; !ok {
			types = append(types, t)
		}
		byType[t] = append(byType[t], r)
	}
	sort.Slice(types, func(a, b int) bool { return types[a] < types[b] })
	for _, t := range types {
		regs := byType[t]
		sort.Slice(regs, func(a, b int) bool { return regs[a] < regs[b] })
	}

	// Declare the arrays and compute per-group, per-thread addresses.
	var setup []ptx.Inst
	tid := k.NewReg(ptx.U32)
	setup = append(setup, ptx.Inst{
		Op: ptx.OpMov, Type: ptx.U32,
		Dst: ptx.R(tid), Srcs: []ptx.Operand{ptx.Spec(ptx.SpecTidX)},
		Guard: ptx.NoReg, Meta: ptx.MetaSpillAddr,
	})
	slots := make(map[ptx.Reg]demoteSlot)
	for _, t := range types {
		regs := byType[t]
		elem := demoteElem(t)
		name := sharedDemoteName(t)
		size := elem * int64(len(regs)) * int64(p.blockSize)
		k.AddArray(ptx.ArrayDecl{Name: name, Space: ptx.SpaceShared, Align: 8, Size: size})
		p.shmBytes += size
		base := k.NewReg(ptx.U32)
		addr := k.NewReg(ptx.U32)
		setup = append(setup,
			ptx.Inst{Op: ptx.OpMov, Type: ptx.U32, Dst: ptx.R(base),
				Srcs: []ptx.Operand{ptx.Sym(name)}, Guard: ptx.NoReg,
				Meta: ptx.MetaSpillAddr},
			ptx.Inst{Op: ptx.OpMad, Type: ptx.U32, Dst: ptx.R(addr),
				Srcs:  []ptx.Operand{ptx.R(tid), ptx.Imm(elem), ptx.R(base)},
				Guard: ptx.NoReg, Meta: ptx.MetaSpillAddr},
		)
		for j, r := range regs {
			slots[r] = demoteSlot{addr: addr, off: int64(j) * elem * int64(p.blockSize), typ: t}
		}
	}
	p.demoted = len(slots)

	var out []ptx.Inst
	var ubuf, dbuf []ptx.Reg
	for i := range k.Insts {
		in := k.Insts[i].Clone()

		// Reload demoted uses into fresh temporaries.
		ubuf = in.Uses(ubuf[:0])
		reloads := make(map[ptx.Reg]ptx.Reg)
		for _, r := range ubuf {
			slot, ok := slots[r]
			if !ok {
				continue
			}
			if _, dup := reloads[r]; dup {
				continue
			}
			tmp := k.NewReg(slot.typ)
			reloads[r] = tmp
			ld := ptx.Inst{
				Op: ptx.OpLd, Space: ptx.SpaceShared, Type: slot.typ,
				Dst:   ptx.R(tmp),
				Srcs:  []ptx.Operand{ptx.MemReg(slot.addr, slot.off)},
				Guard: ptx.NoReg, Meta: ptx.MetaSpillLoad,
			}
			// A label on the original instruction must move to the first
			// inserted reload so branches execute it.
			if in.Label != "" {
				ld.Label = in.Label
				in.Label = ""
			}
			out = append(out, ld)
		}
		renameDemotedUses(&in, reloads)

		// A demoted definition writes a fresh temporary, stored back after
		// (under the instruction's guard: a predicated write must not
		// clobber the slot in threads whose guard is false).
		var stores []ptx.Inst
		dbuf = in.Defs(dbuf[:0])
		for _, d := range dbuf {
			slot, ok := slots[d]
			if !ok {
				continue
			}
			tmp, dup := reloads[d]
			if !dup {
				tmp = k.NewReg(slot.typ)
			}
			in.Dst = ptx.R(tmp)
			stores = append(stores, ptx.Inst{
				Op: ptx.OpSt, Space: ptx.SpaceShared, Type: slot.typ,
				Dst:   ptx.MemReg(slot.addr, slot.off),
				Srcs:  []ptx.Operand{ptx.R(tmp)},
				Guard: in.Guard, GuardNeg: in.GuardNeg, Meta: ptx.MetaSpillStore,
			})
		}
		out = append(out, in)
		out = append(out, stores...)
	}
	k.Insts = append(setup, out...)
	return nil
}

// renameDemotedUses replaces register uses per the mapping (guard,
// sources, and memory bases on both sides), as regalloc's spill insertion
// does.
func renameDemotedUses(in *ptx.Inst, m map[ptx.Reg]ptx.Reg) {
	if len(m) == 0 {
		return
	}
	if t, ok := m[in.Guard]; ok && in.Guard != ptx.NoReg {
		in.Guard = t
	}
	rename := func(o *ptx.Operand) {
		switch o.Kind {
		case ptx.OperandReg:
			if t, ok := m[o.Reg]; ok {
				o.Reg = t
			}
		case ptx.OperandMem:
			if o.Reg != ptx.NoReg {
				if t, ok := m[o.Reg]; ok {
					o.Reg = t
				}
			}
		}
	}
	for i := range in.Srcs {
		rename(&in.Srcs[i])
	}
	if in.Dst.Kind == ptx.OperandMem {
		rename(&in.Dst)
	}
}
