package backend

// The crat and crat-local backends are the paper's original strategy,
// ported verbatim from the pre-refactor core.buildCandidate loop: allocate
// at the point's budget (spills go to the local-memory SpillStack), then —
// for crat — relocate spill sub-stacks into spare shared memory via the
// Algorithm 1 knapsack. Candidate order, pass sequence, and pass inputs
// are identical to the historical pipeline, which keeps golden output
// byte-identical when only these backends are enabled.

import (
	"crat/internal/passes"
	"crat/internal/regalloc"
	"crat/internal/spillopt"
)

func init() {
	Register(cratBackend{shared: true})
	Register(cratBackend{shared: false})
}

// cratBackend implements the CRAT strategy; shared selects whether the
// shared-memory spilling optimization runs (crat) or spills stay in local
// memory (crat-local, the paper's CRAT-local mode).
type cratBackend struct {
	shared bool
}

func (b cratBackend) Name() string {
	if b.shared {
		return "crat"
	}
	return "crat-local"
}

func (b cratBackend) Description() string {
	if b.shared {
		return "allocate at the budget, then knapsack spill sub-stacks into spare shared memory (paper Algorithm 1)"
	}
	return "allocate at the budget with local-memory spilling only (paper CRAT-local)"
}

func (b cratBackend) Passes() []PassInfo {
	out := []PassInfo{
		{"coalesce", "conservative copy coalescing before the first coloring (Options.Coalesce; per candidate)"},
		{"color", "Chaitin-Briggs coloring (or linear scan) over the cached CFG and liveness (per candidate)"},
		{"spill-insert", "rewrites uncolorable registers onto the local-memory SpillStack (per candidate)"},
		{"phys-rewrite", "virtual-to-physical register rewrite; verifies and emits the allocated kernel (per candidate)"},
	}
	if b.shared {
		out = append(out, PassInfo{"shm-knapsack", "spill-stack knapsack placement into spare shared memory (paper Algorithm 1; per candidate)"})
	}
	return out
}

// Candidates compiles one candidate per design point, dropping infeasible
// budgets and failing fast on pipeline faults, exactly as the historical
// Optimize loop did.
func (b cratBackend) Candidates(pm *passes.Manager, req Request) ([]Candidate, error) {
	var out []Candidate
	for _, pt := range req.Points {
		c, err := b.build(pm, req, pt)
		if err != nil {
			if IsPipelineFault(err) {
				// A pass emitted unverifiable IR or diverged from the
				// oracle: a compiler bug, not an infeasible budget.
				return nil, err
			}
			// Infeasible register budgets are simply not candidates.
			continue
		}
		out = append(out, *c)
	}
	return out, nil
}

func (b cratBackend) build(pm *passes.Manager, req Request, pt Point) (*Candidate, error) {
	allocOpts := regalloc.Options{
		Regs:                pt.Reg,
		Coalesce:            req.Coalesce,
		UnweightedSpillCost: req.UnweightedSpillCost,
	}
	alloc, err := regalloc.AllocateWith(pm, req.Kernel, allocOpts)
	if err != nil {
		return nil, err
	}
	c := &Candidate{Backend: b.Name(), Reg: pt.Reg, TLP: pt.TLP, Alloc: alloc, Overhead: alloc.Kernel.SpillOverhead()}
	if !b.shared {
		return c, nil
	}
	spare := SpareShm(req.Arch, req.ShmSize, pt.TLP)
	res, err := spillopt.OptimizeWith(pm, alloc, allocOpts, spillopt.Options{
		SpareShmBytes:  spare,
		BlockSize:      req.BlockSize,
		Split:          req.Split,
		UnweightedGain: req.UnweightedGain,
	})
	if err != nil {
		return nil, err
	}
	c.Spill = res
	c.Overhead = res.Overhead
	return c, nil
}
