// Package backend defines the pluggable optimization-backend framework
// (ROADMAP item 3): a Backend is one strategy for turning an app's pruned
// (register budget, TLP) design points into compiled candidate kernels.
// The selection machinery in internal/core runs every enabled backend
// under one instrumented pass manager and picks over the *union* of their
// candidates with the same TPSC/oracle model, so competing strategies —
// CRAT's post-allocation spill relocation, RegDem's pre-allocation
// register demotion, future scratchpad sharing — are compared on equal
// footing and every winner is gated by the same differential oracle.
package backend

import (
	"errors"
	"fmt"
	"sort"

	"crat/internal/gpusim"
	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/regalloc"
	"crat/internal/spillopt"
)

// Point is one surviving (register budget, TLP) design point from the
// shared pruning pass. Backends compile one candidate per point; a point
// infeasible under a backend's strategy is silently dropped.
type Point struct {
	Reg, TLP int
}

// Request carries everything a backend needs to compile candidates for
// one app: the input kernel, the launch geometry, the architecture, and
// the pruned design points. The knobs mirror core.Options so ablations
// apply uniformly across backends.
type Request struct {
	// AppName labels diagnostics; it does not affect compilation.
	AppName string
	// Kernel is the virtual-register input kernel. Backends must not
	// modify it — clone before rewriting.
	Kernel *ptx.Kernel
	Arch   gpusim.Config
	// BlockSize is threads per block; ShmSize the kernel's own shared
	// memory use (both from core.Analysis).
	BlockSize int
	ShmSize   int64
	// OptTLP is the coordinated TLP bound the points were pruned against.
	OptTLP int
	// Points are the design points to compile, in pruning order.
	Points []Point
	// Knobs forwarded from core.Options.
	Coalesce            bool
	Split               spillopt.Split
	UnweightedGain      bool
	UnweightedSpillCost bool
}

// Candidate is one compiled design point produced by a backend, carrying
// the metadata the TPSC model and the oracle selector consume.
type Candidate struct {
	// Backend names the strategy that produced this candidate.
	Backend string
	// Reg/TLP are the design point (Reg is the budget; the final kernel
	// may use fewer registers).
	Reg, TLP int
	// Alloc is the register allocation of the (possibly rewritten)
	// kernel. Always set.
	Alloc *regalloc.Result
	// Spill is the shared-memory spilling optimization outcome (CRAT
	// backend only; nil otherwise).
	Spill *spillopt.Result
	// Overhead summarizes the final kernel's spill instructions — the
	// TPSC model's per-candidate input.
	Overhead ptx.SpillOverhead
	// Demoted counts virtual registers rewritten to shared memory before
	// allocation (regdem backend; 0 otherwise).
	Demoted int
	// DemotedShmBytes is the per-block shared memory the demotion
	// consumed (regdem backend; 0 otherwise).
	DemotedShmBytes int64
}

// Kernel returns the executable kernel of the candidate.
func (c Candidate) Kernel() *ptx.Kernel {
	if c.Spill != nil {
		return c.Spill.Alloc.Kernel
	}
	return c.Alloc.Kernel
}

// UsedRegs returns the per-thread register usage of the final kernel.
func (c Candidate) UsedRegs() int {
	if c.Spill != nil {
		return c.Spill.Alloc.UsedRegs
	}
	return c.Alloc.UsedRegs
}

// PassInfo names one backend-owned pipeline pass for tooling
// (cratc -passes).
type PassInfo struct {
	Name string
	Desc string
}

// Backend is one candidate-generation strategy. Implementations must be
// deterministic (same Request, same candidates) and must run every
// kernel-transforming stage under the provided pass manager so the
// caller's instrumentation (verify-after-every-pass, dumps, oracle
// spot-checks, timing) covers them.
type Backend interface {
	// Name is the stable identifier used in flags, cache keys, Decision
	// records, and figures.
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// Passes lists the backend's pipeline passes in execution order.
	Passes() []PassInfo
	// Candidates compiles the request's design points. Infeasible points
	// are dropped; a returned error is a hard pipeline fault (see
	// IsPipelineFault) or an environment failure, never mere
	// infeasibility.
	Candidates(pm *passes.Manager, req Request) ([]Candidate, error)
}

// registry holds the registered backends in name order.
var registry = map[string]Backend{}

// Register adds a backend to the process-wide registry. It panics on a
// duplicate name: backends register from init functions, so a collision
// is a programming error.
func Register(b Backend) {
	name := b.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry[name] = b
}

// Lookup returns the named backend.
func Lookup(name string) (Backend, bool) {
	b, ok := registry[name]
	return b, ok
}

// Names lists the registered backends in sorted (deterministic) order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Resolve maps a backend name list to Backend values, erroring on
// unknown names with the valid set in the message.
func Resolve(names []string) ([]Backend, error) {
	out := make([]Backend, 0, len(names))
	for _, name := range names {
		b, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
		}
		out = append(out, b)
	}
	return out, nil
}

// pipelineFaulter marks errors that indicate a compiler bug rather than
// an infeasible design point. core.PassCheckError implements it.
type pipelineFaulter interface {
	PipelineFault()
}

// IsPipelineFault separates hard pipeline failures (a pass produced
// unverifiable IR, or an oracle spot-check diverged) from ordinary
// per-candidate infeasibility (regalloc.ErrInfeasible and friends),
// which backends absorb by dropping the design point.
func IsPipelineFault(err error) bool {
	var verr *ptx.VerifyError
	var ferr pipelineFaulter
	return errors.As(err, &verr) || errors.As(err, &ferr)
}

// SpareShm computes the spare shared memory per block at a given TLP: the
// slack a backend may consume for spilled or demoted values without
// changing the TLP (paper §5.3: "only utilizes the spare shared memory
// for spilling").
func SpareShm(arch gpusim.Config, shmUsed int64, tlp int) int64 {
	if tlp <= 0 {
		return 0
	}
	perBlock := int64(arch.SharedMemBytes) / int64(tlp)
	if perBlock > int64(arch.MaxSharedPerBlock) {
		perBlock = int64(arch.MaxSharedPerBlock)
	}
	spare := perBlock - shmUsed
	if spare < 0 {
		return 0
	}
	return spare
}
