// Package workloads generates the synthetic PTX kernels that stand in for
// the paper's Rodinia / Parboil / CUDA-SDK benchmarks (Table 3).
//
// CRAT's behaviour on an application is determined by a small set of
// PTX-level properties: the number of simultaneously live variables
// (register pressure / MaxReg), the per-block cache footprint and its reuse
// (L1 sensitivity and hence OptTLP), arithmetic intensity, shared-memory
// usage (spare space for Algorithm 1), divergence, and block size. Each
// paper benchmark is mapped to a parameter sheet over exactly those axes
// (see apps.go); the generator below emits a kernel realizing the sheet.
// This substitution is documented in DESIGN.md.
package workloads

import (
	"fmt"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/ptx"
)

// Profile is one application's parameter sheet.
type Profile struct {
	Name   string // application name (paper Table 3)
	Kernel string // kernel name (paper Table 3)
	Abbr   string
	Suite  string // rodinia / parboil / sdk
	// Sensitive marks the resource-sensitive class of Table 3.
	Sensitive bool

	Block int // threads per block (BlockSize)
	Grid  int // thread blocks per launch

	// Pressure is the number of long-lived "hot" f32 accumulators updated
	// every inner-loop iteration: spilling one of these costs two local
	// operations per inner iteration.
	Pressure int
	// ColdPressure adds long-lived accumulators updated only once per
	// outer sweep: cheap to spill, but they still occupy registers. Real
	// kernels mix both, which is what makes the reg/TLP tradeoff gradual.
	ColdPressure int
	// Chain is the length of the dependent multiply-add chain applied to
	// every loaded element (arithmetic intensity / latency tolerance).
	Chain int
	// LoadsPerIter issues this many global loads per inner iteration at
	// WSWords/LoadsPerIter-word gaps (memory intensity axis; 0 means 1).
	LoadsPerIter int
	// WSWords is the per-block working-set size in 4-byte words; the block
	// sweeps it Sweeps times (cache-sensitivity axis). Zero means a
	// streaming kernel with StreamIters grid-stride passes.
	WSWords     int
	Sweeps      int
	StreamIters int
	// SharedWords adds a per-block shared-memory staging tile of that many
	// words, exercised once per sweep with a barrier (the app's own
	// shared-memory usage, Figure 7).
	SharedWords int
	// Divergent adds a data-dependent branchy extra chain of this length
	// (control-flow divergence axis).
	Divergent int
	// UseSFU routes each element through a special-function op.
	UseSFU bool

	// DefaultReg is the per-thread register count "nvcc" chose for the
	// baselines (0 = min(MaxReg, 63)).
	DefaultReg int

	// Inputs lists alternative input scales for the sensitivity study
	// (paper §7.4); empty means just the default input.
	Inputs []Input
}

// Input is one input scale: multipliers applied to the launch shape.
type Input struct {
	Name      string
	GridScale float64 // scales Grid
	DataScale float64 // scales the data initialization pattern
}

// App materializes the profile into a runnable core.App.
func (p Profile) App() core.App {
	kern := buildKernel(p)
	return core.App{
		Name:       p.Abbr,
		Kernel:     kern,
		Grid:       p.Grid,
		Block:      p.Block,
		DefaultReg: p.DefaultReg,
		Setup:      p.setup(1),
	}
}

// AppWithInput materializes the profile at one of its input scales.
func (p Profile) AppWithInput(in Input) core.App {
	grid := int(float64(p.Grid)*in.GridScale + 0.5)
	if grid < 1 {
		grid = 1
	}
	kern := buildKernel(p)
	return core.App{
		Name:       fmt.Sprintf("%s/%s", p.Abbr, in.Name),
		Kernel:     kern,
		Grid:       grid,
		Block:      p.Block,
		DefaultReg: p.DefaultReg,
		Setup:      p.setupGrid(grid, in.DataScale),
	}
}

// dataWords returns the size of the input array in words for a grid.
func (p Profile) dataWords(grid int) int {
	if p.WSWords > 0 {
		// One window per block plus one window of slack for the last
		// block's extra per-iteration loads.
		return p.WSWords * (grid + 1)
	}
	iters := p.StreamIters
	if iters < 1 {
		iters = 1
	}
	loads := p.LoadsPerIter
	if loads < 1 {
		loads = 1
	}
	return p.Block * (grid*iters + loads)
}

func (p Profile) setup(dataScale float64) func(*gpusim.Memory) []uint64 {
	return p.setupGrid(p.Grid, dataScale)
}

func (p Profile) setupGrid(grid int, dataScale float64) func(*gpusim.Memory) []uint64 {
	if dataScale == 0 {
		dataScale = 1
	}
	return func(mem *gpusim.Memory) []uint64 {
		words := p.dataWords(grid)
		data := mem.Alloc(int64(4 * words))
		for i := 0; i < words; i++ {
			mem.WriteFloat32(data+uint64(4*i), float32(i%17)*0.25*float32(dataScale))
		}
		out := mem.Alloc(int64(4 * p.Block * grid))
		return []uint64{data, out}
	}
}

// buildKernel emits the synthetic kernel for a profile.
func buildKernel(p Profile) *ptx.Kernel {
	b := ptx.NewBuilder(p.Kernel)
	b.Param("data", ptx.U64).Param("out", ptx.U64)
	pd, po := b.Reg(ptx.U64), b.Reg(ptx.U64)
	b.LdParam(ptx.U64, pd, "data").LdParam(ptx.U64, po, "out")
	tid := b.Reg(ptx.U32)
	ctaid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	b.MovSpec(ctaid, ptx.SpecCtaIdX)

	// Long-lived accumulators: live from here to the final reduction. Hot
	// accumulators are updated every inner iteration, cold ones once per
	// sweep.
	accs := b.Regs(ptx.F32, p.Pressure)
	cold := b.Regs(ptx.F32, p.ColdPressure)
	for i, r := range accs {
		b.Mov(ptx.F32, r, ptx.FImm(float64(i)*0.125))
	}
	for i, r := range cold {
		b.Mov(ptx.F32, r, ptx.FImm(float64(i)*0.0625))
	}

	var sbase ptx.Reg
	if p.SharedWords > 0 {
		b.SharedArray("tile", int64(4*p.SharedWords))
		sbase = b.Reg(ptx.U32)
		b.Mov(ptx.U32, sbase, ptx.Sym("tile"))
	}

	inner := p.StreamIters
	if p.WSWords > 0 {
		inner = p.WSWords / 32
	}
	if inner < 1 {
		inner = 1
	}

	it := b.Reg(ptx.U32)
	k := b.Reg(ptx.U32)
	pOuter := b.Reg(ptx.Pred)
	pInner := b.Reg(ptx.Pred)
	sweeps := p.Sweeps
	if sweeps < 1 {
		sweeps = 1
	}
	b.Mov(ptx.U32, it, ptx.Imm(0))
	b.Label("OUTER").Setp(ptx.CmpGe, ptx.U32, pOuter, ptx.R(it), ptx.Imm(int64(sweeps)))
	b.BraIf(pOuter, false, "END")

	// Shared-memory staging once per sweep: tile[tid % SW] = acc0; barrier;
	// read a rotated slot.
	if p.SharedWords > 0 {
		slot := b.Reg(ptx.U32)
		b.And(ptx.U32, slot, ptx.R(tid), ptx.Imm(int64(p.SharedWords-1)))
		saddr := b.Reg(ptx.U32)
		b.Mad(ptx.U32, saddr, ptx.R(slot), ptx.Imm(4), ptx.R(sbase))
		b.St(ptx.SpaceShared, ptx.F32, ptx.MemReg(saddr, 0), ptx.R(accs[0]))
		b.Bar()
		rot := b.Reg(ptx.U32)
		b.Add(ptx.U32, rot, ptx.R(slot), ptx.Imm(1))
		b.And(ptx.U32, rot, ptx.R(rot), ptx.Imm(int64(p.SharedWords-1)))
		raddr := b.Reg(ptx.U32)
		b.Mad(ptx.U32, raddr, ptx.R(rot), ptx.Imm(4), ptx.R(sbase))
		sv := b.Reg(ptx.F32)
		b.Ld(ptx.SpaceShared, ptx.F32, sv, ptx.MemReg(raddr, 0))
		b.Add(ptx.F32, accs[0], ptx.R(accs[0]), ptx.R(sv))
		b.Bar()
	}

	b.Mov(ptx.U32, k, ptx.Imm(0))
	b.Label("INNER").Setp(ptx.CmpGe, ptx.U32, pInner, ptx.R(k), ptx.Imm(int64(inner)))
	b.BraIf(pInner, false, "AFTER")

	// Index computation.
	idx := b.Reg(ptx.U32)
	if p.WSWords > 0 {
		// idx = ctaid*WS + ((tid + 32k + it) & (WS-1)): the block sweeps
		// its private WSWords window with warp-coalesced lines.
		off := b.Reg(ptx.U32)
		b.Mad(ptx.U32, off, ptx.R(k), ptx.Imm(32), ptx.R(tid))
		b.Add(ptx.U32, off, ptx.R(off), ptx.R(it))
		b.And(ptx.U32, off, ptx.R(off), ptx.Imm(int64(p.WSWords-1)))
		base := b.Reg(ptx.U32)
		b.Mul(ptx.U32, base, ptx.R(ctaid), ptx.Imm(int64(p.WSWords)))
		b.Add(ptx.U32, idx, ptx.R(base), ptx.R(off))
	} else {
		// Grid-stride streaming: every load is cold.
		gidx := b.Reg(ptx.U32)
		ntid := b.Reg(ptx.U32)
		b.MovSpec(ntid, ptx.SpecNTidX)
		b.Mad(ptx.U32, gidx, ptx.R(ctaid), ptx.R(ntid), ptx.R(tid))
		stride := b.Reg(ptx.U32)
		ncta := b.Reg(ptx.U32)
		b.MovSpec(ncta, ptx.SpecNCtaIdX)
		b.Mul(ptx.U32, stride, ptx.R(ncta), ptx.R(ntid))
		b.Mad(ptx.U32, idx, ptx.R(k), ptx.R(stride), ptx.R(gidx))
	}
	addr := b.AddrOf(pd, idx, 4)
	loads := p.LoadsPerIter
	if loads < 1 {
		loads = 1
	}
	// Gap between the loads of one iteration, in bytes. Extra loads land in
	// the same working-set-sized region (the data array has slack for the
	// last block), so memory intensity rises without changing the footprint
	// shape.
	gap := int64(0)
	if p.WSWords > 0 {
		gap = int64(p.WSWords/loads) * 4
	} else {
		gap = int64(p.Block) * 4
	}
	v := b.Reg(ptx.F32)
	b.Ld(ptx.SpaceGlobal, ptx.F32, v, ptx.MemReg(addr, 0))
	for j := 1; j < loads; j++ {
		vj := b.Reg(ptx.F32)
		b.Ld(ptx.SpaceGlobal, ptx.F32, vj, ptx.MemReg(addr, int64(j)*gap))
		b.Add(ptx.F32, v, ptx.R(v), ptx.R(vj))
	}
	if p.UseSFU {
		b.Sfu(ptx.OpSqrt, ptx.F32, v, ptx.R(v))
	}

	// Dependent chain (arithmetic intensity).
	t := b.Reg(ptx.F32)
	b.Mov(ptx.F32, t, ptx.R(v))
	for c := 0; c < p.Chain; c++ {
		b.Mad(ptx.F32, t, ptx.R(t), ptx.FImm(1.0001), ptx.FImm(0.5))
	}

	// Divergent extra work for half the data values.
	if p.Divergent > 0 {
		pd2 := b.Reg(ptx.Pred)
		b.Setp(ptx.CmpGt, ptx.F32, pd2, ptx.R(v), ptx.FImm(2.0))
		b.BraIf(pd2, true, "SKIPDIV") // @!p bra
		for c := 0; c < p.Divergent; c++ {
			b.Mad(ptx.F32, t, ptx.R(t), ptx.FImm(0.999), ptx.FImm(0.125))
		}
		b.Label("SKIPDIV")
	}

	// Touch every accumulator each iteration: this is what makes register
	// pressure expensive to relieve by spilling (spills land in the hot
	// loop).
	for _, r := range accs {
		b.Mad(ptx.F32, r, ptx.R(r), ptx.FImm(1.0), ptx.R(t))
	}

	b.Add(ptx.U32, k, ptx.R(k), ptx.Imm(1))
	b.Bra("INNER")
	// Cold accumulators are touched once per sweep (outer-loop depth).
	b.Label("AFTER")
	for _, r := range cold {
		b.Mad(ptx.F32, r, ptx.R(r), ptx.FImm(1.0), ptx.FImm(0.25))
	}
	b.Add(ptx.U32, it, ptx.R(it), ptx.Imm(1))
	b.Bra("OUTER")
	b.Label("END")

	// Reduce the accumulators and store per-thread results.
	sum := b.Reg(ptx.F32)
	b.Mov(ptx.F32, sum, ptx.FImm(0))
	for _, r := range accs {
		b.Add(ptx.F32, sum, ptx.R(sum), ptx.R(r))
	}
	for _, r := range cold {
		b.Add(ptx.F32, sum, ptx.R(sum), ptx.R(r))
	}
	gidx := b.GlobalIndex()
	oaddr := b.AddrOf(po, gidx, 4)
	b.St(ptx.SpaceGlobal, ptx.F32, ptx.MemReg(oaddr, 0), ptx.R(sum))
	b.Exit()
	return b.Kernel()
}
