package workloads

// The parameter sheets below map each benchmark of paper Table 3 onto the
// generator's axes. The mapping targets each application's *published
// characterization* in the paper, not its source code:
//
//   - register-hungry apps (CFD, FDTD, DTC, BLK, ...) get enough live
//     accumulators that MaxReg exceeds what any pruned design point can
//     hold, so the reg/TLP tradeoff is real;
//   - cache-sensitive apps get per-block working sets sized against the
//     32KB L1 so that MaxTLP thrashes and throttling pays (KMN most
//     extreme: paper reports CRAT running it at TLP=1);
//   - STM/SPMV/KMN/LBM keep DefaultReg at their optimum so CRAT matches
//     OptTLP exactly, as Figure 13 reports;
//   - resource-insensitive apps (Table 3 bottom) have low pressure and
//     streaming access, so MaxTLP is already optimal.

// Sensitive returns the resource-sensitive applications (paper Table 3,
// top) in the order the paper's figures use.
func Sensitive() []Profile {
	return []Profile{
		{
			Name: "BlackScholes", Kernel: "BlackScholesGPU", Abbr: "BLK", Suite: "sdk", Sensitive: true,
			Block: 128, Grid: 10,
			Pressure: 14, ColdPressure: 20, Chain: 10, StreamIters: 6, UseSFU: true,
			DefaultReg: 32, // spills its cold values at default; CRAT's registers remove them
		},
		{
			Name: "cfd", Kernel: "cuda_compute_flux", Abbr: "CFD", Suite: "rodinia", Sensitive: true,
			Block: 128, Grid: 10,
			Pressure: 12, ColdPressure: 44, Chain: 2, WSWords: 3072, Sweeps: 5, LoadsPerIter: 5,
			DefaultReg: 40, // cache-bound at MaxTLP and spilling at the default allocation
			Inputs: []Input{
				{Name: "fvcorr.097K", GridScale: 1, DataScale: 1},
				{Name: "fvcorr.193K", GridScale: 1.5, DataScale: 1.3},
				{Name: "missile.0.2M", GridScale: 2, DataScale: 0.7},
			},
		},
		{
			Name: "dxtc", Kernel: "compress", Abbr: "DTC", Suite: "sdk", Sensitive: true,
			Block: 192, Grid: 12,
			Pressure: 18, ColdPressure: 34, Chain: 8, WSWords: 1024, Sweeps: 4, LoadsPerIter: 2, SharedWords: 256,
			DefaultReg: 40, // residual spills at every design point: Algorithm 1 pays
		},
		{
			Name: "EstimatePi", Kernel: "initRNG", Abbr: "ESP", Suite: "sdk", Sensitive: true,
			Block: 128, Grid: 10,
			Pressure: 12, ColdPressure: 16, Chain: 8, StreamIters: 5, UseSFU: true,
			DefaultReg: 28,
		},
		{
			Name: "FDTD3d", Kernel: "FiniteDifferences", Abbr: "FDTD", Suite: "sdk", Sensitive: true,
			Block: 256, Grid: 10,
			Pressure: 18, ColdPressure: 48, Chain: 6, WSWords: 2048, Sweeps: 4, LoadsPerIter: 2,
			DefaultReg: 42, // paper: OptTLP runs 42 regs; CRAT trades registers against TLP
		},
		{
			Name: "hotspot", Kernel: "calculate_temp", Abbr: "HST", Suite: "rodinia", Sensitive: true,
			Block: 192, Grid: 10,
			Pressure: 12, ColdPressure: 18, Chain: 8, WSWords: 1536, Sweeps: 4, LoadsPerIter: 2, SharedWords: 512,
			DefaultReg: 26, // spills at default eliminated by CRAT
		},
		{
			Name: "kmeans", Kernel: "invert_mapping", Abbr: "KMN", Suite: "rodinia", Sensitive: true,
			Block: 256, Grid: 6,
			Pressure: 6, Chain: 0, WSWords: 4096, Sweeps: 5, LoadsPerIter: 8,
			DefaultReg: 0, // 16KB working set per block: serious thrashing beyond TLP 1-2
		},
		{
			Name: "lbm", Kernel: "StreamCollide", Abbr: "LBM", Suite: "parboil", Sensitive: true,
			Block: 128, Grid: 10,
			Pressure: 22, Chain: 10, StreamIters: 6, LoadsPerIter: 2,
			DefaultReg: 0, // default = MaxReg: already the optimal allocation
		},
		{
			Name: "spmv", Kernel: "spmv_jds", Abbr: "SPMV", Suite: "parboil", Sensitive: true,
			Block: 128, Grid: 10,
			Pressure: 10, Chain: 2, WSWords: 3072, Sweeps: 4, LoadsPerIter: 3, Divergent: 6,
			DefaultReg: 0, // default = MaxReg: register utilization not improvable
		},
		{
			Name: "stencil", Kernel: "block2D", Abbr: "STE", Suite: "parboil", Sensitive: true,
			Block: 128, Grid: 10,
			Pressure: 18, ColdPressure: 36, Chain: 4, WSWords: 2048, Sweeps: 4, LoadsPerIter: 2, SharedWords: 1024,
			DefaultReg: 34, // residual spills: Algorithm 1 pays
		},
		{
			Name: "streamcluster", Kernel: "compute_cost", Abbr: "STM", Suite: "rodinia", Sensitive: true,
			Block: 128, Grid: 10,
			Pressure: 12, Chain: 4, WSWords: 4096, Sweeps: 4, LoadsPerIter: 3,
			DefaultReg: 0, // default = MaxReg
		},
	}
}

// Insensitive returns the resource-insensitive applications (paper Table 3,
// bottom): low register pressure, streaming or tiny working sets — neither
// throttling nor CRAT should move them.
func Insensitive() []Profile {
	return []Profile{
		{Name: "backprop", Kernel: "layerforward", Abbr: "BAK", Suite: "rodinia",
			Block: 128, Grid: 10, Pressure: 8, Chain: 6, StreamIters: 4, SharedWords: 256},
		{Name: "bfs", Kernel: "kernel", Abbr: "BFS", Suite: "rodinia",
			Block: 128, Grid: 10, Pressure: 4, Chain: 2, StreamIters: 4, Divergent: 8},
		{Name: "b+tree", Kernel: "findK", Abbr: "B+T", Suite: "rodinia",
			Block: 128, Grid: 10, Pressure: 6, Chain: 3, StreamIters: 4, Divergent: 4},
		{Name: "gaussian", Kernel: "Fan1", Abbr: "GAU", Suite: "rodinia",
			Block: 128, Grid: 10, Pressure: 5, Chain: 4, StreamIters: 4},
		{Name: "lud", Kernel: "diagonal", Abbr: "LUD", Suite: "rodinia",
			Block: 64, Grid: 10, Pressure: 8, Chain: 5, WSWords: 512, Sweeps: 2, SharedWords: 256},
		{Name: "mummergpu", Kernel: "mummergpuKernel", Abbr: "MUM", Suite: "rodinia",
			Block: 128, Grid: 10, Pressure: 6, Chain: 3, StreamIters: 4, Divergent: 10},
		{Name: "nw", Kernel: "cuda_shared_1", Abbr: "NEED", Suite: "rodinia",
			Block: 64, Grid: 10, Pressure: 7, Chain: 4, WSWords: 512, Sweeps: 2, SharedWords: 512},
		{Name: "particlefilter", Kernel: "kernel", Abbr: "PTF", Suite: "rodinia",
			Block: 128, Grid: 10, Pressure: 8, Chain: 6, StreamIters: 4, UseSFU: true},
		{Name: "pathfinder", Kernel: "dynproc", Abbr: "PATH", Suite: "rodinia",
			Block: 128, Grid: 10, Pressure: 6, Chain: 4, StreamIters: 4, SharedWords: 256},
		{Name: "sgemm", Kernel: "mysgemmNT", Abbr: "SGM", Suite: "parboil",
			Block: 128, Grid: 10, Pressure: 10, Chain: 8, WSWords: 1024, Sweeps: 2},
		{Name: "srad", Kernel: "srad_cuda", Abbr: "SRAD", Suite: "rodinia",
			Block: 128, Grid: 10, Pressure: 8, Chain: 6, StreamIters: 4, UseSFU: true},
	}
}

// All returns every application, sensitive first (paper Table 3).
func All() []Profile {
	return append(Sensitive(), Insensitive()...)
}

// ByAbbr returns the profile with the given abbreviation.
func ByAbbr(abbr string) (Profile, bool) {
	for _, p := range All() {
		if p.Abbr == abbr {
			return p, true
		}
	}
	return Profile{}, false
}

// InputsFor returns the input-sensitivity study set (paper §7.4 uses CFD
// and BLK with 3-4 inputs each).
func InputsFor(abbr string) []Input {
	p, ok := ByAbbr(abbr)
	if !ok {
		return nil
	}
	if len(p.Inputs) > 0 {
		return p.Inputs
	}
	// Default input ladder for apps without an explicit set.
	return []Input{
		{Name: "small", GridScale: 0.75, DataScale: 1},
		{Name: "default", GridScale: 1, DataScale: 1},
		{Name: "large", GridScale: 1.5, DataScale: 1},
	}
}
