package workloads

import (
	"testing"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/ptx"
	"crat/internal/regalloc"
)

func TestAllProfilesBuildValidKernels(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Abbr, func(t *testing.T) {
			k := buildKernel(p)
			if err := k.Validate(); err != nil {
				t.Fatalf("kernel invalid: %v", err)
			}
			// The kernel must round-trip through the PTX text form.
			if _, err := ptx.Parse(ptx.Print(k)); err != nil {
				t.Fatalf("kernel does not reparse: %v", err)
			}
		})
	}
}

func TestTable3Composition(t *testing.T) {
	sens, insens := Sensitive(), Insensitive()
	if len(sens) != 11 {
		t.Errorf("sensitive apps = %d, want 11 (paper Table 3)", len(sens))
	}
	if len(insens) != 11 {
		t.Errorf("insensitive apps = %d, want 11 (paper Table 3)", len(insens))
	}
	seen := map[string]bool{}
	for _, p := range All() {
		if seen[p.Abbr] {
			t.Errorf("duplicate abbreviation %s", p.Abbr)
		}
		seen[p.Abbr] = true
		if p.Block <= 0 || p.Grid <= 0 {
			t.Errorf("%s: non-positive launch shape", p.Abbr)
		}
	}
	for _, p := range sens {
		if !p.Sensitive {
			t.Errorf("%s in Sensitive() but not marked", p.Abbr)
		}
	}
	for _, p := range insens {
		if p.Sensitive {
			t.Errorf("%s in Insensitive() but marked sensitive", p.Abbr)
		}
	}
	// Paper abbreviations must all resolve.
	for _, abbr := range []string{"BLK", "CFD", "DTC", "ESP", "FDTD", "HST", "KMN",
		"LBM", "SPMV", "STE", "STM", "BAK", "BFS", "B+T", "GAU", "LUD", "MUM",
		"NEED", "PTF", "PATH", "SGM", "SRAD"} {
		if _, ok := ByAbbr(abbr); !ok {
			t.Errorf("ByAbbr(%q) missing", abbr)
		}
	}
	if _, ok := ByAbbr("NOPE"); ok {
		t.Error("ByAbbr accepted an unknown abbreviation")
	}
}

func TestPressureDrivesMaxReg(t *testing.T) {
	arch := gpusim.FermiConfig()
	for _, p := range Sensitive() {
		k := buildKernel(p)
		max, err := regalloc.MaxReg(k)
		if err != nil {
			t.Fatalf("%s: %v", p.Abbr, err)
		}
		minWant := p.Pressure + p.ColdPressure
		if max < minWant {
			t.Errorf("%s: MaxReg %d below accumulator count %d", p.Abbr, max, minWant)
		}
		if max > minWant+30 {
			t.Errorf("%s: MaxReg %d implausibly far above accumulators %d", p.Abbr, max, minWant)
		}
		// The default register count must be allocatable.
		def := p.DefaultReg
		if def == 0 {
			def = max
			if def > arch.MaxRegPerThread {
				def = arch.MaxRegPerThread
			}
		}
		if _, err := regalloc.Allocate(k, regalloc.Options{Regs: def}); err != nil {
			t.Errorf("%s: default %d regs not allocatable: %v", p.Abbr, def, err)
		}
	}
}

func TestInsensitiveAppsFitWithoutPressure(t *testing.T) {
	// Insensitive apps must reach the block/thread occupancy limit at
	// their default registers: registers never throttle them.
	arch := gpusim.FermiConfig()
	for _, p := range Insensitive() {
		app := p.App()
		a, err := core.Analyze(app, arch)
		if err != nil {
			t.Fatalf("%s: %v", p.Abbr, err)
		}
		byThreads := arch.MaxThreadsPerSM / p.Block
		want := arch.MaxBlocksPerSM
		if byThreads < want {
			want = byThreads
		}
		if shm := a.ShmSize; shm > 0 {
			if byShm := arch.SharedMemBytes / int(shm); byShm < want {
				want = byShm
			}
		}
		if a.MaxTLP != want {
			t.Errorf("%s: MaxTLP %d, want %d (registers should not throttle)", p.Abbr, a.MaxTLP, want)
		}
	}
}

func TestSetupAllocatesEnoughData(t *testing.T) {
	// Simulate each app briefly at TLP=1 on a small grid to verify the
	// Setup buffers cover every access the kernel makes (the memory model
	// would silently return zeros, but out-of-bounds float reads would
	// produce NaN sums and, more importantly, the run must complete).
	arch := gpusim.FermiConfig()
	for _, p := range All() {
		p := p
		t.Run(p.Abbr, func(t *testing.T) {
			app := p.App()
			st, err := core.SimulateKernel(app, arch, app.Kernel, 0, 1)
			if err != nil {
				t.Fatalf("simulate: %v", err)
			}
			if st.GlobalLoads == 0 || st.GlobalStores == 0 {
				t.Errorf("no global traffic: %+v", st)
			}
			if st.BlocksCompleted != int64(p.Grid) {
				t.Errorf("completed %d blocks, want %d", st.BlocksCompleted, p.Grid)
			}
		})
	}
}

func TestWorkloadKnobs(t *testing.T) {
	base := Profile{Kernel: "k", Block: 64, Grid: 2, Pressure: 4, StreamIters: 2}

	shared := base
	shared.SharedWords = 128
	ks := buildKernel(shared)
	if ks.SharedBytes() != 4*128 {
		t.Errorf("SharedBytes = %d, want %d", ks.SharedBytes(), 4*128)
	}
	if buildKernel(base).SharedBytes() != 0 {
		t.Error("base kernel should use no shared memory")
	}

	sfu := base
	sfu.UseSFU = true
	if buildKernel(sfu).StaticStats().SFU <= buildKernel(base).StaticStats().SFU {
		t.Error("UseSFU did not add SFU instructions")
	}

	div := base
	div.Divergent = 4
	if buildKernel(div).StaticStats().Branches <= buildKernel(base).StaticStats().Branches {
		t.Error("Divergent did not add branches")
	}

	loads := base
	loads.LoadsPerIter = 4
	if buildKernel(loads).StaticStats().Loads <= buildKernel(base).StaticStats().Loads {
		t.Error("LoadsPerIter did not add loads")
	}
}

func TestInputsScaleGrid(t *testing.T) {
	p, _ := ByAbbr("CFD")
	if len(p.Inputs) < 3 {
		t.Fatalf("CFD needs >=3 inputs for the §7.4 study, has %d", len(p.Inputs))
	}
	for _, in := range p.Inputs {
		app := p.AppWithInput(in)
		wantGrid := int(float64(p.Grid)*in.GridScale + 0.5)
		if app.Grid != wantGrid {
			t.Errorf("input %s: grid %d, want %d", in.Name, app.Grid, wantGrid)
		}
		if app.Kernel == nil || app.Setup == nil {
			t.Errorf("input %s: incomplete app", in.Name)
		}
	}
	if got := InputsFor("BLK"); len(got) < 3 {
		t.Errorf("InputsFor(BLK) = %d inputs, want a default ladder of >=3", len(got))
	}
	if got := InputsFor("NOPE"); got != nil {
		t.Error("InputsFor accepted unknown abbreviation")
	}
}

func TestFunctionalDeterminismAcrossTLP(t *testing.T) {
	// The same app must produce identical output values regardless of the
	// TLP limit (scheduling must not change results).
	arch := gpusim.FermiConfig()
	p, _ := ByAbbr("STM")

	run := func(tlp int) []uint32 {
		app := p.App()
		mem := gpusim.NewMemory()
		params := app.Setup(mem)
		sim, err := gpusim.NewSimulator(arch, mem, gpusim.Launch{
			Kernel: app.Kernel, Grid: app.Grid, Block: app.Block,
			Params: params, TLPLimit: tlp,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		out := params[1]
		res := make([]uint32, app.Block*app.Grid)
		for i := range res {
			res[i] = mem.ReadUint32(out + uint64(4*i))
		}
		return res
	}
	a := run(1)
	b := run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs across TLP: %x vs %x", i, a[i], b[i])
		}
	}
}
