// Package core implements the CRAT compiler framework (Xie et al., MICRO
// 2015): coordinated register allocation and thread-level parallelism
// optimization for GPUs.
//
// The pipeline follows paper Figure 9:
//
//  1. Resource usage analysis collects MaxReg/MinReg, BlockSize, ShmSize,
//     MaxTLP and OptTLP (Table 1), the latter by profiling or by static
//     code analysis (Figure 10).
//  2. Design space pruning keeps only the rightmost register point of each
//     TLP "stair" and discards points whose TLP exceeds OptTLP (§4.2).
//  3. Each candidate (reg, TLP) is register-allocated (Chaitin-Briggs) with
//     the spilling optimization applied (Algorithm 1).
//  4. The TPSC metric ranks the candidates; the smallest wins (§6).
package core

import (
	"fmt"

	"crat/internal/cfg"
	"crat/internal/gpusim"
	"crat/internal/ptx"
	"crat/internal/regalloc"
)

// App couples a kernel with its launch shape: everything CRAT needs to
// analyze and simulate one application.
type App struct {
	Name   string
	Kernel *ptx.Kernel // virtual-register kernel (pre-allocation)
	Grid   int
	Block  int
	// DefaultReg is the register per-thread the stock compiler chose (the
	// baseline MaxTLP/OptTLP configurations use it). Zero means
	// min(MaxReg, 63), mirroring the common compiler cap.
	DefaultReg int
	// Setup prepares global memory and returns the kernel parameter
	// values. It is invoked once per simulation.
	Setup func(mem *gpusim.Memory) []uint64
}

// Analysis is the collected resource usage of paper Table 1.
type Analysis struct {
	MaxReg         int // registers to hold all variables (dataflow analysis)
	MinReg         int // NumRegister / MaxThreads (architecture floor)
	FeasibleMinReg int // smallest budget the allocator can honor
	DefaultReg     int
	BlockSize      int
	ShmSize        int64 // shared memory per block requested by the kernel
	MaxTLP         int   // occupancy at DefaultReg
	OptTLP         int   // filled by ProfileOptTLP or EstimateOptTLP
	Segments       []Segment
}

// Analyze collects the static resource-usage parameters of the app on the
// given architecture (paper §4.1). OptTLP is left zero; obtain it with
// ProfileOptTLP or EstimateOptTLP.
func Analyze(app App, arch gpusim.Config) (*Analysis, error) {
	if app.Kernel == nil || app.Block <= 0 {
		return nil, fmt.Errorf("core: app %q incomplete", app.Name)
	}
	maxReg, err := regalloc.MaxReg(app.Kernel)
	if err != nil {
		return nil, fmt.Errorf("core: MaxReg(%s): %w", app.Name, err)
	}
	a := &Analysis{
		MaxReg:    maxReg,
		MinReg:    arch.MinReg(),
		BlockSize: app.Block,
		ShmSize:   app.Kernel.SharedBytes(),
	}
	a.DefaultReg = app.DefaultReg
	if a.DefaultReg == 0 {
		a.DefaultReg = maxReg
	}
	if cap := arch.MaxRegPerThread; cap > 0 && a.DefaultReg > cap {
		a.DefaultReg = cap
	}
	a.FeasibleMinReg = feasibleFloor(app.Kernel, a.MaxReg)
	a.MaxTLP = arch.Occupancy(a.DefaultReg, a.ShmSize, app.Block)
	if a.MaxTLP == 0 {
		return nil, fmt.Errorf("core: %s does not fit on the SM at its default configuration", app.Name)
	}
	seg, err := Segments(app.Kernel)
	if err != nil {
		return nil, err
	}
	a.Segments = seg
	return a, nil
}

// feasibleFloor finds the smallest register budget the allocator can honor
// (spill machinery included) by bisection over [4, maxReg].
func feasibleFloor(k *ptx.Kernel, maxReg int) int {
	lo, hi := 4, maxReg
	ok := func(b int) bool {
		_, err := regalloc.Allocate(k, regalloc.Options{Regs: b})
		return err == nil
	}
	if ok(lo) {
		return lo
	}
	// Invariant: lo infeasible, hi feasible.
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// TLPAt returns the occupancy at a given register per-thread for this
// analysis (shared memory and block size fixed).
func (a *Analysis) TLPAt(arch gpusim.Config, reg int) int {
	return arch.Occupancy(reg, a.ShmSize, a.BlockSize)
}

// Staircase returns, for every TLP value t in [1, occupancy(lowest useful
// reg)], the largest register per-thread realizable at that TLP — the
// rightmost point of each stair in paper Figure 11. Because the throttler
// can always run *fewer* blocks than occupancy allows, stairs below
// occupancy(MaxReg) sit at MaxReg.
func (a *Analysis) Staircase(arch gpusim.Config) map[int]int {
	out := make(map[int]int)
	lo := a.FeasibleMinReg
	if lo < a.MinReg {
		lo = a.MinReg
	}
	if lo < 4 {
		lo = 4
	}
	hi := a.MaxReg
	if cap := arch.MaxRegPerThread; cap > 0 && hi > cap {
		// The ISA caps per-thread registers; demand beyond it must spill.
		hi = cap
	}
	if lo > hi {
		lo = hi
	}
	maxT := a.TLPAt(arch, lo)
	for t := 1; t <= maxT; t++ {
		// Largest reg in [lo, hi] whose occupancy still reaches t.
		best := -1
		for reg := lo; reg <= hi; reg++ {
			if a.TLPAt(arch, reg) >= t {
				best = reg
			}
		}
		if best > 0 {
			out[t] = best
		}
	}
	return out
}

// SegKind distinguishes computation from memory segments (paper Fig 10a).
type SegKind uint8

// Segment kinds.
const (
	SegCompute SegKind = iota
	SegMemory
)

// Segment is a maximal run of instructions of one kind with its summed
// latency weight, used by the static OptTLP estimator.
type Segment struct {
	Kind    SegKind
	Insts   int
	Latency float64 // summed per-instruction issue latencies, loop-weighted
}

// Segments divides the kernel into computation and memory segments (paper
// §4.1): instructions are walked in static order with loop bodies weighted
// by 10^depth, and every global/local memory instruction opens a memory
// segment.
func Segments(k *ptx.Kernel) ([]Segment, error) {
	g, err := cfg.Build(k)
	if err != nil {
		return nil, err
	}
	depth := g.InstLoopDepth()
	var segs []Segment
	add := func(kind SegKind, lat float64) {
		if n := len(segs); n > 0 && segs[n-1].Kind == kind {
			segs[n-1].Insts++
			segs[n-1].Latency += lat
			return
		}
		segs = append(segs, Segment{Kind: kind, Insts: 1, Latency: lat})
	}
	for i := range k.Insts {
		in := &k.Insts[i]
		w := 1.0
		for d := 0; d < depth[i]; d++ {
			w *= 10
		}
		switch {
		case in.Op.IsMemory() && (in.Space == ptx.SpaceGlobal || in.Space == ptx.SpaceLocal):
			add(SegMemory, w)
		case in.Op == ptx.OpBar:
			// Barriers end a segment but carry no latency of their own.
			add(SegCompute, w)
		default:
			add(SegCompute, w)
		}
	}
	return segs, nil
}
