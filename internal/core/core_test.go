package core

import (
	"testing"

	"crat/internal/gpusim"
	"crat/internal/ptx"
)

// makeTestApp builds a small cache-sensitive, register-pressured app:
// `hot` accumulators updated per inner iteration, `cold` updated per sweep,
// a wsWords-word per-block working set swept `sweeps` times.
func makeTestApp(name string, hot, cold, wsWords, sweeps, block, grid int) App {
	b := ptx.NewBuilder(name)
	b.Param("data", ptx.U64).Param("out", ptx.U64)
	pd, po := b.Reg(ptx.U64), b.Reg(ptx.U64)
	b.LdParam(ptx.U64, pd, "data").LdParam(ptx.U64, po, "out")
	tid, ctaid := b.Reg(ptx.U32), b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	b.MovSpec(ctaid, ptx.SpecCtaIdX)
	hots := b.Regs(ptx.F32, hot)
	colds := b.Regs(ptx.F32, cold)
	for i, r := range hots {
		b.Mov(ptx.F32, r, ptx.FImm(float64(i)))
	}
	for i, r := range colds {
		b.Mov(ptx.F32, r, ptx.FImm(float64(i)))
	}
	it, k := b.Reg(ptx.U32), b.Reg(ptx.U32)
	p1, p2 := b.Reg(ptx.Pred), b.Reg(ptx.Pred)
	b.Mov(ptx.U32, it, ptx.Imm(0))
	b.Label("OUTER").Setp(ptx.CmpGe, ptx.U32, p1, ptx.R(it), ptx.Imm(int64(sweeps)))
	b.BraIf(p1, false, "END")
	b.Mov(ptx.U32, k, ptx.Imm(0))
	b.Label("INNER").Setp(ptx.CmpGe, ptx.U32, p2, ptx.R(k), ptx.Imm(int64(wsWords/32)))
	b.BraIf(p2, false, "AFTER")
	off := b.Reg(ptx.U32)
	b.Mad(ptx.U32, off, ptx.R(k), ptx.Imm(32), ptx.R(tid))
	b.And(ptx.U32, off, ptx.R(off), ptx.Imm(int64(wsWords-1)))
	idx := b.Reg(ptx.U32)
	b.Mad(ptx.U32, idx, ptx.R(ctaid), ptx.Imm(int64(wsWords)), ptx.R(off))
	addr := b.AddrOf(pd, idx, 4)
	v := b.Reg(ptx.F32)
	b.Ld(ptx.SpaceGlobal, ptx.F32, v, ptx.MemReg(addr, 0))
	for _, r := range hots {
		b.Mad(ptx.F32, r, ptx.R(r), ptx.FImm(1.0), ptx.R(v))
	}
	b.Add(ptx.U32, k, ptx.R(k), ptx.Imm(1))
	b.Bra("INNER")
	b.Label("AFTER")
	for _, r := range colds {
		b.Add(ptx.F32, r, ptx.R(r), ptx.FImm(0.5))
	}
	b.Add(ptx.U32, it, ptx.R(it), ptx.Imm(1))
	b.Bra("OUTER")
	b.Label("END")
	sum := b.Reg(ptx.F32)
	b.Mov(ptx.F32, sum, ptx.FImm(0))
	for _, r := range hots {
		b.Add(ptx.F32, sum, ptx.R(sum), ptx.R(r))
	}
	for _, r := range colds {
		b.Add(ptx.F32, sum, ptx.R(sum), ptx.R(r))
	}
	gi := b.GlobalIndex()
	oa := b.AddrOf(po, gi, 4)
	b.St(ptx.SpaceGlobal, ptx.F32, ptx.MemReg(oa, 0), ptx.R(sum))
	b.Exit()

	return App{
		Name:   name,
		Kernel: b.Kernel(),
		Grid:   grid,
		Block:  block,
		Setup: func(mem *gpusim.Memory) []uint64 {
			words := wsWords * (grid + 1)
			data := mem.Alloc(int64(4 * words))
			for i := 0; i < words; i++ {
				mem.WriteFloat32(data+uint64(4*i), float32(i%13))
			}
			out := mem.Alloc(int64(4 * block * grid))
			return []uint64{data, out}
		},
	}
}

func testApp() App { return makeTestApp("t", 10, 24, 1024, 3, 128, 6) }

func TestAnalyze(t *testing.T) {
	arch := gpusim.FermiConfig()
	app := testApp()
	a, err := Analyze(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	if a.MinReg != 21 {
		t.Errorf("MinReg = %d, want 21", a.MinReg)
	}
	// 34 accumulators plus overhead.
	if a.MaxReg < 34 || a.MaxReg > 60 {
		t.Errorf("MaxReg = %d, want ~34+overhead", a.MaxReg)
	}
	if a.DefaultReg != a.MaxReg {
		t.Errorf("DefaultReg = %d, want MaxReg %d (no explicit default, under cap)", a.DefaultReg, a.MaxReg)
	}
	if a.MaxTLP < 1 || a.MaxTLP > 8 {
		t.Errorf("MaxTLP = %d out of range", a.MaxTLP)
	}
	if a.FeasibleMinReg >= a.MaxReg || a.FeasibleMinReg < 4 {
		t.Errorf("FeasibleMinReg = %d implausible vs MaxReg %d", a.FeasibleMinReg, a.MaxReg)
	}
	if len(a.Segments) < 3 {
		t.Errorf("expected several segments, got %d", len(a.Segments))
	}
}

func TestSegments(t *testing.T) {
	app := testApp()
	segs, err := Segments(app.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	// Alternating kinds, with at least one memory segment, and loop-weighted
	// latencies (inner-loop memory segment weight = 100 per access).
	var memSeen bool
	for i := 1; i < len(segs); i++ {
		if segs[i].Kind == segs[i-1].Kind {
			t.Fatalf("segments %d and %d have the same kind", i-1, i)
		}
	}
	maxMemWeight := 0.0
	for _, s := range segs {
		if s.Kind == SegMemory {
			memSeen = true
			if s.Latency > maxMemWeight {
				maxMemWeight = s.Latency
			}
		}
		if s.Insts <= 0 || s.Latency <= 0 {
			t.Errorf("degenerate segment %+v", s)
		}
	}
	if !memSeen {
		t.Error("no memory segment found")
	}
	// The inner-loop load sits at depth 2: weight 10^2 per access.
	if maxMemWeight < 100 {
		t.Errorf("max memory segment weight = %v, want >= 100 (loop weighting)", maxMemWeight)
	}
}

func TestStaircase(t *testing.T) {
	arch := gpusim.FermiConfig()
	a, err := Analyze(testApp(), arch)
	if err != nil {
		t.Fatal(err)
	}
	stairs := a.Staircase(arch)
	if len(stairs) == 0 {
		t.Fatal("empty staircase")
	}
	prevReg := 1 << 30
	for tlp := 1; tlp <= len(stairs); tlp++ {
		reg, ok := stairs[tlp]
		if !ok {
			t.Fatalf("staircase missing TLP %d", tlp)
		}
		// Registers are non-increasing as TLP grows.
		if reg > prevReg {
			t.Errorf("stair %d has reg %d > previous %d", tlp, reg, prevReg)
		}
		prevReg = reg
		// The point must be realizable: occupancy at reg covers tlp.
		if got := a.TLPAt(arch, reg); got < tlp {
			t.Errorf("stair (%d,%d) not realizable: occupancy %d", reg, tlp, got)
		}
		// Rightmost: one more register must not still reach this TLP
		// (unless capped by MaxReg or the ISA limit).
		if reg+1 <= a.MaxReg && reg+1 <= arch.MaxRegPerThread {
			if got := a.TLPAt(arch, reg+1); got >= tlp {
				t.Errorf("stair (%d,%d) not rightmost: reg+1 still reaches TLP %d", reg, tlp, got)
			}
		}
	}
}

func TestSpareShm(t *testing.T) {
	arch := gpusim.FermiConfig()
	if got := SpareShm(arch, 0, 2); got != 24*1024 {
		t.Errorf("SpareShm(0,2) = %d, want 24K", got)
	}
	if got := SpareShm(arch, 1024, 2); got != 24*1024-1024 {
		t.Errorf("SpareShm(1K,2) = %d", got)
	}
	if got := SpareShm(arch, 0, 1); got != 48*1024 {
		t.Errorf("SpareShm(0,1) = %d, want 48K (per-block cap)", got)
	}
	if got := SpareShm(arch, 60*1024, 1); got != 0 {
		t.Errorf("SpareShm(60K,1) = %d, want 0", got)
	}
}

func TestTLPGain(t *testing.T) {
	prev := 1.0
	for tlp := 1; tlp <= 8; tlp++ {
		g := TLPGain(tlp, 192, 1536)
		if g <= 0 || g >= 1 {
			t.Errorf("TLPGain(%d) = %v out of (0,1)", tlp, g)
		}
		if g >= prev {
			t.Errorf("TLPGain not decreasing at %d: %v >= %v", tlp, g, prev)
		}
		prev = g
	}
	// Paper formula check: TLP*BlockSize = MaxThread -> gain = 0.5.
	if g := TLPGain(8, 192, 1536); g != 0.5 {
		t.Errorf("TLPGain(8,192,1536) = %v, want 0.5", g)
	}
}

func TestSpillCostAndTPSC(t *testing.T) {
	costs := gpusim.Costs{Local: 30, Shared: 10}
	o := ptx.SpillOverhead{LocalLoads: 2, LocalStores: 1, SharedLoads: 4, SharedStores: 4, AddrInsts: 3}
	want := 3.0*30 + 8*10 + 3
	if got := SpillCost(o, costs); got != want {
		t.Errorf("SpillCost = %v, want %v", got, want)
	}
	if got := TPSC(8, 192, 1536, o, costs); got != 0.5*want {
		t.Errorf("TPSC = %v, want %v", got, 0.5*want)
	}
	if got := TPSC(4, 192, 1536, ptx.SpillOverhead{}, costs); got != 0 {
		t.Errorf("zero-overhead TPSC = %v, want 0", got)
	}
}

func TestEstimateOptTLPContention(t *testing.T) {
	arch := gpusim.FermiConfig()
	a, err := Analyze(testApp(), arch)
	if err != nil {
		t.Fatal(err)
	}
	a.MaxTLP = 8
	// Small footprint + high hit ratio: the estimator should keep many
	// blocks involved.
	friendly := EstimateOptTLP(a, arch, StaticModelInput{HitRatioAtOne: 0.98, BlockFootprint: 1024})
	// Huge footprint + poor hit ratio: fewer blocks.
	hostile := EstimateOptTLP(a, arch, StaticModelInput{HitRatioAtOne: 0.5, BlockFootprint: 32 * 1024})
	if friendly < 1 || friendly > 8 || hostile < 1 || hostile > 8 {
		t.Fatalf("estimates out of range: %d, %d", friendly, hostile)
	}
	if hostile > friendly {
		t.Errorf("hostile estimate %d > friendly %d", hostile, friendly)
	}
}

func TestProfileOptTLPWithinRange(t *testing.T) {
	arch := gpusim.FermiConfig()
	app := testApp()
	a, err := Analyze(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	opt, runs, err := ProfileOptTLP(app, arch, a)
	if err != nil {
		t.Fatal(err)
	}
	if opt < 1 || opt > a.MaxTLP {
		t.Errorf("OptTLP = %d out of [1,%d]", opt, a.MaxTLP)
	}
	if len(runs) != a.MaxTLP {
		t.Errorf("profiling ran %d times, want %d", len(runs), a.MaxTLP)
	}
	best := runs[opt-1].Cycles
	for i, st := range runs {
		if st.Cycles < best {
			t.Errorf("run %d has %d cycles < chosen %d", i+1, st.Cycles, best)
		}
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	arch := gpusim.FermiConfig()
	app := makeTestApp("big", 12, 40, 2048, 3, 128, 6) // MaxReg beyond some stairs
	d, err := Optimize(app, Options{Arch: arch, SpillShared: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	regsSeen := map[int]bool{}
	for _, c := range d.Candidates {
		if c.TLP > d.Analysis.OptTLP {
			t.Errorf("candidate (%d,%d) above OptTLP %d survived pruning", c.Reg, c.TLP, d.Analysis.OptTLP)
		}
		if regsSeen[c.Reg] {
			t.Errorf("duplicate reg %d among candidates (dominance pruning failed)", c.Reg)
		}
		regsSeen[c.Reg] = true
		if c.UsedRegs() > c.Reg {
			t.Errorf("candidate used %d regs over budget %d", c.UsedRegs(), c.Reg)
		}
		if err := c.Kernel().Validate(); err != nil {
			t.Errorf("candidate (%d,%d) kernel invalid: %v", c.Reg, c.TLP, err)
		}
	}
	// Chosen must have minimal TPSC.
	for _, c := range d.Candidates {
		if c.TPSC < d.Chosen.TPSC {
			t.Errorf("chosen TPSC %v not minimal (candidate %v)", d.Chosen.TPSC, c.TPSC)
		}
	}
	if d.ProfileRuns != d.Analysis.MaxTLP {
		t.Errorf("ProfileRuns = %d, want MaxTLP %d", d.ProfileRuns, d.Analysis.MaxTLP)
	}
}

func TestOptimizeStaticCheaper(t *testing.T) {
	arch := gpusim.FermiConfig()
	app := testApp()
	d, err := Optimize(app, Options{Arch: arch, StaticOptTLP: true, SpillShared: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.ProfileRuns != 1 {
		t.Errorf("static OptTLP used %d profiling runs, want 1", d.ProfileRuns)
	}
	if d.Analysis.OptTLP < 1 || d.Analysis.OptTLP > d.Analysis.MaxTLP {
		t.Errorf("static OptTLP = %d out of range", d.Analysis.OptTLP)
	}
}

func TestOracleMatchesOrBeatsTPSC(t *testing.T) {
	arch := gpusim.FermiConfig()
	app := makeTestApp("orc", 12, 30, 1024, 3, 128, 6)
	tpsc, err := Optimize(app, Options{Arch: arch, SpillShared: true})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Optimize(app, Options{Arch: arch, SpillShared: true, Oracle: true, OptTLP: tpsc.Analysis.OptTLP})
	if err != nil {
		t.Fatal(err)
	}
	// The oracle's chosen point has the fewest cycles among candidates.
	for _, c := range oracle.Candidates {
		if c.Cycles < oracle.Chosen.Cycles {
			t.Errorf("oracle chose %d cycles but candidate has %d", oracle.Chosen.Cycles, c.Cycles)
		}
	}
	// TPSC's choice, simulated, should be within 2x of the oracle (it is a
	// model, not an oracle — but it must not be absurd).
	st, err := Simulate(app, arch, &appKernel{k: tpsc.Chosen.Kernel(), regs: tpsc.Chosen.UsedRegs()}, tpsc.Chosen.TLP)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles > 2*oracle.Chosen.Cycles {
		t.Errorf("TPSC choice %d cycles vs oracle %d: model far off", st.Cycles, oracle.Chosen.Cycles)
	}
}

func TestRunModes(t *testing.T) {
	arch := gpusim.FermiConfig()
	app := makeTestApp("modes", 12, 30, 2048, 3, 128, 6)
	opts := Options{Arch: arch}
	var results [4]gpusim.Stats
	var decisions [4]*Decision
	for i, m := range []Mode{ModeMaxTLP, ModeOptTLP, ModeCRATLocal, ModeCRAT} {
		st, d, err := RunMode(app, m, opts)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		results[i] = st
		decisions[i] = d
		if st.Cycles <= 0 {
			t.Errorf("%v: zero cycles", m)
		}
	}
	// OptTLP throttles at most as many blocks as MaxTLP.
	if decisions[1].Chosen.TLP > decisions[0].Chosen.TLP {
		t.Errorf("OptTLP TLP %d > MaxTLP TLP %d", decisions[1].Chosen.TLP, decisions[0].Chosen.TLP)
	}
	// CRAT must not use fewer registers than the throttled baseline wastes:
	// its register utilization is at least OptTLP's.
	// CRAT typically raises register utilization vs the throttled baseline
	// (paper Figure 15); tolerate a small shortfall since the TPSC winner
	// is chosen on performance, not utilization.
	utilOpt := RegisterUtilization(arch, decisions[1].Chosen.TLP, app.Block, decisions[1].Chosen.Reg)
	utilCrat := RegisterUtilization(arch, decisions[3].Chosen.TLP, app.Block, decisions[3].Chosen.UsedRegs())
	if utilCrat < 0.85*utilOpt {
		t.Errorf("CRAT register utilization %.3f far below OptTLP's %.3f", utilCrat, utilOpt)
	}
	// CRAT should not be slower than OptTLP by more than a small margin
	// (the paper's headline is that it is strictly faster on sensitive
	// apps).
	if float64(results[3].Cycles) > 1.1*float64(results[1].Cycles) {
		t.Errorf("CRAT %d cycles much slower than OptTLP %d", results[3].Cycles, results[1].Cycles)
	}
}

func TestRegisterUtilization(t *testing.T) {
	arch := gpusim.FermiConfig()
	if got := RegisterUtilization(arch, 8, 128, 32); got != 1.0 {
		t.Errorf("full utilization = %v, want 1.0", got)
	}
	if got := RegisterUtilization(arch, 4, 128, 32); got != 0.5 {
		t.Errorf("half utilization = %v, want 0.5", got)
	}
}

func TestMeasureStaticInputs(t *testing.T) {
	arch := gpusim.FermiConfig()
	app := testApp()
	a, err := Analyze(app, arch)
	if err != nil {
		t.Fatal(err)
	}
	in, err := MeasureStaticInputs(app, arch, a)
	if err != nil {
		t.Fatal(err)
	}
	if in.HitRatioAtOne <= 0 || in.HitRatioAtOne > 1 {
		t.Errorf("hit ratio %v out of (0,1]", in.HitRatioAtOne)
	}
	// 1024 words = 4KB per block footprint, give or take spill lines.
	if in.BlockFootprint < 2048 || in.BlockFootprint > 16*1024 {
		t.Errorf("footprint %v far from 4KB", in.BlockFootprint)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeMaxTLP:    "MaxTLP",
		ModeOptTLP:    "OptTLP",
		ModeCRATLocal: "CRAT-local",
		ModeCRAT:      "CRAT",
	}
	for m, w := range want {
		if m.String() != w {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), w)
		}
	}
}

func TestCandidateAccessors(t *testing.T) {
	arch := gpusim.FermiConfig()
	app := makeTestApp("acc", 10, 20, 1024, 2, 128, 4)
	d, err := Optimize(app, Options{Arch: arch, SpillShared: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Candidates {
		if c.Kernel() == nil {
			t.Fatal("candidate without kernel")
		}
		if c.Spill != nil && c.Kernel() != c.Spill.Alloc.Kernel {
			t.Error("Kernel() should return the spill-optimized kernel when present")
		}
		if c.Spill == nil && c.Kernel() != c.Alloc.Kernel {
			t.Error("Kernel() should return the plain allocation when no spill result")
		}
		if c.UsedRegs() <= 0 {
			t.Errorf("UsedRegs = %d", c.UsedRegs())
		}
	}
}

func TestOptimizeRejectsIncompleteApp(t *testing.T) {
	arch := gpusim.FermiConfig()
	if _, err := Analyze(App{Name: "empty"}, arch); err == nil {
		t.Error("Analyze accepted an app without kernel/block")
	}
}

func TestInvolvedBlocksBounds(t *testing.T) {
	arch := gpusim.FermiConfig()
	a, err := Analyze(testApp(), arch)
	if err != nil {
		t.Fatal(err)
	}
	a.MaxTLP = 6
	got := InvolvedBlocks(a, arch, StaticModelInput{HitRatioAtOne: 0.9, BlockFootprint: 4096})
	if got < 1 || got > 6 {
		t.Errorf("InvolvedBlocks = %d out of [1,6]", got)
	}
	a.MaxTLP = 1
	if got := InvolvedBlocks(a, arch, StaticModelInput{}); got != 1 {
		t.Errorf("MaxTLP=1 should involve exactly 1 block, got %d", got)
	}
}

func TestRunModeUnknown(t *testing.T) {
	arch := gpusim.FermiConfig()
	if _, _, err := RunMode(testApp(), Mode(99), Options{Arch: arch}); err == nil {
		t.Error("RunMode accepted an unknown mode")
	}
}
