package core

import (
	"crat/internal/gpusim"
	"crat/internal/ptx"
)

// TLPGain models the diminishing return of additional parallelism
// (paper §6):
//
//	TLPgain = 1 - (TLP*BlockSize) / (TLP*BlockSize + MaxThread)
//
// It decreases toward zero as the TLP approaches the hardware thread limit,
// reflecting that once latency is hidden, extra threads stop helping.
func TLPGain(tlp, blockSize, maxThreads int) float64 {
	t := float64(tlp * blockSize)
	return 1 - t/(t+float64(maxThreads))
}

// SpillCost estimates the overhead of the inserted spill instructions
// (paper §6):
//
//	SpillCost = Num_local*Cost_local + Num_shm*Cost_shm + Num_others
//
// where the Num terms are static counts of allocator-inserted instructions
// and the Cost terms are per-access latencies measured through
// microbenchmarks (gpusim.MeasureCosts).
func SpillCost(o ptx.SpillOverhead, costs gpusim.Costs) float64 {
	return float64(o.Locals())*costs.Local +
		float64(o.Shareds())*costs.Shared +
		float64(o.AddrInsts)
}

// TPSC is the Thread-level Parallelism and Spill Cost metric: the product
// of the two terms. Candidates with the smallest TPSC are preferred: high
// TLP drives TLPgain down, few/cheap spills drive SpillCost down.
func TPSC(tlp, blockSize, maxThreads int, o ptx.SpillOverhead, costs gpusim.Costs) float64 {
	return TLPGain(tlp, blockSize, maxThreads) * SpillCost(o, costs)
}
