package core

import (
	"strings"
	"testing"

	"crat/internal/gpusim"
	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/regalloc"
)

// wrapPhysRewrite installs a global pass-wrap hook that runs fn on the
// physical kernel emitted by every successful allocation (the phys-rewrite
// pass rebinds its AnalysisManager to that kernel, so the After hook sees
// it), passing along the allocation's options for filtering. It is the
// pass-manager replacement for the old regalloc.MutateForTest variable.
// Callers must defer passes.SetGlobalWrap(nil).
func wrapPhysRewrite(fn func(k *ptx.Kernel, ropts regalloc.Options)) {
	passes.SetGlobalWrap(func(p passes.Pass) passes.Pass {
		pr, ok := passes.Inner(p).(interface{ AllocOptions() regalloc.Options })
		if !ok {
			return p
		}
		return passes.After(p, func(k *ptx.Kernel, _ *passes.AnalysisManager) error {
			fn(k, pr.AllocOptions())
			return nil
		})
	})
}

// verifyOpts returns pipeline options that run the oracle but no
// simulations (OptTLP and Costs pinned).
func verifyOpts(arch gpusim.Config) Options {
	return Options{
		Arch:              arch,
		OptTLP:            4,
		Costs:             gpusim.Costs{Local: 40, Shared: 4},
		SpillShared:       true,
		VerifyEquivalence: true,
	}
}

// TestVerifyEquivalenceClean: on an honest compile the oracle must find
// nothing and leave the decision untouched.
func TestVerifyEquivalenceClean(t *testing.T) {
	arch := gpusim.FermiConfig()
	d, err := Optimize(testApp(), verifyOpts(arch))
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if d.Degraded || d.Divergence != nil {
		t.Fatalf("clean pipeline reported degradation: %+v", d.Divergence)
	}
}

// mutateFirstF32Add flips the first f32 add to a sub — a structurally
// valid kernel the allocator's own verifier cannot reject.
func mutateFirstF32Add(k *ptx.Kernel) bool {
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Op == ptx.OpAdd && in.Type == ptx.F32 {
			in.Op = ptx.OpSub
			return true
		}
	}
	return false
}

// TestInjectedMiscompileDegrades is the acceptance scenario: a test-only
// mutation inside regalloc miscompiles the chosen candidate; the oracle
// must catch it, report it as a Divergence, and complete the pipeline on
// the verified baseline allocation.
func TestInjectedMiscompileDegrades(t *testing.T) {
	arch := gpusim.FermiConfig()
	app := testApp()
	opts := verifyOpts(arch)

	// The ablation flag marks candidate allocations: Analyze's register
	// sweeps and the baseline fallback allocate with default options, so
	// the mutation below cannot touch them even at coinciding budgets.
	opts.UnweightedSpillCost = true

	// Pass 1 (honest) learns which budget wins; TPSC selection is
	// deterministic, so the sabotaged pass chooses the same point.
	clean, err := Optimize(app, opts)
	if err != nil {
		t.Fatalf("clean Optimize: %v", err)
	}
	chosenReg := clean.Chosen.Reg

	mutated := false
	wrapPhysRewrite(func(k *ptx.Kernel, ropts regalloc.Options) {
		// Corrupt only the winning candidate's physical kernel: the first
		// candidate-marked allocation at the chosen budget (budgets are
		// deduped across candidates; the spillopt reallocation comes
		// second and is spared by the once-only flag).
		if mutated || !ropts.UnweightedSpillCost || ropts.Regs != chosenReg {
			return
		}
		mutated = mutateFirstF32Add(k)
	})
	defer passes.SetGlobalWrap(nil)

	d, err := Optimize(app, opts)
	if err != nil {
		t.Fatalf("Optimize with injected miscompile: %v", err)
	}
	if !mutated {
		t.Fatalf("mutation hook never fired for budget %d", chosenReg)
	}
	if !d.Degraded {
		t.Fatalf("injected miscompile not detected; chosen reg=%d", d.Chosen.Reg)
	}
	if d.Divergence == nil || d.Divergence.Stage != "regalloc" {
		t.Fatalf("divergence missing or mislabelled: %+v", d.Divergence)
	}
	// The fallback is the MaxReg budget with no shared-memory spilling.
	// (Analysis.MaxReg comes from dataflow, so the coloring heuristic may
	// still spill a few slots to local memory — the oracle verified the
	// result, which is what matters.)
	if d.Chosen.Reg != d.Analysis.MaxReg || d.Chosen.Spill != nil {
		t.Fatalf("fallback is not the baseline allocation: reg=%d spill=%v", d.Chosen.Reg, d.Chosen.Spill)
	}
}

// TestMiscompiledBaselineIsHardError: when even the fallback allocation
// diverges there is nothing trustworthy to ship, and the pipeline must
// fail loudly rather than degrade.
func TestMiscompiledBaselineIsHardError(t *testing.T) {
	arch := gpusim.FermiConfig()
	wrapPhysRewrite(func(k *ptx.Kernel, _ regalloc.Options) {
		mutateFirstF32Add(k)
	})
	defer passes.SetGlobalWrap(nil)

	_, err := Optimize(testApp(), verifyOpts(arch))
	if err == nil {
		t.Fatalf("expected hard error when every allocation is miscompiled")
	}
	if !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("error does not identify the baseline failure: %v", err)
	}
}

// TestVerifySimpleModes: the MaxTLP/OptTLP baselines go through the same
// oracle gate as the CRAT modes.
func TestVerifySimpleModes(t *testing.T) {
	arch := gpusim.FermiConfig()
	app := testApp()
	opts := verifyOpts(arch)
	for _, mode := range []Mode{ModeMaxTLP, ModeOptTLP} {
		d, err := CompileModeCtx(t.Context(), app, mode, opts)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if d.Degraded {
			t.Fatalf("%v: honest compile degraded: %+v", mode, d.Divergence)
		}
	}
}
