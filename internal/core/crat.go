package core

import (
	"context"
	"fmt"

	"crat/internal/backend"
	"crat/internal/gpusim"
	"crat/internal/oracle"
	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/regalloc"
	"crat/internal/spillopt"
)

// Mode selects which configuration of the paper's §7.2 comparison to build.
type Mode uint8

// Comparison modes.
const (
	// ModeMaxTLP: default register allocation, no throttling.
	ModeMaxTLP Mode = iota
	// ModeOptTLP: default register allocation, block-level thread
	// throttling at the optimal TLP (Kayiran et al., PACT'13).
	ModeOptTLP
	// ModeCRATLocal: CRAT with the shared-memory spilling optimization
	// disabled (spills go to local memory only).
	ModeCRATLocal
	// ModeCRAT: the full framework.
	ModeCRAT
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ModeMaxTLP:
		return "MaxTLP"
	case ModeOptTLP:
		return "OptTLP"
	case ModeCRATLocal:
		return "CRAT-local"
	default:
		return "CRAT"
	}
}

// Options configures the Optimize pipeline.
type Options struct {
	Arch gpusim.Config
	// OptTLP overrides the optimal TLP (0 = obtain per OptTLPSource).
	OptTLP int
	// StaticOptTLP uses the static code-analysis estimator instead of
	// profiling (CRAT-static, paper §7.6).
	StaticOptTLP bool
	// SpillShared disables (false) or enables (true) the shared-memory
	// spilling optimization; ModeCRATLocal corresponds to false. It only
	// selects the implied backend when Backends is empty.
	SpillShared bool
	// Backends names the candidate-generation backends whose candidates
	// compete under TPSC/oracle selection (internal/backend registry).
	// Order matters: full TPSC ties break toward the earlier backend.
	// Empty means the mode-implied default: "crat" when SpillShared,
	// "crat-local" otherwise.
	Backends []string
	// Split selects the sub-stack splitting strategy for Algorithm 1.
	Split spillopt.Split
	// Coalesce enables the allocator's conservative copy-coalescing
	// pre-pass for every candidate (useful on mov-heavy external PTX).
	Coalesce bool
	// UnweightedGain/UnweightedSpillCost are ablation knobs.
	UnweightedGain      bool
	UnweightedSpillCost bool
	// DisablePruning keeps design points with TLP above OptTLP (ablation:
	// the pruned points cause cache thrashing and should never win).
	DisablePruning bool
	// Oracle replaces the TPSC model with exhaustive simulation of every
	// candidate (ablation: measures how close TPSC gets to the best
	// achievable point).
	Oracle bool
	// VerifyEquivalence runs the differential semantic oracle
	// (internal/oracle) on the chosen kernel's rewrite chain. On a
	// divergence the pipeline degrades to the verified baseline (MaxReg,
	// no shared spilling) allocation instead of failing; the Decision
	// records the Divergence.
	VerifyEquivalence bool
	// VerifyRuns is the number of generated input sets the oracle uses
	// when the app has no Setup provider (0 = oracle default).
	VerifyRuns int
	// VerifySeed is the oracle's base input-generation seed.
	VerifySeed int64
	// VerifyEachPass runs ptx.Verify on the working kernel after every
	// pipeline pass, failing fast with the offending pass named (the
	// pass-smoke gate; cratc -verify-passes).
	VerifyEachPass bool
	// OracleEachPass spot-checks every IR-changing pass against the
	// differential oracle (pass input vs pass output). Expensive; a
	// debugging aid for bisecting a miscompile to one pass.
	OracleEachPass bool
	// DumpAfter, when set, receives the working kernel after every pass
	// (cratc -dump-after filters by pass name inside the hook).
	DumpAfter func(pass string, k *ptx.Kernel)
	// Costs overrides the microbenchmarked per-access latencies
	// (zero value = measure on Arch).
	Costs gpusim.Costs
	// Workers bounds the goroutines used for independent simulations (the
	// OptTLP profiling sweep and the Oracle candidate sweep). 0 or 1 keeps
	// the pipeline fully serial; results are identical at any setting.
	Workers int
}

// profileWorkers maps the Workers option to a pool size: the zero value
// (callers that never set it) stays serial.
func (o Options) profileWorkers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// Candidate is one surviving design point with its compiled kernel.
type Candidate struct {
	// Backend names the strategy that produced the candidate ("crat",
	// "crat-local", "regdem", ...; "baseline" for the degraded-mode
	// fallback, "" for the untouched baseline modes).
	Backend  string
	Reg      int // register per-thread budget (rightmost point of the stair)
	TLP      int
	Alloc    *regalloc.Result
	Spill    *spillopt.Result // nil when spilling optimization disabled
	Overhead ptx.SpillOverhead
	TPSC     float64
	// Demoted counts registers the regdem backend rewrote to shared
	// memory before allocation (0 for other backends).
	Demoted int
	// Cycles is filled only under Options.Oracle.
	Cycles int64
}

// Kernel returns the executable kernel of the candidate.
func (c Candidate) Kernel() *ptx.Kernel {
	if c.Spill != nil {
		return c.Spill.Alloc.Kernel
	}
	return c.Alloc.Kernel
}

// UsedRegs returns the per-thread register usage of the final kernel.
func (c Candidate) UsedRegs() int {
	if c.Spill != nil {
		return c.Spill.Alloc.UsedRegs
	}
	return c.Alloc.UsedRegs
}

// Decision is the outcome of the CRAT pipeline for one app.
type Decision struct {
	App        App
	Arch       gpusim.Config
	Analysis   *Analysis
	Costs      gpusim.Costs
	Candidates []Candidate
	Chosen     Candidate
	// Backend names the strategy whose candidate won the selection
	// (Chosen.Backend; "baseline" when the decision degraded).
	Backend string
	// ProfileRuns counts simulations spent determining OptTLP (the
	// profiling overhead of paper §7.7); static estimation uses 1.
	ProfileRuns int
	// Degraded is set when Options.VerifyEquivalence found the chosen
	// candidate semantically divergent and the pipeline fell back to the
	// baseline allocation.
	Degraded bool
	// Divergence is the oracle report that triggered the degradation
	// (nil unless Degraded).
	Divergence *oracle.Divergence
}

// Optimize runs the full CRAT pipeline on one app: analysis, OptTLP,
// pruning, per-candidate register allocation and spilling optimization, and
// TPSC selection.
func Optimize(app App, opts Options) (*Decision, error) {
	return OptimizeCtx(context.Background(), app, opts)
}

// OptimizeCtx is Optimize under a context: the profiling and Oracle sweeps
// observe cancellation and wall-clock deadlines. With Options.OptTLP set and
// Options.Costs supplied (and Oracle off), the pipeline runs no simulations
// at all — the checkpoint/resume path relies on that to rebuild decisions
// deterministically from persisted stats.
func OptimizeCtx(ctx context.Context, app App, opts Options) (*Decision, error) {
	if err := ptx.Verify(app.Kernel, "input"); err != nil {
		return nil, err
	}
	// Resolve the backend set up front so a bad -backend flag fails before
	// any profiling simulations run.
	backends, err := backend.Resolve(opts.backendNames())
	if err != nil {
		return nil, err
	}
	arch := opts.Arch
	a, err := Analyze(app, arch)
	if err != nil {
		return nil, err
	}
	d := &Decision{App: app, Arch: arch, Analysis: a}

	// Determine OptTLP.
	switch {
	case opts.OptTLP > 0:
		a.OptTLP = opts.OptTLP
	case opts.StaticOptTLP:
		in, err := MeasureStaticInputs(app, arch, a)
		if err != nil {
			return nil, err
		}
		a.OptTLP = EstimateOptTLP(a, arch, in)
		d.ProfileRuns = 1
	default:
		opt, runs, err := ProfileOptTLPNCtx(ctx, app, arch, a, opts.profileWorkers())
		if err != nil {
			return nil, err
		}
		a.OptTLP = opt
		d.ProfileRuns = len(runs)
	}
	if a.OptTLP > a.MaxTLP {
		a.OptTLP = a.MaxTLP
	}

	// Per-access costs for the TPSC model.
	d.Costs = opts.Costs
	if d.Costs.Local == 0 && d.Costs.Shared == 0 {
		c, err := gpusim.MeasureCosts(arch)
		if err != nil {
			return nil, err
		}
		d.Costs = c
	}

	// The remaining stages run as an instrumented pass pipeline over one
	// manager: prune, then every enabled backend's candidate pipeline over
	// the shared design points, then selection across the union.
	pm := opts.passManager(app)
	am := passes.NewAnalysisManager(app.Kernel)

	pr := &prunePass{a: a, arch: arch, opts: opts}
	if err := pm.Run(am, pr); err != nil {
		return nil, err
	}
	req := backend.Request{
		AppName:             app.Name,
		Kernel:              app.Kernel,
		Arch:                arch,
		BlockSize:           a.BlockSize,
		ShmSize:             a.ShmSize,
		OptTLP:              a.OptTLP,
		Points:              make([]backend.Point, len(pr.points)),
		Coalesce:            opts.Coalesce,
		Split:               opts.Split,
		UnweightedGain:      opts.UnweightedGain,
		UnweightedSpillCost: opts.UnweightedSpillCost,
	}
	for i, pt := range pr.points {
		req.Points[i] = backend.Point{Reg: pt.Reg, TLP: pt.TLP}
	}
	for _, bk := range backends {
		cands, err := bk.Candidates(pm, req)
		if err != nil {
			// A pass emitted unverifiable IR or diverged from the oracle:
			// a compiler bug, not an infeasible budget (backends absorb
			// those by dropping the point).
			return nil, err
		}
		for _, bc := range cands {
			cand := Candidate{
				Backend:  bc.Backend,
				Reg:      bc.Reg,
				TLP:      bc.TLP,
				Alloc:    bc.Alloc,
				Spill:    bc.Spill,
				Overhead: bc.Overhead,
				Demoted:  bc.Demoted,
			}
			cand.TPSC = TPSC(cand.TLP, a.BlockSize, arch.MaxThreadsPerSM, cand.Overhead, d.Costs)
			d.Candidates = append(d.Candidates, cand)
		}
	}
	if len(d.Candidates) == 0 {
		return nil, fmt.Errorf("core: %s: no feasible design points", app.Name)
	}

	var sel passes.Pass
	if opts.Oracle {
		sel = &oracleSelectPass{ctx: ctx, app: app, arch: arch, opts: opts, d: d}
	} else {
		sel = &tpscSelectPass{d: d}
	}
	if err := pm.Run(am, sel); err != nil {
		return nil, err
	}
	d.Backend = d.Chosen.Backend
	if opts.VerifyEquivalence {
		if err := verifyDecision(app, arch, a, d, opts); err != nil {
			return nil, err
		}
		d.Backend = d.Chosen.Backend
	}
	return d, nil
}

// backendNames resolves the enabled backend set: an explicit Backends
// list wins; otherwise the mode-implied default preserves the historical
// single-strategy pipeline.
func (o Options) backendNames() []string {
	if len(o.Backends) > 0 {
		return o.Backends
	}
	if o.SpillShared {
		return []string{"crat"}
	}
	return []string{"crat-local"}
}

// SpareShm computes the spare shared memory per block at a given TLP: the
// slack the spilling optimization may consume without changing the TLP
// (paper §5.3: "only utilizes the spare shared memory for spilling").
func SpareShm(arch gpusim.Config, shmUsed int64, tlp int) int64 {
	return backend.SpareShm(arch, shmUsed, tlp)
}

// modePlan is the compile-only product of planModeCtx: the decision plus
// the exact launch parameters RunMode would hand to the simulator.
type modePlan struct {
	d      *Decision
	kernel *ptx.Kernel
	regs   int
	tlp    int // TLPLimit for the simulator (0 = hardware maximum)
}

// planModeCtx performs everything RunMode does except the final
// simulation: analysis, OptTLP determination, allocation, and (for the CRAT
// modes) the full optimization pipeline. With Options.OptTLP and
// Options.Costs supplied it is purely deterministic compilation — no
// simulator cycles — which is what lets checkpoint resume rebuild a
// Decision byte-identically from persisted stats.
func planModeCtx(ctx context.Context, app App, mode Mode, opts Options) (*modePlan, error) {
	if err := ptx.Verify(app.Kernel, "input"); err != nil {
		return nil, err
	}
	arch := opts.Arch
	switch mode {
	case ModeMaxTLP, ModeOptTLP:
		a, err := Analyze(app, arch)
		if err != nil {
			return nil, err
		}
		// The baseline modes get the same instrumented pass manager as the
		// CRAT modes, so -verify-passes and per-pass timing cover them too.
		alloc, err := regalloc.AllocateWith(opts.passManager(app), app.Kernel, regalloc.Options{Regs: a.DefaultReg})
		if err != nil {
			return nil, err
		}
		tlp := 0 // hardware maximum
		if mode == ModeOptTLP {
			switch {
			case opts.OptTLP > 0:
				a.OptTLP = opts.OptTLP
			case opts.StaticOptTLP:
				in, err := MeasureStaticInputs(app, arch, a)
				if err != nil {
					return nil, err
				}
				a.OptTLP = EstimateOptTLP(a, arch, in)
			default:
				opt, _, err := ProfileOptTLPNCtx(ctx, app, arch, a, opts.profileWorkers())
				if err != nil {
					return nil, err
				}
				a.OptTLP = opt
			}
			tlp = a.OptTLP
		}
		d := &Decision{App: app, Arch: arch, Analysis: a}
		d.Chosen = Candidate{Reg: a.DefaultReg, TLP: tlp, Alloc: alloc, Overhead: alloc.Kernel.SpillOverhead()}
		if tlp == 0 {
			d.Chosen.TLP = a.MaxTLP
		}
		if opts.VerifyEquivalence {
			// DefaultReg allocation can spill too; the baseline modes get
			// the same oracle gate and degraded-mode fallback as CRAT.
			if err := verifyDecision(app, arch, a, d, opts); err != nil {
				return nil, err
			}
			if d.Degraded {
				return &modePlan{d: d, kernel: d.Chosen.Kernel(), regs: d.Chosen.UsedRegs(), tlp: tlp}, nil
			}
		}
		return &modePlan{d: d, kernel: alloc.Kernel, regs: alloc.UsedRegs, tlp: tlp}, nil
	case ModeCRATLocal, ModeCRAT:
		o := opts
		o.SpillShared = mode == ModeCRAT
		d, err := OptimizeCtx(ctx, app, o)
		if err != nil {
			return nil, err
		}
		return &modePlan{d: d, kernel: d.Chosen.Kernel(), regs: d.Chosen.UsedRegs(), tlp: d.Chosen.TLP}, nil
	}
	return nil, fmt.Errorf("core: unknown mode %d", mode)
}

// CompileModeCtx builds the Decision for one comparison mode without the
// final simulation. Callers that already hold the mode's simulated stats
// (checkpoint resume) use it to reconstitute the full decision
// deterministically; Options.OptTLP and Options.Costs should be set so no
// profiling simulations run.
func CompileModeCtx(ctx context.Context, app App, mode Mode, opts Options) (*Decision, error) {
	pl, err := planModeCtx(ctx, app, mode, opts)
	if err != nil {
		return nil, err
	}
	return pl.d, nil
}

// RunMode builds and simulates the kernel for one comparison mode,
// returning the stats and the effective (reg, TLP) configuration.
func RunMode(app App, mode Mode, opts Options) (gpusim.Stats, *Decision, error) {
	return RunModeCtx(context.Background(), app, mode, opts)
}

// RunModeCtx is RunMode under a context: profiling sweeps and the final
// simulation observe cancellation and deadlines. On a simulation fault the
// compiled Decision is still returned alongside the error, matching the
// historical RunMode contract.
func RunModeCtx(ctx context.Context, app App, mode Mode, opts Options) (gpusim.Stats, *Decision, error) {
	pl, err := planModeCtx(ctx, app, mode, opts)
	if err != nil {
		return gpusim.Stats{}, nil, err
	}
	st, err := SimulateCtx(ctx, app, opts.Arch, &appKernel{k: pl.kernel, regs: pl.regs}, pl.tlp)
	return st, pl.d, err
}

// RegisterUtilization returns the fraction of the register file a
// configuration occupies: TLP * BlockSize * reg / RegFileRegs (paper
// Figures 1b and 15).
func RegisterUtilization(arch gpusim.Config, tlp, blockSize, reg int) float64 {
	u := float64(tlp*blockSize*reg) / float64(arch.RegFileRegs)
	if u > 1 {
		u = 1
	}
	return u
}
