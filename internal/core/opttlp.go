package core

import (
	"context"
	"fmt"
	"sort"

	"crat/internal/gpusim"
	"crat/internal/pool"
	"crat/internal/ptx"
	"crat/internal/regalloc"
)

// Simulate runs the app's kernel variant on the simulator: memory is
// prepared by app.Setup, regsPerThread feeds the occupancy calculation and
// tlpLimit throttles resident blocks (0 = hardware maximum).
func Simulate(app App, arch gpusim.Config, kernel *appKernel, tlpLimit int) (gpusim.Stats, error) {
	return SimulateCtx(context.Background(), app, arch, kernel, tlpLimit)
}

// SimulateCtx is Simulate under a context: cancellation or an expired
// deadline aborts the cycle loop with a structured gpusim fault.
func SimulateCtx(ctx context.Context, app App, arch gpusim.Config, kernel *appKernel, tlpLimit int) (gpusim.Stats, error) {
	mem := gpusim.NewMemory()
	params := app.Setup(mem)
	sim, err := gpusim.NewSimulator(arch, mem, gpusim.Launch{
		Kernel:        kernel.k,
		Grid:          app.Grid,
		Block:         app.Block,
		Params:        params,
		TLPLimit:      tlpLimit,
		RegsPerThread: kernel.regs,
	})
	if err != nil {
		return gpusim.Stats{}, fmt.Errorf("core: %s: %w", app.Name, err)
	}
	return sim.RunCtx(ctx)
}

// appKernel pairs an executable kernel with its per-thread register usage.
type appKernel struct {
	k    *ptx.Kernel
	regs int
}

// SimulateKernel runs an explicit kernel variant of the app (e.g. one
// allocated at a particular register budget) at the given TLP limit.
func SimulateKernel(app App, arch gpusim.Config, k *ptx.Kernel, regsPerThread, tlpLimit int) (gpusim.Stats, error) {
	return Simulate(app, arch, &appKernel{k: k, regs: regsPerThread}, tlpLimit)
}

// SimulateKernelCtx is SimulateKernel under a context.
func SimulateKernelCtx(ctx context.Context, app App, arch gpusim.Config, k *ptx.Kernel, regsPerThread, tlpLimit int) (gpusim.Stats, error) {
	return SimulateCtx(ctx, app, arch, &appKernel{k: k, regs: regsPerThread}, tlpLimit)
}

// ProfileOptTLP determines the optimal TLP by exhaustive profiling
// (paper §4.1 / §7.2 "OptTLP is determined offline by exhaustively testing
// all the possible TLPs"): the kernel is allocated at the default register
// count and simulated at every TLP in [1, MaxTLP]; the TLP with the fewest
// cycles wins.
func ProfileOptTLP(app App, arch gpusim.Config, a *Analysis) (int, []gpusim.Stats, error) {
	return ProfileOptTLPN(app, arch, a, 1)
}

// ProfileOptTLPN is ProfileOptTLP fanning the per-TLP simulations across up
// to `workers` goroutines (0 = one per CPU). Each TLP point is an independent
// simulation over its own Memory, so the fan-out is embarrassingly parallel;
// results are reduced in ascending TLP order afterwards, which makes the
// winner — and on failure, the reported error (lowest failing TLP) —
// identical to the serial sweep.
func ProfileOptTLPN(app App, arch gpusim.Config, a *Analysis, workers int) (int, []gpusim.Stats, error) {
	return ProfileOptTLPNCtx(context.Background(), app, arch, a, workers)
}

// ProfileOptTLPNCtx is ProfileOptTLPN under a context: a canceled or
// timed-out sweep returns the first structured simulator fault (lowest TLP
// first, matching the serial error order), or the bare context error when
// cancellation landed between simulations.
func ProfileOptTLPNCtx(ctx context.Context, app App, arch gpusim.Config, a *Analysis, workers int) (int, []gpusim.Stats, error) {
	alloc, err := regalloc.Allocate(app.Kernel, regalloc.Options{Regs: a.DefaultReg})
	if err != nil {
		return 0, nil, fmt.Errorf("core: default allocation of %s: %w", app.Name, err)
	}
	all := make([]gpusim.Stats, a.MaxTLP)
	errs := make([]error, a.MaxTLP)
	poolErr := pool.RunCtx(ctx, workers, a.MaxTLP, func(i int) {
		all[i], errs[i] = SimulateCtx(ctx, app, arch, &appKernel{k: alloc.Kernel, regs: alloc.UsedRegs}, i+1)
	})
	for _, e := range errs {
		if e != nil {
			return 0, nil, e
		}
	}
	if poolErr != nil {
		return 0, nil, poolErr
	}
	best, bestCycles := 0, int64(0)
	for i, st := range all {
		if best == 0 || st.Cycles < bestCycles {
			best, bestCycles = i+1, st.Cycles
		}
	}
	return best, all, nil
}

// StaticModelInput feeds the static OptTLP estimator: the L1 hit ratio and
// per-block footprint, measured empirically (paper §4.1: "we empirically
// measure the cache hit ratio for all the applications"). MeasureStaticInputs
// obtains both from a single cheap TLP=1 run.
type StaticModelInput struct {
	HitRatioAtOne  float64
	BlockFootprint float64 // bytes of L1 footprint per block (cold misses)
}

// MeasureStaticInputs runs the app once at TLP=1 and derives the model
// inputs. This is the only dynamic information CRAT-static consumes.
func MeasureStaticInputs(app App, arch gpusim.Config, a *Analysis) (StaticModelInput, error) {
	alloc, err := regalloc.Allocate(app.Kernel, regalloc.Options{Regs: a.DefaultReg})
	if err != nil {
		return StaticModelInput{}, err
	}
	st, err := Simulate(app, arch, &appKernel{k: alloc.Kernel, regs: alloc.UsedRegs}, 1)
	if err != nil {
		return StaticModelInput{}, err
	}
	in := StaticModelInput{HitRatioAtOne: st.L1HitRate()}
	if st.BlocksCompleted > 0 {
		// Distinct lines per block approximate the per-block footprint.
		in.BlockFootprint = float64(st.L1DistinctLines) / float64(st.BlocksCompleted) * float64(arch.L1.LineBytes)
	}
	return in, nil
}

// hitRatioAt models cache contention: the TLP=1 hit ratio degrades once the
// aggregate block footprints exceed the L1 capacity.
func (in StaticModelInput) hitRatioAt(arch gpusim.Config, tlp int) float64 {
	agg := in.BlockFootprint * float64(tlp)
	cap32 := float64(arch.L1.SizeBytes)
	if agg <= cap32 || agg == 0 {
		return in.HitRatioAtOne
	}
	return in.HitRatioAtOne * cap32 / agg
}

// EstimateOptTLP statically estimates the optimal TLP (paper §4.1 /
// Figure 10). The kernel's computation/memory segmentation feeds an
// analytical throughput model in the style the paper builds on (Hong &
// Kim's computation/memory-period overlap [11], extended with memory
// bandwidth and cache contention): for each candidate TLP n the model
// takes the worst of three envelopes —
//
//   - issue:    n blocks' warp instructions through the schedulers,
//   - bandwidth: the missing fraction of memory accesses through DRAM,
//     with the hit ratio degraded by the aggregate footprint (contention),
//   - latency:  one warp's dependent critical path (unhidable floor),
//
// and returns the n maximizing blocks-per-cycle throughput. Only the
// TLP=1-measured hit ratio and per-block footprint are consumed
// (MeasureStaticInputs); everything else is static code analysis.
func EstimateOptTLP(a *Analysis, arch gpusim.Config, in StaticModelInput) int {
	if a.MaxTLP <= 1 {
		return 1
	}
	compW, memW, memSegW := 0.0, 0.0, 0.0
	for _, seg := range a.Segments {
		if seg.Kind == SegMemory {
			memW += seg.Latency
			// One latency per segment occurrence: consecutive loads in a
			// segment overlap (paper Figure 10 charges latency per
			// segment, not per access). Latency/Insts recovers the
			// segment's loop-weighted occurrence count.
			memSegW += seg.Latency / float64(seg.Insts)
		} else {
			compW += seg.Latency
		}
	}
	warps := float64((a.BlockSize + arch.WarpSize - 1) / arch.WarpSize)
	missLat := float64(arch.L2Lat + arch.DRAMLat)
	transfer := float64(arch.L1.LineBytes) / arch.DRAMBytesPerCycle
	// Effective on-chip capacity before contention bites: the L1 plus half
	// the L2 slice (which keeps absorbing part of the L1 spill traffic).
	capEff := float64(arch.L1.SizeBytes) + float64(arch.L2.SizeBytes)/2

	best, bestThr := 1, 0.0
	thrs := make([]float64, a.MaxTLP+1)
	for n := 1; n <= a.MaxTLP; n++ {
		h := in.HitRatioAtOne
		if agg := in.BlockFootprint * float64(n); agg > capEff && agg > 0 {
			h *= capEff / agg
		}
		avgLat := h*float64(arch.L1HitLat) + (1-h)*missLat
		issue := float64(n) * (compW + memW) * warps / float64(arch.NumSchedulers)
		bandwidth := float64(n) * memW * warps * (1 - h) * transfer
		latency := compW + memSegW*avgLat
		t := issue
		if bandwidth > t {
			t = bandwidth
		}
		if latency > t {
			t = latency
		}
		thrs[n] = float64(n) / t
		if thrs[n] > bestThr {
			best, bestThr = n, thrs[n]
		}
	}
	// Among near-ties (within 5% of the best), prefer the higher TLP: when
	// the model cannot separate them, extra parallelism is the safer bet.
	for n := a.MaxTLP; n > best; n-- {
		if thrs[n] >= 0.95*bestThr {
			return n
		}
	}
	return best
}

// InvolvedBlocks mimics GTO scheduling over the segment sequence until the
// first block finishes, returning how many blocks became involved (paper
// Figure 10b): the parallelism needed to keep the core busy. It complements
// EstimateOptTLP's throughput view.
func InvolvedBlocks(a *Analysis, arch gpusim.Config, in StaticModelInput) int {
	n := a.MaxTLP
	if n <= 1 {
		return 1
	}
	type blk struct {
		seg      int
		ready    float64
		involved bool
	}
	blocks := make([]blk, n)
	coreFree := 0.0
	memFree := 0.0
	h := in.HitRatioAtOne
	if agg := in.BlockFootprint * float64(n); agg > float64(arch.L1.SizeBytes) && agg > 0 {
		h *= float64(arch.L1.SizeBytes) / agg
	}
	missLat := float64(arch.L2Lat + arch.DRAMLat)
	avgLat := h*float64(arch.L1HitLat) + (1-h)*missLat

	for blocks[0].seg < len(a.Segments) {
		// GTO: the lowest-indexed ready block gets the core.
		pick := -1
		for i := range blocks {
			if blocks[i].seg >= len(a.Segments) {
				continue
			}
			if blocks[i].ready <= coreFree {
				pick = i
				break
			}
			if pick == -1 || blocks[i].ready < blocks[pick].ready {
				pick = i
			}
		}
		if pick == -1 {
			break
		}
		b := &blocks[pick]
		b.involved = true
		start := b.ready
		if coreFree > start {
			start = coreFree
		}
		seg := a.Segments[b.seg]
		if seg.Kind == SegCompute {
			coreFree = start + seg.Latency
			b.ready = coreFree
		} else {
			// Issue briefly, then wait out the contention-adjusted latency
			// plus bandwidth queueing for the missing fraction.
			coreFree = start + seg.Latency
			misses := seg.Latency * (1 - h) * float64(a.BlockSize)
			transfer := misses * float64(arch.L1.LineBytes) / 8 / arch.DRAMBytesPerCycle
			avail := start + avgLat
			if memFree > start {
				avail = memFree + avgLat
			}
			memFree = avail - avgLat + transfer
			b.ready = avail
		}
		b.seg++
	}
	involved := 0
	for i := range blocks {
		if blocks[i].involved {
			involved++
		}
	}
	if involved < 1 {
		involved = 1
	}
	return involved
}

// sortedTLPs returns the keys of a staircase in descending TLP order.
func sortedTLPs(stairs map[int]int) []int {
	out := make([]int, 0, len(stairs))
	for t := range stairs {
		out = append(out, t)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
