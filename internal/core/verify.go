package core

import (
	"fmt"

	"crat/internal/gpusim"
	"crat/internal/oracle"
	"crat/internal/regalloc"
)

// oracleOpts builds the oracle configuration for one app. When the app
// carries a Setup provider (all seed workloads do) the oracle replays the
// app's real inputs; otherwise it generates VerifyRuns seeded input sets.
func (o Options) oracleOpts(app App) oracle.Options {
	return oracle.Options{
		Grid:  app.Grid,
		Block: app.Block,
		Runs:  o.VerifyRuns,
		Seed:  o.VerifySeed,
		Setup: app.Setup,
	}
}

// baselineCandidate builds the degraded-mode fallback: a spill-free
// allocation at MaxReg with no shared-memory spilling — the most
// conservative rewrite the pipeline can emit (a pure register rename). Its
// TLP is the hardware occupancy at that register usage.
func baselineCandidate(app App, arch gpusim.Config, a *Analysis) (*Candidate, error) {
	alloc, err := regalloc.Allocate(app.Kernel, regalloc.Options{Regs: a.MaxReg})
	if err != nil {
		return nil, fmt.Errorf("core: %s: baseline fallback allocation: %w", app.Name, err)
	}
	tlp := arch.Occupancy(alloc.UsedRegs, a.ShmSize, a.BlockSize)
	if tlp < 1 {
		tlp = 1
	}
	return &Candidate{Backend: "baseline", Reg: a.MaxReg, TLP: tlp, Alloc: alloc, Overhead: alloc.Kernel.SpillOverhead()}, nil
}

// verifyDecision runs the differential oracle over the chosen candidate's
// rewrite chain (original → allocated → spill-optimized). On a divergence
// the decision is degraded in place: the chosen candidate is replaced with
// the verified baseline allocation and the Divergence recorded, so the
// pipeline completes with a correct (if unoptimized) kernel rather than
// shipping a miscompile or dying. A non-nil error means verification could
// not establish a correct kernel at all — the reference faulted, or even
// the baseline diverges.
func verifyDecision(app App, arch gpusim.Config, a *Analysis, d *Decision, opts Options) error {
	oopts := opts.oracleOpts(app)
	div, err := oracle.CheckChain(app.Kernel, d.Chosen.Alloc.Kernel, d.Chosen.Kernel(), oopts)
	if err != nil {
		return fmt.Errorf("core: %s: equivalence check: %w", app.Name, err)
	}
	if div == nil {
		return nil
	}
	fb, err := baselineCandidate(app, arch, a)
	if err != nil {
		return fmt.Errorf("core: %s: %v; %w", app.Name, div, err)
	}
	fbDiv, err := oracle.Check(app.Kernel, fb.Kernel(), "baseline", oopts)
	if err != nil {
		return fmt.Errorf("core: %s: baseline equivalence check: %w", app.Name, err)
	}
	if fbDiv != nil {
		// Nothing trustworthy to fall back to; this is a hard failure.
		return fmt.Errorf("core: %s: baseline allocation also diverges: %w", app.Name, fbDiv)
	}
	fb.TPSC = TPSC(fb.TLP, a.BlockSize, arch.MaxThreadsPerSM, fb.Overhead, d.Costs)
	d.Degraded = true
	d.Divergence = div
	d.Chosen = *fb
	return nil
}
