package core

import (
	"context"
	"fmt"

	"crat/internal/backend"
	"crat/internal/gpusim"
	"crat/internal/oracle"
	"crat/internal/passes"
	"crat/internal/pool"
	"crat/internal/ptx"
)

// PassInfo names one pipeline pass for tooling (cratc -passes).
type PassInfo struct {
	Name string
	Desc string
}

// PipelinePasses lists the pipeline's passes in execution order for the
// default backend set: pruning, then each registered backend's candidate
// pipeline (deduplicated — the allocation passes are shared), then
// selection. It is equivalent to PipelinePassesFor(nil).
func PipelinePasses() []PassInfo {
	return PipelinePassesFor(nil)
}

// PipelinePassesFor lists the passes the pipeline runs for the named
// backends (nil or empty = every registered backend), in execution order:
// the shared prune pass, each backend's registered pipeline (passes
// already listed by an earlier backend appear once), and the selection
// pass. Unknown names are skipped — callers validate via
// backend.Resolve before compiling.
func PipelinePassesFor(names []string) []PassInfo {
	if len(names) == 0 {
		names = backend.Names()
	}
	out := []PassInfo{
		{"prune", "design-space pruning: rightmost point per occupancy stair, TLP capped at OptTLP (paper §4.2)"},
	}
	seen := map[string]bool{}
	for _, name := range names {
		bk, ok := backend.Lookup(name)
		if !ok {
			continue
		}
		for _, p := range bk.Passes() {
			if seen[p.Name] {
				continue
			}
			seen[p.Name] = true
			out = append(out, PassInfo{Name: p.Name, Desc: p.Desc})
		}
	}
	out = append(out, PassInfo{"tpsc-select", "TPSC-model selection across surviving candidates of every enabled backend (oracle-select under Options.Oracle)"})
	return out
}

// PassCheckError reports a per-pass oracle spot-check failure: either the
// pass's output diverged from its input (Div set) or the check itself could
// not run (Err set). Unlike an infeasible register budget, this is a
// pipeline fault — Optimize fails fast instead of skipping the candidate.
type PassCheckError struct {
	Pass string
	Div  *oracle.Divergence
	Err  error
}

func (e *PassCheckError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("core: pass %q spot-check: %v", e.Pass, e.Err)
	}
	return fmt.Sprintf("core: pass %q diverged: %v", e.Pass, e.Div)
}

func (e *PassCheckError) Unwrap() error { return e.Err }

// PipelineFault marks the error as a hard pipeline failure for
// backend.IsPipelineFault, so backends fail fast instead of treating a
// diverging pass as an infeasible design point.
func (e *PassCheckError) PipelineFault() {}

// passManager builds the instrumented pass manager one Optimize (or
// planModeCtx) invocation threads through every pipeline stage. The zero
// configuration is free: hooks stay nil and the manager only records
// per-pass events and the process-wide timing aggregates.
func (o Options) passManager(app App) *passes.Manager {
	pm := &passes.Manager{VerifyEach: o.VerifyEachPass, DumpAfter: o.DumpAfter}
	if o.OracleEachPass {
		oopts := o.oracleOpts(app)
		pm.SpotCheck = func(pass string, before, after *ptx.Kernel) error {
			div, err := oracle.Check(before, after, "pass:"+pass, oopts)
			if err != nil {
				return &PassCheckError{Pass: pass, Err: err}
			}
			if div != nil {
				return &PassCheckError{Pass: pass, Div: div}
			}
			return nil
		}
	}
	return pm
}

// designPoint is one surviving (register budget, TLP) pair from pruning.
type designPoint struct {
	Reg, TLP int
}

// prunePass implements the paper's §4.2 design-space pruning as the
// pipeline's first pass: rightmost point per occupancy stair, TLP capped at
// OptTLP unless the ablation disables it, dominated register budgets
// removed (the same budget at a lower TLP compiles to identical code with
// less parallelism and can never win).
type prunePass struct {
	a      *Analysis
	arch   gpusim.Config
	opts   Options
	points []designPoint // output
}

func (p *prunePass) Name() string { return "prune" }

func (p *prunePass) Requires() []passes.Kind { return nil }

func (p *prunePass) Invalidates() []passes.Kind { return nil }

func (p *prunePass) Run(_ *ptx.Kernel, _ *passes.AnalysisManager) error {
	stairs := p.a.Staircase(p.arch)
	seenReg := make(map[int]bool)
	for _, tlp := range sortedTLPs(stairs) {
		if !p.opts.DisablePruning && tlp > p.a.OptTLP {
			continue
		}
		reg := stairs[tlp]
		if seenReg[reg] {
			continue
		}
		seenReg[reg] = true
		p.points = append(p.points, designPoint{Reg: reg, TLP: tlp})
	}
	return nil
}

// tpscSelectPass picks the candidate with the smallest TPSC metric; ties
// (e.g. several spill-free points with cost 0) break toward the higher TLP,
// then more registers.
type tpscSelectPass struct {
	d *Decision
}

func (p *tpscSelectPass) Name() string { return "tpsc-select" }

func (p *tpscSelectPass) Requires() []passes.Kind { return nil }

func (p *tpscSelectPass) Invalidates() []passes.Kind { return nil }

func (p *tpscSelectPass) Run(_ *ptx.Kernel, _ *passes.AnalysisManager) error {
	d := p.d
	best := 0
	for i := 1; i < len(d.Candidates); i++ {
		c, b := &d.Candidates[i], &d.Candidates[best]
		switch {
		case c.TPSC < b.TPSC:
			best = i
		case c.TPSC == b.TPSC && c.TLP > b.TLP:
			best = i
		case c.TPSC == b.TPSC && c.TLP == b.TLP && c.Reg > b.Reg:
			best = i
		}
	}
	d.Chosen = d.Candidates[best]
	return nil
}

// oracleSelectPass is the ablation selector: simulate every candidate and
// take the fastest. The candidates are independent kernels, so the sweep
// fans out like the profiling one; the reduction stays in candidate order
// so the winner (and first error) matches the serial loop.
type oracleSelectPass struct {
	ctx  context.Context
	app  App
	arch gpusim.Config
	opts Options
	d    *Decision
}

func (p *oracleSelectPass) Name() string { return "oracle-select" }

func (p *oracleSelectPass) Requires() []passes.Kind { return nil }

func (p *oracleSelectPass) Invalidates() []passes.Kind { return nil }

func (p *oracleSelectPass) Run(_ *ptx.Kernel, _ *passes.AnalysisManager) error {
	d := p.d
	stats := make([]gpusim.Stats, len(d.Candidates))
	errs := make([]error, len(d.Candidates))
	poolErr := pool.RunCtx(p.ctx, p.opts.profileWorkers(), len(d.Candidates), func(i int) {
		c := &d.Candidates[i]
		stats[i], errs[i] = SimulateCtx(p.ctx, p.app, p.arch, &appKernel{k: c.Kernel(), regs: c.UsedRegs()}, c.TLP)
	})
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	if poolErr != nil {
		return poolErr
	}
	bestIdx, bestCycles := -1, int64(0)
	for i := range d.Candidates {
		d.Candidates[i].Cycles = stats[i].Cycles
		if bestIdx == -1 || stats[i].Cycles < bestCycles {
			bestIdx, bestCycles = i, stats[i].Cycles
		}
	}
	d.Chosen = d.Candidates[bestIdx]
	return nil
}
