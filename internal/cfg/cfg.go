// Package cfg builds control-flow graphs over PTX kernels and provides the
// dataflow analyses the CRAT framework relies on: liveness (for live ranges
// and interference, paper §5), post-dominators (for SIMT reconvergence in
// the simulator), and loop nesting depth (for spill-cost weighting).
package cfg

import (
	"fmt"

	"crat/internal/ptx"
)

// Block is a basic block: a maximal straight-line instruction range
// [Start, End) of the kernel.
type Block struct {
	Index int
	Start int // first instruction index
	End   int // one past last instruction index
	Succs []int
	Preds []int
}

// Graph is the control-flow graph of a kernel. Block ExitIndex is a virtual
// exit node (empty range) that every exit/ret instruction and the fallthrough
// of the last block flow into; it simplifies post-dominator computation.
type Graph struct {
	Kernel    *ptx.Kernel
	Blocks    []Block
	ExitIndex int
	blockOf   []int // instruction index -> block index
}

// Build constructs the CFG of k. It returns an error for malformed control
// flow (branches to unknown labels).
func Build(k *ptx.Kernel) (*Graph, error) {
	n := len(k.Insts)
	labels := make(map[string]int)
	for i := range k.Insts {
		if l := k.Insts[i].Label; l != "" {
			labels[l] = i
		}
	}

	// Leaders: first instruction, branch targets, and fallthroughs of
	// control instructions.
	leader := make([]bool, n+1)
	if n > 0 {
		leader[0] = true
	}
	for i := range k.Insts {
		in := &k.Insts[i]
		switch in.Op {
		case ptx.OpBra:
			t, ok := labels[in.Target]
			if !ok {
				return nil, fmt.Errorf("cfg: branch to undefined label %q", in.Target)
			}
			leader[t] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case ptx.OpExit, ptx.OpRet:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	g := &Graph{Kernel: k, blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := Block{Index: len(g.Blocks), Start: start, End: i}
			g.Blocks = append(g.Blocks, b)
			start = i
		}
	}
	g.ExitIndex = len(g.Blocks)
	g.Blocks = append(g.Blocks, Block{Index: g.ExitIndex, Start: n, End: n})

	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		for i := b.Start; i < b.End; i++ {
			g.blockOf[i] = bi
		}
	}

	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for bi := 0; bi < g.ExitIndex; bi++ {
		b := &g.Blocks[bi]
		if b.Start == b.End {
			continue
		}
		last := &k.Insts[b.End-1]
		switch last.Op {
		case ptx.OpBra:
			addEdge(bi, g.blockOf[labels[last.Target]])
			if last.Guard != ptx.NoReg {
				// Conditional branch also falls through.
				if b.End < n {
					addEdge(bi, g.blockOf[b.End])
				} else {
					addEdge(bi, g.ExitIndex)
				}
			}
		case ptx.OpExit, ptx.OpRet:
			addEdge(bi, g.ExitIndex)
		default:
			if b.End < n {
				addEdge(bi, g.blockOf[b.End])
			} else {
				addEdge(bi, g.ExitIndex)
			}
		}
	}
	return g, nil
}

// BlockOf returns the block index containing instruction i.
func (g *Graph) BlockOf(i int) int { return g.blockOf[i] }

// NumBlocks returns the number of blocks including the virtual exit.
func (g *Graph) NumBlocks() int { return len(g.Blocks) }

// PostDominators computes the immediate post-dominator of every block using
// the iterative Cooper-Harvey-Kennedy algorithm on the reverse CFG. The
// virtual exit post-dominates everything. Returns ipdom indexed by block;
// ipdom[exit] == exit.
func (g *Graph) PostDominators() []int {
	n := len(g.Blocks)
	// Reverse post-order of the reverse CFG = post-order from exit over preds.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, p := range g.Blocks[b].Preds {
			if !seen[p] {
				dfs(p)
			}
		}
		order = append(order, b)
	}
	dfs(g.ExitIndex)
	// order is post-order ending at exit; process in reverse (exit first).
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b] = len(order) - 1 - i
	}

	ipdom := make([]int, n)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[g.ExitIndex] = g.ExitIndex

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = ipdom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == g.ExitIndex {
				continue
			}
			newIdom := -1
			for _, s := range g.Blocks[b].Succs {
				if ipdom[s] == -1 || rpoNum[s] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom != -1 && ipdom[b] != newIdom {
				ipdom[b] = newIdom
				changed = true
			}
		}
	}
	return ipdom
}

// LoopDepth returns the loop-nesting depth of every block, computed from
// natural loops of back edges (an edge u->v where v dominates u). Blocks
// outside any loop have depth 0.
func (g *Graph) LoopDepth() []int {
	n := len(g.Blocks)
	idom := g.Dominators()
	dominates := func(a, b int) bool {
		// Does a dominate b? Walk the dominator tree from b.
		for b != -1 {
			if b == a {
				return true
			}
			if b == idom[b] {
				break
			}
			b = idom[b]
		}
		return false
	}

	depth := make([]int, n)
	for u := range g.Blocks {
		for _, v := range g.Blocks[u].Succs {
			if !dominates(v, u) {
				continue
			}
			// Natural loop of back edge u->v: v plus all blocks that can
			// reach u without passing through v.
			inLoop := make([]bool, n)
			inLoop[v] = true
			stack := []int{u}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if inLoop[b] {
					continue
				}
				inLoop[b] = true
				for _, p := range g.Blocks[b].Preds {
					if !inLoop[p] {
						stack = append(stack, p)
					}
				}
			}
			for b := range inLoop {
				if inLoop[b] {
					depth[b]++
				}
			}
		}
	}
	return depth
}

// Dominators computes immediate dominators (entry block 0 is the root).
// idom[0] == 0; blocks unreachable from the entry keep idom == -1.
func (g *Graph) Dominators() []int {
	n := len(g.Blocks)
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	if n == 0 {
		return nil
	}
	dfs(0)
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b] = len(order) - 1 - i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if idom[p] == -1 || rpoNum[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// InstLoopDepth returns the loop depth of every instruction.
func (g *Graph) InstLoopDepth() []int {
	bd := g.LoopDepth()
	out := make([]int, len(g.Kernel.Insts))
	for i := range out {
		out[i] = bd[g.blockOf[i]]
	}
	return out
}

// ReconvergencePoints returns, for every instruction index holding a
// conditional branch, the instruction index where diverged warps reconverge:
// the start of the branch block's immediate post-dominator. A value of
// len(Insts) means reconvergence at kernel end.
func (g *Graph) ReconvergencePoints() map[int]int {
	ipdom := g.PostDominators()
	out := make(map[int]int)
	for bi := 0; bi < g.ExitIndex; bi++ {
		b := &g.Blocks[bi]
		if b.Start == b.End {
			continue
		}
		last := b.End - 1
		in := &g.Kernel.Insts[last]
		if in.Op == ptx.OpBra && in.Guard != ptx.NoReg {
			r := ipdom[bi]
			if r == -1 || r == g.ExitIndex {
				out[last] = len(g.Kernel.Insts)
			} else {
				out[last] = g.Blocks[r].Start
			}
		}
	}
	return out
}
