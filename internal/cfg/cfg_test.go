package cfg

import (
	"testing"
	"testing/quick"

	"crat/internal/ptx"
)

// buildLoopKernel builds:
//
//	r0 = 0; r1 = n
//	LOOP: p = r0 >= r1 ; @p bra DONE
//	  r2 = r0 * 2
//	  r0 = r0 + 1
//	  bra LOOP
//	DONE: exit
func buildLoopKernel() *ptx.Kernel {
	b := ptx.NewBuilder("loop")
	b.Param("n", ptx.U32)
	r0 := b.Reg(ptx.U32)
	r1 := b.Reg(ptx.U32)
	r2 := b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	b.Mov(ptx.U32, r0, ptx.Imm(0))
	b.LdParam(ptx.U32, r1, "n")
	b.Label("LOOP").Setp(ptx.CmpGe, ptx.U32, p, ptx.R(r0), ptx.R(r1))
	b.BraIf(p, false, "DONE")
	b.Mul(ptx.U32, r2, ptx.R(r0), ptx.Imm(2))
	b.Add(ptx.U32, r0, ptx.R(r0), ptx.Imm(1))
	b.Bra("LOOP")
	b.Label("DONE").Exit()
	return b.Kernel()
}

func TestBuildBlocks(t *testing.T) {
	k := buildLoopKernel()
	g, err := Build(k)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Blocks: [entry 0-2), [LOOP header 2-4), [body 4-7), [DONE 7-8), exit.
	if got := g.NumBlocks(); got != 5 {
		t.Fatalf("NumBlocks = %d, want 5", got)
	}
	header := g.BlockOf(2)
	body := g.BlockOf(4)
	done := g.BlockOf(7)
	if g.BlockOf(3) != header {
		t.Error("setp and conditional bra should share a block")
	}
	hs := g.Blocks[header].Succs
	if len(hs) != 2 {
		t.Fatalf("header succs = %v, want 2", hs)
	}
	found := map[int]bool{}
	for _, s := range hs {
		found[s] = true
	}
	if !found[body] || !found[done] {
		t.Errorf("header succs = %v, want {%d,%d}", hs, body, done)
	}
	bs := g.Blocks[body].Succs
	if len(bs) != 1 || bs[0] != header {
		t.Errorf("body succs = %v, want [%d]", bs, header)
	}
}

func TestLoopDepth(t *testing.T) {
	k := buildLoopKernel()
	g, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	d := g.InstLoopDepth()
	if d[0] != 0 || d[1] != 0 {
		t.Errorf("entry depth = %d,%d, want 0,0", d[0], d[1])
	}
	for i := 2; i <= 6; i++ {
		if d[i] != 1 {
			t.Errorf("inst %d depth = %d, want 1", i, d[i])
		}
	}
	if d[7] != 0 {
		t.Errorf("DONE depth = %d, want 0", d[7])
	}
}

func TestNestedLoopDepth(t *testing.T) {
	b := ptx.NewBuilder("nest")
	i := b.Reg(ptx.U32)
	j := b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	q := b.Reg(ptx.Pred)
	b.Mov(ptx.U32, i, ptx.Imm(0))
	b.Label("OUTER").Setp(ptx.CmpGe, ptx.U32, p, ptx.R(i), ptx.Imm(4))
	b.BraIf(p, false, "END")
	b.Mov(ptx.U32, j, ptx.Imm(0))
	b.Label("INNER").Setp(ptx.CmpGe, ptx.U32, q, ptx.R(j), ptx.Imm(4))
	b.BraIf(q, false, "AFTER")
	b.Add(ptx.U32, j, ptx.R(j), ptx.Imm(1))
	b.Bra("INNER")
	b.Label("AFTER").Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Bra("OUTER")
	b.Label("END").Exit()
	g, err := Build(b.Kernel())
	if err != nil {
		t.Fatal(err)
	}
	d := g.InstLoopDepth()
	// Inner loop body (the add to j at index 6) is depth 2.
	if d[6] != 2 {
		t.Errorf("inner body depth = %d, want 2", d[6])
	}
	// Outer body (the add to i at index 8) is depth 1.
	if d[8] != 1 {
		t.Errorf("outer body depth = %d, want 1", d[8])
	}
}

func TestLiveness(t *testing.T) {
	k := buildLoopKernel()
	g, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	lv := ComputeLiveness(g)

	// r0 (reg 0) and r1 (reg 1) are live around the loop: live-out of the
	// header block into the body.
	header := g.BlockOf(2)
	if !lv.BlockIn[header].Has(0) || !lv.BlockIn[header].Has(1) {
		t.Error("r0/r1 should be live into loop header")
	}
	// r2 (reg 2) is dead everywhere after its def (never used).
	body := g.BlockOf(4)
	if lv.BlockOut[body].Has(2) {
		t.Error("r2 should not be live out of body")
	}
	// Nothing is live at kernel entry.
	if got := lv.LiveAtEntry().Count(); got != 0 {
		t.Errorf("LiveAtEntry = %d registers, want 0", got)
	}
}

func TestInstOut(t *testing.T) {
	b := ptx.NewBuilder("straight")
	a := b.Reg(ptx.U32)
	c := b.Reg(ptx.U32)
	d := b.Reg(ptx.U32)
	b.Mov(ptx.U32, a, ptx.Imm(1))         // 0
	b.Mov(ptx.U32, c, ptx.Imm(2))         // 1
	b.Add(ptx.U32, d, ptx.R(a), ptx.R(c)) // 2
	b.Add(ptx.U32, a, ptx.R(d), ptx.R(d)) // 3: kills a, uses d
	b.Exit()                              // 4
	g, err := Build(b.Kernel())
	if err != nil {
		t.Fatal(err)
	}
	lv := ComputeLiveness(g)
	if !lv.InstOut[0].Has(a) {
		t.Error("a live after inst 0")
	}
	if !lv.InstOut[1].Has(a) || !lv.InstOut[1].Has(c) {
		t.Error("a,c live after inst 1")
	}
	if lv.InstOut[2].Has(c) {
		t.Error("c dead after inst 2")
	}
	if !lv.InstOut[2].Has(d) {
		t.Error("d live after inst 2")
	}
	if lv.InstOut[3].Has(d) && lv.InstOut[3].Has(a) {
		// a is dead (never used after redefinition at 3), d dead too.
		t.Error("nothing should be live after inst 3 except nothing")
	}
}

func TestPredicatedDefKeepsValueLive(t *testing.T) {
	// r = 1; @p r = 2; use r  — the first def must stay live across the
	// predicated def because threads with !p keep the old value.
	b := ptx.NewBuilder("preddef")
	r := b.Reg(ptx.U32)
	s := b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	b.Setp(ptx.CmpEq, ptx.U32, p, ptx.Imm(0), ptx.Imm(0)) // 0
	b.Mov(ptx.U32, r, ptx.Imm(1))                         // 1
	b.If(p, false).Mov(ptx.U32, r, ptx.Imm(2))            // 2 predicated def
	b.Add(ptx.U32, s, ptx.R(r), ptx.R(r))                 // 3
	b.Exit()
	g, err := Build(b.Kernel())
	if err != nil {
		t.Fatal(err)
	}
	lv := ComputeLiveness(g)
	if !lv.InstOut[1].Has(r) {
		t.Error("r must be live after inst 1 (predicated redefinition)")
	}
}

func TestMaxLivePressure(t *testing.T) {
	b := ptx.NewBuilder("pressure")
	regs := b.Regs(ptx.U32, 4)
	wide := b.Reg(ptx.U64)
	sum := b.Reg(ptx.U32)
	for i, r := range regs {
		b.Mov(ptx.U32, r, ptx.Imm(int64(i)))
	}
	b.Mov(ptx.U64, wide, ptx.Imm(7))
	b.Mov(ptx.U32, sum, ptx.Imm(0))
	for _, r := range regs {
		b.Add(ptx.U32, sum, ptx.R(sum), ptx.R(r))
	}
	// Keep wide alive to the end.
	last := b.Reg(ptx.U64)
	b.Add(ptx.U64, last, ptx.R(wide), ptx.Imm(1))
	b.Exit()
	g, err := Build(b.Kernel())
	if err != nil {
		t.Fatal(err)
	}
	lv := ComputeLiveness(g)
	// At the point after "sum=0": 4 regs + wide(2 slots) + sum = 7 slots.
	if got := lv.MaxLivePressure(); got != 7 {
		t.Errorf("MaxLivePressure = %d, want 7", got)
	}
}

func TestPostDominators(t *testing.T) {
	k := buildLoopKernel()
	g, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	ipdom := g.PostDominators()
	header := g.BlockOf(2)
	done := g.BlockOf(7)
	// DONE post-dominates the loop header.
	got := ipdom[header]
	for got != done && got != g.ExitIndex && got != ipdom[got] {
		got = ipdom[got]
	}
	if got != done {
		t.Errorf("DONE does not post-dominate header (chain reached %d)", got)
	}
}

func TestReconvergencePoints(t *testing.T) {
	// If/else diamond: reconvergence of the conditional branch is the join.
	b := ptx.NewBuilder("diamond")
	x := b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	b.MovSpec(x, ptx.SpecTidX)                            // 0
	b.Setp(ptx.CmpLt, ptx.U32, p, ptx.R(x), ptx.Imm(16))  // 1
	b.BraIf(p, false, "THEN")                             // 2
	b.Add(ptx.U32, x, ptx.R(x), ptx.Imm(1))               // 3 else
	b.Bra("JOIN")                                         // 4
	b.Label("THEN").Add(ptx.U32, x, ptx.R(x), ptx.Imm(2)) // 5
	b.Label("JOIN").Add(ptx.U32, x, ptx.R(x), ptx.Imm(3)) // 6
	b.Exit()                                              // 7
	g, err := Build(b.Kernel())
	if err != nil {
		t.Fatal(err)
	}
	rp := g.ReconvergencePoints()
	if got, ok := rp[2]; !ok || got != 6 {
		t.Errorf("reconvergence of branch 2 = %d (%v), want 6", got, ok)
	}
}

func TestRegSetProperties(t *testing.T) {
	f := func(adds []uint8) bool {
		s := NewRegSet(256)
		ref := map[ptx.Reg]bool{}
		for _, a := range adds {
			r := ptx.Reg(a)
			s.Add(r)
			ref[r] = true
		}
		if s.Count() != len(ref) {
			return false
		}
		for r := range ref {
			if !s.Has(r) {
				return false
			}
		}
		n := 0
		s.ForEach(func(r ptx.Reg) {
			if !ref[r] {
				n = -1000
			}
			n++
		})
		return n == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegSetUnionRemove(t *testing.T) {
	a := NewRegSet(128)
	b := NewRegSet(128)
	a.Add(1)
	a.Add(64)
	b.Add(64)
	b.Add(127)
	if !a.Union(b) {
		t.Error("union should change a")
	}
	if a.Union(b) {
		t.Error("second union should not change a")
	}
	if a.Count() != 3 {
		t.Errorf("count = %d, want 3", a.Count())
	}
	a.Remove(64)
	if a.Has(64) || a.Count() != 2 {
		t.Error("remove failed")
	}
}

func TestLiveRangesAndWeights(t *testing.T) {
	k := buildLoopKernel()
	g, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	lv := ComputeLiveness(g)
	ranges := lv.LiveRanges()
	// r0 spans from inst 0 (def) to at least inst 5 (last add).
	if ranges[0].Start != 0 || ranges[0].End < 5 {
		t.Errorf("r0 range = [%d,%d], want [0,>=5]", ranges[0].Start, ranges[0].End)
	}
	w := lv.AccessWeights()
	// r0 is accessed inside the loop (weight 10 per access) and once
	// outside; its weight must exceed r2's (one def in loop).
	if w[0] <= w[2] {
		t.Errorf("weight r0 = %v should exceed r2 = %v", w[0], w[2])
	}
	// All loop accesses weigh 10x.
	if w[2] != 10 {
		t.Errorf("weight r2 = %v, want 10", w[2])
	}
}

func TestBranchToUndefinedLabel(t *testing.T) {
	k := ptx.NewKernel("bad")
	k.Append(ptx.Inst{Op: ptx.OpBra, Target: "NOWHERE", Guard: ptx.NoReg})
	if _, err := Build(k); err == nil {
		t.Error("Build accepted branch to undefined label")
	}
}

func TestDiamondHasNoLoops(t *testing.T) {
	b := ptx.NewBuilder("diamond")
	x := b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	b.MovSpec(x, ptx.SpecTidX)
	b.Setp(ptx.CmpLt, ptx.U32, p, ptx.R(x), ptx.Imm(16))
	b.BraIf(p, false, "THEN")
	b.Add(ptx.U32, x, ptx.R(x), ptx.Imm(1))
	b.Bra("JOIN")
	b.Label("THEN").Add(ptx.U32, x, ptx.R(x), ptx.Imm(2))
	b.Label("JOIN").Exit()
	g, err := Build(b.Kernel())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range g.InstLoopDepth() {
		if d != 0 {
			t.Errorf("inst %d depth = %d, want 0 (no loops in a diamond)", i, d)
		}
	}
}

func TestLoopBranchReconvergesAtExitBlock(t *testing.T) {
	k := buildLoopKernel()
	g, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	rp := g.ReconvergencePoints()
	// The loop's conditional branch (inst 3) reconverges at DONE (inst 7).
	if got, ok := rp[3]; !ok || got != 7 {
		t.Errorf("loop branch reconvergence = %d (%v), want 7", got, ok)
	}
}

func TestEmptyKernelGraph(t *testing.T) {
	k := ptx.NewKernel("empty")
	k.Append(ptx.Inst{Op: ptx.OpExit, Guard: ptx.NoReg})
	g, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumBlocks() != 2 { // one real block + virtual exit
		t.Errorf("NumBlocks = %d, want 2", g.NumBlocks())
	}
	lv := ComputeLiveness(g)
	if lv.LiveAtEntry().Count() != 0 {
		t.Error("empty kernel has live-in registers")
	}
}
