package cfg

import (
	"crat/internal/ptx"
)

// RegSet is a bitset over kernel registers.
type RegSet []uint64

// NewRegSet returns an empty set sized for n registers.
func NewRegSet(n int) RegSet { return make(RegSet, (n+63)/64) }

// Has reports whether r is in the set.
func (s RegSet) Has(r ptx.Reg) bool {
	return s[int(r)/64]&(1<<(uint(r)%64)) != 0
}

// Add inserts r. It reports whether the set changed.
func (s RegSet) Add(r ptx.Reg) bool {
	w, b := int(r)/64, uint(r)%64
	if s[w]&(1<<b) != 0 {
		return false
	}
	s[w] |= 1 << b
	return true
}

// Remove deletes r from the set.
func (s RegSet) Remove(r ptx.Reg) {
	s[int(r)/64] &^= 1 << (uint(r) % 64)
}

// Union adds all elements of o; it reports whether the set changed.
func (s RegSet) Union(o RegSet) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Clone returns a copy of the set.
func (s RegSet) Clone() RegSet {
	out := make(RegSet, len(s))
	copy(out, s)
	return out
}

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ForEach calls f for every register in the set, in increasing order.
func (s RegSet) ForEach(f func(ptx.Reg)) {
	for wi, w := range s {
		for w != 0 {
			b := w & -w
			bit := 0
			for x := b; x > 1; x >>= 1 {
				bit++
			}
			f(ptx.Reg(wi*64 + bit))
			w &^= b
		}
	}
}

// Liveness holds the result of live-variable analysis: per-block live-in/out
// and per-instruction live-out sets.
type Liveness struct {
	Graph    *Graph
	BlockIn  []RegSet
	BlockOut []RegSet
	// InstOut[i] is the set of registers live immediately after
	// instruction i.
	InstOut []RegSet
}

// ComputeLiveness runs backward live-variable dataflow analysis over the
// kernel's CFG at instruction granularity. This is the "live range analysis"
// step of the Chaitin-Briggs allocator (paper Figure 9).
func ComputeLiveness(g *Graph) *Liveness {
	k := g.Kernel
	nRegs := k.NumRegs()
	nb := len(g.Blocks)

	// Per-block use/def summary.
	use := make([]RegSet, nb)
	def := make([]RegSet, nb)
	var ubuf, dbuf []ptx.Reg
	for bi := range g.Blocks {
		use[bi] = NewRegSet(nRegs)
		def[bi] = NewRegSet(nRegs)
		b := &g.Blocks[bi]
		for i := b.Start; i < b.End; i++ {
			in := &k.Insts[i]
			ubuf = in.Uses(ubuf[:0])
			for _, r := range ubuf {
				if !def[bi].Has(r) {
					use[bi].Add(r)
				}
			}
			dbuf = in.Defs(dbuf[:0])
			for _, r := range dbuf {
				// A predicated definition is a partial write: the old value
				// survives in threads whose guard is false, so the register
				// is also upward-exposed (treated as used).
				if in.Guard != ptx.NoReg && !def[bi].Has(r) {
					use[bi].Add(r)
				}
				def[bi].Add(r)
			}
		}
	}

	lv := &Liveness{
		Graph:    g,
		BlockIn:  make([]RegSet, nb),
		BlockOut: make([]RegSet, nb),
	}
	for bi := range g.Blocks {
		lv.BlockIn[bi] = NewRegSet(nRegs)
		lv.BlockOut[bi] = NewRegSet(nRegs)
	}

	// Iterate to fixpoint (backward): out[b] = union(in[s]); in[b] =
	// use[b] | (out[b] - def[b]).
	changed := true
	for changed {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			b := &g.Blocks[bi]
			out := lv.BlockOut[bi]
			for _, s := range b.Succs {
				if out.Union(lv.BlockIn[s]) {
					changed = true
				}
			}
			in := out.Clone()
			def[bi].ForEach(func(r ptx.Reg) {
				if !use[bi].Has(r) {
					in.Remove(r)
				}
			})
			in.Union(use[bi])
			if lv.BlockIn[bi].Union(in) {
				changed = true
			}
		}
	}

	// Per-instruction live-out by backward scan within each block.
	lv.InstOut = make([]RegSet, len(k.Insts))
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		live := lv.BlockOut[bi].Clone()
		for i := b.End - 1; i >= b.Start; i-- {
			lv.InstOut[i] = live.Clone()
			in := &k.Insts[i]
			dbuf = in.Defs(dbuf[:0])
			for _, r := range dbuf {
				if in.Guard == ptx.NoReg {
					live.Remove(r)
				}
			}
			ubuf = in.Uses(ubuf[:0])
			for _, r := range ubuf {
				live.Add(r)
			}
			if in.Guard != ptx.NoReg {
				for _, r := range dbuf {
					live.Add(r)
				}
			}
		}
	}
	return lv
}

// LiveAtEntry returns the registers live at kernel entry. For a well-formed
// kernel this contains no general registers (everything is defined before
// use); the allocator uses it as a sanity check.
func (lv *Liveness) LiveAtEntry() RegSet {
	if len(lv.BlockIn) == 0 {
		return nil
	}
	return lv.BlockIn[0]
}

// MaxLivePressure returns the maximum, over all program points, of the
// number of 32-bit register slots occupied by simultaneously live values
// (64-bit values count twice; predicates are excluded). This is a lower
// bound on the registers any allocation needs and drives the MaxReg
// parameter of paper Table 1.
func (lv *Liveness) MaxLivePressure() int {
	k := lv.Graph.Kernel
	max := 0
	for i := range lv.InstOut {
		p := 0
		lv.InstOut[i].ForEach(func(r ptx.Reg) {
			p += k.RegType(r).Class().Slots()
		})
		// Include the instruction's own defs (live through the def point).
		if p > max {
			max = p
		}
	}
	return max
}

// LiveRange describes the instruction span over which a register is live.
type LiveRange struct {
	Reg        ptx.Reg
	Start, End int     // instruction indices, inclusive of defs/uses
	Uses       int     // number of use sites
	Defs       int     // number of def sites
	Weight     float64 // loop-depth-weighted access count (spill cost basis)
}

// LiveRanges computes a conservative linear live interval per register
// (used by the linear-scan reference allocator): the span from its first
// definition to its last use, extended across loops the register is
// live into.
func (lv *Liveness) LiveRanges() []LiveRange {
	k := lv.Graph.Kernel
	depth := lv.Graph.InstLoopDepth()
	n := k.NumRegs()
	ranges := make([]LiveRange, n)
	for r := 0; r < n; r++ {
		ranges[r] = LiveRange{Reg: ptx.Reg(r), Start: -1, End: -1}
	}
	touch := func(r ptx.Reg, i int) {
		lr := &ranges[r]
		if lr.Start == -1 || i < lr.Start {
			lr.Start = i
		}
		if i > lr.End {
			lr.End = i
		}
	}
	var buf []ptx.Reg
	for i := range k.Insts {
		in := &k.Insts[i]
		w := weightAtDepth(depth[i])
		buf = in.Uses(buf[:0])
		for _, r := range buf {
			touch(r, i)
			ranges[r].Uses++
			ranges[r].Weight += w
		}
		buf = in.Defs(buf[:0])
		for _, r := range buf {
			touch(r, i)
			ranges[r].Defs++
			ranges[r].Weight += w
		}
		// Extend ranges across points where the register is live.
		lv.InstOut[i].ForEach(func(r ptx.Reg) { touch(r, i) })
	}
	return ranges
}

// weightAtDepth is the classic 10^depth spill-cost weight.
func weightAtDepth(d int) float64 {
	w := 1.0
	for i := 0; i < d; i++ {
		w *= 10
	}
	return w
}

// AccessWeights returns, per register, the loop-depth-weighted count of its
// static access sites (uses + defs). The Chaitin spill heuristic divides
// this by interference degree.
func (lv *Liveness) AccessWeights() []float64 {
	k := lv.Graph.Kernel
	depth := lv.Graph.InstLoopDepth()
	out := make([]float64, k.NumRegs())
	var buf []ptx.Reg
	for i := range k.Insts {
		w := weightAtDepth(depth[i])
		buf = k.Insts[i].Uses(buf[:0])
		for _, r := range buf {
			out[r] += w
		}
		buf = k.Insts[i].Defs(buf[:0])
		for _, r := range buf {
			out[r] += w
		}
	}
	return out
}
