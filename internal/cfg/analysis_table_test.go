package cfg

import (
	"testing"

	"crat/internal/ptx"
)

// analysisFixture is one kernel shape shared by the table-driven liveness
// and dominator tests: the kernel plus stable names for the registers and
// instruction indices the expectations refer to (raw indices would rot as
// soon as a case gains an instruction).
type analysisFixture struct {
	k    *ptx.Kernel
	regs map[string]ptx.Reg
	at   map[string]int
}

// mark remembers the index of the next instruction to be emitted.
func (f *analysisFixture) mark(b *ptx.Builder, name string) {
	f.at[name] = len(b.Kernel().Insts)
}

// countedLoop is the canonical single-loop kernel:
//
//	acc = 0; n = param; i = 0
//	LOOP: p = i >= n ; @p bra DONE
//	  dead = i * 2        // defined, never used
//	  acc = acc + i       // loop-carried accumulator
//	  i = i + 1 ; bra LOOP
//	DONE: out = acc * 3 ; exit
func countedLoop() analysisFixture {
	f := analysisFixture{regs: map[string]ptx.Reg{}, at: map[string]int{}}
	b := ptx.NewBuilder("counted_loop")
	b.Param("n", ptx.U32)
	acc, n, i := b.Reg(ptx.U32), b.Reg(ptx.U32), b.Reg(ptx.U32)
	dead, out := b.Reg(ptx.U32), b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	f.regs["acc"], f.regs["i"], f.regs["dead"], f.regs["out"] = acc, i, dead, out
	b.Mov(ptx.U32, acc, ptx.Imm(0))
	b.LdParam(ptx.U32, n, "n")
	b.Mov(ptx.U32, i, ptx.Imm(0))
	f.mark(b, "header")
	b.Label("LOOP").Setp(ptx.CmpGe, ptx.U32, p, ptx.R(i), ptx.R(n))
	b.BraIf(p, false, "DONE")
	f.mark(b, "deadDef")
	b.Mul(ptx.U32, dead, ptx.R(i), ptx.Imm(2))
	f.mark(b, "accAdd")
	b.Add(ptx.U32, acc, ptx.R(acc), ptx.R(i))
	f.mark(b, "incr")
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	f.mark(b, "backEdge")
	b.Bra("LOOP")
	f.mark(b, "done")
	b.Label("DONE").Mul(ptx.U32, out, ptx.R(acc), ptx.Imm(3))
	b.Exit()
	f.k = b.Kernel()
	return f
}

// multiExitLoop extends the loop with a second, data-dependent exit out of
// the loop body, so the function has two exit blocks and the loop two
// distinct exit edges:
//
//	acc = 0; n = param; i = 0
//	LOOP: p = i >= n ; @p bra EARLY
//	  acc = acc + i
//	  q = acc >= 100 ; @q bra DONE     // second exit, from mid-body
//	  i = i + 1 ; bra LOOP
//	EARLY: r1 = acc * 2 ; exit
//	DONE:  r2 = acc * 3 ; exit
func multiExitLoop() analysisFixture {
	f := analysisFixture{regs: map[string]ptx.Reg{}, at: map[string]int{}}
	b := ptx.NewBuilder("multi_exit_loop")
	b.Param("n", ptx.U32)
	acc, n, i := b.Reg(ptx.U32), b.Reg(ptx.U32), b.Reg(ptx.U32)
	r1, r2 := b.Reg(ptx.U32), b.Reg(ptx.U32)
	p, q := b.Reg(ptx.Pred), b.Reg(ptx.Pred)
	f.regs["acc"], f.regs["i"], f.regs["r1"], f.regs["r2"] = acc, i, r1, r2
	b.Mov(ptx.U32, acc, ptx.Imm(0))
	b.LdParam(ptx.U32, n, "n")
	b.Mov(ptx.U32, i, ptx.Imm(0))
	f.mark(b, "header")
	b.Label("LOOP").Setp(ptx.CmpGe, ptx.U32, p, ptx.R(i), ptx.R(n))
	b.BraIf(p, false, "EARLY")
	f.mark(b, "accAdd")
	b.Add(ptx.U32, acc, ptx.R(acc), ptx.R(i))
	b.Setp(ptx.CmpGe, ptx.U32, q, ptx.R(acc), ptx.Imm(100))
	f.mark(b, "midExit")
	b.BraIf(q, false, "DONE")
	f.mark(b, "incr")
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Bra("LOOP")
	f.mark(b, "early")
	b.Label("EARLY").Mul(ptx.U32, r1, ptx.R(acc), ptx.Imm(2))
	b.Exit()
	f.mark(b, "done")
	b.Label("DONE").Mul(ptx.U32, r2, ptx.R(acc), ptx.Imm(3))
	b.Exit()
	f.k = b.Kernel()
	return f
}

// unreachableLoop is multiExitLoop with a block of dead code wedged between
// the two exits; nothing branches to it, but it branches to DONE, so DONE
// has an unreachable predecessor (the case the dominator and liveness
// fixpoints must ignore rather than propagate from):
//
//	EARLY: r1 = acc * 2 ; exit
//	       ghost = undef + 1 ; bra DONE    // unreachable
//	DONE:  r2 = acc * 3 ; exit
func unreachableLoop() analysisFixture {
	f := analysisFixture{regs: map[string]ptx.Reg{}, at: map[string]int{}}
	b := ptx.NewBuilder("unreachable_loop")
	b.Param("n", ptx.U32)
	acc, n, i := b.Reg(ptx.U32), b.Reg(ptx.U32), b.Reg(ptx.U32)
	r1, r2 := b.Reg(ptx.U32), b.Reg(ptx.U32)
	ghost, undef := b.Reg(ptx.U32), b.Reg(ptx.U32)
	p, q := b.Reg(ptx.Pred), b.Reg(ptx.Pred)
	f.regs["acc"], f.regs["i"], f.regs["r1"], f.regs["r2"] = acc, i, r1, r2
	f.regs["ghost"], f.regs["undef"] = ghost, undef
	b.Mov(ptx.U32, acc, ptx.Imm(0))
	b.LdParam(ptx.U32, n, "n")
	b.Mov(ptx.U32, i, ptx.Imm(0))
	f.mark(b, "header")
	b.Label("LOOP").Setp(ptx.CmpGe, ptx.U32, p, ptx.R(i), ptx.R(n))
	b.BraIf(p, false, "EARLY")
	f.mark(b, "accAdd")
	b.Add(ptx.U32, acc, ptx.R(acc), ptx.R(i))
	b.Setp(ptx.CmpGe, ptx.U32, q, ptx.R(acc), ptx.Imm(100))
	f.mark(b, "midExit")
	b.BraIf(q, false, "DONE")
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Bra("LOOP")
	f.mark(b, "early")
	b.Label("EARLY").Mul(ptx.U32, r1, ptx.R(acc), ptx.Imm(2))
	b.Exit()
	f.mark(b, "ghost")
	b.Add(ptx.U32, ghost, ptx.R(undef), ptx.Imm(1))
	b.Bra("DONE")
	f.mark(b, "done")
	b.Label("DONE").Mul(ptx.U32, r2, ptx.R(acc), ptx.Imm(3))
	b.Exit()
	f.k = b.Kernel()
	return f
}

func TestLivenessTable(t *testing.T) {
	cases := []struct {
		name  string
		build func() analysisFixture
		// liveOut[reg] lists instruction marks where the register must be
		// live immediately after the instruction; deadOut where it must not.
		liveOut map[string][]string
		deadOut map[string][]string
		// blockIn[reg] lists marks whose enclosing block must have the
		// register live on entry (loop-carried values appear at the header).
		blockIn map[string][]string
		// entryDead lists registers that must not be live at kernel entry.
		entryDead []string
		// span[reg] is the [start, end] the linear live range must cover.
		span map[string][2]string
	}{
		{
			name:  "loop-carried accumulator",
			build: countedLoop,
			liveOut: map[string][]string{
				"acc": {"accAdd", "incr", "backEdge"}, // across the back edge
				"i":   {"header", "accAdd"},
			},
			deadOut: map[string][]string{
				"dead": {"deadDef"}, // defined, never used
				"acc":  {"done"},    // last use consumed it
			},
			blockIn: map[string][]string{
				"acc": {"header", "done"},
				"i":   {"header"},
			},
			entryDead: []string{"acc", "i", "dead", "out"},
			span:      map[string][2]string{"acc": {"header", "done"}},
		},
		{
			name:  "multi-exit loop",
			build: multiExitLoop,
			liveOut: map[string][]string{
				// acc flows into both exit blocks, so it stays live at the
				// mid-body exit branch and across the back edge.
				"acc": {"accAdd", "midExit", "incr"},
			},
			deadOut: map[string][]string{
				"r1": {"early"}, // each exit's result dies at its exit
				"r2": {"done"},
				// i is not needed on the early-exit path once the header
				// comparison consumed it; it must not leak into EARLY.
				"i": {"early"},
			},
			blockIn: map[string][]string{
				"acc": {"header", "early", "done"},
				"i":   {"header", "incr"},
			},
			entryDead: []string{"acc", "i", "r1", "r2"},
			span:      map[string][2]string{"acc": {"header", "done"}},
		},
		{
			name:  "unreachable predecessor of an exit block",
			build: unreachableLoop,
			liveOut: map[string][]string{
				"acc": {"accAdd", "midExit"},
			},
			deadOut: map[string][]string{
				"ghost": {"ghost"},
			},
			blockIn: map[string][]string{
				"acc": {"header", "done"},
				// The dead block reads acc and undef: both are live into
				// that block, but only along the unreachable edge.
				"undef": {"ghost"},
			},
			// No reachable path uses undef, so it must not propagate to
			// the entry (an unreachable block has no predecessors to feed).
			entryDead: []string{"undef", "ghost", "acc", "i"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.build()
			g, err := Build(f.k)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			lv := ComputeLiveness(g)
			reg := func(name string) ptx.Reg {
				r, ok := f.regs[name]
				if !ok {
					t.Fatalf("fixture has no register %q", name)
				}
				return r
			}
			inst := func(mark string) int {
				i, ok := f.at[mark]
				if !ok {
					t.Fatalf("fixture has no mark %q", mark)
				}
				return i
			}
			for name, marks := range tc.liveOut {
				for _, m := range marks {
					if !lv.InstOut[inst(m)].Has(reg(name)) {
						t.Errorf("%s not live-out at %s", name, m)
					}
				}
			}
			for name, marks := range tc.deadOut {
				for _, m := range marks {
					if lv.InstOut[inst(m)].Has(reg(name)) {
						t.Errorf("%s live-out at %s, want dead", name, m)
					}
				}
			}
			for name, marks := range tc.blockIn {
				for _, m := range marks {
					bi := g.BlockOf(inst(m))
					if !lv.BlockIn[bi].Has(reg(name)) {
						t.Errorf("%s not live into block of %s", name, m)
					}
				}
			}
			entry := lv.BlockIn[g.BlockOf(0)]
			for _, name := range tc.entryDead {
				if entry.Has(reg(name)) {
					t.Errorf("%s live at kernel entry", name)
				}
			}
			if len(tc.span) > 0 {
				ranges := lv.LiveRanges()
				for name, want := range tc.span {
					r := reg(name)
					var got *LiveRange
					for i := range ranges {
						if ranges[i].Reg == r {
							got = &ranges[i]
							break
						}
					}
					if got == nil || got.Start < 0 {
						t.Fatalf("no live range for %s", name)
					}
					if got.Start > inst(want[0]) || got.End < inst(want[1]) {
						t.Errorf("%s range [%d,%d] does not cover [%s,%s]=[%d,%d]",
							name, got.Start, got.End, want[0], want[1], inst(want[0]), inst(want[1]))
					}
				}
			}
		})
	}
}

func TestDominatorsTable(t *testing.T) {
	cases := []struct {
		name  string
		build func() analysisFixture
		// idom maps an instruction mark to the mark whose block must be its
		// block's immediate dominator.
		idom map[string]string
		// unreachable lists marks whose blocks must keep idom == -1.
		unreachable []string
		// exitIdom, when set, names the block that must immediately
		// dominate the virtual exit (the join of all exit blocks).
		exitIdom string
	}{
		{
			name:  "single loop",
			build: countedLoop,
			idom: map[string]string{
				"header":  "", // entry block, named below as mark 0's block
				"deadDef": "header",
				"done":    "header",
			},
			exitIdom: "done",
		},
		{
			name:  "multi-exit loop",
			build: multiExitLoop,
			idom: map[string]string{
				"accAdd": "header",
				"incr":   "accAdd",
				"early":  "header",
				"done":   "accAdd",
			},
			// Two exit blocks: their only common dominator on every path
			// to the virtual exit is the loop header.
			exitIdom: "header",
		},
		{
			name:  "unreachable predecessor",
			build: unreachableLoop,
			idom: map[string]string{
				"early": "header",
				// DONE's predecessors are the mid-body exit and the dead
				// block; the unreachable edge must be ignored, leaving the
				// reachable predecessor as the immediate dominator.
				"done": "accAdd",
			},
			unreachable: []string{"ghost"},
			exitIdom:    "header",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.build()
			g, err := Build(f.k)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			idom := g.Dominators()
			blockOf := func(mark string) int {
				i, ok := f.at[mark]
				if !ok {
					t.Fatalf("fixture has no mark %q", mark)
				}
				return g.BlockOf(i)
			}
			entry := g.BlockOf(0)
			if idom[entry] != entry {
				t.Errorf("entry idom = %d, want itself (%d)", idom[entry], entry)
			}
			for mark, dom := range tc.idom {
				want := entry
				if dom != "" {
					want = blockOf(dom)
				}
				if got := idom[blockOf(mark)]; got != want {
					t.Errorf("idom(block of %s) = %d, want block of %q (%d)", mark, got, dom, want)
				}
			}
			for _, mark := range tc.unreachable {
				if got := idom[blockOf(mark)]; got != -1 {
					t.Errorf("unreachable block of %s has idom %d, want -1", mark, got)
				}
			}
			if tc.exitIdom != "" {
				if got, want := idom[g.ExitIndex], blockOf(tc.exitIdom); got != want {
					t.Errorf("virtual exit idom = %d, want block of %q (%d)", got, tc.exitIdom, want)
				}
			}
		})
	}
}
