// Package ptx defines an in-memory intermediate representation for a subset
// of NVIDIA's Parallel Thread Execution (PTX) virtual ISA, together with a
// text parser, printer, and a programmatic kernel builder.
//
// The subset covers everything the CRAT compiler framework (Xie et al.,
// MICRO 2015) manipulates: typed virtual registers in SSA-like "infinite
// register" style, integer/floating arithmetic, predication, branches,
// barriers, and loads/stores to the global, local, shared, and param state
// spaces — including the ".local" SpillStack arrays and 64-bit addressing
// registers that register spilling introduces (paper Listings 1-4).
package ptx

import "fmt"

// Type is a PTX operand type such as .u32 or .f64. The type determines both
// the width of the value and the interpretation arithmetic gives its bits.
type Type uint8

// Supported PTX types.
const (
	TypeNone Type = iota
	U8
	U16
	U32
	U64
	S8
	S16
	S32
	S64
	F32
	F64
	B8
	B16
	B32
	B64
	Pred
)

var typeNames = map[Type]string{
	U8: "u8", U16: "u16", U32: "u32", U64: "u64",
	S8: "s8", S16: "s16", S32: "s32", S64: "s64",
	F32: "f32", F64: "f64",
	B8: "b8", B16: "b16", B32: "b32", B64: "b64",
	Pred: "pred",
}

// TypeFromName parses a PTX type suffix such as "u32" (without the leading
// dot). It returns TypeNone and false if the name is unknown.
func TypeFromName(name string) (Type, bool) {
	for t, n := range typeNames {
		if n == name {
			return t, true
		}
	}
	return TypeNone, false
}

// String returns the PTX spelling of the type without the leading dot.
func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Bits returns the width of the type in bits. Predicates report 1.
func (t Type) Bits() int {
	switch t {
	case U8, S8, B8:
		return 8
	case U16, S16, B16:
		return 16
	case U32, S32, B32, F32:
		return 32
	case U64, S64, B64, F64:
		return 64
	case Pred:
		return 1
	}
	return 0
}

// Bytes returns the width of the type in bytes (predicates report 1).
func (t Type) Bytes() int {
	if t == Pred {
		return 1
	}
	return t.Bits() / 8
}

// IsFloat reports whether the type is a floating-point type.
func (t Type) IsFloat() bool { return t == F32 || t == F64 }

// IsSigned reports whether the type is a signed integer type.
func (t Type) IsSigned() bool { return t == S8 || t == S16 || t == S32 || t == S64 }

// IsInt reports whether the type is an integer (signed, unsigned or bits) type.
func (t Type) IsInt() bool {
	switch t {
	case U8, U16, U32, U64, S8, S16, S32, S64, B8, B16, B32, B64:
		return true
	}
	return false
}

// RegClass identifies the physical register file class a value occupies.
// 64-bit values consume two consecutive 32-bit hardware registers, which is
// how the allocator charges them against the per-thread register budget.
type RegClass uint8

// Register classes.
const (
	ClassNone RegClass = iota
	Class32            // one 32-bit hardware register
	Class64            // two 32-bit hardware registers
	ClassPred          // predicate file; not charged against the budget
)

// String names the register class.
func (c RegClass) String() string {
	switch c {
	case Class32:
		return "r32"
	case Class64:
		return "r64"
	case ClassPred:
		return "pred"
	}
	return "none"
}

// Slots returns how many 32-bit hardware registers a value of this class
// occupies. Predicates occupy zero.
func (c RegClass) Slots() int {
	switch c {
	case Class32:
		return 1
	case Class64:
		return 2
	}
	return 0
}

// Class returns the register class of the type.
func (t Type) Class() RegClass {
	switch t {
	case Pred:
		return ClassPred
	case U64, S64, B64, F64:
		return Class64
	case TypeNone:
		return ClassNone
	default:
		return Class32
	}
}

// Space is a PTX state space for memory instructions.
type Space uint8

// Memory state spaces.
const (
	SpaceNone Space = iota
	SpaceGlobal
	SpaceLocal
	SpaceShared
	SpaceParam
)

// String returns the PTX spelling of the space without the leading dot.
func (s Space) String() string {
	switch s {
	case SpaceGlobal:
		return "global"
	case SpaceLocal:
		return "local"
	case SpaceShared:
		return "shared"
	case SpaceParam:
		return "param"
	}
	return "none"
}

// SpaceFromName parses a state-space suffix such as "global".
func SpaceFromName(name string) (Space, bool) {
	switch name {
	case "global":
		return SpaceGlobal, true
	case "local":
		return SpaceLocal, true
	case "shared":
		return SpaceShared, true
	case "param":
		return SpaceParam, true
	}
	return SpaceNone, false
}

// Special identifies a read-only special register (%tid.x and friends).
type Special uint8

// Special registers.
const (
	SpecNone Special = iota
	SpecTidX
	SpecTidY
	SpecTidZ
	SpecNTidX
	SpecNTidY
	SpecNTidZ
	SpecCtaIdX
	SpecCtaIdY
	SpecCtaIdZ
	SpecNCtaIdX
	SpecNCtaIdY
	SpecNCtaIdZ
	SpecLaneId
	SpecWarpId
)

var specialNames = map[Special]string{
	SpecTidX: "%tid.x", SpecTidY: "%tid.y", SpecTidZ: "%tid.z",
	SpecNTidX: "%ntid.x", SpecNTidY: "%ntid.y", SpecNTidZ: "%ntid.z",
	SpecCtaIdX: "%ctaid.x", SpecCtaIdY: "%ctaid.y", SpecCtaIdZ: "%ctaid.z",
	SpecNCtaIdX: "%nctaid.x", SpecNCtaIdY: "%nctaid.y", SpecNCtaIdZ: "%nctaid.z",
	SpecLaneId: "%laneid", SpecWarpId: "%warpid",
}

// String returns the PTX spelling of the special register (with leading %).
func (s Special) String() string {
	if n, ok := specialNames[s]; ok {
		return n
	}
	return fmt.Sprintf("%%special(%d)", uint8(s))
}

// SpecialFromName parses a special-register name such as "%tid.x".
func SpecialFromName(name string) (Special, bool) {
	for s, n := range specialNames {
		if n == name {
			return s, true
		}
	}
	return SpecNone, false
}
