package ptx

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// floatBits64 returns the IEEE-754 bit pattern of v.
func floatBits64(v float64) uint64 { return math.Float64bits(v) }

// maxDeclaredRegs bounds the counted register-declaration form ("%r<N>")
// so corrupt input cannot allocate an absurd RegTypes table.
const maxDeclaredRegs = 1 << 20

// ParseError describes a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ptx: line %d: %s", e.Line, e.Msg)
}

// parser holds parsing state for one module.
type parser struct {
	lines []string
	pos   int // current line index
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.pos + 1, Msg: fmt.Sprintf(format, args...)}
}

// ParseModule parses a PTX module in the dialect produced by PrintModule.
// It also tolerates the common nvcc spellings of the paper's listings
// (mul.lo.u32, mad.lo, div.rn, rcp.approx, sqrt.rn, ld.param, st.local, ...).
func ParseModule(src string) (*Module, error) {
	p := &parser{lines: splitLines(src)}
	m := &Module{}
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		switch {
		case line == "" || strings.HasPrefix(line, "//"):
			p.pos++
		case strings.HasPrefix(line, ".version"):
			m.Version = strings.TrimSpace(strings.TrimPrefix(line, ".version"))
			p.pos++
		case strings.HasPrefix(line, ".target"):
			m.Target = strings.TrimSpace(strings.TrimPrefix(line, ".target"))
			p.pos++
		case strings.HasPrefix(line, ".address_size"):
			p.pos++
		case strings.Contains(line, ".entry"):
			k, err := p.parseKernel()
			if err != nil {
				return nil, err
			}
			m.Kernels = append(m.Kernels, k)
		default:
			return nil, p.errf("unexpected top-level line %q", line)
		}
	}
	return m, nil
}

// Parse parses a single kernel from source containing exactly one .entry.
func Parse(src string) (*Kernel, error) {
	m, err := ParseModule(src)
	if err != nil {
		return nil, err
	}
	if len(m.Kernels) != 1 {
		return nil, fmt.Errorf("ptx: expected exactly one kernel, found %d", len(m.Kernels))
	}
	return m.Kernels[0], nil
}

func splitLines(src string) []string {
	return strings.Split(strings.ReplaceAll(src, "\r\n", "\n"), "\n")
}

// validIdent reports whether s is a safe PTX identifier. The printer embeds
// kernel names verbatim in the ".entry name(" header, so characters that
// collide with the header grammar ('(', '{', whitespace) must be rejected
// at parse time or printed kernels would not re-parse.
func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '$', c == '.':
		default:
			return false
		}
	}
	return true
}

// parseKernel parses ".visible .entry name ( params ) { body }".
func (p *parser) parseKernel() (*Kernel, error) {
	header := strings.TrimSpace(p.lines[p.pos])
	idx := strings.Index(header, ".entry")
	rest := strings.TrimSpace(header[idx+len(".entry"):])
	// Kernel name runs to '(' or end of line.
	name := rest
	if j := strings.IndexAny(rest, "( \t"); j >= 0 {
		name = rest[:j]
		rest = strings.TrimSpace(rest[j:])
	} else {
		rest = ""
	}
	if name == "" {
		return nil, p.errf("missing kernel name")
	}
	if !validIdent(name) {
		return nil, p.errf("bad kernel name %q", name)
	}
	k := NewKernel(name)

	// Parameters: collect text between '(' and ')'.
	paramText := ""
	if strings.HasPrefix(rest, "(") {
		paramText = rest[1:]
	}
	for !strings.Contains(paramText, ")") {
		p.pos++
		if p.pos >= len(p.lines) {
			return nil, p.errf("unterminated parameter list")
		}
		paramText += " " + strings.TrimSpace(p.lines[p.pos])
	}
	paramText = paramText[:strings.Index(paramText, ")")]
	for _, decl := range strings.Split(paramText, ",") {
		decl = strings.TrimSpace(decl)
		if decl == "" {
			continue
		}
		fields := strings.Fields(decl)
		// ".param" ".u64" "name"
		if len(fields) < 3 || fields[0] != ".param" {
			return nil, p.errf("bad parameter declaration %q", decl)
		}
		t, ok := TypeFromName(strings.TrimPrefix(fields[1], "."))
		if !ok {
			return nil, p.errf("bad parameter type %q", fields[1])
		}
		k.AddParam(fields[len(fields)-1], t)
	}
	// Advance past header line(s) to '{'.
	for p.pos < len(p.lines) && !strings.Contains(p.lines[p.pos], "{") {
		p.pos++
	}
	if p.pos >= len(p.lines) {
		return nil, p.errf("missing kernel body")
	}
	p.pos++ // skip '{' line

	regs := make(map[string]Reg) // register name -> id
	var pendingLabel string
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		switch {
		case line == "" || strings.HasPrefix(line, "//"):
			p.pos++
			continue
		case line == "}":
			p.pos++
			return k, nil
		case strings.HasPrefix(line, ".reg"):
			if err := p.parseRegDecl(k, regs, line); err != nil {
				return nil, err
			}
			p.pos++
			continue
		case strings.HasPrefix(line, ".local") || strings.HasPrefix(line, ".shared"):
			if err := p.parseArrayDecl(k, line); err != nil {
				return nil, err
			}
			p.pos++
			continue
		}
		// Label line: "name:" possibly followed by an instruction.
		if j := strings.Index(line, ":"); j >= 0 && !strings.ContainsAny(line[:j], " \t@%.[") {
			pendingLabel = line[:j]
			line = strings.TrimSpace(line[j+1:])
			if line == "" {
				p.pos++
				continue
			}
		}
		in, err := p.parseInst(k, regs, line)
		if err != nil {
			return nil, err
		}
		in.Label = pendingLabel
		pendingLabel = ""
		k.Append(in)
		p.pos++
	}
	return nil, p.errf("unterminated kernel body")
}

// parseRegDecl handles ".reg .u32 %r0, %r3;" and the "<N>" counted form
// ".reg .u32 %r<5>;".
func (p *parser) parseRegDecl(k *Kernel, regs map[string]Reg, line string) error {
	line = strings.TrimSuffix(strings.TrimSpace(line), ";")
	fields := strings.SplitN(line, " ", 3)
	if len(fields) < 3 {
		return p.errf("bad register declaration %q", line)
	}
	t, ok := TypeFromName(strings.TrimPrefix(fields[1], "."))
	if !ok {
		return p.errf("bad register type %q", fields[1])
	}
	for _, name := range strings.Split(fields[2], ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if i := strings.Index(name, "<"); i >= 0 {
			// Counted form %r<N>: declares %r0 .. %r(N-1).
			j := strings.Index(name, ">")
			if j < i {
				return p.errf("bad counted register %q", name)
			}
			n, err := strconv.Atoi(name[i+1 : j])
			if err != nil {
				return p.errf("bad register count in %q", name)
			}
			// A register file is a few KB; a declaration beyond this bound
			// is corrupt input, not a real kernel (and would balloon the
			// RegTypes table).
			if n < 0 || n > maxDeclaredRegs {
				return p.errf("register count %d in %q out of range [0,%d]", n, name, maxDeclaredRegs)
			}
			prefix := name[:i]
			for c := 0; c < n; c++ {
				nm := fmt.Sprintf("%s%d", prefix, c)
				if _, dup := regs[nm]; dup {
					return p.errf("duplicate register %q", nm)
				}
				regs[nm] = k.NewReg(t)
			}
			continue
		}
		if _, dup := regs[name]; dup {
			return p.errf("duplicate register %q", name)
		}
		regs[name] = k.NewReg(t)
	}
	return nil
}

// parseArrayDecl handles ".local .align 4 .b8 SpillStack[16];".
func (p *parser) parseArrayDecl(k *Kernel, line string) error {
	line = strings.TrimSuffix(strings.TrimSpace(line), ";")
	fields := strings.Fields(line)
	sp, ok := SpaceFromName(strings.TrimPrefix(fields[0], "."))
	if !ok {
		return p.errf("bad array space %q", fields[0])
	}
	align := 4
	i := 1
	if i < len(fields) && fields[i] == ".align" {
		if i+1 >= len(fields) {
			return p.errf("missing alignment value in %q", line)
		}
		a, err := strconv.Atoi(fields[i+1])
		if err != nil {
			return p.errf("bad alignment %q", fields[i+1])
		}
		align = a
		i += 2
	}
	if i < len(fields) && strings.HasPrefix(fields[i], ".") {
		i++ // element type, always .b8 in our dialect
	}
	if i >= len(fields) {
		return p.errf("missing array name in %q", line)
	}
	nameSize := fields[i]
	j := strings.Index(nameSize, "[")
	j2 := strings.Index(nameSize, "]")
	if j < 0 || j2 < j {
		return p.errf("bad array declarator %q", nameSize)
	}
	size, err := strconv.ParseInt(nameSize[j+1:j2], 10, 64)
	if err != nil {
		return p.errf("bad array size in %q", nameSize)
	}
	if size < 0 {
		return p.errf("negative array size in %q", nameSize)
	}
	k.AddArray(ArrayDecl{Name: nameSize[:j], Space: sp, Align: align, Size: size})
	return nil
}

// ignorable instruction modifiers accepted and discarded while parsing
// mnemonics (rounding/precision modifiers that don't change our semantics).
var ignoredModifiers = map[string]bool{
	"rn": true, "rz": true, "rm": true, "rp": true,
	"approx": true, "full": true, "ftz": true, "sat": true,
	"wide": true, "sync": true, "uni": true,
}

// parseInst parses one instruction statement (without label).
func (p *parser) parseInst(k *Kernel, regs map[string]Reg, line string) (Inst, error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ";")
	in := Inst{Guard: NoReg}

	// Guard predicate "@%p0 " or "@!%p0 ".
	if strings.HasPrefix(line, "@") {
		sp := strings.IndexAny(line, " \t")
		if sp < 0 {
			return in, p.errf("guard without instruction in %q", line)
		}
		g := line[1:sp]
		if strings.HasPrefix(g, "!") {
			in.GuardNeg = true
			g = g[1:]
		}
		r, ok := regs[g]
		if !ok {
			return in, p.errf("unknown guard register %q", g)
		}
		in.Guard = r
		line = strings.TrimSpace(line[sp:])
	}

	// Split mnemonic from operands.
	sp := strings.IndexAny(line, " \t")
	mnemonic := line
	operands := ""
	if sp >= 0 {
		mnemonic = line[:sp]
		operands = strings.TrimSpace(line[sp:])
	}

	parts := strings.Split(mnemonic, ".")
	opName := parts[0]
	if opName == "bar" {
		in.Op = OpBar
		return in, nil
	}
	op, ok := OpcodeFromName(opName)
	if !ok {
		return in, p.errf("unknown opcode %q", opName)
	}
	in.Op = op

	// Interpret suffixes: comparison (setp), state space (ld/st), types.
	var types []Type
	for _, suf := range parts[1:] {
		if suf == "lo" || ignoredModifiers[suf] {
			continue
		}
		if suf == "cg" && (op == OpLd || op == OpSt) {
			in.Bypass = true
			continue
		}
		if suf == "ca" && (op == OpLd || op == OpSt) {
			continue // cache-all is the default policy
		}
		if op == OpSetp {
			if c, ok := CmpFromName(suf); ok {
				in.Cmp = c
				continue
			}
		}
		if op == OpLd || op == OpSt {
			if s, ok := SpaceFromName(suf); ok {
				in.Space = s
				continue
			}
		}
		if t, ok := TypeFromName(suf); ok {
			types = append(types, t)
			continue
		}
		return in, p.errf("unknown suffix %q in %q", suf, mnemonic)
	}
	switch {
	case op == OpCvt:
		// cvt needs both a destination and a source type: the printer
		// cannot re-emit a conversion whose source type is unknown.
		if len(types) != 2 {
			return in, p.errf("cvt needs two types in %q", mnemonic)
		}
		in.Type, in.CvtFrom = types[0], types[1]
	case len(types) >= 1:
		in.Type = types[0]
	}
	if op == OpSetp && in.Cmp == CmpNone {
		return in, p.errf("setp without comparison in %q", mnemonic)
	}
	if (op == OpLd || op == OpSt) && in.Space == SpaceNone {
		return in, p.errf("%s without state space in %q", opName, mnemonic)
	}

	switch op {
	case OpBra:
		in.Target = strings.TrimSpace(operands)
		return in, nil
	case OpRet, OpExit, OpNop:
		return in, nil
	}

	var ops []Operand
	for _, tok := range splitOperands(operands) {
		o, err := p.parseOperand(k, regs, tok)
		if err != nil {
			return in, err
		}
		ops = append(ops, o)
	}
	if len(ops) == 0 {
		return in, p.errf("instruction %q has no operands", line)
	}
	if op == OpSt {
		in.Dst = ops[0]
		in.Srcs = ops[1:]
	} else {
		in.Dst = ops[0]
		in.Srcs = ops[1:]
	}
	return in, nil
}

// splitOperands splits "a, [b+4], c" at top-level commas.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

func (p *parser) parseOperand(k *Kernel, regs map[string]Reg, tok string) (Operand, error) {
	switch {
	case tok == "":
		return Operand{}, p.errf("empty operand")
	case strings.HasPrefix(tok, "["):
		inner := strings.TrimSuffix(strings.TrimPrefix(tok, "["), "]")
		base := inner
		off := int64(0)
		if j := strings.LastIndexAny(inner, "+-"); j > 0 {
			v, err := strconv.ParseInt(strings.TrimSpace(inner[j:]), 10, 64)
			if err == nil {
				off = v
				base = strings.TrimSpace(inner[:j])
			}
		}
		if strings.HasPrefix(base, "%") {
			r, ok := regs[base]
			if !ok {
				return Operand{}, p.errf("unknown address register %q", base)
			}
			return MemReg(r, off), nil
		}
		return MemSym(base, off), nil
	case strings.HasPrefix(tok, "%"):
		if s, ok := SpecialFromName(tok); ok {
			return Spec(s), nil
		}
		r, ok := regs[tok]
		if !ok {
			return Operand{}, p.errf("unknown register %q", tok)
		}
		return R(r), nil
	case strings.HasPrefix(tok, "0F") || strings.HasPrefix(tok, "0f"):
		bits, err := strconv.ParseUint(tok[2:], 16, 32)
		if err != nil {
			return Operand{}, p.errf("bad f32 literal %q", tok)
		}
		return FImm(float64(math.Float32frombits(uint32(bits)))), nil
	case strings.HasPrefix(tok, "0D") || strings.HasPrefix(tok, "0d"):
		bits, err := strconv.ParseUint(tok[2:], 16, 64)
		if err != nil {
			return Operand{}, p.errf("bad f64 literal %q", tok)
		}
		return FImm(math.Float64frombits(bits)), nil
	default:
		if v, err := strconv.ParseInt(tok, 0, 64); err == nil {
			return Imm(v), nil
		}
		if v, err := strconv.ParseFloat(tok, 64); err == nil {
			return FImm(v), nil
		}
		// Bare identifier: address-of symbol (mov %rd, SpillStack).
		if _, ok := k.Array(tok); ok {
			return Sym(tok), nil
		}
		if _, ok := k.Param(tok); ok {
			return Sym(tok), nil
		}
		return Operand{}, p.errf("unknown operand %q", tok)
	}
}
