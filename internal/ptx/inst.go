package ptx

import "fmt"

// Reg is a virtual (or, after allocation, physical) register index within a
// kernel. Register types are recorded in Kernel.RegTypes.
type Reg int32

// NoReg marks an absent register operand (e.g. an unpredicated instruction's
// guard).
const NoReg Reg = -1

// Opcode is a PTX instruction opcode.
type Opcode uint8

// Opcodes. Arithmetic integer multiplies are the ".lo" form; Mad is
// "mad.lo" for integers and fused multiply-add for floats.
const (
	OpNop Opcode = iota
	OpAdd
	OpSub
	OpMul
	OpMad
	OpDiv
	OpRem
	OpMin
	OpMax
	OpAbs
	OpNeg
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShr
	OpMov
	OpCvt
	OpSetp
	OpSelp
	OpLd
	OpSt
	OpBra
	OpBar
	OpRet
	OpExit
	OpRcp
	OpSqrt
	OpRsqrt
	OpSin
	OpCos
	OpLg2
	OpEx2
)

var opcodeNames = map[Opcode]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpMad: "mad",
	OpDiv: "div", OpRem: "rem", OpMin: "min", OpMax: "max", OpAbs: "abs",
	OpNeg: "neg", OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr", OpMov: "mov", OpCvt: "cvt", OpSetp: "setp",
	OpSelp: "selp", OpLd: "ld", OpSt: "st", OpBra: "bra", OpBar: "bar.sync",
	OpRet: "ret", OpExit: "exit", OpRcp: "rcp", OpSqrt: "sqrt",
	OpRsqrt: "rsqrt", OpSin: "sin", OpCos: "cos", OpLg2: "lg2", OpEx2: "ex2",
}

// String returns the PTX mnemonic of the opcode.
func (o Opcode) String() string {
	if n, ok := opcodeNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpcodeFromName parses a PTX mnemonic (the leading token before type
// suffixes, e.g. "add" or "bar.sync").
func OpcodeFromName(name string) (Opcode, bool) {
	for o, n := range opcodeNames {
		if n == name {
			return o, true
		}
	}
	return OpNop, false
}

// IsSFU reports whether the opcode executes on the special function unit
// (transcendentals and reciprocals), which the simulator models with a
// longer latency.
func (o Opcode) IsSFU() bool {
	switch o {
	case OpRcp, OpSqrt, OpRsqrt, OpSin, OpCos, OpLg2, OpEx2, OpDiv, OpRem:
		return true
	}
	return false
}

// IsControl reports whether the opcode affects control flow.
func (o Opcode) IsControl() bool {
	switch o {
	case OpBra, OpRet, OpExit:
		return true
	}
	return false
}

// IsMemory reports whether the opcode accesses a memory state space.
func (o Opcode) IsMemory() bool { return o == OpLd || o == OpSt }

// CmpOp is a setp comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	CmpNone CmpOp = iota
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

var cmpNames = map[CmpOp]string{
	CmpEq: "eq", CmpNe: "ne", CmpLt: "lt", CmpLe: "le", CmpGt: "gt", CmpGe: "ge",
}

// String returns the PTX spelling of the comparison.
func (c CmpOp) String() string {
	if n, ok := cmpNames[c]; ok {
		return n
	}
	return "cmp?"
}

// CmpFromName parses a setp comparison suffix such as "lt".
func CmpFromName(name string) (CmpOp, bool) {
	for c, n := range cmpNames {
		if n == name {
			return c, true
		}
	}
	return CmpNone, false
}

// OperandKind discriminates Operand variants.
type OperandKind uint8

// Operand kinds.
const (
	OperandNone    OperandKind = iota
	OperandReg                 // a virtual register
	OperandImm                 // integer immediate
	OperandFImm                // floating-point immediate
	OperandSpecial             // special register (%tid.x, ...)
	OperandMem                 // memory reference [base+off] or [sym+off]
	OperandSym                 // address-of a declared array or param symbol
)

// Operand is a single instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg     // OperandReg, or OperandMem register base
	Imm  int64   // OperandImm value
	FImm float64 // OperandFImm value
	Spec Special // OperandSpecial
	Sym  string  // OperandSym, or OperandMem symbol base
	Off  int64   // OperandMem displacement
}

// R constructs a register operand.
func R(r Reg) Operand { return Operand{Kind: OperandReg, Reg: r} }

// Imm constructs an integer immediate operand.
func Imm(v int64) Operand { return Operand{Kind: OperandImm, Imm: v} }

// FImm constructs a floating-point immediate operand.
func FImm(v float64) Operand { return Operand{Kind: OperandFImm, FImm: v} }

// Spec constructs a special-register operand.
func Spec(s Special) Operand { return Operand{Kind: OperandSpecial, Spec: s} }

// MemReg constructs a memory operand [reg+off].
func MemReg(base Reg, off int64) Operand {
	return Operand{Kind: OperandMem, Reg: base, Off: off}
}

// MemSym constructs a memory operand [sym+off].
func MemSym(sym string, off int64) Operand {
	return Operand{Kind: OperandMem, Reg: NoReg, Sym: sym, Off: off}
}

// Sym constructs an address-of-symbol operand (mov %rd, SpillStack).
func Sym(name string) Operand { return Operand{Kind: OperandSym, Sym: name} }

// IsReg reports whether the operand is a plain register.
func (o Operand) IsReg() bool { return o.Kind == OperandReg }

// HasBaseReg reports whether the operand is a memory reference with a
// register base.
func (o Operand) HasBaseReg() bool { return o.Kind == OperandMem && o.Reg != NoReg }

// InstMeta tags instructions inserted by the register allocator and the
// spilling optimization, so overhead can be counted robustly after
// rewrites (the Num_local / Num_shm / Num_others terms of the paper's TPSC
// model).
type InstMeta uint8

// Instruction metadata tags.
const (
	MetaNone       InstMeta = iota
	MetaSpillLoad           // reload of a spilled variable
	MetaSpillStore          // store of a spilled variable
	MetaSpillAddr           // spill address computation
)

// Inst is a single PTX instruction. An instruction may carry a label (a
// branch target naming the instruction's position) and a guard predicate.
//
// Operand conventions:
//   - arithmetic/logic/mov/cvt/selp: Dst is the destination register,
//     Srcs are the sources.
//   - setp: Dst is the predicate destination, Srcs are the two comparands.
//   - ld: Dst is the destination register, Srcs[0] is the memory operand.
//   - st: Dst is the memory operand, Srcs[0] is the stored value.
//   - bra: Target holds the destination label.
//   - bar.sync/ret/exit: no operands.
type Inst struct {
	Label    string // optional label attached to this instruction
	Guard    Reg    // guard predicate register, or NoReg
	GuardNeg bool   // guard is @!%p rather than @%p
	Op       Opcode
	Type     Type  // instruction type (.u32 etc); TypeNone for bra/bar/exit
	CvtFrom  Type  // cvt source type
	Cmp      CmpOp // setp comparison
	Space    Space // ld/st state space
	Dst      Operand
	Srcs     []Operand
	Target   string   // bra destination label
	Meta     InstMeta // provenance tag for spill-overhead accounting
	// Bypass marks a global load that skips the L1 (PTX ld.global.cg),
	// the hook for coordinating CRAT with cache-bypassing techniques
	// (paper §8: "CRAT can be used together with cache bypassing").
	Bypass bool
}

// Uses appends to dst the registers read by the instruction (guard,
// source registers, and memory base registers, including the store-address
// base in Dst) and returns the extended slice.
func (in *Inst) Uses(dst []Reg) []Reg {
	if in.Guard != NoReg {
		dst = append(dst, in.Guard)
	}
	for _, s := range in.Srcs {
		switch s.Kind {
		case OperandReg:
			dst = append(dst, s.Reg)
		case OperandMem:
			if s.Reg != NoReg {
				dst = append(dst, s.Reg)
			}
		}
	}
	if in.Dst.Kind == OperandMem && in.Dst.Reg != NoReg {
		dst = append(dst, in.Dst.Reg)
	}
	return dst
}

// Defs appends to dst the registers written by the instruction and returns
// the extended slice.
func (in *Inst) Defs(dst []Reg) []Reg {
	if in.Dst.Kind == OperandReg {
		dst = append(dst, in.Dst.Reg)
	}
	return dst
}

// Clone returns a deep copy of the instruction.
func (in *Inst) Clone() Inst {
	out := *in
	out.Srcs = append([]Operand(nil), in.Srcs...)
	return out
}
