package ptx_test

import (
	"fmt"

	"crat/internal/ptx"
)

// ExampleParse parses the paper's Listing 2 (the native, SSA-style kernel
// before register allocation) and reports its register demand.
func ExampleParse() {
	src := `
.visible .entry kernel(
	.param .u64 output
)
{
	.reg .u32 %r<5>;

	mov.u32 %r0, %tid.x;
	mov.u32 %r1, %ctaid.x;
	mov.u32 %r2, %ntid.x;
	mul.lo.u32 %r3, %r2, %r1;
	add.u32 %r4, %r0, %r3;
	exit;
}
`
	k, err := ptx.Parse(src)
	if err != nil {
		panic(err)
	}
	fmt.Println(k.Name, "uses", k.NumRegs(), "virtual registers in", len(k.Insts), "instructions")
	// Output: kernel uses 5 virtual registers in 6 instructions
}

// ExampleBuilder constructs a guarded global store programmatically and
// prints the resulting PTX instruction.
func ExampleBuilder() {
	b := ptx.NewBuilder("demo")
	b.Param("out", ptx.U64)
	po := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, po, "out")
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	p := b.Reg(ptx.Pred)
	b.Setp(ptx.CmpLt, ptx.U32, p, ptx.R(tid), ptx.Imm(32))
	b.If(p, false).St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(po, 0), ptx.R(tid))
	b.Exit()

	k := b.Kernel()
	fmt.Println(ptx.FormatInst(k, 3))
	// Output: @%p2 st.global.u32 [%rd0], %r1;
}

// ExampleKernel_SpillOverhead shows the spill-accounting view used by the
// TPSC cost model.
func ExampleKernel_SpillOverhead() {
	src := `
.visible .entry spilled()
{
	.reg .u32 %r<2>;
	.reg .u64 %d<1>;
	.local .align 4 .b8 SpillStack[4];

	mov.u64 %d0, SpillStack;
	mov.u32 %r0, %tid.x;
	st.local.u32 [%d0], %r0;
	ld.local.u32 %r1, [%d0];
	exit;
}
`
	k, err := ptx.Parse(src)
	if err != nil {
		panic(err)
	}
	s := k.StaticStats()
	fmt.Printf("local ops: %d, spill bytes: %d\n", s.LocalOps, s.SpillBytes)
	// Output: local ops: 2, spill bytes: 8
}
