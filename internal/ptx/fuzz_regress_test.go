package ptx_test

import (
	"testing"

	"crat/internal/ptx"
)

// TestParserAdversarialInputs pins down parser behavior on inputs collected
// from fuzzing campaigns (parse → validate → allocate → emulate targets):
// numeric-overflow shapes, malformed declarations, arity violations, and
// undeclared-symbol references. None ever crashed the parser — this test
// keeps it that way by asserting each input either parses cleanly (and then
// prints and validates without panicking) or is rejected with an ordinary
// error. The checked-in corpora under testdata/fuzz/ replay the
// coverage-interesting fuzz inputs on every plain `go test` run.
func TestParserAdversarialInputs(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"reg-count-overflow", ".visible .entry k()\n{\n  .reg .u32 %r<99999999999999999999>;\n  exit;\n}\n"},
		{"shared-size-overflow", ".visible .entry k()\n{\n  .shared .align 4 .b8 tile[99999999999999999999];\n  exit;\n}\n"},
		{"addr-offset-overflow", ".visible .entry k()\n{\n  .shared .align 4 .b8 tile[8];\n  .reg .u32 %r<2>;\n  ld.shared.u32 %r0, [tile+99999999999999999999];\n  exit;\n}\n"},
		{"imm-overflow", ".visible .entry k()\n{\n  .reg .u32 %r<2>;\n  add.u32 %r1, %r0, 99999999999999999999999;\n  exit;\n}\n"},
		{"reg-index-overflow", ".visible .entry k(.param .u64 out)\n{\n  .reg .u64 %rd<2>;\n  ld.param.u64 %rd999999999999999999, [out];\n  exit;\n}\n"},
		{"negative-frame", ".visible .entry k()\n{\n  .local .align 4 .b8 frame[-1];\n  exit;\n}\n"},
		{"undeclared-pred-guard", ".visible .entry k()\n{\n  .reg .u32 %r<2>;\n  @%p0 bra L;\nL:\n  exit;\n}\n"},
		{"branch-to-missing-label", ".visible .entry k()\n{\n  bra L;\n  exit;\n}\n"},
		{"undeclared-src-reg", ".visible .entry k()\n{\n  .reg .pred %p<1>;\n  setp.lt.u32 %p0, %r0, 1;\n  exit;\n}\n"},
		{"fma-arity", ".visible .entry k()\n{\n  .reg .f32 %f<2>;\n  fma.rn.f32 %f1, %f0, %f0;\n  exit;\n}\n"},
		{"mad-extra-operand", ".visible .entry k()\n{\n  .reg .u32 %r<2>;\n  mad.lo.u32 %r1, %r0, %r0, %r0, %r0;\n  exit;\n}\n"},
		{"shift-overflow", ".visible .entry k()\n{\n  .reg .u32 %r<2>;\n  shl.b32 %r1, %r0, 4294967296;\n  exit;\n}\n"},
		{"duplicate-param", ".visible .entry k(.param .u64 out, .param .u64 out)\n{\n  exit;\n}\n"},
		{"duplicate-label", ".visible .entry k()\n{\nL:\nL:\n  exit;\n}\n"},
		{"missing-kernel-name", ".visible .entry \n{\n  exit;\n}\n"},
		{"unnamed-param", ".visible .entry k(.param .u64)\n{\n  exit;\n}\n"},
		{"mixed-sign-offset", ".visible .entry k()\n{\n  ld.shared.u32 %r0, [tile+-4];\n  exit;\n}\n"},
		{"negative-barrier", ".visible .entry k()\n{\n  bar.sync -1;\n  exit;\n}\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic: %v\nsource:\n%s", r, tc.src)
				}
			}()
			k, err := ptx.Parse(tc.src)
			if err != nil {
				return // rejection with an error is the expected outcome
			}
			_ = ptx.Print(k)
			_ = k.Validate()
		})
	}
}
