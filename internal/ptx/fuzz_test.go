package ptx_test

import (
	"testing"

	"crat/internal/emu/ptxgen"
	"crat/internal/ptx"
	"crat/internal/workloads"
)

// seedCorpus returns the printed form of every workload kernel, a spread of
// randomized ptxgen kernels (which exercise predication, divergent
// branches, bounded loops, shared staging, and local frames in shapes the
// handwritten seeds miss), plus a few handwritten sources, so the fuzzers
// start from realistic PTX.
func seedCorpus() []string {
	seeds := []string{
		"",
		".visible .entry k()\n{\n  exit;\n}\n",
		".visible .entry k(.param .u64 out)\n{\n  .reg .u64 %rd<2>;\n  ld.param.u64 %rd0, [out];\n  exit;\n}\n",
		".visible .entry k()\n{\n  .reg .pred %p<1>;\n  .reg .u32 %r<2>;\n  setp.lt.u32 %p0, %r0, 16;\n  @%p0 bra DONE;\n  add.u32 %r1, %r0, 1;\nDONE:\n  exit;\n}\n",
		".visible .entry k()\n{\n  .shared .align 4 .b8 tile[64];\n  .reg .u32 %r<2>;\n  st.shared.u32 [tile+4], %r0;\n  bar.sync 0;\n  ld.shared.u32 %r1, [tile];\n  exit;\n}\n",
	}
	for _, p := range workloads.All() {
		seeds = append(seeds, ptx.Print(p.App().Kernel))
	}
	for seed := int64(0); seed < 16; seed++ {
		seeds = append(seeds, ptx.Print(ptxgen.Generate(ptxgen.Config{Seed: seed})))
	}
	return seeds
}

// FuzzParse asserts the parser never panics and that accepted kernels
// round-trip: print(parse(src)) reaches a fixpoint after one normalization
// (the printer renames registers densely, so the first reprint may differ
// textually from the first print, but must then be stable).
func FuzzParse(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		k, err := ptx.Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		p1 := ptx.Print(k)
		k2, err := ptx.Parse(p1)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\nsource:\n%s\nprinted:\n%s", err, src, p1)
		}
		p2 := ptx.Print(k2)
		k3, err := ptx.Parse(p2)
		if err != nil {
			t.Fatalf("normalized form does not reparse: %v\n%s", err, p2)
		}
		if p3 := ptx.Print(k3); p3 != p2 {
			t.Fatalf("print not a fixpoint:\n--- second print:\n%s\n--- third print:\n%s", p2, p3)
		}
	})
}

// FuzzParseModule asserts the module parser never panics and module
// round-trips are stable, same normalization rule as FuzzParse.
func FuzzParseModule(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
		f.Add("// comment\n" + s + "\n" + s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ptx.ParseModule(src)
		if err != nil {
			return
		}
		p1 := ptx.PrintModule(m)
		m2, err := ptx.ParseModule(p1)
		if err != nil {
			t.Fatalf("printed module does not reparse: %v\n%s", err, p1)
		}
		p2 := ptx.PrintModule(m2)
		m3, err := ptx.ParseModule(p2)
		if err != nil {
			t.Fatalf("normalized module does not reparse: %v\n%s", err, p2)
		}
		if p3 := ptx.PrintModule(m3); p3 != p2 {
			t.Fatalf("module print not a fixpoint:\n%s\n---\n%s", p2, p3)
		}
	})
}
