package ptx

import "sort"

// Param is a kernel parameter. Pointer parameters are declared .u64.
type Param struct {
	Name string
	Type Type
}

// ArrayDecl declares a statically sized array in the shared or local state
// space (e.g. the SpillStack of paper Listing 4).
type ArrayDecl struct {
	Name  string
	Space Space
	Align int
	Size  int64 // bytes
}

// Kernel is a single PTX entry function: parameters, state-space array
// declarations, a typed virtual register file, and a linear instruction
// list with labels.
type Kernel struct {
	Name     string
	Params   []Param
	Arrays   []ArrayDecl
	RegTypes []Type // register types indexed by Reg
	Insts    []Inst
}

// NewKernel returns an empty kernel with the given name.
func NewKernel(name string) *Kernel {
	return &Kernel{Name: name}
}

// NewReg allocates a fresh virtual register of the given type and returns
// its index.
func (k *Kernel) NewReg(t Type) Reg {
	k.RegTypes = append(k.RegTypes, t)
	return Reg(len(k.RegTypes) - 1)
}

// NumRegs returns the number of registers (virtual or physical) declared in
// the kernel.
func (k *Kernel) NumRegs() int { return len(k.RegTypes) }

// RegType returns the type of register r.
func (k *Kernel) RegType(r Reg) Type {
	if r < 0 || int(r) >= len(k.RegTypes) {
		return TypeNone
	}
	return k.RegTypes[r]
}

// AddParam appends a kernel parameter.
func (k *Kernel) AddParam(name string, t Type) {
	k.Params = append(k.Params, Param{Name: name, Type: t})
}

// Param returns the parameter with the given name, if present.
func (k *Kernel) Param(name string) (Param, bool) {
	for _, p := range k.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// ParamOffset returns the byte offset of the named parameter in the kernel
// parameter block, and the total size of the block. Parameters are laid out
// in declaration order, each aligned to its own size.
func (k *Kernel) ParamOffset(name string) (off int64, ok bool) {
	cur := int64(0)
	for _, p := range k.Params {
		sz := int64(p.Type.Bytes())
		cur = (cur + sz - 1) / sz * sz
		if p.Name == name {
			return cur, true
		}
		cur += sz
	}
	return 0, false
}

// AddArray appends a shared/local array declaration.
func (k *Kernel) AddArray(d ArrayDecl) {
	k.Arrays = append(k.Arrays, d)
}

// Array returns the declaration of the named array, if present.
func (k *Kernel) Array(name string) (ArrayDecl, bool) {
	for _, d := range k.Arrays {
		if d.Name == name {
			return d, true
		}
	}
	return ArrayDecl{}, false
}

// SharedBytes returns the total statically declared shared memory of the
// kernel in bytes (each array aligned to its declared alignment). This is
// the ShmSize parameter of paper Table 1.
func (k *Kernel) SharedBytes() int64 {
	return k.spaceBytes(SpaceShared)
}

// LocalBytes returns the total declared local memory per thread in bytes.
func (k *Kernel) LocalBytes() int64 {
	return k.spaceBytes(SpaceLocal)
}

func (k *Kernel) spaceBytes(sp Space) int64 {
	total := int64(0)
	for _, d := range k.Arrays {
		if d.Space != sp {
			continue
		}
		align := int64(d.Align)
		if align <= 0 {
			align = 1
		}
		total = (total + align - 1) / align * align
		total += d.Size
	}
	return total
}

// ArrayOffset returns the byte offset of the named array within its state
// space, following the same layout rule as SharedBytes.
func (k *Kernel) ArrayOffset(name string) (off int64, ok bool) {
	var target ArrayDecl
	target, ok = k.Array(name)
	if !ok {
		return 0, false
	}
	cur := int64(0)
	for _, d := range k.Arrays {
		if d.Space != target.Space {
			continue
		}
		align := int64(d.Align)
		if align <= 0 {
			align = 1
		}
		cur = (cur + align - 1) / align * align
		if d.Name == name {
			return cur, true
		}
		cur += d.Size
	}
	return 0, false
}

// Append adds an instruction to the kernel and returns its index.
func (k *Kernel) Append(in Inst) int {
	k.Insts = append(k.Insts, in)
	return len(k.Insts) - 1
}

// LabelIndex returns the instruction index carrying the given label.
func (k *Kernel) LabelIndex(label string) (int, bool) {
	for i := range k.Insts {
		if k.Insts[i].Label == label {
			return i, true
		}
	}
	return 0, false
}

// Clone returns a deep copy of the kernel.
func (k *Kernel) Clone() *Kernel {
	out := &Kernel{
		Name:     k.Name,
		Params:   append([]Param(nil), k.Params...),
		Arrays:   append([]ArrayDecl(nil), k.Arrays...),
		RegTypes: append([]Type(nil), k.RegTypes...),
		Insts:    make([]Inst, len(k.Insts)),
	}
	for i := range k.Insts {
		out.Insts[i] = k.Insts[i].Clone()
	}
	return out
}

// RegCounts returns the number of registers of each class declared in the
// kernel.
func (k *Kernel) RegCounts() (n32, n64, npred int) {
	for _, t := range k.RegTypes {
		switch t.Class() {
		case Class32:
			n32++
		case Class64:
			n64++
		case ClassPred:
			npred++
		}
	}
	return
}

// Validate checks structural invariants of the kernel: register indices in
// range, guard registers are predicates, branch targets resolve, memory
// operands are well formed, operand register classes match the instruction
// type where PTX requires it. It returns the first violation found.
//
// Validate is the pass-agnostic entry point; it delegates to Verify, which
// additionally attributes failures to a pipeline stage.
func (k *Kernel) Validate() error {
	return Verify(k, "")
}

// Stats summarizes the static composition of a kernel.
type Stats struct {
	Insts      int
	Loads      int
	Stores     int
	LocalOps   int
	SharedOps  int
	GlobalOps  int
	Branches   int
	Barriers   int
	SFU        int
	SpillBytes int64 // bytes moved by local/shared spill ld/st (static count)
}

// StaticStats computes Stats over the kernel's instruction list.
func (k *Kernel) StaticStats() Stats {
	var s Stats
	s.Insts = len(k.Insts)
	for i := range k.Insts {
		in := &k.Insts[i]
		switch {
		case in.Op == OpLd:
			s.Loads++
		case in.Op == OpSt:
			s.Stores++
		case in.Op == OpBra:
			s.Branches++
		case in.Op == OpBar:
			s.Barriers++
		case in.Op.IsSFU():
			s.SFU++
		}
		if in.Op.IsMemory() {
			switch in.Space {
			case SpaceLocal:
				s.LocalOps++
				s.SpillBytes += int64(in.Type.Bytes())
			case SpaceShared:
				s.SharedOps++
			case SpaceGlobal:
				s.GlobalOps++
			}
		}
	}
	return s
}

// SpillOverhead summarizes allocator-inserted instructions by provenance
// tag and state space: the static Num_local, Num_shm, and Num_others terms
// of the paper's TPSC spill-cost model (§6).
type SpillOverhead struct {
	LocalLoads   int
	LocalStores  int
	SharedLoads  int
	SharedStores int
	AddrInsts    int
}

// Locals returns the number of local-memory spill instructions.
func (o SpillOverhead) Locals() int { return o.LocalLoads + o.LocalStores }

// Shareds returns the number of shared-memory spill instructions.
func (o SpillOverhead) Shareds() int { return o.SharedLoads + o.SharedStores }

// SpillOverhead scans the kernel's instruction metadata tags.
func (k *Kernel) SpillOverhead() SpillOverhead {
	var o SpillOverhead
	for i := range k.Insts {
		in := &k.Insts[i]
		switch in.Meta {
		case MetaSpillLoad:
			if in.Space == SpaceShared {
				o.SharedLoads++
			} else {
				o.LocalLoads++
			}
		case MetaSpillStore:
			if in.Space == SpaceShared {
				o.SharedStores++
			} else {
				o.LocalStores++
			}
		case MetaSpillAddr:
			o.AddrInsts++
		}
	}
	return o
}

// SortedLabels returns the kernel's labels in instruction order (useful for
// deterministic printing and tests).
func (k *Kernel) SortedLabels() []string {
	type lab struct {
		name string
		idx  int
	}
	var ls []lab
	for i := range k.Insts {
		if k.Insts[i].Label != "" {
			ls = append(ls, lab{k.Insts[i].Label, i})
		}
	}
	sort.Slice(ls, func(a, b int) bool { return ls[a].idx < ls[b].idx })
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = l.name
	}
	return out
}

// Module is a collection of kernels, mirroring a PTX translation unit.
type Module struct {
	Version string // PTX version header, e.g. "3.2"
	Target  string // target architecture, e.g. "sm_20"
	Kernels []*Kernel
}

// Kernel returns the kernel with the given name, if present.
func (m *Module) Kernel(name string) (*Kernel, bool) {
	for _, k := range m.Kernels {
		if k.Name == name {
			return k, true
		}
	}
	return nil, false
}
