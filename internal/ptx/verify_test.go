package ptx

import (
	"errors"
	"strings"
	"testing"
)

// verifyVictim builds a small well-formed kernel that exercises params,
// arrays, branches, and a barrier — the corruption tests mutate copies.
func verifyVictim() *Kernel {
	b := NewBuilder("victim")
	b.Param("out", U64)
	b.LocalArray("stk", 64)
	b.SharedArray("tile", 128)
	po := b.Reg(U64)
	b.LdParam(U64, po, "out")
	x := b.Reg(U32)
	b.MovSpec(x, SpecTidX)
	p := b.Reg(Pred)
	b.Setp(CmpLt, U32, p, R(x), Imm(16))
	b.BraIf(p, false, "SKIP")
	b.St(SpaceLocal, U32, MemSym("stk", 0), R(x))
	b.Label("SKIP").Bar()
	b.St(SpaceShared, U32, MemSym("tile", 4), R(x))
	b.St(SpaceGlobal, U32, MemReg(po, 0), R(x))
	b.Exit()
	return b.Kernel()
}

func TestVerifyAcceptsValidKernel(t *testing.T) {
	if err := Verify(verifyVictim(), "test"); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
}

// TestVerifyCatchesCorruptions injects one structural corruption per case
// into a valid kernel and requires a structured *VerifyError naming the
// pass — never a panic, never silent acceptance.
func TestVerifyCatchesCorruptions(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(k *Kernel)
		want    string // substring of the error message
	}{
		{
			"dangling branch target",
			func(k *Kernel) {
				for i := range k.Insts {
					if k.Insts[i].Op == OpBra {
						k.Insts[i].Target = "NOWHERE"
						return
					}
				}
			},
			"undefined branch target",
		},
		{
			"destination class mismatch",
			func(k *Kernel) {
				wide := k.NewReg(U64)
				k.Insts = append([]Inst{{
					Op: OpAdd, Type: U32, Dst: R(wide),
					Srcs: []Operand{Imm(1), Imm(2)}, Guard: NoReg,
				}}, k.Insts...)
			},
			"class",
		},
		{
			"static out-of-bounds array access",
			func(k *Kernel) {
				for i := range k.Insts {
					in := &k.Insts[i]
					if in.Op == OpSt && in.Space == SpaceLocal {
						in.Dst.Off = 61 // 61+4 > 64
						return
					}
				}
			},
			"out of bounds",
		},
		{
			"predicated barrier",
			func(k *Kernel) {
				for i := range k.Insts {
					if k.Insts[i].Op == OpBar {
						k.Insts[i].Guard = Reg(2) // the Pred register
						return
					}
				}
			},
			"must not be predicated",
		},
		{
			"unreachable barrier",
			func(k *Kernel) {
				// Append dead code after exit containing a bar.
				k.Insts = append(k.Insts, Inst{Op: OpBar, Guard: NoReg})
			},
			"unreachable",
		},
		{
			"wrong operand count",
			func(k *Kernel) {
				r := k.NewReg(U32)
				k.Insts = append([]Inst{{
					Op: OpAdd, Type: U32, Dst: R(r),
					Srcs: []Operand{Imm(1)}, Guard: NoReg,
				}}, k.Insts...)
			},
			"source operands",
		},
		{
			"out-of-range register index",
			func(k *Kernel) {
				for i := range k.Insts {
					in := &k.Insts[i]
					if in.Op == OpSetp {
						in.Srcs[0] = R(Reg(9999))
						return
					}
				}
			},
			"out of range",
		},
		{
			"unknown symbol reference",
			func(k *Kernel) {
				r := k.NewReg(U64)
				k.Insts = append([]Inst{{
					Op: OpMov, Type: U64, Dst: R(r),
					Srcs: []Operand{Sym("no_such_array")}, Guard: NoReg,
				}}, k.Insts...)
			},
			"unknown symbol",
		},
		{
			"cvt missing source type",
			func(k *Kernel) {
				d := k.NewReg(U64)
				s := k.NewReg(U32)
				k.Insts = append([]Inst{{
					Op: OpCvt, Type: U64, CvtFrom: TypeNone, Dst: R(d),
					Srcs: []Operand{R(s)}, Guard: NoReg,
				}}, k.Insts...)
			},
			"cvt",
		},
		{
			"store to param space",
			func(k *Kernel) {
				r := k.NewReg(U32)
				k.Insts = append([]Inst{{
					Op: OpSt, Space: SpaceParam, Type: U32,
					Dst: MemSym("out", 0), Srcs: []Operand{R(r)}, Guard: NoReg,
				}}, k.Insts...)
			},
			"store",
		},
		{
			"duplicate label",
			func(k *Kernel) {
				k.Insts[0].Label = "SKIP"
			},
			"duplicate label",
		},
		{
			"negative array size",
			func(k *Kernel) {
				k.Arrays[0].Size = -8
			},
			"negative size",
		},
		{
			"wrong space for array access",
			func(k *Kernel) {
				for i := range k.Insts {
					in := &k.Insts[i]
					if in.Op == OpSt && in.Space == SpaceLocal {
						in.Space = SpaceShared // stk is a local array
						return
					}
				}
			},
			"space",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := verifyVictim().Clone()
			tc.corrupt(k)
			err := Verify(k, "test")
			if err == nil {
				t.Fatal("corruption not detected")
			}
			var ve *VerifyError
			if !errors.As(err, &ve) {
				t.Fatalf("error is %T, want *VerifyError: %v", err, err)
			}
			if ve.Pass != "test" {
				t.Errorf("Pass = %q, want %q", ve.Pass, "test")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "victim") {
				t.Errorf("error %q does not name the kernel", err)
			}
		})
	}
}

// TestVerifyErrorFormat pins the rendered shape of instruction-level and
// kernel-level verify errors.
func TestVerifyErrorFormat(t *testing.T) {
	e := &VerifyError{Kernel: "k", Pass: "regalloc", Inst: 3, Disasm: "add.u32 ...", Msg: "boom"}
	if got := e.Error(); !strings.Contains(got, "after regalloc") || !strings.Contains(got, "inst 3") {
		t.Errorf("instruction-level error = %q", got)
	}
	e2 := &VerifyError{Kernel: "k", Inst: -1, Msg: "duplicate array"}
	if got := e2.Error(); strings.Contains(got, "inst") || !strings.Contains(got, "duplicate array") {
		t.Errorf("kernel-level error = %q", got)
	}
}

// TestVerifyDoesNotPanicOnUnprintable feeds the verifier a kernel whose
// instruction cannot even be formatted (register index far out of range):
// the diagnostic must degrade, not panic.
func TestVerifyDoesNotPanicOnUnprintable(t *testing.T) {
	b := NewBuilder("garbage")
	r := b.Reg(U32)
	b.Add(U32, r, R(Reg(1<<20)), Imm(1))
	b.Exit()
	err := Verify(b.Kernel(), "test")
	if err == nil {
		t.Fatal("corrupt kernel accepted")
	}
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("error is %T, want *VerifyError", err)
	}
}
