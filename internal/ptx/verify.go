package ptx

import "fmt"

// VerifyError is a structured kernel-invariant violation. Pass names the
// pipeline stage whose output broke the kernel ("parse", "regalloc",
// "spillopt", ...), Inst is the offending instruction index (-1 for
// kernel-level problems such as duplicate labels), and Disasm is the
// formatted instruction for diagnostics.
type VerifyError struct {
	Kernel string
	Pass   string
	Inst   int
	Disasm string
	Msg    string
}

func (e *VerifyError) Error() string {
	pass := ""
	if e.Pass != "" {
		pass = " after " + e.Pass
	}
	if e.Inst < 0 {
		return fmt.Sprintf("ptx: verify%s: %s: %s", pass, e.Kernel, e.Msg)
	}
	return fmt.Sprintf("ptx: verify%s: %s: inst %d (%s): %s", pass, e.Kernel, e.Inst, e.Disasm, e.Msg)
}

// safeFormatInst formats an instruction for a diagnostic. The kernels being
// verified are by definition suspect, and the printer assumes a well-formed
// kernel (register indices in range, ...), so formatting failures must not
// mask the underlying violation.
func safeFormatInst(k *Kernel, i int) (disasm string) {
	if i < 0 || i >= len(k.Insts) {
		return ""
	}
	defer func() {
		if recover() != nil {
			disasm = "<unprintable instruction>"
		}
	}()
	return FormatInst(k, i)
}

// verifier carries the per-kernel context for one Verify run.
type verifier struct {
	k    *Kernel
	pass string
}

func (v *verifier) errAt(i int, format string, args ...any) error {
	disasm := safeFormatInst(v.k, i)
	return &VerifyError{
		Kernel: v.k.Name,
		Pass:   v.pass,
		Inst:   i,
		Disasm: disasm,
		Msg:    fmt.Sprintf(format, args...),
	}
}

// Verify checks the structural invariants every executable kernel must
// satisfy: operand counts and kinds per opcode, register indices and
// classes, branch targets, barrier placement and reachability, and declared
// array/param bounds for symbol-addressed accesses. It is run after
// parsing, after register allocation, and after spill-code insertion; pass
// names the stage being checked so a broken transformation is attributed.
func Verify(k *Kernel, pass string) error {
	v := &verifier{k: k, pass: pass}
	if err := v.kernelLevel(); err != nil {
		return err
	}
	for i := range k.Insts {
		if err := v.inst(i); err != nil {
			return err
		}
	}
	return v.barrierReachability()
}

func (v *verifier) kernelLevel() error {
	k := v.k
	seenParam := make(map[string]bool, len(k.Params))
	for _, p := range k.Params {
		if p.Name == "" {
			return v.errAt(-1, "unnamed parameter")
		}
		if seenParam[p.Name] {
			return v.errAt(-1, "duplicate parameter %q", p.Name)
		}
		seenParam[p.Name] = true
	}
	seenArr := make(map[string]bool, len(k.Arrays))
	for _, a := range k.Arrays {
		if a.Name == "" {
			return v.errAt(-1, "unnamed array")
		}
		if seenArr[a.Name] {
			return v.errAt(-1, "duplicate array %q", a.Name)
		}
		seenArr[a.Name] = true
		if a.Space != SpaceLocal && a.Space != SpaceShared {
			return v.errAt(-1, "array %q in unsupported space %s", a.Name, a.Space)
		}
		if a.Size < 0 {
			return v.errAt(-1, "array %q has negative size %d", a.Name, a.Size)
		}
	}
	labels := make(map[string]bool)
	for i, in := range k.Insts {
		if in.Label == "" {
			continue
		}
		if labels[in.Label] {
			return v.errAt(i, "duplicate label %q", in.Label)
		}
		labels[in.Label] = true
	}
	return nil
}

func (v *verifier) checkReg(i int, role string, r Reg) error {
	if r < 0 || int(r) >= v.k.NumRegs() {
		return v.errAt(i, "%s register %d out of range [0,%d)", role, r, v.k.NumRegs())
	}
	return nil
}

// checkRegClass verifies a register operand against the class its slot in
// the instruction demands.
func (v *verifier) checkRegClass(i int, role string, r Reg, want RegClass) error {
	if err := v.checkReg(i, role, r); err != nil {
		return err
	}
	if got := v.k.RegType(r).Class(); got != want {
		return v.errAt(i, "%s register %d has class %v, want %v (type mismatch)",
			role, r, got, want)
	}
	return nil
}

// scalarSrc verifies a non-memory source operand (register, immediate,
// special, or symbol). want is the required register class when the operand
// is a register; ClassNone skips the class check (untyped instructions).
func (v *verifier) scalarSrc(i int, role string, o Operand, want RegClass) error {
	switch o.Kind {
	case OperandReg:
		if want == ClassNone {
			return v.checkReg(i, role, o.Reg)
		}
		return v.checkRegClass(i, role, o.Reg, want)
	case OperandImm, OperandFImm, OperandSpecial:
		return nil
	case OperandSym:
		if _, ok := v.k.Array(o.Sym); ok {
			return nil
		}
		if _, ok := v.k.Param(o.Sym); ok {
			return nil
		}
		return v.errAt(i, "%s references unknown symbol %q", role, o.Sym)
	case OperandMem:
		return v.errAt(i, "%s is a memory operand where a scalar is required", role)
	default:
		return v.errAt(i, "missing %s operand", role)
	}
}

// memOperand verifies a memory operand against the instruction's space and
// access width, including static bounds for symbol-addressed accesses.
func (v *verifier) memOperand(i int, o Operand, space Space, bytes int64) error {
	if o.Kind != OperandMem {
		return v.errAt(i, "memory instruction needs a [addr] operand, got kind %d", o.Kind)
	}
	if o.Reg != NoReg {
		if err := v.checkReg(i, "address", o.Reg); err != nil {
			return err
		}
		cls := v.k.RegType(o.Reg).Class()
		// Shared addresses are SM-local offsets and may be 32-bit.
		if cls != Class64 && !(space == SpaceShared && cls == Class32) {
			return v.errAt(i, "address register %d has class %v, want a 64-bit address", o.Reg, cls)
		}
		return nil
	}
	if o.Sym == "" {
		return v.errAt(i, "memory operand has neither base register nor symbol")
	}
	if a, ok := v.k.Array(o.Sym); ok {
		if space != a.Space {
			return v.errAt(i, "array %q is in %s space but access says %s", o.Sym, a.Space, space)
		}
		if o.Off < 0 || o.Off+bytes > a.Size {
			return v.errAt(i, "access [%s+%d]..%d bytes out of bounds of array %q (size %d)",
				o.Sym, o.Off, bytes, o.Sym, a.Size)
		}
		return nil
	}
	if p, ok := v.k.Param(o.Sym); ok {
		if space != SpaceParam {
			return v.errAt(i, "parameter %q accessed with space %s", o.Sym, space)
		}
		if o.Off < 0 || o.Off+bytes > int64(p.Type.Bytes()) {
			return v.errAt(i, "access [%s+%d]..%d bytes out of bounds of %s parameter %q",
				o.Sym, o.Off, bytes, p.Type, o.Sym)
		}
		return nil
	}
	return v.errAt(i, "unknown symbol %q in address", o.Sym)
}

// dstClass is the register class a typed instruction's destination must
// have; ClassNone means no constraint (untyped instruction).
func dstClass(in *Inst) RegClass {
	if in.Op == OpSetp {
		return ClassPred
	}
	if in.Type == TypeNone {
		return ClassNone
	}
	return in.Type.Class()
}

// srcClass is the class required of register sources in slot idx.
func srcClass(in *Inst, idx int) RegClass {
	switch {
	case in.Op == OpSelp && idx == 2:
		return ClassPred
	case in.Op == OpCvt:
		if in.CvtFrom == TypeNone {
			return ClassNone
		}
		return in.CvtFrom.Class()
	case (in.Op == OpShl || in.Op == OpShr) && idx == 1:
		// Shift amounts are 32-bit regardless of the operand width.
		return ClassNone
	case in.Type == TypeNone:
		return ClassNone
	default:
		return in.Type.Class()
	}
}

// arity returns the required source-operand count for an opcode, or -1 when
// the opcode carries no sources (control flow).
func arity(op Opcode) int {
	switch op {
	case OpNop, OpBra, OpBar, OpRet, OpExit:
		return -1
	case OpMov, OpCvt, OpAbs, OpNeg, OpNot, OpRcp, OpSqrt, OpRsqrt,
		OpSin, OpCos, OpLg2, OpEx2, OpLd, OpSt:
		return 1
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpMin, OpMax,
		OpAnd, OpOr, OpXor, OpShl, OpShr, OpSetp:
		return 2
	case OpMad, OpSelp:
		return 3
	}
	return -1
}

func (v *verifier) inst(i int) error {
	in := &v.k.Insts[i]
	if in.Guard != NoReg {
		if err := v.checkRegClass(i, "guard", in.Guard, ClassPred); err != nil {
			return err
		}
	}

	switch in.Op {
	case OpNop, OpRet, OpExit:
		if in.Dst.Kind != OperandNone || len(in.Srcs) != 0 {
			return v.errAt(i, "%s takes no operands", in.Op)
		}
		return nil
	case OpBar:
		if in.Dst.Kind != OperandNone || len(in.Srcs) != 0 {
			return v.errAt(i, "bar.sync takes no operands")
		}
		if in.Guard != NoReg {
			return v.errAt(i, "barrier must not be predicated (divergent warps would deadlock)")
		}
		return nil
	case OpBra:
		if in.Target == "" {
			return v.errAt(i, "branch without target")
		}
		if _, ok := v.k.LabelIndex(in.Target); !ok {
			return v.errAt(i, "undefined branch target %q", in.Target)
		}
		if in.Dst.Kind != OperandNone || len(in.Srcs) != 0 {
			return v.errAt(i, "bra takes only a target")
		}
		return nil
	}

	want := arity(in.Op)
	if want < 0 {
		return v.errAt(i, "unknown opcode %d", in.Op)
	}
	if len(in.Srcs) != want {
		return v.errAt(i, "%s needs %d source operands, has %d", in.Op, want, len(in.Srcs))
	}

	switch in.Op {
	case OpLd:
		if in.Dst.Kind != OperandReg {
			return v.errAt(i, "ld destination must be a register")
		}
		if in.Space == SpaceNone {
			return v.errAt(i, "ld without a state space")
		}
		if in.Type.Bytes() == 0 {
			return v.errAt(i, "ld with zero-width type %s", in.Type)
		}
		if err := v.checkRegClass(i, "destination", in.Dst.Reg, in.Type.Class()); err != nil {
			return err
		}
		return v.memOperand(i, in.Srcs[0], in.Space, int64(in.Type.Bytes()))
	case OpSt:
		switch in.Space {
		case SpaceGlobal, SpaceLocal, SpaceShared:
		case SpaceNone:
			return v.errAt(i, "st without a state space")
		default:
			return v.errAt(i, "cannot store to %s space", in.Space)
		}
		if in.Type.Bytes() == 0 {
			return v.errAt(i, "st with zero-width type %s", in.Type)
		}
		if err := v.memOperand(i, in.Dst, in.Space, int64(in.Type.Bytes())); err != nil {
			return err
		}
		return v.scalarSrc(i, "store value", in.Srcs[0], in.Type.Class())
	case OpCvt:
		if in.Type == TypeNone || in.CvtFrom == TypeNone {
			return v.errAt(i, "cvt needs both destination and source types")
		}
	case OpSetp:
		if in.Cmp == CmpNone {
			return v.errAt(i, "setp without a comparison operator")
		}
	}

	// Generic ALU/mov/setp/selp shape: register destination, scalar sources.
	if in.Dst.Kind != OperandReg {
		return v.errAt(i, "%s destination must be a register", in.Op)
	}
	if want := dstClass(in); want == ClassNone {
		if err := v.checkReg(i, "destination", in.Dst.Reg); err != nil {
			return err
		}
	} else if err := v.checkRegClass(i, "destination", in.Dst.Reg, want); err != nil {
		return err
	}
	for idx, src := range in.Srcs {
		role := fmt.Sprintf("source %d", idx)
		cls := srcClass(in, idx)
		if src.Kind == OperandSym && in.Op == OpMov {
			// mov reg, symbol materializes an array/param address; the
			// destination width, not the symbol, decides the class.
			cls = ClassNone
		}
		if err := v.scalarSrc(i, role, src, cls); err != nil {
			return err
		}
	}
	return nil
}

// barrierReachability walks the CFG from the entry and rejects barriers in
// unreachable code: a transformation that orphans a bar.sync has broken the
// block-synchronization protocol even though the dead code never executes.
func (v *verifier) barrierReachability() error {
	insts := v.k.Insts
	if len(insts) == 0 {
		return nil
	}
	reached := make([]bool, len(insts))
	work := []int{0}
	reached[0] = true
	push := func(j int) {
		if j >= 0 && j < len(insts) && !reached[j] {
			reached[j] = true
			work = append(work, j)
		}
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		in := &insts[i]
		switch in.Op {
		case OpBra:
			if t, ok := v.k.LabelIndex(in.Target); ok {
				push(t)
			}
			if in.Guard != NoReg {
				push(i + 1)
			}
		case OpExit, OpRet:
			if in.Guard != NoReg {
				push(i + 1)
			}
		default:
			push(i + 1)
		}
	}
	for i := range insts {
		if insts[i].Op == OpBar && !reached[i] {
			return v.errAt(i, "barrier is unreachable from the kernel entry")
		}
	}
	return nil
}
