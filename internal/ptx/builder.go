package ptx

// Builder provides a fluent API for constructing kernels programmatically.
// The synthetic workload generators use it to emit PTX without going
// through text. A pending label or guard set via Label/If applies to the
// next emitted instruction only.
type Builder struct {
	k            *Kernel
	pendingLabel string
	pendingGuard Reg
	pendingNeg   bool
}

// NewBuilder returns a builder for a fresh kernel with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{k: NewKernel(name), pendingGuard: NoReg}
}

// Kernel returns the kernel built so far.
func (b *Builder) Kernel() *Kernel { return b.k }

// Param declares a kernel parameter.
func (b *Builder) Param(name string, t Type) *Builder {
	b.k.AddParam(name, t)
	return b
}

// SharedArray declares a shared-memory array of size bytes.
func (b *Builder) SharedArray(name string, size int64) *Builder {
	b.k.AddArray(ArrayDecl{Name: name, Space: SpaceShared, Align: 4, Size: size})
	return b
}

// LocalArray declares a per-thread local-memory array of size bytes.
func (b *Builder) LocalArray(name string, size int64) *Builder {
	b.k.AddArray(ArrayDecl{Name: name, Space: SpaceLocal, Align: 4, Size: size})
	return b
}

// Reg allocates a fresh virtual register of type t.
func (b *Builder) Reg(t Type) Reg { return b.k.NewReg(t) }

// Regs allocates n fresh virtual registers of type t.
func (b *Builder) Regs(t Type, n int) []Reg {
	out := make([]Reg, n)
	for i := range out {
		out[i] = b.k.NewReg(t)
	}
	return out
}

// Label attaches a label to the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	b.pendingLabel = name
	return b
}

// If guards the next emitted instruction with @p (or @!p when neg is true).
func (b *Builder) If(p Reg, neg bool) *Builder {
	b.pendingGuard = p
	b.pendingNeg = neg
	return b
}

// Emit appends an instruction, applying any pending label/guard. Callers
// constructing Inst values directly must set Guard to NoReg themselves when
// the instruction is unpredicated (all Builder helpers do).
func (b *Builder) Emit(in Inst) *Builder {
	if b.pendingLabel != "" {
		in.Label = b.pendingLabel
		b.pendingLabel = ""
	}
	if b.pendingGuard != NoReg {
		in.Guard = b.pendingGuard
		in.GuardNeg = b.pendingNeg
		b.pendingGuard = NoReg
		b.pendingNeg = false
	}
	b.k.Append(in)
	return b
}

func (b *Builder) emit3(op Opcode, t Type, d Reg, a, c Operand) *Builder {
	return b.Emit(Inst{Op: op, Type: t, Dst: R(d), Srcs: []Operand{a, c}, Guard: NoReg})
}

// Mov emits mov.t d, src.
func (b *Builder) Mov(t Type, d Reg, src Operand) *Builder {
	return b.Emit(Inst{Op: OpMov, Type: t, Dst: R(d), Srcs: []Operand{src}, Guard: NoReg})
}

// MovSpec emits mov.u32 d, %special.
func (b *Builder) MovSpec(d Reg, s Special) *Builder {
	return b.Mov(U32, d, Spec(s))
}

// Add emits add.t d, a, c.
func (b *Builder) Add(t Type, d Reg, a, c Operand) *Builder { return b.emit3(OpAdd, t, d, a, c) }

// Sub emits sub.t d, a, c.
func (b *Builder) Sub(t Type, d Reg, a, c Operand) *Builder { return b.emit3(OpSub, t, d, a, c) }

// Mul emits mul(.lo).t d, a, c.
func (b *Builder) Mul(t Type, d Reg, a, c Operand) *Builder { return b.emit3(OpMul, t, d, a, c) }

// Div emits div.t d, a, c.
func (b *Builder) Div(t Type, d Reg, a, c Operand) *Builder { return b.emit3(OpDiv, t, d, a, c) }

// Min emits min.t d, a, c.
func (b *Builder) Min(t Type, d Reg, a, c Operand) *Builder { return b.emit3(OpMin, t, d, a, c) }

// Max emits max.t d, a, c.
func (b *Builder) Max(t Type, d Reg, a, c Operand) *Builder { return b.emit3(OpMax, t, d, a, c) }

// And emits and.t d, a, c.
func (b *Builder) And(t Type, d Reg, a, c Operand) *Builder { return b.emit3(OpAnd, t, d, a, c) }

// Or emits or.t d, a, c.
func (b *Builder) Or(t Type, d Reg, a, c Operand) *Builder { return b.emit3(OpOr, t, d, a, c) }

// Xor emits xor.t d, a, c.
func (b *Builder) Xor(t Type, d Reg, a, c Operand) *Builder { return b.emit3(OpXor, t, d, a, c) }

// Shl emits shl.t d, a, c.
func (b *Builder) Shl(t Type, d Reg, a, c Operand) *Builder { return b.emit3(OpShl, t, d, a, c) }

// Shr emits shr.t d, a, c.
func (b *Builder) Shr(t Type, d Reg, a, c Operand) *Builder { return b.emit3(OpShr, t, d, a, c) }

// Mad emits mad(.lo).t d, a, c, e  (d = a*c + e).
func (b *Builder) Mad(t Type, d Reg, a, c, e Operand) *Builder {
	return b.Emit(Inst{Op: OpMad, Type: t, Dst: R(d), Srcs: []Operand{a, c, e}, Guard: NoReg})
}

// Sfu emits a special-function-unit op such as sqrt/rcp/sin.
func (b *Builder) Sfu(op Opcode, t Type, d Reg, a Operand) *Builder {
	return b.Emit(Inst{Op: op, Type: t, Dst: R(d), Srcs: []Operand{a}, Guard: NoReg})
}

// Cvt emits cvt.to.from d, a.
func (b *Builder) Cvt(to, from Type, d Reg, a Operand) *Builder {
	return b.Emit(Inst{Op: OpCvt, Type: to, CvtFrom: from, Dst: R(d), Srcs: []Operand{a}, Guard: NoReg})
}

// Setp emits setp.cmp.t p, a, c.
func (b *Builder) Setp(cmp CmpOp, t Type, p Reg, a, c Operand) *Builder {
	return b.Emit(Inst{Op: OpSetp, Cmp: cmp, Type: t, Dst: R(p), Srcs: []Operand{a, c}, Guard: NoReg})
}

// Selp emits selp.t d, a, c, p.
func (b *Builder) Selp(t Type, d Reg, a, c Operand, p Reg) *Builder {
	return b.Emit(Inst{Op: OpSelp, Type: t, Dst: R(d), Srcs: []Operand{a, c, R(p)}, Guard: NoReg})
}

// Ld emits ld.space.t d, [addr].
func (b *Builder) Ld(space Space, t Type, d Reg, addr Operand) *Builder {
	return b.Emit(Inst{Op: OpLd, Space: space, Type: t, Dst: R(d), Srcs: []Operand{addr}, Guard: NoReg})
}

// St emits st.space.t [addr], v.
func (b *Builder) St(space Space, t Type, addr, v Operand) *Builder {
	return b.Emit(Inst{Op: OpSt, Space: space, Type: t, Dst: addr, Srcs: []Operand{v}, Guard: NoReg})
}

// LdParam emits ld.param.t d, [name].
func (b *Builder) LdParam(t Type, d Reg, name string) *Builder {
	return b.Ld(SpaceParam, t, d, MemSym(name, 0))
}

// Bra emits an unconditional branch to target.
func (b *Builder) Bra(target string) *Builder {
	return b.Emit(Inst{Op: OpBra, Target: target, Guard: NoReg})
}

// BraIf emits @p bra target (or @!p when neg).
func (b *Builder) BraIf(p Reg, neg bool, target string) *Builder {
	return b.Emit(Inst{Op: OpBra, Target: target, Guard: p, GuardNeg: neg})
}

// Bar emits bar.sync 0.
func (b *Builder) Bar() *Builder { return b.Emit(Inst{Op: OpBar, Guard: NoReg}) }

// Exit emits exit.
func (b *Builder) Exit() *Builder { return b.Emit(Inst{Op: OpExit, Guard: NoReg}) }

// GlobalIndex emits the canonical thread-index computation of paper
// Listing 1/2 — tid = ctaid.x*ntid.x + tid.x — and returns a U32 register
// holding it.
func (b *Builder) GlobalIndex() Reg {
	tid := b.Reg(U32)
	ctaid := b.Reg(U32)
	ntid := b.Reg(U32)
	res := b.Reg(U32)
	b.MovSpec(tid, SpecTidX)
	b.MovSpec(ctaid, SpecCtaIdX)
	b.MovSpec(ntid, SpecNTidX)
	b.Mad(U32, res, R(ctaid), R(ntid), R(tid))
	return res
}

// AddrOf emits code computing a 64-bit global address base+idx*scale and
// returns the U64 register holding it.
func (b *Builder) AddrOf(base Reg, idx Reg, scale int64) Reg {
	wide := b.Reg(U64)
	addr := b.Reg(U64)
	b.Cvt(U64, U32, wide, R(idx))
	if scale != 1 {
		scaled := b.Reg(U64)
		b.Mul(U64, scaled, R(wide), Imm(scale))
		wide = scaled
	}
	b.Add(U64, addr, R(base), R(wide))
	return addr
}
