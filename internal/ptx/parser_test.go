package ptx

import (
	"strings"
	"testing"
)

func wrapBody(body string) string {
	return ".visible .entry k()\n{\n\t.reg .u32 %r<4>;\n\t.reg .u64 %rd<2>;\n\t.reg .pred %p<2>;\n" + body + "\n\texit;\n}\n"
}

func TestParserErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"unknown opcode", wrapBody("\tfrobnicate.u32 %r0, %r1;"), "unknown opcode"},
		{"unknown register", wrapBody("\tadd.u32 %r0, %r1, %zz9;"), "unknown register"},
		{"unknown guard", wrapBody("\t@%q7 add.u32 %r0, %r1, %r2;"), "unknown guard"},
		{"unknown suffix", wrapBody("\tadd.wat %r0, %r1, %r2;"), "unknown suffix"},
		{"bad f32 literal", wrapBody("\tmov.u32 %r0, 0Fxyz;"), "bad f32 literal"},
		{"unknown operand", wrapBody("\tmov.u64 %rd0, NotDeclared;"), "unknown operand"},
		{"unknown address register", wrapBody("\tld.global.u32 %r0, [%zz1];"), "unknown address register"},
		{"unterminated body", ".visible .entry k()\n{\n\texit;\n", "unterminated"},
		{"bad top level", "garbage here\n", "unexpected top-level"},
		{"bad param", ".visible .entry k(\n\t.notparam .u32 x\n)\n{\n\texit;\n}\n", "bad parameter"},
		{"bad param type", ".visible .entry k(\n\t.param .u99 x\n)\n{\n\texit;\n}\n", "bad parameter type"},
		{"duplicate register", wrapBody("\t.reg .u32 %r0;"), "duplicate register"},
		{"bad array size", ".visible .entry k()\n{\n\t.local .align 4 .b8 A[xx];\n\texit;\n}\n", "bad array size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted invalid input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	src := ".visible .entry k()\n{\n\t.reg .u32 %r<2>;\n\tadd.u32 %r0, %r1, %nope;\n\texit;\n}\n"
	_, err := Parse(src)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 4 {
		t.Errorf("error line = %d, want 4", pe.Line)
	}
}

func TestParseToleratesNvccSpellings(t *testing.T) {
	// Rounding/precision modifiers from real nvcc output must be accepted
	// and ignored.
	src := wrapBody(strings.Join([]string{
		"\tmul.lo.u32 %r0, %r1, %r2;",
		"\tcvt.u64.u32 %rd0, %r0;",
	}, "\n")) // base
	k, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Insts[0].Op != OpMul {
		t.Error("mul.lo not parsed as mul")
	}

	fsrc := `
.visible .entry f()
{
	.reg .f32 %f<3>;

	div.rn.f32 %f0, %f1, %f2;
	sqrt.rn.f32 %f0, %f1;
	rcp.approx.ftz.f32 %f1, %f2;
	mad.rn.f32 %f2, %f0, %f1, %f0;
	exit;
}
`
	k2, err := Parse(fsrc)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Opcode{OpDiv, OpSqrt, OpRcp, OpMad, OpExit}
	for i, w := range wantOps {
		if k2.Insts[i].Op != w {
			t.Errorf("inst %d op = %v, want %v", i, k2.Insts[i].Op, w)
		}
	}
}

func TestParseMultiKernelModule(t *testing.T) {
	src := `
.version 3.2
.target sm_20

.visible .entry a()
{
	exit;
}

.visible .entry b(
	.param .u64 out
)
{
	.reg .u32 %r<1>;

	mov.u32 %r0, %tid.x;
	exit;
}
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Kernels) != 2 {
		t.Fatalf("parsed %d kernels, want 2", len(m.Kernels))
	}
	if _, ok := m.Kernel("b"); !ok {
		t.Error("kernel b not found")
	}
	if _, ok := m.Kernel("c"); ok {
		t.Error("phantom kernel c found")
	}
	if m.Version != "3.2" || m.Target != "sm_20" {
		t.Errorf("header lost: %q %q", m.Version, m.Target)
	}
	// Parse (single-kernel form) must reject multi-kernel sources.
	if _, err := Parse(src); err == nil {
		t.Error("Parse accepted a multi-kernel module")
	}
}

func TestSplitOperandsNestedBrackets(t *testing.T) {
	got := splitOperands("%r0, [%rd1+8], 42")
	if len(got) != 3 || got[1] != "[%rd1+8]" {
		t.Errorf("splitOperands = %q", got)
	}
	got = splitOperands("")
	if len(got) != 0 {
		t.Errorf("splitOperands(\"\") = %q", got)
	}
}

func TestBareGuardOnExit(t *testing.T) {
	src := `
.visible .entry k()
{
	.reg .pred %p<1>;
	.reg .u32 %r<1>;

	mov.u32 %r0, %tid.x;
	setp.eq.u32 %p0, %r0, 0;
	@%p0 exit;
	exit;
}
`
	k, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Insts[2].Op != OpExit || k.Insts[2].Guard == NoReg {
		t.Error("guarded exit not parsed")
	}
}
