package ptx

import (
	"fmt"
	"sort"
	"strings"
)

// regPrefix returns the canonical register-name prefix for a type, following
// the conventions nvcc-generated PTX uses (%r for 32-bit integers, %rd for
// 64-bit, %f/%fd for floats, %p for predicates).
func regPrefix(t Type) string {
	switch t.Class() {
	case ClassPred:
		return "%p"
	case Class64:
		if t == F64 {
			return "%fd"
		}
		return "%rd"
	default:
		if t == F32 {
			return "%f"
		}
		if t.Bits() == 16 {
			return "%rs"
		}
		if t.Bits() == 8 {
			return "%rc"
		}
		return "%r"
	}
}

// regNames assigns a printable name to every register in the kernel:
// prefix + register id, so names are globally unique and stable.
func regNames(k *Kernel) []string {
	names := make([]string, len(k.RegTypes))
	for i, t := range k.RegTypes {
		names[i] = fmt.Sprintf("%s%d", regPrefix(t), i)
	}
	return names
}

// Print renders the kernel in PTX text form. The output is a self-consistent
// PTX subset dialect that Parse accepts; see the package comment.
func Print(k *Kernel) string {
	var b strings.Builder
	names := regNames(k)

	fmt.Fprintf(&b, ".visible .entry %s(\n", k.Name)
	for i, p := range k.Params {
		comma := ","
		if i == len(k.Params)-1 {
			comma = ""
		}
		fmt.Fprintf(&b, "\t.param .%s %s%s\n", p.Type, p.Name, comma)
	}
	b.WriteString(")\n{\n")

	// Register declarations grouped by exact type, in type order then id order.
	byType := make(map[Type][]string)
	for i, t := range k.RegTypes {
		byType[t] = append(byType[t], names[i])
	}
	types := make([]Type, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(a, b int) bool { return types[a] < types[b] })
	for _, t := range types {
		fmt.Fprintf(&b, "\t.reg .%s %s;\n", t, strings.Join(byType[t], ", "))
	}
	for _, d := range k.Arrays {
		fmt.Fprintf(&b, "\t.%s .align %d .b8 %s[%d];\n", d.Space, d.Align, d.Name, d.Size)
	}
	b.WriteString("\n")

	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Label != "" {
			fmt.Fprintf(&b, "%s:\n", in.Label)
		}
		b.WriteString("\t")
		b.WriteString(formatInst(in, names))
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// PrintModule renders a module with its version/target header.
func PrintModule(m *Module) string {
	var b strings.Builder
	version := m.Version
	if version == "" {
		version = "3.2"
	}
	target := m.Target
	if target == "" {
		target = "sm_20"
	}
	fmt.Fprintf(&b, ".version %s\n.target %s\n.address_size 64\n\n", version, target)
	for _, k := range m.Kernels {
		b.WriteString(Print(k))
		b.WriteString("\n")
	}
	return b.String()
}

func formatOperand(o Operand, names []string) string {
	switch o.Kind {
	case OperandReg:
		return names[o.Reg]
	case OperandImm:
		return fmt.Sprintf("%d", o.Imm)
	case OperandFImm:
		return fmt.Sprintf("0D%016X", floatBits64(o.FImm))
	case OperandSpecial:
		return o.Spec.String()
	case OperandSym:
		return o.Sym
	case OperandMem:
		base := o.Sym
		if o.Reg != NoReg {
			base = names[o.Reg]
		}
		if o.Off != 0 {
			return fmt.Sprintf("[%s%+d]", base, o.Off)
		}
		return fmt.Sprintf("[%s]", base)
	}
	return "?"
}

// formatInst renders one instruction (without label or indentation).
func formatInst(in *Inst, names []string) string {
	var b strings.Builder
	if in.Guard != NoReg {
		if in.GuardNeg {
			fmt.Fprintf(&b, "@!%s ", names[in.Guard])
		} else {
			fmt.Fprintf(&b, "@%s ", names[in.Guard])
		}
	}
	switch in.Op {
	case OpBra:
		fmt.Fprintf(&b, "bra %s;", in.Target)
		return b.String()
	case OpBar:
		b.WriteString("bar.sync 0;")
		return b.String()
	case OpRet:
		b.WriteString("ret;")
		return b.String()
	case OpExit:
		b.WriteString("exit;")
		return b.String()
	case OpNop:
		b.WriteString("nop;")
		return b.String()
	}

	mnemonic := in.Op.String()
	switch in.Op {
	case OpMul, OpMad:
		if in.Type.IsInt() {
			mnemonic += ".lo"
		}
	case OpDiv:
		if in.Type.IsFloat() {
			mnemonic += ".rn"
		}
	case OpRcp, OpRsqrt, OpSin, OpCos, OpLg2, OpEx2:
		mnemonic += ".approx"
	case OpSqrt:
		mnemonic += ".rn"
	case OpSetp:
		mnemonic += "." + in.Cmp.String()
	case OpLd, OpSt:
		mnemonic += "." + in.Space.String()
		if in.Bypass {
			mnemonic += ".cg"
		}
	}
	if in.Op == OpCvt {
		fmt.Fprintf(&b, "cvt.%s.%s", in.Type, in.CvtFrom)
	} else if in.Type != TypeNone {
		fmt.Fprintf(&b, "%s.%s", mnemonic, in.Type)
	} else {
		b.WriteString(mnemonic)
	}
	b.WriteString(" ")

	ops := make([]string, 0, 4)
	if in.Op == OpSt {
		ops = append(ops, formatOperand(in.Dst, names))
		for _, s := range in.Srcs {
			ops = append(ops, formatOperand(s, names))
		}
	} else {
		if in.Dst.Kind != OperandNone {
			ops = append(ops, formatOperand(in.Dst, names))
		}
		for _, s := range in.Srcs {
			ops = append(ops, formatOperand(s, names))
		}
	}
	b.WriteString(strings.Join(ops, ", "))
	b.WriteString(";")
	return b.String()
}

// FormatInst renders a single instruction of kernel k, for diagnostics.
func FormatInst(k *Kernel, i int) string {
	return formatInst(&k.Insts[i], regNames(k))
}
