package ptx

import (
	"strings"
	"testing"
	"testing/quick"
)

// paperListing2 is the native PTX kernel of paper Listing 2 (thread
// identifier computation in SSA style, five virtual registers).
const paperListing2 = `
.visible .entry kernel(
	.param .u64 output
)
{
	.reg .u32 %r<5>;

	mov.u32 %r0, %tid.x;
	mov.u32 %r1, %ctaid.x;
	mov.u32 %r2, %ntid.x;
	mul.lo.u32 %r3, %r2, %r1;
	add.u32 %r4, %r0, %r3;
	exit;
}
`

// paperListing4 is the spilled kernel of paper Listing 4 (SpillStack in
// local memory, 64-bit addressing register).
const paperListing4 = `
.visible .entry kernel(
	.param .u64 output
)
{
	.reg .u64 %d<1>;
	.reg .u32 %r<2>;
	.local .align 4 .b8 SpillStack[4];

	mov.u32 %r0, %tid.x;
	mov.u32 %r1, %ctaid.x;
	mov.u64 %d0, SpillStack;
	st.local.u32 [%d0], %r0;
	mov.u32 %r0, %ntid.x;
	mul.lo.u32 %r1, %r1, %r0;
	ld.local.u32 %r1, [%d0];
	add.u32 %r0, %r0, %r1;
	exit;
}
`

func TestParsePaperListing2(t *testing.T) {
	k, err := Parse(paperListing2)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if k.Name != "kernel" {
		t.Errorf("name = %q, want kernel", k.Name)
	}
	if got := k.NumRegs(); got != 5 {
		t.Errorf("NumRegs = %d, want 5", got)
	}
	if got := len(k.Insts); got != 6 {
		t.Errorf("len(Insts) = %d, want 6", got)
	}
	if err := k.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	mul := k.Insts[3]
	if mul.Op != OpMul || mul.Type != U32 {
		t.Errorf("inst 3 = %v %v, want mul.u32", mul.Op, mul.Type)
	}
}

func TestParsePaperListing4(t *testing.T) {
	k, err := Parse(paperListing4)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := k.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	st := k.Insts[3]
	if st.Op != OpSt || st.Space != SpaceLocal {
		t.Errorf("inst 3 = %v.%v, want st.local", st.Op, st.Space)
	}
	if st.Dst.Kind != OperandMem {
		t.Errorf("st destination kind = %v, want OperandMem", st.Dst.Kind)
	}
	ld := k.Insts[6]
	if ld.Op != OpLd || ld.Space != SpaceLocal {
		t.Errorf("inst 6 = %v.%v, want ld.local", ld.Op, ld.Space)
	}
	if _, ok := k.Array("SpillStack"); !ok {
		t.Error("SpillStack array not declared")
	}
	if got := k.LocalBytes(); got != 4 {
		t.Errorf("LocalBytes = %d, want 4", got)
	}
}

func TestPrintParseFixpoint(t *testing.T) {
	for _, src := range []string{paperListing2, paperListing4} {
		k, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		// The printer canonicalizes register declaration order, so the
		// fixpoint is reached after one print/parse cycle.
		k1, err := Parse(Print(k))
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		p1 := Print(k1)
		k2, err := Parse(p1)
		if err != nil {
			t.Fatalf("reparse:\n%s\nerror: %v", p1, err)
		}
		p2 := Print(k2)
		if p1 != p2 {
			t.Errorf("print/parse not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", p1, p2)
		}
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder("vecadd")
	b.Param("a", U64).Param("b", U64).Param("out", U64).Param("n", U32)
	pa, pb, pout := b.Reg(U64), b.Reg(U64), b.Reg(U64)
	n := b.Reg(U32)
	b.LdParam(U64, pa, "a").LdParam(U64, pb, "b").LdParam(U64, pout, "out").LdParam(U32, n, "n")
	idx := b.GlobalIndex()
	p := b.Reg(Pred)
	b.Setp(CmpGe, U32, p, R(idx), R(n))
	b.BraIf(p, false, "DONE")
	aAddr := b.AddrOf(pa, idx, 4)
	bAddr := b.AddrOf(pb, idx, 4)
	oAddr := b.AddrOf(pout, idx, 4)
	va, vb, vs := b.Reg(F32), b.Reg(F32), b.Reg(F32)
	b.Ld(SpaceGlobal, F32, va, MemReg(aAddr, 0))
	b.Ld(SpaceGlobal, F32, vb, MemReg(bAddr, 0))
	b.Add(F32, vs, R(va), R(vb))
	b.St(SpaceGlobal, F32, MemReg(oAddr, 0), R(vs))
	b.Label("DONE").Exit()

	k := b.Kernel()
	if err := k.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	src := Print(k)
	k2, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(Print(k)):\n%s\nerror: %v", src, err)
	}
	if err := k2.Validate(); err != nil {
		t.Fatalf("reparsed Validate: %v", err)
	}
	if len(k2.Insts) != len(k.Insts) {
		t.Errorf("inst count %d != %d", len(k2.Insts), len(k.Insts))
	}
	if k2.NumRegs() != k.NumRegs() {
		t.Errorf("reg count %d != %d", k2.NumRegs(), k.NumRegs())
	}
	// The labeled exit must survive.
	if idx, ok := k2.LabelIndex("DONE"); !ok || k2.Insts[idx].Op != OpExit {
		t.Errorf("label DONE lost in round trip")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Kernel
	}{
		{"undefined label", func() *Kernel {
			b := NewBuilder("k")
			b.Bra("NOWHERE")
			return b.Kernel()
		}},
		{"guard not predicate", func() *Kernel {
			b := NewBuilder("k")
			r := b.Reg(U32)
			b.Mov(U32, r, Imm(1))
			k := b.Kernel()
			k.Insts[0].Guard = r
			return k
		}},
		{"class mismatch", func() *Kernel {
			b := NewBuilder("k")
			r := b.Reg(U32)
			b.Mov(U64, r, Imm(1)) // 64-bit op writing 32-bit register
			return b.Kernel()
		}},
		{"out of range register", func() *Kernel {
			b := NewBuilder("k")
			r := b.Reg(U32)
			b.Mov(U32, r, R(Reg(99)))
			return b.Kernel()
		}},
		{"unknown symbol", func() *Kernel {
			b := NewBuilder("k")
			r := b.Reg(U64)
			b.Mov(U64, r, Sym("ghost"))
			return b.Kernel()
		}},
		{"32-bit address for local", func() *Kernel {
			b := NewBuilder("k")
			addr := b.Reg(U32)
			v := b.Reg(U32)
			b.Mov(U32, addr, Imm(0))
			b.Ld(SpaceLocal, U32, v, MemReg(addr, 0))
			return b.Kernel()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.build().Validate(); err == nil {
				t.Errorf("Validate accepted invalid kernel")
			}
		})
	}
}

func TestTypeProperties(t *testing.T) {
	if U32.Bytes() != 4 || U64.Bytes() != 8 || F32.Bytes() != 4 || F64.Bytes() != 8 {
		t.Error("wrong type byte widths")
	}
	if U32.Class() != Class32 || F64.Class() != Class64 || Pred.Class() != ClassPred {
		t.Error("wrong register classes")
	}
	if Class32.Slots() != 1 || Class64.Slots() != 2 || ClassPred.Slots() != 0 {
		t.Error("wrong slot counts")
	}
	if !F32.IsFloat() || F32.IsInt() || !S32.IsSigned() || U32.IsSigned() {
		t.Error("wrong type predicates")
	}
}

func TestTypeNameRoundTrip(t *testing.T) {
	all := []Type{U8, U16, U32, U64, S8, S16, S32, S64, F32, F64, B8, B16, B32, B64, Pred}
	for _, ty := range all {
		got, ok := TypeFromName(ty.String())
		if !ok || got != ty {
			t.Errorf("TypeFromName(%q) = %v, %v", ty.String(), got, ok)
		}
	}
}

func TestOpcodeNameRoundTrip(t *testing.T) {
	for op := OpNop; op <= OpEx2; op++ {
		got, ok := OpcodeFromName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeFromName(%q) = %v, %v", op.String(), got, ok)
		}
	}
}

func TestUsesDefs(t *testing.T) {
	b := NewBuilder("k")
	a, c, d := b.Reg(U32), b.Reg(U32), b.Reg(U32)
	addr := b.Reg(U64)
	p := b.Reg(Pred)
	b.Mov(U64, addr, Imm(0))
	b.Add(U32, d, R(a), R(c))
	b.If(p, false).St(SpaceGlobal, U32, MemReg(addr, 0), R(d))
	k := b.Kernel()

	add := &k.Insts[1]
	uses := add.Uses(nil)
	if len(uses) != 2 || uses[0] != a || uses[1] != c {
		t.Errorf("add uses = %v, want [%d %d]", uses, a, c)
	}
	defs := add.Defs(nil)
	if len(defs) != 1 || defs[0] != d {
		t.Errorf("add defs = %v, want [%d]", defs, d)
	}

	st := &k.Insts[2]
	uses = st.Uses(nil)
	// Guard + stored value + address base.
	want := map[Reg]bool{p: true, d: true, addr: true}
	if len(uses) != 3 {
		t.Fatalf("st uses = %v, want 3 registers", uses)
	}
	for _, u := range uses {
		if !want[u] {
			t.Errorf("unexpected st use %d", u)
		}
	}
	if defs := st.Defs(nil); len(defs) != 0 {
		t.Errorf("st defs = %v, want none", defs)
	}
}

func TestParamOffsets(t *testing.T) {
	k := NewKernel("k")
	k.AddParam("a", U64)
	k.AddParam("n", U32)
	k.AddParam("b", U64)
	if off, ok := k.ParamOffset("a"); !ok || off != 0 {
		t.Errorf("offset a = %d, %v", off, ok)
	}
	if off, ok := k.ParamOffset("n"); !ok || off != 8 {
		t.Errorf("offset n = %d, %v", off, ok)
	}
	if off, ok := k.ParamOffset("b"); !ok || off != 16 {
		t.Errorf("offset b = %d, %v (alignment)", off, ok)
	}
}

func TestArrayLayout(t *testing.T) {
	k := NewKernel("k")
	k.AddArray(ArrayDecl{Name: "s1", Space: SpaceShared, Align: 4, Size: 10})
	k.AddArray(ArrayDecl{Name: "s2", Space: SpaceShared, Align: 8, Size: 16})
	k.AddArray(ArrayDecl{Name: "l1", Space: SpaceLocal, Align: 4, Size: 8})
	if got := k.SharedBytes(); got != 32 { // 10 aligned to 8 -> 16, +16
		t.Errorf("SharedBytes = %d, want 32", got)
	}
	if got := k.LocalBytes(); got != 8 {
		t.Errorf("LocalBytes = %d, want 8", got)
	}
	if off, ok := k.ArrayOffset("s2"); !ok || off != 16 {
		t.Errorf("ArrayOffset(s2) = %d, %v, want 16", off, ok)
	}
}

// TestFImmRoundTrip is a property test: any float64 immediate survives
// print -> parse exactly (bit pattern preserved through the 0D hex form).
func TestFImmRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		b := NewBuilder("k")
		r := b.Reg(F64)
		b.Mov(F64, r, FImm(v))
		b.Exit()
		src := Print(b.Kernel())
		k2, err := Parse(src)
		if err != nil {
			return false
		}
		got := k2.Insts[0].Srcs[0].FImm
		return floatBits64(got) == floatBits64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestImmRoundTrip is a property test over integer immediates and offsets.
func TestImmRoundTrip(t *testing.T) {
	f := func(v int64, off int32) bool {
		b := NewBuilder("k")
		r := b.Reg(U64)
		d := b.Reg(U32)
		b.Mov(U64, r, Imm(v))
		b.Ld(SpaceGlobal, U32, d, MemReg(r, int64(off)))
		b.Exit()
		src := Print(b.Kernel())
		k2, err := Parse(src)
		if err != nil {
			return false
		}
		return k2.Insts[0].Srcs[0].Imm == v && k2.Insts[1].Srcs[0].Off == int64(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStaticStats(t *testing.T) {
	k, err := Parse(paperListing4)
	if err != nil {
		t.Fatal(err)
	}
	s := k.StaticStats()
	if s.LocalOps != 2 {
		t.Errorf("LocalOps = %d, want 2", s.LocalOps)
	}
	if s.SpillBytes != 8 {
		t.Errorf("SpillBytes = %d, want 8", s.SpillBytes)
	}
	if s.Loads != 1 || s.Stores != 1 {
		t.Errorf("Loads/Stores = %d/%d, want 1/1", s.Loads, s.Stores)
	}
}

func TestPrintModuleHeader(t *testing.T) {
	m := &Module{Kernels: []*Kernel{NewKernel("empty")}}
	out := PrintModule(m)
	for _, want := range []string{".version 3.2", ".target sm_20", ".address_size 64", ".entry empty"} {
		if !strings.Contains(out, want) {
			t.Errorf("module output missing %q:\n%s", want, out)
		}
	}
	m2, err := ParseModule(out)
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	if len(m2.Kernels) != 1 || m2.Kernels[0].Name != "empty" {
		t.Errorf("module round trip failed")
	}
}

func TestCountedRegDecl(t *testing.T) {
	src := `
.visible .entry k()
{
	.reg .pred %p<2>;
	.reg .f32 %f<3>;

	setp.lt.f32 %p0, %f0, %f1;
	@%p0 add.f32 %f2, %f0, %f1;
	@!%p1 exit;
	exit;
}
`
	k, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if k.NumRegs() != 5 {
		t.Errorf("NumRegs = %d, want 5", k.NumRegs())
	}
	if k.Insts[1].Guard == NoReg || k.Insts[1].GuardNeg {
		t.Error("inst 1 guard wrong")
	}
	if k.Insts[2].Guard == NoReg || !k.Insts[2].GuardNeg {
		t.Error("inst 2 negated guard wrong")
	}
}

func TestNegativeOffsetRoundTrip(t *testing.T) {
	b := NewBuilder("k")
	addr := b.Reg(U64)
	v := b.Reg(U32)
	b.Mov(U64, addr, Imm(128))
	b.Ld(SpaceGlobal, U32, v, MemReg(addr, -8))
	b.Exit()
	src := Print(b.Kernel())
	k2, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse:\n%s\n%v", src, err)
	}
	if got := k2.Insts[1].Srcs[0].Off; got != -8 {
		t.Errorf("offset = %d, want -8", got)
	}
}

func TestClone(t *testing.T) {
	k, err := Parse(paperListing4)
	if err != nil {
		t.Fatal(err)
	}
	c := k.Clone()
	c.Insts[0].Op = OpNop
	c.RegTypes[0] = F32
	c.Params[0].Name = "changed"
	if k.Insts[0].Op == OpNop || k.RegTypes[0] == F32 || k.Params[0].Name == "changed" {
		t.Error("Clone shares state with original")
	}
}
