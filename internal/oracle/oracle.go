// Package oracle is the differential semantic-equivalence gate of the CRAT
// pipeline. It executes a reference kernel and a transformed variant on
// identical generated (or caller-supplied) inputs through the functional
// emulator (internal/emu) and diffs the final global-memory images. The
// pipeline's rewrites — register allocation, spill-stack insertion,
// shared-memory spill placement — must be semantically invisible; any
// observable difference is reported as a structured Divergence that
// localizes the first diverging byte to the stores that produced it.
package oracle

import (
	"fmt"
	"math/rand"

	"crat/internal/emu"
	"crat/internal/ptx"
	"crat/internal/sem"
)

// DefaultRuns is the number of generated input sets Check executes when
// Options.Runs is zero. Differential testing gains little past a few seeds
// on these kernels (control flow depends on thread ids more than data), so
// the default favours pipeline latency.
const DefaultRuns = 2

// Options configures one equivalence check.
type Options struct {
	// Grid and Block give the launch shape (both required).
	Grid, Block int
	// Runs is the number of independently-seeded input sets (0 =
	// DefaultRuns).
	Runs int
	// Seed is the base input-generation seed; run r uses Seed+r.
	Seed int64
	// Setup, when non-nil, replaces generated inputs: it must populate the
	// memory and return the launch parameter values, deterministically.
	// (core.App.Setup satisfies this contract.)
	Setup func(*sem.Memory) []uint64
	// MaxWarpInsts bounds each emulated execution (0 = emulator default).
	MaxWarpInsts int64
}

func (o Options) runs() int {
	if o.Runs <= 0 {
		return DefaultRuns
	}
	return o.Runs
}

// Divergence reports a semantic mismatch between a reference kernel and a
// transformed variant. It implements error so the pipeline and harness can
// thread it through existing fault plumbing.
type Divergence struct {
	Kernel string // kernel name
	Stage  string // which rewrite produced the variant ("regalloc", "spillopt", ...)
	Run    int    // input-set index that exposed the mismatch

	// Addr is the first (lowest) diverging global byte; RefByte/VarByte its
	// contents in each image.
	Addr             uint64
	RefByte, VarByte byte
	// RefStore/VarStore localize the divergence: the provenance (PC, block,
	// warp, lane, value) of the last store to Addr in each execution. Nil
	// when that execution never stored the byte.
	RefStore, VarStore *emu.Store
	// VarFault is set instead of the byte/store fields when the variant
	// faulted outright (the reference did not).
	VarFault error
}

func describeStore(s *emu.Store) string {
	if s == nil {
		return "never stored"
	}
	return fmt.Sprintf("pc=%d block=%d warp=%d lane=%d value=%#x", s.PC, s.Block, s.Warp, s.Lane, s.Value)
}

func (d *Divergence) Error() string {
	if d.VarFault != nil {
		return fmt.Sprintf("oracle: divergence in %s after %s (run %d): variant faulted: %v",
			d.Kernel, d.Stage, d.Run, d.VarFault)
	}
	return fmt.Sprintf("oracle: divergence in %s after %s (run %d): global[%#x] ref=%#x var=%#x; ref %s; var %s",
		d.Kernel, d.Stage, d.Run, d.Addr, d.RefByte, d.VarByte,
		describeStore(d.RefStore), describeStore(d.VarStore))
}

func (d *Divergence) Unwrap() error { return d.VarFault }

// GenInputs deterministically builds a memory image and parameter values
// from a kernel's signature: every 64-bit parameter is treated as a device
// pointer and given a seeded buffer sized for one 8-byte element per thread
// (covering any access scale the pipeline's kernels use); narrower
// parameters become bounded scalars. Buffer words alternate between small
// float bit patterns and raw integers so both float and integer kernels see
// varied data.
func GenInputs(k *ptx.Kernel, grid, block int, seed int64) (*sem.Memory, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	mem := sem.NewMemory()
	n := grid * block
	params := make([]uint64, len(k.Params))
	for i, p := range k.Params {
		if p.Type.Bits() == 64 && !p.Type.IsFloat() {
			// The 4MB slack after each buffer keeps stray in-bounds-but-long
			// strides (grid-stride loops, multi-word elements) from landing
			// in the next buffer; sparse pages make the slack free.
			base := mem.Alloc(int64(8*n) + 4<<20)
			for w := 0; w < 2*n; w++ {
				var v uint32
				if w%2 == 0 {
					v = uint32(sem.F32Bits(float32(rng.Intn(2048)) / 16))
				} else {
					v = rng.Uint32()
				}
				mem.WriteUint32(base+uint64(4*w), v)
			}
			params[i] = base
			continue
		}
		if p.Type.IsFloat() {
			params[i] = sem.ImmBits(ptx.FImm(float64(rng.Intn(1024))/8), p.Type)
			continue
		}
		params[i] = uint64(rng.Intn(1 << 16))
	}
	return mem, params
}

// Variant pairs a stage label with a transformed kernel.
type Variant struct {
	Stage  string
	Kernel *ptx.Kernel
}

// Check runs variant against ref on identically-seeded inputs and returns a
// Divergence describing the first mismatch, or nil when all runs agree.
// A non-nil error means the check itself could not be performed (the
// reference faulted, or the launch is malformed) — distinct from the
// variant being wrong.
func Check(ref, variant *ptx.Kernel, stage string, opts Options) (*Divergence, error) {
	return CheckVariants(ref, []Variant{{Stage: stage, Kernel: variant}}, opts)
}

// CheckVariants runs the reference once per input set and compares every
// variant's final global memory against it. Variants that are nil or the
// reference kernel itself are skipped. The first divergence (in variant
// order, earliest run) is returned.
func CheckVariants(ref *ptx.Kernel, variants []Variant, opts Options) (*Divergence, error) {
	if opts.Grid <= 0 || opts.Block <= 0 {
		return nil, fmt.Errorf("oracle: grid=%d block=%d must be positive", opts.Grid, opts.Block)
	}
	runs := opts.runs()
	if opts.Setup != nil {
		// A Setup provider is deterministic per call: repeated runs would
		// replay the identical input set.
		runs = 1
	}
	for run := 0; run < runs; run++ {
		var mem *sem.Memory
		var params []uint64
		if opts.Setup != nil {
			mem = sem.NewMemory()
			params = opts.Setup(mem)
		} else {
			mem, params = GenInputs(ref, opts.Grid, opts.Block, opts.Seed+int64(run))
		}
		refMem := mem.Clone()
		refRes, err := emu.Run(emu.Launch{
			Kernel: ref, Grid: opts.Grid, Block: opts.Block,
			Params: params, MaxWarpInsts: opts.MaxWarpInsts,
		}, refMem)
		if err != nil {
			return nil, fmt.Errorf("oracle: reference %s failed on run %d: %w", ref.Name, run, err)
		}
		for _, v := range variants {
			if v.Kernel == nil || v.Kernel == ref {
				continue
			}
			varMem := mem.Clone()
			varRes, err := emu.Run(emu.Launch{
				Kernel: v.Kernel, Grid: opts.Grid, Block: opts.Block,
				Params: params, MaxWarpInsts: opts.MaxWarpInsts,
			}, varMem)
			if err != nil {
				return &Divergence{Kernel: ref.Name, Stage: v.Stage, Run: run, VarFault: err}, nil
			}
			if addr, a, b, diff := refMem.DiffFirst(varMem); diff {
				d := &Divergence{
					Kernel: ref.Name, Stage: v.Stage, Run: run,
					Addr: addr, RefByte: a, VarByte: b,
				}
				if s, ok := refRes.LastStore[addr]; ok {
					d.RefStore = &s
				}
				if s, ok := varRes.LastStore[addr]; ok {
					d.VarStore = &s
				}
				return d, nil
			}
		}
	}
	return nil, nil
}

// CheckChain verifies the pipeline's rewrite chain: original vs the
// register-allocated kernel (stage "regalloc") and original vs the final
// spill-optimized kernel (stage "spillopt", skipped when final is nil or
// a kernel already checked). The reference executes once per input set.
func CheckChain(original, allocated, final *ptx.Kernel, opts Options) (*Divergence, error) {
	variants := []Variant{{Stage: "regalloc", Kernel: allocated}}
	if final != allocated {
		variants = append(variants, Variant{Stage: "spillopt", Kernel: final})
	}
	return CheckVariants(original, variants, opts)
}
