package oracle_test

import (
	"fmt"
	"os"
	"testing"

	"crat/internal/backend"
	"crat/internal/core"
	"crat/internal/emu/ptxgen"
	"crat/internal/gpusim"
	"crat/internal/oracle"
	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/regalloc"
	"crat/internal/sem"
	"crat/internal/spillopt"
	"crat/internal/workloads"
)

// oracleApp shrinks a workload to an emulation-friendly grid unless
// ORACLE_FULL_GRID is set (the make oracle-smoke gate validates full
// launches). Block size, kernel, and per-block behaviour are unchanged —
// only fewer blocks run.
func oracleApp(t testing.TB, p workloads.Profile) core.App {
	if os.Getenv("ORACLE_FULL_GRID") != "" {
		return p.App()
	}
	grid := 2
	if p.Grid < grid {
		grid = p.Grid
	}
	return p.AppWithInput(workloads.Input{Name: "oracle", GridScale: float64(grid) / float64(p.Grid), DataScale: 1})
}

// buildVariants register-allocates the app's kernel at the given budget and
// applies the shared-memory spilling optimization, returning both rewrite
// stages.
func buildVariants(t testing.TB, app core.App, arch gpusim.Config, a *core.Analysis, budget int) (alloc *regalloc.Result, spill *spillopt.Result) {
	t.Helper()
	allocOpts := regalloc.Options{Regs: budget}
	alloc, err := regalloc.Allocate(app.Kernel, allocOpts)
	if err != nil {
		t.Fatalf("%s: allocate at %d regs: %v", app.Name, budget, err)
	}
	spill, err = spillopt.Optimize(alloc, allocOpts, spillopt.Options{
		SpareShmBytes: core.SpareShm(arch, a.ShmSize, a.OptTLP),
		BlockSize:     a.BlockSize,
	})
	if err != nil {
		t.Fatalf("%s: spillopt at %d regs: %v", app.Name, budget, err)
	}
	return alloc, spill
}

// TestWorkloadsZeroDivergence differentially validates every seed workload
// kernel: original vs register-allocated vs spill-optimized, at both the
// app's default budget and the tightest feasible budget (maximum spill
// pressure). The acceptance criterion is zero divergences.
func TestWorkloadsZeroDivergence(t *testing.T) {
	arch := gpusim.FermiConfig()
	for _, p := range workloads.All() {
		p := p
		t.Run(p.Abbr, func(t *testing.T) {
			t.Parallel()
			app := oracleApp(t, p)
			a, err := core.Analyze(app, arch)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			budgets := []int{a.DefaultReg}
			if a.FeasibleMinReg < a.DefaultReg {
				budgets = append(budgets, a.FeasibleMinReg)
			}
			for _, budget := range budgets {
				alloc, spill := buildVariants(t, app, arch, a, budget)
				d, err := oracle.CheckChain(app.Kernel, alloc.Kernel, spill.Alloc.Kernel, oracle.Options{
					Grid: app.Grid, Block: app.Block, Setup: app.Setup,
				})
				if err != nil {
					t.Fatalf("budget %d: oracle error: %v", budget, err)
				}
				if d != nil {
					t.Fatalf("budget %d: unexpected divergence: %v", budget, d)
				}
			}
		})
	}
}

// mutateKernel flips the first eligible add into a sub — the canonical
// injected miscompile.
func mutateKernel(k *ptx.Kernel) *ptx.Kernel {
	m := k.Clone()
	for i := range m.Insts {
		in := &m.Insts[i]
		if in.Op == ptx.OpAdd && in.Type == ptx.F32 {
			in.Op = ptx.OpSub
			return m
		}
	}
	for i := range m.Insts {
		in := &m.Insts[i]
		if in.Op == ptx.OpAdd {
			in.Op = ptx.OpSub
			return m
		}
	}
	return nil
}

// TestInjectedMiscompileCaught verifies the oracle's sensitivity: a
// single flipped opcode must be reported as a Divergence with store
// provenance.
func TestInjectedMiscompileCaught(t *testing.T) {
	p := workloads.All()[0]
	app := oracleApp(t, p)
	bad := mutateKernel(app.Kernel)
	if bad == nil {
		t.Fatalf("no mutable instruction in %s", app.Name)
	}
	d, err := oracle.Check(app.Kernel, bad, "regalloc", oracle.Options{
		Grid: app.Grid, Block: app.Block, Setup: app.Setup,
	})
	if err != nil {
		t.Fatalf("oracle error: %v", err)
	}
	if d == nil {
		t.Fatalf("injected miscompile not detected")
	}
	if d.Stage != "regalloc" || d.Kernel != app.Kernel.Name {
		t.Fatalf("divergence mislabelled: %+v", d)
	}
	if d.VarFault == nil && d.RefStore == nil && d.VarStore == nil {
		t.Fatalf("divergence carries no localization: %v", d)
	}
	t.Logf("caught: %v", d)
}

// TestVariantFaultIsDivergence: a variant that crashes (null-pointer store)
// where the reference does not must surface as a divergence, not an oracle
// error.
func TestVariantFaultIsDivergence(t *testing.T) {
	b := ptx.NewBuilder("ok")
	b.Param("out", ptx.U64)
	pout := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, pout, "out")
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(pout, 0), ptx.Imm(7))
	b.Exit()
	ref := b.Kernel()

	bad := ref.Clone()
	for i := range bad.Insts {
		if bad.Insts[i].Op == ptx.OpLd { // ld.param of the out pointer
			bad.Insts[i].Srcs[0] = ptx.MemSym("out", 32) // reads past the param block → 0
		}
	}
	d, err := oracle.Check(ref, bad, "regalloc", oracle.Options{Grid: 1, Block: 1})
	if err != nil {
		t.Fatalf("oracle error: %v", err)
	}
	if d == nil || d.VarFault == nil {
		t.Fatalf("expected variant-fault divergence, got %v", d)
	}
}

// TestMetamorphicSpillExtremes: over generated kernels, the
// spill-everything allocation (tightest feasible budget) and the
// spill-nothing allocation (unbounded budget) must both match the original
// program.
func TestMetamorphicSpillExtremes(t *testing.T) {
	const seeds = 30
	block := 64
	checked := 0
	for seed := int64(0); seed < seeds; seed++ {
		k := ptxgen.Generate(ptxgen.Config{Seed: seed, Block: block})
		loose, err := regalloc.Allocate(k, regalloc.Options{Regs: 256})
		if err != nil {
			t.Fatalf("seed %d: loose allocate: %v", seed, err)
		}
		tight := tightestAlloc(t, k)
		if tight == nil {
			continue // kernel too small to ever spill; extremes coincide
		}
		if len(tight.Spills) == 0 {
			continue
		}
		checked++
		d, err := oracle.CheckVariants(k, []oracle.Variant{
			{Stage: "spill-nothing", Kernel: loose.Kernel},
			{Stage: "spill-everything", Kernel: tight.Kernel},
		}, oracle.Options{Grid: 2, Block: block, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: oracle error: %v", seed, err)
		}
		if d != nil {
			t.Fatalf("seed %d: spill extreme diverges: %v", seed, d)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d/%d generated kernels actually spilled; property under-exercised", checked, seeds)
	}
}

// tightestAlloc binary-searches the smallest feasible register budget.
func tightestAlloc(t *testing.T, k *ptx.Kernel) *regalloc.Result {
	t.Helper()
	lo, hi := 2, 64
	var best *regalloc.Result
	for lo <= hi {
		mid := (lo + hi) / 2
		r, err := regalloc.Allocate(k, regalloc.Options{Regs: mid})
		if err != nil {
			lo = mid + 1
			continue
		}
		best = r
		hi = mid - 1
	}
	return best
}

// TestMetamorphicSplitInvariance: Algorithm 1's sub-stack split strategy
// (and the greedy-order inversion) changes *which* spill slots move to
// shared memory, never the results — every split permutation must agree
// with the original kernel.
func TestMetamorphicSplitInvariance(t *testing.T) {
	const seeds = 20
	block := 64
	checked := 0
	for seed := int64(0); seed < seeds; seed++ {
		k := ptxgen.Generate(ptxgen.Config{Seed: seed, Block: block})
		tight := tightestAlloc(t, k)
		if tight == nil || len(tight.Spills) == 0 {
			continue
		}
		// Give the optimizer a little slack over the absolute minimum:
		// promoting spill slots to shared memory can change register needs,
		// and reallocation at the exact infeasibility edge may fail for some
		// split shapes (that failure path is exercised elsewhere).
		allocOpts := regalloc.Options{Regs: tight.UsedRegs + 2}
		base, err := regalloc.Allocate(k, allocOpts)
		if err != nil {
			t.Fatalf("seed %d: allocate at %d regs: %v", seed, allocOpts.Regs, err)
		}
		if len(base.Spills) == 0 {
			continue
		}
		var variants []oracle.Variant
		for _, split := range []spillopt.Split{spillopt.SplitByType, spillopt.SplitWhole, spillopt.SplitPerVariable} {
			for _, lowGain := range []bool{false, true} {
				res, err := spillopt.Optimize(base, allocOpts, spillopt.Options{
					SpareShmBytes: 4096,
					BlockSize:     block,
					Split:         split,
					PreferLowGain: lowGain,
				})
				if err != nil {
					// Shared-memory promotion inserts address computations;
					// near the feasibility edge reallocation may legitimately
					// fail for some split shapes. Skip the combo — invariance
					// only applies to splits that produce a kernel.
					continue
				}
				variants = append(variants, oracle.Variant{
					Stage:  split.String(),
					Kernel: res.Alloc.Kernel,
				})
			}
		}
		checked++
		d, err := oracle.CheckVariants(k, variants, oracle.Options{Grid: 2, Block: block, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: oracle error: %v", seed, err)
		}
		if d != nil {
			t.Fatalf("seed %d: split permutation diverges: %v", seed, d)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d/%d generated kernels spilled; property under-exercised", checked, seeds)
	}
}

// TestMetamorphicBackends: every registered optimization backend is a
// semantics-preserving transformation, so over generated kernels each
// backend's chosen kernel — and the full union's winner — must agree
// with the original program on the same generated inputs. Pruning keeps
// the generated kernels' own design spaces tame, so the suite also
// drives each backend directly through the Backend interface at forced
// tight register budgets, where regdem actually demotes and crat
// actually spills; every candidate those builds produce must be
// oracle-clean too.
func TestMetamorphicBackends(t *testing.T) {
	const seeds = 24
	block := 256
	arch := gpusim.FermiConfig()
	names := backend.Names()
	opts := core.Options{
		Arch:   arch,
		OptTLP: 6,
		Costs:  gpusim.Costs{Local: 40, Shared: 4},
	}
	demoted := 0
	for seed := int64(0); seed < seeds; seed++ {
		k := ptxgen.Generate(ptxgen.Config{Seed: seed, Block: block, MaxOps: 96})
		app := core.App{Name: k.Name, Kernel: k, Block: block, Grid: 2}
		a, err := core.Analyze(app, arch)
		if err != nil {
			t.Fatalf("seed %d: analyze: %v", seed, err)
		}
		var variants []oracle.Variant
		for _, name := range names {
			o := opts
			o.Backends = []string{name}
			d, err := core.Optimize(app, o)
			if err != nil {
				t.Fatalf("seed %d: backend %s: %v", seed, name, err)
			}
			if d.Backend != name {
				t.Fatalf("seed %d: backend %s attributed its win to %q", seed, name, d.Backend)
			}
			variants = append(variants, oracle.Variant{Stage: "backend-" + name, Kernel: d.Chosen.Kernel()})
		}
		o := opts
		o.Backends = names
		d, err := core.Optimize(app, o)
		if err != nil {
			t.Fatalf("seed %d: union: %v", seed, err)
		}
		variants = append(variants, oracle.Variant{Stage: "backend-union-" + d.Backend, Kernel: d.Chosen.Kernel()})

		// Forced tight budgets (slack permitting): a little above the
		// feasibility floor and halfway to the kernel's full demand.
		if lo := a.MinReg + 6; lo < a.MaxReg {
			req := backend.Request{
				AppName:   app.Name,
				Kernel:    k,
				Arch:      arch,
				BlockSize: block,
				ShmSize:   a.ShmSize,
				OptTLP:    4,
				Points:    []backend.Point{{Reg: lo, TLP: 4}, {Reg: (lo + a.MaxReg) / 2, TLP: 4}},
			}
			for _, name := range names {
				bk, ok := backend.Lookup(name)
				if !ok {
					t.Fatalf("backend %s not registered", name)
				}
				pm := &passes.Manager{VerifyEach: true}
				cands, err := bk.Candidates(pm, req)
				if err != nil {
					t.Fatalf("seed %d: %s at tight budgets: %v", seed, name, err)
				}
				sawDemotion := false
				for _, c := range cands {
					variants = append(variants, oracle.Variant{
						Stage:  fmt.Sprintf("tight-%s-reg%d", name, c.Reg),
						Kernel: c.Kernel(),
					})
					if c.Demoted > 0 {
						sawDemotion = true
					}
				}
				if name == "regdem" && sawDemotion {
					demoted++
				}
			}
		}
		dv, err := oracle.CheckVariants(k, variants, oracle.Options{Grid: 2, Block: block, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: oracle error: %v", seed, err)
		}
		if dv != nil {
			t.Fatalf("seed %d: backend output diverges: %v", seed, dv)
		}
	}
	if demoted < 5 {
		t.Fatalf("regdem demoted registers on only %d/%d seeds; property under-exercised", demoted, seeds)
	}
}

// TestGenInputsDeterministic pins the input generator's contract: identical
// seeds yield identical images and parameters.
func TestGenInputsDeterministic(t *testing.T) {
	k := ptxgen.Generate(ptxgen.Config{Seed: 7})
	m1, p1 := oracle.GenInputs(k, 2, 64, 42)
	m2, p2 := oracle.GenInputs(k, 2, 64, 42)
	if len(p1) != len(p2) {
		t.Fatalf("param count differs")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("param %d differs: %#x vs %#x", i, p1[i], p2[i])
		}
	}
	if !m1.Equal(m2) {
		t.Fatalf("memory images differ")
	}
	m3, _ := oracle.GenInputs(k, 2, 64, 43)
	if m1.Equal(m3) {
		t.Fatalf("distinct seeds produced identical images")
	}
	_ = sem.NewMemory // keep sem import for clarity of the contract
}
