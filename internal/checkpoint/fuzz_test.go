package checkpoint

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJournalDecode drives the v2 record decoder with arbitrary bytes:
// it must never panic, never report more salvage than the input could
// hold, and everything it accepts must survive an encode/decode round
// trip (the compaction path re-encodes exactly what decode accepted).
func FuzzJournalDecode(f *testing.F) {
	// Seeds: a valid two-record journal, its truncations, a bit-flipped
	// copy, a v1-style JSON blob, and junk.
	img, err := encodeJournal(map[string]json.RawMessage{
		"alpha": json.RawMessage(`{"x":1}`),
		"beta":  json.RawMessage(`[1,2,3]`),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(img)-5])
	f.Add(img[:3])
	flipped := append([]byte{}, img...)
	flipped[recordHeaderLen+4] ^= 0x80
	f.Add(flipped)
	f.Add([]byte(`{"a": {"x": 1}, "b": 2}`)) // v1 journal.json shape
	f.Add([]byte("CRJ2CRJ2CRJ2"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, stats, quarantine := decodeJournal(data)

		if stats.Records < len(entries) {
			t.Fatalf("stats.Records=%d < entries=%d", stats.Records, len(entries))
		}
		qBytes := 0
		for _, c := range quarantine {
			qBytes += len(c)
		}
		if qBytes != stats.QuarantinedBytes || len(quarantine) != stats.Quarantined {
			t.Fatalf("quarantine accounting: %d chunks/%d bytes vs stats %+v",
				len(quarantine), qBytes, stats)
		}
		if qBytes > len(data) {
			t.Fatalf("quarantined %d bytes from a %d-byte input", qBytes, len(data))
		}

		// Round trip: whatever decode accepted, encode must reproduce and
		// decode again cleanly — this is the compaction invariant.
		img, err := encodeJournal(entries)
		if err != nil {
			t.Fatalf("re-encoding accepted entries: %v", err)
		}
		again, stats2, q2 := decodeJournal(img)
		if len(q2) != 0 || stats2.Quarantined != 0 || stats2.SalvagedTail != 0 || stats2.Torn {
			t.Fatalf("re-encoded journal decoded dirty: %+v", stats2)
		}
		if len(again) != len(entries) {
			t.Fatalf("round trip lost entries: %d -> %d", len(entries), len(again))
		}
		for k, v := range entries {
			if !bytes.Equal(again[k], v) {
				t.Fatalf("round trip changed %q: %s -> %s", k, v, again[k])
			}
		}
	})
}
