package checkpoint

// Journal v2: the record-oriented on-disk format. The v1 store kept one
// monolithic journal.json and rewrote + double-fsynced all of it on
// every Put — O(n²) write amplification, and a single flipped byte made
// the whole cache unreadable. v2 is an append-only journal.log of
// self-describing records:
//
//	magic "CRJ2" | payload length (uint32 LE) | CRC32C (uint32 LE) | payload
//
// where the payload is the JSON {"k": key, "v": value}. A Put appends
// one record and issues one fsync; the rest of the file is never
// touched. Corruption is contained to the records it hits:
//
//   - A torn final record (crash mid-append) is salvaged: the tail is
//     dropped, everything before it survives.
//   - A corrupt mid-file record (bit flip, overwritten region) is
//     quarantined: the decoder re-synchronizes on the next record magic,
//     skips and counts the bad bytes, and keeps every decodable record.
//     Since only CRC-valid records are ever accepted, scanning every
//     magic occurrence can never skip a good record — at worst a few
//     extra bytes land in quarantine.
//
// Decoding is pure (bytes in, entries + stats out), which is what the
// fuzz harness drives.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"sort"
)

// journalMagic opens every v2 record; the decoder re-synchronizes on it
// after corruption.
var journalMagic = []byte("CRJ2")

const (
	recordHeaderLen = 12 // magic + length + crc
	// maxRecordLen bounds one record's payload; a corrupt length field
	// claiming more is treated as corruption, not an allocation request.
	maxRecordLen = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// journalRecord is the payload encoding of one Put.
type journalRecord struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v"`
}

// encodeRecord frames one key/value pair as a v2 record.
func encodeRecord(key string, val json.RawMessage) ([]byte, error) {
	payload, err := json.Marshal(journalRecord{K: key, V: val})
	if err != nil {
		return nil, err
	}
	buf := make([]byte, recordHeaderLen+len(payload))
	copy(buf, journalMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(payload, crcTable))
	copy(buf[recordHeaderLen:], payload)
	return buf, nil
}

// decodeStats summarizes one decode pass; the Store folds it into its
// Health.
type decodeStats struct {
	Records          int  // CRC-valid records accepted (including superseded duplicates)
	Duplicates       int  // accepted records later overwritten by a newer record for the same key
	SalvagedTail     int  // torn final records dropped (1 or 0 per decode)
	Quarantined      int  // corrupt chunks skipped mid-file
	QuarantinedBytes int  // total bytes in those chunks
	Torn             bool // the file ended in a partial record (implies SalvagedTail or a quarantined tail)
}

type recStatus int

const (
	recOK   recStatus = iota
	recTorn           // a record started but the data ends before it completes
	recBad            // magic mismatch, implausible length, CRC mismatch, or undecodable payload
)

// parseRecord examines the record beginning at b[0] and returns its
// status, the decoded record (recOK only), and its full frame size.
func parseRecord(b []byte) (recStatus, journalRecord, int) {
	if len(b) < len(journalMagic) {
		return recTorn, journalRecord{}, 0
	}
	if !bytes.Equal(b[:len(journalMagic)], journalMagic) {
		return recBad, journalRecord{}, 0
	}
	if len(b) < recordHeaderLen {
		return recTorn, journalRecord{}, 0
	}
	length := binary.LittleEndian.Uint32(b[4:8])
	if length > maxRecordLen {
		return recBad, journalRecord{}, 0
	}
	size := recordHeaderLen + int(length)
	if size > len(b) {
		return recTorn, journalRecord{}, 0
	}
	payload := b[recordHeaderLen:size]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[8:12]) {
		return recBad, journalRecord{}, 0
	}
	var rec journalRecord
	if err := json.Unmarshal(payload, &rec); err != nil || rec.K == "" {
		return recBad, journalRecord{}, 0
	}
	return recOK, rec, size
}

// decodeJournal replays a v2 journal image: later records for a key win
// (append-only overwrite), a torn tail is dropped, and corrupt chunks
// are returned for quarantine. It never fails — the worst input yields
// zero entries and everything in quarantine.
func decodeJournal(data []byte) (map[string]json.RawMessage, decodeStats, [][]byte) {
	entries := make(map[string]json.RawMessage)
	var stats decodeStats
	var quarantine [][]byte

	pos := 0
	corruptStart := -1
	flushQuarantine := func(end int) {
		if corruptStart >= 0 && end > corruptStart {
			chunk := make([]byte, end-corruptStart)
			copy(chunk, data[corruptStart:end])
			quarantine = append(quarantine, chunk)
			stats.Quarantined++
			stats.QuarantinedBytes += len(chunk)
		}
		corruptStart = -1
	}

	for pos < len(data) {
		status, rec, size := parseRecord(data[pos:])
		switch status {
		case recOK:
			flushQuarantine(pos)
			if _, dup := entries[rec.K]; dup {
				stats.Duplicates++
			}
			entries[rec.K] = rec.V
			stats.Records++
			pos += size
		case recTorn:
			// A record frame that runs past the end of the data: by
			// construction nothing follows it, so this is the torn tail of
			// the file. If we were already scanning through corruption, the
			// tail belongs to that quarantined chunk instead.
			stats.Torn = true
			if corruptStart >= 0 {
				flushQuarantine(len(data))
			} else {
				stats.SalvagedTail++
			}
			pos = len(data)
		case recBad:
			if corruptStart < 0 {
				corruptStart = pos
			}
			// Re-synchronize on the next magic. Only CRC-valid records are
			// accepted, so trying every occurrence is safe — a magic inside
			// corrupt bytes fails its CRC and the scan continues.
			idx := bytes.Index(data[pos+1:], journalMagic)
			if idx < 0 {
				flushQuarantine(len(data))
				pos = len(data)
				break
			}
			pos = pos + 1 + idx
		}
	}
	flushQuarantine(len(data))
	return entries, stats, quarantine
}

// encodeJournal renders entries as a compact v2 journal image, keys
// sorted so compaction output is deterministic.
func encodeJournal(entries map[string]json.RawMessage) ([]byte, error) {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		rec, err := encodeRecord(k, entries[k])
		if err != nil {
			return nil, err
		}
		buf.Write(rec)
	}
	return buf.Bytes(), nil
}
