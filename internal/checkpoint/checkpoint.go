// Package checkpoint persists completed experiment results so an
// interrupted sweep can resume without re-simulating. A store is a
// directory holding two files:
//
//   - manifest.json — the session identity: format version plus a caller
//     supplied key (a hash of the simulated configuration). A resume
//     against a manifest whose key differs is rejected (ErrStale): results
//     computed under another configuration must never be replayed.
//   - journal.json — a map from result key (e.g. "mode/CFD/CRAT") to the
//     JSON payload of the completed result.
//
// Every write goes through a temp file in the same directory, an fsync,
// and an atomic rename, followed by a directory fsync — a crash or kill at
// any instant leaves either the old or the new file, never a partial one.
// Leftover temp files from a killed writer are swept when a store is opened
// fresh (resume opens are read-only and must not disturb a live writer).
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Version is the on-disk format version; bumping it invalidates every
// existing checkpoint.
const Version = 1

// ErrStale is returned by Open when resuming against a manifest written
// for a different configuration (or format version).
var ErrStale = errors.New("checkpoint: stale checkpoint rejected")

type manifest struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Label   string `json:"label,omitempty"`
}

// Store is a durable map from result keys to JSON payloads. All methods
// are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	dir     string
	key     string // config hash this store was opened under
	entries map[string]json.RawMessage
	loaded  int // entries restored from disk at Open (resume)
}

// Hash returns a hex SHA-256 of v's canonical JSON encoding — the
// configuration fingerprint stored in the manifest.
func Hash(v any) (string, error) {
	buf, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("checkpoint: hashing config: %w", err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), nil
}

// Open creates or reopens a store at dir. key identifies the configuration
// the results are valid for; label is a human-readable tag recorded in the
// manifest (e.g. the architecture name). With resume set, an existing
// journal is loaded — after verifying the manifest's key matches, anything
// else is ErrStale. Without resume, any existing journal is discarded and
// the store starts empty.
func Open(dir, key, label string, resume bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, key: key, entries: make(map[string]json.RawMessage)}

	manifestPath := filepath.Join(dir, "manifest.json")
	if resume {
		buf, err := os.ReadFile(manifestPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Nothing to resume from: start fresh below.
		case err != nil:
			return nil, err
		default:
			var m manifest
			if err := json.Unmarshal(buf, &m); err != nil {
				return nil, fmt.Errorf("checkpoint: corrupt manifest %s: %w", manifestPath, err)
			}
			if m.Version != Version || m.Key != key {
				return nil, fmt.Errorf("%w: %s: manifest (version=%d key=%.12s…) does not match current configuration (version=%d key=%.12s…)",
					ErrStale, manifestPath, m.Version, m.Key, Version, key)
			}
			if err := s.loadJournal(); err != nil {
				return nil, err
			}
			s.loaded = len(s.entries)
			return s, nil
		}
	}
	// Fresh store: the caller asserts ownership of the directory, so sweep
	// temp files a killed writer left behind, drop any previous journal,
	// then persist the manifest. Resume opens never sweep — a concurrent
	// resume (even a stale one) must not delete a live writer's in-flight
	// temp file out from under its rename.
	if names, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, n := range names {
			os.Remove(n)
		}
	}
	if err := os.Remove(filepath.Join(dir, "journal.json")); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	buf, err := json.MarshalIndent(manifest{Version: Version, Key: key, Label: label}, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeAtomic(dir, "manifest.json", buf); err != nil {
		return nil, fmt.Errorf("checkpoint: initializing manifest %s (config %.12s…): %w", manifestPath, key, err)
	}
	return s, nil
}

func (s *Store) loadJournal() error {
	buf, err := os.ReadFile(filepath.Join(s.dir, "journal.json"))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(buf, &s.entries); err != nil {
		return fmt.Errorf("checkpoint: corrupt journal in %s: %w", s.dir, err)
	}
	return nil
}

// Get unmarshals the payload stored under key into out, reporting whether
// the key was present.
func (s *Store) Get(key string, out any) (bool, error) {
	s.mu.Lock()
	raw, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("checkpoint: entry %q: %w", key, err)
	}
	return true, nil
}

// Has reports whether key is present without decoding it.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Put records v under key and durably rewrites the journal. The write is
// atomic: a crash mid-Put preserves every previously persisted entry.
func (s *Store) Put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[key] = raw
	return s.flushLocked()
}

// ErrConflict is returned by Put/Flush when the directory's manifest no
// longer belongs to this store: a second writer (e.g. another daemon
// pointed at the same cache directory) re-initialized it since we opened.
var ErrConflict = errors.New("checkpoint: directory owned by another writer")

// checkOwnershipLocked re-reads the manifest before every journal rewrite
// and refuses to flush when another writer has re-initialized the
// directory. Without the check two stores on one directory silently
// clobber each other's journals; with it the loser gets an error naming
// the path and both config hashes, so the misconfiguration is attributable.
func (s *Store) checkOwnershipLocked() error {
	manifestPath := filepath.Join(s.dir, "manifest.json")
	buf, err := os.ReadFile(manifestPath)
	if err != nil {
		return fmt.Errorf("%w: manifest %s unreadable (our config %.12s…): %v",
			ErrConflict, manifestPath, s.key, err)
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return fmt.Errorf("%w: manifest %s corrupt (our config %.12s…): %v",
			ErrConflict, manifestPath, s.key, err)
	}
	if m.Version != Version || m.Key != s.key {
		return fmt.Errorf("%w: %s holds key %.12s…, this store's config is %.12s… — is another daemon journaling into the same directory?",
			ErrConflict, manifestPath, m.Key, s.key)
	}
	return nil
}

func (s *Store) flushLocked() error {
	if err := s.checkOwnershipLocked(); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(s.entries, "", " ")
	if err != nil {
		return err
	}
	if err := writeAtomic(s.dir, "journal.json", buf); err != nil {
		return fmt.Errorf("checkpoint: flushing journal %s (config %.12s…): %w",
			filepath.Join(s.dir, "journal.json"), s.key, err)
	}
	return nil
}

// Count returns the number of persisted entries.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Loaded returns how many entries were restored from disk at Open — the
// resume inheritance, as opposed to entries added this session.
func (s *Store) Loaded() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loaded
}

// Keys returns the persisted keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Flush rewrites the journal. Puts already persist eagerly, so Flush only
// matters as a final barrier before reporting "everything survived".
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// writeAtomic writes name in dir via temp file + fsync + rename + dir
// fsync: the destination is either untouched or fully replaced.
func writeAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
