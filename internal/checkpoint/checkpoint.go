// Package checkpoint persists completed results (experiment sweeps,
// cratd compile Decisions) so an interrupted run can resume without
// recomputing. A store is a directory holding:
//
//   - manifest.json — the session identity: format version plus a caller
//     supplied key (a hash of the simulated configuration). A resume
//     against a manifest whose key differs is rejected (ErrStale): results
//     computed under another configuration must never be replayed.
//   - journal.log — the record-oriented v2 journal: one append-only,
//     CRC32C-checksummed record per Put (see journal.go for the format
//     and its salvage/quarantine rules). A Put appends one record and
//     issues one fsync — O(record) per write, where the v1 monolithic
//     journal.json rewrote and double-fsynced everything it had ever
//     stored.
//   - journal.quarantine — corrupt chunks skipped by the decoder, kept
//     for forensics instead of silently discarded.
//
// Corruption does not take the store down: a torn final record (crash
// mid-append) is dropped and everything before it survives; a corrupt
// mid-file record is skipped, counted, and quarantined while the rest of
// the cache loads. Health() reports what happened so degraded durability
// is observable, never silent.
//
// A v1 journal.json written by an earlier release is read transparently
// on resume and migrated to the v2 format on the first write.
//
// Repairs (quarantine extraction, compaction past the garbage threshold,
// v1 migration) are detected at Open but applied on the first write:
// resume opens may be concurrent read-only observers of a live writer's
// directory, and must not rewrite journal.log out from under its append
// handle. A writer's first Put (or Flush) performs the pending repair
// under the manifest ownership check.
//
// All durable writes go through an injectable faultinject.FS, so every
// failure mode — failed fsync, torn write, ENOSPC, short read — is a
// deterministic, replayable test instead of a production surprise.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"crat/internal/faultinject"
)

// Version is the on-disk format version written to new manifests.
// Manifests back to minManifestVersion are still accepted on resume (the
// journal is migrated forward on the first write).
const Version = 2

// minManifestVersion is the oldest manifest a resume still understands:
// version 1 stores carry a monolithic journal.json that loadJournal
// reads transparently.
const minManifestVersion = 1

// Filenames inside a store directory, exported so process supervisors
// (the chaos matrix) can corrupt them on purpose.
const (
	ManifestFilename   = "manifest.json"
	JournalFilename    = "journal.log"
	JournalV1Filename  = "journal.json"
	QuarantineFilename = "journal.quarantine"
)

// compactMinDuplicates is the garbage threshold: a journal whose
// superseded-record count reaches it (and exceeds the live-entry count)
// is compacted on the first write after Open. A var so tests can lower
// it.
var compactMinDuplicates = 64

// ErrStale is returned by Open when resuming against a manifest written
// for a different configuration (or an unknown format version).
var ErrStale = errors.New("checkpoint: stale checkpoint rejected")

type manifest struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Label   string `json:"label,omitempty"`
}

// compatible reports whether this manifest belongs to a store opened
// under key.
func (m manifest) compatible(key string) bool {
	return m.Version >= minManifestVersion && m.Version <= Version && m.Key == key
}

// Health is the store's durability report: what Open found, what repairs
// ran, and what degraded. Exposed by cratd's /statsz so corrupted or
// shrinking durability is visible in monitoring, not just in logs.
type Health struct {
	Entries          int  `json:"entries"`
	Loaded           int  `json:"loaded"`
	SalvagedTail     int  `json:"salvaged_tail"`     // torn final records dropped at Open
	Quarantined      int  `json:"quarantined"`       // corrupt chunks skipped at Open
	QuarantinedBytes int  `json:"quarantined_bytes"` // total bytes in those chunks
	Compactions      int  `json:"compactions"`       // journal rewrites since Open
	AppendErrors     int  `json:"append_errors"`     // Puts whose durable append failed
	MigratedV1       bool `json:"migrated_v1"`       // loaded from a v1 journal.json
	PendingRepair    bool `json:"pending_repair"`    // a repair is queued for the first write
}

// Store is a durable map from result keys to JSON payloads. All methods
// are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	dir     string
	key     string // config hash this store was opened under
	label   string
	fs      faultinject.FS
	entries map[string]json.RawMessage
	loaded  int // entries restored from disk at Open (resume)

	f          faultinject.File // open append handle (nil until first append)
	dupes      int              // superseded records in the on-disk journal
	needRepair bool             // compaction/quarantine/migration queued
	quarantine [][]byte         // corrupt chunks awaiting the quarantine file
	oldFormat  bool             // manifest and/or journal are v1; upgrade on repair
	health     Health
}

// Hash returns a hex SHA-256 of v's canonical JSON encoding — the
// configuration fingerprint stored in the manifest.
func Hash(v any) (string, error) {
	buf, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("checkpoint: hashing config: %w", err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), nil
}

// Open creates or reopens a store at dir on the real filesystem. See
// OpenFS.
func Open(dir, key, label string, resume bool) (*Store, error) {
	return OpenFS(dir, key, label, resume, nil)
}

// OpenFS is Open with an injectable filesystem (nil = the real one; the
// fault-injection seam for chaos tests). key identifies the
// configuration the results are valid for; label is a human-readable tag
// recorded in the manifest (e.g. the architecture name). With resume
// set, an existing journal is loaded — after verifying the manifest's
// key matches, anything else is ErrStale; journal corruption is salvaged
// and quarantined, never fatal. Without resume, any existing journal is
// discarded and the store starts empty.
func OpenFS(dir, key, label string, resume bool, fsys faultinject.FS) (*Store, error) {
	if fsys == nil {
		fsys = faultinject.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, key: key, label: label, fs: fsys, entries: make(map[string]json.RawMessage)}

	manifestPath := filepath.Join(dir, ManifestFilename)
	if resume {
		buf, err := fsys.ReadFile(manifestPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Nothing to resume from: start fresh below.
		case err != nil:
			return nil, err
		default:
			var m manifest
			if err := json.Unmarshal(buf, &m); err != nil {
				return nil, fmt.Errorf("checkpoint: corrupt manifest %s: %w", manifestPath, err)
			}
			if !m.compatible(key) {
				return nil, fmt.Errorf("%w: %s: manifest (version=%d key=%.12s…) does not match current configuration (version=%d key=%.12s…)",
					ErrStale, manifestPath, m.Version, m.Key, Version, key)
			}
			s.oldFormat = m.Version < Version
			if err := s.loadJournal(); err != nil {
				return nil, err
			}
			s.loaded = len(s.entries)
			s.health.Loaded = s.loaded
			s.health.Entries = len(s.entries)
			s.health.PendingRepair = s.needRepair
			return s, nil
		}
	}
	// Fresh store: the caller asserts ownership of the directory, so sweep
	// temp files a killed writer left behind, drop any previous journal
	// (either format) and quarantine, then persist the manifest. Resume
	// opens never sweep — a concurrent resume (even a stale one) must not
	// delete a live writer's in-flight temp file out from under its rename.
	if names, err := fsys.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, n := range names {
			fsys.Remove(n)
		}
	}
	for _, name := range []string{JournalFilename, JournalV1Filename, QuarantineFilename} {
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	buf, err := json.MarshalIndent(manifest{Version: Version, Key: key, Label: label}, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := s.writeAtomic(ManifestFilename, buf); err != nil {
		return nil, fmt.Errorf("checkpoint: initializing manifest %s (config %.12s…): %w", manifestPath, key, err)
	}
	return s, nil
}

// loadJournal restores entries from disk on resume: the v2 journal.log
// when present, else a v1 journal.json. Corruption is salvaged in
// memory and queued for repair — it is never an error; only real I/O
// failures are.
func (s *Store) loadJournal() error {
	data, err := s.fs.ReadFile(filepath.Join(s.dir, JournalFilename))
	switch {
	case err == nil:
		entries, stats, quarantine := decodeJournal(data)
		s.entries = entries
		s.dupes = stats.Duplicates
		s.quarantine = quarantine
		s.health.SalvagedTail = stats.SalvagedTail
		s.health.Quarantined = stats.Quarantined
		s.health.QuarantinedBytes = stats.QuarantinedBytes
		if stats.SalvagedTail > 0 || stats.Quarantined > 0 || s.overGarbageThreshold() || s.oldFormat {
			s.needRepair = true
		}
		return nil
	case !errors.Is(err, os.ErrNotExist):
		return err
	}
	// v1 monolithic journal: read-side migration. A corrupt v1 journal has
	// no record structure to salvage, so the whole file is quarantined and
	// the cache starts cold — loudly (Health), but the store opens.
	v1Path := filepath.Join(s.dir, JournalV1Filename)
	data, err = s.fs.ReadFile(v1Path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if jerr := json.Unmarshal(data, &s.entries); jerr != nil {
		s.entries = make(map[string]json.RawMessage)
		s.quarantine = append(s.quarantine, data)
		s.health.Quarantined++
		s.health.QuarantinedBytes += len(data)
	}
	s.health.MigratedV1 = true
	s.needRepair = true
	return nil
}

// overGarbageThreshold reports whether superseded records justify a
// compaction.
func (s *Store) overGarbageThreshold() bool {
	return s.dupes >= compactMinDuplicates && s.dupes >= len(s.entries)
}

// Get unmarshals the payload stored under key into out, reporting whether
// the key was present.
func (s *Store) Get(key string, out any) (bool, error) {
	s.mu.Lock()
	raw, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("checkpoint: entry %q: %w", key, err)
	}
	return true, nil
}

// Has reports whether key is present without decoding it.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Put records v under key and durably appends it to the journal: one
// record, one fsync, independent of store size. The in-memory entry is
// updated even when the durable append fails (the caller keeps serving;
// Health.AppendErrors counts the degradation) and the error reports why.
func (s *Store) Put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding %q: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, existed := s.entries[key]; existed {
		s.dupes++
	}
	s.entries[key] = raw
	if err := s.persistLocked(key, raw); err != nil {
		s.health.AppendErrors++
		return err
	}
	return nil
}

// persistLocked makes the entry just stored under key durable: a pending
// repair rewrites the whole journal (which includes the entry), the
// normal path appends one record and fsyncs it.
func (s *Store) persistLocked(key string, raw json.RawMessage) error {
	if err := s.checkOwnershipLocked(); err != nil {
		return err
	}
	if s.needRepair {
		return s.repairLocked()
	}
	if s.f == nil {
		if err := s.openAppendLocked(); err != nil {
			return s.journalErr(err)
		}
	}
	rec, err := encodeRecord(key, raw)
	if err != nil {
		return s.journalErr(err)
	}
	if _, err := s.f.Write(rec); err != nil {
		return s.journalErr(err)
	}
	if err := s.f.Sync(); err != nil {
		return s.journalErr(err)
	}
	return nil
}

func (s *Store) journalErr(err error) error {
	return fmt.Errorf("checkpoint: journal %s (config %.12s…): %w",
		filepath.Join(s.dir, JournalFilename), s.key, err)
}

// openAppendLocked opens (creating if needed) the append handle; a newly
// created journal file is made durable with a directory sync.
func (s *Store) openAppendLocked() error {
	path := filepath.Join(s.dir, JournalFilename)
	_, statErr := s.fs.Stat(path)
	created := errors.Is(statErr, os.ErrNotExist)
	f, err := s.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if created {
		if err := s.fs.SyncDir(s.dir); err != nil {
			f.Close()
			return err
		}
	}
	s.f = f
	return nil
}

// repairLocked applies the repairs detected at Open, under the ownership
// check the caller already performed: quarantined chunks are appended to
// the quarantine file, the journal is rewritten compact (atomic temp +
// fsync + rename), and a v1-format store is upgraded (manifest rewritten,
// journal.json removed). Runs at most once per pending-repair state.
func (s *Store) repairLocked() error {
	// Forensics first: corrupt bytes are preserved before the journal
	// rewrite makes them unreachable.
	if len(s.quarantine) > 0 {
		if err := s.appendQuarantineLocked(); err != nil {
			return fmt.Errorf("checkpoint: writing quarantine %s: %w",
				filepath.Join(s.dir, QuarantineFilename), err)
		}
	}
	buf, err := encodeJournal(s.entries)
	if err != nil {
		return s.journalErr(err)
	}
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	if err := s.writeAtomic(JournalFilename, buf); err != nil {
		return fmt.Errorf("checkpoint: compacting journal %s (config %.12s…): %w",
			filepath.Join(s.dir, JournalFilename), s.key, err)
	}
	if s.oldFormat {
		mbuf, err := json.MarshalIndent(manifest{Version: Version, Key: s.key, Label: s.label}, "", "  ")
		if err != nil {
			return err
		}
		if err := s.writeAtomic(ManifestFilename, mbuf); err != nil {
			return fmt.Errorf("checkpoint: upgrading manifest in %s: %w", s.dir, err)
		}
		if err := s.fs.Remove(filepath.Join(s.dir, JournalV1Filename)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		s.oldFormat = false
	}
	s.quarantine = nil
	s.dupes = 0
	s.needRepair = false
	s.health.Compactions++
	s.health.PendingRepair = false
	return nil
}

// appendQuarantineLocked preserves corrupt chunks in the quarantine
// file, each prefixed with a one-line header so forensic inspection can
// tell the chunks apart.
func (s *Store) appendQuarantineLocked() error {
	f, err := s.fs.OpenFile(filepath.Join(s.dir, QuarantineFilename),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, chunk := range s.quarantine {
		if _, err := f.Write([]byte(fmt.Sprintf("--- quarantined %d bytes ---\n", len(chunk)))); err != nil {
			return err
		}
		if _, err := f.Write(chunk); err != nil {
			return err
		}
		if _, err := f.Write([]byte("\n")); err != nil {
			return err
		}
	}
	return f.Sync()
}

// ErrConflict is returned by Put/Flush when the directory's manifest no
// longer belongs to this store: a second writer (e.g. another daemon
// pointed at the same cache directory) re-initialized it since we opened.
var ErrConflict = errors.New("checkpoint: directory owned by another writer")

// checkOwnershipLocked re-reads the manifest before every durable write
// and refuses when another writer has re-initialized the directory.
// Without the check two stores on one directory silently clobber each
// other's journals; with it the loser gets an error naming the path and
// both config hashes, so the misconfiguration is attributable.
func (s *Store) checkOwnershipLocked() error {
	manifestPath := filepath.Join(s.dir, ManifestFilename)
	buf, err := s.fs.ReadFile(manifestPath)
	if err != nil {
		return fmt.Errorf("%w: manifest %s unreadable (our config %.12s…): %v",
			ErrConflict, manifestPath, s.key, err)
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return fmt.Errorf("%w: manifest %s corrupt (our config %.12s…): %v",
			ErrConflict, manifestPath, s.key, err)
	}
	if !m.compatible(s.key) {
		return fmt.Errorf("%w: %s holds key %.12s…, this store's config is %.12s… — is another daemon journaling into the same directory?",
			ErrConflict, manifestPath, m.Key, s.key)
	}
	return nil
}

// Count returns the number of persisted entries.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Loaded returns how many entries were restored from disk at Open — the
// resume inheritance, as opposed to entries added this session.
func (s *Store) Loaded() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loaded
}

// Health returns the durability report.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.health
	h.Entries = len(s.entries)
	h.Loaded = s.loaded
	h.PendingRepair = s.needRepair
	return h
}

// Keys returns the persisted keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Flush is the durability barrier: it performs any pending repair and
// fsyncs the journal. Puts already persist eagerly, so Flush only
// matters as a final barrier before reporting "everything survived".
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkOwnershipLocked(); err != nil {
		return err
	}
	if s.needRepair {
		return s.repairLocked()
	}
	if s.f == nil {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return s.journalErr(err)
	}
	return nil
}

// Close releases the append handle (after a final fsync). The store must
// not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// writeAtomic writes name in the store directory via temp file + fsync +
// rename + dir fsync: the destination is either untouched or fully
// replaced.
func (s *Store) writeAtomic(name string, data []byte) error {
	tmp, err := s.fs.CreateTemp(s.dir, name+".*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer s.fs.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmpName, filepath.Join(s.dir, name)); err != nil {
		return err
	}
	return s.fs.SyncDir(s.dir)
}
