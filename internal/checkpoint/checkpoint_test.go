package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type payload struct {
	Cycles int64   `json:"cycles"`
	Rate   float64 `json:"rate"`
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "cfg-a", "fermi", false)
	if err != nil {
		t.Fatal(err)
	}
	want := payload{Cycles: 12345, Rate: 0.62}
	if err := s.Put("mode/CFD/CRAT", want); err != nil {
		t.Fatal(err)
	}

	// A fresh resume sees the entry byte-exactly.
	r, err := Open(dir, "cfg-a", "fermi", true)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	ok, err := r.Get("mode/CFD/CRAT", &got)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v; want hit", ok, err)
	}
	if got != want {
		t.Errorf("round trip %+v != %+v", got, want)
	}
	if r.Loaded() != 1 || r.Count() != 1 {
		t.Errorf("Loaded=%d Count=%d, want 1/1", r.Loaded(), r.Count())
	}
}

func TestStaleKeyRejected(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, "cfg-a", "fermi", false); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "cfg-b", "fermi", true); !errors.Is(err, ErrStale) {
		t.Errorf("resume under a different config key: err = %v, want ErrStale", err)
	}
	// Opening fresh (no resume) under the new key is allowed and rewrites
	// the manifest.
	s, err := Open(dir, "cfg-b", "fermi", false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 {
		t.Errorf("fresh open kept %d stale entries", s.Count())
	}
	if _, err := Open(dir, "cfg-b", "fermi", true); err != nil {
		t.Errorf("resume after fresh re-key: %v", err)
	}
}

func TestFreshOpenDiscardsJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "k", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", payload{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, "k", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 0 || s2.Has("a") {
		t.Error("fresh open kept old journal entries")
	}
}

func TestResumeWithoutManifestStartsFresh(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "k", "", true)
	if err != nil {
		t.Fatalf("resume of an empty dir must succeed: %v", err)
	}
	if s.Count() != 0 {
		t.Errorf("Count = %d", s.Count())
	}
	// The manifest must now exist so a later resume validates against it.
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Errorf("manifest not created: %v", err)
	}
}

func TestLeftoverTempFilesSwept(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, "k", "", false); err != nil {
		t.Fatal(err)
	}
	// Simulate a writer killed mid-write.
	junk := filepath.Join(dir, "journal.json.123.tmp")
	if err := os.WriteFile(junk, []byte("{partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Resume opens are read-only: they must leave the temp file alone (it
	// could belong to a live writer mid-rename).
	if _, err := Open(dir, "k", "", true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(junk); err != nil {
		t.Errorf("resume open disturbed a temp file: %v", err)
	}
	// A fresh open asserts ownership and sweeps it.
	if _, err := Open(dir, "k", "", false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(junk); !errors.Is(err, os.ErrNotExist) {
		t.Error("leftover temp file not swept on fresh open")
	}
	// And no temp files linger after normal operation either.
	s, err := Open(dir, "k", "", true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprint("key", i), payload{Cycles: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Errorf("temp files linger after Puts: %v", tmps)
	}
}

func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "k", "", false)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Put(fmt.Sprint("key/", i), payload{Cycles: int64(i)}); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	r, err := Open(dir, "k", "", true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 16 {
		t.Errorf("resumed %d entries, want 16", r.Count())
	}
	keys := r.Keys()
	if len(keys) != 16 || !strings.HasPrefix(keys[0], "key/") {
		t.Errorf("Keys() = %v", keys)
	}
}

func TestHashStability(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	h1, err := Hash(cfg{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := Hash(cfg{1, "x"})
	h3, _ := Hash(cfg{2, "x"})
	if h1 != h2 {
		t.Error("hash not deterministic")
	}
	if h1 == h3 {
		t.Error("hash ignores field changes")
	}
	if len(h1) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(h1))
	}
}

// TestConcurrentResumeStale races live-key resumes, stale-key resumes, and
// writer Puts against one store directory: every stale resume must be
// rejected with ErrStale (never a partially loaded store), every live
// resume must succeed and observe an uncorrupted journal, and after the
// dust settles exactly one journal — the live session's, with every Put —
// survives.
func TestConcurrentResumeStale(t *testing.T) {
	dir := t.TempDir()
	live, err := Open(dir, "cfg-a", "fermi", false)
	if err != nil {
		t.Fatal(err)
	}
	const pre = 8
	for i := 0; i < pre; i++ {
		if err := live.Put(fmt.Sprint("pre/", i), payload{Cycles: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	const racers = 8
	staleErrs := make([]error, racers)
	liveErrs := make([]error, racers)
	liveCounts := make([]int, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(3)
		go func(i int) {
			defer wg.Done()
			if err := live.Put(fmt.Sprint("more/", i), payload{Cycles: int64(i)}); err != nil {
				t.Errorf("put more/%d: %v", i, err)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			_, staleErrs[i] = Open(dir, "cfg-b", "kepler", true)
		}(i)
		go func(i int) {
			defer wg.Done()
			s, err := Open(dir, "cfg-a", "fermi", true)
			liveErrs[i] = err
			if err == nil {
				liveCounts[i] = s.Count()
			}
		}(i)
	}
	wg.Wait()

	for i, err := range staleErrs {
		if !errors.Is(err, ErrStale) {
			t.Errorf("stale resume %d: err = %v, want ErrStale", i, err)
		}
	}
	for i, err := range liveErrs {
		if err != nil {
			t.Errorf("live resume %d: %v", i, err)
			continue
		}
		if liveCounts[i] < pre {
			t.Errorf("live resume %d saw %d entries, want >= %d (the pre-race Puts)", i, liveCounts[i], pre)
		}
	}

	// Exactly one journal survives: a final live-key resume sees every Put,
	// and the stale key still cannot attach to it.
	r, err := Open(dir, "cfg-a", "fermi", true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != pre+racers {
		t.Errorf("surviving journal has %d entries, want %d", r.Count(), pre+racers)
	}
	if _, err := Open(dir, "cfg-b", "kepler", true); !errors.Is(err, ErrStale) {
		t.Errorf("stale key resumed against the surviving journal: err = %v", err)
	}
}

// TestDoubleOpenConflict is the two-daemons-one-directory scenario: a
// second store fresh-opened on the same directory under a different config
// takes ownership; the first store's next Put must fail with ErrConflict,
// naming the manifest path and both config hashes, instead of silently
// clobbering the new owner's journal.
func TestDoubleOpenConflict(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, "cfg-a", "daemon-a", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("x", payload{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	// Daemon B points at the same directory and re-initializes it.
	b, err := Open(dir, "cfg-b", "daemon-b", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("y", payload{Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	// Daemon A no longer owns the directory: its flush must refuse.
	err = a.Put("z", payload{Cycles: 3})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("Put after hijack: err = %v, want ErrConflict", err)
	}
	for _, want := range []string{dir, "cfg-a", "cfg-b"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("conflict error %q does not mention %q", err, want)
		}
	}
	// B's journal must be intact: A's refused flush wrote nothing.
	r, err := Open(dir, "cfg-b", "daemon-b", true)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has("y") || r.Has("z") || r.Has("x") {
		t.Errorf("surviving journal keys = %v, want exactly [y]", r.Keys())
	}
}

// TestStaleErrorNamesManifestPath: attribution for the resume-mismatch
// case — the error must say which manifest file rejected the resume.
func TestStaleErrorNamesManifestPath(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, "cfg-a", "", false); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, "cfg-b", "", true)
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	if !strings.Contains(err.Error(), filepath.Join(dir, "manifest.json")) {
		t.Errorf("stale error %q does not name the manifest path", err)
	}
}

// TestFlushErrorNamesJournalAndConfig: when the directory disappears under
// a live writer, the Put error must name the journal path and the store's
// config hash so the failure is attributable to the right daemon/config.
func TestFlushErrorNamesJournalAndConfig(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Open(dir, "cfg-attrib", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", payload{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	err = s.Put("b", payload{Cycles: 2})
	if err == nil {
		t.Fatal("Put into a removed directory succeeded")
	}
	for _, want := range []string{dir, "cfg-attrib"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("flush error %q does not mention %q", err, want)
		}
	}
}
