package checkpoint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crat/internal/faultinject"
)

// seedStore creates a store at dir, writes n entries, flushes, and
// closes it.
func seedStore(t *testing.T, dir string, n int) {
	t.Helper()
	st, err := Open(dir, "key", "test", false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := st.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	st.Close()
}

func key(i int) string { return "k" + strings.Repeat("0", 2) + string(rune('a'+i%26)) + itoa(i) }
func val(i int) map[string]int {
	return map[string]int{"i": i, "sq": i * i}
}

func itoa(i int) string {
	b, _ := json.Marshal(i)
	return string(b)
}

func journalPath(dir string) string { return filepath.Join(dir, JournalFilename) }

// TestTornTailSalvage: a crash mid-append leaves a partial final record;
// resume drops it and keeps every complete record — the acceptance
// criterion's first half.
func TestTornTailSalvage(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 10)

	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journalPath(dir), data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir, "key", "test", true)
	if err != nil {
		t.Fatalf("torn tail must not fail the open: %v", err)
	}
	if st.Count() != 9 {
		t.Fatalf("salvaged %d entries, want 9 (all but the torn final record)", st.Count())
	}
	h := st.Health()
	if h.SalvagedTail != 1 || h.Quarantined != 0 || !h.PendingRepair {
		t.Errorf("health = %+v, want SalvagedTail=1 Quarantined=0 PendingRepair=true", h)
	}
	// The torn record's key is gone; the other nine decode intact.
	for i := 0; i < 9; i++ {
		var got map[string]int
		ok, err := st.Get(key(i), &got)
		if err != nil || !ok || got["sq"] != i*i {
			t.Fatalf("entry %d: ok=%t err=%v got=%v", i, ok, err, got)
		}
	}
	if st.Has(key(9)) {
		t.Error("the torn final record survived; it must be dropped")
	}
}

// TestBitFlipQuarantine: a flipped byte mid-journal quarantines exactly
// that record; every other entry survives and the next resume is clean —
// the acceptance criterion's second half.
func TestBitFlipQuarantine(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 10)

	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the 4th record: find its frame by
	// decoding record sizes.
	pos := 0
	for i := 0; i < 3; i++ {
		_, _, size := parseRecord(data[pos:])
		pos += size
	}
	data[pos+recordHeaderLen+2] ^= 0x40
	if err := os.WriteFile(journalPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir, "key", "test", true)
	if err != nil {
		t.Fatalf("bit flip must not fail the open: %v", err)
	}
	if st.Count() != 9 {
		t.Fatalf("salvaged %d entries, want 9 (all but the flipped record)", st.Count())
	}
	h := st.Health()
	if h.Quarantined != 1 || h.SalvagedTail != 0 || h.QuarantinedBytes == 0 {
		t.Errorf("health = %+v, want Quarantined=1 SalvagedTail=0", h)
	}
	if st.Has(key(3)) {
		t.Error("the corrupted record decoded anyway; CRC must reject it")
	}

	// First write performs the repair: corrupt bytes land in the
	// quarantine file and the journal is rewritten clean.
	if err := st.Put("fresh", 42); err != nil {
		t.Fatal(err)
	}
	q, err := os.ReadFile(filepath.Join(dir, QuarantineFilename))
	if err != nil || !bytes.Contains(q, []byte("quarantined")) {
		t.Fatalf("quarantine file after repair: %v (%d bytes)", err, len(q))
	}
	if h := st.Health(); h.Compactions != 1 || h.PendingRepair {
		t.Errorf("post-repair health = %+v, want Compactions=1 PendingRepair=false", h)
	}
	st.Close()

	// Subsequent resume: clean journal, full contents, zero salvage.
	st2, err := Open(dir, "key", "test", true)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Count() != 10 { // 9 salvaged + "fresh"
		t.Fatalf("post-repair resume count = %d, want 10", st2.Count())
	}
	if h := st2.Health(); h.Quarantined != 0 || h.SalvagedTail != 0 || h.PendingRepair {
		t.Errorf("post-repair resume health = %+v, want clean", h)
	}
}

// TestResumeDoesNotMutateDisk: a resume open of a corrupt journal defers
// every repair — the bytes on disk are untouched until the first write,
// so concurrent read-only resumes can't pull the journal out from under
// a live writer.
func TestResumeDoesNotMutateDisk(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir, 5)
	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-3]
	if err := os.WriteFile(journalPath(dir), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, "key", "test", true); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, torn) {
		t.Error("resume open rewrote the journal; repair must wait for the first write")
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineFilename)); !os.IsNotExist(err) {
		t.Error("resume open created the quarantine file; that is a write-path action")
	}
}

// TestAppendAfterTornTailStillDecodes: a writer that resumes over an
// unrepaired torn tail and appends must not render its appends
// unreadable — the decoder's magic resync recovers them.
func TestAppendAfterTornTailStillDecodes(t *testing.T) {
	entries := map[string]json.RawMessage{"a": json.RawMessage(`1`), "b": json.RawMessage(`2`)}
	img, err := encodeJournal(entries)
	if err != nil {
		t.Fatal(err)
	}
	torn := img[:len(img)-3]
	rec, err := encodeRecord("c", json.RawMessage(`3`))
	if err != nil {
		t.Fatal(err)
	}
	got, stats, _ := decodeJournal(append(append([]byte{}, torn...), rec...))
	if len(got) != 2 || string(got["a"]) != `1` || string(got["c"]) != `3` {
		t.Fatalf("decoded %v, want a and c to survive around the torn middle", got)
	}
	if stats.Quarantined != 1 {
		t.Errorf("stats = %+v, want the torn middle quarantined", stats)
	}
}

// TestCompactionThreshold: enough superseded records trigger a rewrite
// on the next session's first write, shrinking the journal.
func TestCompactionThreshold(t *testing.T) {
	old := compactMinDuplicates
	compactMinDuplicates = 8
	defer func() { compactMinDuplicates = old }()

	dir := t.TempDir()
	st, err := Open(dir, "key", "test", false)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if err := st.Put(key(i), val(i+round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Close()
	bloated, _ := os.Stat(journalPath(dir))

	st2, err := Open(dir, "key", "test", true)
	if err != nil {
		t.Fatal(err)
	}
	if h := st2.Health(); !h.PendingRepair {
		t.Fatalf("health = %+v, want compaction pending past the garbage threshold", h)
	}
	if err := st2.Put("x", 1); err != nil {
		t.Fatal(err)
	}
	compacted, _ := os.Stat(journalPath(dir))
	if compacted.Size() >= bloated.Size() {
		t.Errorf("journal %d bytes after compaction, was %d — it must shrink", compacted.Size(), bloated.Size())
	}
	if h := st2.Health(); h.Compactions != 1 {
		t.Errorf("health = %+v, want Compactions=1", h)
	}
	st2.Close()

	st3, err := Open(dir, "key", "test", true)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Count() != 4 {
		t.Errorf("count after compaction = %d, want 4", st3.Count())
	}
	var got map[string]int
	if ok, _ := st3.Get(key(1), &got); !ok || got["i"] != 10 {
		t.Errorf("entry 1 after compaction = %v (ok=%t), want latest round's value", got, ok)
	}
}

// TestV1Migration: a store written by the v1 code (monolithic
// journal.json, manifest version 1) resumes transparently and is
// rewritten in v2 format on the first write.
func TestV1Migration(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	man, _ := json.Marshal(map[string]any{"version": 1, "key": "key", "label": "test"})
	if err := os.WriteFile(filepath.Join(dir, ManifestFilename), man, 0o644); err != nil {
		t.Fatal(err)
	}
	v1 := map[string]json.RawMessage{"a": json.RawMessage(`{"x":1}`), "b": json.RawMessage(`{"x":2}`)}
	blob, _ := json.MarshalIndent(v1, "", "  ")
	if err := os.WriteFile(filepath.Join(dir, JournalV1Filename), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir, "key", "test", true)
	if err != nil {
		t.Fatalf("v1 store must resume transparently: %v", err)
	}
	if st.Count() != 2 || st.Loaded() != 2 {
		t.Fatalf("loaded %d/%d entries from v1 journal, want 2/2", st.Count(), st.Loaded())
	}
	h := st.Health()
	if !h.MigratedV1 || !h.PendingRepair {
		t.Errorf("health = %+v, want MigratedV1=true PendingRepair=true", h)
	}

	// First write migrates: v2 journal appears, v1 journal and manifest
	// are upgraded.
	if err := st.Put("c", map[string]int{"x": 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(journalPath(dir)); err != nil {
		t.Errorf("journal.log missing after migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, JournalV1Filename)); !os.IsNotExist(err) {
		t.Error("journal.json survived migration; it must be removed")
	}
	mbuf, _ := os.ReadFile(filepath.Join(dir, ManifestFilename))
	var m struct {
		Version int `json:"version"`
	}
	json.Unmarshal(mbuf, &m)
	if m.Version != Version {
		t.Errorf("manifest version after migration = %d, want %d", m.Version, Version)
	}
	st.Close()

	st2, err := Open(dir, "key", "test", true)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Count() != 3 {
		t.Errorf("post-migration resume count = %d, want 3", st2.Count())
	}
	if h := st2.Health(); h.MigratedV1 || h.PendingRepair {
		t.Errorf("post-migration resume health = %+v, want clean v2", h)
	}
}

// TestCorruptV1Quarantined: a corrupt v1 journal cannot be partially
// salvaged (no record structure), so the whole file is quarantined and
// the store opens cold — loudly, not fatally.
func TestCorruptV1Quarantined(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	man, _ := json.Marshal(map[string]any{"version": 1, "key": "key"})
	os.WriteFile(filepath.Join(dir, ManifestFilename), man, 0o644)
	os.WriteFile(filepath.Join(dir, JournalV1Filename), []byte(`{"a": {"x":`), 0o644)

	st, err := Open(dir, "key", "", true)
	if err != nil {
		t.Fatalf("corrupt v1 journal must not fail the open: %v", err)
	}
	if st.Count() != 0 {
		t.Errorf("count = %d, want 0 (cold cache)", st.Count())
	}
	if h := st.Health(); h.Quarantined != 1 || !h.PendingRepair {
		t.Errorf("health = %+v, want Quarantined=1 PendingRepair=true", h)
	}
	if err := st.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineFilename)); err != nil {
		t.Errorf("quarantine file missing after repair: %v", err)
	}
}

// TestPutSurvivesFsyncFailure: an injected fsync failure surfaces the
// error (and counts in Health) but the in-memory entry keeps serving.
func TestPutSurvivesFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	fsys := faultinject.NewFS(faultinject.OS(), faultinject.MustParse("fsync-fail:nth=4"))
	st, err := OpenFS(dir, "key", "test", false, fsys)
	if err != nil {
		t.Fatal(err) // manifest write consumes syncs 1-2, journal create sync 3
	}
	if err := st.Put("a", 1); err == nil {
		t.Fatal("Put under injected fsync failure returned nil")
	}
	if !st.Has("a") {
		t.Error("entry dropped from memory on append failure; it must keep serving")
	}
	if h := st.Health(); h.AppendErrors != 1 {
		t.Errorf("health = %+v, want AppendErrors=1", h)
	}
	if err := st.Put("b", 2); err != nil {
		t.Errorf("Put after the fault window: %v", err)
	}
}

// TestTornWriteRecovered: end-to-end fault loop — a torn append (power
// cut) followed by a crash-resume salvages everything before the tear.
func TestTornWriteRecovered(t *testing.T) {
	dir := t.TempDir()
	// Journal appends are writes 2+ (manifest temp file is write 1).
	fsys := faultinject.NewFS(faultinject.OS(), faultinject.MustParse("torn-write:nth=4,keep=9"))
	st, err := OpenFS(dir, "key", "test", false, fsys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Put(key(i), val(i)); err != nil {
			t.Fatal(err) // the tear is invisible to the writer
		}
	}
	// No Close: the process "died" before noticing.

	st2, err := Open(dir, "key", "test", true)
	if err != nil {
		t.Fatal(err)
	}
	h := st2.Health()
	if h.SalvagedTail+h.Quarantined == 0 {
		t.Fatalf("health = %+v, want the torn record detected", h)
	}
	if st2.Count() < 2 {
		t.Errorf("count = %d, want the records before the tear salvaged", st2.Count())
	}
	var got map[string]int
	if ok, _ := st2.Get(key(0), &got); !ok || got["sq"] != 0 {
		t.Errorf("entry 0 = %v (ok=%t), want intact", got, ok)
	}
}

// TestDecodeGarbageOnly: a journal of pure garbage yields zero entries,
// everything quarantined, no error, no panic.
func TestDecodeGarbageOnly(t *testing.T) {
	entries, stats, quarantine := decodeJournal(bytes.Repeat([]byte{0xde, 0xad}, 200))
	if len(entries) != 0 || stats.Quarantined != 1 || len(quarantine) != 1 || stats.QuarantinedBytes != 400 {
		t.Errorf("entries=%d stats=%+v chunks=%d, want everything in one quarantined chunk",
			len(entries), stats, len(quarantine))
	}
}
