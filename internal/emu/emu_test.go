package emu

import (
	"errors"
	"testing"

	"crat/internal/ptx"
	"crat/internal/sem"
)

// scaleKernel builds out[i] = in[i]*2 + 1 over one element per thread.
func scaleKernel() *ptx.Kernel {
	b := ptx.NewBuilder("scale")
	b.Param("in", ptx.U64).Param("out", ptx.U64)
	idx := b.GlobalIndex()
	pin := b.Reg(ptx.U64)
	pout := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, pin, "in")
	b.LdParam(ptx.U64, pout, "out")
	src := b.AddrOf(pin, idx, 4)
	dst := b.AddrOf(pout, idx, 4)
	v := b.Reg(ptx.U32)
	r := b.Reg(ptx.U32)
	b.Ld(ptx.SpaceGlobal, ptx.U32, v, ptx.MemReg(src, 0))
	b.Mad(ptx.U32, r, ptx.R(v), ptx.Imm(2), ptx.Imm(1))
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(dst, 0), ptx.R(r))
	b.Exit()
	return b.Kernel()
}

func TestScaleKernel(t *testing.T) {
	k := scaleKernel()
	grid, block := 3, 64
	n := grid * block
	mem := sem.NewMemory()
	in := mem.Alloc(int64(4 * n))
	out := mem.Alloc(int64(4 * n))
	for i := 0; i < n; i++ {
		mem.WriteUint32(in+uint64(4*i), uint32(i))
	}
	res, err := Run(Launch{Kernel: k, Grid: grid, Block: block, Params: []uint64{in, out}}, mem)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		got := mem.ReadUint32(out + uint64(4*i))
		if want := uint32(i)*2 + 1; got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
	if res.ThreadInsts == 0 || res.WarpInsts == 0 {
		t.Fatalf("expected non-zero instruction counts, got %+v", res)
	}
	st, ok := res.LastStore[out]
	if !ok {
		t.Fatalf("no last-store record for out[0]")
	}
	if st.Value != 1 || st.Block != 0 || st.Lane != 0 {
		t.Fatalf("unexpected store provenance %+v", st)
	}
}

// divergeKernel writes tid*3 for even threads and tid+100 for odd ones,
// exercising the SIMT divergence stack.
func divergeKernel() *ptx.Kernel {
	b := ptx.NewBuilder("diverge")
	b.Param("out", ptx.U64)
	idx := b.GlobalIndex()
	pout := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, pout, "out")
	dst := b.AddrOf(pout, idx, 4)
	bit := b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	r := b.Reg(ptx.U32)
	b.And(ptx.U32, bit, ptx.R(idx), ptx.Imm(1))
	b.Setp(ptx.CmpEq, ptx.U32, p, ptx.R(bit), ptx.Imm(0))
	b.BraIf(p, false, "even")
	b.Add(ptx.U32, r, ptx.R(idx), ptx.Imm(100))
	b.Bra("store")
	b.Label("even").Mul(ptx.U32, r, ptx.R(idx), ptx.Imm(3))
	b.Label("store").St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(dst, 0), ptx.R(r))
	b.Exit()
	return b.Kernel()
}

func TestDivergence(t *testing.T) {
	k := divergeKernel()
	grid, block := 2, 32
	n := grid * block
	mem := sem.NewMemory()
	out := mem.Alloc(int64(4 * n))
	if _, err := Run(Launch{Kernel: k, Grid: grid, Block: block, Params: []uint64{out}}, mem); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		got := mem.ReadUint32(out + uint64(4*i))
		want := uint32(i) * 3
		if i%2 == 1 {
			want = uint32(i) + 100
		}
		if got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// reverseKernel reverses a block's elements through shared memory with a
// barrier between the fill and drain phases — wrong barrier handling (or a
// thread-serial executor) cannot produce the right answer.
func reverseKernel(block int) *ptx.Kernel {
	b := ptx.NewBuilder("reverse")
	b.Param("in", ptx.U64).Param("out", ptx.U64)
	b.SharedArray("buf", int64(4*block))
	idx := b.GlobalIndex()
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	pin := b.Reg(ptx.U64)
	pout := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, pin, "in")
	b.LdParam(ptx.U64, pout, "out")
	src := b.AddrOf(pin, idx, 4)
	dst := b.AddrOf(pout, idx, 4)
	v := b.Reg(ptx.U32)
	soff := b.Reg(ptx.U32)
	b.Ld(ptx.SpaceGlobal, ptx.U32, v, ptx.MemReg(src, 0))
	b.Shl(ptx.U32, soff, ptx.R(tid), ptx.Imm(2))
	b.St(ptx.SpaceShared, ptx.U32, ptx.MemReg(soff, 0), ptx.R(v))
	b.Bar()
	rtid := b.Reg(ptx.U32)
	roff := b.Reg(ptx.U32)
	rv := b.Reg(ptx.U32)
	b.Sub(ptx.U32, rtid, ptx.Imm(int64(block-1)), ptx.R(tid))
	b.Shl(ptx.U32, roff, ptx.R(rtid), ptx.Imm(2))
	b.Ld(ptx.SpaceShared, ptx.U32, rv, ptx.MemReg(roff, 0))
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(dst, 0), ptx.R(rv))
	b.Exit()
	return b.Kernel()
}

func TestBarrierReverse(t *testing.T) {
	block := 128 // 4 warps, so the barrier actually synchronizes
	k := reverseKernel(block)
	mem := sem.NewMemory()
	in := mem.Alloc(int64(4 * block))
	out := mem.Alloc(int64(4 * block))
	for i := 0; i < block; i++ {
		mem.WriteUint32(in+uint64(4*i), uint32(1000+i))
	}
	if _, err := Run(Launch{Kernel: k, Grid: 1, Block: block, Params: []uint64{in, out}}, mem); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < block; i++ {
		got := mem.ReadUint32(out + uint64(4*i))
		if want := uint32(1000 + block - 1 - i); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestNullGlobalFault(t *testing.T) {
	b := ptx.NewBuilder("null")
	b.Param("out", ptx.U64)
	z := b.Reg(ptx.U64)
	b.Mov(ptx.U64, z, ptx.Imm(8))
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(z, 0), ptx.Imm(1))
	b.Exit()
	mem := sem.NewMemory()
	_, err := Run(Launch{Kernel: b.Kernel(), Grid: 1, Block: 1, Params: []uint64{0}}, mem)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultNullGlobal {
		t.Fatalf("expected null-global fault, got %v", err)
	}
}

func TestLocalOOBFault(t *testing.T) {
	b := ptx.NewBuilder("oob")
	b.LocalArray("frame", 16)
	off := b.Reg(ptx.U64)
	b.Mov(ptx.U64, off, ptx.Imm(64))
	b.St(ptx.SpaceLocal, ptx.U32, ptx.MemReg(off, 0), ptx.Imm(7))
	b.Exit()
	mem := sem.NewMemory()
	_, err := Run(Launch{Kernel: b.Kernel(), Grid: 1, Block: 1}, mem)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultMemOOB {
		t.Fatalf("expected mem-oob fault, got %v", err)
	}
}

func TestLivelockBudget(t *testing.T) {
	b := ptx.NewBuilder("spin")
	b.Label("top").Bra("top")
	b.Exit()
	mem := sem.NewMemory()
	_, err := Run(Launch{Kernel: b.Kernel(), Grid: 1, Block: 32, MaxWarpInsts: 1000}, mem)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultLivelock {
		t.Fatalf("expected livelock fault, got %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	k := divergeKernel()
	run := func() *sem.Memory {
		mem := sem.NewMemory()
		out := mem.Alloc(4 * 64)
		if _, err := Run(Launch{Kernel: k, Grid: 2, Block: 32, Params: []uint64{out}}, mem); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return mem
	}
	a, b := run(), run()
	if !a.Equal(b) {
		addr, va, vb, _ := a.DiffFirst(b)
		t.Fatalf("two identical runs diverged at %#x: %d vs %d", addr, va, vb)
	}
}
