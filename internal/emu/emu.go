// Package emu is a fast, timing-free functional PTX emulator. It executes a
// kernel launch warp-by-warp with the same SIMT reconvergence discipline
// (immediate post-dominator stacks from internal/cfg) and the same
// instruction semantics (internal/sem) as the cycle-level simulator, but
// with no caches, scoreboards, or scheduling — only architectural state.
// Both engines interpret the same pre-decoded micro-op stream from
// internal/passes (operand kinds resolved, immediates encoded, symbols
// folded once per kernel); the emulator reads the scalar fields per lane
// because its warps may be up to 64 lanes wide, where the simulator runs
// 32-lane register planes. The differential oracle (internal/oracle) runs
// kernel variants through it and compares final global memory, so
// correctness here is judged purely on execution order and the rewrites
// under test, never on timing.
package emu

import (
	"fmt"

	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/sem"
)

// Launch describes one functional kernel execution.
type Launch struct {
	Kernel *ptx.Kernel
	// Grid is the number of thread blocks; Block the threads per block.
	Grid, Block int
	// Params holds one raw value per kernel parameter (pointers as
	// addresses in the supplied Memory, scalars as their bit patterns).
	Params []uint64
	// WarpSize is the SIMT width (0 = 32). It only affects %laneid/%warpid
	// and barrier arrival granularity, not results of well-formed kernels.
	WarpSize int
	// MaxWarpInsts bounds total executed warp instructions before the
	// emulator declares a livelock (0 = DefaultMaxWarpInsts). A functional
	// emulator has no cycle clock, so a step budget is its watchdog.
	MaxWarpInsts int64
}

// DefaultMaxWarpInsts is the default livelock budget. Seed workloads run in
// the tens of thousands of warp instructions; 64M leaves three orders of
// magnitude of headroom while still terminating a runaway loop quickly.
const DefaultMaxWarpInsts = 64 << 20

// FaultKind classifies functional-execution failures.
type FaultKind int

const (
	// FaultExec is a lane-level evaluation error (unsupported op/type).
	FaultExec FaultKind = iota
	// FaultMemOOB is a local/shared access outside the declared segment.
	FaultMemOOB
	// FaultNullGlobal is a global access inside the reserved null page.
	FaultNullGlobal
	// FaultLivelock means the warp-instruction budget was exhausted.
	FaultLivelock
)

func (k FaultKind) String() string {
	switch k {
	case FaultExec:
		return "exec"
	case FaultMemOOB:
		return "mem-oob"
	case FaultNullGlobal:
		return "null-global"
	case FaultLivelock:
		return "livelock"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is a structured functional-execution failure with the location of
// the offending lane.
type Fault struct {
	Kind                  FaultKind
	PC, Block, Warp, Lane int
	Space                 ptx.Space
	Addr                  uint64
	Size                  int
	Limit                 int64
	Detail                string
	Err                   error
}

func (f *Fault) Error() string {
	msg := fmt.Sprintf("emu: %v at pc=%d block=%d warp=%d lane=%d", f.Kind, f.PC, f.Block, f.Warp, f.Lane)
	if f.Kind == FaultMemOOB || f.Kind == FaultNullGlobal {
		msg += fmt.Sprintf(" %v addr=%#x size=%d limit=%d", f.Space, f.Addr, f.Size, f.Limit)
	}
	if f.Detail != "" {
		msg += ": " + f.Detail
	}
	if f.Err != nil {
		msg += ": " + f.Err.Error()
	}
	return msg
}

func (f *Fault) Unwrap() error { return f.Err }

// Store records the provenance of the last write to a global byte: which
// instruction, from where, wrote what. The oracle uses it to localize a
// memory divergence to the instruction that produced it.
type Store struct {
	PC, Block, Warp, Lane int
	Value                 uint64
	Size                  int
}

// Result summarizes a completed (or faulted) execution.
type Result struct {
	// ThreadInsts counts executed thread instructions (guarded-off lanes
	// excluded) — a cheap execution fingerprint.
	ThreadInsts int64
	// WarpInsts counts executed warp instructions.
	WarpInsts int64
	// LastStore maps each written global byte address to the provenance of
	// its final write.
	LastStore map[uint64]Store
}

// analyze validates the kernel and fetches its micro-op stream and
// branch-target/reconvergence summary from the shared analysis registry
// (internal/passes) — the same memoized substrate the cycle-level simulator
// uses, so a kernel analyzed by either executor is never re-analyzed by the
// other.
func analyze(k *ptx.Kernel) (*passes.KernelAnalyses, error) {
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("emu: %w", err)
	}
	return passes.Shared(k)
}

// simtEntry mirrors the simulator's divergence stack entries.
type simtEntry struct {
	pc   int
	rpc  int
	mask uint64
}

type thread struct {
	regs  []uint64
	local []byte
	tid   int
}

type warp struct {
	id      int
	lanes   []*thread
	stack   []simtEntry
	done    bool
	barrier bool
}

// machine is the per-launch execution state.
type machine struct {
	launch     Launch
	kernel     *ptx.Kernel
	an         *passes.KernelAnalyses
	prog       []passes.MicroOp // the shared pre-decoded stream (an.Micro.Ops)
	mem        *sem.Memory
	paramBlock []byte
	warpSize   int
	budget     int64

	blockID   int
	shared    []byte
	warps     []*warp
	liveWarps int
	arrived   int

	res   Result
	fault *Fault
}

// nullPageBytes matches the simulator's reserved low global region:
// accesses under it indicate an uninitialized or corrupted pointer.
const nullPageBytes = 4096

// Run executes the launch to completion against mem. Global-memory effects
// are applied in place; the returned Result carries execution counters and
// last-store provenance. Failures surface as a *Fault.
func Run(l Launch, mem *sem.Memory) (*Result, error) {
	k := l.Kernel
	if k == nil {
		return nil, fmt.Errorf("emu: nil kernel")
	}
	an, err := analyze(k)
	if err != nil {
		return nil, err
	}
	if len(l.Params) != len(k.Params) {
		return nil, fmt.Errorf("emu: %d param values for %d params", len(l.Params), len(k.Params))
	}
	if l.Grid <= 0 || l.Block <= 0 {
		return nil, fmt.Errorf("emu: grid=%d block=%d must be positive", l.Grid, l.Block)
	}
	ws := l.WarpSize
	if ws <= 0 {
		ws = 32
	}
	if ws > 64 {
		return nil, fmt.Errorf("emu: warp size %d exceeds 64-lane mask", ws)
	}
	budget := l.MaxWarpInsts
	if budget <= 0 {
		budget = DefaultMaxWarpInsts
	}
	m := &machine{
		launch:     l,
		kernel:     k,
		an:         an,
		prog:       an.Micro.Ops,
		mem:        mem,
		paramBlock: buildParamBlock(k, l.Params),
		warpSize:   ws,
		budget:     budget,
	}
	m.res.LastStore = make(map[uint64]Store)

	// Blocks are independent (no inter-block synchronization in the model),
	// so they run sequentially and deterministically.
	for b := 0; b < l.Grid; b++ {
		m.runBlock(b)
		if m.fault != nil {
			return &m.res, m.fault
		}
	}
	return &m.res, nil
}

func buildParamBlock(k *ptx.Kernel, vals []uint64) []byte {
	size := int64(0)
	for _, p := range k.Params {
		off, _ := k.ParamOffset(p.Name)
		end := off + int64(p.Type.Bytes())
		if end > size {
			size = end
		}
	}
	out := make([]byte, size)
	for i, p := range k.Params {
		off, _ := k.ParamOffset(p.Name)
		v := vals[i]
		for b := 0; b < p.Type.Bytes(); b++ {
			out[off+int64(b)] = byte(v >> (8 * b))
		}
	}
	return out
}

// runBlock sets up one thread block and drives its warps round-robin. Each
// warp runs until it exits or parks at a barrier; the barrier releases once
// every live warp arrives, matching the simulator's per-warp arrival
// semantics (a divergent warp still arrives exactly once).
func (m *machine) runBlock(id int) {
	m.blockID = id
	m.shared = make([]byte, m.kernel.SharedBytes())
	nRegs := m.kernel.NumRegs()
	localSize := int(m.kernel.LocalBytes())
	nWarps := (m.launch.Block + m.warpSize - 1) / m.warpSize

	m.warps = m.warps[:0]
	for wi := 0; wi < nWarps; wi++ {
		w := &warp{id: wi}
		var mask uint64
		for l := 0; l < m.warpSize; l++ {
			tid := wi*m.warpSize + l
			if tid >= m.launch.Block {
				break
			}
			th := &thread{regs: make([]uint64, nRegs), tid: tid}
			if localSize > 0 {
				th.local = make([]byte, localSize)
			}
			w.lanes = append(w.lanes, th)
			mask |= 1 << uint(l)
		}
		w.stack = []simtEntry{{pc: 0, rpc: len(m.kernel.Insts), mask: mask}}
		m.warps = append(m.warps, w)
	}
	m.liveWarps = len(m.warps)
	m.arrived = 0

	for m.liveWarps > 0 {
		progressed := false
		for _, w := range m.warps {
			if w.done || w.barrier {
				continue
			}
			m.runWarp(w)
			if m.fault != nil {
				return
			}
			progressed = true
		}
		if !progressed {
			// Every live warp is parked at a barrier that never released:
			// with per-warp arrival this is unreachable for a verified
			// kernel, so treat it as a livelock rather than spinning.
			m.fault = &Fault{
				Kind: FaultLivelock, PC: -1, Block: id, Warp: -1, Lane: -1,
				Detail: "all live warps parked at a barrier with no release",
			}
			return
		}
	}
}

// runWarp executes w until it exits, parks at a barrier, or faults.
func (m *machine) runWarp(w *warp) {
	for !w.done && !w.barrier {
		if m.res.WarpInsts >= m.budget {
			m.fault = &Fault{
				Kind: FaultLivelock, PC: m.pcOf(w), Block: m.blockID, Warp: w.id, Lane: -1,
				Detail: fmt.Sprintf("exceeded %d warp instructions", m.budget),
			}
			return
		}
		m.step(w)
		if m.fault != nil {
			return
		}
	}
}

func (m *machine) pcOf(w *warp) int {
	if len(w.stack) == 0 {
		return -1
	}
	return w.stack[len(w.stack)-1].pc
}

// step executes the warp's next micro-op functionally.
func (m *machine) step(w *warp) {
	top := &w.stack[len(w.stack)-1]
	if top.pc >= len(m.prog) {
		m.exitLanes(w, top.mask)
		return
	}
	pc := top.pc
	u := &m.prog[pc]

	// Effective execution mask: active lanes whose guard holds.
	execMask := uint64(0)
	for l, th := range w.lanes {
		if top.mask&(1<<uint(l)) == 0 {
			continue
		}
		if u.Guard != ptx.NoReg {
			p := th.regs[u.Guard] != 0
			if p == u.GuardNeg {
				continue
			}
		}
		execMask |= 1 << uint(l)
	}

	m.res.WarpInsts++
	m.res.ThreadInsts += int64(onesCount(execMask))

	switch u.Class {
	case passes.MicroBra:
		m.execBranch(w, u, top.mask, execMask)
		return
	case passes.MicroExit:
		m.exitLanes(w, top.mask)
		return
	case passes.MicroBar:
		top.pc++
		m.popReconverged(w)
		w.barrier = true
		m.arrived++
		m.releaseBarrier()
		return
	case passes.MicroNop:
		top.pc++
		m.popReconverged(w)
		return
	}

	for l, th := range w.lanes {
		if execMask&(1<<uint(l)) == 0 {
			continue
		}
		if !m.execLane(w, th, pc, l, u) {
			return // faulted
		}
	}

	top.pc++
	m.popReconverged(w)
}

func onesCount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// execBranch implements SIMT divergence with immediate-post-dominator
// reconvergence, identically to the simulator. Target and reconvergence pcs
// come pre-resolved in the micro-op.
func (m *machine) execBranch(w *warp, u *passes.MicroOp, activeMask, takenMask uint64) {
	top := &w.stack[len(w.stack)-1]
	target := u.Target
	switch takenMask {
	case activeMask:
		top.pc = target
	case 0:
		top.pc++
	default:
		pc := top.pc
		rpc := u.Rpc
		if rpc < 0 {
			rpc = len(m.prog)
		}
		top.pc = rpc
		w.stack = append(w.stack,
			simtEntry{pc: pc + 1, rpc: rpc, mask: activeMask &^ takenMask},
			simtEntry{pc: target, rpc: rpc, mask: takenMask},
		)
	}
	m.popReconverged(w)
}

func (m *machine) popReconverged(w *warp) {
	for len(w.stack) > 1 {
		top := &w.stack[len(w.stack)-1]
		if top.pc == top.rpc || top.mask == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return
	}
}

func (m *machine) exitLanes(w *warp, mask uint64) {
	for i := range w.stack {
		w.stack[i].mask &^= mask
	}
	for len(w.stack) > 0 && w.stack[len(w.stack)-1].mask == 0 {
		w.stack = w.stack[:len(w.stack)-1]
	}
	if len(w.stack) == 0 {
		w.done = true
		m.liveWarps--
		m.releaseBarrier()
		return
	}
	m.popReconverged(w)
}

func (m *machine) releaseBarrier() {
	if m.liveWarps == 0 || m.arrived < m.liveWarps {
		return
	}
	for _, w := range m.warps {
		w.barrier = false
	}
	m.arrived = 0
}

// srcVal reads one pre-resolved micro-op source for one lane: registers from
// the lane's register file, constants as-decoded, specials computed.
func (m *machine) srcVal(th *thread, s *passes.MicroSrc) uint64 {
	switch s.Kind {
	case passes.SrcReg:
		return th.regs[s.Reg]
	case passes.SrcConst:
		return s.Const
	case passes.SrcSpecial:
		return uint64(m.special(th, s.Spec))
	}
	return 0
}

// execLane evaluates one micro-op for one lane. Returns false when a fault
// was recorded. Statically-unsupported instructions arrive as MicroBad with
// the evaluation error pre-computed, so the sem calls on the live paths
// cannot fail.
func (m *machine) execLane(w *warp, th *thread, pc, lane int, u *passes.MicroOp) bool {
	switch u.Class {
	case passes.MicroBad:
		m.fault = &Fault{Kind: FaultExec, PC: pc, Block: m.blockID, Warp: w.id, Lane: lane, Err: u.Err}
		return false
	case passes.MicroLdParam:
		addr := u.MemOff
		if u.MemBase != ptx.NoReg {
			addr += th.regs[u.MemBase]
		}
		v := uint64(0)
		for b := 0; b < int(u.Size); b++ {
			if int(addr)+b < len(m.paramBlock) {
				v |= uint64(m.paramBlock[int(addr)+b]) << (8 * b)
			}
		}
		th.regs[u.Dst] = v
		return true
	case passes.MicroMem:
		return m.execMemory(w, th, pc, lane, u)
	}

	// MicroALU.
	switch u.Op {
	case ptx.OpSetp:
		ok, _ := sem.Compare(u.Cmp, u.Type, m.srcVal(th, &u.Src[0]), m.srcVal(th, &u.Src[1]))
		v := uint64(0)
		if ok {
			v = 1
		}
		th.regs[u.Dst] = v
	case ptx.OpSelp:
		if th.regs[u.Src[2].Reg] != 0 {
			th.regs[u.Dst] = m.srcVal(th, &u.Src[0])
		} else {
			th.regs[u.Dst] = m.srcVal(th, &u.Src[1])
		}
	case ptx.OpCvt:
		v, _ := sem.Convert(u.Type, u.CvtFrom, m.srcVal(th, &u.Src[0]))
		th.regs[u.Dst] = v
	default:
		v, _ := sem.ALU(u.Op, u.Type, m.srcVal(th, &u.Src[0]), m.srcVal(th, &u.Src[1]), m.srcVal(th, &u.Src[2]))
		th.regs[u.Dst] = v
	}
	return true
}

func (m *machine) special(th *thread, sp ptx.Special) int {
	switch sp {
	case ptx.SpecTidX:
		return th.tid
	case ptx.SpecNTidX:
		return m.launch.Block
	case ptx.SpecCtaIdX:
		return m.blockID
	case ptx.SpecNCtaIdX:
		return m.launch.Grid
	case ptx.SpecLaneId:
		return th.tid % m.warpSize
	case ptx.SpecWarpId:
		return th.tid / m.warpSize
	case ptx.SpecTidY, ptx.SpecTidZ, ptx.SpecCtaIdY, ptx.SpecCtaIdZ:
		return 0
	case ptx.SpecNTidY, ptx.SpecNTidZ, ptx.SpecNCtaIdY, ptx.SpecNCtaIdZ:
		return 1
	}
	return 0
}

func inBounds(addr uint64, size int, limit int64) bool {
	return uint64(size) <= uint64(limit) && addr <= uint64(limit)-uint64(size)
}

// execMemory performs one lane's load or store with the same bounds rules as
// the simulator: null-page faults for global, declared-segment bounds for
// local and shared. The address comes pre-decoded: an optional base register
// plus a displacement with any symbol base already folded in.
func (m *machine) execMemory(w *warp, th *thread, pc, lane int, u *passes.MicroOp) bool {
	size := int(u.Size)
	addr := u.MemOff
	if u.MemBase != ptx.NoReg {
		addr += th.regs[u.MemBase]
	}
	load := u.Op == ptx.OpLd
	switch u.Space {
	case ptx.SpaceGlobal:
		if addr < nullPageBytes {
			m.fault = &Fault{Kind: FaultNullGlobal, PC: pc, Block: m.blockID, Warp: w.id, Lane: lane,
				Space: u.Space, Addr: addr, Size: size, Limit: nullPageBytes}
			return false
		}
		if load {
			th.regs[u.Dst] = m.mem.Read(addr, size)
		} else {
			v := m.srcVal(th, &u.Src[0])
			m.mem.Write(addr, v, size)
			rec := Store{PC: pc, Block: m.blockID, Warp: w.id, Lane: lane, Value: v, Size: size}
			for b := 0; b < size; b++ {
				m.res.LastStore[addr+uint64(b)] = rec
			}
		}
	case ptx.SpaceLocal:
		limit := int64(len(th.local))
		if !inBounds(addr, size, limit) {
			m.fault = &Fault{Kind: FaultMemOOB, PC: pc, Block: m.blockID, Warp: w.id, Lane: lane,
				Space: u.Space, Addr: addr, Size: size, Limit: limit}
			return false
		}
		if load {
			th.regs[u.Dst] = readLE(th.local[addr:], size)
		} else {
			writeLE(th.local[addr:], m.srcVal(th, &u.Src[0]), size)
		}
	case ptx.SpaceShared:
		limit := m.kernel.SharedBytes()
		if !inBounds(addr, size, limit) {
			m.fault = &Fault{Kind: FaultMemOOB, PC: pc, Block: m.blockID, Warp: w.id, Lane: lane,
				Space: u.Space, Addr: addr, Size: size, Limit: limit}
			return false
		}
		if load {
			th.regs[u.Dst] = readLE(m.shared[addr:], size)
		} else {
			writeLE(m.shared[addr:], m.srcVal(th, &u.Src[0]), size)
		}
	}
	return true
}

func readLE(b []byte, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func writeLE(b []byte, v uint64, n int) {
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
