// Package ptxgen generates randomized, well-formed PTX kernels for
// property-based testing of the CRAT pipeline. Every generated kernel
// passes ptx.Validate, terminates (loops have immediate trip counts), and
// keeps memory accesses inside its declared segments and the per-thread
// slice of its pointer parameters, so the differential oracle can execute
// it without fault on any seed. Generation is fully determined by the seed.
//
// The shapes are chosen to stress what the pipeline rewrites: long chains
// of simultaneously-live registers (forcing spills under tight budgets),
// divergent branches, bounded loops, predicated instructions, shared-memory
// staging across a barrier, and local-memory frames.
package ptxgen

import (
	"fmt"
	"math/rand"

	"crat/internal/ptx"
)

// Config controls generation. The zero value is usable: DefaultConfig
// bounds are substituted for zero fields.
type Config struct {
	Seed int64
	// Block is the thread-block size the kernel is generated for; shared
	// staging is sized and bounded by it (0 = 64).
	Block int
	// MaxOps bounds the random ALU chain length (0 = 24).
	MaxOps int
}

func (c Config) withDefaults() Config {
	if c.Block <= 0 {
		c.Block = 64
	}
	if c.MaxOps <= 0 {
		c.MaxOps = 24
	}
	return c
}

// Generate builds one random kernel. Two calls with equal Configs produce
// identical kernels.
func Generate(cfg Config) *ptx.Kernel {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &gen{rng: rng, cfg: cfg, b: ptx.NewBuilder(fmt.Sprintf("gen%d", cfg.Seed))}
	return g.kernel()
}

type gen struct {
	rng  *rand.Rand
	cfg  Config
	b    *ptx.Builder
	vals []ptx.Reg // pool of live u32 values to draw operands from
	seq  int       // label uniquifier
}

func (g *gen) label(stem string) string {
	g.seq++
	return fmt.Sprintf("%s%d", stem, g.seq)
}

func (g *gen) pick() ptx.Reg { return g.vals[g.rng.Intn(len(g.vals))] }

// operand returns a random register or immediate source.
func (g *gen) operand() ptx.Operand {
	if g.rng.Intn(4) == 0 {
		return ptx.Imm(int64(g.rng.Intn(255) - 64))
	}
	return ptx.R(g.pick())
}

var intOps = []ptx.Opcode{
	ptx.OpAdd, ptx.OpSub, ptx.OpMul, ptx.OpDiv, ptx.OpRem,
	ptx.OpMin, ptx.OpMax, ptx.OpAnd, ptx.OpOr, ptx.OpXor,
	ptx.OpShl, ptx.OpShr,
}

// emitALU appends one random integer op defining a fresh register.
func (g *gen) emitALU() ptx.Reg {
	d := g.b.Reg(ptx.U32)
	op := intOps[g.rng.Intn(len(intOps))]
	if g.rng.Intn(6) == 0 {
		g.b.Mad(ptx.U32, d, g.operand(), g.operand(), g.operand())
	} else {
		g.b.Emit(ptx.Inst{Op: op, Type: ptx.U32, Dst: ptx.R(d),
			Srcs: []ptx.Operand{g.operand(), g.operand()}, Guard: ptx.NoReg})
	}
	g.vals = append(g.vals, d)
	return d
}

// emitFloatChain converts a value to f32, applies a few float ops, and
// folds the result back into the integer pool via a clamped conversion.
func (g *gen) emitFloatChain() {
	f := g.b.Reg(ptx.F32)
	g.b.Cvt(ptx.F32, ptx.U32, f, ptx.R(g.pick()))
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		d := g.b.Reg(ptx.F32)
		switch g.rng.Intn(5) {
		case 0:
			g.b.Add(ptx.F32, d, ptx.R(f), ptx.FImm(1.5))
		case 1:
			g.b.Mul(ptx.F32, d, ptx.R(f), ptx.FImm(0.5))
		case 2:
			g.b.Sub(ptx.F32, d, ptx.R(f), ptx.FImm(3.25))
		case 3:
			g.b.Sfu(ptx.OpSqrt, ptx.F32, d, ptx.R(f)) // inputs are cvt'd u32 ≥ 0
		default:
			g.b.Max(ptx.F32, d, ptx.R(f), ptx.FImm(2))
		}
		f = d
	}
	// Clamp to [0, 1e6] so the float→int conversion is always in range
	// (both engines share sem.Convert, but staying defined keeps generated
	// kernels portable fixtures).
	cl := g.b.Reg(ptx.F32)
	g.b.Max(ptx.F32, cl, ptx.R(f), ptx.FImm(0))
	cl2 := g.b.Reg(ptx.F32)
	g.b.Min(ptx.F32, cl2, ptx.R(cl), ptx.FImm(1e6))
	d := g.b.Reg(ptx.U32)
	g.b.Cvt(ptx.U32, ptx.F32, d, ptx.R(cl2))
	g.vals = append(g.vals, d)
}

// emitBranch emits a data-dependent diamond: both arms define the same
// fresh register, exercising divergence and reconvergence.
func (g *gen) emitBranch() {
	p := g.b.Reg(ptx.Pred)
	d := g.b.Reg(ptx.U32)
	even, join := g.label("even"), g.label("join")
	bit := g.b.Reg(ptx.U32)
	g.b.And(ptx.U32, bit, ptx.R(g.pick()), ptx.Imm(1))
	g.b.Setp(ptx.CmpEq, ptx.U32, p, ptx.R(bit), ptx.Imm(0))
	g.b.BraIf(p, false, even)
	g.b.Add(ptx.U32, d, g.operand(), g.operand())
	g.b.Bra(join)
	g.b.Label(even).Xor(ptx.U32, d, g.operand(), g.operand())
	g.b.Label(join).Emit(ptx.Inst{Op: ptx.OpNop, Guard: ptx.NoReg})
	g.vals = append(g.vals, d)
}

// emitPredicated emits a setp plus a guarded instruction (no branch).
func (g *gen) emitPredicated() {
	p := g.b.Reg(ptx.Pred)
	d := g.b.Reg(ptx.U32)
	g.b.Setp(ptx.CmpLt, ptx.U32, p, ptx.R(g.pick()), g.operand())
	g.b.Mov(ptx.U32, d, g.operand())
	g.b.If(p, g.rng.Intn(2) == 0).Add(ptx.U32, d, ptx.R(d), g.operand())
	g.vals = append(g.vals, d)
	if g.rng.Intn(2) == 0 {
		s := g.b.Reg(ptx.U32)
		g.b.Selp(ptx.U32, s, g.operand(), g.operand(), p)
		g.vals = append(g.vals, s)
	}
}

// emitLoop accumulates over a small immediate trip count; always
// terminates.
func (g *gen) emitLoop() {
	trip := 2 + g.rng.Intn(5)
	acc := g.b.Reg(ptx.U32)
	c := g.b.Reg(ptx.U32)
	p := g.b.Reg(ptx.Pred)
	top := g.label("loop")
	g.b.Mov(ptx.U32, acc, g.operand())
	g.b.Mov(ptx.U32, c, ptx.Imm(0))
	g.b.Label(top).Add(ptx.U32, acc, ptx.R(acc), g.operand())
	g.b.Add(ptx.U32, c, ptx.R(c), ptx.Imm(1))
	g.b.Setp(ptx.CmpLt, ptx.U32, p, ptx.R(c), ptx.Imm(int64(trip)))
	g.b.BraIf(p, false, top)
	g.vals = append(g.vals, acc)
}

// emitShared stages a value in shared memory across a barrier and reads a
// neighbour's slot.
func (g *gen) emitShared(name string, tid ptx.Reg) {
	g.b.SharedArray(name, int64(4*g.cfg.Block))
	off := g.b.Reg(ptx.U32)
	g.b.Shl(ptx.U32, off, ptx.R(tid), ptx.Imm(2))
	// A single shared array sits at segment offset 0, so a register byte
	// offset addresses it directly.
	g.b.St(ptx.SpaceShared, ptx.U32, ptx.MemReg(off, 0), ptx.R(g.pick()))
	g.b.Bar()
	// Read partner slot (block-1-tid), still in bounds.
	r := g.b.Reg(ptx.U32)
	roff := g.b.Reg(ptx.U32)
	g.b.Sub(ptx.U32, r, ptx.Imm(int64(g.cfg.Block-1)), ptx.R(tid))
	g.b.Shl(ptx.U32, roff, ptx.R(r), ptx.Imm(2))
	d := g.b.Reg(ptx.U32)
	g.b.Ld(ptx.SpaceShared, ptx.U32, d, ptx.MemReg(roff, 0))
	g.vals = append(g.vals, d)
}

// emitLocal round-trips a value through a per-thread local frame.
func (g *gen) emitLocal(name string) {
	const slots = 4
	g.b.LocalArray(name, 4*slots)
	off := g.b.Reg(ptx.U64)
	slot := int64(g.rng.Intn(slots)) * 4
	g.b.Mov(ptx.U64, off, ptx.Imm(slot))
	g.b.St(ptx.SpaceLocal, ptx.U32, ptx.MemReg(off, 0), ptx.R(g.pick()))
	d := g.b.Reg(ptx.U32)
	g.b.Ld(ptx.SpaceLocal, ptx.U32, d, ptx.MemReg(off, 0))
	g.vals = append(g.vals, d)
}

func (g *gen) kernel() *ptx.Kernel {
	b := g.b
	b.Param("in", ptx.U64).Param("out", ptx.U64).Param("bias", ptx.U32)
	idx := b.GlobalIndex()
	tid := b.Reg(ptx.U32)
	b.MovSpec(tid, ptx.SpecTidX)
	pin := b.Reg(ptx.U64)
	pout := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, pin, "in")
	b.LdParam(ptx.U64, pout, "out")
	bias := b.Reg(ptx.U32)
	b.LdParam(ptx.U32, bias, "bias")
	src := b.AddrOf(pin, idx, 4)
	dst := b.AddrOf(pout, idx, 4)
	v := b.Reg(ptx.U32)
	b.Ld(ptx.SpaceGlobal, ptx.U32, v, ptx.MemReg(src, 0))
	g.vals = append(g.vals, idx, tid, bias, v)

	nOps := 4 + g.rng.Intn(g.cfg.MaxOps)
	sharedDone, localDone := false, false
	for i := 0; i < nOps; i++ {
		switch g.rng.Intn(10) {
		case 0:
			g.emitBranch()
		case 1:
			g.emitLoop()
		case 2:
			g.emitPredicated()
		case 3:
			g.emitFloatChain()
		case 4:
			if !sharedDone {
				g.emitShared("stage", tid)
				sharedDone = true
			} else {
				g.emitALU()
			}
		case 5:
			if !localDone {
				g.emitLocal("frame")
				localDone = true
			} else {
				g.emitALU()
			}
		default:
			g.emitALU()
		}
	}

	// Fold a handful of live values into the result so late instructions
	// keep early registers alive (long live ranges pressure the allocator).
	res := b.Reg(ptx.U32)
	b.Mov(ptx.U32, res, ptx.R(g.pick()))
	for i := 0; i < 3+g.rng.Intn(4); i++ {
		nxt := b.Reg(ptx.U32)
		if i%2 == 0 {
			b.Add(ptx.U32, nxt, ptx.R(res), ptx.R(g.pick()))
		} else {
			b.Xor(ptx.U32, nxt, ptx.R(res), ptx.R(g.pick()))
		}
		res = nxt
	}
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(dst, 0), ptx.R(res))
	b.Exit()
	return b.Kernel()
}
