package ptxgen

import (
	"testing"

	"crat/internal/emu"
	"crat/internal/ptx"
	"crat/internal/sem"
)

// TestGeneratedKernelsWellFormed runs many seeds through the full property:
// validates, prints/parses, and executes to completion without fault.
func TestGeneratedKernelsWellFormed(t *testing.T) {
	const seeds = 200
	grid, block := 2, 64
	for seed := int64(0); seed < seeds; seed++ {
		k := Generate(Config{Seed: seed, Block: block})
		if err := k.Validate(); err != nil {
			t.Fatalf("seed %d: generated kernel invalid: %v", seed, err)
		}
		text := ptx.Print(k)
		if _, err := ptx.Parse(text); err != nil {
			t.Fatalf("seed %d: printed kernel does not re-parse: %v\n%s", seed, err, text)
		}

		n := grid * block
		mem := sem.NewMemory()
		in := mem.Alloc(int64(4 * n))
		out := mem.Alloc(int64(4 * n))
		for i := 0; i < n; i++ {
			mem.WriteUint32(in+uint64(4*i), uint32(seed)*2654435761+uint32(i))
		}
		_, err := emu.Run(emu.Launch{
			Kernel: k, Grid: grid, Block: block,
			Params:       []uint64{in, out, uint64(seed) & 0xffff},
			MaxWarpInsts: 1 << 22,
		}, mem)
		if err != nil {
			t.Fatalf("seed %d: execution faulted: %v\n%s", seed, err, ptx.Print(k))
		}
	}
}

// TestDeterministicGeneration checks seed-identical generation.
func TestDeterministicGeneration(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := ptx.Print(Generate(Config{Seed: seed}))
		b := ptx.Print(Generate(Config{Seed: seed}))
		if a != b {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
	if ptx.Print(Generate(Config{Seed: 1})) == ptx.Print(Generate(Config{Seed: 2})) {
		t.Fatalf("distinct seeds produced identical kernels")
	}
}

// TestGeneratorCreatesRegisterPressure ensures at least some generated
// kernels declare enough simultaneously-live registers that a tight budget
// will force spills — the shapes the metamorphic suite depends on.
func TestGeneratorCreatesRegisterPressure(t *testing.T) {
	pressured := 0
	for seed := int64(0); seed < 50; seed++ {
		k := Generate(Config{Seed: seed})
		n32, n64, _ := k.RegCounts()
		if n32+2*n64 >= 24 {
			pressured++
		}
	}
	if pressured < 10 {
		t.Fatalf("only %d/50 kernels have ≥24 register slots; generator too weak for spill tests", pressured)
	}
}
