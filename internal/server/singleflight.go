package server

import (
	"context"
	"errors"
	"sync"
)

// cell is the in-memory tier of the result cache: a singleflight slot per
// content hash, following the harness's call-cell discipline. The first
// requester (the leader) computes; concurrent requesters for the same hash
// block on that computation instead of burning a second worker slot; later
// requesters get the memoized result. Cancellation never poisons the cell:
// a leader that failed because its own deadline expired (or its client
// hung up) is not memoized, and the first blocked waiter with a live
// context retries as the new leader.
type cell struct {
	mu   sync.Mutex
	done chan struct{} // non-nil while a computation is in flight
	has  bool
	val  *cacheEntry
	err  error
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do returns the cell's value, computing it via fn if needed. memoized
// reports whether the value was served from the cell rather than computed
// (or awaited) by this call — the memory-tier hit signal for /statsz.
func (c *cell) do(ctx context.Context, fn func() (*cacheEntry, error)) (v *cacheEntry, memoized bool, err error) {
	for {
		c.mu.Lock()
		if c.has {
			v, err := c.val, c.err
			c.mu.Unlock()
			return v, true, err
		}
		if c.done == nil {
			ch := make(chan struct{})
			c.done = ch
			c.mu.Unlock()
			v, err := fn()
			c.mu.Lock()
			c.done = nil
			if !isCancellation(err) {
				c.has, c.val, c.err = true, v, err
			}
			c.mu.Unlock()
			close(ch)
			return v, false, err
		}
		ch := c.done
		c.mu.Unlock()
		select {
		case <-ch:
			// Leader finished: loop to read the memoized result, or — if
			// the leader was canceled — to become the new leader.
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// cells is the keyed cell map. Entries are never evicted: a daemon's
// working set is bounded by the distinct kernels it is asked to compile,
// and each entry holds one compiled module (the persistent tier journals
// the same data anyway). If that assumption breaks, eviction belongs here.
type cells struct {
	mu sync.Mutex
	m  map[string]*cell
}

func newCells() *cells { return &cells{m: make(map[string]*cell)} }

func (cs *cells) get(key string) *cell {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	c, ok := cs.m[key]
	if !ok {
		c = &cell{}
		cs.m[key] = c
	}
	return c
}

func (cs *cells) len() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.m)
}
