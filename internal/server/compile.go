package server

import (
	"fmt"
	"strings"
	"time"

	"context"

	"crat/internal/backend"
	"crat/internal/checkpoint"
	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/ptx"
)

// cacheSchema versions the compile semantics the persistent cache assumes.
// Bump it whenever the pipeline's output for identical inputs can change
// (new pass ordering, different TPSC model, ...): a restarted daemon then
// discards the stale warm tier instead of replaying wrong Decisions.
const cacheSchema = "cratd/v2"

// maxPTXBytes bounds a request's PTX payload; beyond this the request is
// rejected up front rather than admitted and parsed.
const maxPTXBytes = 4 << 20

// CompileRequest is the POST /v1/compile body.
type CompileRequest struct {
	// PTX is the module source (required).
	PTX string `json:"ptx"`
	// Kernel selects a kernel when the module has several (optional when
	// the module has exactly one).
	Kernel string `json:"kernel,omitempty"`
	// Arch is "fermi" (default) or "kepler".
	Arch string `json:"arch,omitempty"`
	// Block is the thread-block size (required, > 0).
	Block int `json:"block"`
	// Grid is the launch's block count, used by oracle verification
	// executions (default 1).
	Grid int `json:"grid,omitempty"`
	// OptTLP pins the optimal TLP. 0 uses the static occupancy bound at
	// the default register budget — the daemon has no input data to
	// profile with, mirroring cratc.
	OptTLP int `json:"opttlp,omitempty"`
	// NoSharedSpill disables the shared-memory spilling optimization
	// (ModeCRATLocal semantics).
	NoSharedSpill bool `json:"no_shared_spill,omitempty"`
	// Coalesce enables the copy-coalescing pre-pass.
	Coalesce bool `json:"coalesce,omitempty"`
	// Backends selects the optimization backends whose candidates compete
	// under the TPSC selection. Order matters (full TPSC ties break toward
	// the earlier-listed backend), so it is never sorted. Empty uses the
	// daemon's configured default (itself empty = mode-implied CRAT).
	Backends []string `json:"backends,omitempty"`
	// Verify overrides the daemon's default for differential oracle
	// verification of the chosen kernel (nil = daemon default). On a
	// divergence the response is still 200, with Degraded set and the
	// verified baseline kernel in PTX.
	Verify *bool `json:"verify,omitempty"`
	// VerifyRuns/VerifySeed tune the oracle's generated inputs.
	VerifyRuns int   `json:"verify_runs,omitempty"`
	VerifySeed int64 `json:"verify_seed,omitempty"`
	// TimeoutMs is the client's compile deadline; the daemon clamps it to
	// its configured maximum. 0 uses the daemon default.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// CompileResponse is the POST /v1/compile result. The Cached, CacheTier,
// and ElapsedMs fields are per-serve metadata stamped by the handler; the
// rest is content-addressed by the request hash and identical no matter
// which tier served it.
type CompileResponse struct {
	Kernel      string `json:"kernel"`
	Arch        string `json:"arch"`
	Reg         int    `json:"reg"`
	TLP         int    `json:"tlp"`
	Candidates  int    `json:"candidates"`
	ProfileRuns int    `json:"profile_runs"`
	// Backend names the optimization backend whose candidate won the TPSC
	// selection ("baseline" when Degraded).
	Backend string `json:"backend,omitempty"`
	// Degraded is the graceful-degradation signal: the oracle caught a
	// divergence in the optimized kernel and PTX holds the verified
	// MaxReg baseline instead. Never a 500.
	Degraded   bool    `json:"degraded"`
	Divergence string  `json:"divergence,omitempty"`
	PTX        string  `json:"ptx"`
	Cached     bool    `json:"cached"`
	CacheTier  string  `json:"cache_tier,omitempty"`
	ElapsedMs  float64 `json:"elapsed_ms"`
}

// cacheEntry is what the cache tiers store: a CompileResponse with the
// per-serve fields zero.
type cacheEntry = CompileResponse

// compileJob is a validated, defaulted request plus its content hash.
type compileJob struct {
	req      CompileRequest
	arch     gpusim.Config
	verify   bool
	backends []string
	deadline time.Duration
	key      string
	seq      int64
}

// normalize validates req, applies the server's defaults, and computes the
// content-address key. It is pure: no compilation, no I/O.
func (s *Server) normalize(req CompileRequest) (*compileJob, error) {
	if strings.TrimSpace(req.PTX) == "" {
		return nil, fmt.Errorf("ptx is required")
	}
	if len(req.PTX) > maxPTXBytes {
		return nil, fmt.Errorf("ptx is %d bytes; the limit is %d", len(req.PTX), maxPTXBytes)
	}
	if req.Block <= 0 {
		return nil, fmt.Errorf("block must be > 0")
	}
	if req.Grid <= 0 {
		req.Grid = 1
	}
	var arch gpusim.Config
	switch req.Arch {
	case "", "fermi":
		arch = gpusim.FermiConfig()
		req.Arch = "fermi"
	case "kepler":
		arch = gpusim.KeplerConfig()
	default:
		return nil, fmt.Errorf("unknown arch %q (want fermi or kepler)", req.Arch)
	}
	verify := s.cfg.VerifyDefault
	if req.Verify != nil {
		verify = *req.Verify
	}
	backends := req.Backends
	if len(backends) == 0 {
		backends = s.cfg.DefaultBackends
	}
	if _, err := backend.Resolve(backends); err != nil {
		return nil, err
	}
	deadline := s.cfg.DefaultDeadline
	if req.TimeoutMs > 0 {
		deadline = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	key, err := checkpoint.Hash(struct {
		Schema     string
		PTX        string
		Kernel     string
		Arch       string
		Block      int
		Grid       int
		OptTLP     int
		NoShared   bool
		Coalesce   bool
		Backends   []string
		Verify     bool
		VerifyRuns int
		VerifySeed int64
	}{cacheSchema, req.PTX, req.Kernel, req.Arch, req.Block, req.Grid,
		req.OptTLP, req.NoSharedSpill, req.Coalesce, backends, verify, req.VerifyRuns, req.VerifySeed})
	if err != nil {
		return nil, fmt.Errorf("hashing request: %w", err)
	}
	return &compileJob{req: req, arch: arch, verify: verify, backends: backends, deadline: deadline, key: key}, nil
}

// compileOnce runs the full CRAT pipeline for one job. It is the only
// place the daemon invokes the compiler; the caller provides panic
// isolation, caching, and admission around it. With OptTLP pinned and
// Costs supplied the pipeline runs no simulations (oracle verification
// uses the functional emulator), so a compile's latency is deterministic
// compilation work bounded by ctx.
func (s *Server) compileOnce(ctx context.Context, job *compileJob) (*cacheEntry, error) {
	module, err := ptx.ParseModule(job.req.PTX)
	if err != nil {
		return nil, &requestError{fmt.Errorf("parsing ptx: %w", err)}
	}
	var kernel *ptx.Kernel
	switch {
	case len(module.Kernels) == 0:
		return nil, &requestError{fmt.Errorf("module has no kernels")}
	case job.req.Kernel != "":
		k, ok := module.Kernel(job.req.Kernel)
		if !ok {
			return nil, &requestError{fmt.Errorf("kernel %q not found in module", job.req.Kernel)}
		}
		kernel = k
	case len(module.Kernels) == 1:
		kernel = module.Kernels[0]
	default:
		names := make([]string, len(module.Kernels))
		for i, k := range module.Kernels {
			names[i] = k.Name
		}
		return nil, &requestError{fmt.Errorf("module has %d kernels (%v); select one with \"kernel\"", len(names), names)}
	}
	if err := kernel.Validate(); err != nil {
		return nil, &requestError{fmt.Errorf("invalid kernel: %w", err)}
	}

	app := core.App{Name: kernel.Name, Kernel: kernel, Block: job.req.Block, Grid: job.req.Grid}
	a, err := core.Analyze(app, job.arch)
	if err != nil {
		return nil, &requestError{err}
	}
	opt := job.req.OptTLP
	if opt == 0 {
		opt = a.MaxTLP
	}
	costs, err := s.costsFor(job.arch)
	if err != nil {
		return nil, err
	}
	d, err := core.OptimizeCtx(ctx, app, core.Options{
		Arch:              job.arch,
		OptTLP:            opt,
		SpillShared:       !job.req.NoSharedSpill,
		Coalesce:          job.req.Coalesce,
		Backends:          job.backends,
		Costs:             costs,
		VerifyEquivalence: job.verify,
		VerifyRuns:        job.req.VerifyRuns,
		VerifySeed:        job.req.VerifySeed,
	})
	if err != nil {
		return nil, err
	}

	// Re-emit the whole module with the chosen kernel swapped in, as cratc
	// does, so the response is a drop-in replacement for the input.
	for i, k := range module.Kernels {
		if k == kernel {
			module.Kernels[i] = d.Chosen.Kernel()
		}
	}
	entry := &cacheEntry{
		Kernel:      kernel.Name,
		Arch:        job.arch.Name,
		Reg:         d.Chosen.UsedRegs(),
		TLP:         d.Chosen.TLP,
		Candidates:  len(d.Candidates),
		ProfileRuns: d.ProfileRuns,
		Backend:     d.Backend,
		Degraded:    d.Degraded,
		PTX:         ptx.PrintModule(module),
	}
	if d.Divergence != nil {
		entry.Divergence = d.Divergence.Error()
	}
	return entry, nil
}

// requestError marks a failure caused by the request itself (unparsable
// PTX, missing kernel, infeasible launch): the client's fault, reported as
// 422 rather than 500.
type requestError struct{ err error }

func (e *requestError) Error() string { return e.err.Error() }
func (e *requestError) Unwrap() error { return e.err }

// costsFor memoizes gpusim.MeasureCosts per architecture: the
// microbenchmarks simulate a few probe kernels, which the daemon pays once
// per arch (at startup for the default arch), never per request.
func (s *Server) costsFor(arch gpusim.Config) (gpusim.Costs, error) {
	s.costsMu.Lock()
	defer s.costsMu.Unlock()
	if c, ok := s.costs[arch.Name]; ok {
		return c, nil
	}
	c, err := gpusim.MeasureCosts(arch)
	if err != nil {
		return gpusim.Costs{}, err
	}
	s.costs[arch.Name] = c
	return c, nil
}
