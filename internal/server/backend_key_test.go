package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestBackendsInCacheKey is the regression test for the schema-v2 cache
// keys: two requests identical except for their backend set must never
// share a normalize (daemon cache) key or a RouteKey (gateway placement)
// — a cached Decision computed by one backend set must be unreachable
// from another. Order is part of the identity: it is the TPSC tie-break.
func TestBackendsInCacheKey(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := CompileRequest{PTX: testPTX("bk", 8), Block: 64}
	variants := []CompileRequest{base, base, base, base, base}
	variants[1].Backends = []string{"crat"}
	variants[2].Backends = []string{"regdem"}
	variants[3].Backends = []string{"crat", "regdem"}
	variants[4].Backends = []string{"regdem", "crat"} // order matters
	normKeys := make(map[string]int)
	routeKeys := make(map[string]int)
	for i, req := range variants {
		job, err := s.normalize(req)
		if err != nil {
			t.Fatalf("normalize variant %d: %v", i, err)
		}
		if prev, dup := normKeys[job.key]; dup {
			t.Errorf("variants %d and %d share a cache key: backends %v vs %v collide",
				prev, i, variants[prev].Backends, req.Backends)
		}
		normKeys[job.key] = i
		rk, err := RouteKey(req)
		if err != nil {
			t.Fatalf("RouteKey variant %d: %v", i, err)
		}
		if prev, dup := routeKeys[rk]; dup {
			t.Errorf("variants %d and %d share a route key: backends %v vs %v collide",
				prev, i, variants[prev].Backends, req.Backends)
		}
		routeKeys[rk] = i
	}
	// Stability: the same backend set must keep hashing to the same keys.
	again, err := s.normalize(variants[3])
	if err != nil {
		t.Fatal(err)
	}
	if normKeys[again.key] != 3 {
		t.Errorf("re-normalizing the same request changed its cache key")
	}

	// The daemon's default backend set is part of a request's identity
	// too: the same wire request on a differently-configured daemon must
	// not replay the other configuration's cached Decision.
	sd, err := New(Config{Workers: 1, DefaultBackends: []string{"regdem"}})
	if err != nil {
		t.Fatal(err)
	}
	job, err := sd.normalize(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, dup := normKeys[job.key]; !dup {
		// base resolved under DefaultBackends=["regdem"] must equal the
		// explicit ["regdem"] request, and nothing else.
		t.Errorf("DefaultBackends-resolved key matches no explicit variant")
	} else if normKeys[job.key] != 2 {
		t.Errorf("DefaultBackends [regdem] hashed like variant %d, want the explicit regdem request", normKeys[job.key])
	}

	if _, err := s.normalize(CompileRequest{PTX: base.PTX, Block: 64, Backends: []string{"nope"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("unknown backend not rejected at normalize: %v", err)
	}
	if _, err := New(Config{Workers: 1, DefaultBackends: []string{"nope"}}); err == nil {
		t.Errorf("unknown DefaultBackends accepted at startup")
	}
}

// TestCompileBackendAttribution compiles with an explicit backend and
// checks the response names it, and that /statsz counts the serve in
// backend_wins.
func TestCompileBackendAttribution(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := CompileRequest{PTX: testPTX("attr", 8), Block: 64, Backends: []string{"regdem"}}
	var resp CompileResponse
	if code := post(t, ts.URL, req, &resp); code != http.StatusOK {
		t.Fatalf("compile = %d", code)
	}
	if resp.Backend != "regdem" {
		t.Fatalf("response backend = %q, want regdem", resp.Backend)
	}
	sz, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sz.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(sz.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.BackendWins["regdem"] != 1 {
		t.Fatalf("statsz backend_wins = %v, want regdem: 1", snap.BackendWins)
	}
}
