// Package server implements cratd's HTTP compilation service: POST
// /v1/compile runs the coordinated register-allocation + TLP pipeline on a
// client's PTX and returns the optimized module plus the Decision summary.
//
// Robustness is the design center, applying the paper's coordinated
// resource-management discipline to server capacity:
//
//   - Admission control: a bounded queue in front of a bounded worker
//     pool. When the queue is full the daemon sheds load with 429 +
//     Retry-After instead of buffering unboundedly; admitted requests run
//     under a per-request deadline, so their latency is capped.
//   - Content-addressed caching: sha256(request) keys a singleflight
//     memory tier (concurrent identical requests compile once) layered
//     over an internal/checkpoint journal as the persistent warm tier — a
//     restarted daemon serves previously compiled kernels with zero
//     recompilation (the "computes" counter in /statsz proves it).
//   - Graceful degradation: per-request oracle verification returns a
//     degraded: true Decision carrying the verified baseline kernel on a
//     divergence — never a 500. Panics are confined to the request that
//     raised them (pool.PanicError) and answered with a 500 for that
//     request only.
//   - Graceful drain: Shutdown stops admission, lets in-flight requests
//     finish, and flushes the journal before returning.
//
// See DESIGN.md §13 for the failure matrix.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"crat/internal/backend"
	"crat/internal/buildinfo"
	"crat/internal/checkpoint"
	"crat/internal/faultinject"
	"crat/internal/gpusim"
	"crat/internal/pool"
)

// Config sizes the daemon. The zero value is usable: Defaults fills it.
type Config struct {
	// Workers bounds concurrent compilations (0 = one per CPU).
	Workers int
	// QueueCapacity bounds admitted requests (waiting + compiling).
	// Admission beyond it is shed with 429 (0 = 4×Workers).
	QueueCapacity int
	// DefaultDeadline applies when a request carries no timeout_ms;
	// MaxDeadline clamps what a request may ask for.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// CacheDir, when set, holds the persistent cache tier (an
	// internal/checkpoint journal). Empty = memory tiers only.
	CacheDir string
	// VerifyDefault runs the differential oracle on every compile unless
	// the request overrides it.
	VerifyDefault bool
	// DefaultBackends selects the optimization backends for requests that
	// don't name their own (cratd -backends). Order matters: full TPSC
	// ties break toward the earlier-listed backend. Empty preserves the
	// mode-implied CRAT strategy.
	DefaultBackends []string
	// FS, when set, routes the persistent tier's filesystem operations
	// through it — the deterministic fault-injection seam (cratd -fault).
	// Nil = the real filesystem.
	FS faultinject.FS
	// DrainGrace holds the listener open (still answering /readyz with
	// 503 and /healthz with 200) for this long after a drain begins,
	// before connections stop being accepted. A gateway health-checking
	// this replica observes the not-ready flip and takes it out of
	// rotation while the listener is still up, instead of discovering the
	// drain as a connection error. 0 = close immediately (the old
	// behavior; fine without a gateway).
	DrainGrace time.Duration
	// Log receives the daemon's operational log lines (nil = discard).
	Log *log.Logger
}

// Defaults returns cfg with zero fields replaced by production defaults.
func (cfg Config) Defaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = pool.DefaultWorkers()
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 4 * cfg.Workers
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 30 * time.Second
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 2 * time.Minute
	}
	return cfg
}

// Stats are the daemon's monotonic counters, exposed by /statsz. All
// fields are atomics so the hot path never takes a lock to count.
type Stats struct {
	Admitted         atomic.Int64 // requests past admission control
	Shed             atomic.Int64 // 429s: queue full
	Completed        atomic.Int64 // 200s served
	Failed           atomic.Int64 // request/compile errors (4xx/5xx except sheds)
	Panics           atomic.Int64 // compiles that panicked (isolated, 500)
	Degraded         atomic.Int64 // 200s served with degraded: true
	DeadlineExceeded atomic.Int64 // admitted requests that ran out of deadline
	ClientCanceled   atomic.Int64 // clients that hung up mid-request
	MemoryHits       atomic.Int64 // serves from the singleflight memory tier
	PersistentHits   atomic.Int64 // serves from the checkpoint journal
	Computes         atomic.Int64 // actual pipeline executions (cache misses)
	CachePutErrors   atomic.Int64 // journal appends that failed (durability degraded)
}

// StatsSnapshot is the JSON shape of GET /statsz.
type StatsSnapshot struct {
	Build            string  `json:"build"`
	UptimeSec        float64 `json:"uptime_sec"`
	Draining         bool    `json:"draining"`
	Workers          int     `json:"workers"`
	QueueCapacity    int     `json:"queue_capacity"`
	QueueDepth       int     `json:"queue_depth"`
	InFlight         int     `json:"in_flight"`
	Admitted         int64   `json:"admitted"`
	Shed             int64   `json:"shed"`
	Completed        int64   `json:"completed"`
	Failed           int64   `json:"failed"`
	Panics           int64   `json:"panics"`
	Degraded         int64   `json:"degraded"`
	DeadlineExceeded int64   `json:"deadline_exceeded"`
	ClientCanceled   int64   `json:"client_canceled"`
	MemoryHits       int64   `json:"memory_hits"`
	PersistentHits   int64   `json:"persistent_hits"`
	Computes         int64   `json:"computes"`
	CachePutErrors   int64   `json:"cache_put_errors"`
	MemoryEntries    int     `json:"memory_entries"`
	CacheEntries     int     `json:"cache_entries"`
	CacheLoaded      int     `json:"cache_loaded"`
	CacheDir         string  `json:"cache_dir,omitempty"`
	// BackendWins counts, per optimization backend, the 200s served whose
	// Decision that backend won — across every cache tier, so a replay
	// from the journal still attributes its serve.
	BackendWins map[string]int64 `json:"backend_wins,omitempty"`
	// CacheDegraded names why the persistent tier is disabled (the daemon
	// chose a cold cache over refusing to start); empty when healthy.
	CacheDegraded string `json:"cache_degraded,omitempty"`
	// Journal is the checkpoint store's durability report: entries
	// loaded, salvaged torn tails, quarantined corruption, compactions.
	Journal *checkpoint.Health `json:"journal,omitempty"`
}

// Server is the compilation service. Create with New, expose with
// Handler() (tests, embedding) or Serve() (cratd), stop with Shutdown.
type Server struct {
	cfg   Config
	stats Stats

	queue    chan struct{} // admission tokens: waiting + compiling
	workers  chan struct{} // compile slots
	mem      *cells
	store    *checkpoint.Store // nil without CacheDir (or when degraded)
	degraded string            // why the persistent tier is off ("" = healthy)
	draining atomic.Bool
	seq      atomic.Int64
	start    time.Time

	wg sync.WaitGroup // admitted requests in flight

	costsMu sync.Mutex
	costs   map[string]gpusim.Costs

	backendMu   sync.Mutex
	backendWins map[string]int64 // 200s served per winning backend

	mu   sync.Mutex
	http *http.Server
}

// New builds a Server. When cfg.CacheDir is set the persistent tier is
// opened resume-first: an existing journal written by a compatible daemon
// becomes the warm cache (corrupt records are salvaged and quarantined by
// the journal itself); a stale one (schema change) is discarded and the
// store re-initialized. A cache directory that cannot be opened at all
// does not stop the daemon: it serves with a cold cache and a loud
// structured warning — availability over durability, and /statsz says so.
// The default architecture's access costs are measured eagerly so the
// first request doesn't pay for them.
func New(cfg Config) (*Server, error) {
	cfg = cfg.Defaults()
	s := &Server{
		cfg:         cfg,
		queue:       make(chan struct{}, cfg.QueueCapacity),
		workers:     make(chan struct{}, cfg.Workers),
		mem:         newCells(),
		costs:       make(map[string]gpusim.Costs),
		backendWins: make(map[string]int64),
		start:       time.Now(),
	}
	if _, err := backend.Resolve(cfg.DefaultBackends); err != nil {
		return nil, fmt.Errorf("default backends: %w", err)
	}
	if cfg.CacheDir != "" {
		key, err := checkpoint.Hash(struct{ Schema string }{cacheSchema})
		if err != nil {
			return nil, err
		}
		st, err := checkpoint.OpenFS(cfg.CacheDir, key, "cratd", true, cfg.FS)
		if err != nil {
			if errors.Is(err, checkpoint.ErrStale) {
				s.logf("cache %s is stale (%v); re-initializing", cfg.CacheDir, err)
			} else {
				s.logf("WARN cache %s resume failed (%v); re-initializing", cfg.CacheDir, err)
			}
			st, err = checkpoint.OpenFS(cfg.CacheDir, key, "cratd", false, cfg.FS)
		}
		switch {
		case err != nil:
			s.degraded = err.Error()
			s.logf("WARN event=cache_degraded dir=%s err=%q — serving with cold in-memory cache only; durability disabled",
				cfg.CacheDir, err)
		default:
			s.store = st
			h := st.Health()
			if h.SalvagedTail > 0 || h.Quarantined > 0 || h.MigratedV1 {
				s.logf("WARN event=cache_salvaged dir=%s loaded=%d salvaged_tail=%d quarantined=%d quarantined_bytes=%d migrated_v1=%t — journal corruption contained, see %s",
					cfg.CacheDir, h.Loaded, h.SalvagedTail, h.Quarantined, h.QuarantinedBytes, h.MigratedV1, checkpoint.QuarantineFilename)
			}
			s.logf("cache %s: %d entries warm", cfg.CacheDir, st.Loaded())
		}
	}
	if _, err := s.costsFor(gpusim.FermiConfig()); err != nil {
		return nil, fmt.Errorf("measuring access costs: %w", err)
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// Stats exposes the counters (tests and embedders).
func (s *Server) Stats() *Stats { return &s.stats }

// backendWinsSnapshot copies the per-backend serve counters (nil when no
// compile has been served yet, so /statsz omits the field).
func (s *Server) backendWinsSnapshot() map[string]int64 {
	s.backendMu.Lock()
	defer s.backendMu.Unlock()
	if len(s.backendWins) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.backendWins))
	for k, v := range s.backendWins {
		out[k] = v
	}
	return out
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

// Serve runs the HTTP server on l until Shutdown (returns nil) or a
// listener error.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	s.http = srv
	s.mu.Unlock()
	err := srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the daemon: admission stops immediately (readyz goes
// 503, new compiles are refused), the listener stays open for DrainGrace
// so health checkers observe the flip, in-flight requests run to
// completion within ctx, and the cache journal is flushed as the final
// barrier. A nil return means every in-flight request finished and the
// journal is on disk.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.cfg.DrainGrace > 0 {
		select {
		case <-time.After(s.cfg.DrainGrace):
		case <-ctx.Done():
		}
	}
	var err error
	s.mu.Lock()
	srv := s.http
	s.mu.Unlock()
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = fmt.Errorf("drain: %w", ctx.Err())
		}
	}
	if s.store != nil {
		if ferr := s.store.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if cerr := s.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// statusClientClosed is the nginx-convention status for "client hung up
// before we could answer"; nothing receives it, but logs and stats do.
const statusClientClosed = 499

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	snap := StatsSnapshot{
		Build:            buildinfo.String(),
		UptimeSec:        time.Since(s.start).Seconds(),
		Draining:         s.draining.Load(),
		Workers:          cap(s.workers),
		QueueCapacity:    cap(s.queue),
		QueueDepth:       len(s.queue),
		InFlight:         len(s.workers),
		Admitted:         s.stats.Admitted.Load(),
		Shed:             s.stats.Shed.Load(),
		Completed:        s.stats.Completed.Load(),
		Failed:           s.stats.Failed.Load(),
		Panics:           s.stats.Panics.Load(),
		Degraded:         s.stats.Degraded.Load(),
		DeadlineExceeded: s.stats.DeadlineExceeded.Load(),
		ClientCanceled:   s.stats.ClientCanceled.Load(),
		MemoryHits:       s.stats.MemoryHits.Load(),
		PersistentHits:   s.stats.PersistentHits.Load(),
		Computes:         s.stats.Computes.Load(),
		CachePutErrors:   s.stats.CachePutErrors.Load(),
		MemoryEntries:    s.mem.len(),
		BackendWins:      s.backendWinsSnapshot(),
		CacheDegraded:    s.degraded,
	}
	if s.store != nil {
		snap.CacheEntries = s.store.Count()
		snap.CacheLoaded = s.store.Loaded()
		snap.CacheDir = s.store.Dir()
		h := s.store.Health()
		snap.Journal = &h
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleCompile is the admission-controlled compile endpoint. The failure
// matrix (DESIGN.md §13):
//
//	queue full        → 429 + Retry-After (shed, never buffered)
//	draining          → 503
//	bad request       → 400 (malformed JSON) / 422 (bad PTX or launch)
//	deadline exceeded → 504 (whether it expired waiting or compiling)
//	client hung up    → connection dropped, counted as 499
//	compile panic     → 500 for this request only
//	oracle divergence → 200 with degraded: true (the baseline kernel)
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req CompileRequest
	body := http.MaxBytesReader(w, r.Body, maxPTXBytes+1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	io.Copy(io.Discard, body)
	job, err := s.normalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	job.seq = s.seq.Add(1)

	// Admission: one token per admitted request, released on exit. No
	// token free means QueueCapacity requests are already waiting or
	// compiling — shed now, cheaply, rather than queue unboundedly.
	select {
	case s.queue <- struct{}{}:
	default:
		s.stats.Shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "admission queue full")
		return
	}
	defer func() { <-s.queue }()
	s.stats.Admitted.Add(1)
	s.wg.Add(1)
	defer s.wg.Done()

	ctx, cancel := context.WithTimeout(r.Context(), job.deadline)
	defer cancel()

	start := time.Now()
	entry, tier, err := s.compileCached(ctx, job)
	elapsed := time.Since(start)
	if err != nil {
		status := s.classifyError(r, err)
		s.logf("compile seq=%d key=%.12s status=%d elapsed=%s err=%v",
			job.seq, job.key, status, elapsed.Round(time.Millisecond), err)
		writeError(w, status, err.Error())
		return
	}
	resp := *entry
	resp.Cached = tier != ""
	resp.CacheTier = tier
	resp.ElapsedMs = float64(elapsed) / float64(time.Millisecond)
	s.stats.Completed.Add(1)
	if resp.Backend != "" {
		s.backendMu.Lock()
		s.backendWins[resp.Backend]++
		s.backendMu.Unlock()
	}
	if resp.Degraded {
		s.stats.Degraded.Add(1)
		s.logf("compile seq=%d kernel=%s DEGRADED: %s", job.seq, resp.Kernel, resp.Divergence)
	}
	writeJSON(w, http.StatusOK, resp)
}

// classifyError maps a compile failure to its HTTP status and counts it.
func (s *Server) classifyError(r *http.Request, err error) int {
	switch {
	case r.Context().Err() != nil:
		s.stats.ClientCanceled.Add(1)
		return statusClientClosed
	case isCancellation(err):
		s.stats.DeadlineExceeded.Add(1)
		return http.StatusGatewayTimeout
	default:
		s.stats.Failed.Add(1)
		var reqErr *requestError
		if errors.As(err, &reqErr) {
			return http.StatusUnprocessableEntity
		}
		return http.StatusInternalServerError
	}
}

// compileCached serves a job through the cache tiers: the singleflight
// memory cell, then the persistent journal, then an actual compile under a
// worker slot. tier reports where the result came from ("" = compiled
// fresh by this call).
func (s *Server) compileCached(ctx context.Context, job *compileJob) (*cacheEntry, string, error) {
	persistent := false
	entry, memoized, err := s.mem.get(job.key).do(ctx, func() (*cacheEntry, error) {
		if s.store != nil {
			var cached cacheEntry
			if ok, gerr := s.store.Get(job.key, &cached); gerr == nil && ok {
				s.stats.PersistentHits.Add(1)
				persistent = true
				return &cached, nil
			} else if gerr != nil {
				// A malformed entry is a miss: recompiling repairs it.
				s.logf("cache entry %.12s unreadable (%v); recompiling", job.key, gerr)
			}
		}
		// Worker slot: the wait is bounded by the request deadline, so an
		// overloaded daemon answers 504 instead of parking forever.
		select {
		case s.workers <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-s.workers }()
		s.stats.Computes.Add(1)
		e, cerr := s.compileIsolated(ctx, job)
		if cerr != nil {
			return nil, cerr
		}
		if s.store != nil {
			if perr := s.store.Put(job.key, e); perr != nil {
				// Persistence failure degrades durability, not the request.
				s.stats.CachePutErrors.Add(1)
				s.logf("cache put %.12s: %v", job.key, perr)
			}
		}
		return e, nil
	})
	switch {
	case err != nil:
		return nil, "", err
	case memoized:
		s.stats.MemoryHits.Add(1)
		return entry, "memory", nil
	case persistent:
		return entry, "persistent", nil
	default:
		return entry, "", nil
	}
}

// compileIsolated confines a compile panic to its own request: the
// recovered value becomes a *pool.PanicError attributed to the request's
// sequence number, answered with a 500, while the daemon keeps serving.
func (s *Server) compileIsolated(ctx context.Context, job *compileJob) (entry *cacheEntry, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.stats.Panics.Add(1)
			err = &pool.PanicError{Job: int(job.seq), Value: r, NumPanicked: 1}
			s.logf("compile seq=%d PANIC isolated: %v", job.seq, r)
		}
	}()
	return s.compileOnce(ctx, job)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}{msg, status})
}
