package server

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"crat/internal/checkpoint"
	"crat/internal/faultinject"
)

func scrapeStats(t *testing.T, url string) StatsSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	return snap
}

// TestStartupColdCacheOnUnusableDir: a cache directory that cannot even
// be created must not stop the daemon — it serves with a cold cache and
// /statsz names the degradation.
func TestStartupColdCacheOnUnusableDir(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "occupied")
	if err := os.WriteFile(blocker, []byte("a file where the cache dir should be"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 2, CacheDir: blocker})

	snap := scrapeStats(t, ts.URL)
	if snap.CacheDegraded == "" {
		t.Error("cache_degraded is empty; the unusable cache dir must be reported")
	}
	if snap.Journal != nil {
		t.Error("journal health reported for a disabled persistent tier")
	}

	// The daemon still compiles — availability over durability.
	var r CompileResponse
	if code := post(t, ts.URL, CompileRequest{PTX: testPTX("k_cold", 8), Block: 64}, &r); code != http.StatusOK {
		t.Fatalf("compile on a degraded daemon = %d, want 200", code)
	}
	if got := s.Stats().Computes.Load(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}
}

// TestStartupSalvagesTornJournal: a journal torn mid-record by a crash
// resumes with everything before the tear warm, and /statsz reports the
// salvage instead of the daemon refusing to start.
func TestStartupSalvagesTornJournal(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	for _, name := range []string{"k_a", "k_b"} {
		if code := post(t, ts1.URL, CompileRequest{PTX: testPTX(name, 8), Block: 64}, nil); code != http.StatusOK {
			t.Fatalf("seeding compile %s = %d", name, code)
		}
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	journal := filepath.Join(dir, checkpoint.JournalFilename)
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journal, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	snap := scrapeStats(t, ts2.URL)
	if snap.CacheDegraded != "" {
		t.Fatalf("torn journal degraded the cache entirely (%s); it must salvage", snap.CacheDegraded)
	}
	if snap.Journal == nil || snap.Journal.SalvagedTail != 1 || snap.Journal.Quarantined != 0 {
		t.Fatalf("journal health = %+v, want SalvagedTail=1", snap.Journal)
	}
	if snap.CacheLoaded != 1 {
		t.Errorf("cache_loaded = %d, want 1 (the record before the tear)", snap.CacheLoaded)
	}

	// The surviving entry serves from the persistent tier with zero
	// recompilation.
	var r CompileResponse
	if code := post(t, ts2.URL, CompileRequest{PTX: testPTX("k_a", 8), Block: 64}, &r); code != http.StatusOK {
		t.Fatalf("compile = %d, want 200", code)
	}
	if r.CacheTier != "persistent" {
		t.Errorf("salvaged entry served from %q, want the persistent tier", r.CacheTier)
	}
	if got := s2.Stats().Computes.Load(); got != 0 {
		t.Errorf("computes = %d, want 0", got)
	}
}

// TestCachePutErrorCounted: an injected fsync failure on the journal
// append degrades durability (counted, logged) but the request still
// gets its 200.
func TestCachePutErrorCounted(t *testing.T) {
	dir := t.TempDir()
	// Fresh open costs syncs 1-2 (manifest temp + dir); the first Put's
	// journal create is sync 3 and its record append sync 4.
	fsys := faultinject.NewFS(faultinject.OS(), faultinject.MustParse("fsync-fail:nth=4"))
	s, ts := newTestServer(t, Config{Workers: 2, CacheDir: dir, FS: fsys})

	if code := post(t, ts.URL, CompileRequest{PTX: testPTX("k_put", 8), Block: 64}, nil); code != http.StatusOK {
		t.Fatalf("compile under injected append failure = %d, want 200", code)
	}
	if got := s.Stats().CachePutErrors.Load(); got != 1 {
		t.Errorf("cache put errors = %d, want 1", got)
	}
	snap := scrapeStats(t, ts.URL)
	if snap.CachePutErrors != 1 {
		t.Errorf("statsz cache_put_errors = %d, want 1", snap.CachePutErrors)
	}
	if snap.Journal == nil || snap.Journal.AppendErrors != 1 {
		t.Errorf("journal health = %+v, want AppendErrors=1", snap.Journal)
	}
}
