package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"crat/internal/ptx"
)

func TestCorpusDeterministic(t *testing.T) {
	a := Corpus(3, 7, 64)
	b := Corpus(3, 7, 64)
	for i := range a {
		if a[i].PTX != b[i].PTX {
			t.Fatalf("corpus kernel %d differs between identical generations", i)
		}
		if _, err := ptx.ParseModule(a[i].PTX); err != nil {
			t.Fatalf("corpus kernel %d does not parse: %v", i, err)
		}
	}
	if a[0].PTX == a[1].PTX {
		t.Fatal("distinct seeds produced identical kernels")
	}
}

func TestRunLoadBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	rep, err := RunLoad(context.Background(), ts.URL, LoadOptions{
		Concurrency: 2,
		Requests:    8,
		Kernels:     2,
		Seed:        3,
		Block:       64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 8 || rep.Failed != 0 {
		t.Fatalf("ok=%d failed=%d, want 8/0 (%+v)", rep.OK, rep.Failed, rep)
	}
	// 2 distinct kernels: at most 2 fresh compiles, the rest cache (or
	// singleflight-waiter) hits.
	if rep.Cached < 6 {
		t.Errorf("cached = %d, want >= 6", rep.Cached)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.MaxOK < rep.P99 {
		t.Errorf("implausible percentiles: p50=%v p99=%v max=%v", rep.P50, rep.P99, rep.MaxOK)
	}
	if rep.RPS <= 0 {
		t.Errorf("rps = %v", rep.RPS)
	}
	if rep.ByStatus[http.StatusOK] != 8 {
		t.Errorf("by_status = %v", rep.ByStatus)
	}
}

// TestRunLoadOverload wedges the single worker slot so every admitted
// request runs out of its deadline and everything else is shed: the
// report must classify all outcomes as sheds or timeouts — no failures,
// no hangs, and admitted latency bounded by the deadline.
func TestRunLoadOverload(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 1})
	s.workers <- struct{}{}
	defer func() { <-s.workers }()

	rep, err := RunLoad(context.Background(), ts.URL, LoadOptions{
		Concurrency: 4,
		Requests:    8,
		Kernels:     8,
		Block:       64,
		TimeoutMs:   250,
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 0 || rep.Failed != 0 || rep.Canceled != 0 {
		t.Fatalf("ok=%d failed=%d canceled=%d, want all 0 (%+v)", rep.OK, rep.Failed, rep.Canceled, rep)
	}
	if rep.Shed == 0 || rep.Timeouts == 0 {
		t.Fatalf("shed=%d timeouts=%d, want both > 0", rep.Shed, rep.Timeouts)
	}
	if rep.Shed+rep.Timeouts != rep.Requests {
		t.Errorf("shed+timeouts = %d, want %d", rep.Shed+rep.Timeouts, rep.Requests)
	}
	if got := s.Stats().Shed.Load(); got == 0 {
		t.Error("server shed counter is zero")
	}
	if got := s.Stats().DeadlineExceeded.Load(); got == 0 {
		t.Error("server deadline_exceeded counter is zero")
	}
}

// TestRunLoadCancelInjection aborts every request client-side almost
// immediately; the daemon must notice the hang-ups (client_canceled) and
// the report must count the aborts rather than misfile them as failures.
func TestRunLoadCancelInjection(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// Wedge the worker slot so every request is still parked (slot wait is
	// context-bounded) when its client aborts: the hang-up observation must
	// not depend on how long a compile takes.
	s.workers <- struct{}{}
	defer func() { <-s.workers }()
	rep, err := RunLoad(context.Background(), ts.URL, LoadOptions{
		Concurrency: 2,
		Requests:    6,
		Kernels:     6,
		Block:       64,
		CancelFrac:  1,
		CancelAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Canceled == 0 {
		t.Fatalf("no injected cancels registered: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Errorf("failed = %d, want 0 (aborts must not count as failures)", rep.Failed)
	}
	if total := rep.OK + rep.Canceled + rep.Timeouts + rep.Shed; total != rep.Requests {
		t.Errorf("outcomes sum to %d, want %d (%+v)", total, rep.Requests, rep)
	}
	// The daemon observes at least one of the hang-ups (the compile in
	// flight when the client vanished); its handler finishes asynchronously.
	waitFor(t, func() bool { return s.Stats().ClientCanceled.Load() > 0 })
}

func TestPercentileNearestRank(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		p    int
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(ds, c.p); got != c.want {
			t.Errorf("p%d = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(ds[:1], 99); got != time.Millisecond {
		t.Errorf("p99 of singleton = %v", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("p50 of empty = %v", got)
	}
}
