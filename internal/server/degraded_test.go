package server

import (
	"context"
	"net/http"
	"testing"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/regalloc"
)

// corruptCandidates installs a global pass-wrap hook that miscompiles the
// physical kernel of every candidate allocation while sparing the
// analysis sweeps and the degraded-mode baseline. The discriminator is the
// Coalesce option: candidate allocations inherit it from the request,
// while baselineCandidate and the analysis allocations always use default
// options — so a request with coalesce=true marks exactly the allocations
// the oracle must catch. Callers must defer passes.SetGlobalWrap(nil).
func corruptCandidates() {
	passes.SetGlobalWrap(func(p passes.Pass) passes.Pass {
		pr, ok := passes.Inner(p).(interface{ AllocOptions() regalloc.Options })
		if !ok {
			return p
		}
		return passes.After(p, func(k *ptx.Kernel, _ *passes.AnalysisManager) error {
			if !pr.AllocOptions().Coalesce {
				return nil
			}
			// Flip the first f32 add to a sub: structurally valid, so only
			// the differential oracle can reject it.
			for i := range k.Insts {
				in := &k.Insts[i]
				if in.Op == ptx.OpAdd && in.Type == ptx.F32 {
					in.Op = ptx.OpSub
					break
				}
			}
			return nil
		})
	})
}

// TestDegradedEndToEnd is the satellite acceptance scenario: an injected
// miscompile corrupts every candidate allocation; the daemon must answer
// 200 with degraded: true and the verified baseline kernel — never a 500 —
// and every cache tier must replay that degraded Decision consistently,
// including across a daemon restart.
func TestDegradedEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, CacheDir: dir})

	vtrue := true
	req := CompileRequest{
		PTX:      testPTX("k_degraded", 10),
		Block:    64,
		Coalesce: true,
		Verify:   &vtrue,
	}

	corruptCandidates()
	defer passes.SetGlobalWrap(nil)

	var r1 CompileResponse
	if code := post(t, ts.URL, req, &r1); code != http.StatusOK {
		t.Fatalf("degraded compile: status = %d, want 200 (divergence must not be a 500)", code)
	}
	if !r1.Degraded {
		t.Fatalf("injected miscompile not detected: %+v", r1)
	}
	if r1.Divergence == "" {
		t.Error("degraded response carries no divergence report")
	}
	if got := s.Stats().Degraded.Load(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}

	// The response must hold the verified baseline: the conservative
	// MaxReg allocation with default options. Recompute it honestly (the
	// wrap spares default-option allocations, but clear it anyway) and
	// compare kernels exactly.
	passes.SetGlobalWrap(nil)
	module, err := ptx.ParseModule(req.PTX)
	if err != nil {
		t.Fatal(err)
	}
	app := core.App{Name: "k_degraded", Kernel: module.Kernels[0], Block: 64, Grid: 1}
	a, err := core.Analyze(app, gpusim.FermiConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := regalloc.Allocate(app.Kernel, regalloc.Options{Regs: a.MaxReg})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Reg != baseline.UsedRegs {
		t.Errorf("degraded Reg = %d, want baseline UsedRegs %d", r1.Reg, baseline.UsedRegs)
	}
	got, err := ptx.ParseModule(r1.PTX)
	if err != nil {
		t.Fatalf("degraded PTX does not parse: %v", err)
	}
	// The response went through a print→parse roundtrip, which renumbers
	// registers in first-use order; push both kernels through the same
	// roundtrip before comparing.
	canonical := func(k *ptx.Kernel) string {
		m, perr := ptx.ParseModule(ptx.Print(k))
		if perr != nil {
			t.Fatalf("canonicalizing kernel: %v", perr)
		}
		return ptx.Print(m.Kernels[0])
	}
	if want, have := canonical(baseline.Kernel), canonical(got.Kernels[0]); want != have {
		t.Errorf("degraded PTX is not the baseline allocation:\nwant:\n%s\nhave:\n%s", want, have)
	}

	// With the injection removed, an honest recompile would NOT degrade —
	// but the cache must replay the recorded degraded Decision, not
	// silently flip answers for the same request.
	var r2 CompileResponse
	if code := post(t, ts.URL, req, &r2); code != http.StatusOK {
		t.Fatalf("cached degraded replay: status = %d", code)
	}
	if !r2.Cached || r2.CacheTier != "memory" {
		t.Errorf("replay not served from memory tier: cached=%v tier=%q", r2.Cached, r2.CacheTier)
	}
	if !r2.Degraded || r2.PTX != r1.PTX || r2.Divergence != r1.Divergence {
		t.Errorf("memory tier did not replay the degraded Decision consistently")
	}

	// And across a restart: the persistent tier replays it too, with zero
	// recompilation.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	b, tsB := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	var r3 CompileResponse
	if code := post(t, tsB.URL, req, &r3); code != http.StatusOK {
		t.Fatalf("persistent degraded replay: status = %d", code)
	}
	if !r3.Cached || r3.CacheTier != "persistent" {
		t.Errorf("replay not served from persistent tier: cached=%v tier=%q", r3.Cached, r3.CacheTier)
	}
	if !r3.Degraded || r3.PTX != r1.PTX {
		t.Errorf("persistent tier did not replay the degraded Decision consistently")
	}
	if n := b.Stats().Computes.Load(); n != 0 {
		t.Errorf("restarted daemon recompiled a cached degraded kernel: computes = %d", n)
	}
}
