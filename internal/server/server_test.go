package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crat/internal/passes"
	"crat/internal/ptx"
)

// testPTX builds a small register-pressured kernel with hot f32
// accumulators (so the design-space search has real spill decisions to
// make, and the degraded-mode tests have f32 adds to corrupt) and returns
// its module text.
func testPTX(name string, hot int) string {
	b := ptx.NewBuilder(name)
	b.Param("data", ptx.U64).Param("out", ptx.U64)
	pd, po := b.Reg(ptx.U64), b.Reg(ptx.U64)
	b.LdParam(ptx.U64, pd, "data").LdParam(ptx.U64, po, "out")
	gi := b.GlobalIndex()
	addr := b.AddrOf(pd, gi, 4)
	v := b.Reg(ptx.F32)
	b.Ld(ptx.SpaceGlobal, ptx.F32, v, ptx.MemReg(addr, 0))
	hots := b.Regs(ptx.F32, hot)
	for i, r := range hots {
		b.Mov(ptx.F32, r, ptx.FImm(float64(i)))
	}
	for _, r := range hots {
		b.Mad(ptx.F32, r, ptx.R(r), ptx.FImm(1.5), ptx.R(v))
	}
	sum := b.Reg(ptx.F32)
	b.Mov(ptx.F32, sum, ptx.FImm(0))
	for _, r := range hots {
		b.Add(ptx.F32, sum, ptx.R(sum), ptx.R(r))
	}
	oa := b.AddrOf(po, gi, 4)
	b.St(ptx.SpaceGlobal, ptx.F32, ptx.MemReg(oa, 0), ptx.R(sum))
	b.Exit()
	return ptx.Print(b.Kernel())
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a compile request and decodes the response body into out
// (which may be a *CompileResponse or a *map for error bodies).
func post(t *testing.T, url string, req CompileRequest, out any) int {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/compile", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %d response: %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

func TestCompileOKAndMemoryCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, VerifyDefault: true})
	req := CompileRequest{PTX: testPTX("k_ok", 10), Block: 64}

	var r1 CompileResponse
	if code := post(t, ts.URL, req, &r1); code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if r1.Cached || r1.CacheTier != "" {
		t.Errorf("first compile reported cached (%q)", r1.CacheTier)
	}
	if r1.Reg <= 0 || r1.TLP <= 0 || r1.Candidates == 0 {
		t.Errorf("implausible decision: %+v", r1)
	}
	if r1.Degraded {
		t.Errorf("honest compile degraded: %s", r1.Divergence)
	}
	if _, err := ptx.ParseModule(r1.PTX); err != nil {
		t.Errorf("response PTX does not parse: %v", err)
	}

	var r2 CompileResponse
	if code := post(t, ts.URL, req, &r2); code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if !r2.Cached || r2.CacheTier != "memory" {
		t.Errorf("second identical compile not served from memory tier: cached=%v tier=%q", r2.Cached, r2.CacheTier)
	}
	if r2.PTX != r1.PTX || r2.Reg != r1.Reg || r2.TLP != r1.TLP {
		t.Errorf("cached response differs from computed one")
	}
	if got := s.Stats().Computes.Load(); got != 1 {
		t.Errorf("computes = %d, want 1", got)
	}
	if got := s.Stats().MemoryHits.Load(); got != 1 {
		t.Errorf("memory hits = %d, want 1", got)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  CompileRequest
		want int
	}{
		{"missing ptx", CompileRequest{Block: 64}, http.StatusBadRequest},
		{"missing block", CompileRequest{PTX: testPTX("k_b", 4)}, http.StatusBadRequest},
		{"bad arch", CompileRequest{PTX: testPTX("k_b", 4), Block: 64, Arch: "volta"}, http.StatusBadRequest},
		{"unparsable ptx", CompileRequest{PTX: "this is not ptx", Block: 64}, http.StatusUnprocessableEntity},
		{"missing kernel", CompileRequest{PTX: testPTX("k_b", 4), Kernel: "nope", Block: 64}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		var body map[string]any
		if code := post(t, ts.URL, tc.req, &body); code != tc.want {
			t.Errorf("%s: status = %d, want %d (body %v)", tc.name, code, tc.want, body)
		}
		if msg, _ := body["error"].(string); msg == "" {
			t.Errorf("%s: no error message in body", tc.name)
		}
	}
	// Malformed JSON outright.
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
}

// TestLoadShedding fills the worker pool and the admission queue, then
// asserts the next request is shed with 429 + Retry-After instead of
// queueing unboundedly.
func TestLoadShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 1})

	// Occupy the only worker slot so any admitted request waits.
	s.workers <- struct{}{}
	defer func() { <-s.workers }()

	// First request takes the only admission token and parks waiting for a
	// worker; we hold it in flight from a goroutine.
	admitted := make(chan int, 1)
	go func() {
		var out map[string]any
		admitted <- post(t, ts.URL, CompileRequest{PTX: testPTX("k_shed_a", 6), Block: 64, TimeoutMs: 2000}, &out)
	}()
	waitFor(t, func() bool { return s.Stats().Admitted.Load() == 1 })

	// Queue is now full: the next request must be shed immediately.
	buf, _ := json.Marshal(CompileRequest{PTX: testPTX("k_shed_b", 6), Block: 64})
	resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.Stats().Shed.Load(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}

	// The parked request runs out of its deadline while queued: 504, not a
	// hang — admitted latency is bounded by the deadline.
	if code := <-admitted; code != http.StatusGatewayTimeout {
		t.Errorf("parked request: status = %d, want 504", code)
	}
	if got := s.Stats().DeadlineExceeded.Load(); got != 1 {
		t.Errorf("deadline_exceeded = %d, want 1", got)
	}
}

// TestPanicIsolation injects a panic into the pass pipeline and asserts it
// is confined to its request: a 500 for that compile, a healthy 200 for
// the next one.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	passes.SetGlobalWrap(func(p passes.Pass) passes.Pass {
		return passes.After(p, func(k *ptx.Kernel, _ *passes.AnalysisManager) error {
			panic("injected pass panic")
		})
	})
	clear := sync.OnceFunc(func() { passes.SetGlobalWrap(nil) })
	defer clear()

	var body map[string]any
	if code := post(t, ts.URL, CompileRequest{PTX: testPTX("k_panic", 6), Block: 64}, &body); code != http.StatusInternalServerError {
		t.Fatalf("panicking compile: status = %d, want 500 (body %v)", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "injected pass panic") {
		t.Errorf("error body %q does not carry the panic value", msg)
	}
	if got := s.Stats().Panics.Load(); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}

	// The daemon survived; an honest compile still works.
	clear()
	var ok CompileResponse
	if code := post(t, ts.URL, CompileRequest{PTX: testPTX("k_after_panic", 6), Block: 64}, &ok); code != http.StatusOK {
		t.Fatalf("compile after panic: status = %d, want 200", code)
	}
}

// TestGracefulDrain holds a compile in flight, starts Shutdown, and
// asserts: readyz flips to 503, new compiles are refused, the in-flight
// request completes successfully, and Shutdown returns nil.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, CacheDir: t.TempDir()})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	passes.SetGlobalWrap(func(p passes.Pass) passes.Pass {
		return passes.After(p, func(k *ptx.Kernel, _ *passes.AnalysisManager) error {
			once.Do(func() {
				close(entered)
				<-release
			})
			return nil
		})
	})
	defer passes.SetGlobalWrap(nil)

	inflight := make(chan struct {
		code int
		resp CompileResponse
	}, 1)
	go func() {
		var r CompileResponse
		code := post(t, ts.URL, CompileRequest{PTX: testPTX("k_drain", 6), Block: 64, TimeoutMs: 10000}, &r)
		inflight <- struct {
			code int
			resp CompileResponse
		}{code, r}
	}()
	<-entered

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return s.draining.Load() })

	// Draining: not ready, and new work is refused.
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", rz.StatusCode)
	}
	if code := post(t, ts.URL, CompileRequest{PTX: testPTX("k_refused", 6), Block: 64}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("compile while draining: %d, want 503", code)
	}

	// Unblock the in-flight compile: it must finish cleanly, then the
	// drain completes.
	close(release)
	got := <-inflight
	if got.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status = %d, want 200", got.code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestPersistentCacheAcrossRestart compiles on one server instance, then
// opens a second one on the same cache directory: the same request must be
// answered from the persistent tier with zero computes.
func TestPersistentCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := CompileRequest{PTX: testPTX("k_warm", 8), Block: 64}

	a, tsA := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	var r1 CompileResponse
	if code := post(t, tsA.URL, req, &r1); code != http.StatusOK {
		t.Fatalf("first compile: %d", code)
	}
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	b, tsB := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	var r2 CompileResponse
	if code := post(t, tsB.URL, req, &r2); code != http.StatusOK {
		t.Fatalf("warm compile: %d", code)
	}
	if !r2.Cached || r2.CacheTier != "persistent" {
		t.Errorf("restart did not serve from persistent tier: cached=%v tier=%q", r2.Cached, r2.CacheTier)
	}
	if r2.PTX != r1.PTX {
		t.Errorf("persistent replay differs from original compile")
	}
	if got := b.Stats().Computes.Load(); got != 0 {
		t.Errorf("restarted daemon computes = %d, want 0", got)
	}
	if got := b.Stats().PersistentHits.Load(); got != 1 {
		t.Errorf("persistent hits = %d, want 1", got)
	}
}

// waitFor polls cond until it holds or 5s pass.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestReadyzFlipsBeforeDrain pins the ordering a health-checked gateway
// depends on: the moment Shutdown begins, /readyz answers 503 while the
// listener is still accepting connections (/healthz still 200, so the
// replica is alive for in-flight work) — the flip is observable BEFORE
// the listener closes, for at least the DrainGrace window.
func TestReadyzFlipsBeforeDrain(t *testing.T) {
	s, err := New(Config{Workers: 1, DrainGrace: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatalf("GET %s during drain grace: %v (listener closed before readyz flip was observable)", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", code)
	}

	// Begin the drain with a grace long enough that the listener is
	// guaranteed still open when we probe; cancel the grace wait once the
	// ordering has been observed.
	ctx, cancel := context.WithCancel(context.Background())
	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(ctx) }()
	waitFor(t, func() bool { return s.draining.Load() })

	// The ordering under test: not-ready first, listener still up.
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz at drain start = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200 (liveness must outlast readiness)", code)
	}

	cancel() // cut the grace short; the drain proceeds to close the listener
	<-drained
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

func TestHealthAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", hz.StatusCode)
	}
	sz, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sz.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(sz.Body).Decode(&snap); err != nil {
		t.Fatalf("statsz decode: %v", err)
	}
	if snap.Build == "" || snap.Workers != 1 {
		t.Errorf("statsz snapshot implausible: %+v", snap)
	}
}
