package server

import (
	"fmt"

	"crat/internal/checkpoint"
)

// routeSchema versions the gateway's placement hash independently of the
// daemon cacheSchema: bumping one must not silently remap the other.
// Changing routeSchema reshuffles which replica owns which key (a cold
// restart of the fleet's cache affinity), nothing more — correctness
// never depends on placement.
const routeSchema = "cratgw-route/v2"

// RouteKey returns the stable content-address the cratgw gateway hashes
// onto its replica ring. It covers the request's semantic fields exactly
// as the client sent them (Verify stays tri-state and Backends stays
// unresolved: the gateway must not guess the daemons' defaults), so the
// same compile from any
// client always lands on the same replica and hits that replica's warm
// memory/journal tiers. It deliberately does NOT resolve server-side
// defaults the way normalize does — placement only needs determinism
// over the wire request, and every replica shares one configuration.
func RouteKey(req CompileRequest) (string, error) {
	verify := 0 // unset
	if req.Verify != nil {
		verify = 1 // explicit false
		if *req.Verify {
			verify = 2 // explicit true
		}
	}
	key, err := checkpoint.Hash(struct {
		Schema     string
		PTX        string
		Kernel     string
		Arch       string
		Block      int
		Grid       int
		OptTLP     int
		NoShared   bool
		Coalesce   bool
		Backends   []string
		Verify     int
		VerifyRuns int
		VerifySeed int64
	}{routeSchema, req.PTX, req.Kernel, req.Arch, req.Block, req.Grid,
		req.OptTLP, req.NoSharedSpill, req.Coalesce, req.Backends, verify, req.VerifyRuns, req.VerifySeed})
	if err != nil {
		return "", fmt.Errorf("hashing route key: %w", err)
	}
	return key, nil
}
