package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"crat/internal/emu/ptxgen"
	"crat/internal/pool"
	"crat/internal/ptx"
	"crat/internal/retry"
)

// LoadOptions configures one closed-loop load run against a cratd
// endpoint: Concurrency virtual clients issue Requests requests drawn
// round-robin from a deterministic corpus of Kernels generated kernels.
// The same Seed/Kernels/Block always produces the same request bodies, so
// a repeated run against a warm daemon is answered entirely from cache —
// the service-smoke restart check depends on that.
type LoadOptions struct {
	Concurrency int           // closed-loop virtual clients (0 = 4)
	Requests    int           // total requests (0 = 2×Kernels)
	Kernels     int           // distinct generated kernels (0 = 4)
	Seed        int64         // corpus generation seed
	Block       int           // thread-block size for every request (0 = 64)
	Arch        string        // "" = fermi
	Verify      bool          // request oracle verification
	Timeout     time.Duration // client-side per-request deadline (0 = 30s)
	TimeoutMs   int           // server-side deadline sent in the request (0 = daemon default)
	// CancelFrac injects client aborts: that fraction of requests is
	// canceled after CancelAfter (default Timeout/10) to exercise the
	// daemon's canceled-client path.
	CancelFrac  float64
	CancelAfter time.Duration
	// Retries re-sends a shed (429) request up to N times through
	// internal/retry (full-jitter exponential backoff, Retry-After hints
	// honored and capped at 1s). 0 = count the shed and move on, which is
	// what the overload experiments want.
	Retries int
	// CaptureDecisions records a canonical digest of every 200 response's
	// content fields, keyed by corpus index, in LoadReport.Decisions.
	// Two runs over the same corpus must produce identical digest lists
	// no matter which replica (or cache tier) served each request — the
	// shard-smoke byte-identical check diffs exactly these.
	CaptureDecisions bool
	// Clock is injectable for deterministic retry tests (default system).
	Clock retry.Clock
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Kernels <= 0 {
		o.Kernels = 4
	}
	if o.Requests <= 0 {
		o.Requests = 2 * o.Kernels
	}
	if o.Block <= 0 {
		o.Block = 64
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.CancelAfter <= 0 {
		o.CancelAfter = o.Timeout / 10
	}
	return o
}

// LoadReport aggregates one load run. Latency percentiles cover completed
// (200) requests only — i.e. the latency the daemon's admission control
// promises to bound by the deadline.
type LoadReport struct {
	Requests int           `json:"requests"`
	OK       int           `json:"ok"`
	Cached   int           `json:"cached"`
	Degraded int           `json:"degraded"`
	Shed     int           `json:"shed"`
	Timeouts int           `json:"timeouts"` // client- or server-side deadline
	Canceled int           `json:"canceled"` // injected aborts
	Failed   int           `json:"failed"`   // everything else
	Elapsed  time.Duration `json:"elapsed"`
	RPS      float64       `json:"rps"`
	P50      time.Duration `json:"p50"`
	P95      time.Duration `json:"p95"`
	P99      time.Duration `json:"p99"`
	MaxOK    time.Duration `json:"max_ok"`
	ByStatus map[int]int   `json:"by_status"`
	// Decisions (with LoadOptions.CaptureDecisions) holds one canonical
	// digest line per corpus index that completed at least once, sorted
	// by index. Inconsistent counts corpus indices whose repeats returned
	// DIFFERENT content — always zero when the service is honest, no
	// matter which replica served which repeat.
	Decisions    []string `json:"decisions,omitempty"`
	Inconsistent int      `json:"inconsistent,omitempty"`
}

// decisionDigest canonicalizes a response's content-addressed fields
// (everything except the per-serve Cached/CacheTier/ElapsedMs metadata).
func decisionDigest(cr *CompileResponse) string {
	return fmt.Sprintf("kernel=%s arch=%s reg=%d tlp=%d candidates=%d profile_runs=%d degraded=%t divergence=%q ptx_sha256=%x",
		cr.Kernel, cr.Arch, cr.Reg, cr.TLP, cr.Candidates, cr.ProfileRuns,
		cr.Degraded, cr.Divergence, sha256.Sum256([]byte(cr.PTX)))
}

// Corpus generates n deterministic compile requests: one ptxgen kernel per
// seed offset, printed to module text.
func Corpus(n int, seed int64, block int) []CompileRequest {
	reqs := make([]CompileRequest, n)
	for i := range reqs {
		k := ptxgen.Generate(ptxgen.Config{Seed: seed + int64(i), Block: block})
		reqs[i] = CompileRequest{PTX: ptx.Print(k), Block: block}
	}
	return reqs
}

// RunLoad drives baseURL with a closed loop of opts.Concurrency clients
// until opts.Requests requests have completed. The closed loop reuses the
// worker pool's index-stealing dispatch, so per-request outcomes land in
// pre-sized slices and the report is independent of scheduling order.
func RunLoad(ctx context.Context, baseURL string, opts LoadOptions) (*LoadReport, error) {
	opts = opts.withDefaults()
	corpus := Corpus(opts.Kernels, opts.Seed, opts.Block)
	for i := range corpus {
		corpus[i].Arch = opts.Arch
		corpus[i].TimeoutMs = opts.TimeoutMs
		if opts.Verify {
			v := true
			corpus[i].Verify = &v
		}
	}
	client := &http.Client{}
	url := baseURL + "/v1/compile"

	type outcome struct {
		status   int
		dur      time.Duration
		cached   bool
		degraded bool
		err      error
		canceled bool
		digest   string
	}
	outs := make([]outcome, opts.Requests)
	cancelEvery := 0
	if opts.CancelFrac > 0 {
		cancelEvery = int(1 / opts.CancelFrac)
	}
	// The 429 retry loop is the shared internal/retry discipline: full
	// jitter between re-sends, Retry-After hints honored (capped at 1s so
	// a misbehaving hint can't stall the run), and no retry once ctx dies.
	policy := retry.Policy{
		MaxAttempts: opts.Retries + 1,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Second,
		Clock:       opts.Clock,
	}

	start := time.Now()
	runErr := pool.RunCtx(ctx, opts.Concurrency, opts.Requests, func(i int) {
		req := corpus[i%len(corpus)]
		buf, _ := json.Marshal(req)
		o := &outs[i]

		retry.Do(ctx, policy, func(a *retry.Attempt) (bool, error) {
			timeout := opts.Timeout
			if cancelEvery > 0 && i%cancelEvery == cancelEvery-1 {
				o.canceled = true
				timeout = opts.CancelAfter
			}
			rctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			t0 := time.Now()
			hreq, err := http.NewRequestWithContext(rctx, http.MethodPost, url, bytes.NewReader(buf))
			if err != nil {
				o.err = err
				return true, nil
			}
			hreq.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(hreq)
			o.dur = time.Since(t0)
			if err != nil {
				o.err = err
				return true, nil
			}
			defer resp.Body.Close()
			o.status = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				if hint, ok := retry.RetryAfter(resp.Header); ok {
					a.SetHint(min(hint, time.Second))
				}
				io.Copy(io.Discard, resp.Body)
				return false, nil // retry (up to the policy's budget)
			}
			if resp.StatusCode == http.StatusOK {
				var cr CompileResponse
				if derr := json.NewDecoder(resp.Body).Decode(&cr); derr == nil {
					o.cached = cr.Cached
					o.degraded = cr.Degraded
					if opts.CaptureDecisions {
						o.digest = decisionDigest(&cr)
					}
				}
			}
			io.Copy(io.Discard, resp.Body)
			return true, nil
		})
	})

	rep := &LoadReport{Requests: opts.Requests, Elapsed: time.Since(start), ByStatus: map[int]int{}}
	var okDurs []time.Duration
	for i := range outs {
		o := &outs[i]
		switch {
		case o.err != nil && o.canceled:
			rep.Canceled++
		case o.err != nil && isDeadlineErr(o.err):
			rep.Timeouts++
		case o.err != nil:
			rep.Failed++
		case o.status == http.StatusOK:
			rep.OK++
			rep.ByStatus[o.status]++
			okDurs = append(okDurs, o.dur)
			if o.cached {
				rep.Cached++
			}
			if o.degraded {
				rep.Degraded++
			}
		case o.status == http.StatusTooManyRequests:
			rep.Shed++
			rep.ByStatus[o.status]++
		case o.status == http.StatusGatewayTimeout:
			rep.Timeouts++
			rep.ByStatus[o.status]++
		case o.status != 0:
			rep.Failed++
			rep.ByStatus[o.status]++
		default:
			rep.Failed++
		}
	}
	if len(okDurs) > 0 {
		sort.Slice(okDurs, func(i, j int) bool { return okDurs[i] < okDurs[j] })
		rep.P50 = percentile(okDurs, 50)
		rep.P95 = percentile(okDurs, 95)
		rep.P99 = percentile(okDurs, 99)
		rep.MaxOK = okDurs[len(okDurs)-1]
	}
	if rep.Elapsed > 0 {
		rep.RPS = float64(rep.OK) / rep.Elapsed.Seconds()
	}
	if opts.CaptureDecisions {
		// Fold repeats of the same corpus index together: every repeat
		// must have returned identical content, or the service handed two
		// clients different Decisions for the same compile.
		byIdx := make(map[int]string, len(corpus))
		for i := range outs {
			o := &outs[i]
			if o.digest == "" {
				continue
			}
			idx := i % len(corpus)
			if prev, ok := byIdx[idx]; ok && prev != o.digest {
				rep.Inconsistent++
				continue
			}
			byIdx[idx] = o.digest
		}
		idxs := make([]int, 0, len(byIdx))
		for idx := range byIdx {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			rep.Decisions = append(rep.Decisions, fmt.Sprintf("idx=%d %s", idx, byIdx[idx]))
		}
	}
	if runErr != nil && rep.OK == 0 {
		return rep, fmt.Errorf("load run aborted: %w", runErr)
	}
	return rep, nil
}

// percentile returns the p-th percentile of sorted durations
// (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

func isDeadlineErr(err error) bool {
	return isCancellation(err)
}

// Summary renders the report as the human-readable cratload output.
func (r *LoadReport) Summary() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "requests %d: ok %d (cached %d, degraded %d)  shed %d  timeout %d  canceled %d  failed %d\n",
		r.Requests, r.OK, r.Cached, r.Degraded, r.Shed, r.Timeouts, r.Canceled, r.Failed)
	if r.Inconsistent > 0 {
		fmt.Fprintf(&b, "INCONSISTENT: %d corpus entries returned different Decisions across repeats\n", r.Inconsistent)
	}
	fmt.Fprintf(&b, "throughput %.1f req/s over %s\n", r.RPS, r.Elapsed.Round(time.Millisecond))
	if r.OK > 0 {
		fmt.Fprintf(&b, "latency p50 %s  p95 %s  p99 %s  max %s\n",
			r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
			r.P99.Round(time.Microsecond), r.MaxOK.Round(time.Microsecond))
	}
	return b.String()
}
