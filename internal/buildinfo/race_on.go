//go:build race

package buildinfo

// RaceEnabled reports whether this binary was compiled with the race
// detector. Race builds run the simulator an order of magnitude slower, so
// benchmark tooling records (and by default refuses) race-enabled runs —
// the BENCH_2026-08-05b.json throughput anomaly was exactly such a run
// landing in the trajectory untagged.
const RaceEnabled = true
