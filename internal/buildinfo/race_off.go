//go:build !race

package buildinfo

// RaceEnabled reports whether this binary was compiled with the race
// detector. See race_on.go.
const RaceEnabled = false
