// Package buildinfo derives a single attributable version string for every
// cmd/ binary from the information the Go toolchain embeds at link time
// (runtime/debug.ReadBuildInfo): module version, VCS revision, and dirty
// flag. Bug reports, BENCH snapshots, and /statsz responses all carry it,
// so a number can always be traced back to the exact build that produced
// it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String returns "crat <version> (<revision>[+dirty]) <go version>".
// Fields that the build did not embed (e.g. `go run` outside a VCS
// checkout) degrade to "devel"/"unknown" rather than being omitted, so the
// string always has the same shape.
func String() string {
	version, revision, dirty := "devel", "unknown", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	if len(revision) > 12 {
		revision = revision[:12]
	}
	if dirty {
		revision += "+dirty"
	}
	return fmt.Sprintf("crat %s (%s) %s", version, revision, runtime.Version())
}

// Print writes the version line for one binary, e.g. "cratd: crat devel
// (1a2b3c4d5e6f) go1.22.0". Every cmd/ binary's -version flag funnels here
// so the output format stays uniform across tools.
func Print(binary string) {
	fmt.Printf("%s: %s\n", strings.TrimSpace(binary), String())
}
