package passes

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"crat/internal/cfg"
	"crat/internal/ptx"
)

// buildLoopKernel builds the same loop shape the cfg tests use:
//
//	r0 = 0; r1 = n
//	LOOP: p = r0 >= r1 ; @p bra DONE
//	  r2 = r0 * 2
//	  r0 = r0 + 1
//	  bra LOOP
//	DONE: exit
func buildLoopKernel() *ptx.Kernel {
	b := ptx.NewBuilder("loop")
	b.Param("n", ptx.U32)
	r0 := b.Reg(ptx.U32)
	r1 := b.Reg(ptx.U32)
	r2 := b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	b.Mov(ptx.U32, r0, ptx.Imm(0))
	b.LdParam(ptx.U32, r1, "n")
	b.Label("LOOP").Setp(ptx.CmpGe, ptx.U32, p, ptx.R(r0), ptx.R(r1))
	b.BraIf(p, false, "DONE")
	b.Mul(ptx.U32, r2, ptx.R(r0), ptx.Imm(2))
	b.Add(ptx.U32, r0, ptx.R(r0), ptx.Imm(1))
	b.Bra("LOOP")
	b.Label("DONE").Exit()
	return b.Kernel()
}

func TestAnalysisCachingAndInvalidation(t *testing.T) {
	k := buildLoopKernel()
	am := NewAnalysisManager(k)

	for i := 0; i < 3; i++ {
		if _, err := am.CFG(); err != nil {
			t.Fatal(err)
		}
		if _, err := am.Liveness(); err != nil {
			t.Fatal(err)
		}
		if _, err := am.Dominators(); err != nil {
			t.Fatal(err)
		}
		if _, err := am.Reconvergence(); err != nil {
			t.Fatal(err)
		}
		am.UseDef()
		if _, err := am.InstLoopDepth(); err != nil {
			t.Fatal(err)
		}
	}
	for _, kind := range []Kind{KindCFG, KindLiveness, KindDominators, KindReconvergence, KindUseDef, KindLoopDepth} {
		if got := am.Computes[kind]; got != 1 {
			t.Errorf("%v computed %d times on an unchanged kernel, want 1", kind, got)
		}
	}

	// Invalidating a derived analysis leaves the CFG cached.
	v := am.Version()
	am.Invalidate(KindLiveness)
	if am.Version() == v {
		t.Error("Invalidate did not advance the version")
	}
	if _, err := am.Liveness(); err != nil {
		t.Fatal(err)
	}
	if am.Computes[KindLiveness] != 2 {
		t.Errorf("liveness computes = %d after invalidation, want 2", am.Computes[KindLiveness])
	}
	if am.Computes[KindCFG] != 1 {
		t.Errorf("cfg recomputed (%d) by a liveness-only invalidation", am.Computes[KindCFG])
	}

	// Invalidating the CFG cascades to every derived analysis but spares
	// use-def, which depends only on the instruction list.
	am.Invalidate(KindCFG)
	if _, err := am.Reconvergence(); err != nil {
		t.Fatal(err)
	}
	am.UseDef()
	if am.Computes[KindReconvergence] != 2 {
		t.Errorf("reconvergence computes = %d after CFG invalidation, want 2", am.Computes[KindReconvergence])
	}
	if am.Computes[KindUseDef] != 1 {
		t.Errorf("use-def recomputed (%d) by a CFG invalidation", am.Computes[KindUseDef])
	}

	// Replace drops everything.
	am.Replace(k.Clone())
	am.UseDef()
	if am.Computes[KindUseDef] != 2 {
		t.Errorf("use-def computes = %d after Replace, want 2", am.Computes[KindUseDef])
	}
}

func TestAnalysesMatchDirectComputation(t *testing.T) {
	k := buildLoopKernel()
	am := NewAnalysisManager(k)

	g, err := cfg.Build(k)
	if err != nil {
		t.Fatal(err)
	}
	doms, err := am.Dominators()
	if err != nil {
		t.Fatal(err)
	}
	if want := g.Dominators(); !reflect.DeepEqual(doms, want) {
		t.Errorf("Dominators = %v, want %v", doms, want)
	}
	pdoms, err := am.PostDominators()
	if err != nil {
		t.Fatal(err)
	}
	if want := g.PostDominators(); !reflect.DeepEqual(pdoms, want) {
		t.Errorf("PostDominators = %v, want %v", pdoms, want)
	}
	depth, err := am.InstLoopDepth()
	if err != nil {
		t.Fatal(err)
	}
	if want := g.InstLoopDepth(); !reflect.DeepEqual(depth, want) {
		t.Errorf("InstLoopDepth = %v, want %v", depth, want)
	}

	rc, err := am.Reconvergence()
	if err != nil {
		t.Fatal(err)
	}
	reconvMap := g.ReconvergencePoints()
	for pc, want := range reconvMap {
		if rc.Reconv[pc] != want {
			t.Errorf("Reconv[%d] = %d, want %d", pc, rc.Reconv[pc], want)
		}
	}
	for pc, r := range rc.Reconv {
		if _, ok := reconvMap[pc]; !ok && r != -1 {
			t.Errorf("Reconv[%d] = %d, want -1 (not a conditional branch)", pc, r)
		}
	}

	ud := am.UseDef()
	var buf []ptx.Reg
	for i := range k.Insts {
		in := &k.Insts[i]
		buf = in.Uses(buf[:0])
		if len(buf) != len(ud.Uses[i]) {
			t.Fatalf("Uses[%d] = %v, want %v", i, ud.Uses[i], buf)
		}
		for j := range buf {
			if buf[j] != ud.Uses[i][j] {
				t.Fatalf("Uses[%d] = %v, want %v", i, ud.Uses[i], buf)
			}
		}
		wantDef := ptx.NoReg
		if in.Dst.Kind == ptx.OperandReg {
			wantDef = in.Dst.Reg
		}
		if ud.Defs[i] != wantDef {
			t.Errorf("Defs[%d] = %d, want %d", i, ud.Defs[i], wantDef)
		}
	}
}

func TestSharedRegistry(t *testing.T) {
	k := buildLoopKernel()
	a1, err := Shared(k)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Shared(k)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("Shared returned different objects for the same kernel identity")
	}

	// A clone is a different identity and gets its own (equal) analyses.
	ac, err := Shared(k.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1.Targets, ac.Targets) || !reflect.DeepEqual(a1.Reconv, ac.Reconv) {
		t.Error("clone analyses differ from the original's")
	}

	// In-place growth is detected by the staleness guard.
	kg := buildLoopKernel()
	if _, err := Shared(kg); err != nil {
		t.Fatal(err)
	}
	kg.Append(ptx.Inst{Op: ptx.OpNop, Guard: ptx.NoReg})
	ag, err := Shared(kg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ag.Targets) != len(kg.Insts) {
		t.Errorf("stale analyses served after in-place growth: len(Targets)=%d, want %d",
			len(ag.Targets), len(kg.Insts))
	}

	// A malformed CFG surfaces cfg.Build's error, unwrapped.
	kb := buildLoopKernel()
	kb.Append(ptx.Inst{Op: ptx.OpBra, Target: "NOWHERE", Guard: ptx.NoReg})
	if _, err := Shared(kb); err == nil || !strings.Contains(err.Error(), "cfg:") {
		t.Errorf("Shared on broken CFG: err = %v, want cfg error", err)
	}
}

func TestManagerRunsPipeline(t *testing.T) {
	k := buildLoopKernel()
	am := NewAnalysisManager(k)
	m := &Manager{VerifyEach: true}

	var order []string
	mk := func(name string, needs []Kind, body func(k *ptx.Kernel, am *AnalysisManager) error) Pass {
		return Fn{PassName: name, Needs: needs, Body: func(k *ptx.Kernel, am *AnalysisManager) error {
			order = append(order, name)
			if body != nil {
				return body(k, am)
			}
			return nil
		}}
	}
	grow := Fn{PassName: "grow", Clobbers: []Kind{KindCFG, KindUseDef},
		Body: func(k *ptx.Kernel, am *AnalysisManager) error {
			order = append(order, "grow")
			k.Insts = append(k.Insts[:len(k.Insts):len(k.Insts)], ptx.Inst{Op: ptx.OpNop, Guard: ptx.NoReg})
			return nil
		}}

	err := m.Run(am,
		mk("read-liveness", []Kind{KindLiveness}, nil),
		grow,
		mk("read-again", []Kind{KindLiveness}, nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"read-liveness", "grow", "read-again"}; !reflect.DeepEqual(order, want) {
		t.Errorf("pass order = %v, want %v", order, want)
	}
	if len(m.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(m.Events))
	}
	ge := m.Events[1]
	if ge.Pass != "grow" || ge.InstsAfter != ge.InstsBefore+1 || !ge.Changed {
		t.Errorf("grow event = %+v, want +1 inst and Changed", ge)
	}
	if m.Events[0].Changed {
		t.Errorf("analysis-only pass marked Changed: %+v", m.Events[0])
	}
	// The declared invalidation forced liveness to be rebuilt for pass 3.
	if am.Computes[KindLiveness] != 2 {
		t.Errorf("liveness computes = %d, want 2 (rebuilt after grow)", am.Computes[KindLiveness])
	}
}

func TestManagerVerifyEachNamesThePass(t *testing.T) {
	k := buildLoopKernel()
	am := NewAnalysisManager(k)
	m := &Manager{VerifyEach: true}
	breaker := Fn{PassName: "breaker", Body: func(k *ptx.Kernel, am *AnalysisManager) error {
		k.Insts[0].Dst.Reg = ptx.Reg(k.NumRegs() + 7)
		return nil
	}}
	err := m.Run(am, breaker)
	if err == nil {
		t.Fatal("verify-after-pass accepted a broken kernel")
	}
	if !strings.Contains(err.Error(), "breaker") {
		t.Errorf("verify failure does not name the pass: %v", err)
	}
	var verr *ptx.VerifyError
	if !errors.As(err, &verr) {
		t.Errorf("verify failure is not a *ptx.VerifyError: %v", err)
	}
}

func TestManagerReturnsPassErrorsUnwrapped(t *testing.T) {
	sentinel := errors.New("sentinel failure")
	k := buildLoopKernel()
	m := &Manager{}
	err := m.Run(NewAnalysisManager(k),
		Fn{PassName: "fails", Body: func(k *ptx.Kernel, am *AnalysisManager) error { return sentinel }})
	if err != sentinel {
		t.Errorf("pass error was wrapped: %v", err)
	}
}

func TestManagerSpotCheckSeesBeforeAndAfter(t *testing.T) {
	k := buildLoopKernel()
	am := NewAnalysisManager(k)
	var checked []string
	m := &Manager{
		SpotCheck: func(pass string, before, after *ptx.Kernel) error {
			checked = append(checked, pass)
			if len(after.Insts) != len(before.Insts)+1 {
				t.Errorf("spot-check %s: before=%d after=%d insts, want +1", pass, len(before.Insts), len(after.Insts))
			}
			return nil
		},
	}
	noop := Fn{PassName: "noop", Body: func(k *ptx.Kernel, am *AnalysisManager) error { return nil }}
	grow := Fn{PassName: "grow", Clobbers: []Kind{KindCFG},
		Body: func(k *ptx.Kernel, am *AnalysisManager) error {
			k.Insts = append(k.Insts[:len(k.Insts):len(k.Insts)], ptx.Inst{Op: ptx.OpNop, Guard: ptx.NoReg})
			return nil
		}}
	if err := m.Run(am, noop, grow); err != nil {
		t.Fatal(err)
	}
	// Only the IR-changing pass is spot-checked.
	if want := []string{"grow"}; !reflect.DeepEqual(checked, want) {
		t.Errorf("spot-checked passes = %v, want %v", checked, want)
	}
}

func TestGlobalWrapDecoratesEveryPass(t *testing.T) {
	var seen []string
	SetGlobalWrap(func(p Pass) Pass {
		return After(p, func(k *ptx.Kernel, am *AnalysisManager) error {
			seen = append(seen, Inner(p).Name())
			return nil
		})
	})
	defer SetGlobalWrap(nil)

	k := buildLoopKernel()
	m := &Manager{}
	err := m.Run(NewAnalysisManager(k),
		Fn{PassName: "a", Body: func(k *ptx.Kernel, am *AnalysisManager) error { return nil }},
		Fn{PassName: "b", Body: func(k *ptx.Kernel, am *AnalysisManager) error { return nil }},
	)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(seen, want) {
		t.Errorf("wrapped passes = %v, want %v", seen, want)
	}
}

func TestTimingRegistry(t *testing.T) {
	ResetTimings()
	k := buildLoopKernel()
	m := &Manager{}
	p := Fn{PassName: "timed", Body: func(k *ptx.Kernel, am *AnalysisManager) error { return nil }}
	if err := m.Run(NewAnalysisManager(k), p, p); err != nil {
		t.Fatal(err)
	}
	ts := Timings()
	if len(ts) != 1 || ts[0].Pass != "timed" || ts[0].Runs != 2 {
		t.Errorf("Timings = %+v, want one entry with 2 runs", ts)
	}
	ResetTimings()
	if len(Timings()) != 0 {
		t.Error("ResetTimings left entries behind")
	}
}
