package passes

import (
	"sync"
	"sync/atomic"

	"crat/internal/ptx"
)

// KernelAnalyses is the read-side bundle the executors (gpusim, emu)
// consume: per-pc branch targets, reconvergence points, and register
// use/def summaries. It is built once per kernel identity through an
// AnalysisManager and shared across concurrent simulations.
type KernelAnalyses struct {
	Targets []int       // per-pc branch target instruction index (-1 = not a bra)
	Reconv  []int       // per-pc reconvergence pc for conditional branches (-1 = none)
	Uses    [][]ptx.Reg // per-pc registers read (guard, sources, memory bases)
	Defs    []ptx.Reg   // per-pc register written (ptx.NoReg = none)
	// Micro is the pre-decoded micro-op stream both executors run from:
	// operand kinds resolved, immediates pre-encoded, symbols pre-folded.
	Micro *MicroStream
}

// sharedEntry holds one kernel's analyses. res is an atomic pointer because
// the staleness check in Shared reads it while another goroutine may still
// be inside the entry's once.Do publishing it.
type sharedEntry struct {
	once sync.Once
	res  atomic.Pointer[sharedResult]
}

type sharedResult struct {
	an     *KernelAnalyses
	err    error
	nInsts int // len(k.Insts) at analysis time (staleness guard)
}

// sharedCacheMax bounds the registry; past it the map is evicted wholesale
// (long sweeps allocate thousands of short-lived kernels, and rebuilding a
// handful of live ones is cheaper than retaining them all).
const sharedCacheMax = 1024

var (
	sharedMu    sync.Mutex
	sharedCache = map[*ptx.Kernel]*sharedEntry{}
)

// Shared returns the memoized KernelAnalyses for k, computing them on
// first use. The kernel must not be mutated after its first lookup; callers
// that edit instructions get a fresh entry because Clone yields a new
// pointer, and a kernel whose instruction count changed since analysis is
// re-analyzed rather than served stale. Shared does not validate the
// kernel — executors keep their own Validate calls (and error wrapping) in
// front of it; a malformed CFG surfaces as cfg.Build's error, unwrapped.
func Shared(k *ptx.Kernel) (*KernelAnalyses, error) {
	sharedMu.Lock()
	e, ok := sharedCache[k]
	if ok {
		// Guard against in-place growth (builder reuse): re-analyze.
		if done := e.res.Load(); done != nil && done.nInsts != len(k.Insts) {
			ok = false
		}
	}
	if !ok {
		if len(sharedCache) >= sharedCacheMax {
			sharedCache = map[*ptx.Kernel]*sharedEntry{}
		}
		e = &sharedEntry{}
		sharedCache[k] = e
	}
	sharedMu.Unlock()

	e.once.Do(func() { e.res.Store(buildShared(k)) })
	res := e.res.Load()
	if res.err != nil {
		return nil, res.err
	}
	return res.an, nil
}

func buildShared(k *ptx.Kernel) *sharedResult {
	am := NewAnalysisManager(k)
	rc, err := am.Reconvergence()
	if err != nil {
		return &sharedResult{err: err, nInsts: len(k.Insts)}
	}
	ud := am.UseDef()
	micro, err := am.MicroOps()
	if err != nil {
		return &sharedResult{err: err, nInsts: len(k.Insts)}
	}
	return &sharedResult{
		an: &KernelAnalyses{
			Targets: rc.Targets,
			Reconv:  rc.Reconv,
			Uses:    ud.Uses,
			Defs:    ud.Defs,
			Micro:   micro,
		},
		nInsts: len(k.Insts),
	}
}
