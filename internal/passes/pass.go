package passes

import "crat/internal/ptx"

// Pass is one stage of a kernel transformation pipeline. A pass declares
// the analyses it consumes (the Manager materializes them before Run) and
// the analyses its transform invalidates (the Manager drops them after a
// successful Run; a pass that rebinds the kernel with Replace or calls
// InvalidateAll itself may declare none).
type Pass interface {
	// Name identifies the pass in instrumentation, verification failures,
	// and -dump-after selectors.
	Name() string
	// Requires lists the analyses Run consumes.
	Requires() []Kind
	// Invalidates lists the analyses the transform destroys.
	Invalidates() []Kind
	// Run transforms k (in place, or via am.Replace for a rewrite). The
	// kernel argument always equals am.Kernel().
	Run(k *ptx.Kernel, am *AnalysisManager) error
}

// Fn adapts a function to the Pass interface for simple passes.
type Fn struct {
	PassName string
	Needs    []Kind
	Clobbers []Kind
	Body     func(k *ptx.Kernel, am *AnalysisManager) error
}

// Name implements Pass.
func (f Fn) Name() string { return f.PassName }

// Requires implements Pass.
func (f Fn) Requires() []Kind { return f.Needs }

// Invalidates implements Pass.
func (f Fn) Invalidates() []Kind { return f.Clobbers }

// Run implements Pass.
func (f Fn) Run(k *ptx.Kernel, am *AnalysisManager) error { return f.Body(k, am) }

// wrapped decorates a pass with an extra function that runs after the
// inner pass succeeds; everything else delegates to the inner pass.
type wrapped struct {
	Pass
	after func(k *ptx.Kernel, am *AnalysisManager) error
}

func (w wrapped) Run(k *ptx.Kernel, am *AnalysisManager) error {
	if err := w.Pass.Run(k, am); err != nil {
		return err
	}
	return w.after(am.Kernel(), am)
}

// Unwrap exposes the inner pass so hooks can type-assert on concrete pass
// types through layers of wrapping.
func (w wrapped) Unwrap() Pass { return w.Pass }

// After returns p extended with fn, which runs after p succeeds and sees
// the post-transform kernel. It is the building block for test hooks and
// per-pass observers installed through Manager.Wrap / SetGlobalWrap.
func After(p Pass, fn func(k *ptx.Kernel, am *AnalysisManager) error) Pass {
	return wrapped{Pass: p, after: fn}
}

// Inner peels wrapping layers off p until it reaches a pass that does not
// implement Unwrap, returning that innermost pass.
func Inner(p Pass) Pass {
	for {
		u, ok := p.(interface{ Unwrap() Pass })
		if !ok {
			return p
		}
		p = u.Unwrap()
	}
}
