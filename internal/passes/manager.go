package passes

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"crat/internal/ptx"
)

// Event records one pass execution: wall time and the IR-size delta.
type Event struct {
	Pass        string
	Wall        time.Duration
	InstsBefore int
	InstsAfter  int
	Changed     bool // the pass invalidated analyses (IR version advanced)
}

// Manager runs pass pipelines with instrumentation. The zero value is
// usable; hooks are optional.
type Manager struct {
	// VerifyEach runs ptx.Verify on the kernel after every pass and
	// fails fast with the offending pass named.
	VerifyEach bool
	// DumpAfter, when set, receives the kernel after every pass (cratc
	// -dump-after filters by name inside the hook).
	DumpAfter func(pass string, k *ptx.Kernel)
	// SpotCheck, when set, receives the pre-pass kernel clone and the
	// post-pass kernel for every pass that changed the IR; a non-nil error
	// aborts the pipeline. core wires this to the differential oracle.
	SpotCheck func(pass string, before, after *ptx.Kernel) error
	// Wrap, when set, decorates every pass before it runs (see After).
	Wrap func(Pass) Pass

	// Events accumulates one entry per executed pass, in order.
	Events []Event
}

// Run executes ps in order against am's kernel. Pass Run errors are
// returned unwrapped (callers match on sentinel errors like
// regalloc.ErrInfeasible); verification failures already name the pass via
// ptx.Verify's stage argument.
func (m *Manager) Run(am *AnalysisManager, ps ...Pass) error {
	for _, p := range ps {
		eff := p
		if gw := globalWrap(); gw != nil {
			eff = gw(eff)
		}
		if m.Wrap != nil {
			eff = m.Wrap(eff)
		}
		var before *ptx.Kernel
		if m.SpotCheck != nil {
			before = am.Kernel().Clone()
		}
		instsBefore := len(am.Kernel().Insts)
		verBefore := am.Version()
		if err := am.Require(p.Requires()...); err != nil {
			return err
		}
		start := time.Now()
		err := eff.Run(am.Kernel(), am)
		wall := time.Since(start)
		if err != nil {
			return err
		}
		am.Invalidate(p.Invalidates()...)
		changed := am.Version() != verBefore
		ev := Event{
			Pass:        p.Name(),
			Wall:        wall,
			InstsBefore: instsBefore,
			InstsAfter:  len(am.Kernel().Insts),
			Changed:     changed,
		}
		m.Events = append(m.Events, ev)
		recordTiming(ev)
		if m.VerifyEach {
			if verr := ptx.Verify(am.Kernel(), p.Name()); verr != nil {
				return fmt.Errorf("verify after pass %q: %w", p.Name(), verr)
			}
		}
		if m.DumpAfter != nil {
			m.DumpAfter(p.Name(), am.Kernel())
		}
		if m.SpotCheck != nil && changed {
			if serr := m.SpotCheck(p.Name(), before, am.Kernel()); serr != nil {
				return serr
			}
		}
	}
	return nil
}

// globalWrapHook is the process-wide pass decorator tests install to
// observe or perturb passes without production code carrying test-only
// mutation points (the replacement for the old regalloc.MutateForTest).
var (
	globalWrapMu   sync.Mutex
	globalWrapHook func(Pass) Pass
)

// SetGlobalWrap installs (or, with nil, removes) a decorator applied to
// every pass run by every Manager in the process. Test-only; callers must
// restore the previous value.
func SetGlobalWrap(w func(Pass) Pass) {
	globalWrapMu.Lock()
	globalWrapHook = w
	globalWrapMu.Unlock()
}

func globalWrap() func(Pass) Pass {
	globalWrapMu.Lock()
	defer globalWrapMu.Unlock()
	return globalWrapHook
}

// Timing aggregates executions of one pass across the process.
type Timing struct {
	Pass       string
	Runs       int
	Wall       time.Duration
	InstsDelta int // cumulative instruction-count change (after - before)
}

var (
	timingsMu sync.Mutex
	timings   = map[string]*Timing{}
)

func recordTiming(ev Event) {
	timingsMu.Lock()
	t := timings[ev.Pass]
	if t == nil {
		t = &Timing{Pass: ev.Pass}
		timings[ev.Pass] = t
	}
	t.Runs++
	t.Wall += ev.Wall
	t.InstsDelta += ev.InstsAfter - ev.InstsBefore
	timingsMu.Unlock()
}

// Timings returns a snapshot of the per-pass aggregates, sorted by pass
// name for deterministic rendering.
func Timings() []Timing {
	timingsMu.Lock()
	out := make([]Timing, 0, len(timings))
	for _, t := range timings {
		out = append(out, *t)
	}
	timingsMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Pass < out[j].Pass })
	return out
}

// ResetTimings clears the process-wide aggregates (benchmarks isolate
// measurement windows with it).
func ResetTimings() {
	timingsMu.Lock()
	timings = map[string]*Timing{}
	timingsMu.Unlock()
}
