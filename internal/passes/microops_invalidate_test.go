package passes

import (
	"testing"

	"crat/internal/ptx"
)

// TestMicroOpsCachingAndInvalidation extends the invalidation-table tests to
// the micro-op stream: it must be cached like any analysis, cascade-dropped
// with the CFG and with use-def (it bakes branch targets and register
// operands), and survive invalidations of unrelated derived analyses.
func TestMicroOpsCachingAndInvalidation(t *testing.T) {
	k := buildLoopKernel()
	am := NewAnalysisManager(k)

	for i := 0; i < 3; i++ {
		if _, err := am.MicroOps(); err != nil {
			t.Fatal(err)
		}
	}
	if got := am.Computes[KindMicroOps]; got != 1 {
		t.Errorf("micro-ops computed %d times on an unchanged kernel, want 1", got)
	}

	// A liveness-only invalidation must not touch the stream.
	am.Invalidate(KindLiveness)
	if _, err := am.MicroOps(); err != nil {
		t.Fatal(err)
	}
	if got := am.Computes[KindMicroOps]; got != 1 {
		t.Errorf("micro-ops recomputed (%d) by a liveness-only invalidation", got)
	}

	// Use-def invalidation (a register-renaming rewrite) cascades to the
	// stream even though control flow is untouched.
	am.Invalidate(KindUseDef)
	if _, err := am.MicroOps(); err != nil {
		t.Fatal(err)
	}
	if got := am.Computes[KindMicroOps]; got != 2 {
		t.Errorf("micro-ops computes = %d after use-def invalidation, want 2", got)
	}

	// CFG invalidation cascades too (branch targets are baked in).
	am.Invalidate(KindCFG)
	if _, err := am.MicroOps(); err != nil {
		t.Fatal(err)
	}
	if got := am.Computes[KindMicroOps]; got != 3 {
		t.Errorf("micro-ops computes = %d after CFG invalidation, want 3", got)
	}

	// Replace drops everything.
	am.Replace(k.Clone())
	if _, err := am.MicroOps(); err != nil {
		t.Fatal(err)
	}
	if got := am.Computes[KindMicroOps]; got != 4 {
		t.Errorf("micro-ops computes = %d after Replace, want 4", got)
	}
}

// TestMicroOpsDroppedByPassMutation mutates a kernel through the pass
// manager and requires the cached stream to be dropped and re-lowered from
// the new instructions: a stale stream would keep executing the old code.
func TestMicroOpsDroppedByPassMutation(t *testing.T) {
	k := buildLoopKernel()
	am := NewAnalysisManager(k)
	m := &Manager{}

	// The mul's immediate operand lowers to a pre-encoded constant; find it
	// in the stream so the post-mutation assertion can see it change.
	findMulConst := func() uint64 {
		t.Helper()
		ms, err := am.MicroOps()
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range ms.Ops {
			if u.Op == ptx.OpMul {
				for i := 0; i < int(u.NSrc); i++ {
					if u.Src[i].Kind == SrcConst {
						return u.Src[i].Const
					}
				}
			}
		}
		t.Fatal("no mul with an immediate source in the stream")
		return 0
	}
	if c := findMulConst(); c != 2 {
		t.Fatalf("pre-mutation mul immediate = %d, want 2", c)
	}

	rewrite := Fn{PassName: "strength-tweak", Clobbers: []Kind{KindUseDef},
		Body: func(k *ptx.Kernel, am *AnalysisManager) error {
			for i := range k.Insts {
				in := &k.Insts[i]
				if in.Op == ptx.OpMul {
					in.Srcs[1] = ptx.Imm(8)
				}
			}
			return nil
		}}
	if err := m.Run(am, rewrite); err != nil {
		t.Fatal(err)
	}

	if c := findMulConst(); c != 8 {
		t.Errorf("post-mutation mul immediate = %d, want 8 — the cached stream was not dropped", c)
	}
	if got := am.Computes[KindMicroOps]; got != 2 {
		t.Errorf("micro-ops computes = %d after the mutating pass, want 2", got)
	}
}
