package passes

import (
	"fmt"

	"crat/internal/ptx"
	"crat/internal/sem"
)

// The micro-op stream is the shared pre-decoded execution form of a kernel:
// every ptx.Inst is lowered once into a dense, branch-free MicroOp with its
// operand kinds resolved, immediates pre-encoded at their consumption type,
// symbol addresses pre-folded, and statically-unsupported instructions
// marked as fault ops. Both execution engines consume it — the cycle-level
// simulator (internal/gpusim) lowers it further into its SoA vector plan,
// the functional emulator (internal/emu) interprets it directly — so the
// per-instruction operand switch ladders run once per kernel instead of
// once per lane per dynamic instruction.

// SrcKind discriminates pre-resolved micro-op source slots.
type SrcKind uint8

// Source slot kinds.
const (
	SrcNone    SrcKind = iota
	SrcReg             // read of a register (SoA plane in the simulator)
	SrcConst           // pre-encoded immediate or pre-folded symbol address
	SrcSpecial         // lane/launch-dependent special register
)

// MicroSrc is one pre-resolved source operand.
type MicroSrc struct {
	Kind  SrcKind
	Reg   ptx.Reg     // SrcReg
	Const uint64      // SrcConst: bits at the consumption type
	Spec  ptx.Special // SrcSpecial
}

// MicroClass is the executor dispatch class of a micro-op.
type MicroClass uint8

// Micro-op classes.
const (
	MicroNop     MicroClass = iota
	MicroBra                // branch (Target/Rpc pre-resolved)
	MicroExit               // exit / ret
	MicroBar                // bar.sync
	MicroALU                // vectorizable compute (arith/logic/mov/cvt/setp/selp)
	MicroMem                // ld/st to global, local, or shared memory
	MicroLdParam            // ld.param (constant-bank read)
	MicroBad                // statically unsupported: faults when executed
)

// MicroOp is one pre-decoded instruction. The original opcode, type, and
// comparison survive so executors can pick a typed evaluation kernel; the
// operand work (kind switches, immediate encoding, symbol resolution) is
// already done.
type MicroOp struct {
	Class   MicroClass
	Op      ptx.Opcode
	Type    ptx.Type
	CvtFrom ptx.Type
	Cmp     ptx.CmpOp

	Guard    ptx.Reg // guard predicate register, or ptx.NoReg
	GuardNeg bool

	Dst  ptx.Reg // destination register, or ptx.NoReg
	NSrc uint8
	Src  [3]MicroSrc

	// Memory access (MicroMem / MicroLdParam).
	Space   ptx.Space
	Size    uint8   // access width in bytes
	MemBase ptx.Reg // address base register, or ptx.NoReg
	MemOff  uint64  // displacement with any symbol base pre-folded
	Bypass  bool

	SFU  bool // executes on the special-function unit
	Meta ptx.InstMeta

	Target int // branch target pc (MicroBra)
	Rpc    int // reconvergence pc for conditional branches (-1 = none)

	// Err is the static evaluation error of a MicroBad op, raised as an
	// exec fault on the first executing lane.
	Err error
}

// MicroStream is the per-kernel micro-op array, indexed by pc.
type MicroStream struct {
	Ops []MicroOp
}

// MicroOps returns the kernel's micro-op stream, lowering it on first use.
// It derives from the reconvergence analysis (branch targets baked into
// branch ops) and from the instruction list itself, so it is invalidated
// with the CFG and with use-def.
func (am *AnalysisManager) MicroOps() (*MicroStream, error) {
	if am.valid[KindMicroOps] {
		return am.micro, nil
	}
	rc, err := am.Reconvergence()
	if err != nil {
		return nil, err
	}
	am.micro = lowerMicroOps(am.k, rc)
	am.valid[KindMicroOps] = true
	am.Computes[KindMicroOps]++
	return am.micro, nil
}

// symConst resolves an array or parameter symbol to its kernel-static
// space-relative address, mirroring the executors' symValue: arrays resolve
// inside their declared space, anything else falls back to the param block.
func symConst(k *ptx.Kernel, sym string, space ptx.Space) uint64 {
	if space == ptx.SpaceParam {
		off, _ := k.ParamOffset(sym)
		return uint64(off)
	}
	if off, ok := k.ArrayOffset(sym); ok {
		return uint64(off)
	}
	poff, _ := k.ParamOffset(sym)
	return uint64(poff)
}

// srcSlot pre-resolves one source operand at its consumption type t.
func srcSlot(k *ptx.Kernel, o ptx.Operand, t ptx.Type) MicroSrc {
	switch o.Kind {
	case ptx.OperandReg:
		return MicroSrc{Kind: SrcReg, Reg: o.Reg}
	case ptx.OperandImm, ptx.OperandFImm:
		return MicroSrc{Kind: SrcConst, Const: sem.ImmBits(o, t)}
	case ptx.OperandSpecial:
		return MicroSrc{Kind: SrcSpecial, Spec: o.Spec}
	case ptx.OperandSym:
		// Address-of a shared/local array (space-relative), or a param.
		if a, ok := k.Array(o.Sym); ok {
			return MicroSrc{Kind: SrcConst, Const: symConst(k, o.Sym, a.Space)}
		}
		return MicroSrc{Kind: SrcConst, Const: symConst(k, o.Sym, ptx.SpaceParam)}
	}
	return MicroSrc{Kind: SrcConst} // evaluates to 0, as the operand switch did
}

// memAddress pre-resolves a memory operand: a register base plus a
// displacement with any symbol base folded in.
func memAddress(k *ptx.Kernel, mem ptx.Operand, space ptx.Space) (ptx.Reg, uint64) {
	base := uint64(0)
	reg := ptx.NoReg
	switch {
	case mem.Reg != ptx.NoReg:
		reg = mem.Reg
	case mem.Sym != "":
		base = symConst(k, mem.Sym, space)
	}
	return reg, base + uint64(mem.Off)
}

// probeALU determines statically whether sem supports an (op, type)
// combination: sem's only evaluation errors are "unsupported" defaults that
// do not depend on operand values, so probing with zeros is exact.
func probeALU(op ptx.Opcode, t ptx.Type) error {
	_, err := sem.ALU(op, t, 0, 0, 0)
	return err
}

// lowerMicroOps decodes every instruction of k into its micro-op.
func lowerMicroOps(k *ptx.Kernel, rc *Reconvergence) *MicroStream {
	ops := make([]MicroOp, len(k.Insts))
	for pc := range k.Insts {
		in := &k.Insts[pc]
		u := &ops[pc]
		u.Op = in.Op
		u.Type = in.Type
		u.CvtFrom = in.CvtFrom
		u.Cmp = in.Cmp
		u.Guard = in.Guard
		u.GuardNeg = in.GuardNeg
		u.Meta = in.Meta
		u.Dst = ptx.NoReg
		u.Rpc = -1
		if in.Dst.Kind == ptx.OperandReg {
			u.Dst = in.Dst.Reg
		}

		switch in.Op {
		case ptx.OpNop:
			u.Class = MicroNop
			continue
		case ptx.OpBra:
			u.Class = MicroBra
			u.Target = rc.Targets[pc]
			u.Rpc = rc.Reconv[pc]
			continue
		case ptx.OpExit, ptx.OpRet:
			u.Class = MicroExit
			continue
		case ptx.OpBar:
			u.Class = MicroBar
			continue
		}

		if in.Op.IsMemory() {
			// Malformed shapes (no address/value operand, non-register load
			// destination) become fault ops instead of decode panics:
			// lowering may run before validation.
			if len(in.Srcs) == 0 {
				u.Class = MicroBad
				u.Err = fmt.Errorf("sem: %v missing operand", in.Op)
				continue
			}
			if in.Op == ptx.OpLd && u.Dst == ptx.NoReg {
				u.Class = MicroBad
				u.Err = fmt.Errorf("sem: %v destination is not a register", in.Op)
				continue
			}
			mem := in.Dst
			if in.Op == ptx.OpLd {
				mem = in.Srcs[0]
			} else {
				// Store: Srcs[0] is the stored value.
				u.Src[0] = srcSlot(k, in.Srcs[0], in.Type)
				u.NSrc = 1
			}
			u.Space = in.Space
			u.Size = uint8(in.Type.Bytes())
			u.MemBase, u.MemOff = memAddress(k, mem, in.Space)
			u.Bypass = in.Bypass
			if in.Space == ptx.SpaceParam {
				if in.Op == ptx.OpSt {
					// st.param has no hardware meaning; the lane evaluator
					// rejected it through the ALU path, so keep that error.
					u.Class = MicroBad
					u.Err = probeALU(in.Op, in.Type)
					continue
				}
				u.Class = MicroLdParam
				continue
			}
			u.Class = MicroMem
			continue
		}

		// Vectorizable compute: pre-resolve each source at the type the
		// evaluator reads it (cvt reads its source at CvtFrom).
		u.Class = MicroALU
		u.SFU = in.Op.IsSFU()
		n := len(in.Srcs)
		if n > 3 {
			n = 3
		}
		u.NSrc = uint8(n)
		for i := 0; i < n; i++ {
			t := in.Type
			if in.Op == ptx.OpCvt && i == 0 {
				t = in.CvtFrom
			}
			u.Src[i] = srcSlot(k, in.Srcs[i], t)
		}

		switch in.Op {
		case ptx.OpSetp:
			if _, err := sem.Compare(in.Cmp, in.Type, 0, 0); err != nil {
				u.Class = MicroBad
				u.Err = err
			}
		case ptx.OpSelp:
			// The lane evaluators read the predicate straight from the
			// register file (Srcs[2].Reg), so pin the slot to a register
			// read regardless of the operand's nominal kind.
			if len(in.Srcs) < 3 || in.Srcs[2].Reg < 0 {
				u.Class = MicroBad
				u.Err = fmt.Errorf("sem: selp predicate is not a register")
				continue
			}
			u.Src[2] = MicroSrc{Kind: SrcReg, Reg: in.Srcs[2].Reg}
		case ptx.OpCvt:
			// sem.Convert is total over the type lattice: never faults.
		default:
			if err := probeALU(in.Op, in.Type); err != nil {
				u.Class = MicroBad
				u.Err = err
			}
		}
		if u.Class == MicroALU && u.Dst == ptx.NoReg {
			// A compute op without a register destination would have been
			// an out-of-range register write; surface it as a fault op.
			u.Class = MicroBad
			u.Err = fmt.Errorf("sem: %v destination is not a register", in.Op)
		}
	}
	return &MicroStream{Ops: ops}
}
